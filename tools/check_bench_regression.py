#!/usr/bin/env python3
"""Compares two Google Benchmark JSON files and fails on regressions.

Usage:
  tools/check_bench_regression.py BEFORE.json [AFTER.json] \
      [--tolerance 0.10] [--min-speedup X] [--max-counter NAME=VALUE ...]

For every benchmark name present in both files the median real_time of the
plain iteration runs is compared (aggregate rows such as *_mean/_median
emitted under --benchmark_repetitions are ignored; with a single run the
median is just that run). The check fails when

  * any shared series is slower in AFTER by more than --tolerance
    (default 10%: after > before * 1.10), or
  * --min-speedup X is given and no shared series got at least X times
    faster (before / after >= X) — used to assert that a committed
    before/after pair actually demonstrates the optimisation it claims, or
  * --max-counter NAME=VALUE is given and any series in the newest file
    reports a (median) counter NAME above VALUE — used to assert the
    analysis-overhead columns (`analysis_pct` < 5) emitted by E1/E2/E9.

Benchmarks present in only one file are reported but never fail the check,
so series can be added or retired without touching the gate. With a single
file and --max-counter, the timing comparison is skipped and only the
counter bounds are checked.
"""

import argparse
import json
import statistics
import sys


def load_medians(path):
    """Returns {benchmark name: median real_time} for iteration runs."""
    with open(path) as f:
        data = json.load(f)
    times = {}
    for bench in data.get("benchmarks", []):
        if bench.get("run_type", "iteration") != "iteration":
            continue  # skip _mean/_median/_stddev aggregate rows
        name = bench["name"]
        times.setdefault(name, []).append(float(bench["real_time"]))
    return {name: statistics.median(vals) for name, vals in times.items()}


def load_counter_medians(path, counter):
    """Returns {benchmark name: median COUNTER} for iteration runs that
    report the counter; series without it are simply absent."""
    with open(path) as f:
        data = json.load(f)
    values = {}
    for bench in data.get("benchmarks", []):
        if bench.get("run_type", "iteration") != "iteration":
            continue
        if counter not in bench:
            continue
        values.setdefault(bench["name"], []).append(float(bench[counter]))
    return {name: statistics.median(vals) for name, vals in values.items()}


def check_counter_bounds(path, bounds):
    """Fails when any series' median counter exceeds its bound. Returns
    True on failure."""
    failed = False
    for counter, bound in bounds:
        values = load_counter_medians(path, counter)
        if not values:
            print(f"ERROR: no series in {path} reports counter "
                  f"'{counter}'")
            failed = True
            continue
        for name, value in sorted(values.items()):
            status = "ok"
            if value > bound:
                status = "OVER BOUND"
                failed = True
            print(f"{status:>10}  {name}: {counter} = {value:.3f} "
                  f"(bound {bound:g})")
    return failed


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("before")
    parser.add_argument("after", nargs="?", default=None)
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.10,
        help="maximum allowed relative slowdown per series (default 0.10)",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help="require at least one series to be this many times faster",
    )
    parser.add_argument(
        "--max-counter",
        action="append",
        default=[],
        metavar="NAME=VALUE",
        help="fail when any series' median counter NAME exceeds VALUE "
             "(checked in the newest file; repeatable)",
    )
    args = parser.parse_args()

    bounds = []
    for spec in args.max_counter:
        name, _, value = spec.partition("=")
        try:
            bounds.append((name, float(value)))
        except ValueError:
            print(f"ERROR: --max-counter expects NAME=VALUE, got {spec!r}")
            return 2

    if args.after is None:
        if not bounds:
            print("ERROR: a single file requires --max-counter")
            return 2
        return 1 if check_counter_bounds(args.before, bounds) else 0

    before = load_medians(args.before)
    after = load_medians(args.after)
    shared = sorted(set(before) & set(after))
    if not shared:
        print(f"ERROR: no shared benchmark names between {args.before} and "
              f"{args.after}")
        return 1
    for name in sorted(set(before) ^ set(after)):
        side = args.before if name in before else args.after
        print(f"note: {name} only in {side} (ignored)")

    failed = False
    best_speedup = 0.0
    best_name = None
    for name in shared:
        b, a = before[name], after[name]
        speedup = b / a if a > 0 else float("inf")
        if speedup > best_speedup:
            best_speedup, best_name = speedup, name
        status = "ok"
        if a > b * (1.0 + args.tolerance):
            status = "REGRESSION"
            failed = True
        print(f"{status:>10}  {name}: {b:.0f} -> {a:.0f} ns "
              f"({speedup:.2f}x)")

    if bounds and check_counter_bounds(args.after, bounds):
        failed = True
    if failed:
        print(f"FAIL: at least one series regressed by more than "
              f"{args.tolerance:.0%} or a counter bound was exceeded")
        return 1
    if args.min_speedup is not None:
        if best_speedup < args.min_speedup:
            print(f"FAIL: best speedup {best_speedup:.2f}x ({best_name}) "
                  f"is below the required {args.min_speedup:.2f}x")
            return 1
        print(f"best speedup: {best_speedup:.2f}x ({best_name})")
    print(f"OK: {len(shared)} series within {args.tolerance:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

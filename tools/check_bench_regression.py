#!/usr/bin/env python3
"""Compares two Google Benchmark JSON files and fails on regressions.

Usage:
  tools/check_bench_regression.py BEFORE.json [AFTER.json] \
      [--tolerance 0.10] [--min-speedup X] [--max-counter NAME=VALUE ...]

For every benchmark name present in both files the median real_time of the
plain iteration runs is compared (aggregate rows such as *_mean/_median
emitted under --benchmark_repetitions are ignored; with a single run the
median is just that run). The check fails when

  * any shared series is slower in AFTER by more than --tolerance
    (default 10%: after > before * 1.10), or
  * --min-speedup X is given and no shared series got at least X times
    faster (before / after >= X) — used to assert that a committed
    before/after pair actually demonstrates the optimisation it claims, or
  * --min-geomean X is given and the geometric mean of the per-series
    speedups (before / after) over the gated series is below X. By default
    every shared series participates; --geomean-filter SUBSTR restricts the
    gate to series whose name contains SUBSTR (e.g. "/64" for the large-n
    acceptance rows) — zero matching series is then a hard error, or
  * --max-counter NAME=VALUE is given and any series in the newest file
    reports a (median) counter NAME above VALUE — used to assert the
    analysis-overhead columns (`analysis_pct` < 5) emitted by E1/E2/E9, or
  * --min-counter NAME=VALUE is given and any series in the newest file
    reports a (median) counter NAME at or below VALUE — used to assert the
    probe-kernel columns actually engaged (`probe_tag_hits` > 0), or
  * --min-ratio BASE:TARGET=X is given and, in the newest file, the median
    real_time of series BASE is less than X times that of series TARGET —
    a within-file speedup floor between two rows of one capture, used for
    the multicore scaling acceptance (the threads=8 row of E9's BM_TcWide
    must beat the threads=1 row by >= 2x). The two rows come from the same
    machine and the same run, so the gate is meaningful on any capture.
    With --allow-missing, a ratio whose BASE or TARGET series is absent is
    reported as a note and passes — that is how the gate stays armed for
    multicore capture machines without failing captures from machines that
    cannot schedule the BASE row (their pruned thread grid never emits it).

A series that does NOT report a bounded counter is a hard error: a renamed
or dropped counter must fail the gate, never silently pass it. When the
counter is only emitted by some series of a file by design (the analysis_pct
column comes from one benchmark function per file), pass --allow-missing —
then series without the counter are reported as notes, but at least one
series must still report it.

Benchmarks present in only one file are reported but never fail the check,
so series can be added or retired without touching the gate. With a single
file and --max-counter, the timing comparison is skipped and only the
counter bounds are checked.

--self-test runs the checker against embedded fixtures (exercising the
missing-counter paths) and exits 0 only if every expectation holds; CI runs
it in the lint job so a regression in this gate is itself gated.
"""

import argparse
import json
import math
import os
import statistics
import sys
import tempfile


def load_medians(path):
    """Returns {benchmark name: median real_time} for iteration runs."""
    with open(path) as f:
        data = json.load(f)
    times = {}
    for bench in data.get("benchmarks", []):
        if bench.get("run_type", "iteration") != "iteration":
            continue  # skip _mean/_median/_stddev aggregate rows
        name = bench["name"]
        times.setdefault(name, []).append(float(bench["real_time"]))
    return {name: statistics.median(vals) for name, vals in times.items()}


def load_counter_medians(path, counter):
    """Returns ({benchmark name: median COUNTER}, [names without it]) over
    the iteration runs."""
    with open(path) as f:
        data = json.load(f)
    values = {}
    missing = set()
    for bench in data.get("benchmarks", []):
        if bench.get("run_type", "iteration") != "iteration":
            continue
        name = bench["name"]
        if counter not in bench:
            missing.add(name)
            continue
        values.setdefault(name, []).append(float(bench[counter]))
    medians = {name: statistics.median(vals) for name, vals in values.items()}
    # A series counts as missing only if no run of it reports the counter.
    return medians, sorted(missing - set(medians))


def check_counter_bounds(path, bounds, allow_missing, lower=False):
    """Fails when any series' median counter violates its bound (above it
    by default, at-or-below it with lower=True), or (unless allow_missing)
    when any series lacks the counter. Returns True on failure."""
    failed = False
    for counter, bound in bounds:
        values, missing = load_counter_medians(path, counter)
        if not values:
            print(f"ERROR: no series in {path} reports counter "
                  f"'{counter}'")
            failed = True
            continue
        for name in missing:
            if allow_missing:
                print(f"note: {name} does not report '{counter}' "
                      f"(--allow-missing)")
            else:
                print(f"   MISSING  {name}: counter '{counter}' absent "
                      f"(pass --allow-missing if intentional)")
                failed = True
        for name, value in sorted(values.items()):
            status = "ok"
            if (value <= bound) if lower else (value > bound):
                status = "UNDER BOUND" if lower else "OVER BOUND"
                failed = True
            print(f"{status:>11}  {name}: {counter} = {value:.3f} "
                  f"({'floor' if lower else 'bound'} {bound:g})")
    return failed


def check_min_ratios(path, ratios, allow_missing):
    """Within-file speedup floors: for each (base, target, floor) the
    median real_time of series `base` must be at least `floor` times the
    median of series `target`, both read from `path`. A missing series is
    a hard error unless allow_missing (then a note — the capture machine
    may legitimately prune the base row). Returns True on failure."""
    medians = load_medians(path)
    failed = False
    for base, target, floor in ratios:
        absent = [n for n in (base, target) if n not in medians]
        if absent:
            for name in absent:
                if allow_missing:
                    print(f"note: ratio series {name} absent from {path} "
                          f"(--allow-missing)")
                else:
                    print(f"ERROR: ratio series {name} absent from {path} "
                          f"(pass --allow-missing if the capture machine "
                          f"prunes it)")
                    failed = True
            continue
        b, t = medians[base], medians[target]
        ratio = b / t if t > 0 else float("inf")
        if ratio < floor:
            print(f"FAIL: {base} is only {ratio:.2f}x the time of {target}, "
                  f"below the required {floor:g}x")
            failed = True
        else:
            print(f"ratio {base} / {target}: {ratio:.2f}x (floor {floor:g}x)")
    return failed


def check_geomean(before, after, shared, min_geomean, substr):
    """Fails when the geometric-mean speedup over the gated series (those
    whose name contains `substr`, or all shared series when substr is None)
    is below `min_geomean`. Returns True on failure."""
    gated = [n for n in shared if substr in n] if substr else list(shared)
    if not gated:
        print(f"ERROR: --geomean-filter {substr!r} matches no shared series")
        return True
    logs = []
    for name in gated:
        b, a = before[name], after[name]
        if a <= 0:
            continue  # degenerate timing; never let it dominate the mean
        logs.append(math.log(b / a))
    gm = math.exp(sum(logs) / len(logs)) if logs else 0.0
    scope = f" matching {substr!r}" if substr else ""
    if gm < min_geomean:
        print(f"FAIL: geomean speedup over {len(gated)} series{scope} is "
              f"{gm:.3f}x, below the required {min_geomean:g}x")
        return True
    print(f"geomean speedup over {len(gated)} series{scope}: {gm:.3f}x "
          f"(floor {min_geomean:g}x)")
    return False


def self_test():
    """Runs the counter gate against embedded fixtures; returns an exit
    code (0 = every expectation held)."""
    def bench(name, **extra):
        return {"name": name, "run_type": "iteration",
                "real_time": 100.0, **extra}

    fixtures = {
        # (bounds, allow_missing, expect_failure)
        "all series report, under bound": (
            [bench("a", c=1.0), bench("b", c=2.0)], False, False),
        "over bound fails": (
            [bench("a", c=9.0)], False, True),
        "missing on one series fails by default": (
            [bench("a", c=1.0), bench("b")], False, True),
        "missing on one series passes with --allow-missing": (
            [bench("a", c=1.0), bench("b")], True, False),
        "counter absent everywhere fails even with --allow-missing": (
            [bench("a"), bench("b")], True, True),
        "aggregate rows never satisfy the counter": (
            [bench("a"), {"name": "a_mean", "run_type": "aggregate",
                          "c": 1.0, "real_time": 100.0}], False, True),
    }

    code = 0
    for label, (benches, allow_missing, expect_failure) in fixtures.items():
        with tempfile.NamedTemporaryFile(
                "w", suffix=".json", delete=False) as f:
            json.dump({"benchmarks": benches}, f)
            path = f.name
        try:
            failed = check_counter_bounds(path, [("c", 5.0)], allow_missing)
        finally:
            os.unlink(path)
        verdict = "ok" if failed == expect_failure else "SELF-TEST FAIL"
        print(f"[{verdict}] {label}")
        if failed != expect_failure:
            code = 1

    # Counter floors (--min-counter): at-or-below the floor must fail.
    floor_fixtures = {
        "counter above floor passes": ([bench("a", c=3.0)], False),
        "counter at floor fails": ([bench("a", c=0.0)], True),
        "floor counter absent fails": ([bench("a")], True),
    }
    for label, (benches, expect_failure) in floor_fixtures.items():
        with tempfile.NamedTemporaryFile(
                "w", suffix=".json", delete=False) as f:
            json.dump({"benchmarks": benches}, f)
            path = f.name
        try:
            failed = check_counter_bounds(path, [("c", 0.0)], False,
                                          lower=True)
        finally:
            os.unlink(path)
        verdict = "ok" if failed == expect_failure else "SELF-TEST FAIL"
        print(f"[{verdict}] {label}")
        if failed != expect_failure:
            code = 1

    # Within-file ratio floors (--min-ratio): the new-series shape of the
    # E9 scaling gate — threads=1 row vs threads=8 row of one capture.
    ratio_series = [bench("tc/t1"), bench("tc/t8")]
    ratio_series[0]["real_time"] = 400.0
    ratio_series[1]["real_time"] = 100.0
    ratio_fixtures = {
        "ratio above floor passes": (
            ratio_series, [("tc/t1", "tc/t8", 2.0)], False, False),
        "ratio below floor fails": (
            ratio_series, [("tc/t1", "tc/t8", 8.0)], False, True),
        "missing base series fails by default": (
            ratio_series, [("tc/t16", "tc/t8", 2.0)], False, True),
        "missing base series passes with --allow-missing": (
            ratio_series, [("tc/t16", "tc/t8", 2.0)], True, False),
    }
    for label, (benches, ratios, allow_missing,
                expect_failure) in ratio_fixtures.items():
        with tempfile.NamedTemporaryFile(
                "w", suffix=".json", delete=False) as f:
            json.dump({"benchmarks": benches}, f)
            path = f.name
        try:
            failed = check_min_ratios(path, ratios, allow_missing)
        finally:
            os.unlink(path)
        verdict = "ok" if failed == expect_failure else "SELF-TEST FAIL"
        print(f"[{verdict}] {label}")
        if failed != expect_failure:
            code = 1

    # Geomean gate: 2x and 1x speedups geomean to ~1.414x.
    before = {"tc/64": 200.0, "tc/8": 100.0, "other/64": 100.0}
    after = {"tc/64": 100.0, "tc/8": 100.0, "other/64": 100.0}
    shared = sorted(before)
    geomean_fixtures = {
        "geomean over all series fails a 1.3x floor": (1.3, None, True),
        "geomean filtered to tc/64 passes 1.3x": (1.3, "tc/64", False),
        "filter matching nothing is an error": (1.3, "absent", True),
    }
    for label, (floor, substr, expect_failure) in geomean_fixtures.items():
        failed = check_geomean(before, after, shared, floor, substr)
        verdict = "ok" if failed == expect_failure else "SELF-TEST FAIL"
        print(f"[{verdict}] {label}")
        if failed != expect_failure:
            code = 1
    print("self-test " + ("passed" if code == 0 else "FAILED"))
    return code


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("before", nargs="?", default=None)
    parser.add_argument("after", nargs="?", default=None)
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.10,
        help="maximum allowed relative slowdown per series (default 0.10)",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help="require at least one series to be this many times faster",
    )
    parser.add_argument(
        "--min-geomean",
        type=float,
        default=None,
        help="require the geometric-mean speedup over the gated series "
             "(see --geomean-filter) to reach this factor",
    )
    parser.add_argument(
        "--geomean-filter",
        default=None,
        metavar="SUBSTR",
        help="restrict --min-geomean to series whose name contains SUBSTR",
    )
    parser.add_argument(
        "--max-counter",
        action="append",
        default=[],
        metavar="NAME=VALUE",
        help="fail when any series' median counter NAME exceeds VALUE "
             "(checked in the newest file; repeatable)",
    )
    parser.add_argument(
        "--min-counter",
        action="append",
        default=[],
        metavar="NAME=VALUE",
        help="fail when any series' median counter NAME is at or below "
             "VALUE (checked in the newest file; repeatable)",
    )
    parser.add_argument(
        "--min-ratio",
        action="append",
        default=[],
        metavar="BASE:TARGET=X",
        help="fail unless, in the newest file, the median real_time of "
             "series BASE is at least X times that of series TARGET "
             "(within-file scaling floor; repeatable; --allow-missing "
             "downgrades an absent series to a note)",
    )
    parser.add_argument(
        "--allow-missing",
        action="store_true",
        help="tolerate series that do not report a bounded counter "
             "(at least one series must still report it)",
    )
    parser.add_argument(
        "--self-test",
        action="store_true",
        help="run the embedded fixtures through the counter gate and exit",
    )
    args = parser.parse_args()

    if args.self_test:
        return self_test()
    if args.before is None:
        print("ERROR: BEFORE.json required (or --self-test)")
        return 2

    def parse_bounds(specs, flag):
        parsed = []
        for spec in specs:
            name, _, value = spec.partition("=")
            try:
                parsed.append((name, float(value)))
            except ValueError:
                print(f"ERROR: {flag} expects NAME=VALUE, got {spec!r}")
                return None
        return parsed

    bounds = parse_bounds(args.max_counter, "--max-counter")
    floors = parse_bounds(args.min_counter, "--min-counter")
    if bounds is None or floors is None:
        return 2

    ratios = []
    for spec in args.min_ratio:
        pair, _, value = spec.rpartition("=")
        base, sep, target = pair.partition(":")
        try:
            ratios.append((base, target, float(value)))
        except ValueError:
            sep = ""
        if not sep or not base or not target:
            print(f"ERROR: --min-ratio expects BASE:TARGET=X, got {spec!r}")
            return 2

    if args.after is None:
        if not bounds and not floors and not ratios:
            print("ERROR: a single file requires --max-counter, "
                  "--min-counter or --min-ratio")
            return 2
        failed = check_counter_bounds(args.before, bounds,
                                      args.allow_missing)
        if check_counter_bounds(args.before, floors, args.allow_missing,
                                lower=True):
            failed = True
        if ratios and check_min_ratios(args.before, ratios,
                                       args.allow_missing):
            failed = True
        return 1 if failed else 0

    before = load_medians(args.before)
    after = load_medians(args.after)
    shared = sorted(set(before) & set(after))
    if not shared:
        print(f"ERROR: no shared benchmark names between {args.before} and "
              f"{args.after}")
        return 1
    for name in sorted(set(before) ^ set(after)):
        side = args.before if name in before else args.after
        print(f"note: {name} only in {side} (ignored)")

    failed = False
    best_speedup = 0.0
    best_name = None
    for name in shared:
        b, a = before[name], after[name]
        speedup = b / a if a > 0 else float("inf")
        if speedup > best_speedup:
            best_speedup, best_name = speedup, name
        status = "ok"
        if a > b * (1.0 + args.tolerance):
            status = "REGRESSION"
            failed = True
        print(f"{status:>10}  {name}: {b:.0f} -> {a:.0f} ns "
              f"({speedup:.2f}x)")

    if bounds and check_counter_bounds(args.after, bounds,
                                       args.allow_missing):
        failed = True
    if floors and check_counter_bounds(args.after, floors,
                                       args.allow_missing, lower=True):
        failed = True
    if ratios and check_min_ratios(args.after, ratios, args.allow_missing):
        failed = True
    if failed:
        print(f"FAIL: at least one series regressed by more than "
              f"{args.tolerance:.0%} or a counter bound was violated")
        return 1
    if args.min_speedup is not None:
        if best_speedup < args.min_speedup:
            print(f"FAIL: best speedup {best_speedup:.2f}x ({best_name}) "
                  f"is below the required {args.min_speedup:.2f}x")
            return 1
        print(f"best speedup: {best_speedup:.2f}x ({best_name})")
    if args.min_geomean is not None:
        if check_geomean(before, after, shared, args.min_geomean,
                         args.geomean_filter):
            return 1
    print(f"OK: {len(shared)} series within {args.tolerance:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Replays a JSONL request file through qcont_server and validates the run.

Usage:
  tools/check_server_replay.py --server build/examples/qcont_server \
      --cli build/examples/qcont_cli --requests tools/server_requests.jsonl \
      [--threads 8] [--min-hit-rate 1.0]

Four gates, all of which must hold:

  1. Schema: one response line per request, in request order, each a valid
     schema-v1 object (status/cache enums, id echo, result/error shape).

  2. Oracle: every "ok" response is re-checked against the one-shot CLI —
     `qcont_cli contains` exit code vs `result.contained`, `qcont_cli eval`
     tuples vs `result.tuples`, `qcont_cli analyze --json` report vs
     `result.report`. The server's cache and coalescing must never change a
     verdict.

  3. Cache hit rate: requests tagged `"note": "dup"` (the duplicate /
     alpha-renamed tail of the replay file) must answer from cache — cache
     marker "hit" or "coalesced" — at a rate of at least --min-hit-rate.
     The canonical-hash plan cache makes this deterministic, so the default
     requires every tagged request to hit.

  4. Artifact reuse: requests tagged `"note": "dup-program"` (the
     repeated-program tail — one Π resubmitted with fresh *cyclic* queries,
     so every request misses the verdict cache and routes to the general
     engine) must each reuse the frozen program artifact rather than
     re-expanding the kind space. The server is run with --metrics and the
     `typeengine.artifact.hits` counter must be at least the number of
     tagged requests (hit rate >= 1.0 on the tail; the promise-based build
     coalescing in ProgramArtifactCache makes the count
     schedule-independent).

Exit code: 0 = all gates pass, 1 = a gate failed, 2 = usage error.
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile

VALID_STATUS = {"ok", "error", "deadline_exceeded", "overloaded"}
VALID_CACHE = {"hit", "miss", "coalesced", "none"}


def fail(msg):
    print(f"FAIL: {msg}")
    return False


def validate_schema(request, response, index):
    """Gate 1: response shape. Returns True when valid."""
    ok = True
    if response.get("schema_version") != 1:
        ok = fail(f"response {index}: schema_version != 1: {response}")
    if response.get("id") != request.get("id"):
        ok = fail(f"response {index}: id echo mismatch "
                  f"({response.get('id')!r} != {request.get('id')!r})")
    if response.get("op") != request.get("op"):
        ok = fail(f"response {index}: op echo mismatch: {response}")
    if response.get("status") not in VALID_STATUS:
        ok = fail(f"response {index}: bad status: {response.get('status')!r}")
    if response.get("cache") not in VALID_CACHE:
        ok = fail(f"response {index}: bad cache: {response.get('cache')!r}")
    elapsed = response.get("elapsed_us")
    if not isinstance(elapsed, (int, float)) or elapsed < 0:
        ok = fail(f"response {index}: bad elapsed_us: {elapsed!r}")
    if response.get("status") == "ok":
        if not isinstance(response.get("result"), dict):
            ok = fail(f"response {index}: ok without result object")
    else:
        if not isinstance(response.get("error"), dict):
            ok = fail(f"response {index}: non-ok without error object")
    return ok


def parse_metrics(stderr):
    """Parses the `name value` lines qcont_server --metrics prints after
    the `== metrics ==` marker on stderr."""
    metrics = {}
    seen_marker = False
    for line in stderr.splitlines():
        if line.strip() == "== metrics ==":
            seen_marker = True
            continue
        if not seen_marker:
            continue
        parts = line.split()
        if len(parts) == 2 and parts[1].isdigit():
            metrics[parts[0]] = int(parts[1])
    return metrics


def run_cli(cli, args, stdin=None):
    proc = subprocess.run([cli] + args, capture_output=True, text=True,
                          input=stdin)
    return proc.returncode, proc.stdout, proc.stderr


def with_temp(texts):
    """Writes each text to a temp file; returns the paths (caller removes)."""
    paths = []
    for text in texts:
        f = tempfile.NamedTemporaryFile("w", suffix=".txt", delete=False)
        f.write(text)
        f.close()
        paths.append(f.name)
    return paths


def parse_cli_tuples(stdout):
    """`qcont_cli eval` prints one `goal(a,b)` line per tuple."""
    tuples = []
    for line in stdout.splitlines():
        line = line.strip()
        if not line or "(" not in line:
            continue
        inner = line[line.index("(") + 1:line.rindex(")")]
        tuples.append([v.strip() for v in inner.split(",")] if inner else [])
    return sorted(tuples)


def check_oracle(cli, request, response, index):
    """Gate 2: verdict equality against the one-shot CLI."""
    if response.get("status") != "ok":
        return fail(f"response {index}: status "
                    f"{response.get('status')!r}, expected ok "
                    f"(replay files contain only valid requests)")
    op = request["op"]
    result = response["result"]
    paths = []
    try:
        if op == "containment":
            paths = with_temp([request["program"], request["query"]])
            code, out, err = run_cli(cli, ["contains"] + paths)
            if code not in (0, 1):
                return fail(f"response {index}: oracle errored "
                            f"(exit {code}): {err.strip()}")
            oracle = code == 0
            if result.get("contained") != oracle:
                return fail(f"response {index}: contained="
                            f"{result.get('contained')} but oracle says "
                            f"{oracle}\n{out}")
        elif op == "eval":
            paths = with_temp([request["program"], request["database"]])
            code, out, err = run_cli(cli, ["eval"] + paths)
            if code != 0:
                return fail(f"response {index}: oracle errored "
                            f"(exit {code}): {err.strip()}")
            oracle = parse_cli_tuples(out)
            got = sorted(result.get("tuples", []))
            if got != oracle:
                return fail(f"response {index}: tuples {got} != oracle "
                            f"{oracle}")
        elif op == "analyze":
            texts = [request["query"]]
            if "program" in request:
                texts.append(request["program"])
            paths = with_temp(texts)
            code, out, err = run_cli(cli, ["analyze", "--json"] + paths)
            if code != 0:
                return fail(f"response {index}: oracle errored "
                            f"(exit {code}): {err.strip()}")
            oracle = json.loads(out)
            if result.get("report") != oracle:
                return fail(f"response {index}: analysis report differs "
                            f"from oracle\nserver: {result.get('report')}\n"
                            f"oracle: {oracle}")
        else:
            return fail(f"request {index}: unknown op {op!r} in replay file")
    finally:
        for p in paths:
            os.unlink(p)
    return True


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--server", required=True)
    parser.add_argument("--cli", required=True)
    parser.add_argument("--requests", required=True)
    parser.add_argument("--threads", type=int, default=8)
    parser.add_argument("--min-hit-rate", type=float, default=1.0,
                        help="required cache-hit rate over requests tagged "
                             "\"note\": \"dup\" (default 1.0)")
    args = parser.parse_args()

    with open(args.requests) as f:
        lines = [l for l in f.read().splitlines() if l.strip()]
    requests = [json.loads(l) for l in lines]

    proc = subprocess.run(
        [args.server, f"--threads={args.threads}", "--metrics"],
        input="\n".join(lines) + "\n", capture_output=True, text=True)
    if proc.returncode != 0:
        print(f"FAIL: server exited {proc.returncode}: {proc.stderr}")
        return 1
    replies = [l for l in proc.stdout.splitlines() if l.strip()]
    if len(replies) != len(requests):
        print(f"FAIL: {len(requests)} requests but {len(replies)} responses")
        return 1

    ok = True
    responses = []
    for i, line in enumerate(replies):
        try:
            responses.append(json.loads(line))
        except json.JSONDecodeError as e:
            print(f"FAIL: response {i} is not JSON ({e}): {line}")
            return 1
    for i, (request, response) in enumerate(zip(requests, responses)):
        ok &= validate_schema(request, response, i)
        ok &= check_oracle(args.cli, request, response, i)

    tagged = [(req, resp) for req, resp in zip(requests, responses)
              if req.get("note") == "dup"]
    if not tagged:
        print("FAIL: replay file has no \"note\": \"dup\" requests to "
              "measure the cache on")
        return 1
    hits = sum(1 for _, resp in tagged
               if resp.get("cache") in ("hit", "coalesced"))
    rate = hits / len(tagged)
    print(f"cache: {hits}/{len(tagged)} tagged duplicates answered from "
          f"cache (rate {rate:.2f}, required {args.min_hit_rate:.2f})")
    if rate < args.min_hit_rate:
        ok = fail(f"duplicate-tail hit rate {rate:.2f} below "
                  f"{args.min_hit_rate:.2f}")

    # Gate 4: the repeated-program tail must run off the shared artifact.
    dup_programs = sum(1 for req in requests
                       if req.get("note") == "dup-program")
    if dup_programs == 0:
        ok = fail("replay file has no \"note\": \"dup-program\" requests "
                  "to measure artifact reuse on")
    else:
        metrics = parse_metrics(proc.stderr)
        artifact_hits = metrics.get("typeengine.artifact.hits", 0)
        print(f"artifact: {artifact_hits} kind-space reuses over "
              f"{dup_programs} repeated-program requests")
        if artifact_hits < dup_programs:
            ok = fail(f"typeengine.artifact.hits = {artifact_hits} < "
                      f"{dup_programs} dup-program requests: the repeated "
                      f"program re-expanded its kind space")

    if ok:
        print(f"OK: {len(requests)} requests replayed, verdicts match the "
              f"one-shot CLI, schema valid")
        return 0
    return 1


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Fails when the QCxxx table in DESIGN.md drifts from the diagnostic code.

Usage:
  tools/check_diag_catalog.py [--repo ROOT]

Cross-checks three sources that must agree on every diagnostic code:

  * the `DiagCodeId` switch in src/analysis/diagnostic.cc
    (enum member -> "QCxxx" id),
  * the `DiagSeverity` switch in the same file
    (enum member -> error/warning/info),
  * the `| QCxxx | severity | summary |` table in DESIGN.md,
  * the one-line `// QCxxx: summary` comments on the DiagCode enum in
    src/analysis/diagnostic.h.

The check fails when a code exists in one source but not another, when the
severities disagree, or when a summary (table or header comment) is
missing/empty. Run by the lint CI job; see DESIGN.md §9.
"""

import argparse
import pathlib
import re
import sys


def parse_code_ids(cc_text):
    """enum member -> QCxxx from the DiagCodeId switch."""
    m = re.search(r"const char\* DiagCodeId\(DiagCode code\) \{(.*?)\n\}",
                  cc_text, re.S)
    if not m:
        raise SystemExit("cannot find DiagCodeId switch in diagnostic.cc")
    return dict(re.findall(
        r'case DiagCode::(\w+):\s*return "(QC\d{3})";', m.group(1)))


def parse_severities(cc_text):
    """enum member -> severity name from the DiagSeverity switch."""
    m = re.search(r"Severity DiagSeverity\(DiagCode code\) \{(.*?)\n\}",
                  cc_text, re.S)
    if not m:
        raise SystemExit("cannot find DiagSeverity switch in diagnostic.cc")
    out = {}
    pending = []
    for line in m.group(1).splitlines():
        case = re.search(r"case DiagCode::(\w+):", line)
        if case:
            pending.append(case.group(1))
        ret = re.search(r"return Severity::k(\w+);", line)
        if ret:
            severity = ret.group(1).lower()
            for member in pending:
                out[member] = severity
            pending = []
    return out


def parse_header_summaries(h_text):
    """QCxxx -> summary from the DiagCode enum comments."""
    out = {}
    for member, code, summary in re.findall(
            r"k(\w+),\s*// (QC\d{3}): (.+)", h_text):
        out[code] = summary.strip()
    return out


def parse_design_table(md_text):
    """QCxxx -> (severity, summary) from the DESIGN.md table."""
    out = {}
    for code, severity, summary in re.findall(
            r"^\| (QC\d{3}) \| (error|warning|info) \| (.+?) \|$",
            md_text, re.M):
        out[code] = (severity, summary.strip())
    return out


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repo", default=".", help="repository root")
    args = parser.parse_args()
    root = pathlib.Path(args.repo)

    cc_text = (root / "src/analysis/diagnostic.cc").read_text()
    h_text = (root / "src/analysis/diagnostic.h").read_text()
    md_text = (root / "DESIGN.md").read_text()

    code_of_member = parse_code_ids(cc_text)
    severity_of_member = parse_severities(cc_text)
    header_summaries = parse_header_summaries(h_text)
    table = parse_design_table(md_text)

    code_severity = {}
    failed = False
    for member, code in sorted(code_of_member.items(), key=lambda kv: kv[1]):
        severity = severity_of_member.get(member)
        if severity is None:
            print(f"FAIL: {code} ({member}) missing from DiagSeverity switch")
            failed = True
            continue
        code_severity[code] = severity

    in_code = set(code_severity)
    in_table = set(table)
    for code in sorted(in_code - in_table):
        print(f"FAIL: {code} is in diagnostic.cc but not in the DESIGN.md "
              f"table")
        failed = True
    for code in sorted(in_table - in_code):
        print(f"FAIL: {code} is in the DESIGN.md table but not in "
              f"diagnostic.cc")
        failed = True
    for code in sorted(in_code & in_table):
        table_severity, summary = table[code]
        if table_severity != code_severity[code]:
            print(f"FAIL: {code} severity mismatch: diagnostic.cc says "
                  f"{code_severity[code]}, DESIGN.md says {table_severity}")
            failed = True
        if not summary:
            print(f"FAIL: {code} has an empty summary in DESIGN.md")
            failed = True
        if code not in header_summaries or not header_summaries[code]:
            print(f"FAIL: {code} has no one-line summary comment on the "
                  f"DiagCode enum in diagnostic.h")
            failed = True

    if failed:
        return 1
    print(f"OK: {len(in_code)} diagnostic codes agree across diagnostic.cc, "
          f"diagnostic.h and DESIGN.md")
    return 0


if __name__ == "__main__":
    sys.exit(main())

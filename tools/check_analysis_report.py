#!/usr/bin/env python3
"""Validates the schema of `qcont_cli analyze --json` output.

Usage:
  qcont_cli analyze --json query.ucq [program.dl] | \
      tools/check_analysis_report.py [FILE]

Reads one AnalysisReport JSON object from FILE (or stdin) and fails unless
every schema-v1 key is present with the right type and the values are
internally consistent (acyclic => ghw == 1, routing names are known
engines, ...). The schema is part of the public surface (DESIGN.md §14);
additive changes must bump schema_version.
"""

import json
import sys

UCQ_KEYS = {
    "disjuncts": int,
    "acyclic": bool,
    "ack_level": int,
    "treewidth": int,
    "treewidth_exact": bool,
    "ghw": int,
    "max_shared_vars": int,
}
PROGRAM_KEYS = {
    "present": bool,
    "recursive": bool,
    "num_strata": int,
    "num_sccs": int,
    "num_recursive_sccs": int,
    "relevant_rules": int,
    "recursive_rules": int,
    "max_recursive_rule_vars": int,
    "expansion_branching": int,
    "linear": bool,
    "monadic": bool,
    "guarded": bool,
    "frontier_guarded": bool,
}
EVAL_ENGINES = {"yannakakis", "decomp-dp", "generic-hom-search"}
CONTAINMENT_ENGINES = {"ack", "type-engine"}


def check(cond, message, errors):
    if not cond:
        errors.append(message)


def check_section(obj, name, keys, errors):
    section = obj.get(name)
    check(isinstance(section, dict), f"'{name}' must be an object", errors)
    if not isinstance(section, dict):
        return {}
    for key, want in keys.items():
        check(key in section, f"'{name}.{key}' missing", errors)
        if key in section:
            # bool is an int subclass in Python; require the exact type.
            ok = (isinstance(section[key], bool) if want is bool
                  else isinstance(section[key], int)
                  and not isinstance(section[key], bool))
            check(ok, f"'{name}.{key}' must be {want.__name__}", errors)
    for key in section:
        check(key in keys, f"'{name}.{key}' is not a schema-v1 key", errors)
    return section


def main():
    source = open(sys.argv[1]) if len(sys.argv) > 1 else sys.stdin
    try:
        report = json.load(source)
    except json.JSONDecodeError as e:
        print(f"FAIL: not valid JSON: {e}")
        return 1

    errors = []
    check(report.get("schema_version") == 1,
          "schema_version must be 1", errors)
    for key in ("query_hash", "program_hash"):
        value = report.get(key)
        check(isinstance(value, str) and len(value) == 16,
              f"'{key}' must be a 16-hex-digit string", errors)

    ucq = check_section(report, "ucq", UCQ_KEYS, errors)
    program = check_section(report, "program", PROGRAM_KEYS, errors)

    routing = report.get("routing")
    check(isinstance(routing, dict), "'routing' must be an object", errors)
    if isinstance(routing, dict):
        check(routing.get("eval_engine") in EVAL_ENGINES,
              f"routing.eval_engine {routing.get('eval_engine')!r} unknown",
              errors)
        check(routing.get("containment_engine") in CONTAINMENT_ENGINES,
              f"routing.containment_engine "
              f"{routing.get('containment_engine')!r} unknown", errors)

    extra = set(report) - {"schema_version", "query_hash", "program_hash",
                           "ucq", "program", "routing"}
    check(not extra, f"unknown top-level key(s): {sorted(extra)}", errors)

    # Internal consistency.
    if ucq and isinstance(routing, dict):
        if ucq.get("acyclic") is True:
            check(ucq.get("ghw") == 1 or ucq.get("disjuncts") == 0,
                  "acyclic UCQ must have ghw == 1", errors)
            check(ucq.get("ack_level", 0) >= 1,
                  "acyclic UCQ must have ack_level >= 1", errors)
            check(routing.get("eval_engine") == "yannakakis",
                  "acyclic UCQ must route eval to yannakakis", errors)
            check(routing.get("containment_engine") == "ack",
                  "acyclic UCQ must route containment to ack", errors)
        elif ucq.get("acyclic") is False:
            check(routing.get("containment_engine") == "type-engine",
                  "cyclic UCQ must route containment to type-engine", errors)
            check(ucq.get("ghw", 0) >= 2,
                  "cyclic UCQ must have ghw >= 2", errors)
    if program and program.get("present") is False:
        check(report.get("program_hash") == "0" * 16,
              "program_hash must be zero without a program", errors)

    if errors:
        for e in errors:
            print(f"FAIL: {e}")
        return 1
    print("OK: AnalysisReport matches schema v1")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Validates a qcont Chrome trace_event JSON file.

Usage: check_trace.py TRACE.json [TRACE2.json ...]

Checks, per file:
  - parses as JSON, top level has "traceEvents" (list) and
    "displayTimeUnit" == "ms";
  - every event is a complete-phase ("ph": "X") record with string "name"
    and "cat", numeric "ts" and "dur" >= 0, integer "pid" == 1 and
    "tid" >= 0;
  - span names use the "<component>/<operation>" taxonomy of DESIGN.md
    §12 (one '/', non-empty halves);
  - "args", when present, maps string keys to integers;
  - events on the same tid nest properly: spans overlap only by full
    containment, never partially (Perfetto renders partial overlap as
    corrupt tracks).

Exit code 0 when every file passes, 1 otherwise. Non-trace problems
(missing file, unreadable) also exit 1, with the reason on stderr.
"""

import json
import sys

REQUIRED_TOP = ("traceEvents", "displayTimeUnit")


def fail(path, msg):
    print(f"check_trace: {path}: {msg}", file=sys.stderr)
    return False


def check_event(path, i, ev):
    where = f"traceEvents[{i}]"
    if not isinstance(ev, dict):
        return fail(path, f"{where}: not an object")
    for key in ("name", "cat"):
        if not isinstance(ev.get(key), str) or not ev[key]:
            return fail(path, f"{where}: missing/empty string '{key}'")
    if ev.get("ph") != "X":
        return fail(path, f"{where}: ph is {ev.get('ph')!r}, want 'X'")
    for key in ("ts", "dur"):
        v = ev.get(key)
        if not isinstance(v, (int, float)) or isinstance(v, bool) or v < 0:
            return fail(path, f"{where}: '{key}' is {v!r}, want number >= 0")
    if ev.get("pid") != 1:
        return fail(path, f"{where}: pid is {ev.get('pid')!r}, want 1")
    tid = ev.get("tid")
    if not isinstance(tid, int) or isinstance(tid, bool) or tid < 0:
        return fail(path, f"{where}: tid is {tid!r}, want int >= 0")
    name = ev["name"]
    parts = name.split("/")
    if len(parts) != 2 or not parts[0] or not parts[1]:
        return fail(path, f"{where}: name {name!r} not '<component>/<op>'")
    args = ev.get("args")
    if args is not None:
        if not isinstance(args, dict):
            return fail(path, f"{where}: args is not an object")
        for k, v in args.items():
            if not isinstance(v, int) or isinstance(v, bool):
                return fail(path, f"{where}: args[{k!r}] is {v!r}, want int")
    return True


def check_nesting(path, events):
    """Spans on one tid must nest: no partial overlap."""
    by_tid = {}
    for ev in events:
        by_tid.setdefault(ev["tid"], []).append((ev["ts"], ev["ts"] + ev["dur"], ev["name"]))
    ok = True
    for tid, spans in by_tid.items():
        spans.sort()
        stack = []
        for start, end, name in spans:
            while stack and stack[-1][1] <= start:
                stack.pop()
            if stack and end > stack[-1][1]:
                ok = fail(
                    path,
                    f"tid {tid}: span {name!r} [{start}, {end}) partially "
                    f"overlaps {stack[-1][2]!r} [{stack[-1][0]}, {stack[-1][1]})",
                )
                continue
            stack.append((start, end, name))
    return ok


def check_file(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except OSError as e:
        return fail(path, f"cannot read: {e}")
    except json.JSONDecodeError as e:
        return fail(path, f"invalid JSON: {e}")
    if not isinstance(doc, dict):
        return fail(path, "top level is not an object")
    for key in REQUIRED_TOP:
        if key not in doc:
            return fail(path, f"missing top-level key '{key}'")
    if doc["displayTimeUnit"] != "ms":
        return fail(path, f"displayTimeUnit is {doc['displayTimeUnit']!r}, want 'ms'")
    events = doc["traceEvents"]
    if not isinstance(events, list):
        return fail(path, "traceEvents is not a list")
    ok = all(check_event(path, i, ev) for i, ev in enumerate(events))
    if ok:
        ok = check_nesting(path, events)
    if ok:
        print(f"check_trace: {path}: OK ({len(events)} events)")
    return ok


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 1
    return 0 if all([check_file(p) for p in argv[1:]]) else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))

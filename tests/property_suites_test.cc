// Parameterized property sweeps across the substrates: regex/NFA semantics,
// known treewidth families, the paper's Section 3/4 query families, RPQ
// evaluation against brute-force path search, and Datalog fixpoints against
// expansion semantics.

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "automata/nfa.h"
#include "bench/workloads.h"
#include "cq/containment.h"
#include "cq/homomorphism.h"
#include "datalog/eval.h"
#include "datalog/expansion.h"
#include "graphdb/rpq.h"
#include "parser/parser.h"
#include "structure/classify.h"
#include "structure/tree_decomposition.h"
#include "tests/generators.h"

namespace qcont {
namespace {

// --- Regex acceptance table --------------------------------------------

struct RegexCase {
  const char* pattern;
  const char* word;  // space-separated symbols; "" = empty word
  bool accept;
};

class RegexTable : public ::testing::TestWithParam<RegexCase> {};

std::vector<std::string> Split(const std::string& s) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == ' ') {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

TEST_P(RegexTable, AcceptsWord) {
  const RegexCase& c = GetParam();
  auto nfa = ParseRegex(c.pattern);
  ASSERT_TRUE(nfa.ok()) << nfa.status().ToString();
  EXPECT_EQ(nfa->AcceptsWord(Split(c.word)), c.accept)
      << c.pattern << " on \"" << c.word << "\"";
}

INSTANTIATE_TEST_SUITE_P(
    Table, RegexTable,
    ::testing::Values(
        RegexCase{"a", "a", true}, RegexCase{"a", "", false},
        RegexCase{"a b c", "a b c", true}, RegexCase{"a b c", "a b", false},
        RegexCase{"a|b|c", "c", true}, RegexCase{"a|b|c", "d", false},
        RegexCase{"(a b)+", "a b a b", true},
        RegexCase{"(a b)+", "a b a", false},
        RegexCase{"a* b*", "", true}, RegexCase{"a* b*", "b a", false},
        RegexCase{"a? a? a?", "a a", true},
        RegexCase{"a? a?", "a a a", false},
        RegexCase{"(a|b)* a (a|b)", "b a a", true},
        RegexCase{"(a|b)* a (a|b)", "b b b", false},
        RegexCase{"a- (b-)*", "a- b- b-", true},
        RegexCase{"a- (b-)*", "a b-", false},
        RegexCase{"eps | a", "", true}, RegexCase{"eps | a", "a", true},
        RegexCase{"eps | a", "a a", false},
        RegexCase{"(a (b|eps))+", "a a b a", true}));

// --- Known treewidth families ------------------------------------------

struct TwCase {
  const char* name;
  int n;
  int expected;
};

class TreewidthFamilies : public ::testing::TestWithParam<TwCase> {};

UndirectedGraph MakeFamily(const std::string& name, int n) {
  if (name == "path") {
    UndirectedGraph g(n);
    for (int i = 0; i + 1 < n; ++i) g.AddEdge(i, i + 1);
    return g;
  }
  if (name == "cycle") {
    UndirectedGraph g(n);
    for (int i = 0; i < n; ++i) g.AddEdge(i, (i + 1) % n);
    return g;
  }
  if (name == "star") {
    UndirectedGraph g(n);
    for (int i = 1; i < n; ++i) g.AddEdge(0, i);
    return g;
  }
  if (name == "clique") {
    UndirectedGraph g(n);
    for (int i = 0; i < n; ++i) {
      for (int j = i + 1; j < n; ++j) g.AddEdge(i, j);
    }
    return g;
  }
  if (name == "wheel") {  // cycle of n-1 plus a hub
    UndirectedGraph g(n);
    for (int i = 1; i < n; ++i) {
      g.AddEdge(i, i % (n - 1) + 1);
      g.AddEdge(0, i);
    }
    return g;
  }
  // complete bipartite K_{2,n-2}
  UndirectedGraph g(n);
  for (int i = 2; i < n; ++i) {
    g.AddEdge(0, i);
    g.AddEdge(1, i);
  }
  return g;
}

TEST_P(TreewidthFamilies, ExactValue) {
  const TwCase& c = GetParam();
  UndirectedGraph g = MakeFamily(c.name, c.n);
  auto tw = TreewidthExact(g);
  ASSERT_TRUE(tw.ok());
  EXPECT_EQ(*tw, c.expected) << c.name << " n=" << c.n;
  // The min-fill decomposition is valid and at least as wide.
  TreeDecomposition td = DecompositionFromOrder(g, MinFillOrder(g));
  EXPECT_TRUE(td.Validate(g).ok());
  EXPECT_GE(td.Width(), *tw);
}

INSTANTIATE_TEST_SUITE_P(
    Families, TreewidthFamilies,
    ::testing::Values(TwCase{"path", 8, 1}, TwCase{"cycle", 4, 2},
                      TwCase{"cycle", 9, 2}, TwCase{"star", 9, 1},
                      TwCase{"clique", 4, 3}, TwCase{"clique", 6, 5},
                      TwCase{"wheel", 7, 3}, TwCase{"bipartite", 7, 2}));

// --- The paper's Section 3 families, parameterized by n -----------------

class CoveredCliqueFamily : public ::testing::TestWithParam<int> {};

TEST_P(CoveredCliqueFamily, AcyclicAc2UnboundedTreewidth) {
  const int n = GetParam();
  ConjunctiveQuery cq = bench::CoveredCliqueCq(n);
  auto c = ClassifyCq(cq);
  ASSERT_TRUE(c.ok());
  EXPECT_TRUE(c->acyclic);
  EXPECT_EQ(c->max_shared_vars, 2);    // in AC2 for every n (Example 4)
  EXPECT_EQ(c->treewidth, n - 1);      // but treewidth grows with n
}

INSTANTIATE_TEST_SUITE_P(Sizes, CoveredCliqueFamily,
                         ::testing::Values(3, 4, 5, 6));

class ChainFamily : public ::testing::TestWithParam<int> {};

TEST_P(ChainFamily, Ac1AndTreewidthOne) {
  const int n = GetParam();
  ConjunctiveQuery cq = bench::ChainCq(n);
  auto c = ClassifyCq(cq);
  ASSERT_TRUE(c.ok());
  EXPECT_TRUE(c->acyclic);
  // A single atom shares nothing; longer chains share exactly one variable
  // between consecutive atoms (AC1 either way).
  EXPECT_EQ(c->max_shared_vars, n == 1 ? 0 : 1);
  EXPECT_EQ(c->treewidth, 1);
  // Longer chains are contained in shorter ones (as Boolean queries).
  if (n > 1) {
    EXPECT_TRUE(*CqContained(bench::ChainCq(n), bench::ChainCq(n - 1)));
    EXPECT_FALSE(*CqContained(bench::ChainCq(n - 1), bench::ChainCq(n)));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, ChainFamily, ::testing::Values(1, 2, 3, 5, 8));

// --- RPQ evaluation vs brute-force path search ---------------------------

TEST(RpqProperty, MatchesBruteForcePathSearch) {
  std::mt19937 rng(424242);
  const std::vector<std::string> patterns = {
      "a",       "a b",   "a+",      "(a|b)*", "a- b",
      "a (b|a)", "b- a-", "a* b a-", "eps|a b"};
  for (int trial = 0; trial < 12; ++trial) {
    GraphDatabase g;
    const int nodes = 4;
    for (int i = 0; i < 7; ++i) {
      g.AddEdge("n" + std::to_string(rng() % nodes), rng() % 2 ? "a" : "b",
                "n" + std::to_string(rng() % nodes));
    }
    for (const std::string& pattern : patterns) {
      auto nfa = ParseRegex(pattern);
      ASSERT_TRUE(nfa.ok());
      auto pairs = EvaluateRpq(*nfa, g);
      std::set<std::pair<std::string, std::string>> fast(pairs.begin(),
                                                         pairs.end());
      // Brute force: enumerate all completion paths up to length 6.
      std::set<std::pair<std::string, std::string>> slow;
      for (const std::string& src : g.Nodes()) {
        struct Item {
          std::string node;
          std::vector<std::string> word;
        };
        std::vector<Item> frontier = {{src, {}}};
        for (int len = 0; len <= 6; ++len) {
          std::vector<Item> next;
          for (const Item& item : frontier) {
            if (nfa->AcceptsWord(item.word)) slow.emplace(src, item.node);
            for (const char* label : {"a", "b", "a-", "b-"}) {
              for (const std::string& succ : g.Successors(item.node, label)) {
                Item extended = item;
                extended.node = succ;
                extended.word.push_back(label);
                next.push_back(std::move(extended));
              }
            }
          }
          frontier = std::move(next);
        }
      }
      // Paths longer than 6 can only add pairs to `fast`.
      for (const auto& p : slow) {
        EXPECT_TRUE(fast.count(p)) << pattern;
      }
      if (pattern == "a" || pattern == "a b" || pattern == "a- b") {
        // Bounded-length languages: exact agreement.
        EXPECT_EQ(fast, slow) << pattern;
      }
    }
  }
}

// --- Datalog fixpoint vs expansion semantics -----------------------------

TEST(DatalogSemanticsProperty, FixpointEqualsExpansionUnion) {
  // On a chain database of length L, TC's fixpoint must equal the union of
  // the evaluations of its expansions up to depth L (longer expansions
  // cannot match).
  const int kLength = 5;
  DatalogProgram tc = bench::TcProgram();
  Database db = bench::ChainDatabase(kLength);
  auto fixpoint = EvaluateGoal(tc, db);
  ASSERT_TRUE(fixpoint.ok());
  auto expansions = EnumerateExpansions(tc, kLength, 1000);
  ASSERT_TRUE(expansions.ok());
  std::set<Tuple> from_expansions;
  for (const ConjunctiveQuery& e : *expansions) {
    for (Tuple& t : EvaluateCq(e, db)) from_expansions.insert(std::move(t));
  }
  EXPECT_EQ(std::set<Tuple>(fixpoint->begin(), fixpoint->end()),
            from_expansions);
}

TEST(DatalogSemanticsProperty, RandomProgramsFixpointVsExpansions) {
  std::mt19937 rng(777);
  testgen::SchemaSpec schema = testgen::SmallSchema();
  for (int trial = 0; trial < 10; ++trial) {
    DatalogProgram program = testgen::RandomLinearProgram(&rng, schema, 1);
    if (!program.Validate().ok()) continue;
    Database db = testgen::RandomDatabase(&rng, schema, 2, 5);
    auto fixpoint = EvaluateGoal(program, db);
    ASSERT_TRUE(fixpoint.ok());
    // Expansion evaluations are sound: always a subset of the fixpoint.
    auto expansions = EnumerateExpansions(program, 3, 100);
    ASSERT_TRUE(expansions.ok());
    std::set<Tuple> fix(fixpoint->begin(), fixpoint->end());
    for (const ConjunctiveQuery& e : *expansions) {
      for (const Tuple& t : EvaluateCq(e, db)) {
        EXPECT_TRUE(fix.count(t)) << program.ToString() << e.ToString();
      }
    }
  }
}

}  // namespace
}  // namespace qcont

// Tests for the paper's corollaries and propositions: routing (Corollary
// 1), equivalence (Corollary 2), and H(ACk) membership/normalization
// (Propositions 3 and 4).

#include <gtest/gtest.h>

#include "core/equivalence.h"
#include "core/hack.h"
#include "core/router.h"
#include "cq/containment.h"
#include "datalog/eval.h"
#include "parser/parser.h"

namespace qcont {
namespace {

TEST(RouterTest, AcyclicGoesToAckEngine) {
  auto program = ParseProgram(
      "buys(x,y) :- likes(x,y). buys(x,y) :- trendy(x), buys(z,y). "
      "goal buys.");
  auto ucq = ParseUcq("Q(x,y) :- likes(x,y). Q(x,y) :- trendy(x), likes(z,y).");
  ASSERT_TRUE(program.ok() && ucq.ok());
  auto routed = DecideContainment(*program, *ucq);
  ASSERT_TRUE(routed.ok());
  EXPECT_EQ(routed->route, ContainmentRoute::kAckEngine);
  EXPECT_TRUE(routed->answer.contained);
  EXPECT_EQ(routed->ack_level, 1);
}

TEST(RouterTest, CyclicFallsBackToGeneralEngine) {
  auto program = ParseProgram("p() :- e(x,x). goal p.");
  auto ucq = ParseUcq("Q() :- e(x,y), e(y,z), e(z,x).");
  ASSERT_TRUE(program.ok() && ucq.ok());
  auto routed = DecideContainment(*program, *ucq);
  ASSERT_TRUE(routed.ok());
  EXPECT_EQ(routed->route, ContainmentRoute::kGeneralEngine);
  EXPECT_TRUE(routed->answer.contained);
}

TEST(RouterTest, RouteNamesAreStable) {
  EXPECT_STREQ(RouteName(ContainmentRoute::kAckEngine),
               "ACk engine (EXPTIME)");
  EXPECT_STREQ(RouteName(ContainmentRoute::kGeneralEngine),
               "general type engine (2EXPTIME)");
}

TEST(EquivalenceTest, PaperExample2) {
  // The compulsive-consumers program is EQUIVALENT to the UCQ of Example 2.
  auto program = ParseProgram(
      "buys(x,y) :- likes(x,y). buys(x,y) :- trendy(x), buys(z,y). "
      "goal buys.");
  auto ucq = ParseUcq("Q(x,y) :- likes(x,y). Q(x,y) :- trendy(x), likes(z,y).");
  ASSERT_TRUE(program.ok() && ucq.ok());
  auto answer = DatalogEquivalentToUcq(*program, *ucq);
  ASSERT_TRUE(answer.ok());
  EXPECT_TRUE(answer->program_in_ucq);
  EXPECT_TRUE(answer->ucq_in_program);
  EXPECT_TRUE(answer->equivalent);
  EXPECT_EQ(answer->route, ContainmentRoute::kAckEngine);
}

TEST(EquivalenceTest, TrueRecursionIsNotBounded) {
  auto program = ParseProgram(
      "t(x,y) :- e(x,y). t(x,y) :- e(x,z), t(z,y). goal t.");
  auto ucq = ParseUcq("Q(x,y) :- e(x,y). Q(x,y) :- e(x,z), e(z,y).");
  ASSERT_TRUE(program.ok() && ucq.ok());
  auto answer = DatalogEquivalentToUcq(*program, *ucq);
  ASSERT_TRUE(answer.ok());
  EXPECT_FALSE(answer->program_in_ucq);  // 3-paths escape
  EXPECT_TRUE(answer->ucq_in_program);
  EXPECT_FALSE(answer->equivalent);
  ASSERT_TRUE(answer->witness.has_value());
  // The witness is an expansion escaping the UCQ.
  EXPECT_FALSE(*CqContainedInUcq(*answer->witness, *ucq));
}

TEST(EquivalenceTest, UcqNotInProgramDirection) {
  auto program = ParseProgram("t(x,y) :- e(x,y). goal t.");
  auto ucq = ParseUcq("Q(x,y) :- e(x,y). Q(x,y) :- f(x,y).");
  ASSERT_TRUE(program.ok() && ucq.ok());
  auto answer = DatalogEquivalentToUcq(*program, *ucq);
  ASSERT_TRUE(answer.ok());
  EXPECT_TRUE(answer->program_in_ucq);
  EXPECT_FALSE(answer->ucq_in_program);  // the f-disjunct is not derivable
  ASSERT_TRUE(answer->witness.has_value());
}

TEST(UcqInDatalogTest, CanonicalDatabaseCriterion) {
  auto program = ParseProgram(
      "t(x,y) :- e(x,y). t(x,y) :- e(x,z), t(z,y). goal t.");
  ASSERT_TRUE(program.ok());
  auto three_path = ParseUcq("Q(x,y) :- e(x,a), e(a,b), e(b,y).");
  ASSERT_TRUE(three_path.ok());
  EXPECT_TRUE(*UcqContainedInDatalog(*three_path, *program));
  auto backwards = ParseUcq("Q(x,y) :- e(y,x).");
  ASSERT_TRUE(backwards.ok());
  EXPECT_FALSE(*UcqContainedInDatalog(*backwards, *program));
}

TEST(HAckTest, CyclicButEquivalentToAcyclic) {
  // E(x,y) ∧ E(y,z) ∧ E(x,w) ∧ E(w,z): the core is the 2-path (fold w onto
  // y), so the query is in H(AC1) even though... (this one is acyclic
  // already). Use a genuinely cyclic-but-foldable query: a triangle with a
  // pendant self-loop dominating it.
  auto ucq = ParseUcq("Q() :- E(x,y), E(y,z), E(z,x), E(w,w).");
  ASSERT_TRUE(ucq.ok());
  auto norm = NormalizeIntoAck(*ucq);
  ASSERT_TRUE(norm.ok());
  ASSERT_TRUE(norm->in_hack);  // everything folds onto the self-loop
  EXPECT_EQ(norm->normalized->disjuncts().front().atoms().size(), 1u);
  EXPECT_TRUE(*UcqEquivalent(*ucq, *norm->normalized));
}

TEST(HAckTest, TriangleIsNotInHAck) {
  auto ucq = ParseUcq("Q() :- E(x,y), E(y,z), E(z,x).");
  ASSERT_TRUE(ucq.ok());
  auto norm = NormalizeIntoAck(*ucq);
  ASSERT_TRUE(norm.ok());
  EXPECT_FALSE(norm->in_hack);
  auto program = ParseProgram("p() :- E(x,x). goal p.");
  ASSERT_TRUE(program.ok());
  EXPECT_EQ(DatalogContainedInHAck(*program, *ucq).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(HAckTest, SubsumedDisjunctsAreDropped) {
  // The second disjunct is contained in the first; dropping it leaves an
  // acyclic UCQ even though the second is cyclic.
  auto ucq = ParseUcq(
      "Q() :- E(x,y). Q() :- E(x,y), E(y,z), E(z,x).");
  ASSERT_TRUE(ucq.ok());
  auto norm = NormalizeIntoAck(*ucq);
  ASSERT_TRUE(norm.ok());
  ASSERT_TRUE(norm->in_hack);
  EXPECT_EQ(norm->level, 1);
  EXPECT_EQ(norm->normalized->disjuncts().size(), 1u);
  EXPECT_TRUE(*UcqEquivalent(*ucq, *norm->normalized));
}

TEST(HAckTest, ContainmentThroughNormalization) {
  auto program = ParseProgram(
      "t(x,y) :- e(x,y). t(x,y) :- e(x,z), t(z,y). goal t.");
  ASSERT_TRUE(program.ok());
  // Equivalent-to-acyclic UCQ (the existential triangle folds onto the
  // self-loop) that does NOT contain transitive closure.
  auto ucq = ParseUcq(
      "Q(x,y) :- e(x,y), e(a,b), e(b,c), e(c,a), e(d,d).");
  ASSERT_TRUE(ucq.ok());
  auto answer = DatalogContainedInHAck(*program, *ucq);
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  EXPECT_FALSE(answer->contained);
}

}  // namespace
}  // namespace qcont

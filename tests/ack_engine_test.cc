#include <gtest/gtest.h>

#include <random>

#include "core/ack_containment.h"
#include "core/datalog_ucq.h"
#include "parser/parser.h"
#include "structure/classify.h"
#include "tests/engine_validation.h"
#include "tests/generators.h"

namespace qcont {
namespace {

struct Case {
  const char* name;
  const char* program;
  const char* ucq;
  bool contained;
};

class AckEngineCases : public ::testing::TestWithParam<Case> {};

TEST_P(AckEngineCases, AgreesWithGeneralEngineAndValidates) {
  const Case& c = GetParam();
  auto program = ParseProgram(c.program);
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  auto ucq = ParseUcq(c.ucq);
  ASSERT_TRUE(ucq.ok()) << ucq.status().ToString();
  AckEngineStats stats;
  auto answer = DatalogContainedInAcyclicUcq(*program, *ucq, &stats);
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  EXPECT_EQ(answer->contained, c.contained);
  EXPECT_EQ(testval::ValidateAnswer(*program, *ucq, *answer), "");
  auto general = DatalogContainedInUcq(*program, *ucq);
  ASSERT_TRUE(general.ok());
  EXPECT_EQ(answer->contained, general->contained);
  EXPECT_GT(stats.summaries, 0u);
  EXPECT_GE(stats.ack_level, 1);
}

INSTANTIATE_TEST_SUITE_P(
    AcyclicCases, AckEngineCases,
    ::testing::Values(
        Case{"consumers_yes",
             "buys(x,y) :- likes(x,y). buys(x,y) :- trendy(x), buys(z,y). "
             "goal buys.",
             "Q(x,y) :- likes(x,y). Q(x,y) :- trendy(x), likes(z,y).", true},
        Case{"consumers_no",
             "buys(x,y) :- likes(x,y). buys(x,y) :- trendy(x), buys(z,y). "
             "goal buys.",
             "Q(x,y) :- likes(x,y).", false},
        Case{"tc_single_edge",
             "t(x,y) :- e(x,y). t(x,y) :- e(x,z), t(z,y). goal t.",
             "Q(x,y) :- e(x,y).", false},
        Case{"sg_two_levels",
             "sg(x,y) :- flat(x,y). "
             "sg(x,y) :- up(x,u), sg(u,v), down(v,y). goal sg.",
             "Q(x,y) :- flat(x,y). "
             "Q(x,y) :- up(x,u), flat(u,v), down(v,y).", false},
        Case{"fold_to_edge",
             "p(x,y) :- e(x,y), e(y,x). goal p.",
             "Q(x,y) :- e(x,y).", true},
        Case{"repeated_head",
             "s(x,x) :- n(x). goal s.",
             "Q(x,y) :- n(x), n(y).", true},
        Case{"wide_atom_ac2",
             "p(x) :- t(x,y,z), e(y,z). p(x) :- t(x,y,z), e(y,w), p(w). "
             "goal p.",
             "Q(x) :- t(x,u,v).", true},
        Case{"boolean_goal",
             "g() :- p(x). p(x) :- a(x,y), p(y). p(x) :- b(x). goal g.",
             "Q() :- b(u).", true},
        Case{"nonlinear_fib",
             "t(x,y) :- e(x,y). t(x,y) :- t(x,z), t(z,y). goal t.",
             "Q(x,y) :- e(x,u), e(w,y). Q(x,y) :- e(x,y).", true}),
    [](const ::testing::TestParamInfo<Case>& info) {
      return info.param.name;
    });

TEST(AckEngineTest, RejectsCyclicUcq) {
  auto program = ParseProgram("t(x,y) :- e(x,y). goal t.");
  auto cyclic = ParseUcq("Q(x,y) :- e(x,y), e(y,z), e(z,x).");
  ASSERT_TRUE(program.ok() && cyclic.ok());
  EXPECT_EQ(DatalogContainedInAcyclicUcq(*program, *cyclic).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(AckEngineTest, ReportsAckLevel) {
  auto program = ParseProgram("p(x) :- t(x,y,z), e(y,z). goal p.");
  auto ucq = ParseUcq("Q(x) :- t(x,u,v), e(u,v).");
  ASSERT_TRUE(program.ok() && ucq.ok());
  AckEngineStats stats;
  auto answer = DatalogContainedInAcyclicUcq(*program, *ucq, &stats);
  ASSERT_TRUE(answer.ok());
  EXPECT_TRUE(answer->contained);
  EXPECT_EQ(stats.ack_level, 2);  // t and e share {u, v}
}

// The central property test of the repository: on random acyclic UCQs the
// EXPTIME ACk engine and the 2EXPTIME general engine must agree, and both
// answers must validate against expansion/witness certificates.
TEST(AckEngineProperty, AgreesWithGeneralEngineRandomized) {
  std::mt19937 rng(61803398);
  testgen::SchemaSpec schema = testgen::SmallSchema();
  int yes = 0, no = 0;
  for (int trial = 0; trial < 30; ++trial) {
    int arity = 1;
    DatalogProgram program = testgen::RandomLinearProgram(&rng, schema, arity);
    if (!program.Validate().ok()) continue;
    UnionQuery ucq = testgen::RandomAcyclicUcq(&rng, schema, 1 + rng() % 2, 3,
                                               arity);
    if (!ucq.Validate().ok()) continue;
    auto acyclic = IsAcyclicUcq(ucq);
    ASSERT_TRUE(acyclic.ok() && *acyclic);
    auto ack = DatalogContainedInAcyclicUcq(program, ucq);
    ASSERT_TRUE(ack.ok()) << ack.status().ToString() << program.ToString();
    auto general = DatalogContainedInUcq(program, ucq);
    ASSERT_TRUE(general.ok());
    EXPECT_EQ(ack->contained, general->contained)
        << program.ToString() << "\n"
        << ucq.ToString();
    EXPECT_EQ(testval::ValidateAnswer(program, ucq, *ack), "")
        << program.ToString() << "\n"
        << ucq.ToString();
    (ack->contained ? yes : no)++;
  }
  EXPECT_GT(no, 0);
}

}  // namespace
}  // namespace qcont

// Differential tests for the indexed join substrate: the indexed engine
// (dynamic atom order, per-relation hash indexes) must agree with the
// pre-index scan engine (static greedy order, full relation scans) on
// randomized instances, and must never enumerate more candidate tuples.

#include <algorithm>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "cq/database.h"
#include "cq/homomorphism.h"
#include "datalog/eval.h"
#include "tests/generators.h"

namespace qcont {
namespace {

constexpr HomSearchOptions kIndexed{.use_index = true, .exec = {}};
constexpr HomSearchOptions kScan{.use_index = false, .exec = {}};

std::vector<Tuple> Sorted(std::vector<Tuple> tuples) {
  std::sort(tuples.begin(), tuples.end());
  return tuples;
}

// Total candidate tuples the engine inspected, whichever way it got them.
std::uint64_t Candidates(const HomSearchStats& stats) {
  return stats.index_candidates + stats.scan_candidates;
}

TEST(IndexDifferentialTest, FindHomomorphismAgreesOnRandomInstances) {
  std::mt19937 rng(20260807);
  const testgen::SchemaSpec schema = testgen::SmallSchema();
  for (int trial = 0; trial < 60; ++trial) {
    Database db = testgen::RandomDatabase(&rng, schema, 4, 12);
    ConjunctiveQuery cq = testgen::RandomCq(&rng, schema, 4, 4, 1);
    HomSearchStats indexed_stats, scan_stats;
    auto indexed = FindHomomorphism(cq, db, {}, &indexed_stats, kIndexed);
    auto scan = FindHomomorphism(cq, db, {}, &scan_stats, kScan);
    EXPECT_EQ(indexed.has_value(), scan.has_value()) << "trial " << trial;
    if (indexed.has_value()) {
      // The witnesses may differ (different search orders), but both must
      // be homomorphisms: every body atom's image must be a fact.
      for (const Atom& a : cq.atoms()) {
        Tuple image;
        for (const Term& t : a.terms()) {
          image.push_back(t.is_variable() ? indexed->at(t.name()) : t.name());
        }
        EXPECT_TRUE(db.HasFact(a.predicate(), image)) << "trial " << trial;
      }
    }
  }
}

TEST(IndexDifferentialTest, EvaluateCqAgreesOnRandomInstances) {
  std::mt19937 rng(7071);
  const testgen::SchemaSpec schema = testgen::SmallSchema();
  for (int trial = 0; trial < 40; ++trial) {
    Database db = testgen::RandomDatabase(&rng, schema, 5, 16);
    ConjunctiveQuery cq = testgen::RandomCq(&rng, schema, 3, 4, 2);
    HomSearchStats indexed_stats, scan_stats;
    std::vector<Tuple> indexed =
        Sorted(EvaluateCq(cq, db, &indexed_stats, kIndexed));
    std::vector<Tuple> scan = Sorted(EvaluateCq(cq, db, &scan_stats, kScan));
    EXPECT_EQ(indexed, scan) << "trial " << trial;
    // The indexed engine only ever shrinks the candidate stream: a probe
    // returns a subset of the rows a full scan would have walked.
    EXPECT_LE(Candidates(indexed_stats), Candidates(scan_stats))
        << "trial " << trial;
  }
}

TEST(IndexDifferentialTest, EvaluateUcqAgreesOnRandomInstances) {
  std::mt19937 rng(4242);
  const testgen::SchemaSpec schema = testgen::SmallSchema();
  for (int trial = 0; trial < 25; ++trial) {
    Database db = testgen::RandomDatabase(&rng, schema, 4, 14);
    UnionQuery ucq = testgen::RandomAcyclicUcq(&rng, schema, 3, 3, 1);
    HomSearchStats indexed_stats, scan_stats;
    EXPECT_EQ(EvaluateUcq(ucq, db, &indexed_stats, kIndexed),
              EvaluateUcq(ucq, db, &scan_stats, kScan))
        << "trial " << trial;
    EXPECT_LE(Candidates(indexed_stats), Candidates(scan_stats))
        << "trial " << trial;
  }
}

TEST(IndexDifferentialTest, FixedAssignmentsAgree) {
  std::mt19937 rng(99);
  const testgen::SchemaSpec schema = testgen::BinarySchema();
  for (int trial = 0; trial < 30; ++trial) {
    Database db = testgen::RandomDatabase(&rng, schema, 4, 10);
    ConjunctiveQuery cq = testgen::RandomCq(&rng, schema, 3, 3, 0);
    // Pin the first body variable to a random domain value (mirrors the
    // frozen-head construction in the containment tests).
    Assignment fixed;
    if (!cq.atoms().empty() && !db.ActiveDomain().empty()) {
      const Term& t = cq.atoms()[0].terms()[0];
      if (t.is_variable()) {
        fixed[t.name()] = db.ActiveDomain()[rng() % db.ActiveDomain().size()];
      }
    }
    auto indexed = FindHomomorphism(cq, db, fixed, nullptr, kIndexed);
    auto scan = FindHomomorphism(cq, db, fixed, nullptr, kScan);
    EXPECT_EQ(indexed.has_value(), scan.has_value()) << "trial " << trial;
  }
}

TEST(IndexDifferentialTest, DatalogFixpointAgreesAcrossEnginesAndStrategies) {
  std::mt19937 rng(31337);
  const testgen::SchemaSpec schema = testgen::SmallSchema();
  for (int trial = 0; trial < 20; ++trial) {
    Database edb = testgen::RandomDatabase(&rng, schema, 4, 10);
    DatalogProgram program = testgen::RandomLinearProgram(&rng, schema, 2);
    std::vector<std::vector<Tuple>> goals;
    for (EvalStrategy strategy :
         {EvalStrategy::kNaive, EvalStrategy::kSemiNaive}) {
      for (bool use_index : {false, true}) {
        EvalOptions options;
        options.strategy = strategy;
        options.use_index = use_index;
        auto goal = EvaluateGoal(program, edb, options);
        ASSERT_TRUE(goal.ok()) << "trial " << trial;
        goals.push_back(*goal);
      }
    }
    for (std::size_t i = 1; i < goals.size(); ++i) {
      EXPECT_EQ(goals[0], goals[i]) << "trial " << trial << " engine " << i;
    }
  }
}

TEST(IndexDifferentialTest, SemiNaiveIndexedNeverScansMoreThanScanEngine) {
  std::mt19937 rng(555);
  const testgen::SchemaSpec schema = testgen::BinarySchema();
  for (int trial = 0; trial < 15; ++trial) {
    Database edb = testgen::RandomDatabase(&rng, schema, 5, 12);
    DatalogProgram program = testgen::RandomLinearProgram(&rng, schema, 1);
    DatalogEvalStats indexed_stats, scan_stats;
    EvalOptions indexed_options, scan_options;
    indexed_options.use_index = true;
    scan_options.use_index = false;
    auto indexed = EvaluateGoal(program, edb, indexed_options, &indexed_stats);
    auto scan = EvaluateGoal(program, edb, scan_options, &scan_stats);
    ASSERT_TRUE(indexed.ok() && scan.ok()) << "trial " << trial;
    EXPECT_EQ(*indexed, *scan) << "trial " << trial;
    EXPECT_LE(Candidates(indexed_stats.hom), Candidates(scan_stats.hom))
        << "trial " << trial;
  }
}

}  // namespace
}  // namespace qcont

// Differential tests for the indexed join substrate: the indexed engine
// (dynamic atom order, per-relation hash indexes) must agree with the
// pre-index scan engine (static greedy order, full relation scans) on
// randomized instances, and must never enumerate more candidate tuples.

#include <algorithm>
#include <random>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "base/thread_pool.h"
#include "cq/database.h"
#include "cq/homomorphism.h"
#include "datalog/eval.h"
#include "structure/acyclic_eval.h"
#include "tests/generators.h"

namespace qcont {
namespace {

constexpr HomSearchOptions kIndexed{.use_index = true, .exec = {}};
constexpr HomSearchOptions kScan{.use_index = false, .exec = {}};

std::vector<Tuple> Sorted(std::vector<Tuple> tuples) {
  std::sort(tuples.begin(), tuples.end());
  return tuples;
}

// Total candidate tuples the engine inspected, whichever way it got them.
std::uint64_t Candidates(const HomSearchStats& stats) {
  return stats.index_candidates + stats.scan_candidates;
}

TEST(IndexDifferentialTest, FindHomomorphismAgreesOnRandomInstances) {
  std::mt19937 rng(20260807);
  const testgen::SchemaSpec schema = testgen::SmallSchema();
  for (int trial = 0; trial < 60; ++trial) {
    Database db = testgen::RandomDatabase(&rng, schema, 4, 12);
    ConjunctiveQuery cq = testgen::RandomCq(&rng, schema, 4, 4, 1);
    HomSearchStats indexed_stats, scan_stats;
    auto indexed = FindHomomorphism(cq, db, {}, &indexed_stats, kIndexed);
    auto scan = FindHomomorphism(cq, db, {}, &scan_stats, kScan);
    EXPECT_EQ(indexed.has_value(), scan.has_value()) << "trial " << trial;
    if (indexed.has_value()) {
      // The witnesses may differ (different search orders), but both must
      // be homomorphisms: every body atom's image must be a fact.
      for (const Atom& a : cq.atoms()) {
        Tuple image;
        for (const Term& t : a.terms()) {
          image.push_back(t.is_variable() ? indexed->at(t.name()) : t.name());
        }
        EXPECT_TRUE(db.HasFact(a.predicate(), image)) << "trial " << trial;
      }
    }
  }
}

TEST(IndexDifferentialTest, EvaluateCqAgreesOnRandomInstances) {
  std::mt19937 rng(7071);
  const testgen::SchemaSpec schema = testgen::SmallSchema();
  for (int trial = 0; trial < 40; ++trial) {
    Database db = testgen::RandomDatabase(&rng, schema, 5, 16);
    ConjunctiveQuery cq = testgen::RandomCq(&rng, schema, 3, 4, 2);
    HomSearchStats indexed_stats, scan_stats;
    std::vector<Tuple> indexed =
        Sorted(EvaluateCq(cq, db, &indexed_stats, kIndexed));
    std::vector<Tuple> scan = Sorted(EvaluateCq(cq, db, &scan_stats, kScan));
    EXPECT_EQ(indexed, scan) << "trial " << trial;
    // The indexed engine only ever shrinks the candidate stream: a probe
    // returns a subset of the rows a full scan would have walked.
    EXPECT_LE(Candidates(indexed_stats), Candidates(scan_stats))
        << "trial " << trial;
  }
}

TEST(IndexDifferentialTest, EvaluateUcqAgreesOnRandomInstances) {
  std::mt19937 rng(4242);
  const testgen::SchemaSpec schema = testgen::SmallSchema();
  for (int trial = 0; trial < 25; ++trial) {
    Database db = testgen::RandomDatabase(&rng, schema, 4, 14);
    UnionQuery ucq = testgen::RandomAcyclicUcq(&rng, schema, 3, 3, 1);
    HomSearchStats indexed_stats, scan_stats;
    EXPECT_EQ(EvaluateUcq(ucq, db, &indexed_stats, kIndexed),
              EvaluateUcq(ucq, db, &scan_stats, kScan))
        << "trial " << trial;
    EXPECT_LE(Candidates(indexed_stats), Candidates(scan_stats))
        << "trial " << trial;
  }
}

TEST(IndexDifferentialTest, FixedAssignmentsAgree) {
  std::mt19937 rng(99);
  const testgen::SchemaSpec schema = testgen::BinarySchema();
  for (int trial = 0; trial < 30; ++trial) {
    Database db = testgen::RandomDatabase(&rng, schema, 4, 10);
    ConjunctiveQuery cq = testgen::RandomCq(&rng, schema, 3, 3, 0);
    // Pin the first body variable to a random domain value (mirrors the
    // frozen-head construction in the containment tests).
    Assignment fixed;
    if (!cq.atoms().empty() && !db.ActiveDomain().empty()) {
      const Term& t = cq.atoms()[0].terms()[0];
      if (t.is_variable()) {
        fixed[t.name()] = db.ActiveDomain()[rng() % db.ActiveDomain().size()];
      }
    }
    auto indexed = FindHomomorphism(cq, db, fixed, nullptr, kIndexed);
    auto scan = FindHomomorphism(cq, db, fixed, nullptr, kScan);
    EXPECT_EQ(indexed.has_value(), scan.has_value()) << "trial " << trial;
  }
}

TEST(IndexDifferentialTest, DatalogFixpointAgreesAcrossEnginesAndStrategies) {
  std::mt19937 rng(31337);
  const testgen::SchemaSpec schema = testgen::SmallSchema();
  for (int trial = 0; trial < 20; ++trial) {
    Database edb = testgen::RandomDatabase(&rng, schema, 4, 10);
    DatalogProgram program = testgen::RandomLinearProgram(&rng, schema, 2);
    std::vector<std::vector<Tuple>> goals;
    for (EvalStrategy strategy :
         {EvalStrategy::kNaive, EvalStrategy::kSemiNaive}) {
      for (bool use_index : {false, true}) {
        EvalOptions options;
        options.strategy = strategy;
        options.use_index = use_index;
        auto goal = EvaluateGoal(program, edb, options);
        ASSERT_TRUE(goal.ok()) << "trial " << trial;
        goals.push_back(*goal);
      }
    }
    for (std::size_t i = 1; i < goals.size(); ++i) {
      EXPECT_EQ(goals[0], goals[i]) << "trial " << trial << " engine " << i;
    }
  }
}

TEST(IndexDifferentialTest, SemiNaiveIndexedNeverScansMoreThanScanEngine) {
  std::mt19937 rng(555);
  const testgen::SchemaSpec schema = testgen::BinarySchema();
  for (int trial = 0; trial < 15; ++trial) {
    Database edb = testgen::RandomDatabase(&rng, schema, 5, 12);
    DatalogProgram program = testgen::RandomLinearProgram(&rng, schema, 1);
    DatalogEvalStats indexed_stats, scan_stats;
    EvalOptions indexed_options, scan_options;
    indexed_options.use_index = true;
    // The candidate-count invariant targets the recursive indexed engine
    // (a probe returns a subset of a scan). The block-at-a-time engine
    // fixes its atom order statically and may trade extra candidates for
    // batched probes; its differential coverage lives in
    // probe_kernel_test.cc.
    indexed_options.block_delta_joins = false;
    scan_options.use_index = false;
    auto indexed = EvaluateGoal(program, edb, indexed_options, &indexed_stats);
    auto scan = EvaluateGoal(program, edb, scan_options, &scan_stats);
    ASSERT_TRUE(indexed.ok() && scan.ok()) << "trial " << trial;
    EXPECT_EQ(*indexed, *scan) << "trial " << trial;
    EXPECT_LE(Candidates(indexed_stats.hom), Candidates(scan_stats.hom))
        << "trial " << trial;
  }
}

// ---------------------------------------------------------------------------
// Flat vs legacy storage layout. The two layouts are built from identical
// insertion sequences (copied generator), so their pools intern the same ids
// in the same order and every engine must behave bit-identically on top of
// them: same answers *and* same engine-level counters (the db-level index
// counters legitimately differ — the flat layout serves full-row probes from
// its eagerly maintained primary table — and are not compared).
// ---------------------------------------------------------------------------

std::pair<Database, Database> LayoutPair(std::mt19937* rng,
                                         const testgen::SchemaSpec& schema,
                                         int domain, int facts) {
  std::mt19937 rng2 = *rng;
  Database flat =
      testgen::RandomDatabase(rng, schema, domain, facts, DatabaseLayout::kFlat);
  Database legacy = testgen::RandomDatabase(&rng2, schema, domain, facts,
                                            DatabaseLayout::kLegacy);
  return {std::move(flat), std::move(legacy)};
}

void ExpectStatsEqual(const HomSearchStats& a, const HomSearchStats& b,
                      int trial) {
  EXPECT_EQ(a.atom_attempts, b.atom_attempts) << "trial " << trial;
  EXPECT_EQ(a.backtracks, b.backtracks) << "trial " << trial;
  EXPECT_EQ(a.index_probes, b.index_probes) << "trial " << trial;
  EXPECT_EQ(a.index_candidates, b.index_candidates) << "trial " << trial;
  EXPECT_EQ(a.scan_candidates, b.scan_candidates) << "trial " << trial;
}

TEST(LayoutDifferentialTest, HomSearchAgreesWithIdenticalStats) {
  std::mt19937 rng(20260807);
  const testgen::SchemaSpec schema = testgen::SmallSchema();
  for (int trial = 0; trial < 40; ++trial) {
    auto [flat, legacy] = LayoutPair(&rng, schema, 5, 24);
    ConjunctiveQuery cq = testgen::RandomCq(&rng, schema, 4, 4, 2);
    HomSearchStats flat_stats, legacy_stats;
    EXPECT_EQ(Sorted(EvaluateCq(cq, flat, &flat_stats, kIndexed)),
              Sorted(EvaluateCq(cq, legacy, &legacy_stats, kIndexed)))
        << "trial " << trial;
    ExpectStatsEqual(flat_stats, legacy_stats, trial);
  }
}

TEST(LayoutDifferentialTest, SemiNaiveEvalAgreesAcrossLayoutsAndThreads) {
  std::mt19937 rng(424243);
  const testgen::SchemaSpec schema = testgen::SmallSchema();
  for (int trial = 0; trial < 12; ++trial) {
    auto [flat, legacy] = LayoutPair(&rng, schema, 4, 12);
    DatalogProgram program = testgen::RandomLinearProgram(&rng, schema, 2);
    std::vector<std::vector<Tuple>> goals;
    std::vector<DatalogEvalStats> stats;
    for (const Database* edb : {&flat, &legacy}) {
      for (int threads : {1, 8}) {
        EvalOptions options;
        options.exec = ExecContext{.threads = threads, .stats = nullptr};
        DatalogEvalStats s;
        auto goal = EvaluateGoal(program, *edb, options, &s);
        ASSERT_TRUE(goal.ok()) << "trial " << trial;
        goals.push_back(*goal);
        stats.push_back(s);
      }
    }
    for (std::size_t i = 1; i < goals.size(); ++i) {
      EXPECT_EQ(goals[0], goals[i]) << "trial " << trial << " run " << i;
      EXPECT_EQ(stats[0].iterations, stats[i].iterations) << "trial " << trial;
      EXPECT_EQ(stats[0].rule_firings, stats[i].rule_firings)
          << "trial " << trial << " run " << i;
      EXPECT_EQ(stats[0].derived_facts, stats[i].derived_facts)
          << "trial " << trial << " run " << i;
      ExpectStatsEqual(stats[0].hom, stats[i].hom, trial);
    }
  }
}

TEST(LayoutDifferentialTest, YannakakisAgreesWithIdenticalStats) {
  std::mt19937 rng(777001);
  const testgen::SchemaSpec schema = testgen::SmallSchema();
  for (int trial = 0; trial < 30; ++trial) {
    auto [flat, legacy] = LayoutPair(&rng, schema, 5, 20);
    ConjunctiveQuery cq = testgen::RandomAcyclicCq(&rng, schema, 4, 1);
    YannakakisStats flat_sat, legacy_sat;
    auto sat_flat = AcyclicSatisfiable(cq, flat, {}, &flat_sat);
    auto sat_legacy = AcyclicSatisfiable(cq, legacy, {}, &legacy_sat);
    ASSERT_TRUE(sat_flat.ok() && sat_legacy.ok()) << "trial " << trial;
    EXPECT_EQ(*sat_flat, *sat_legacy) << "trial " << trial;
    EXPECT_EQ(flat_sat.semijoins, legacy_sat.semijoins) << "trial " << trial;
    EXPECT_EQ(flat_sat.tuples_scanned, legacy_sat.tuples_scanned)
        << "trial " << trial;
    EXPECT_EQ(flat_sat.index_probes, legacy_sat.index_probes)
        << "trial " << trial;

    YannakakisStats flat_eval, legacy_eval;
    auto eval_flat = EvaluateAcyclicCq(cq, flat, &flat_eval);
    auto eval_legacy = EvaluateAcyclicCq(cq, legacy, &legacy_eval);
    ASSERT_TRUE(eval_flat.ok() && eval_legacy.ok()) << "trial " << trial;
    EXPECT_EQ(Sorted(*eval_flat), Sorted(*eval_legacy)) << "trial " << trial;
    EXPECT_EQ(flat_eval.semijoins, legacy_eval.semijoins) << "trial " << trial;
    EXPECT_EQ(flat_eval.tuples_scanned, legacy_eval.tuples_scanned)
        << "trial " << trial;
    EXPECT_EQ(flat_eval.index_probes, legacy_eval.index_probes)
        << "trial " << trial;
  }
}

TEST(LayoutDifferentialTest, FactsAndDomainAgreeAcrossLayouts) {
  std::mt19937 rng(90909);
  const testgen::SchemaSpec schema = testgen::SmallSchema();
  for (int trial = 0; trial < 20; ++trial) {
    auto [flat, legacy] = LayoutPair(&rng, schema, 4, 30);
    ASSERT_EQ(flat.NumFacts(), legacy.NumFacts()) << "trial " << trial;
    ASSERT_EQ(flat.Relations(), legacy.Relations()) << "trial " << trial;
    EXPECT_EQ(flat.ActiveDomain(), legacy.ActiveDomain()) << "trial " << trial;
    for (const std::string& rel : flat.Relations()) {
      EXPECT_EQ(flat.Facts(rel), legacy.Facts(rel)) << "trial " << trial;
      const RelationId id = flat.RelationIdOf(rel);
      ASSERT_EQ(id, legacy.RelationIdOf(rel)) << "trial " << trial;
      ASSERT_EQ(flat.NumRows(id), legacy.NumRows(id)) << "trial " << trial;
      for (std::size_t r = 0; r < flat.NumRows(id); ++r) {
        std::span<const ValueId> row = flat.Row(id, r);
        EXPECT_TRUE(std::equal(row.begin(), row.end(),
                               legacy.Row(id, r).begin(),
                               legacy.Row(id, r).end()))
            << "trial " << trial;
        EXPECT_TRUE(legacy.HasRow(id, row)) << "trial " << trial;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Hash-sharded storage (DESIGN.md §17). Sharding is purely physical: for
// every shard count P — including non-power-of-two — answers, derived
// databases, and every engine-level counter must match the legacy layout
// and the unsharded flat layout exactly. P=1 is additionally bit-identical
// to previous releases (same arenas, same probe tables).
// ---------------------------------------------------------------------------

TEST(LayoutDifferentialTest, ShardedSemiNaiveAgreesWithLegacyExactly) {
  std::mt19937 rng(8081);
  const testgen::SchemaSpec schema = testgen::SmallSchema();
  for (int trial = 0; trial < 8; ++trial) {
    auto [flat, legacy] = LayoutPair(&rng, schema, 4, 14);
    DatalogProgram program = testgen::RandomLinearProgram(&rng, schema, 2);
    std::vector<std::vector<Tuple>> goals;
    std::vector<DatalogEvalStats> stats;
    // The legacy run is the oracle; the flat runs sweep the full
    // (shards, threads) grid, including the non-power-of-two P=3.
    for (const Database* edb : {&legacy, &flat}) {
      for (int shards : {1, 3, 16}) {
        if (edb->layout() == DatabaseLayout::kLegacy && shards != 1) continue;
        for (int threads : {1, 8}) {
          EvalOptions options;
          options.exec = ExecContext{.threads = threads, .stats = nullptr};
          options.shards = shards;
          DatalogEvalStats s;
          auto goal = EvaluateGoal(program, *edb, options, &s);
          ASSERT_TRUE(goal.ok()) << "trial " << trial;
          goals.push_back(*goal);
          stats.push_back(s);
        }
      }
    }
    for (std::size_t i = 1; i < goals.size(); ++i) {
      EXPECT_EQ(goals[0], goals[i]) << "trial " << trial << " run " << i;
      EXPECT_EQ(stats[0].iterations, stats[i].iterations)
          << "trial " << trial << " run " << i;
      EXPECT_EQ(stats[0].rule_firings, stats[i].rule_firings)
          << "trial " << trial << " run " << i;
      EXPECT_EQ(stats[0].derived_facts, stats[i].derived_facts)
          << "trial " << trial << " run " << i;
      ExpectStatsEqual(stats[0].hom, stats[i].hom, trial);
    }
  }
}

TEST(LayoutDifferentialTest, ReshardPreservesRowsOrderAndProbes) {
  std::mt19937 rng(16061);
  const testgen::SchemaSpec schema = testgen::SmallSchema();
  for (int trial = 0; trial < 10; ++trial) {
    Database base = testgen::RandomDatabase(&rng, schema, 5, 40);
    for (int shards : {1, 3, 16}) {
      Database sharded = base;  // copied pool: ids comparable across the two
      sharded.Reshard(shards);
      EXPECT_EQ(sharded.shard_count(), shards);
      ASSERT_EQ(sharded.NumFacts(), base.NumFacts()) << "trial " << trial;
      EXPECT_EQ(sharded.ActiveDomain(), base.ActiveDomain());
      for (const std::string& rel : base.Relations()) {
        EXPECT_EQ(sharded.Facts(rel), base.Facts(rel)) << "trial " << trial;
        const RelationId id = base.RelationIdOf(rel);
        ASSERT_EQ(sharded.NumRows(id), base.NumRows(id));
        const std::size_t arity = base.Arity(id);
        const std::uint32_t mask =
            arity >= 32 ? ~0u : ((1u << arity) - 1u);
        const Database::RowView rows = sharded.Rows(id);
        for (std::size_t r = 0; r < base.NumRows(id); ++r) {
          // Global row numbering survives resharding bit for bit.
          const std::span<const ValueId> row = base.Row(id, r);
          EXPECT_TRUE(std::equal(row.begin(), row.end(), rows[r]))
              << "trial " << trial << " P=" << shards << " row " << r;
          EXPECT_TRUE(sharded.HasRow(id, row)) << "trial " << trial;
          // A full-mask probe routed to the owning shard returns the same
          // global posting the unsharded table returns.
          const auto hits = sharded.Probe(id, mask, row);
          const auto base_hits = base.Probe(id, mask, row);
          EXPECT_TRUE(std::equal(hits.begin(), hits.end(), base_hits.begin(),
                                 base_hits.end()))
              << "trial " << trial << " P=" << shards << " row " << r;
        }
      }
      const DatabaseShardStats sh = sharded.shard_stats();
      EXPECT_EQ(sh.shards, shards);
      EXPECT_EQ(sh.rows_total, base.NumFacts());
      EXPECT_GE(sh.rows_max_shard, sh.rows_min_shard);
    }
  }
}

TEST(LayoutDifferentialTest, ShardedGrowthPastLoadKeepsEveryRowProbeable) {
  // Start sharded with near-empty tables, then append far past the ¾ load
  // point so every shard's probe table rebuilds several times mid-stream;
  // membership, postings, and the balance snapshot must stay exact.
  Database sharded;
  Database plain;
  for (Database* db : {&sharded, &plain}) {
    db->AddFact("E", {"n0", "n1"});
  }
  sharded.Reshard(3);
  const int kRows = 2000;
  for (int i = 1; i < kRows; ++i) {
    const Tuple t = {"n" + std::to_string(i), "n" + std::to_string(i + 1)};
    ASSERT_TRUE(sharded.AddFact("E", t));
    ASSERT_TRUE(plain.AddFact("E", t));
    ASSERT_FALSE(sharded.AddFact("E", t));  // dup routed to the same shard
  }
  EXPECT_EQ(sharded.NumFacts(), plain.NumFacts());
  EXPECT_EQ(sharded.Facts("E"), plain.Facts("E"));
  const RelationId id = sharded.RelationIdOf("E");
  ASSERT_EQ(sharded.NumRows(id), static_cast<std::size_t>(kRows));
  for (std::size_t r = 0; r < sharded.NumRows(id); ++r) {
    const std::span<const ValueId> row = plain.Row(id, r);
    EXPECT_TRUE(std::equal(row.begin(), row.end(), sharded.Row(id, r).begin(),
                           sharded.Row(id, r).end()));
    const auto hits = sharded.Probe(id, 0x3u, row);
    ASSERT_EQ(hits.size(), 1u) << "row " << r;
    EXPECT_EQ(hits[0], static_cast<std::uint32_t>(r));
  }
  const DatabaseShardStats sh = sharded.shard_stats();
  EXPECT_EQ(sh.shards, 3);
  EXPECT_EQ(sh.rows_total, static_cast<std::uint64_t>(kRows));
  EXPECT_GT(sh.rows_min_shard, 0u);  // splitmix64 spreads a 2000-row chain
  // No shard's table is past its growth threshold.
  EXPECT_LT(sh.max_occupancy_pct, 100.0);
}

TEST(LayoutDifferentialTest, ProbeOnlyWorkloadTakesNoExclusiveLocks) {
  // Regression test for the lock-free read contract (ARCHITECTURE.md):
  // once a database is frozen, concurrent full-mask probes touch no
  // exclusive lock — they are served entirely by the per-shard primary
  // tables. Runs under the TSAN CI leg, which would also flag any data
  // race the counter misses.
  std::mt19937 rng(515151);
  const testgen::SchemaSpec schema = testgen::BinarySchema();
  for (int shards : {1, 3}) {
    Database db = testgen::RandomDatabase(&rng, schema, 6, 200);
    if (shards > 1) db.Reshard(shards);
    const RelationId id = db.RelationIdOf(db.Relations().front());
    const std::size_t n = db.NumRows(id);
    ASSERT_GT(n, 0u);
    std::vector<ValueId> keys;
    for (std::size_t r = 0; r < n; ++r) {
      const std::span<const ValueId> row = db.Row(id, r);
      keys.insert(keys.end(), row.begin(), row.end());
    }
    const std::uint64_t locks_before = db.memo_exclusive_locks();
    const std::uint64_t epoch_before = db.mutation_epoch();
    ExecContext ctx{.threads = 4, .stats = nullptr};
    ParallelFor(ctx, 8, [&](std::size_t) {
      std::vector<std::span<const std::uint32_t>> hits(n);
      db.ProbeMany(id, 0x3u, keys,
                   std::span<std::span<const std::uint32_t>>(hits));
      for (std::size_t r = 0; r < n; ++r) {
        ASSERT_EQ(hits[r].size(), 1u);
      }
    });
    EXPECT_EQ(db.memo_exclusive_locks(), locks_before)
        << "a probe-only workload acquired an exclusive lock (P=" << shards
        << ")";
    EXPECT_EQ(db.mutation_epoch(), epoch_before);
  }
}

}  // namespace
}  // namespace qcont

// Tests for the observability layer (src/obs): registry shard-merge
// correctness under the thread pool, gauge semantics, span nesting and
// trace JSON shape, and — the load-bearing contract — that the legacy
// `*Stats` structs and the MetricRegistry mirrors report identical numbers
// for every engine that publishes both.
//
// Registry/trace unit tests run in every configuration. The engine-parity
// and span-recording tests require the hooks to be compiled in, so they
// GTEST_SKIP() under QCONT_OBS_NOOP (where ObsMetrics() is constant null
// and spans record nothing — by design).

#include <cstdio>
#include <random>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "automata/ata.h"
#include "automata/tree.h"
#include "base/thread_pool.h"
#include "core/ack_containment.h"
#include "core/datalog_ucq.h"
#include "cq/containment.h"
#include "cq/database.h"
#include "cq/homomorphism.h"
#include "datalog/eval.h"
#include "graphdb/graph_db.h"
#include "graphdb/rpq.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "parser/parser.h"
#include "structure/acyclic_eval.h"
#include "structure/decomp_eval.h"
#include "tests/generators.h"

namespace qcont {
namespace {

#ifdef QCONT_OBS_NOOP
#define QCONT_SKIP_IF_NOOP() \
  GTEST_SKIP() << "observability hooks compiled out (QCONT_OBS_NOOP)"
#else
#define QCONT_SKIP_IF_NOOP() (void)0
#endif

// ---------------------------------------------------------------------------
// MetricRegistry unit tests (valid in every configuration — the registry
// itself is never compiled out, only the engine hooks are).
// ---------------------------------------------------------------------------

TEST(MetricRegistryTest, CountsAndSnapshots) {
  MetricRegistry reg;
  reg.Add("a.x", 3);
  reg.Add("a.x", 4);
  reg.Add("a.y", 1);
  EXPECT_EQ(reg.Value("a.x"), 7u);
  EXPECT_EQ(reg.Value("a.y"), 1u);
  EXPECT_EQ(reg.Value("never.touched"), 0u);
  auto snapshot = reg.Snapshot();
  EXPECT_EQ(snapshot.at("a.x"), 7u);
  EXPECT_EQ(snapshot.at("a.y"), 1u);
  EXPECT_EQ(snapshot.size(), 2u);
}

TEST(MetricRegistryTest, GaugesAreLastWriteWins) {
  MetricRegistry reg;
  reg.SetGauge("g.width", 3);
  reg.SetGauge("g.width", 2);
  EXPECT_EQ(reg.Value("g.width"), 2u);
  EXPECT_EQ(reg.Snapshot().at("g.width"), 2u);
}

TEST(MetricRegistryTest, DenseIdsAreStableAndCheap) {
  MetricRegistry reg;
  int id = reg.Id("hot.counter");
  EXPECT_EQ(reg.Id("hot.counter"), id);
  reg.Add(id, 5);
  reg.Add(id, 5);
  EXPECT_EQ(reg.Value("hot.counter"), 10u);
}

TEST(MetricRegistryTest, ShardMergeIsExactUnderThreadPool) {
  // Every worker bumps through its own shard; the snapshot must sum to
  // exactly the number of adds regardless of how the pool scheduled them.
  MetricRegistry reg;
  const ExecContext ctx{.threads = 8, .stats = nullptr};
  constexpr std::size_t kTasks = 10'000;
  ParallelFor(ctx, kTasks, [&](std::size_t i) {
    reg.Add("pool.bumps", 1);
    if (i % 7 == 0) reg.Add("pool.sevens", 2);
  });
  EXPECT_EQ(reg.Value("pool.bumps"), kTasks);
  EXPECT_EQ(reg.Value("pool.sevens"), 2 * ((kTasks + 6) / 7));
  // At least the caller's shard exists; pool workers add theirs lazily.
  EXPECT_GE(reg.num_shards(), 1u);
}

TEST(MetricRegistryTest, TlsCacheSurvivesRegistryReuse) {
  // Two registries alive in sequence on the same thread: the thread-local
  // shard cache must not leak counts from one registry into the next.
  {
    MetricRegistry first;
    first.Add("x", 41);
    EXPECT_EQ(first.Value("x"), 41u);
  }
  MetricRegistry second;
  second.Add("x", 1);
  EXPECT_EQ(second.Value("x"), 1u);
}

// ---------------------------------------------------------------------------
// TraceSession unit tests.
// ---------------------------------------------------------------------------

TEST(TraceSessionTest, RecordsAndAggregates) {
  TraceSession session;
  TraceEvent ev;
  ev.name = "unit/alpha";
  ev.cat = "test";
  ev.ts_us = 1.0;
  ev.dur_us = 5.0;
  session.Record(ev);
  ev.name = "unit/beta";
  ev.ts_us = 2.0;
  ev.dur_us = 2.5;
  session.Record(ev);
  ev.name = "unit/alpha";
  ev.ts_us = 10.0;
  ev.dur_us = 1.0;
  session.Record(ev);
  EXPECT_EQ(session.NumEvents(), 3u);
  auto totals = session.DurationTotalsUs();
  EXPECT_DOUBLE_EQ(totals.at("unit/alpha"), 6.0);
  EXPECT_DOUBLE_EQ(totals.at("unit/beta"), 2.5);
}

TEST(TraceSessionTest, JsonHasSchemaShape) {
  TraceSession session;
  TraceEvent ev;
  ev.name = "unit/span";
  ev.cat = "test";
  ev.ts_us = 0.5;
  ev.dur_us = 1.5;
  ev.tid = 3;
  ev.args = {{"rows", 42}};
  session.Record(ev);
  const std::string json = session.ToJson();
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"unit/span\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"pid\":1"), std::string::npos);
  EXPECT_NE(json.find("\"tid\":3"), std::string::npos);
  EXPECT_NE(json.find("\"rows\":42"), std::string::npos);
}

TEST(TraceSessionTest, WriteFileRoundTrips) {
  TraceSession session;
  TraceEvent ev;
  ev.name = "unit/file";
  ev.cat = "test";
  ev.dur_us = 1.0;
  session.Record(ev);
  const std::string path =
      testing::TempDir() + "/qcont_obs_test_trace.json";
  ASSERT_TRUE(session.WriteFile(path).ok());
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string contents;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) contents.append(buf, n);
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_EQ(contents, session.ToJson());
}

// ---------------------------------------------------------------------------
// ObsSpan behavior.
// ---------------------------------------------------------------------------

TEST(ObsSpanTest, NullContextIsSafeEverywhere) {
  // Spans and counters must be placeable unconditionally.
  ObsSpan span(nullptr, "unit/null");
  span.AddArg("k", 1);
  ObsCount(nullptr, "unit.counter", 1);
  ObsGauge(nullptr, "unit.gauge", 1);
  EXPECT_EQ(ObsMetrics(nullptr), nullptr);
  ObsContext empty;  // context with both sinks null
  ObsSpan span2(&empty, "unit/empty");
  ObsCount(&empty, "unit.counter", 1);
}

TEST(ObsSpanTest, NestedSpansRecordInCloseOrderWithIntervalContainment) {
  QCONT_SKIP_IF_NOOP();
  TraceSession trace;
  ObsContext obs{nullptr, &trace};
  {
    ObsSpan outer(&obs, "unit/outer", "test");
    {
      ObsSpan inner(&obs, "unit/inner", "test");
      inner.AddArg("depth", 2);
    }
    outer.AddArg("depth", 1);
  }
  ASSERT_EQ(trace.NumEvents(), 2u);
  auto events = trace.Events();
  // RAII closes inner first.
  EXPECT_EQ(events[0].name, "unit/inner");
  EXPECT_EQ(events[1].name, "unit/outer");
  // Same thread, and the inner interval is contained in the outer one.
  EXPECT_EQ(events[0].tid, events[1].tid);
  EXPECT_GE(events[0].ts_us, events[1].ts_us);
  EXPECT_LE(events[0].ts_us + events[0].dur_us,
            events[1].ts_us + events[1].dur_us);
  ASSERT_EQ(events[0].args.size(), 1u);
  EXPECT_EQ(events[0].args[0].first, "depth");
  EXPECT_EQ(events[0].args[0].second, 2u);
}

// ---------------------------------------------------------------------------
// Engine parity: the registry mirror must equal the legacy stats sink.
// ---------------------------------------------------------------------------

TEST(ObsParityTest, UcqContainmentHomStatsMatchRegistry) {
  QCONT_SKIP_IF_NOOP();
  std::mt19937 rng(404);
  const testgen::SchemaSpec schema = testgen::SmallSchema();
  MetricRegistry reg;
  ObsContext obs{&reg, nullptr};
  HomSearchStats stats;
  for (int trial = 0; trial < 10; ++trial) {
    UnionQuery theta = testgen::RandomAcyclicUcq(&rng, schema, 3, 3, 1);
    UnionQuery theta_prime = testgen::RandomAcyclicUcq(&rng, schema, 3, 3, 1);
    if (!theta.Validate().ok() || !theta_prime.Validate().ok()) continue;
    HomSearchOptions options;
    options.obs = &obs;
    ASSERT_TRUE(UcqContained(theta, theta_prime, &stats, options).ok());
  }
  EXPECT_EQ(reg.Value("cq.contain.hom.atom_attempts"), stats.atom_attempts);
  EXPECT_EQ(reg.Value("cq.contain.hom.backtracks"), stats.backtracks);
  EXPECT_EQ(reg.Value("cq.contain.hom.index_probes"), stats.index_probes);
  EXPECT_EQ(reg.Value("cq.contain.hom.index_candidates"),
            stats.index_candidates);
  EXPECT_EQ(reg.Value("cq.contain.hom.scan_candidates"),
            stats.scan_candidates);
  EXPECT_GT(stats.atom_attempts, 0u);
}

TEST(ObsParityTest, DatalogEvalStatsMatchRegistry) {
  QCONT_SKIP_IF_NOOP();
  std::mt19937 rng(505);
  const testgen::SchemaSpec schema = testgen::SmallSchema();
  MetricRegistry reg;
  ObsContext obs{&reg, nullptr};
  DatalogEvalStats stats;
  int runs = 0;
  for (int trial = 0; trial < 8; ++trial) {
    Database edb = testgen::RandomDatabase(&rng, schema, 4, 12);
    DatalogProgram program = testgen::RandomLinearProgram(&rng, schema, 2);
    if (!program.Validate().ok()) continue;
    EvalOptions options;
    options.obs = &obs;
    ASSERT_TRUE(EvaluateProgram(program, edb, options, &stats).ok());
    ++runs;
  }
  ASSERT_GT(runs, 0);
  EXPECT_EQ(reg.Value("datalog.eval.iterations"), stats.iterations);
  EXPECT_EQ(reg.Value("datalog.eval.rule_firings"), stats.rule_firings);
  EXPECT_EQ(reg.Value("datalog.eval.derived_facts"), stats.derived_facts);
  EXPECT_EQ(reg.Value("datalog.eval.hom.atom_attempts"),
            stats.hom.atom_attempts);
  EXPECT_EQ(reg.Value("datalog.eval.hom.index_probes"),
            stats.hom.index_probes);
  EXPECT_GT(stats.iterations, 0u);
}

TEST(ObsParityTest, TypeEngineStatsMatchRegistry) {
  QCONT_SKIP_IF_NOOP();
  // One deterministic instance; kinds/types/elements are per-run gauges, so
  // parity is checked against a single run's legacy snapshot.
  auto program = ParseProgram(
      "t(X,Y) :- e(X,Y).\n"
      "t(X,Z) :- e(X,Y), t(Y,Z).\n"
      "goal(X,Y) :- t(X,Y).\n");
  ASSERT_TRUE(program.ok());
  auto ucq = ParseUcq("q(X,Y) :- e(X,Y).\nq(X,Y) :- e(X,Z), e(Z,Y).\n");
  ASSERT_TRUE(ucq.ok());
  MetricRegistry reg;
  ObsContext obs{&reg, nullptr};
  TypeEngineStats stats;
  TypeEngineOptions options;
  options.obs = &obs;
  ASSERT_TRUE(DatalogContainedInUcq(*program, *ucq, &stats, options).ok());
  EXPECT_EQ(reg.Value("typeengine.kinds"), stats.kinds);
  EXPECT_EQ(reg.Value("typeengine.types"), stats.types);
  EXPECT_EQ(reg.Value("typeengine.elements"), stats.elements);
  EXPECT_EQ(reg.Value("typeengine.combos"), stats.combos);
  EXPECT_EQ(reg.Value("typeengine.enumeration_steps"),
            stats.enumeration_steps);
  EXPECT_GT(stats.types, 0u);
}

TEST(ObsParityTest, TypeEngineBudgetErrorStillPublishes) {
  QCONT_SKIP_IF_NOOP();
  // FlushStats runs on the error path too: the registry must hold the same
  // partial counts as the legacy sink, not zeros.
  auto program = ParseProgram(
      "t(X,Y) :- e(X,Y).\n"
      "t(X,Z) :- t(X,Y), t(Y,Z).\n"
      "goal(X,Y) :- t(X,Y).\n");
  ASSERT_TRUE(program.ok());
  auto ucq = ParseUcq("q(X,Y) :- e(X,Y).\n");
  ASSERT_TRUE(ucq.ok());
  MetricRegistry reg;
  ObsContext obs{&reg, nullptr};
  TypeEngineStats stats;
  TypeEngineOptions options;
  options.obs = &obs;
  options.max_types = 1;
  auto answer = DatalogContainedInUcq(*program, *ucq, &stats, options);
  ASSERT_FALSE(answer.ok());
  EXPECT_EQ(reg.Value("typeengine.types"), stats.types);
  EXPECT_EQ(reg.Value("typeengine.combos"), stats.combos);
  EXPECT_EQ(reg.Value("typeengine.enumeration_steps"),
            stats.enumeration_steps);
}

TEST(ObsParityTest, AckEngineStatsMatchRegistry) {
  QCONT_SKIP_IF_NOOP();
  auto program = ParseProgram(
      "t(X,Y) :- e(X,Y).\n"
      "t(X,Z) :- e(X,Y), t(Y,Z).\n"
      "goal(X,Y) :- t(X,Y).\n");
  ASSERT_TRUE(program.ok());
  auto ucq = ParseUcq("q(X,Y) :- e(X,Y).\nq(X,Y) :- e(X,Z), e(Z,Y).\n");
  ASSERT_TRUE(ucq.ok());
  MetricRegistry reg;
  ObsContext obs{&reg, nullptr};
  AckEngineStats stats;
  AckEngineLimits limits;
  limits.obs = &obs;
  ASSERT_TRUE(
      DatalogContainedInAcyclicUcq(*program, *ucq, &stats, limits).ok());
  EXPECT_EQ(reg.Value("ack.kinds"), stats.kinds);
  EXPECT_EQ(reg.Value("ack.summaries"), stats.summaries);
  EXPECT_EQ(reg.Value("ack.combos"), stats.combos);
  EXPECT_EQ(reg.Value("ack.game_states"), stats.game_states);
  EXPECT_EQ(reg.Value("ack.antichain_sets"), stats.antichain_sets);
  EXPECT_EQ(reg.Value("ack.level"),
            static_cast<std::uint64_t>(stats.ack_level));
  EXPECT_GT(stats.game_states, 0u);
}

TEST(ObsParityTest, YannakakisStatsMatchRegistry) {
  QCONT_SKIP_IF_NOOP();
  std::mt19937 rng(606);
  const testgen::SchemaSpec schema = testgen::SmallSchema();
  MetricRegistry reg;
  ObsContext obs{&reg, nullptr};
  YannakakisStats stats;
  int runs = 0;
  for (int trial = 0; trial < 12; ++trial) {
    Database db = testgen::RandomDatabase(&rng, schema, 4, 20);
    ConjunctiveQuery cq = testgen::RandomCq(&rng, schema, 3, 3, 1);
    if (!cq.Validate().ok()) continue;
    auto sat = AcyclicSatisfiable(cq, db, {}, &stats, &obs);
    if (!sat.ok()) continue;  // cyclic draw
    ++runs;
  }
  ASSERT_GT(runs, 0);
  EXPECT_EQ(reg.Value("yannakakis.semijoins"), stats.semijoins);
  EXPECT_EQ(reg.Value("yannakakis.tuples_scanned"), stats.tuples_scanned);
  EXPECT_EQ(reg.Value("yannakakis.index_probes"), stats.index_probes);
  EXPECT_GT(stats.semijoins, 0u);
}

TEST(ObsParityTest, DecompEvalStatsMatchRegistry) {
  QCONT_SKIP_IF_NOOP();
  std::mt19937 rng(707);
  const testgen::SchemaSpec schema = testgen::SmallSchema();
  MetricRegistry reg;
  ObsContext obs{&reg, nullptr};
  DecompEvalStats stats;
  int runs = 0;
  for (int trial = 0; trial < 8 || runs == 0; ++trial) {
    ASSERT_LT(trial, 64) << "generator never produced a valid CQ";
    Database db = testgen::RandomDatabase(&rng, schema, 4, 15);
    ConjunctiveQuery cq = testgen::RandomCq(&rng, schema, 3, 3, 1);
    if (!cq.Validate().ok()) continue;
    auto sat = BoundedWidthSatisfiable(cq, db, {}, &stats, &obs);
    if (!sat.ok()) continue;
    ++runs;
  }
  EXPECT_EQ(reg.Value("decomp.bag_assignments"), stats.bag_assignments);
  EXPECT_EQ(reg.Value("decomp.width_used"),
            static_cast<std::uint64_t>(stats.width_used));
}

// The 2ATA from automata_test: finds a 1-leaf, climbs back to the root.
class UpDownAta : public AlternatingTreeAutomaton {
 public:
  int InitialState() const override { return 0; }
  AtaFormula Delta(int state, int symbol) const override {
    AtaFormula formula;
    if (state == 0) {
      if (symbol == 1) formula.push_back({AtaMove{0, 1}});
      formula.push_back({AtaMove{1, 0}});
      formula.push_back({AtaMove{2, 0}});
    } else if (symbol == 3) {
      formula.push_back({});
    } else {
      formula.push_back({AtaMove{-1, 1}});
    }
    return formula;
  }
};

TEST(ObsParityTest, AtaRunStatsMatchRegistry) {
  QCONT_SKIP_IF_NOOP();
  RankedTree t(3);
  int mid = t.AddChild(0, 2);
  t.AddChild(mid, 0);
  t.AddChild(mid, 1);
  UpDownAta ata;
  MetricRegistry reg;
  ObsContext obs{&reg, nullptr};
  AtaRunStats stats;
  EXPECT_TRUE(ata.Accepts(t, &stats, &obs));
  EXPECT_EQ(reg.Value("ata.positions"), stats.positions);
  EXPECT_EQ(reg.Value("ata.iterations"), stats.iterations);
  EXPECT_GT(stats.positions, 0u);
}

TEST(ObsParityTest, RpqStatsMatchRegistry) {
  QCONT_SKIP_IF_NOOP();
  GraphDatabase g;
  for (int i = 0; i < 5; ++i) {
    g.AddEdge("n" + std::to_string(i), "a", "n" + std::to_string(i + 1));
  }
  auto nfa = ParseRegex("a+");
  ASSERT_TRUE(nfa.ok());
  MetricRegistry reg;
  ObsContext obs{&reg, nullptr};
  RpqEvalStats stats;
  auto pairs = EvaluateRpq(*nfa, g, &stats, &obs);
  EXPECT_FALSE(pairs.empty());
  EXPECT_EQ(reg.Value("rpq.product_states"), stats.product_states);
  EXPECT_GT(stats.product_states, 0u);
}

// ---------------------------------------------------------------------------
// Cross-cutting: counter totals are thread-count invariant (the registry
// inherits the engines' determinism contract), and engine spans recorded
// from pool workers carry distinct tids.
// ---------------------------------------------------------------------------

TEST(ObsDeterminismTest, RegistryTotalsAreThreadCountInvariant) {
  QCONT_SKIP_IF_NOOP();
  std::mt19937 rng(808);
  const testgen::SchemaSpec schema = testgen::SmallSchema();
  Database edb = testgen::RandomDatabase(&rng, schema, 4, 12);
  DatalogProgram program = testgen::RandomLinearProgram(&rng, schema, 2);
  ASSERT_TRUE(program.Validate().ok());

  std::map<std::string, std::uint64_t> reference;
  for (int threads : {1, 2, 8}) {
    MetricRegistry reg;
    ObsContext obs{&reg, nullptr};
    EvalOptions options;
    options.obs = &obs;
    options.exec.threads = threads;
    ASSERT_TRUE(EvaluateProgram(program, edb, options).ok());
    auto snapshot = reg.Snapshot();
    EXPECT_FALSE(snapshot.empty());
    if (reference.empty()) {
      reference = snapshot;
    } else {
      EXPECT_EQ(snapshot, reference) << "threads " << threads;
    }
  }
}

TEST(ObsDeterminismTest, EngineSpansNestAndCoverRounds) {
  QCONT_SKIP_IF_NOOP();
  auto program = ParseProgram(
      "t(X,Y) :- e(X,Y).\n"
      "t(X,Z) :- e(X,Y), t(Y,Z).\n"
      "goal(X,Y) :- t(X,Y).\n");
  ASSERT_TRUE(program.ok());
  auto db = ParseDatabase("e(a,b). e(b,c). e(c,d).\n");
  ASSERT_TRUE(db.ok());
  MetricRegistry reg;
  TraceSession trace;
  ObsContext obs{&reg, &trace};
  EvalOptions options;
  options.obs = &obs;
  ASSERT_TRUE(EvaluateProgram(*program, *db, options).ok());

  std::set<std::string> names;
  for (const TraceEvent& ev : trace.Events()) names.insert(ev.name);
  EXPECT_TRUE(names.count("datalog/eval"));
  EXPECT_TRUE(names.count("datalog/round"));
  // The eval span must bound every round span.
  auto events = trace.Events();
  double eval_start = -1, eval_end = -1;
  for (const TraceEvent& ev : events) {
    if (ev.name == "datalog/eval") {
      eval_start = ev.ts_us;
      eval_end = ev.ts_us + ev.dur_us;
    }
  }
  ASSERT_GE(eval_start, 0.0);
  for (const TraceEvent& ev : events) {
    if (ev.name != "datalog/round") continue;
    EXPECT_GE(ev.ts_us + 1e-9, eval_start);
    EXPECT_LE(ev.ts_us + ev.dur_us, eval_end + 1e-9);
  }
  // Aggregation sees both span kinds.
  auto totals = trace.DurationTotalsUs();
  EXPECT_GT(totals.at("datalog/eval"), 0.0);
  EXPECT_GE(totals.at("datalog/eval"), totals.at("datalog/round"));
}

}  // namespace
}  // namespace qcont

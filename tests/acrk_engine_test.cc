#include <gtest/gtest.h>

#include <random>

#include "core/acrk_containment.h"
#include "core/datalog_ucq.h"
#include "core/datalog_uc2rpq.h"
#include "datalog/expansion.h"
#include "graphdb/c2rpq.h"
#include "parser/parser.h"
#include "tests/generators.h"

namespace qcont {
namespace {

struct Case {
  const char* name;
  const char* program;
  const char* gamma;
  bool contained;
};

class AcrkEngineCases : public ::testing::TestWithParam<Case> {};

TEST_P(AcrkEngineCases, DecidesAndCertifiesWitnesses) {
  const Case& c = GetParam();
  auto program = ParseProgram(c.program);
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  auto gamma = ParseUC2rpq(c.gamma);
  ASSERT_TRUE(gamma.ok()) << gamma.status().ToString();
  AcrkEngineStats stats;
  auto answer = DatalogContainedInAcyclicUC2rpq(*program, *gamma, &stats);
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  EXPECT_EQ(answer->contained, c.contained);
  if (!answer->contained) {
    // The witness expansion must escape Γ yet be derivable (it is an
    // expansion by construction; check the escape half).
    ASSERT_TRUE(answer->witness.has_value());
    UnionQuery single({*answer->witness});
    auto escapes = UcqContainedInUC2rpq(single, *gamma);
    ASSERT_TRUE(escapes.ok());
    EXPECT_FALSE(*escapes) << answer->witness->ToString();
  }
  EXPECT_GT(stats.summaries, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    GraphCases, AcrkEngineCases,
    ::testing::Values(
        Case{"tc_in_aplus",
             "t(x,y) :- a(x,y). t(x,y) :- a(x,z), t(z,y). goal t.",
             "Q(x,y) :- [a+](x,y).", true},
        Case{"tc_not_in_a",
             "t(x,y) :- a(x,y). t(x,y) :- a(x,z), t(z,y). goal t.",
             "Q(x,y) :- [a](x,y).", false},
        Case{"union_labels",
             "t(x,y) :- a(x,y). t(x,y) :- b(x,y). "
             "t(x,y) :- a(x,z), t(z,y). t(x,y) :- b(x,z), t(z,y). goal t.",
             "Q(x,y) :- [(a|b)+](x,y).", true},
        Case{"inverse_direction",
             "r(x,y) :- a(y,x). goal r.", "Q(x,y) :- [a-](x,y).", true},
        Case{"multiedge_both",
             "p(x,y) :- a(x,y), b(x,y). goal p.",
             "Q(x,y) :- [a](x,y), [b](x,y).", true},
        Case{"multiedge_missing",
             "p(x,y) :- a(x,y). goal p.",
             "Q(x,y) :- [a](x,y), [b](x,y).", false},
        Case{"loop_atom",
             "p(x,y) :- a(x,y), s(y,y). goal p.",
             "Q(x,y) :- [a](x,y), [s](y,y).", true},
        Case{"boolean_path",
             "g() :- a(x,y), b(y,z). goal g.", "Q() :- [a b](u,v).", true},
        Case{"boolean_path_wrong_direction",
             "g() :- a(x,y), b(z,y). goal g.", "Q() :- [a b](u,v).", false},
        Case{"even_paths",
             "e(x,y) :- a(x,z), a(z,y). "
             "e(x,y) :- a(x,z), a(z,w), e(w,y). goal e.",
             "Q(x,y) :- [a a (a a)*](x,y).", true},
        Case{"odd_escapes_even",
             "t(x,y) :- a(x,y). t(x,y) :- a(x,z), t(z,y). goal t.",
             "Q(x,y) :- [a a (a a)*](x,y).", false},
        // Opposing multiedges (the x<->y bundle of Examples 5/6).
        Case{"opposing_pair",
             "p(x,y) :- a(x,y), c(y,x). goal p.",
             "Q(x,y) :- [a](x,y), [c-](x,y).", true},
        // A star shape: center with two leaf constraints.
        Case{"star",
             "p(x) :- a(x,y), b(x,z), m(z,z). p(x) :- a(x,y), b(x,z), "
             "m(w,w), p(w). goal p.",
             "Q(x) :- [a](x,u), [b](x,v).", true}),
    [](const ::testing::TestParamInfo<Case>& info) {
      return info.param.name;
    });

TEST(AcrkEngineTest, RejectsCyclicGamma) {
  auto program = ParseProgram("t(x,y) :- a(x,y). goal t.");
  auto cyclic = ParseUC2rpq("Q(x,y) :- [a](x,y), [a](y,z), [a](z,x).");
  ASSERT_TRUE(program.ok() && cyclic.ok());
  EXPECT_EQ(
      DatalogContainedInAcyclicUC2rpq(*program, *cyclic).status().code(),
      StatusCode::kFailedPrecondition);
}

TEST(AcrkEngineTest, RejectsNonBinarySchema) {
  auto program = ParseProgram("t(x,y) :- r(x,y,z). goal t.");
  auto gamma = ParseUC2rpq("Q(x,y) :- [a](x,y).");
  ASSERT_TRUE(program.ok() && gamma.ok());
  EXPECT_EQ(
      DatalogContainedInAcyclicUC2rpq(*program, *gamma).status().code(),
      StatusCode::kInvalidArgument);
}

TEST(AcrkEngineTest, ReportsAcrkLevel) {
  auto program = ParseProgram("p(x,y) :- a(x,y). goal p.");
  auto gamma = ParseUC2rpq("Q(x,y) :- [a](x,y), [a*](x,y).");
  ASSERT_TRUE(program.ok() && gamma.ok());
  AcrkEngineStats stats;
  auto answer = DatalogContainedInAcyclicUC2rpq(*program, *gamma, &stats);
  ASSERT_TRUE(answer.ok());
  EXPECT_TRUE(answer->contained);
  EXPECT_EQ(stats.acrk_level, 2);
}

// Property: on UC2RPQs whose regexes are single symbols, the ACRk engine
// must agree with the relational UCQ engines (the two semantics coincide).
TEST(AcrkEngineProperty, AgreesWithUcqEngineOnSingleSymbolQueries) {
  std::mt19937 rng(271828);
  testgen::SchemaSpec schema = testgen::BinarySchema();
  int yes = 0, no = 0;
  for (int trial = 0; trial < 25; ++trial) {
    DatalogProgram program = testgen::RandomLinearProgram(&rng, schema, 1);
    if (!program.Validate().ok()) continue;
    // Random acyclic UCQ over binary atoms -> mirrored UC2RPQ.
    UnionQuery ucq = testgen::RandomAcyclicUcq(&rng, schema, 1, 3, 1);
    if (!ucq.Validate().ok()) continue;
    std::vector<C2rpq> disjuncts;
    bool convertible = true;
    for (const ConjunctiveQuery& cq : ucq.disjuncts()) {
      std::vector<RpqAtom> atoms;
      for (const Atom& a : cq.atoms()) {
        auto atom = MakeRpqAtom(a.predicate(), a.terms()[0], a.terms()[1]);
        if (!atom.ok()) {
          convertible = false;
          break;
        }
        atoms.push_back(std::move(*atom));
      }
      disjuncts.emplace_back(cq.head(), std::move(atoms));
    }
    if (!convertible) continue;
    UC2rpq gamma(std::move(disjuncts));
    auto acyclic = IsAcyclicUC2rpq(gamma);
    if (!acyclic.ok() || !*acyclic) continue;
    auto rpq_answer = DatalogContainedInAcyclicUC2rpq(program, gamma);
    ASSERT_TRUE(rpq_answer.ok()) << rpq_answer.status().ToString();
    auto ucq_answer = DatalogContainedInUcq(program, ucq);
    ASSERT_TRUE(ucq_answer.ok());
    EXPECT_EQ(rpq_answer->contained, ucq_answer->contained)
        << program.ToString() << "\n"
        << gamma.ToString();
    (rpq_answer->contained ? yes : no)++;
  }
  EXPECT_GT(yes + no, 5);
  EXPECT_GT(no, 0);
}

// Property: on random binary-schema programs and random acyclic UC2RPQs
// with genuinely regular atoms, engine answers validate against bounded
// expansion enumeration (complete C2RPQ evaluation on each expansion).
TEST(AcrkEngineProperty, RandomRegexCrossValidation) {
  std::mt19937 rng(99991);
  testgen::SchemaSpec schema = testgen::BinarySchema();
  const std::vector<std::string> patterns = {"a",      "b",        "a b",
                                             "a+",     "(a|b)*",   "a- ",
                                             "b a*",   "a|b",      "b-"};
  int yes = 0, no = 0;
  for (int trial = 0; trial < 25; ++trial) {
    DatalogProgram program = testgen::RandomLinearProgram(&rng, schema, 1);
    if (!program.Validate().ok()) continue;
    // Random chain-shaped gamma of 1-2 atoms (strongly acyclic).
    int m = 1 + rng() % 2;
    std::vector<RpqAtom> atoms;
    for (int i = 0; i < m; ++i) {
      auto atom = MakeRpqAtom(patterns[rng() % patterns.size()],
                              Term::Variable("x" + std::to_string(i)),
                              Term::Variable("x" + std::to_string(i + 1)));
      ASSERT_TRUE(atom.ok());
      atoms.push_back(std::move(*atom));
    }
    UC2rpq gamma({C2rpq({Term::Variable("x0")}, std::move(atoms))});
    auto answer = DatalogContainedInAcyclicUC2rpq(program, gamma);
    ASSERT_TRUE(answer.ok()) << answer.status().ToString();
    if (answer->contained) {
      auto exps = EnumerateExpansions(program, 4, 150);
      ASSERT_TRUE(exps.ok());
      for (const ConjunctiveQuery& e : *exps) {
        UnionQuery single({e});
        auto contained = UcqContainedInUC2rpq(single, gamma);
        ASSERT_TRUE(contained.ok());
        EXPECT_TRUE(*contained)
            << program.ToString() << gamma.ToString() << "\n"
            << e.ToString();
      }
      ++yes;
    } else {
      ASSERT_TRUE(answer->witness.has_value());
      UnionQuery single({*answer->witness});
      auto contained = UcqContainedInUC2rpq(single, gamma);
      ASSERT_TRUE(contained.ok());
      EXPECT_FALSE(*contained)
          << program.ToString() << gamma.ToString() << "\n"
          << answer->witness->ToString();
      ++no;
    }
  }
  EXPECT_GT(yes + no, 10);
  EXPECT_GT(no, 0);
}

TEST(GeneralUc2rpqTest, RoutesAcyclicToExactEngine) {
  auto program = ParseProgram(
      "t(x,y) :- a(x,y). t(x,y) :- a(x,z), t(z,y). goal t.");
  auto gamma = ParseUC2rpq("Q(x,y) :- [a+](x,y).");
  ASSERT_TRUE(program.ok() && gamma.ok());
  auto answer = DatalogContainedInUC2rpq(*program, *gamma);
  ASSERT_TRUE(answer.ok());
  EXPECT_TRUE(answer->used_exact_engine);
  EXPECT_EQ(answer->verdict, Uc2rpqVerdict::kContained);
}

TEST(GeneralUc2rpqTest, CyclicGammaRefutationSearch) {
  auto program = ParseProgram("p(x,y) :- a(x,y). goal p.");
  // A cyclic Γ (triangle); a single a-edge cannot satisfy it.
  auto gamma = ParseUC2rpq("Q(x,y) :- [a](x,y), [a](y,z), [a](z,x).");
  ASSERT_TRUE(program.ok() && gamma.ok());
  auto answer = DatalogContainedInUC2rpq(*program, *gamma);
  ASSERT_TRUE(answer.ok());
  EXPECT_FALSE(answer->used_exact_engine);
  EXPECT_EQ(answer->verdict, Uc2rpqVerdict::kNotContained);
  EXPECT_TRUE(answer->witness.has_value());
}

TEST(GeneralUc2rpqTest, CyclicGammaUnknownWhenExhausted) {
  // Self-loop program satisfies the triangle query (fold), so no refutation
  // exists and the bounded search must report kUnknown.
  auto program = ParseProgram("p(x,y) :- a(x,y), a(y,x), a(x,x). goal p.");
  auto gamma = ParseUC2rpq("Q(x,y) :- [a](x,y), [a](y,z), [a](z,x).");
  ASSERT_TRUE(program.ok() && gamma.ok());
  auto answer = DatalogContainedInUC2rpq(*program, *gamma);
  ASSERT_TRUE(answer.ok());
  EXPECT_EQ(answer->verdict, Uc2rpqVerdict::kUnknown);
}

}  // namespace
}  // namespace qcont

// Property tests for the certified decomposition engine
// (src/structure/decomposition.h): every certificate the builders produce
// passes the independent verifier, and mutated certificates — dropped bag
// content, broken connectedness, misstated width, emptied covers — are
// rejected. See DESIGN.md §14.

#include "structure/decomposition.h"

#include <algorithm>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "structure/graph.h"
#include "structure/join_tree.h"
#include "tests/generators.h"

namespace qcont {
namespace {

UndirectedGraph Cycle(int n) {
  UndirectedGraph g(n);
  for (int i = 0; i < n; ++i) g.AddEdge(i, (i + 1) % n);
  return g;
}

UndirectedGraph Clique(int n) {
  UndirectedGraph g(n);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) g.AddEdge(i, j);
  }
  return g;
}

UndirectedGraph RandomGraph(std::mt19937* rng, int n, double p) {
  UndirectedGraph g(n);
  std::bernoulli_distribution edge(p);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      if (edge(*rng)) g.AddEdge(i, j);
    }
  }
  return g;
}

TEST(ExactEliminationTest, KnownWidths) {
  EXPECT_EQ(DecomposeGraph(Cycle(5)).claimed_width, 2);
  EXPECT_EQ(DecomposeGraph(Clique(5)).claimed_width, 4);
  UndirectedGraph path(6);
  for (int i = 0; i + 1 < 6; ++i) path.AddEdge(i, i + 1);
  EXPECT_EQ(DecomposeGraph(path).claimed_width, 1);
  EXPECT_TRUE(DecomposeGraph(path).exact);
}

TEST(ExactEliminationTest, RefusesLargeGraphs) {
  EXPECT_EQ(ExactEliminationOrder(Clique(25), 20).status().code(),
            StatusCode::kResourceExhausted);
}

TEST(ExactEliminationTest, DegeneracyIsALowerBound) {
  std::mt19937 rng(7);
  for (int round = 0; round < 30; ++round) {
    UndirectedGraph g = RandomGraph(&rng, 3 + rng() % 8, 0.4);
    DecompositionCertificate cert = DecomposeGraph(g);
    ASSERT_TRUE(cert.exact);
    EXPECT_LE(DegeneracyLowerBound(g), std::max(0, cert.claimed_width));
  }
}

// The builder self-verifies (a failure aborts), but the property the tests
// own is that verification *here*, with a fresh call, also accepts.
TEST(DecompositionPropertyTest, ProducedGraphCertificatesVerify) {
  std::mt19937 rng(42);
  for (int round = 0; round < 60; ++round) {
    const int n = 1 + rng() % 14;
    UndirectedGraph g = RandomGraph(&rng, n, 0.1 + 0.05 * (rng() % 10));
    DecomposeOptions options;
    // Half the rounds force the heuristic path (exact disabled).
    options.exact_max_vertices = (round % 2 == 0) ? 20 : 0;
    DecompositionCertificate cert = DecomposeGraph(g, options);
    EXPECT_TRUE(VerifyCertificate(cert, g).ok()) << "round " << round;
    EXPECT_EQ(cert.claimed_width, cert.Width());
  }
}

TEST(DecompositionPropertyTest, ProducedHypergraphCertificatesVerify) {
  std::mt19937 rng(43);
  const testgen::SchemaSpec schema = testgen::SmallSchema();
  for (int round = 0; round < 60; ++round) {
    ConjunctiveQuery cq =
        (round % 2 == 0)
            ? testgen::RandomCq(&rng, schema, 2 + rng() % 4, 2 + rng() % 4, 1)
            : testgen::RandomAcyclicCq(&rng, schema, 2 + rng() % 5, 1);
    Hypergraph h = CqHypergraph(cq);
    DecompositionCertificate cert = DecomposeHypergraph(h);
    EXPECT_TRUE(VerifyCertificate(cert, h).ok()) << "round " << round;
    EXPECT_EQ(cert.kind, DecompositionKind::kGeneralizedHypertree);
    // GHW = 1 exactly characterizes acyclicity (GYO), so the set-cover
    // bound must agree with the join-tree test on width 1.
    EXPECT_EQ(cert.claimed_width <= 1, IsAcyclic(cq)) << "round " << round;
  }
}

TEST(DecompositionPropertyTest, JoinTreeCertificatesVerify) {
  std::mt19937 rng(44);
  const testgen::SchemaSpec schema = testgen::SmallSchema();
  for (int round = 0; round < 60; ++round) {
    ConjunctiveQuery cq =
        testgen::RandomAcyclicCq(&rng, schema, 1 + rng() % 6, 1);
    Result<JoinTree> jt = BuildJoinTree(cq);
    ASSERT_TRUE(jt.ok()) << "round " << round;
    Result<DecompositionCertificate> cert = CertificateFromJoinTree(cq, *jt);
    ASSERT_TRUE(cert.ok()) << "round " << round;
    EXPECT_TRUE(cert->exact);
    EXPECT_LE(cert->claimed_width, 1);
    EXPECT_TRUE(VerifyCertificate(*cert, CqHypergraph(cq)).ok());
  }
}

// --- Mutations: each one must be caught by the independent verifier. ---

TEST(CertificateMutationTest, MisstatedWidthIsRejected) {
  std::mt19937 rng(45);
  for (int round = 0; round < 40; ++round) {
    UndirectedGraph g = RandomGraph(&rng, 2 + rng() % 10, 0.4);
    DecompositionCertificate cert = DecomposeGraph(g);
    DecompositionCertificate overstated = cert;
    overstated.claimed_width += 1;
    EXPECT_FALSE(VerifyCertificate(overstated, g).ok()) << "round " << round;
    if (cert.claimed_width >= 0) {
      DecompositionCertificate understated = cert;
      understated.claimed_width -= 1;
      EXPECT_FALSE(VerifyCertificate(understated, g).ok())
          << "round " << round;
    }
  }
}

TEST(CertificateMutationTest, DroppedVertexIsRejected) {
  std::mt19937 rng(46);
  for (int round = 0; round < 40; ++round) {
    const int n = 2 + rng() % 10;
    UndirectedGraph g = RandomGraph(&rng, n, 0.4);
    DecompositionCertificate cert = DecomposeGraph(g);
    // Erase one vertex from every bag: vertex coverage must now fail (and
    // usually edge coverage too). The claimed width is recomputed so the
    // only violated property is coverage.
    const int victim = static_cast<int>(rng() % n);
    DecompositionCertificate mutated = cert;
    for (std::vector<int>& bag : mutated.bags) {
      bag.erase(std::remove(bag.begin(), bag.end(), victim), bag.end());
    }
    mutated.claimed_width = mutated.Width();
    EXPECT_FALSE(VerifyCertificate(mutated, g).ok()) << "round " << round;
  }
}

TEST(CertificateMutationTest, DroppedBagIsRejected) {
  // Hand-built minimal path certificate: bags {0,1},{1,2} joined by one
  // tree edge. Dropping the second bag (and its edge) leaves graph edge
  // (1,2) uncovered and vertex 2 in no bag.
  UndirectedGraph path(3);
  path.AddEdge(0, 1);
  path.AddEdge(1, 2);
  DecompositionCertificate cert;
  cert.kind = DecompositionKind::kTree;
  cert.num_vertices = 3;
  cert.bags = {{0, 1}, {1, 2}};
  cert.edges = {{0, 1}};
  cert.claimed_width = 1;
  ASSERT_TRUE(VerifyCertificate(cert, path).ok());

  DecompositionCertificate mutated = cert;
  mutated.bags.pop_back();
  mutated.edges.clear();
  mutated.claimed_width = mutated.Width();
  EXPECT_FALSE(VerifyCertificate(mutated, path).ok());
}

TEST(CertificateMutationTest, BrokenConnectednessIsRejected) {
  std::mt19937 rng(47);
  int mutated_rounds = 0;
  for (int round = 0; round < 60; ++round) {
    const int n = 3 + rng() % 10;
    UndirectedGraph g = RandomGraph(&rng, n, 0.4);
    DecompositionCertificate cert = DecomposeGraph(g);
    ASSERT_TRUE(VerifyCertificate(cert, g).ok());
    // Pick a vertex v and a bag that does NOT contain v, then hang a new
    // bag {v} off that bag. v's occurrence set in the tree is now
    // disconnected (the new leaf is separated from v's subtree by a
    // v-free bag), which is exactly the running-intersection violation.
    for (int b = 0; b < static_cast<int>(cert.bags.size()); ++b) {
      const std::vector<int>& bag = cert.bags[b];
      int v = -1;
      for (int candidate = 0; candidate < n; ++candidate) {
        bool in_bag = std::binary_search(bag.begin(), bag.end(), candidate);
        bool in_some = false;
        for (const std::vector<int>& other : cert.bags) {
          if (std::binary_search(other.begin(), other.end(), candidate)) {
            in_some = true;
            break;
          }
        }
        if (!in_bag && in_some) {
          v = candidate;
          break;
        }
      }
      if (v < 0) continue;
      DecompositionCertificate mutated = cert;
      mutated.bags.push_back({v});
      mutated.edges.emplace_back(b, static_cast<int>(cert.bags.size()));
      mutated.claimed_width = mutated.Width();
      EXPECT_FALSE(VerifyCertificate(mutated, g).ok()) << "round " << round;
      ++mutated_rounds;
      break;
    }
  }
  // The construction needs a (vertex, bag-without-it) pair; make sure the
  // loop actually exercised it.
  EXPECT_GT(mutated_rounds, 20);
}

TEST(CertificateMutationTest, EmptiedCoverIsRejected) {
  std::mt19937 rng(48);
  const testgen::SchemaSpec schema = testgen::SmallSchema();
  for (int round = 0; round < 40; ++round) {
    ConjunctiveQuery cq =
        testgen::RandomCq(&rng, schema, 2 + rng() % 4, 2 + rng() % 4, 1);
    Hypergraph h = CqHypergraph(cq);
    DecompositionCertificate cert = DecomposeHypergraph(h);
    ASSERT_TRUE(VerifyCertificate(cert, h).ok());
    int nonempty = -1;
    for (int i = 0; i < static_cast<int>(cert.bags.size()); ++i) {
      if (!cert.bags[i].empty()) {
        nonempty = i;
        break;
      }
    }
    if (nonempty < 0) continue;
    DecompositionCertificate mutated = cert;
    mutated.covers[nonempty].clear();
    mutated.claimed_width = mutated.Width();
    EXPECT_FALSE(VerifyCertificate(mutated, h).ok()) << "round " << round;
  }
}

TEST(CertificateMutationTest, OutOfRangeBagVertexIsRejected) {
  UndirectedGraph g(2);
  g.AddEdge(0, 1);
  DecompositionCertificate cert = DecomposeGraph(g);
  cert.bags.front().push_back(99);
  std::sort(cert.bags.front().begin(), cert.bags.front().end());
  cert.claimed_width = cert.Width();
  EXPECT_FALSE(VerifyCertificate(cert, g).ok());
}

}  // namespace
}  // namespace qcont

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cq/database.h"
#include "cq/homomorphism.h"
#include "cq/query.h"

namespace qcont {
namespace {

ConjunctiveQuery PathQuery(int n) {
  // (x0,xn) <- E(x0,x1), ..., E(x{n-1},xn)
  std::vector<Atom> atoms;
  for (int i = 0; i < n; ++i) {
    atoms.emplace_back("E", std::vector<Term>{
                                Term::Variable("x" + std::to_string(i)),
                                Term::Variable("x" + std::to_string(i + 1))});
  }
  return ConjunctiveQuery(
      {Term::Variable("x0"), Term::Variable("x" + std::to_string(n))},
      std::move(atoms));
}

TEST(TermTest, KindsAndEquality) {
  Term x = Term::Variable("x");
  Term c = Term::Constant("x");
  EXPECT_TRUE(x.is_variable());
  EXPECT_TRUE(c.is_constant());
  EXPECT_NE(x, c);
  EXPECT_EQ(x, Term::Variable("x"));
  EXPECT_EQ(x.ToString(), "x");
  EXPECT_EQ(c.ToString(), "'x'");
}

TEST(AtomTest, VariablesAreDeduplicated) {
  Atom a("R", {Term::Variable("x"), Term::Variable("y"), Term::Variable("x"),
               Term::Constant("c")});
  std::vector<Term> vars = a.Variables();
  ASSERT_EQ(vars.size(), 2u);
  EXPECT_EQ(vars[0].name(), "x");
  EXPECT_EQ(vars[1].name(), "y");
  EXPECT_EQ(a.ToString(), "R(x,y,x,'c')");
}

TEST(QueryTest, ValidateAcceptsSafeQuery) {
  ConjunctiveQuery cq = PathQuery(3);
  EXPECT_TRUE(cq.Validate().ok());
  EXPECT_EQ(cq.arity(), 2u);
  EXPECT_EQ(cq.Variables().size(), 4u);
  EXPECT_EQ(cq.ExistentialVariables().size(), 2u);
}

TEST(QueryTest, ValidateRejectsUnsafeHead) {
  ConjunctiveQuery cq({Term::Variable("z")},
                      {Atom("R", {Term::Variable("x")})});
  Status status = cq.Validate();
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(QueryTest, ValidateRejectsConstantHead) {
  ConjunctiveQuery cq({Term::Constant("c")},
                      {Atom("R", {Term::Variable("x")})});
  EXPECT_FALSE(cq.Validate().ok());
}

TEST(QueryTest, ValidateRejectsInconsistentArity) {
  ConjunctiveQuery cq({}, {Atom("R", {Term::Variable("x")}),
                           Atom("R", {Term::Variable("x"),
                                      Term::Variable("y")})});
  EXPECT_FALSE(cq.Validate().ok());
}

TEST(QueryTest, BooleanQuery) {
  ConjunctiveQuery cq({}, {Atom("R", {Term::Variable("x")})});
  EXPECT_TRUE(cq.Validate().ok());
  EXPECT_TRUE(cq.IsBoolean());
}

TEST(UnionQueryTest, ValidateChecksArities) {
  UnionQuery bad({PathQuery(2),
                  ConjunctiveQuery({Term::Variable("x")},
                                   {Atom("E", {Term::Variable("x"),
                                               Term::Variable("y")})})});
  EXPECT_FALSE(bad.Validate().ok());
  UnionQuery good({PathQuery(1), PathQuery(2)});
  EXPECT_TRUE(good.Validate().ok());
}

TEST(DatabaseTest, AddAndLookup) {
  Database db;
  EXPECT_TRUE(db.AddFact("R", {"a", "b"}));
  EXPECT_FALSE(db.AddFact("R", {"a", "b"}));  // duplicate
  EXPECT_TRUE(db.AddFact("R", {"b", "c"}));
  EXPECT_TRUE(db.HasFact("R", {"a", "b"}));
  EXPECT_FALSE(db.HasFact("R", {"b", "a"}));
  EXPECT_EQ(db.NumFacts(), 2u);
  EXPECT_EQ(db.Facts("R").size(), 2u);
  EXPECT_TRUE(db.Facts("S").empty());
  EXPECT_EQ(db.ActiveDomain().size(), 3u);
}

TEST(DatabaseTest, AccessorsDoNotRebuildOnDuplicateAddFact) {
  Database db;
  db.AddFact("R", {"a", "b"});
  db.AddFact("S", {"c"});
  const std::vector<std::string>& relations = db.Relations();
  const std::vector<Value>& domain = db.ActiveDomain();
  const std::string* relations_data = relations.data();
  const Value* domain_data = domain.data();
  EXPECT_EQ(relations, (std::vector<std::string>{"R", "S"}));
  EXPECT_EQ(domain, (std::vector<Value>{"a", "b", "c"}));

  // A duplicate fact and a new fact of a known relation with known values
  // must not invalidate either cached vector (no rebuild, no realloc).
  EXPECT_FALSE(db.AddFact("R", {"a", "b"}));
  EXPECT_TRUE(db.AddFact("R", {"b", "a"}));
  EXPECT_EQ(db.Relations().data(), relations_data);
  EXPECT_EQ(db.ActiveDomain().data(), domain_data);
  EXPECT_EQ(db.Relations(), (std::vector<std::string>{"R", "S"}));
  EXPECT_EQ(db.ActiveDomain(), (std::vector<Value>{"a", "b", "c"}));
}

TEST(DatabaseTest, ProbeFindsRowsByBoundPositions) {
  Database db;
  db.AddFact("E", {"1", "2"});
  db.AddFact("E", {"1", "3"});
  db.AddFact("E", {"2", "3"});
  ValueId one = db.ValueIdOf("1");
  ASSERT_NE(one, kNoValue);
  // Mask 0b01: rows whose first position is "1".
  const auto& bucket = db.Probe("E", 1u, {one});
  EXPECT_EQ(bucket.size(), 2u);
  // Indexes catch up incrementally after AddFact.
  db.AddFact("E", {"1", "4"});
  EXPECT_EQ(db.Probe("E", 1u, {one}).size(), 3u);
  EXPECT_TRUE(db.Probe("E", 1u, {db.ValueIdOf("4")}).empty());
  EXPECT_EQ(db.ValueIdOf("never-seen"), kNoValue);
  EXPECT_GE(db.index_stats().probes, 3u);
  EXPECT_GE(db.index_stats().indexes_built, 1u);
}

TEST(DatabaseTest, RowLevelApiAgreesWithStringApi) {
  for (DatabaseLayout layout : {DatabaseLayout::kFlat, DatabaseLayout::kLegacy}) {
    Database db(layout);
    db.AddFact("E", {"a", "b"});
    db.AddFact("E", {"b", "c"});
    const RelationId rel = db.RelationIdOf("E");
    ASSERT_NE(rel, kNoRelation);
    EXPECT_EQ(db.NumRows(rel), 2u);
    EXPECT_EQ(db.Arity(rel), 2u);
    const ValueId a = db.ValueIdOf("a"), b = db.ValueIdOf("b"),
                  c = db.ValueIdOf("c");
    // Row slices mirror the insertion order of the string tuples.
    EXPECT_EQ(db.Row(rel, 0)[0], a);
    EXPECT_EQ(db.Row(rel, 0)[1], b);
    EXPECT_EQ(db.Row(rel, 1)[0], b);
    EXPECT_TRUE(db.HasRow(rel, std::vector<ValueId>{a, b}));
    EXPECT_FALSE(db.HasRow(rel, std::vector<ValueId>{b, a}));
    EXPECT_FALSE(db.HasRow(rel, std::vector<ValueId>{a, kNoValue}));
    EXPECT_FALSE(db.HasRow(kNoRelation, std::vector<ValueId>{a, b}));
    // AddRow dedups against AddFact and keeps the string view consistent.
    EXPECT_FALSE(db.AddRow(rel, std::vector<ValueId>{a, b}));
    EXPECT_TRUE(db.AddRow(rel, std::vector<ValueId>{c, a}));
    EXPECT_TRUE(db.HasFact("E", {"c", "a"}));
    EXPECT_EQ(db.Facts("E").size(), 3u);
    EXPECT_EQ(db.NumFacts(), 3u);
    // The arena is the contiguous arity-strided row store (flat only).
    if (layout == DatabaseLayout::kFlat) {
      std::span<const ValueId> arena = db.Arena(rel);
      ASSERT_EQ(arena.size(), 6u);
      EXPECT_EQ(arena[4], c);
      EXPECT_EQ(arena.data() + 2, db.Row(rel, 1).data());
    } else {
      EXPECT_TRUE(db.Arena(rel).empty());
    }
    EXPECT_EQ(db.RelationIds(), (std::vector<RelationId>{rel}));
  }
}

TEST(DatabaseTest, ProbeManyMatchesProbe) {
  for (DatabaseLayout layout : {DatabaseLayout::kFlat, DatabaseLayout::kLegacy}) {
    Database db(layout);
    for (int i = 0; i < 40; ++i) {
      db.AddFact("T", {std::to_string(i % 7), std::to_string(i % 5),
                       std::to_string(i)});
    }
    const RelationId rel = db.RelationIdOf("T");
    for (std::uint32_t mask : {1u, 3u, 5u, 7u}) {
      const int width = __builtin_popcount(mask);
      std::vector<ValueId> keys;
      std::vector<std::vector<std::uint32_t>> expected;
      for (int i = 0; i < 12; ++i) {
        std::vector<ValueId> key;
        for (int j = 0; j < width; ++j) {
          key.push_back(db.ValueIdOf(std::to_string((i * 3 + j) % 9)));
        }
        auto bucket = db.Probe(rel, mask, std::span<const ValueId>(key));
        expected.emplace_back(bucket.begin(), bucket.end());
        keys.insert(keys.end(), key.begin(), key.end());
      }
      std::vector<std::span<const std::uint32_t>> out(12);
      db.ProbeMany(rel, mask, keys, out);
      for (int i = 0; i < 12; ++i) {
        EXPECT_EQ(std::vector<std::uint32_t>(out[i].begin(), out[i].end()),
                  expected[i])
            << "layout " << static_cast<int>(layout) << " mask " << mask
            << " key " << i;
      }
    }
  }
}

TEST(DatabaseTest, FlatProbeTableResizesAndCountsCollisions) {
  Database db(DatabaseLayout::kFlat);
  // Enough distinct keys to push the mask-1 probe table through several
  // capacity doublings (load kept under 3/4).
  for (int i = 0; i < 300; ++i) {
    db.AddFact("R", {"k" + std::to_string(i), "v" + std::to_string(i % 3)});
  }
  const RelationId rel = db.RelationIdOf("R");
  for (int i = 0; i < 300; ++i) {
    const ValueId key = db.ValueIdOf("k" + std::to_string(i));
    EXPECT_EQ(db.Probe(rel, 1u, std::span<const ValueId>(&key, 1)).size(), 1u);
  }
  const DatabaseIndexStats stats = db.index_stats();
  EXPECT_EQ(stats.probes, 300u);
  // The primary (full-row) table and the mask-1 table both grew past the
  // initial 16 slots.
  EXPECT_GT(stats.probe_resizes, 0u);
  EXPECT_EQ(db.layout(), DatabaseLayout::kFlat);
}

TEST(DatabaseTest, FlatServesFullMaskProbesFromPrimaryTable) {
  Database db(DatabaseLayout::kFlat);
  db.AddFact("E", {"a", "b"});
  db.AddFact("E", {"b", "c"});
  const RelationId rel = db.RelationIdOf("E");
  const std::uint64_t before = db.index_stats().indexes_built;
  std::vector<ValueId> key = {db.ValueIdOf("a"), db.ValueIdOf("b")};
  auto bucket = db.Probe(rel, 3u, std::span<const ValueId>(key));
  ASSERT_EQ(bucket.size(), 1u);
  EXPECT_EQ(bucket[0], 0u);
  // Full-mask probes ride the eagerly maintained dedup table: no lazy
  // index build.
  EXPECT_EQ(db.index_stats().indexes_built, before);
}

TEST(DatabaseTest, SharedPoolGivesComparableIds) {
  Database a;
  Database b(a.pool());
  a.AddFact("R", {"v"});
  b.AddFact("R", {"v"});
  EXPECT_EQ(a.ValueIdOf("v"), b.ValueIdOf("v"));
  EXPECT_EQ(a.ValueName(a.ValueIdOf("v")), "v");
}

TEST(DatabaseTest, UnionWith) {
  Database a, b;
  a.AddFact("R", {"x"});
  b.AddFact("R", {"x"});
  b.AddFact("S", {"y"});
  a.UnionWith(b);
  EXPECT_EQ(a.NumFacts(), 2u);
}

TEST(CanonicalDatabaseTest, FreezesVariables) {
  ConjunctiveQuery cq = PathQuery(2);
  Database db = CanonicalDatabase(cq);
  EXPECT_TRUE(db.HasFact("E", {"x0", "x1"}));
  EXPECT_TRUE(db.HasFact("E", {"x1", "x2"}));
  EXPECT_EQ(db.NumFacts(), 2u);
  EXPECT_EQ(CanonicalHead(cq), (Tuple{"x0", "x2"}));
}

TEST(HomomorphismTest, FindsPathMatch) {
  Database db;
  db.AddFact("E", {"1", "2"});
  db.AddFact("E", {"2", "3"});
  ConjunctiveQuery cq = PathQuery(2);
  auto h = FindHomomorphism(cq, db);
  ASSERT_TRUE(h.has_value());
  EXPECT_EQ(h->at("x0"), "1");
  EXPECT_EQ(h->at("x2"), "3");
}

TEST(HomomorphismTest, RespectsFixedAssignment) {
  Database db;
  db.AddFact("E", {"1", "2"});
  db.AddFact("E", {"2", "3"});
  ConjunctiveQuery cq = PathQuery(1);
  Assignment fixed = {{"x0", "2"}};
  auto h = FindHomomorphism(cq, db, fixed);
  ASSERT_TRUE(h.has_value());
  EXPECT_EQ(h->at("x1"), "3");
  fixed = {{"x0", "3"}};
  EXPECT_FALSE(FindHomomorphism(cq, db, fixed).has_value());
}

TEST(HomomorphismTest, ConstantsMustMatch) {
  Database db;
  db.AddFact("R", {"c", "1"});
  ConjunctiveQuery cq({}, {Atom("R", {Term::Constant("c"),
                                      Term::Variable("x")})});
  EXPECT_TRUE(FindHomomorphism(cq, db).has_value());
  ConjunctiveQuery cq2({}, {Atom("R", {Term::Constant("d"),
                                       Term::Variable("x")})});
  EXPECT_FALSE(FindHomomorphism(cq2, db).has_value());
}

TEST(EvaluateCqTest, PathEndpoints) {
  Database db;
  db.AddFact("E", {"1", "2"});
  db.AddFact("E", {"2", "3"});
  db.AddFact("E", {"3", "4"});
  std::vector<Tuple> result = EvaluateCq(PathQuery(2), db);
  EXPECT_EQ(result, (std::vector<Tuple>{{"1", "3"}, {"2", "4"}}));
}

TEST(EvaluateCqTest, BooleanQueryYieldsEmptyTuple) {
  Database db;
  db.AddFact("R", {"a"});
  ConjunctiveQuery cq({}, {Atom("R", {Term::Variable("x")})});
  EXPECT_EQ(EvaluateCq(cq, db), (std::vector<Tuple>{{}}));
  Database empty;
  EXPECT_TRUE(EvaluateCq(cq, empty).empty());
}

TEST(EvaluateUcqTest, UnionsResults) {
  Database db;
  db.AddFact("E", {"1", "2"});
  db.AddFact("E", {"2", "3"});
  UnionQuery ucq({PathQuery(1), PathQuery(2)});
  std::vector<Tuple> result = EvaluateUcq(ucq, db);
  EXPECT_EQ(result, (std::vector<Tuple>{{"1", "2"}, {"1", "3"}, {"2", "3"}}));
}

TEST(HomomorphismTest, RepeatedVariableInAtom) {
  Database db;
  db.AddFact("E", {"1", "1"});
  db.AddFact("E", {"1", "2"});
  ConjunctiveQuery loop({}, {Atom("E", {Term::Variable("x"),
                                        Term::Variable("x")})});
  auto h = FindHomomorphism(loop, db);
  ASSERT_TRUE(h.has_value());
  EXPECT_EQ(h->at("x"), "1");
}

}  // namespace
}  // namespace qcont

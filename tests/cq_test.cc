#include <gtest/gtest.h>

#include "cq/database.h"
#include "cq/homomorphism.h"
#include "cq/query.h"

namespace qcont {
namespace {

ConjunctiveQuery PathQuery(int n) {
  // (x0,xn) <- E(x0,x1), ..., E(x{n-1},xn)
  std::vector<Atom> atoms;
  for (int i = 0; i < n; ++i) {
    atoms.emplace_back("E", std::vector<Term>{
                                Term::Variable("x" + std::to_string(i)),
                                Term::Variable("x" + std::to_string(i + 1))});
  }
  return ConjunctiveQuery(
      {Term::Variable("x0"), Term::Variable("x" + std::to_string(n))},
      std::move(atoms));
}

TEST(TermTest, KindsAndEquality) {
  Term x = Term::Variable("x");
  Term c = Term::Constant("x");
  EXPECT_TRUE(x.is_variable());
  EXPECT_TRUE(c.is_constant());
  EXPECT_NE(x, c);
  EXPECT_EQ(x, Term::Variable("x"));
  EXPECT_EQ(x.ToString(), "x");
  EXPECT_EQ(c.ToString(), "'x'");
}

TEST(AtomTest, VariablesAreDeduplicated) {
  Atom a("R", {Term::Variable("x"), Term::Variable("y"), Term::Variable("x"),
               Term::Constant("c")});
  std::vector<Term> vars = a.Variables();
  ASSERT_EQ(vars.size(), 2u);
  EXPECT_EQ(vars[0].name(), "x");
  EXPECT_EQ(vars[1].name(), "y");
  EXPECT_EQ(a.ToString(), "R(x,y,x,'c')");
}

TEST(QueryTest, ValidateAcceptsSafeQuery) {
  ConjunctiveQuery cq = PathQuery(3);
  EXPECT_TRUE(cq.Validate().ok());
  EXPECT_EQ(cq.arity(), 2u);
  EXPECT_EQ(cq.Variables().size(), 4u);
  EXPECT_EQ(cq.ExistentialVariables().size(), 2u);
}

TEST(QueryTest, ValidateRejectsUnsafeHead) {
  ConjunctiveQuery cq({Term::Variable("z")},
                      {Atom("R", {Term::Variable("x")})});
  Status status = cq.Validate();
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(QueryTest, ValidateRejectsConstantHead) {
  ConjunctiveQuery cq({Term::Constant("c")},
                      {Atom("R", {Term::Variable("x")})});
  EXPECT_FALSE(cq.Validate().ok());
}

TEST(QueryTest, ValidateRejectsInconsistentArity) {
  ConjunctiveQuery cq({}, {Atom("R", {Term::Variable("x")}),
                           Atom("R", {Term::Variable("x"),
                                      Term::Variable("y")})});
  EXPECT_FALSE(cq.Validate().ok());
}

TEST(QueryTest, BooleanQuery) {
  ConjunctiveQuery cq({}, {Atom("R", {Term::Variable("x")})});
  EXPECT_TRUE(cq.Validate().ok());
  EXPECT_TRUE(cq.IsBoolean());
}

TEST(UnionQueryTest, ValidateChecksArities) {
  UnionQuery bad({PathQuery(2),
                  ConjunctiveQuery({Term::Variable("x")},
                                   {Atom("E", {Term::Variable("x"),
                                               Term::Variable("y")})})});
  EXPECT_FALSE(bad.Validate().ok());
  UnionQuery good({PathQuery(1), PathQuery(2)});
  EXPECT_TRUE(good.Validate().ok());
}

TEST(DatabaseTest, AddAndLookup) {
  Database db;
  EXPECT_TRUE(db.AddFact("R", {"a", "b"}));
  EXPECT_FALSE(db.AddFact("R", {"a", "b"}));  // duplicate
  EXPECT_TRUE(db.AddFact("R", {"b", "c"}));
  EXPECT_TRUE(db.HasFact("R", {"a", "b"}));
  EXPECT_FALSE(db.HasFact("R", {"b", "a"}));
  EXPECT_EQ(db.NumFacts(), 2u);
  EXPECT_EQ(db.Facts("R").size(), 2u);
  EXPECT_TRUE(db.Facts("S").empty());
  EXPECT_EQ(db.ActiveDomain().size(), 3u);
}

TEST(DatabaseTest, AccessorsDoNotRebuildOnDuplicateAddFact) {
  Database db;
  db.AddFact("R", {"a", "b"});
  db.AddFact("S", {"c"});
  const std::vector<std::string>& relations = db.Relations();
  const std::vector<Value>& domain = db.ActiveDomain();
  const std::string* relations_data = relations.data();
  const Value* domain_data = domain.data();
  EXPECT_EQ(relations, (std::vector<std::string>{"R", "S"}));
  EXPECT_EQ(domain, (std::vector<Value>{"a", "b", "c"}));

  // A duplicate fact and a new fact of a known relation with known values
  // must not invalidate either cached vector (no rebuild, no realloc).
  EXPECT_FALSE(db.AddFact("R", {"a", "b"}));
  EXPECT_TRUE(db.AddFact("R", {"b", "a"}));
  EXPECT_EQ(db.Relations().data(), relations_data);
  EXPECT_EQ(db.ActiveDomain().data(), domain_data);
  EXPECT_EQ(db.Relations(), (std::vector<std::string>{"R", "S"}));
  EXPECT_EQ(db.ActiveDomain(), (std::vector<Value>{"a", "b", "c"}));
}

TEST(DatabaseTest, ProbeFindsRowsByBoundPositions) {
  Database db;
  db.AddFact("E", {"1", "2"});
  db.AddFact("E", {"1", "3"});
  db.AddFact("E", {"2", "3"});
  ValueId one = db.ValueIdOf("1");
  ASSERT_NE(one, kNoValue);
  // Mask 0b01: rows whose first position is "1".
  const auto& bucket = db.Probe("E", 1u, {one});
  EXPECT_EQ(bucket.size(), 2u);
  // Indexes catch up incrementally after AddFact.
  db.AddFact("E", {"1", "4"});
  EXPECT_EQ(db.Probe("E", 1u, {one}).size(), 3u);
  EXPECT_TRUE(db.Probe("E", 1u, {db.ValueIdOf("4")}).empty());
  EXPECT_EQ(db.ValueIdOf("never-seen"), kNoValue);
  EXPECT_GE(db.index_stats().probes, 3u);
  EXPECT_GE(db.index_stats().indexes_built, 1u);
}

TEST(DatabaseTest, SharedPoolGivesComparableIds) {
  Database a;
  Database b(a.pool());
  a.AddFact("R", {"v"});
  b.AddFact("R", {"v"});
  EXPECT_EQ(a.ValueIdOf("v"), b.ValueIdOf("v"));
  EXPECT_EQ(a.ValueName(a.ValueIdOf("v")), "v");
}

TEST(DatabaseTest, UnionWith) {
  Database a, b;
  a.AddFact("R", {"x"});
  b.AddFact("R", {"x"});
  b.AddFact("S", {"y"});
  a.UnionWith(b);
  EXPECT_EQ(a.NumFacts(), 2u);
}

TEST(CanonicalDatabaseTest, FreezesVariables) {
  ConjunctiveQuery cq = PathQuery(2);
  Database db = CanonicalDatabase(cq);
  EXPECT_TRUE(db.HasFact("E", {"x0", "x1"}));
  EXPECT_TRUE(db.HasFact("E", {"x1", "x2"}));
  EXPECT_EQ(db.NumFacts(), 2u);
  EXPECT_EQ(CanonicalHead(cq), (Tuple{"x0", "x2"}));
}

TEST(HomomorphismTest, FindsPathMatch) {
  Database db;
  db.AddFact("E", {"1", "2"});
  db.AddFact("E", {"2", "3"});
  ConjunctiveQuery cq = PathQuery(2);
  auto h = FindHomomorphism(cq, db);
  ASSERT_TRUE(h.has_value());
  EXPECT_EQ(h->at("x0"), "1");
  EXPECT_EQ(h->at("x2"), "3");
}

TEST(HomomorphismTest, RespectsFixedAssignment) {
  Database db;
  db.AddFact("E", {"1", "2"});
  db.AddFact("E", {"2", "3"});
  ConjunctiveQuery cq = PathQuery(1);
  Assignment fixed = {{"x0", "2"}};
  auto h = FindHomomorphism(cq, db, fixed);
  ASSERT_TRUE(h.has_value());
  EXPECT_EQ(h->at("x1"), "3");
  fixed = {{"x0", "3"}};
  EXPECT_FALSE(FindHomomorphism(cq, db, fixed).has_value());
}

TEST(HomomorphismTest, ConstantsMustMatch) {
  Database db;
  db.AddFact("R", {"c", "1"});
  ConjunctiveQuery cq({}, {Atom("R", {Term::Constant("c"),
                                      Term::Variable("x")})});
  EXPECT_TRUE(FindHomomorphism(cq, db).has_value());
  ConjunctiveQuery cq2({}, {Atom("R", {Term::Constant("d"),
                                       Term::Variable("x")})});
  EXPECT_FALSE(FindHomomorphism(cq2, db).has_value());
}

TEST(EvaluateCqTest, PathEndpoints) {
  Database db;
  db.AddFact("E", {"1", "2"});
  db.AddFact("E", {"2", "3"});
  db.AddFact("E", {"3", "4"});
  std::vector<Tuple> result = EvaluateCq(PathQuery(2), db);
  EXPECT_EQ(result, (std::vector<Tuple>{{"1", "3"}, {"2", "4"}}));
}

TEST(EvaluateCqTest, BooleanQueryYieldsEmptyTuple) {
  Database db;
  db.AddFact("R", {"a"});
  ConjunctiveQuery cq({}, {Atom("R", {Term::Variable("x")})});
  EXPECT_EQ(EvaluateCq(cq, db), (std::vector<Tuple>{{}}));
  Database empty;
  EXPECT_TRUE(EvaluateCq(cq, empty).empty());
}

TEST(EvaluateUcqTest, UnionsResults) {
  Database db;
  db.AddFact("E", {"1", "2"});
  db.AddFact("E", {"2", "3"});
  UnionQuery ucq({PathQuery(1), PathQuery(2)});
  std::vector<Tuple> result = EvaluateUcq(ucq, db);
  EXPECT_EQ(result, (std::vector<Tuple>{{"1", "2"}, {"1", "3"}, {"2", "3"}}));
}

TEST(HomomorphismTest, RepeatedVariableInAtom) {
  Database db;
  db.AddFact("E", {"1", "1"});
  db.AddFact("E", {"1", "2"});
  ConjunctiveQuery loop({}, {Atom("E", {Term::Variable("x"),
                                        Term::Variable("x")})});
  auto h = FindHomomorphism(loop, db);
  ASSERT_TRUE(h.has_value());
  EXPECT_EQ(h->at("x"), "1");
}

}  // namespace
}  // namespace qcont

// End-to-end scenarios combining parser, classifiers, engines and
// evaluation — the flows the examples demonstrate, as assertions.

#include <gtest/gtest.h>

#include "core/datalog_uc2rpq.h"
#include "core/equivalence.h"
#include "core/hack.h"
#include "core/router.h"
#include "cq/homomorphism.h"
#include "datalog/eval.h"
#include "datalog/expansion.h"
#include "graphdb/graph_db.h"
#include "parser/parser.h"

namespace qcont {
namespace {

TEST(IntegrationTest, BoundednessRewriteLoop) {
  // view_rewriter's algorithm: the union of depth-<=1 expansions of the
  // consumers program is equivalent to it.
  auto program = ParseProgram(
      "buys(x,y) :- likes(x,y). buys(x,y) :- trendy(x), buys(z,y). "
      "goal buys.");
  ASSERT_TRUE(program.ok());
  auto depth0 = EnumerateExpansions(*program, 0, 100);
  UnionQuery candidate0(*depth0);
  auto routed0 = DecideContainment(*program, candidate0);
  ASSERT_TRUE(routed0.ok());
  EXPECT_FALSE(routed0->answer.contained);

  auto depth1 = EnumerateExpansions(*program, 1, 100);
  UnionQuery candidate1(*depth1);
  auto eq = DatalogEquivalentToUcq(*program, candidate1);
  ASSERT_TRUE(eq.ok());
  EXPECT_TRUE(eq->equivalent);

  // The rewriting is observably correct on a database.
  auto db = ParseDatabase(
      "likes('a','r'). trendy('a'). likes('b','s'). trendy('c').");
  auto recursive = EvaluateGoal(*program, *db);
  auto direct = EvaluateUcq(candidate1, *db);
  ASSERT_TRUE(recursive.ok());
  EXPECT_EQ(*recursive, direct);
}

TEST(IntegrationTest, WitnessIsAConcreteCounterexampleDatabase) {
  auto program = ParseProgram(
      "t(x,y) :- e(x,y). t(x,y) :- e(x,z), t(z,y). goal t.");
  auto ucq = ParseUcq("Q(x,y) :- e(x,y). Q(x,y) :- e(x,z), e(z,y).");
  ASSERT_TRUE(program.ok() && ucq.ok());
  auto routed = DecideContainment(*program, *ucq);
  ASSERT_TRUE(routed.ok());
  ASSERT_FALSE(routed->answer.contained);
  ASSERT_TRUE(routed->answer.witness.has_value());
  const ConjunctiveQuery& witness = *routed->answer.witness;
  // Build the database, run both queries, and watch them differ.
  Database db = CanonicalDatabase(witness);
  auto program_result = EvaluateGoal(*program, db);
  ASSERT_TRUE(program_result.ok());
  std::vector<Tuple> ucq_result = EvaluateUcq(*ucq, db);
  Tuple head = CanonicalHead(witness);
  EXPECT_TRUE(std::find(program_result->begin(), program_result->end(),
                        head) != program_result->end());
  EXPECT_TRUE(std::find(ucq_result.begin(), ucq_result.end(), head) ==
              ucq_result.end());
}

TEST(IntegrationTest, PolicyVerificationOnGraphPrograms) {
  auto planner = ParseProgram(
      "route(x,y) :- road(x,y). route(x,y) :- rail(x,y). "
      "route(x,y) :- road(x,z), route(z,y). "
      "route(x,y) :- rail(x,z), route(z,y). goal route.");
  ASSERT_TRUE(planner.ok());
  auto land_only = ParseUC2rpq("Q(x,y) :- [(road|rail)+](x,y).");
  ASSERT_TRUE(land_only.ok());
  auto ok_verdict = DatalogContainedInUC2rpq(*planner, *land_only);
  ASSERT_TRUE(ok_verdict.ok());
  EXPECT_EQ(ok_verdict->verdict, Uc2rpqVerdict::kContained);
  EXPECT_TRUE(ok_verdict->used_exact_engine);

  auto road_first = ParseUC2rpq("Q(x,y) :- [road (road|rail)*](x,y).");
  ASSERT_TRUE(road_first.ok());
  auto bad_verdict = DatalogContainedInUC2rpq(*planner, *road_first);
  ASSERT_TRUE(bad_verdict.ok());
  EXPECT_EQ(bad_verdict->verdict, Uc2rpqVerdict::kNotContained);
  ASSERT_TRUE(bad_verdict->witness.has_value());
  // The witness is a rail-starting route; check it violates the policy on
  // its own graph.
  GraphDatabase g =
      GraphDatabase::FromDatabase(CanonicalDatabase(*bad_verdict->witness));
  auto answers = EvaluateUC2rpq(*road_first, g);
  ASSERT_TRUE(answers.ok());
  Tuple head = CanonicalHead(*bad_verdict->witness);
  EXPECT_TRUE(std::find(answers->begin(), answers->end(), head) ==
              answers->end());
}

TEST(IntegrationTest, HAckNormalizationUnlocksTheFastEngine) {
  auto program = ParseProgram(
      "t(x,y) :- e(x,y). t(x,y) :- e(x,z), t(z,y). goal t.");
  ASSERT_TRUE(program.ok());
  // Cyclic but equivalent to an acyclic query.
  auto padded = ParseUcq(
      "Q(x,y) :- e(x,y), e(a,b), e(b,c), e(c,a), e(d,d).");
  ASSERT_TRUE(padded.ok());
  // Direct routing goes to the general engine...
  auto routed = DecideContainment(*program, *padded);
  ASSERT_TRUE(routed.ok());
  EXPECT_EQ(routed->route, ContainmentRoute::kGeneralEngine);
  // ...but normalization reaches the same verdict through the ACk engine.
  auto via_hack = DatalogContainedInHAck(*program, *padded);
  ASSERT_TRUE(via_hack.ok());
  EXPECT_EQ(via_hack->contained, routed->answer.contained);
}

TEST(IntegrationTest, EndToEndTextPipeline) {
  // Everything from strings: program, query, database; evaluate and check
  // containment agree with direct evaluation on the specific database.
  auto program = ParseProgram(
      "reach(x) :- src(x). reach(x) :- edge(y,x), reach(y). goal reach.");
  auto ucq = ParseUcq("Q(x) :- src(x). Q(x) :- edge(y,x), src(y).");
  auto db = ParseDatabase("src('s'). edge('s','m'). edge('m','t').");
  ASSERT_TRUE(program.ok() && ucq.ok() && db.ok());
  auto program_answers = EvaluateGoal(*program, *db);
  ASSERT_TRUE(program_answers.ok());
  EXPECT_EQ(program_answers->size(), 3u);  // s, m, t
  std::vector<Tuple> ucq_answers = EvaluateUcq(*ucq, *db);
  EXPECT_EQ(ucq_answers.size(), 2u);  // s, m only
  auto routed = DecideContainment(*program, *ucq);
  ASSERT_TRUE(routed.ok());
  EXPECT_FALSE(routed->answer.contained);  // 't' separates them in general
}

}  // namespace
}  // namespace qcont

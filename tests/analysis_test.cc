// Tests for the static analyzer (src/analysis): every diagnostic code, the
// Validate()/analyzer agreement, and the Theorem 5 safety story.

#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/analyzer.h"
#include "analysis/diagnostic.h"
#include "core/hardness.h"
#include "parser/parser.h"
#include "tests/generators.h"

namespace qcont {
namespace {

using analysis::AnalysisOptions;
using analysis::AnalyzeProgram;
using analysis::AnalyzeUC2rpq;
using analysis::AnalyzeUcq;
using analysis::CheckContainmentPair;
using analysis::DiagCode;
using analysis::Diagnostic;
using analysis::HasErrors;

int CountCode(const std::vector<Diagnostic>& diags, DiagCode code) {
  int n = 0;
  for (const Diagnostic& d : diags) {
    if (d.code == code) ++n;
  }
  return n;
}

const Diagnostic* FindCode(const std::vector<Diagnostic>& diags,
                           DiagCode code) {
  for (const Diagnostic& d : diags) {
    if (d.code == code) return &d;
  }
  return nullptr;
}

std::vector<Diagnostic> LintProgram(const std::string& text) {
  SourceLines lines;
  auto program = ParseProgramUnvalidated(text, &lines);
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  AnalysisOptions options;
  options.rule_lines = lines.rule_lines;
  return AnalyzeProgram(*program, options);
}

std::vector<Diagnostic> LintUcq(const std::string& text) {
  SourceLines lines;
  auto ucq = ParseUcqUnvalidated(text, &lines);
  EXPECT_TRUE(ucq.ok()) << ucq.status().ToString();
  AnalysisOptions options;
  options.rule_lines = lines.rule_lines;
  return AnalyzeUcq(*ucq, options);
}

// --- Program errors (QC001..QC005) -----------------------------------------

TEST(AnalyzeProgramTest, EmptyProgramIsQc001) {
  DatalogProgram empty({}, "g");
  auto diags = AnalyzeProgram(empty);
  EXPECT_EQ(CountCode(diags, DiagCode::kEmptyInput), 1);
  EXPECT_TRUE(HasErrors(diags));
}

TEST(AnalyzeProgramTest, UnsafeRuleIsQc002WithLine) {
  auto diags = LintProgram(
      "p(x, y) :- e(x, z).\n"
      "goal p.\n");
  const Diagnostic* d = FindCode(diags, DiagCode::kUnsafeRule);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->line, 1);
  EXPECT_EQ(d->index, 0);
  EXPECT_NE(d->message.find("'y'"), std::string::npos);
  EXPECT_EQ(analysis::DiagSeverity(d->code), analysis::Severity::kError);
}

TEST(AnalyzeProgramTest, ConstantInRuleIsQc003) {
  auto diags = LintProgram("p(x) :- e(x, 'c').\ngoal p.\n");
  EXPECT_EQ(CountCode(diags, DiagCode::kConstant), 1);
}

TEST(AnalyzeProgramTest, InconsistentArityIsQc004) {
  auto diags = LintProgram(
      "p(x) :- e(x, y).\n"
      "q(x) :- e(x), p(x).\n"
      "goal p.\n");
  const Diagnostic* d = FindCode(diags, DiagCode::kArityMismatch);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->line, 2);
}

TEST(AnalyzeProgramTest, ExtensionalGoalIsQc005) {
  auto diags = LintProgram("p(x) :- e(x, x).\ngoal e.\n");
  EXPECT_EQ(CountCode(diags, DiagCode::kGoalNotIntensional), 1);
}

// --- UCQ errors (QC004, QC006, QC007) --------------------------------------

TEST(AnalyzeUcqTest, EmptyUnionIsQc001) {
  UnionQuery empty{std::vector<ConjunctiveQuery>{}};
  EXPECT_EQ(CountCode(AnalyzeUcq(empty), DiagCode::kEmptyInput), 1);
}

TEST(AnalyzeUcqTest, UnboundFreeVariableIsQc006) {
  auto diags = LintUcq("Q(x, y) :- a(x, x).\n");
  const Diagnostic* d = FindCode(diags, DiagCode::kInvalidHead);
  ASSERT_NE(d, nullptr);
  EXPECT_NE(d->message.find("'y'"), std::string::npos);
}

TEST(AnalyzeUcqTest, ConstantHeadTermIsQc006) {
  ConjunctiveQuery cq({Term::Constant("c")},
                      {Atom("a", {Term::Variable("x"), Term::Variable("x")})});
  UnionQuery ucq({cq});
  EXPECT_EQ(CountCode(AnalyzeUcq(ucq), DiagCode::kInvalidHead), 1);
}

TEST(AnalyzeUcqTest, DisjunctArityDisagreementIsQc007) {
  ConjunctiveQuery unary({Term::Variable("x")},
                         {Atom("u", {Term::Variable("x")})});
  ConjunctiveQuery binary(
      {Term::Variable("x"), Term::Variable("y")},
      {Atom("a", {Term::Variable("x"), Term::Variable("y")})});
  UnionQuery ucq({unary, binary});
  EXPECT_EQ(CountCode(AnalyzeUcq(ucq), DiagCode::kUnionArityMismatch), 1);
}

TEST(AnalyzeUcqTest, InconsistentPredicateArityIsQc004) {
  auto diags = LintUcq("Q(x) :- a(x, y), a(x).\n");
  EXPECT_GE(CountCode(diags, DiagCode::kArityMismatch), 1);
}

// --- Containment-pair preconditions (QC003, QC004, QC007, QC008, QC009) ----

TEST(CheckContainmentPairTest, ArityDisagreementIsQc007) {
  auto program = ParseProgram("p(x, y) :- e(x, y).\ngoal p.\n");
  ASSERT_TRUE(program.ok());
  auto ucq = ParseUcq("Q(x) :- e(x, x).\n");
  ASSERT_TRUE(ucq.ok());
  auto diags = CheckContainmentPair(*program, *ucq);
  EXPECT_EQ(CountCode(diags, DiagCode::kUnionArityMismatch), 1);
}

TEST(CheckContainmentPairTest, IntensionalPredicateInQueryIsQc008) {
  auto program = ParseProgram("p(x, y) :- e(x, y).\ngoal p.\n");
  ASSERT_TRUE(program.ok());
  auto ucq = ParseUcq("Q(x, y) :- p(x, y).\n");
  ASSERT_TRUE(ucq.ok());
  auto diags = CheckContainmentPair(*program, *ucq);
  EXPECT_EQ(CountCode(diags, DiagCode::kIntensionalInQuery), 1);
}

TEST(CheckContainmentPairTest, QueryConstantIsQc003) {
  auto program = ParseProgram("p(x, y) :- e(x, y).\ngoal p.\n");
  ASSERT_TRUE(program.ok());
  auto ucq = ParseUcq("Q(x, y) :- e(x, y), u('c').\n");
  ASSERT_TRUE(ucq.ok());
  auto diags = CheckContainmentPair(*program, *ucq);
  EXPECT_EQ(CountCode(diags, DiagCode::kConstant), 1);
}

TEST(CheckContainmentPairTest, CrossArityMismatchIsQc004) {
  auto program = ParseProgram("p(x, y) :- e(x, y).\ngoal p.\n");
  ASSERT_TRUE(program.ok());
  auto ucq = ParseUcq("Q(x, y) :- e(x, y, y).\n");
  ASSERT_TRUE(ucq.ok());
  auto diags = CheckContainmentPair(*program, *ucq);
  EXPECT_EQ(CountCode(diags, DiagCode::kArityMismatch), 1);
}

TEST(CheckContainmentPairTest, TernarySchemaIsQc009ForGraphContainment) {
  auto program = ParseProgram("p(x, y) :- e(x, y, z), u(z).\ngoal p.\n");
  ASSERT_TRUE(program.ok());
  auto gamma = ParseUC2rpq("Q(x, y) :- [a](x, y).\n");
  ASSERT_TRUE(gamma.ok());
  auto diags = CheckContainmentPair(*program, *gamma);
  // 'e' (arity 3) and 'u' (arity 1) each reported once.
  EXPECT_EQ(CountCode(diags, DiagCode::kNonBinarySchema), 2);
}

// --- Program warnings (QC101..QC105) ---------------------------------------

TEST(AnalyzeProgramTest, DeadRuleIsQc101) {
  auto diags = LintProgram(
      "p(x) :- e(x, y).\n"
      "dead(x) :- e(x, x).\n"
      "goal p.\n");
  const Diagnostic* d = FindCode(diags, DiagCode::kUnreachablePredicate);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->index, 1);
  EXPECT_EQ(d->line, 2);
  EXPECT_EQ(analysis::DiagSeverity(d->code), analysis::Severity::kWarning);
}

TEST(AnalyzeProgramTest, MutualRecursionThroughGoalIsNotDead) {
  auto diags = LintProgram(
      "p(x) :- e(x, y), q(y).\n"
      "q(x) :- e(x, y), p(y).\n"
      "goal p.\n");
  EXPECT_EQ(CountCode(diags, DiagCode::kUnreachablePredicate), 0);
}

TEST(AnalyzeProgramTest, SingletonVariableIsQc102AndUnderscoreSilences) {
  auto diags = LintProgram("p(x) :- e(x, y).\ngoal p.\n");
  const Diagnostic* d = FindCode(diags, DiagCode::kSingletonVariable);
  ASSERT_NE(d, nullptr);
  EXPECT_NE(d->message.find("'y'"), std::string::npos);

  auto silenced = LintProgram("p(x) :- e(x, _y).\ngoal p.\n");
  EXPECT_EQ(CountCode(silenced, DiagCode::kSingletonVariable), 0);
}

TEST(AnalyzeProgramTest, HeadUseCountsTowardOccurrences) {
  // 'y' occurs once in the body but is projected by the head: not a
  // singleton.
  auto diags = LintProgram("p(x, y) :- e(x, y).\ngoal p.\n");
  EXPECT_EQ(CountCode(diags, DiagCode::kSingletonVariable), 0);
}

TEST(AnalyzeProgramTest, DisconnectedBodyIsQc103) {
  // The second component ('y') is disjoint from the head: a genuine cross
  // join.
  auto diags = LintProgram("p(x) :- e(x, x), e(y, y).\ngoal p.\n");
  EXPECT_EQ(CountCode(diags, DiagCode::kCartesianProduct), 1);
}

TEST(AnalyzeProgramTest, HeadConnectedComponentsAreNotQc103) {
  // Regression: both parts feed distinct answer variables — the product of
  // answer dimensions is intentional, not an accidental cross join.
  auto diags = LintProgram("p(x, y) :- e(x, x), e(y, y).\ngoal p.\n");
  EXPECT_EQ(CountCode(diags, DiagCode::kCartesianProduct), 0);
}

TEST(AnalyzeUcqTest, HeadConnectedDisjunctIsNotQc103) {
  // Same false-positive fix on the UCQ side.
  UnionQuery ucq({ConjunctiveQuery(
      {Term::Variable("x"), Term::Variable("y")},
      {Atom("e", {Term::Variable("x"), Term::Variable("x")}),
       Atom("e", {Term::Variable("y"), Term::Variable("y")})})});
  auto diags = AnalyzeUcq(ucq);
  EXPECT_EQ(CountCode(diags, DiagCode::kCartesianProduct), 0);
}

TEST(AnalyzeUcqTest, ExistentialDisconnectedDisjunctIsQc103) {
  UnionQuery ucq({ConjunctiveQuery(
      {Term::Variable("x")},
      {Atom("e", {Term::Variable("x"), Term::Variable("x")}),
       Atom("e", {Term::Variable("y"), Term::Variable("y")})})});
  auto diags = AnalyzeUcq(ucq);
  EXPECT_EQ(CountCode(diags, DiagCode::kCartesianProduct), 1);
}

TEST(AnalyzeProgramTest, RepeatedRuleIsQc104) {
  auto diags = LintProgram(
      "p(x) :- e(x, x).\n"
      "p(x) :- e(x, x).\n"
      "goal p.\n");
  const Diagnostic* d = FindCode(diags, DiagCode::kDuplicateRule);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->index, 1);
}

TEST(AnalyzeProgramTest, RepeatedBodyAtomIsQc105) {
  auto diags = LintProgram("p(x) :- e(x, x), e(x, x).\ngoal p.\n");
  EXPECT_EQ(CountCode(diags, DiagCode::kDuplicateAtom), 1);
}

TEST(AnalyzeProgramTest, StyleWarningsCanBeDisabled) {
  AnalysisOptions options;
  options.style_warnings = false;
  options.tractability_advisor = false;
  auto program =
      ParseProgramUnvalidated("p(x) :- e(x, y).\ndead(x) :- e(x, x).\ngoal p.\n");
  ASSERT_TRUE(program.ok());
  EXPECT_TRUE(AnalyzeProgram(*program, options).empty());
}

// --- UC2RPQ diagnostics (QC001, QC006, QC104..QC106, QC203) -----------------

TEST(AnalyzeUc2rpqTest, EmptyDisjunctIsQc001) {
  C2rpq no_atoms({}, {});
  UC2rpq query({no_atoms});
  EXPECT_EQ(CountCode(AnalyzeUC2rpq(query), DiagCode::kEmptyInput), 1);
}

TEST(AnalyzeUc2rpqTest, ConstantEndpointIsQc006) {
  auto atom = MakeRpqAtom("a", Term::Variable("x"), Term::Constant("c"));
  ASSERT_TRUE(atom.ok());
  C2rpq cq({Term::Variable("x")}, {*atom});
  UC2rpq query({cq});
  EXPECT_GE(CountCode(AnalyzeUC2rpq(query), DiagCode::kInvalidHead), 1);
}

TEST(AnalyzeUc2rpqTest, EmptyLanguageAtomIsQc106) {
  // An NFA whose accepting state is unreachable: L = ∅. Not expressible in
  // the regex syntax, so build it by hand.
  Nfa nfa;
  int start = nfa.AddState();
  int final_state = nfa.AddState();
  nfa.set_initial(start);
  nfa.AddAccepting(final_state);
  RpqAtom atom{"empty", nfa, Term::Variable("x"), Term::Variable("y")};
  C2rpq cq({Term::Variable("x"), Term::Variable("y")}, {atom});
  UC2rpq query({cq});
  auto diags = AnalyzeUC2rpq(query);
  EXPECT_EQ(CountCode(diags, DiagCode::kEmptyRegexLanguage), 1);
  EXPECT_FALSE(HasErrors(diags));  // a warning, not an error
}

TEST(AnalyzeUc2rpqTest, RepeatedAtomAndDisjunctAreQc105AndQc104) {
  auto atom = MakeRpqAtom("a", Term::Variable("x"), Term::Variable("y"));
  ASSERT_TRUE(atom.ok());
  C2rpq cq({Term::Variable("x"), Term::Variable("y")}, {*atom, *atom});
  UC2rpq query({cq, cq});
  auto diags = AnalyzeUC2rpq(query);
  EXPECT_EQ(CountCode(diags, DiagCode::kDuplicateAtom), 2);
  EXPECT_EQ(CountCode(diags, DiagCode::kDuplicateRule), 1);
}

TEST(AnalyzeUc2rpqTest, AcyclicQueryGetsAcrAdvisorNote) {
  auto gamma = ParseUC2rpq("Q(x, y) :- [a (b|c)*](x, y).\n");
  ASSERT_TRUE(gamma.ok());
  auto diags = AnalyzeUC2rpq(*gamma);
  const Diagnostic* d = FindCode(diags, DiagCode::kRpqTractability);
  ASSERT_NE(d, nullptr);
  EXPECT_NE(d->message.find("ACR1"), std::string::npos);
  EXPECT_NE(d->message.find("Theorem 9"), std::string::npos);
}

// --- Tractability advisor (QC201, QC202) -----------------------------------

TEST(AdvisorTest, RecursiveLinearProgramIsReported) {
  auto diags = LintProgram(
      "buys(x, y) :- likes(x, y).\n"
      "buys(x, y) :- trendy(x), buys(z, y).\n"
      "goal buys.\n");
  const Diagnostic* d = FindCode(diags, DiagCode::kProgramFragment);
  ASSERT_NE(d, nullptr);
  EXPECT_NE(d->message.find("recursive, linear"), std::string::npos);
  EXPECT_NE(d->message.find("Theorem 2"), std::string::npos);
}

TEST(AdvisorTest, PaperAcyclicUcqRoutesToAckEngine) {
  // The paper's Example 1/2 query: acyclic, so the single-exponential ACk
  // engine of Theorem 6 applies.
  auto diags = LintUcq(
      "Q(x, y) :- likes(x, y).\n"
      "Q(x, y) :- trendy(x), likes(z, y).\n");
  const Diagnostic* d = FindCode(diags, DiagCode::kQueryTractability);
  ASSERT_NE(d, nullptr);
  EXPECT_NE(d->message.find("acyclic UCQ in AC"), std::string::npos);
  EXPECT_NE(d->message.find("ACk engine"), std::string::npos);
  EXPECT_NE(d->message.find("Theorem 6"), std::string::npos);
}

TEST(AdvisorTest, CyclicUcqRoutesToTypeEngine) {
  auto diags = LintUcq("Q(x) :- a(x, y), a(y, z), a(z, x).\n");
  const Diagnostic* d = FindCode(diags, DiagCode::kQueryTractability);
  ASSERT_NE(d, nullptr);
  EXPECT_NE(d->message.find("cyclic"), std::string::npos);
  EXPECT_NE(d->message.find("Theorem 2"), std::string::npos);
}

TEST(AdvisorTest, SilentOnErrorsAndWhenDisabled) {
  auto broken = LintProgram("p(x, y) :- e(x).\ngoal p.\n");
  EXPECT_EQ(CountCode(broken, DiagCode::kProgramFragment), 0);

  AnalysisOptions options;
  options.tractability_advisor = false;
  auto program = ParseProgram("p(x) :- e(x, x).\ngoal p.\n");
  ASSERT_TRUE(program.ok());
  EXPECT_EQ(
      CountCode(AnalyzeProgram(*program, options), DiagCode::kProgramFragment),
      0);
}

// --- Theorem 5 safety (the §4.1 hardness construction) ----------------------

TEST(HardnessAnalysisTest, UndomesticatedAddressRulesAreUnsafe) {
  // Without the bitv guard, the address-modification rules of the reduction
  // use head variables not bound in the body — the exact illegality the
  // paper domesticates in §4.1.
  Theorem5Options raw;
  raw.domesticate_addresses = false;
  auto instance = BuildTheorem5Instance(AtmSpec::Tiny(), 2, raw);
  ASSERT_TRUE(instance.ok());
  auto diags = AnalyzeProgram(instance->program);
  EXPECT_GE(CountCode(diags, DiagCode::kUnsafeRule), 1);
  EXPECT_TRUE(HasErrors(diags));
  EXPECT_FALSE(instance->program.Validate().ok());
}

TEST(HardnessAnalysisTest, DomesticatedInstanceIsErrorFree) {
  auto instance = BuildTheorem5Instance(AtmSpec::Tiny(), 2);
  ASSERT_TRUE(instance.ok());
  auto diags = AnalyzeProgram(instance->program);
  EXPECT_FALSE(HasErrors(diags));
  EXPECT_TRUE(instance->program.Validate().ok());
}

// --- Validate() is FirstError of the analyzer -------------------------------

TEST(RegressionTest, ValidateAgreesWithAnalyzerOnRandomUcqs) {
  std::mt19937 rng(20140622);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<ConjunctiveQuery> disjuncts;
    const int n = 1 + static_cast<int>(rng() % 3);
    for (int i = 0; i < n; ++i) {
      disjuncts.push_back(testgen::RandomCq(&rng, testgen::SmallSchema(),
                                            1 + rng() % 3, 1 + rng() % 4,
                                            rng() % 3));
    }
    UnionQuery ucq(std::move(disjuncts));
    EXPECT_EQ(ucq.Validate().ok(), !HasErrors(AnalyzeUcq(ucq)))
        << ucq.ToString();
  }
}

TEST(RegressionTest, ValidateAgreesWithAnalyzerOnRandomPrograms) {
  std::mt19937 rng(20140623);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<Rule> rules;
    const int n = 1 + static_cast<int>(rng() % 3);
    for (int i = 0; i < n; ++i) {
      // Random bodies; heads draw from a pool that sometimes includes a
      // variable absent from the body, so ~half the programs are unsafe.
      ConjunctiveQuery cq = testgen::RandomCq(&rng, testgen::SmallSchema(),
                                              1 + rng() % 3, 1 + rng() % 4, 0);
      std::vector<Term> head_terms;
      const int arity = 1 + static_cast<int>(rng() % 2);
      for (int j = 0; j < arity; ++j) {
        head_terms.push_back(Term::Variable(
            rng() % 2 == 0 ? "x" + std::to_string(rng() % 4) : "fresh"));
      }
      rules.push_back(
          Rule{Atom("p" + std::to_string(rng() % 2), std::move(head_terms)),
               cq.atoms()});
    }
    const std::string goal = rules.front().head.predicate();
    DatalogProgram program(std::move(rules), goal);
    EXPECT_EQ(program.Validate().ok(), !HasErrors(AnalyzeProgram(program)))
        << program.ToString();
  }
}

// --- Parser line numbers (errors and SourceLines) ---------------------------

TEST(SourceLineTest, ParseErrorsCarryLineNumbers) {
  auto bad = ParseProgram("p(x) :- e(x, x).\nq(x :- e(x, x).\ngoal p.\n");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("line 2"), std::string::npos)
      << bad.status().ToString();
}

TEST(SourceLineTest, SourceLinesTrackRuleStarts) {
  SourceLines lines;
  auto program = ParseProgramUnvalidated(
      "# comment\n"
      "p(x) :- e(x, x).\n"
      "\n"
      "q(x) :- e(x, x), p(x).\n"
      "goal p.\n",
      &lines);
  ASSERT_TRUE(program.ok());
  ASSERT_EQ(lines.rule_lines.size(), 2u);
  EXPECT_EQ(lines.LineOf(0), 2);
  EXPECT_EQ(lines.LineOf(1), 4);
  EXPECT_EQ(lines.LineOf(7), 0);  // out of range
}

// --- Formatting -------------------------------------------------------------

TEST(DiagnosticTest, FormatIncludesCodeSeverityAndLocation) {
  Diagnostic d{DiagCode::kUnsafeRule, "boom", analysis::Subject::kRule, 3, 7};
  EXPECT_EQ(analysis::FormatDiagnostic(d), "QC002 error: boom (rule 3, line 7)");
  Diagnostic whole{DiagCode::kEmptyInput, "no rules"};
  EXPECT_EQ(analysis::FormatDiagnostic(whole), "QC001 error: no rules");
}

TEST(DiagnosticTest, FirstErrorSkipsWarningsAndCarriesCode) {
  std::vector<Diagnostic> diags = {
      Diagnostic{DiagCode::kSingletonVariable, "w"},
      Diagnostic{DiagCode::kUnsafeRule, "bad rule"},
  };
  Status s = analysis::FirstError(diags);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("QC002"), std::string::npos);
  EXPECT_TRUE(analysis::FirstError({}).ok());
}

}  // namespace
}  // namespace qcont

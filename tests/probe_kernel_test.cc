// Differential and contract tests for the SIMD tag-filtered probe kernels
// (DESIGN.md §16): the vector group compare must agree bit-for-bit with
// the scalar SWAR reference, probes must agree with a naive row scan
// across the whole knob grid (load factor × group width × filters), the
// probes counter must bump once per key, and the block-at-a-time delta
// join must derive exactly what the recursive engine derives — with
// thread-count-invariant counters.

#include <algorithm>
#include <cstdint>
#include <random>
#include <span>
#include <string>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "base/flat_set.h"
#include "base/simd.h"
#include "cq/database.h"
#include "datalog/eval.h"
#include "tests/generators.h"

namespace qcont {
namespace {

TEST(SimdKernelTest, MatchBytesAgreesWithScalarReference) {
  std::mt19937 rng(20260808);
  std::uint8_t buf[64];
  for (int trial = 0; trial < 2000; ++trial) {
    for (std::uint8_t& b : buf) {
      // Bias toward tag-shaped bytes (high bit set) and empties (zero).
      const std::uint32_t roll = rng() % 4;
      b = roll == 0 ? 0 : static_cast<std::uint8_t>(rng() | 0x80u);
    }
    const std::uint8_t needle =
        trial % 3 == 0 ? 0 : static_cast<std::uint8_t>(rng() | 0x80u);
    for (std::size_t off = 0; off + 16 <= sizeof(buf); ++off) {
      EXPECT_EQ(MatchBytes16(buf + off, needle),
                MatchBytes16Scalar(buf + off, needle));
      EXPECT_EQ(MatchBytes(buf + off, needle, 16),
                MatchBytes16Scalar(buf + off, needle));
      EXPECT_EQ(MatchBytes(buf + off, needle, 8),
                MatchBytes8Scalar(buf + off, needle));
    }
  }
}

TEST(SimdKernelTest, MatchBytesMatchesPositionByPosition) {
  std::mt19937 rng(77);
  std::uint8_t buf[16];
  for (int trial = 0; trial < 500; ++trial) {
    for (std::uint8_t& b : buf) b = static_cast<std::uint8_t>(rng());
    const std::uint8_t needle = static_cast<std::uint8_t>(rng());
    const std::uint32_t mask = MatchBytes16(buf, needle);
    for (int i = 0; i < 16; ++i) {
      EXPECT_EQ((mask >> i) & 1u, buf[i] == needle ? 1u : 0u);
    }
    EXPECT_EQ(mask >> 16, 0u);
  }
}

// Naive reference: the row indices whose masked positions equal `key`, in
// insertion order — exactly the postings contract of Database::Probe.
std::vector<std::uint32_t> ScanReference(const Database& db, RelationId rel,
                                         std::uint32_t mask,
                                         std::span<const ValueId> key) {
  std::vector<std::uint32_t> out;
  for (std::size_t r = 0; r < db.NumRows(rel); ++r) {
    const std::span<const ValueId> row = db.Row(rel, r);
    std::size_t k = 0;
    bool match = true;
    for (std::uint32_t p = 0; mask >> p != 0; ++p) {
      if ((mask >> p & 1u) == 0) continue;
      if (p >= row.size() || row[p] != key[k++]) {
        match = false;
        break;
      }
    }
    if (match) out.push_back(static_cast<std::uint32_t>(r));
  }
  return out;
}

TEST(ProbeKernelTest, ProbeMatchesScanReferenceAcrossKnobGrid) {
  for (const int load : {40, 75, 90}) {
    for (const int width : {8, 16}) {
      for (const bool filters : {false, true}) {
        std::mt19937 rng(1000 * load + 10 * width + (filters ? 1 : 0));
        ProbeOptions opts;
        opts.max_load_percent = load;
        opts.group_width = width;
        opts.use_filters = filters;
        Database db(DatabaseLayout::kFlat);
        db.set_probe_options(opts);
        const int domain = 12;
        for (int i = 0; i < 300; ++i) {
          db.AddFact(i % 5 == 0 ? "u" : "e",
                     i % 5 == 0
                         ? Tuple{"v" + std::to_string(rng() % domain)}
                         : Tuple{"v" + std::to_string(rng() % domain),
                                 "v" + std::to_string(rng() % domain)});
        }
        const RelationId e = db.RelationIdOf("e");
        const RelationId u = db.RelationIdOf("u");
        auto vid = [&](int i) {
          return db.pool()->Find("v" + std::to_string(i));
        };
        for (int trial = 0; trial < 200; ++trial) {
          // Mix of present and absent keys (absent drawn past the domain
          // half the time never interned — skip those, Probe requires
          // interned ids only through this test's construction).
          const ValueId a = vid(static_cast<int>(rng() % domain));
          const ValueId b = vid(static_cast<int>(rng() % domain));
          for (const std::uint32_t mask : {1u, 2u, 3u}) {
            const ValueId key[2] = {a, b};
            const std::size_t w = std::popcount(mask);
            const std::span<const ValueId> k(key, w);
            const auto got = db.Probe(e, mask, k);
            const auto want = ScanReference(db, e, mask, k);
            ASSERT_EQ(std::vector<std::uint32_t>(got.begin(), got.end()),
                      want)
                << "load=" << load << " width=" << width
                << " filters=" << filters << " mask=" << mask;
          }
          const ValueId ku[1] = {a};
          const auto got = db.Probe(u, 1u, ku);
          ASSERT_EQ(std::vector<std::uint32_t>(got.begin(), got.end()),
                    ScanReference(db, u, 1u, ku));
        }
      }
    }
  }
}

TEST(ProbeKernelTest, ProbeManyMatchesSingleProbes) {
  std::mt19937 rng(909);
  ProbeOptions opts;
  Database db(DatabaseLayout::kFlat);
  db.set_probe_options(opts);
  for (int i = 0; i < 400; ++i) {
    db.AddFact("e", Tuple{"v" + std::to_string(rng() % 20),
                          "v" + std::to_string(rng() % 20)});
  }
  const RelationId e = db.RelationIdOf("e");
  std::vector<ValueId> keys;
  const std::size_t n = 256;
  for (std::size_t i = 0; i < n; ++i) {
    keys.push_back(db.pool()->Find("v" + std::to_string(rng() % 20)));
  }
  std::vector<std::span<const std::uint32_t>> hits(n);
  db.ProbeMany(e, 1u, keys, hits);
  for (std::size_t i = 0; i < n; ++i) {
    const auto single = db.Probe(e, 1u, std::span<const ValueId>(&keys[i], 1));
    EXPECT_EQ(std::vector<std::uint32_t>(hits[i].begin(), hits[i].end()),
              std::vector<std::uint32_t>(single.begin(), single.end()));
  }
}

// The index_stats() contract: `probes` counts keys, not slots visited —
// one per Probe call, one per ProbeMany key — for every knob setting, with
// tag-filter and Bloom-filter traffic accounted separately.
TEST(ProbeKernelTest, ProbesCounterBumpsOncePerKey) {
  for (const bool filters : {false, true}) {
    std::mt19937 rng(4242 + (filters ? 1 : 0));
    ProbeOptions opts;
    opts.use_filters = filters;
    // High load forces collision chains: slot visits far exceed keys.
    opts.max_load_percent = 90;
    Database db(DatabaseLayout::kFlat);
    db.set_probe_options(opts);
    for (int i = 0; i < 500; ++i) {
      db.AddFact("e", Tuple{"v" + std::to_string(rng() % 30),
                            "v" + std::to_string(rng() % 30)});
    }
    const RelationId e = db.RelationIdOf("e");
    const std::uint64_t before = db.index_stats().probes;
    std::vector<ValueId> keys;
    const std::size_t n = 300;
    for (std::size_t i = 0; i < n; ++i) {
      keys.push_back(db.pool()->Find("v" + std::to_string(rng() % 30)));
    }
    std::vector<std::span<const std::uint32_t>> hits(n);
    db.ProbeMany(e, 1u, keys, hits);
    EXPECT_EQ(db.index_stats().probes, before + n);
    for (std::size_t i = 0; i < 10; ++i) {
      db.Probe(e, 1u, std::span<const ValueId>(&keys[i], 1));
    }
    EXPECT_EQ(db.index_stats().probes, before + n + 10);
    // Tag traffic exists and is accounted outside `probes`.
    const DatabaseIndexStats s = db.index_stats();
    EXPECT_GT(s.tag_hits, 0u);
    if (filters) {
      // With a domain this size some keys miss both Bloom bits.
      EXPECT_GE(s.filter_skips, 0u);
    }
  }
}

// Identical databases probed with identical sequences must produce
// identical counters for every knob setting — the determinism contract
// that makes the scalar-vs-SIMD CI legs comparable.
TEST(ProbeKernelTest, CountersDeterministicAcrossRuns) {
  for (const int width : {8, 16}) {
    DatabaseIndexStats runs[2];
    for (int run = 0; run < 2; ++run) {
      std::mt19937 rng(606);
      ProbeOptions opts;
      opts.group_width = width;
      Database db(DatabaseLayout::kFlat);
      db.set_probe_options(opts);
      for (int i = 0; i < 300; ++i) {
        db.AddFact("e", Tuple{"v" + std::to_string(rng() % 15),
                              "v" + std::to_string(rng() % 15)});
      }
      const RelationId e = db.RelationIdOf("e");
      for (int i = 0; i < 500; ++i) {
        const ValueId k = db.pool()->Find("v" + std::to_string(rng() % 15));
        db.Probe(e, 1u, std::span<const ValueId>(&k, 1));
      }
      runs[run] = db.index_stats();
    }
    EXPECT_EQ(runs[0].probes, runs[1].probes);
    EXPECT_EQ(runs[0].tag_hits, runs[1].tag_hits);
    EXPECT_EQ(runs[0].tag_skips, runs[1].tag_skips);
    EXPECT_EQ(runs[0].probe_collisions, runs[1].probe_collisions);
    EXPECT_EQ(runs[0].filter_skips, runs[1].filter_skips);
  }
}

void ExpectHomStatsEqual(const HomSearchStats& a, const HomSearchStats& b,
                         int trial, const char* what) {
  EXPECT_EQ(a.atom_attempts, b.atom_attempts) << what << " trial " << trial;
  EXPECT_EQ(a.backtracks, b.backtracks) << what << " trial " << trial;
  EXPECT_EQ(a.index_probes, b.index_probes) << what << " trial " << trial;
  EXPECT_EQ(a.index_candidates, b.index_candidates)
      << what << " trial " << trial;
  EXPECT_EQ(a.scan_candidates, b.scan_candidates)
      << what << " trial " << trial;
}

TEST(BlockJoinTest, MatchesRecursiveEngineOnRandomPrograms) {
  std::mt19937 rng(314159);
  const testgen::SchemaSpec schema = testgen::SmallSchema();
  for (int trial = 0; trial < 25; ++trial) {
    Database edb = testgen::RandomDatabase(&rng, schema, 4, 14);
    DatalogProgram program = testgen::RandomLinearProgram(&rng, schema, 2);
    EvalOptions block, recursive;
    block.block_delta_joins = true;
    recursive.block_delta_joins = false;
    DatalogEvalStats bs, rs;
    auto block_goal = EvaluateGoal(program, edb, block, &bs);
    auto rec_goal = EvaluateGoal(program, edb, recursive, &rs);
    ASSERT_TRUE(block_goal.ok() && rec_goal.ok()) << "trial " << trial;
    EXPECT_EQ(*block_goal, *rec_goal) << "trial " << trial;
    // Same homomorphism multiset: both engines fire each body match once.
    EXPECT_EQ(bs.derived_facts, rs.derived_facts) << "trial " << trial;
  }
}

TEST(BlockJoinTest, ThreadCountInvariantAnswersAndCounters) {
  std::mt19937 rng(271828);
  const testgen::SchemaSpec schema = testgen::SmallSchema();
  for (int trial = 0; trial < 12; ++trial) {
    Database edb = testgen::RandomDatabase(&rng, schema, 4, 12);
    DatalogProgram program = testgen::RandomLinearProgram(&rng, schema, 2);
    std::vector<std::vector<Tuple>> goals;
    std::vector<DatalogEvalStats> stats;
    for (const int threads : {1, 8}) {
      EvalOptions options;
      options.exec = ExecContext{.threads = threads, .stats = nullptr};
      DatalogEvalStats s;
      auto goal = EvaluateGoal(program, edb, options, &s);
      ASSERT_TRUE(goal.ok()) << "trial " << trial;
      goals.push_back(*goal);
      stats.push_back(s);
    }
    EXPECT_EQ(goals[0], goals[1]) << "trial " << trial;
    EXPECT_EQ(stats[0].iterations, stats[1].iterations) << "trial " << trial;
    EXPECT_EQ(stats[0].rule_firings, stats[1].rule_firings)
        << "trial " << trial;
    EXPECT_EQ(stats[0].derived_facts, stats[1].derived_facts)
        << "trial " << trial;
    ExpectHomStatsEqual(stats[0].hom, stats[1].hom, trial, "threads");
  }
}

TEST(BlockJoinTest, KnobGridProducesIdenticalGoals) {
  std::mt19937 rng(161803);
  const testgen::SchemaSpec schema = testgen::BinarySchema();
  for (int trial = 0; trial < 8; ++trial) {
    Database edb = testgen::RandomDatabase(&rng, schema, 5, 16);
    DatalogProgram program = testgen::RandomLinearProgram(&rng, schema, 2);
    EvalOptions base;
    auto want = EvaluateGoal(program, edb, base);
    ASSERT_TRUE(want.ok()) << "trial " << trial;
    for (const int load : {40, 90}) {
      for (const int width : {8, 16}) {
        for (const bool filters : {false, true}) {
          for (const std::size_t block : {std::size_t{1}, std::size_t{7},
                                          std::size_t{1024}}) {
            EvalOptions options;
            options.probe.max_load_percent = load;
            options.probe.group_width = width;
            options.probe.use_filters = filters;
            options.delta_block_rows = block;
            auto got = EvaluateGoal(program, edb, options);
            ASSERT_TRUE(got.ok()) << "trial " << trial;
            EXPECT_EQ(*got, *want)
                << "trial " << trial << " load=" << load
                << " width=" << width << " filters=" << filters
                << " block=" << block;
          }
        }
      }
    }
  }
}

TEST(FlatSetTest, MatchesUnorderedSetOnRandomWorkload) {
  std::mt19937 rng(5150);
  for (int trial = 0; trial < 20; ++trial) {
    FlatU64Set flat;
    std::unordered_set<std::uint64_t> ref;
    const int ops = 2000;
    for (int i = 0; i < ops; ++i) {
      // Small key space forces duplicate inserts and positive lookups.
      const std::uint64_t key = 1 + rng() % 500;
      if (rng() % 2 == 0) {
        EXPECT_EQ(flat.Insert(key), ref.insert(key).second);
      } else {
        EXPECT_EQ(flat.Contains(key), ref.count(key) > 0);
      }
      EXPECT_EQ(flat.size(), ref.size());
    }
    for (std::uint64_t key = 1; key <= 600; ++key) {
      EXPECT_EQ(flat.Contains(key), ref.count(key) > 0);
    }
  }
}

}  // namespace
}  // namespace qcont

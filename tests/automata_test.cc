#include <gtest/gtest.h>

#include <random>

#include "automata/ata.h"
#include "automata/nfa.h"
#include "automata/nta.h"
#include "automata/tree.h"

namespace qcont {
namespace {

bool Accepts(const std::string& pattern, const std::vector<std::string>& word) {
  auto nfa = ParseRegex(pattern);
  EXPECT_TRUE(nfa.ok()) << nfa.status().ToString();
  return nfa->AcceptsWord(word);
}

TEST(RegexTest, BasicOperators) {
  EXPECT_TRUE(Accepts("a", {"a"}));
  EXPECT_FALSE(Accepts("a", {"b"}));
  EXPECT_FALSE(Accepts("a", {}));
  EXPECT_TRUE(Accepts("a b", {"a", "b"}));
  EXPECT_TRUE(Accepts("a|b", {"b"}));
  EXPECT_TRUE(Accepts("a*", {}));
  EXPECT_TRUE(Accepts("a*", {"a", "a", "a"}));
  EXPECT_FALSE(Accepts("a+", {}));
  EXPECT_TRUE(Accepts("a+", {"a"}));
  EXPECT_TRUE(Accepts("a?", {}));
  EXPECT_TRUE(Accepts("a? b", {"b"}));
  EXPECT_TRUE(Accepts("eps", {}));
  EXPECT_TRUE(Accepts("(a|b)* c", {"a", "b", "b", "c"}));
}

TEST(RegexTest, InverseSymbols) {
  EXPECT_TRUE(Accepts("a-", {"a-"}));
  EXPECT_FALSE(Accepts("a-", {"a"}));
  EXPECT_TRUE(Accepts("a b-", {"a", "b-"}));
}

TEST(RegexTest, ParseErrors) {
  EXPECT_FALSE(ParseRegex("(a").ok());
  EXPECT_FALSE(ParseRegex("a |").ok());
  EXPECT_FALSE(ParseRegex("*").ok());
  EXPECT_FALSE(ParseRegex("a )").ok());
}

TEST(RegexTest, MultiCharacterIdentifiers) {
  EXPECT_TRUE(Accepts("knows worksAt-", {"knows", "worksAt-"}));
}

TEST(NfaTest, LanguageNonemptiness) {
  EXPECT_TRUE(ParseRegex("a b c")->IsLanguageNonempty());
  EXPECT_TRUE(ParseRegex("a*")->IsLanguageNonempty());
}

TEST(NfaTest, ReversedInverse) {
  // ReversedInverse(L) accepts the inverted reversals: "a b" -> "b- a-".
  Nfa r = ParseRegex("a b")->ReversedInverse();
  EXPECT_TRUE(r.AcceptsWord({"b-", "a-"}));
  EXPECT_FALSE(r.AcceptsWord({"a-", "b-"}));
  Nfa r2 = ParseRegex("a- b")->ReversedInverse();
  EXPECT_TRUE(r2.AcceptsWord({"b-", "a"}));
  // Involution on a sample.
  Nfa r3 = ParseRegex("a (b|c-)*")->ReversedInverse().ReversedInverse();
  EXPECT_TRUE(r3.AcceptsWord({"a", "c-", "b"}));
  EXPECT_FALSE(r3.AcceptsWord({"b", "a"}));
}

TEST(NfaTest, ClosedStepsAndEffectiveAccepting) {
  auto nfa = ParseRegex("a*");
  ASSERT_TRUE(nfa.ok());
  EXPECT_TRUE(nfa->IsEffectivelyAccepting(nfa->initial()));
  auto steps = nfa->ClosedSteps(nfa->initial());
  ASSERT_FALSE(steps.empty());
  bool some_accepting_target = false;
  for (const auto& [symbol, target] : steps) {
    EXPECT_EQ(symbol, "a");
    some_accepting_target =
        some_accepting_target || nfa->IsEffectivelyAccepting(target);
  }
  // Nondeterminism: at least one "a"-step lands on an accepting branch.
  EXPECT_TRUE(some_accepting_target);
}

// --- Tree automata ---

// An automaton over symbols {0: leaf a, 1: leaf b, 2: binary node f}
// accepting trees whose leaves are all 'a'.
TreeAutomaton AllLeavesA() {
  TreeAutomaton ta;
  int q = ta.AddState();
  ta.AddInitial(q);
  ta.AddTransition(q, 0, {});
  ta.AddTransition(q, 2, {q, q});
  return ta;
}

// Accepting trees with at least one 'b' leaf.
TreeAutomaton SomeLeafB() {
  TreeAutomaton ta;
  int any = ta.AddState();
  int found = ta.AddState();
  ta.AddInitial(found);
  ta.AddTransition(any, 0, {});
  ta.AddTransition(any, 1, {});
  ta.AddTransition(any, 2, {any, any});
  ta.AddTransition(found, 1, {});
  ta.AddTransition(found, 2, {found, any});
  ta.AddTransition(found, 2, {any, found});
  return ta;
}

TEST(TreeAutomatonTest, Membership) {
  RankedTree t(2);
  t.AddChild(0, 0);
  int right = t.AddChild(0, 2);
  t.AddChild(right, 0);
  t.AddChild(right, 1);
  EXPECT_FALSE(AllLeavesA().Accepts(t));  // has a 'b' leaf
  EXPECT_TRUE(SomeLeafB().Accepts(t));
  RankedTree pure(2);
  pure.AddChild(0, 0);
  pure.AddChild(0, 0);
  EXPECT_TRUE(AllLeavesA().Accepts(pure));
  EXPECT_FALSE(SomeLeafB().Accepts(pure));
}

TEST(TreeAutomatonTest, EmptinessAndWitness) {
  TreeAutomaton ta = AllLeavesA();
  std::optional<RankedTree> witness;
  EXPECT_FALSE(ta.IsEmpty(&witness));
  ASSERT_TRUE(witness.has_value());
  EXPECT_TRUE(ta.Accepts(*witness));

  // An automaton whose only rule requires itself as a child: empty.
  TreeAutomaton empty;
  int q = empty.AddState();
  empty.AddInitial(q);
  empty.AddTransition(q, 2, {q, q});
  EXPECT_TRUE(empty.IsEmpty());
}

TEST(TreeAutomatonTest, IntersectionAndUnion) {
  TreeAutomaton inter = TreeAutomaton::Intersection(AllLeavesA(), SomeLeafB());
  EXPECT_TRUE(inter.IsEmpty());  // all-a and some-b are disjoint
  TreeAutomaton uni = TreeAutomaton::Union(AllLeavesA(), SomeLeafB());
  RankedTree pure(0);
  EXPECT_TRUE(uni.Accepts(pure));
  RankedTree b(1);
  EXPECT_TRUE(uni.Accepts(b));
}

TEST(TreeAutomatonTest, ComplementFlipsAcceptance) {
  const std::vector<std::pair<int, int>> alphabet = {{0, 0}, {1, 0}, {2, 2}};
  TreeAutomaton not_all_a = TreeAutomaton::Complement(AllLeavesA(), alphabet);
  RankedTree pure(2);
  pure.AddChild(0, 0);
  pure.AddChild(0, 0);
  EXPECT_FALSE(not_all_a.Accepts(pure));
  RankedTree mixed(2);
  mixed.AddChild(0, 0);
  mixed.AddChild(0, 1);
  EXPECT_TRUE(not_all_a.Accepts(mixed));
}

TEST(TreeAutomatonTest, ComplementPropertyOnRandomTrees) {
  const std::vector<std::pair<int, int>> alphabet = {{0, 0}, {1, 0}, {2, 2}};
  TreeAutomaton original = SomeLeafB();
  TreeAutomaton complement = TreeAutomaton::Complement(original, alphabet);
  std::mt19937 rng(31337);
  for (int trial = 0; trial < 40; ++trial) {
    // Random binary tree over the alphabet.
    RankedTree t(2);
    std::vector<int> open = {0};
    int budget = static_cast<int>(rng() % 6);
    while (!open.empty()) {
      int node = open.back();
      open.pop_back();
      for (int c = 0; c < 2; ++c) {
        if (budget > 0 && rng() % 2 == 0) {
          --budget;
          open.push_back(t.AddChild(node, 2));
        } else {
          t.AddChild(node, rng() % 2);
        }
      }
    }
    EXPECT_NE(original.Accepts(t), complement.Accepts(t));
  }
}

TEST(TreeAutomatonTest, ContainmentViaComplementation) {
  const std::vector<std::pair<int, int>> alphabet = {{0, 0}, {1, 0}, {2, 2}};
  // all-a-leaves trees are NOT all some-b trees and vice versa.
  std::optional<RankedTree> witness;
  EXPECT_FALSE(TreeAutomaton::Contains(AllLeavesA(), SomeLeafB(), alphabet,
                                       &witness));
  ASSERT_TRUE(witness.has_value());
  EXPECT_TRUE(AllLeavesA().Accepts(*witness));
  EXPECT_FALSE(SomeLeafB().Accepts(*witness));
  // The intersection of a language with anything is contained in it.
  TreeAutomaton inter =
      TreeAutomaton::Intersection(AllLeavesA(), AllLeavesA());
  EXPECT_TRUE(TreeAutomaton::Contains(inter, AllLeavesA(), alphabet));
  // Everything is contained in the union with anything.
  TreeAutomaton uni = TreeAutomaton::Union(AllLeavesA(), SomeLeafB());
  EXPECT_TRUE(TreeAutomaton::Contains(AllLeavesA(), uni, alphabet));
  EXPECT_TRUE(TreeAutomaton::Contains(SomeLeafB(), uni, alphabet));
  EXPECT_FALSE(TreeAutomaton::Contains(uni, AllLeavesA(), alphabet));
}

// --- Two-way alternating tree automata ---

// A 2ATA checking "some leaf is labeled 1, and afterwards the play returns
// to the root (symbol 3) by upward moves" — exercises both directions.
class UpDownAta : public AlternatingTreeAutomaton {
 public:
  // States: 0 = searching down, 1 = climbing up.
  int InitialState() const override { return 0; }
  AtaFormula Delta(int state, int symbol) const override {
    AtaFormula formula;
    if (state == 0) {
      if (symbol == 1) {
        formula.push_back({AtaMove{0, 1}});  // found: switch to climbing
      }
      formula.push_back({AtaMove{1, 0}});  // try first child
      formula.push_back({AtaMove{2, 0}});  // try second child
    } else {
      if (symbol == 3) {
        formula.push_back({});  // true: reached the root marker
      } else {
        formula.push_back({AtaMove{-1, 1}});
      }
    }
    return formula;
  }
};

TEST(AtaTest, TwoWayAcceptance) {
  RankedTree t(3);  // root marker
  int mid = t.AddChild(0, 2);
  t.AddChild(mid, 0);
  t.AddChild(mid, 1);
  UpDownAta ata;
  AtaRunStats stats;
  EXPECT_TRUE(ata.Accepts(t, &stats));
  EXPECT_GT(stats.positions, 0u);

  RankedTree t2(3);
  t2.AddChild(0, 0);
  EXPECT_FALSE(ata.Accepts(t2));  // no 1-leaf anywhere
}

// Eve must not win by looping forever: an automaton with only a stay-move.
class StallAta : public AlternatingTreeAutomaton {
 public:
  int InitialState() const override { return 0; }
  AtaFormula Delta(int state, int symbol) const override {
    (void)state;
    (void)symbol;
    return {{AtaMove{0, 0}}};  // stay forever
  }
};

TEST(AtaTest, InfinitePlaysLose) {
  RankedTree t(0);
  StallAta ata;
  EXPECT_FALSE(ata.Accepts(t));
}

}  // namespace
}  // namespace qcont

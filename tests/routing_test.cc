// Differential tests for analysis-driven engine routing: the auto-routed
// answer must be identical to every forced engine's answer on the same
// input, for evaluation (RoutedSatisfiable / RoutedEvaluateCq) and for
// containment (DecideContainment). Also covers the analysis report cache:
// alpha-equivalent queries share one entry. See DESIGN.md §14.

#include "analysis/routing.h"

#include <algorithm>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/report.h"
#include "core/router.h"
#include "structure/join_tree.h"
#include "tests/generators.h"

namespace qcont {
namespace {

using analysis::AnalysisCacheStats;
using analysis::EngineKind;
using analysis::ForcedEvalEngine;
using analysis::RoutedEvalOptions;

std::vector<Tuple> Sorted(std::vector<Tuple> tuples) {
  std::sort(tuples.begin(), tuples.end());
  return tuples;
}

// A guaranteed-cyclic CQ: a triangle core (the classic cyclic pattern)
// plus a few random extra atoms. Small uniform-random CQs are acyclic far
// too often to exercise the cyclic route reliably.
ConjunctiveQuery RandomCyclicCq(std::mt19937* rng,
                                const testgen::SchemaSpec& schema,
                                int extra_atoms) {
  std::vector<Atom> atoms = {
      Atom("a", {Term::Variable("x0"), Term::Variable("x1")}),
      Atom("a", {Term::Variable("x1"), Term::Variable("x2")}),
      Atom("b", {Term::Variable("x2"), Term::Variable("x0")})};
  for (int i = 0; i < extra_atoms; ++i) {
    const auto& [name, arity] =
        schema.relations[(*rng)() % schema.relations.size()];
    std::vector<Term> terms;
    for (int j = 0; j < arity; ++j) {
      terms.push_back(Term::Variable("x" + std::to_string((*rng)() % 4)));
    }
    atoms.emplace_back(name, std::move(terms));
  }
  return ConjunctiveQuery({Term::Variable("x0")}, std::move(atoms));
}

TEST(RoutingDifferentialTest, SatisfiableMatchesEveryForcedEngine) {
  std::mt19937 rng(2026);
  const testgen::SchemaSpec schema = testgen::SmallSchema();
  int acyclic_seen = 0;
  int cyclic_seen = 0;
  for (int round = 0; round < 40; ++round) {
    ConjunctiveQuery cq =
        (round % 2 == 0)
            ? RandomCyclicCq(&rng, schema, rng() % 3)
            : testgen::RandomAcyclicCq(&rng, schema, 2 + rng() % 4, 1);
    Database db = testgen::RandomDatabase(&rng, schema, 3, 10 + rng() % 20);

    EngineKind chosen;
    Result<bool> routed = analysis::RoutedSatisfiable(cq, db, {}, {}, &chosen);
    ASSERT_TRUE(routed.ok()) << "round " << round;
    if (IsAcyclic(cq)) {
      EXPECT_EQ(chosen, EngineKind::kYannakakis);
      ++acyclic_seen;
    } else {
      ++cyclic_seen;
    }

    // The generic backtracking search and the decomposition DP accept any
    // CQ; Yannakakis only the acyclic ones.
    std::vector<ForcedEvalEngine> forced = {ForcedEvalEngine::kGenericHomSearch,
                                            ForcedEvalEngine::kDecompDp};
    if (IsAcyclic(cq)) forced.push_back(ForcedEvalEngine::kYannakakis);
    for (ForcedEvalEngine force : forced) {
      RoutedEvalOptions options;
      options.force = force;
      Result<bool> answer = analysis::RoutedSatisfiable(cq, db, {}, options);
      ASSERT_TRUE(answer.ok()) << "round " << round;
      EXPECT_EQ(*answer, *routed)
          << "round " << round << " forced engine "
          << static_cast<int>(force);
    }
  }
  // The generator mix must actually exercise both routes.
  EXPECT_GT(acyclic_seen, 5);
  EXPECT_GT(cyclic_seen, 5);
}

TEST(RoutingDifferentialTest, EvaluateMatchesEveryForcedEngine) {
  std::mt19937 rng(2027);
  const testgen::SchemaSpec schema = testgen::SmallSchema();
  for (int round = 0; round < 30; ++round) {
    ConjunctiveQuery cq =
        (round % 2 == 0)
            ? RandomCyclicCq(&rng, schema, rng() % 3)
            : testgen::RandomAcyclicCq(&rng, schema, 2 + rng() % 4, 1);
    Database db = testgen::RandomDatabase(&rng, schema, 3, 10 + rng() % 20);

    Result<std::vector<Tuple>> routed = analysis::RoutedEvaluateCq(cq, db);
    ASSERT_TRUE(routed.ok()) << "round " << round;

    std::vector<ForcedEvalEngine> forced = {
        ForcedEvalEngine::kGenericHomSearch};
    if (IsAcyclic(cq)) forced.push_back(ForcedEvalEngine::kYannakakis);
    for (ForcedEvalEngine force : forced) {
      RoutedEvalOptions options;
      options.force = force;
      Result<std::vector<Tuple>> answer =
          analysis::RoutedEvaluateCq(cq, db, options);
      ASSERT_TRUE(answer.ok()) << "round " << round;
      EXPECT_EQ(Sorted(*answer), Sorted(*routed)) << "round " << round;
    }
  }
}

TEST(RoutingDifferentialTest, ForcedEngineOutsideItsClassErrors) {
  // Triangle: cyclic, so forcing Yannakakis must surface that engine's own
  // precondition failure rather than silently falling back.
  std::vector<Atom> atoms = {
      Atom("a", {Term::Variable("x"), Term::Variable("y")}),
      Atom("a", {Term::Variable("y"), Term::Variable("z")}),
      Atom("a", {Term::Variable("z"), Term::Variable("x")})};
  ConjunctiveQuery triangle({Term::Variable("x")}, std::move(atoms));
  Database db;
  db.AddFact("a", {"1", "2"});

  RoutedEvalOptions options;
  options.force = ForcedEvalEngine::kYannakakis;
  EXPECT_FALSE(analysis::RoutedSatisfiable(triangle, db, {}, options).ok());

  // The decomposition DP has no enumeration variant; forcing it on full
  // evaluation is an explicit error, never a silent fallback.
  options.force = ForcedEvalEngine::kDecompDp;
  EXPECT_FALSE(analysis::RoutedEvaluateCq(triangle, db, options).ok());
}

TEST(RoutingDifferentialTest, ContainmentMatchesEveryForcedRoute) {
  std::mt19937 rng(2028);
  const testgen::SchemaSpec schema = testgen::BinarySchema();
  for (int round = 0; round < 12; ++round) {
    DatalogProgram program = testgen::RandomLinearProgram(&rng, schema, 1);
    UnionQuery ucq = testgen::RandomAcyclicUcq(&rng, schema, 1 + rng() % 2,
                                               2 + rng() % 2, 1);

    RouterOptions auto_options;
    Result<RoutedAnswer> routed =
        DecideContainment(program, ucq, auto_options);
    ASSERT_TRUE(routed.ok()) << "round " << round;
    // Acyclic UCQs must take the single-exponential route on the default
    // path (Corollary 1).
    EXPECT_EQ(routed->route, ContainmentRoute::kAckEngine)
        << "round " << round;

    for (ForcedRoute force :
         {ForcedRoute::kAckEngine, ForcedRoute::kGeneralEngine}) {
      RouterOptions options;
      options.force = force;
      Result<RoutedAnswer> forced = DecideContainment(program, ucq, options);
      ASSERT_TRUE(forced.ok()) << "round " << round;
      EXPECT_EQ(forced->answer.contained, routed->answer.contained)
          << "round " << round << " forced route "
          << static_cast<int>(force);
    }
  }
}

TEST(AnalysisCacheTest, AlphaEquivalentQueriesShareOneEntry) {
  analysis::ClearGlobalAnalysisCache();
  ConjunctiveQuery q1({Term::Variable("x")},
                      {Atom("a", {Term::Variable("x"), Term::Variable("y")}),
                       Atom("b", {Term::Variable("y"), Term::Variable("z")})});
  // Same query up to consistent renaming: must hit the same cache entry.
  ConjunctiveQuery q2({Term::Variable("u")},
                      {Atom("a", {Term::Variable("u"), Term::Variable("v")}),
                       Atom("b", {Term::Variable("v"), Term::Variable("w")})});

  analysis::AnalysisReport r1 = analysis::AnalyzeForRouting(UnionQuery({q1}));
  AnalysisCacheStats after_first = analysis::GlobalAnalysisCacheStats();
  EXPECT_EQ(after_first.entries, 1u);

  analysis::AnalysisReport r2 = analysis::AnalyzeForRouting(UnionQuery({q2}));
  AnalysisCacheStats after_second = analysis::GlobalAnalysisCacheStats();
  EXPECT_EQ(after_second.entries, 1u);
  EXPECT_EQ(after_second.hits, after_first.hits + 1);
  EXPECT_EQ(r1.query_hash, r2.query_hash);
  EXPECT_EQ(r1.eval_engine, r2.eval_engine);

  // A structurally different query is a miss and a new entry.
  ConjunctiveQuery q3({Term::Variable("x")},
                      {Atom("a", {Term::Variable("x"), Term::Variable("x")})});
  analysis::AnalyzeForRouting(UnionQuery({q3}));
  EXPECT_EQ(analysis::GlobalAnalysisCacheStats().entries, 2u);

  // Disabling the cache leaves the stats untouched.
  analysis::RoutingOptions no_cache;
  no_cache.use_cache = false;
  AnalysisCacheStats before = analysis::GlobalAnalysisCacheStats();
  analysis::AnalyzeForRouting(UnionQuery({q1}), no_cache);
  AnalysisCacheStats after = analysis::GlobalAnalysisCacheStats();
  EXPECT_EQ(after.hits, before.hits);
  EXPECT_EQ(after.entries, before.entries);
}

TEST(ChooseEngineTest, PolicyOverReportFields) {
  analysis::AnalysisReport report;
  analysis::RoutingOptions options;

  report.acyclic = true;
  EXPECT_EQ(analysis::ChooseEngine(report, analysis::RoutingGoal::kEvaluate,
                                   options),
            EngineKind::kYannakakis);
  EXPECT_EQ(analysis::ChooseEngine(report, analysis::RoutingGoal::kContainment,
                                   options),
            EngineKind::kAckEngine);

  report.acyclic = false;
  report.treewidth = 2;
  EXPECT_EQ(analysis::ChooseEngine(report, analysis::RoutingGoal::kEvaluate,
                                   options),
            EngineKind::kDecompDp);
  EXPECT_EQ(analysis::ChooseEngine(report, analysis::RoutingGoal::kContainment,
                                   options),
            EngineKind::kTypeEngine);

  report.treewidth = 7;
  EXPECT_EQ(analysis::ChooseEngine(report, analysis::RoutingGoal::kEvaluate,
                                   options),
            EngineKind::kGenericHomSearch);
}

}  // namespace
}  // namespace qcont

#include <memory>
#include <utility>

#include <gtest/gtest.h>

#include "base/hash.h"
#include "base/interner.h"
#include "base/status.h"

namespace qcont {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorConstructorsCarryCodeAndMessage) {
  EXPECT_EQ(InvalidArgumentError("bad").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(NotFoundError("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(FailedPreconditionError("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(ResourceExhaustedError("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(InternalError("x").code(), StatusCode::kInternal);
  EXPECT_EQ(UnimplementedError("x").code(), StatusCode::kUnimplemented);
  Status s = InvalidArgumentError("expected ')'");
  EXPECT_EQ(s.ToString(), "InvalidArgument: expected ')'");
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return InvalidArgumentError("not positive");
  return x;
}

Result<int> Doubled(int x) {
  QCONT_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  return 2 * v;
}

TEST(ResultTest, ValueAndErrorPaths) {
  Result<int> ok = Doubled(21);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);
  Result<int> err = Doubled(-1);
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, MoveOnlyValues) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

TEST(InternerTest, DenseIdsAndRoundTrip) {
  Interner interner;
  SymbolId a = interner.Intern("alpha");
  SymbolId b = interner.Intern("beta");
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  EXPECT_EQ(interner.Intern("alpha"), a);
  EXPECT_EQ(interner.NameOf(b), "beta");
  EXPECT_EQ(interner.Find("beta"), b);
  EXPECT_EQ(interner.Find("gamma"), Interner::kMissing);
  EXPECT_EQ(interner.size(), 2u);
}

TEST(InternerTest, MovedFromInternerStaysValidAndEmpty) {
  Interner source;
  source.Intern("alpha");
  source.Intern("beta");

  Interner moved(std::move(source));
  EXPECT_EQ(moved.size(), 2u);
  EXPECT_EQ(moved.Find("alpha"), 0u);
  // The moved-from interner is empty but fully usable (live mutex).
  EXPECT_EQ(source.size(), 0u);
  EXPECT_EQ(source.Find("alpha"), Interner::kMissing);
  EXPECT_EQ(source.Intern("gamma"), 0u);

  Interner assigned;
  assigned.Intern("delta");
  assigned = std::move(moved);
  EXPECT_EQ(assigned.size(), 2u);
  EXPECT_EQ(assigned.NameOf(1), "beta");
  EXPECT_EQ(moved.size(), 0u);
  EXPECT_EQ(moved.Intern("epsilon"), 0u);
}

TEST(HashTest, VectorAndPairHashersDiscriminate) {
  VectorHash<int> vh;
  EXPECT_NE(vh({1, 2, 3}), vh({3, 2, 1}));
  EXPECT_EQ(vh({1, 2, 3}), vh({1, 2, 3}));
  PairHash<int, std::string> ph;
  EXPECT_NE(ph({1, "a"}), ph({2, "a"}));
}

}  // namespace
}  // namespace qcont

#include <gtest/gtest.h>

#include <random>

#include "core/datalog_ucq.h"
#include "parser/parser.h"
#include "tests/engine_validation.h"
#include "tests/generators.h"

namespace qcont {
namespace {

struct Case {
  const char* name;
  const char* program;
  const char* ucq;
  bool contained;
};

class GeneralEngineCases : public ::testing::TestWithParam<Case> {};

TEST_P(GeneralEngineCases, DecidesAndValidates) {
  const Case& c = GetParam();
  auto program = ParseProgram(c.program);
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  auto ucq = ParseUcq(c.ucq);
  ASSERT_TRUE(ucq.ok()) << ucq.status().ToString();
  TypeEngineStats stats;
  auto answer = DatalogContainedInUcq(*program, *ucq, &stats);
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  EXPECT_EQ(answer->contained, c.contained);
  EXPECT_EQ(testval::ValidateAnswer(*program, *ucq, *answer), "");
  EXPECT_GT(stats.types, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    PaperAndClassics, GeneralEngineCases,
    ::testing::Values(
        // Example 1/2 of the paper: the compulsive-consumers program is
        // contained in (indeed equivalent to) the two-disjunct UCQ.
        Case{"consumers_yes",
             "buys(x,y) :- likes(x,y). buys(x,y) :- trendy(x), buys(z,y). "
             "goal buys.",
             "Q(x,y) :- likes(x,y). Q(x,y) :- trendy(x), likes(z,y).", true},
        Case{"consumers_partial",
             "buys(x,y) :- likes(x,y). buys(x,y) :- trendy(x), buys(z,y). "
             "goal buys.",
             "Q(x,y) :- likes(x,y).", false},
        Case{"tc_not_in_single_edge",
             "t(x,y) :- e(x,y). t(x,y) :- e(x,z), t(z,y). goal t.",
             "Q(x,y) :- e(x,y).", false},
        Case{"tc_not_in_two_steps",
             "t(x,y) :- e(x,y). t(x,y) :- e(x,z), t(z,y). goal t.",
             "Q(x,y) :- e(x,y). Q(x,y) :- e(x,z), e(z,y).", false},
        // Every expansion starts with an edge out of x.
        Case{"tc_first_step",
             "t(x,y) :- e(x,y). t(x,y) :- e(x,z), t(z,y). goal t.",
             "Q(x,y) :- e(x,u), e(u,y). Q(x,y) :- e(x,y).", false},
        Case{"reach_bool_yes",
             "g() :- p(x). p(x) :- a(x,y), p(y). p(x) :- b(x). goal g.",
             "Q() :- b(u).", true},
        Case{"reach_bool_no",
             "g() :- p(x). p(x) :- a(x,y), p(y). p(x) :- b(x). goal g.",
             "Q() :- a(u,v).", false},
        // Cyclic right-hand sides (the general engine's raison d'être).
        Case{"cyclic_rhs_yes",
             "p() :- e(x,y), e(y,z), e(z,x). goal p.",
             "Q() :- e(x,y), e(y,z), e(z,x).", true},
        Case{"cyclic_rhs_fold",
             "p() :- e(x,x). goal p.",
             "Q() :- e(x,y), e(y,z), e(z,x).", true},
        Case{"cyclic_rhs_no",
             "p() :- e(x,y), e(y,x). goal p.",
             "Q() :- e(x,y), e(y,z), e(z,x).", false},
        // Nonlinear recursion (two intensional atoms in one body).
        Case{"nonlinear",
             "t(x,y) :- e(x,y). t(x,y) :- t(x,z), t(z,y). goal t.",
             "Q(x,y) :- e(x,y).", false},
        Case{"mutual_recursion",
             "p(x) :- b(x). p(x) :- a(x,y), q(y). q(x) :- a(x,y), p(y). "
             "goal p.",
             "Q(x) :- b(x). Q(x) :- a(x,y), b(y).", false}),
    [](const ::testing::TestParamInfo<Case>& info) {
      return info.param.name;
    });

TEST(GeneralEngineTest, NonlinearDoublingContained) {
  // t = e+ computed by doubling; contained in "starts with an edge".
  auto program = ParseProgram(
      "t(x,y) :- e(x,y). t(x,y) :- t(x,z), t(z,y). goal t.");
  auto ucq = ParseUcq("Q(x,y) :- e(x,u), e(w,y). Q(x,y) :- e(x,y).");
  ASSERT_TRUE(program.ok() && ucq.ok());
  auto answer = DatalogContainedInUcq(*program, *ucq);
  ASSERT_TRUE(answer.ok());
  // Paths of length >= 2 match the first disjunct; single edges the second.
  EXPECT_TRUE(answer->contained);
  EXPECT_EQ(testval::ValidateAnswer(*program, *ucq, *answer), "");
}

TEST(GeneralEngineTest, RejectsAritiesAndIdbPredicates) {
  auto program = ParseProgram("t(x,y) :- e(x,y). goal t.");
  ASSERT_TRUE(program.ok());
  auto wrong_arity = ParseUcq("Q(x) :- e(x,y).");
  ASSERT_TRUE(wrong_arity.ok());
  EXPECT_FALSE(DatalogContainedInUcq(*program, *wrong_arity).ok());
  auto uses_idb = ParseUcq("Q(x,y) :- t(x,y).");
  ASSERT_TRUE(uses_idb.ok());
  EXPECT_FALSE(DatalogContainedInUcq(*program, *uses_idb).ok());
}

TEST(GeneralEngineTest, UnproductiveProgramIsContainedInAnything) {
  // The goal has no base case: Π(D) is empty for every D.
  auto program = ParseProgram("p(x) :- a(x,y), p(y). goal p.");
  auto ucq = ParseUcq("Q(x) :- b(x,x).");
  ASSERT_TRUE(program.ok() && ucq.ok());
  auto answer = DatalogContainedInUcq(*program, *ucq);
  ASSERT_TRUE(answer.ok());
  EXPECT_TRUE(answer->contained);
}

TEST(GeneralEngineTest, ResourceLimitsReported) {
  auto program = ParseProgram(
      "t(x,y) :- e(x,y). t(x,y) :- t(x,z), t(z,y). goal t.");
  auto ucq = ParseUcq("Q(x,y) :- e(x,y), e(y,z), e(z,w).");
  ASSERT_TRUE(program.ok() && ucq.ok());
  TypeEngineLimits limits;
  limits.max_types = 1;
  auto answer = DatalogContainedInUcq(*program, *ucq, nullptr, limits);
  EXPECT_FALSE(answer.ok());
  EXPECT_EQ(answer.status().code(), StatusCode::kResourceExhausted);
}

// Property: on random linear programs and random UCQs, answers validate
// against bounded expansion enumeration / witness certificates.
TEST(GeneralEngineProperty, RandomizedCrossValidation) {
  std::mt19937 rng(20140623);
  testgen::SchemaSpec schema = testgen::SmallSchema();
  int yes = 0, no = 0;
  for (int trial = 0; trial < 25; ++trial) {
    int arity = 1;
    DatalogProgram program = testgen::RandomLinearProgram(&rng, schema, arity);
    if (!program.Validate().ok()) continue;
    std::vector<ConjunctiveQuery> disjuncts;
    int nd = 1 + rng() % 2;
    for (int d = 0; d < nd; ++d) {
      ConjunctiveQuery cq = testgen::RandomCq(&rng, schema, 2, 2, arity);
      if (cq.Validate().ok()) disjuncts.push_back(cq);
    }
    if (disjuncts.empty()) continue;
    UnionQuery ucq(std::move(disjuncts));
    auto answer = DatalogContainedInUcq(program, ucq);
    ASSERT_TRUE(answer.ok()) << program.ToString();
    EXPECT_EQ(testval::ValidateAnswer(program, ucq, *answer), "")
        << program.ToString() << "\n"
        << ucq.ToString();
    (answer->contained ? yes : no)++;
  }
  EXPECT_GT(no, 0);
}

}  // namespace
}  // namespace qcont

#include <gtest/gtest.h>

#include "parser/parser.h"

namespace qcont {
namespace {

TEST(ParserTest, ProgramWithGoalDirective) {
  auto p = ParseProgram(R"(
    # transitive closure
    t(x, y) :- e(x, y).
    t(x, y) :- e(x, z), t(z, y).
    goal t.
  )");
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  EXPECT_EQ(p->rules().size(), 2u);
  EXPECT_EQ(p->goal_predicate(), "t");
}

TEST(ParserTest, GoalDefaultsToFirstHead) {
  auto p = ParseProgram("p(x) :- e(x,y).");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->goal_predicate(), "p");
}

TEST(ParserTest, CommentsAndWhitespace) {
  auto p = ParseProgram(
      "% leading comment\np(x) :- e(x,y). # trailing\n% another\ngoal p.");
  ASSERT_TRUE(p.ok());
}

TEST(ParserTest, ErrorsCarryOffsets) {
  auto p = ParseProgram("p(x) :- e(x,y)");  // missing period
  ASSERT_FALSE(p.ok());
  EXPECT_EQ(p.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(p.status().message().find("'.'"), std::string::npos);
}

TEST(ParserTest, RejectsUnsafeProgram) {
  EXPECT_FALSE(ParseProgram("p(x,y) :- e(x,x). goal p.").ok());
}

TEST(ParserTest, UcqWithConstantsAndBoolean) {
  auto u = ParseUcq("Q() :- r(x, 'alice').");
  ASSERT_TRUE(u.ok());
  EXPECT_EQ(u->arity(), 0u);
  const Atom& atom = u->disjuncts().front().atoms().front();
  EXPECT_TRUE(atom.terms()[1].is_constant());
  EXPECT_EQ(atom.terms()[1].name(), "alice");
}

TEST(ParserTest, UcqRequiresConsistentHeads) {
  EXPECT_FALSE(ParseUcq("Q(x) :- e(x,y). R(x) :- e(x,y).").ok());
  EXPECT_FALSE(ParseUcq("Q(x) :- e(x,y). Q(x,y) :- e(x,y).").ok());
}

TEST(ParserTest, UC2rpqRegexAtoms) {
  auto g = ParseUC2rpq("Q(x,y) :- [a (b|c)* d-](x, y), [e+](y, z).");
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  const C2rpq& q = g->disjuncts().front();
  EXPECT_EQ(q.atoms().size(), 2u);
  EXPECT_EQ(q.atoms()[0].pattern, "a (b|c)* d-");
  EXPECT_TRUE(q.atoms()[0].nfa.AcceptsWord({"a", "b", "c", "d-"}));
}

TEST(ParserTest, UC2rpqRejectsRelationalAtoms) {
  EXPECT_FALSE(ParseUC2rpq("Q(x,y) :- e(x,y).").ok());
  EXPECT_FALSE(ParseUC2rpq("Q(x,y) :- [a](x,y,z).").ok());
  EXPECT_FALSE(ParseUC2rpq("Q(x,y) :- [a](x,y").ok());
}

TEST(ParserTest, DatabaseFacts) {
  auto db = ParseDatabase("likes('ann','beer'). trendy('ann'). e(x, y).");
  ASSERT_TRUE(db.ok());
  EXPECT_TRUE(db->HasFact("likes", {"ann", "beer"}));
  EXPECT_TRUE(db->HasFact("trendy", {"ann"}));
  EXPECT_TRUE(db->HasFact("e", {"x", "y"}));  // bare idents become values
  EXPECT_EQ(db->NumFacts(), 3u);
}

TEST(ParserTest, DatabaseRejectsRules) {
  EXPECT_FALSE(ParseDatabase("p(x) :- e(x,y).").ok());
}

TEST(ParserTest, RegexUnterminated) {
  EXPECT_FALSE(ParseUC2rpq("Q(x,y) :- [a (x,y).").ok());
}

TEST(ParserTest, ConstantsRejectedInPrograms) {
  EXPECT_FALSE(ParseProgram("p(x) :- e(x,'c'). goal p.").ok());
}

}  // namespace
}  // namespace qcont

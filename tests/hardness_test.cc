// Structural tests for the Theorem 5 hardness-instance generator: the
// instances must have exactly the shape the paper's lower-bound proof
// relies on — polynomial size, an acyclic UCQ, and unbounded variable
// sharing (which is why Theorem 6's ACk engine does not help here).

#include <gtest/gtest.h>

#include <algorithm>

#include "core/hardness.h"
#include "structure/classify.h"

namespace qcont {
namespace {

TEST(AtmSpecTest, TinyValidates) {
  EXPECT_TRUE(AtmSpec::Tiny().Validate().ok());
}

TEST(AtmSpecTest, ValidationCatchesBadMachines) {
  AtmSpec m = AtmSpec::Tiny();
  m.existential[0] = false;  // the reduction needs an existential start
  EXPECT_FALSE(m.Validate().ok());
  m = AtmSpec::Tiny();
  m.delta_left[0][0].move = 2;
  EXPECT_FALSE(m.Validate().ok());
  m = AtmSpec::Tiny();
  m.initial_state = 5;
  EXPECT_FALSE(m.Validate().ok());
}

TEST(HardnessTest, InstanceIsWellFormed) {
  auto instance = BuildTheorem5Instance(AtmSpec::Tiny(), 2);
  ASSERT_TRUE(instance.ok()) << instance.status().ToString();
  EXPECT_TRUE(instance->program.Validate().ok());
  EXPECT_TRUE(instance->ucq.Validate().ok());
  EXPECT_EQ(instance->program.GoalArity(), 0);
  EXPECT_EQ(instance->ucq.arity(), 0u);
  // 2 plain + 2*2 composite symbols.
  EXPECT_EQ(instance->tape_symbol_names.size(), 6u);
}

TEST(HardnessTest, UcqIsAcyclic) {
  // The crux of Theorem 5(1): the error-detecting UCQ is in AC = HW(1),
  // yet containment stays 2EXPTIME-hard.
  auto instance = BuildTheorem5Instance(AtmSpec::Tiny(), 1);
  ASSERT_TRUE(instance.ok());
  auto acyclic = IsAcyclicUcq(instance->ucq);
  ASSERT_TRUE(acyclic.ok());
  EXPECT_TRUE(*acyclic);
}

TEST(HardnessTest, SharedVariablesGrowWithAddressWidth) {
  // The Φ gadgets share the whole n-bit address tuple ā2 between two
  // atoms, so the instances climb the ACk hierarchy as n grows — the
  // reason bounded-sharing (Theorem 6) is the right tractability frontier.
  // The Φ pair shares n + 3 variables (bx, by, the config link and the
  // full address); the address-counter gadgets share 7. So the level is
  // max(7, n + 3) and grows once n exceeds 4.
  int at_one = 0;
  for (int n : {1, 4, 6}) {
    auto instance = BuildTheorem5Instance(AtmSpec::Tiny(), n);
    ASSERT_TRUE(instance.ok());
    auto level = AckLevel(instance->ucq);
    ASSERT_TRUE(level.ok());
    EXPECT_GE(*level, std::max(7, n + 3)) << "n=" << n;
    if (n == 1) {
      at_one = *level;
    }
    if (n == 6) {
      EXPECT_GT(*level, at_one);
    }
  }
}

TEST(HardnessTest, SizesArePolynomialInN) {
  auto small = BuildTheorem5Instance(AtmSpec::Tiny(), 1);
  auto large = BuildTheorem5Instance(AtmSpec::Tiny(), 4);
  ASSERT_TRUE(small.ok() && large.ok());
  // Rules grow linearly in n (2 per address bit); disjunct count is
  // dominated by the machine-dependent Φ complement, independent of n.
  EXPECT_EQ(large->program.rules().size() - small->program.rules().size(),
            2u * 3u);
  EXPECT_EQ(large->ucq.disjuncts().size() >= small->ucq.disjuncts().size(),
            true);
  // The arity of the cell predicate is n + 8 as in the paper.
  EXPECT_EQ(large->program.ArityOf("cell"), 4 + 8);  // x,y,z,z' + ā + u,v,w,t
}

TEST(HardnessTest, ProgramShapeMatchesPaper) {
  auto instance = BuildTheorem5Instance(AtmSpec::Tiny(), 2);
  ASSERT_TRUE(instance.ok());
  const DatalogProgram& p = instance->program;
  EXPECT_TRUE(p.IsRecursive());
  EXPECT_FALSE(p.IsLinear());  // universal rules have two intensional atoms
  EXPECT_EQ(p.ArityOf("prop"), 2 + 7);  // n + 7 with n = 2
  EXPECT_EQ(p.ArityOf("accept_all"), 0);
  EXPECT_TRUE(p.IsIntensional("prop"));
  EXPECT_FALSE(p.IsIntensional("cell"));
  EXPECT_FALSE(p.IsIntensional("start"));
}

}  // namespace
}  // namespace qcont

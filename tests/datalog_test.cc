#include <gtest/gtest.h>

#include <random>

#include "cq/containment.h"
#include "datalog/eval.h"
#include "datalog/expansion.h"
#include "parser/parser.h"
#include "tests/generators.h"

namespace qcont {
namespace {

DatalogProgram Tc() {
  auto p = ParseProgram(
      "t(x,y) :- e(x,y). t(x,y) :- e(x,z), t(z,y). goal t.");
  EXPECT_TRUE(p.ok());
  return *p;
}

TEST(ProgramTest, ValidateAndClassify) {
  DatalogProgram tc = Tc();
  EXPECT_TRUE(tc.Validate().ok());
  EXPECT_TRUE(tc.IsRecursive());
  EXPECT_TRUE(tc.IsLinear());
  EXPECT_FALSE(tc.IsMonadic());
  EXPECT_EQ(tc.GoalArity(), 2);
  EXPECT_EQ(tc.IntensionalPredicates().size(), 1u);
  EXPECT_EQ(tc.ExtensionalPredicates().size(), 1u);
  EXPECT_EQ(tc.MaxRuleVariables(), 3);
  EXPECT_EQ(tc.MaxIntensionalAtoms(), 1);
}

TEST(ProgramTest, ValidateRejectsUnsafeRule) {
  auto p = ParseProgram("p(x,y) :- e(x,x). goal p.");
  EXPECT_FALSE(p.ok());
}

TEST(ProgramTest, NonRecursiveAndNonLinear) {
  auto p = ParseProgram(
      "s(x) :- e(x,y). q(x) :- s(x), s(x). goal q.");
  ASSERT_TRUE(p.ok());
  EXPECT_FALSE(p->IsRecursive());
  EXPECT_FALSE(p->IsLinear());
  EXPECT_TRUE(p->IsMonadic());
}

TEST(ProgramTest, MutualRecursionDetected) {
  auto p = ParseProgram(
      "p(x) :- e(x,y), q(y). q(x) :- e(x,y), p(y). p(x) :- u(x). goal p.");
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(p->IsRecursive());
}

TEST(EvalTest, TransitiveClosureOnChain) {
  Database db;
  for (int i = 0; i < 5; ++i) {
    db.AddFact("e", {std::to_string(i), std::to_string(i + 1)});
  }
  auto result = EvaluateGoal(Tc(), db);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 15u);  // all i < j pairs on 6 nodes
  EXPECT_TRUE(std::find(result->begin(), result->end(), Tuple{"0", "5"}) !=
              result->end());
}

TEST(EvalTest, TransitiveClosureOnCycle) {
  Database db;
  db.AddFact("e", {"a", "b"});
  db.AddFact("e", {"b", "a"});
  auto result = EvaluateGoal(Tc(), db);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 4u);  // all pairs including self-reach
}

TEST(EvalTest, EmptyEdbYieldsNothing) {
  Database db;
  auto result = EvaluateGoal(Tc(), db);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->empty());
}

TEST(EvalTest, StatsAreReported) {
  Database db;
  db.AddFact("e", {"1", "2"});
  db.AddFact("e", {"2", "3"});
  DatalogEvalStats stats;
  auto result = EvaluateGoal(Tc(), db, EvalStrategy::kSemiNaive, &stats);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(stats.iterations, 1u);
  EXPECT_GT(stats.derived_facts, 0u);
}

// Property: semi-naive and naive evaluation derive identical fixpoints.
TEST(EvalProperty, SemiNaiveEqualsNaive) {
  std::mt19937 rng(987);
  testgen::SchemaSpec schema = testgen::SmallSchema();
  for (int trial = 0; trial < 25; ++trial) {
    DatalogProgram program =
        testgen::RandomLinearProgram(&rng, schema, 1 + rng() % 2);
    if (!program.Validate().ok()) continue;
    Database db = testgen::RandomDatabase(&rng, schema, 3, 8);
    auto naive = EvaluateGoal(program, db, EvalStrategy::kNaive);
    auto semi = EvaluateGoal(program, db, EvalStrategy::kSemiNaive);
    ASSERT_TRUE(naive.ok() && semi.ok());
    EXPECT_EQ(*naive, *semi) << program.ToString();
  }
}

TEST(ExpansionTest, TcExpansionsArePaths) {
  auto exps = EnumerateExpansions(Tc(), 3, 100);
  ASSERT_TRUE(exps.ok());
  ASSERT_EQ(exps->size(), 4u);  // paths of length 1..4 within depth 3
  for (std::size_t i = 0; i < exps->size(); ++i) {
    EXPECT_EQ((*exps)[i].atoms().size(), i + 1);
    EXPECT_TRUE((*exps)[i].Validate().ok());
  }
}

TEST(ExpansionTest, DepthBoundPrunesClosure) {
  auto exps = EnumerateExpansions(Tc(), 1, 100);
  ASSERT_TRUE(exps.ok());
  EXPECT_EQ(exps->size(), 2u);
}

TEST(ExpansionTest, HeadUnificationMergesVariables) {
  auto p = ParseProgram("p(x,x) :- e(x,y), q(y,y). q(u,v) :- f(u,v). goal p.");
  ASSERT_TRUE(p.ok());
  auto exps = EnumerateExpansions(*p, 3, 10);
  ASSERT_TRUE(exps.ok());
  ASSERT_EQ(exps->size(), 1u);
  const ConjunctiveQuery& e = exps->front();
  // Head is (x,x)-shaped and the q-unfolding merged u=v.
  EXPECT_EQ(e.head()[0], e.head()[1]);
  ASSERT_EQ(e.atoms().size(), 2u);
  EXPECT_EQ(e.atoms()[1].terms()[0], e.atoms()[1].terms()[1]);
}

// Property: every enumerated expansion is sound — evaluating the program on
// the expansion's canonical database derives the expansion's frozen head.
TEST(ExpansionProperty, ExpansionsAreDerivable) {
  std::mt19937 rng(321);
  testgen::SchemaSpec schema = testgen::SmallSchema();
  for (int trial = 0; trial < 15; ++trial) {
    DatalogProgram program = testgen::RandomLinearProgram(&rng, schema, 1);
    if (!program.Validate().ok()) continue;
    auto exps = EnumerateExpansions(program, 3, 30);
    ASSERT_TRUE(exps.ok());
    for (const ConjunctiveQuery& e : *exps) {
      ASSERT_TRUE(e.Validate().ok()) << e.ToString();
      Database canonical = CanonicalDatabase(e);
      auto derived = EvaluateProgram(program, canonical);
      ASSERT_TRUE(derived.ok());
      EXPECT_TRUE(
          derived->HasFact(program.goal_predicate(), CanonicalHead(e)))
          << program.ToString() << "expansion: " << e.ToString();
    }
  }
}

TEST(SampleExpansionTest, ProducesValidExpansion) {
  std::mt19937 rng(99);
  for (int i = 0; i < 10; ++i) {
    auto e = SampleExpansion(Tc(), &rng, 4);
    ASSERT_TRUE(e.has_value());
    EXPECT_TRUE(e->Validate().ok());
    EXPECT_GE(e->atoms().size(), 1u);
    EXPECT_LE(e->atoms().size(), 5u);
  }
}

}  // namespace
}  // namespace qcont

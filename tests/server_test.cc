// Tests for the containment server (src/server): the hand-rolled JSON
// layer, the canonical-hash plan cache (LRU bounds, eviction correctness),
// and the server request lifecycle — deterministic replay across thread
// counts, within-batch coalescing, deadline and malformed-request error
// paths, and cache-marker semantics.

#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "server/json.h"
#include "server/plan_cache.h"
#include "server/server.h"

namespace qcont {
namespace server {
namespace {

// ---------------------------------------------------------------------------
// JSON layer.
// ---------------------------------------------------------------------------

TEST(JsonTest, ParsesScalarsAndNesting) {
  auto v = ParseJson(R"({"a":1,"b":"x","c":[true,false,null],"d":{"e":2.5}})");
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  ASSERT_TRUE(v->is_object());
  EXPECT_EQ(v->Get("a")->number_value(), 1.0);
  EXPECT_EQ(v->Get("b")->string_value(), "x");
  ASSERT_TRUE(v->Get("c")->is_array());
  EXPECT_EQ(v->Get("c")->array_items().size(), 3u);
  EXPECT_TRUE(v->Get("c")->array_items()[2].is_null());
  EXPECT_EQ(v->Get("d")->Get("e")->number_value(), 2.5);
  EXPECT_EQ(v->Get("missing"), nullptr);
}

TEST(JsonTest, EscapesRoundTrip) {
  auto v = ParseJson(R"({"s":"a\"b\\c\ndA"})");
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_EQ(v->Get("s")->string_value(), "a\"b\\c\ndA");
  // Dump re-escapes; a reparse yields the same string.
  auto again = ParseJson(v->Dump());
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->Get("s")->string_value(), "a\"b\\c\ndA");
}

TEST(JsonTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseJson("").ok());
  EXPECT_FALSE(ParseJson("{").ok());
  EXPECT_FALSE(ParseJson(R"({"a":})").ok());
  EXPECT_FALSE(ParseJson(R"({"a":1} trailing)").ok());
  EXPECT_FALSE(ParseJson(R"("unterminated)").ok());
  EXPECT_FALSE(ParseJson(R"({"a":01})").ok());
  // Depth bomb: nesting past the parser's limit fails, never crashes.
  std::string deep(100, '[');
  EXPECT_FALSE(ParseJson(deep).ok());
}

TEST(JsonTest, IntegralNumbersDumpWithoutExponent) {
  auto v = ParseJson(R"({"id":123456789})");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->Get("id")->Dump(), "123456789");
}

TEST(JsonTest, RejectsNonFiniteNumbers) {
  // strtod overflows these to ±inf; echoing them back via Dump() would
  // produce invalid JSON, so the parser must reject them up front.
  EXPECT_FALSE(ParseJson("1e999").ok());
  EXPECT_FALSE(ParseJson("-1e999").ok());
  EXPECT_FALSE(ParseJson(R"({"id":1e999})").ok());
  // Values near the double range edge still parse.
  EXPECT_TRUE(ParseJson("1e308").ok());
}

TEST(JsonTest, NonFiniteNumbersDumpAsNull) {
  // Programmatically constructed values (the parser never produces these).
  EXPECT_EQ(JsonValue::Number(std::numeric_limits<double>::infinity()).Dump(),
            "null");
  EXPECT_EQ(JsonValue::Number(std::numeric_limits<double>::quiet_NaN()).Dump(),
            "null");
}

// ---------------------------------------------------------------------------
// PlanCache.
// ---------------------------------------------------------------------------

TEST(PlanCacheTest, LruEvictsOldestAndCountsIt) {
  PlanCacheConfig config;
  config.verdict_capacity = 2;
  PlanCache cache(config);

  CachedVerdict v;
  v.contained = true;
  cache.InsertVerdict({1, 1}, v);
  cache.InsertVerdict({2, 2}, v);
  // Touch {1,1} so {2,2} becomes the LRU victim.
  EXPECT_TRUE(cache.LookupVerdict({1, 1}).has_value());
  cache.InsertVerdict({3, 3}, v);

  EXPECT_TRUE(cache.LookupVerdict({1, 1}).has_value());
  EXPECT_FALSE(cache.LookupVerdict({2, 2}).has_value());
  EXPECT_TRUE(cache.LookupVerdict({3, 3}).has_value());

  PlanCacheStats stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.insertions, 3u);
}

TEST(PlanCacheTest, ZeroCapacityDisablesKind) {
  PlanCacheConfig config;
  config.verdict_capacity = 0;
  PlanCache cache(config);
  cache.InsertVerdict({1, 1}, CachedVerdict{});
  EXPECT_FALSE(cache.LookupVerdict({1, 1}).has_value());
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(PlanCacheTest, StableFlagsEntriesFromEarlierEpochsOnly) {
  PlanCache cache;
  cache.BeginEpoch();
  cache.InsertVerdict({1, 1}, CachedVerdict{});

  // Same epoch: the entry is found but not stable.
  bool stable = true;
  EXPECT_TRUE(cache.LookupVerdict({1, 1}, &stable).has_value());
  EXPECT_FALSE(stable);
  // A miss is never stable.
  stable = true;
  EXPECT_FALSE(cache.LookupVerdict({9, 9}, &stable).has_value());
  EXPECT_FALSE(stable);

  // Next epoch: the entry predates the batch, so it is stable.
  cache.BeginEpoch();
  EXPECT_TRUE(cache.LookupVerdict({1, 1}, &stable).has_value());
  EXPECT_TRUE(stable);

  // Re-inserting an existing key keeps the original epoch: the entry was
  // already present before this batch, so it stays stable.
  cache.InsertVerdict({1, 1}, CachedVerdict{});
  stable = false;
  EXPECT_TRUE(cache.LookupVerdict({1, 1}, &stable).has_value());
  EXPECT_TRUE(stable);
}

// ---------------------------------------------------------------------------
// Server request lifecycle.
// ---------------------------------------------------------------------------

// A mixed workload exercising both engines, eval, analyze, coalescing
// (ids 10/11 alpha-rename id 1), and a cross-batch repeat.
std::vector<std::string> MixedRequests() {
  return {
      R"({"id":1,"op":"containment","program":"g(x,y) :- e(x,y). g(x,y) :- e(x,z), g(z,y). goal g.","query":"Q(x,y) :- e(x,y). Q(x,y) :- e(x,z), e(z,y)."})",
      R"({"id":2,"op":"eval","program":"t(x,y) :- e(x,y). t(x,y) :- e(x,z), t(z,y). goal t.","database":"e(a,b). e(b,c)."})",
      R"({"id":3,"op":"analyze","query":"Q(x) :- r(x,y), s(y,x)."})",
      R"({"id":4,"op":"containment","program":"g(x) :- e(x,x). goal g.","query":"Q(x) :- e(x,y)."})",
      R"({"id":5,"op":"containment","program":"g(x,y) :- e(x,y). goal g.","query":"Q(x,y) :- e(x,y). Q(u,v) :- e(u,w), e(w,v)."})",
      R"({"id":10,"op":"containment","program":"g(x,y) :- e(x,y). g(x,y) :- e(x,z), g(z,y). goal g.","query":"Q(a,b) :- e(a,b). Q(a,b) :- e(a,c), e(c,b)."})",
      R"({"id":11,"op":"containment","program":"g(x,y) :- e(x,y). g(x,y) :- e(x,z), g(z,y). goal g.","query":"Q(x,y) :- e(x,y). Q(x,y) :- e(x,z), e(z,y)."})",
      R"({"id":12,"op":"eval","program":"t(x,y) :- e(x,y). t(x,y) :- e(x,z), t(z,y). goal t.","database":"e(b,c). e(a,b)."})",
  };
}

// Strips the schedule-dependent "elapsed_us" field; everything else in a
// response is covered by the determinism contract.
std::string StripElapsed(const std::string& response) {
  const std::string key = "\"elapsed_us\":";
  auto pos = response.find(key);
  if (pos == std::string::npos) return response;
  auto end = pos + key.size();
  while (end < response.size() &&
         (std::isdigit(static_cast<unsigned char>(response[end])) != 0)) {
    ++end;
  }
  return response.substr(0, pos + key.size()) + "0" + response.substr(end);
}

TEST(ServerTest, ReplayIsDeterministicAcrossThreadCounts) {
  const std::vector<std::string> requests = MixedRequests();
  std::vector<std::vector<std::string>> runs;
  for (int threads : {1, 8}) {
    ServerOptions options;
    options.threads = threads;
    options.max_batch = 4;  // forces two chunks => cross-batch cache hits
    Server server(options);
    std::vector<std::string> responses = server.HandleBatch(requests);
    for (std::string& r : responses) r = StripElapsed(r);
    runs.push_back(std::move(responses));
  }
  ASSERT_EQ(runs[0].size(), requests.size());
  EXPECT_EQ(runs[0], runs[1]) << "threads=1 and threads=8 replies differ";
}

// Work items of one batch can share a cache key without sharing a
// coalescing key: a containment and an analyze over the same Π/Θ both use
// the analysis shard, and two containments whose queries minimize to the
// same core share a verdict key. Whether the second item finds the
// first's insert depends on the schedule, so the "hit"/"miss" marker must
// be decided against the cache state at batch start: all of these report
// "miss" in their first batch, at every thread count, and "hit" on a
// replay.
TEST(ServerTest, CacheMarkersIgnoreSameBatchInsertsAcrossWorkItems) {
  const std::vector<std::string> requests = {
      // ids 1/2: same program and query, different ops => distinct
      // coalescing keys, same analysis-shard key.
      R"({"id":1,"op":"containment","program":"g(x,y) :- e(x,y). g(x,y) :- e(x,z), g(z,y). goal g.","query":"Q(x,y) :- e(x,y). Q(x,y) :- e(x,z), e(z,y)."})",
      R"({"id":2,"op":"analyze","program":"g(x,y) :- e(x,y). g(x,y) :- e(x,z), g(z,y). goal g.","query":"Q(x,y) :- e(x,y). Q(x,y) :- e(x,z), e(z,y)."})",
      // ids 3/4: id 4's redundant second disjunct minimizes away, leaving
      // id 3's query => distinct coalescing keys, same verdict key.
      R"({"id":3,"op":"containment","program":"g(x,y) :- e(x,y). goal g.","query":"Q(x,y) :- e(x,y)."})",
      R"({"id":4,"op":"containment","program":"g(x,y) :- e(x,y). goal g.","query":"Q(x,y) :- e(x,y). Q(u,v) :- e(u,w), e(w,v)."})",
  };
  for (int threads : {1, 8}) {
    Server server(ServerOptions{.threads = threads});
    std::vector<std::string> responses = server.HandleBatch(requests);
    ASSERT_EQ(responses.size(), requests.size());
    for (const std::string& r : responses) {
      EXPECT_NE(r.find("\"cache\":\"miss\""), std::string::npos)
          << "threads=" << threads << ": " << r;
    }
    // Replayed in a later batch, every entry predates the batch.
    for (const std::string& r : server.HandleBatch(requests)) {
      EXPECT_NE(r.find("\"cache\":\"hit\""), std::string::npos)
          << "threads=" << threads << ": " << r;
    }
  }
}

TEST(ServerTest, CoalescesDuplicatesWithinBatchAndHitsAcrossBatches) {
  ServerOptions options;
  options.threads = 4;
  options.max_batch = 8;  // one chunk: duplicates coalesce
  Server server(options);
  std::vector<std::string> responses = server.HandleBatch(MixedRequests());

  // ids 10 and 11 duplicate id 1's canonical work key within the batch.
  EXPECT_NE(responses[5].find("\"cache\":\"coalesced\""), std::string::npos)
      << responses[5];
  EXPECT_NE(responses[6].find("\"cache\":\"coalesced\""), std::string::npos)
      << responses[6];
  // id 12 permutes id 2's database facts: same canonical hash, coalesced.
  EXPECT_NE(responses[7].find("\"cache\":\"coalesced\""), std::string::npos)
      << responses[7];
  EXPECT_EQ(server.stats().coalesced, 3u);

  // A second replay of the same batch answers everything from cache.
  std::vector<std::string> again = server.HandleBatch(MixedRequests());
  for (const std::string& r : again) {
    const bool from_cache =
        r.find("\"cache\":\"hit\"") != std::string::npos ||
        r.find("\"cache\":\"coalesced\"") != std::string::npos;
    EXPECT_TRUE(from_cache) << r;
  }
}

// A repeated Π with fresh cyclic Θs (cyclic, so every request routes to
// the general engine) misses the verdict cache each time but shares one
// frozen program artifact: the second batch's requests skip the Π-only
// expansion entirely. Exercised at 1 and 8 threads so TSAN sees the
// shared-after-freeze read path.
TEST(ServerTest, RepeatedProgramSharesArtifactAcrossBatches) {
  const char* kPi =
      "g(x,y) :- e(x,y). g(x,y) :- e(x,z), g(z,y). goal g.";
  // Every Θ is a genuine hypergraph cycle (triangle / 4-cycle): a 2-cycle
  // like e(x,y), e(y,x) is α-acyclic (both atoms cover {x,y}) and would
  // route to the ACk engine, which never touches the artifact layer.
  const std::vector<std::string> first = {
      std::string(R"({"id":1,"op":"containment","program":")") + kPi +
          R"(","query":"Q(x,y) :- e(x,y), e(y,z), e(z,x)."})",
  };
  const std::vector<std::string> second = {
      std::string(R"({"id":2,"op":"containment","program":")") + kPi +
          R"(","query":"Q(x,y) :- e(x,y), e(y,z), e(z,w), e(w,x)."})",
      std::string(R"({"id":3,"op":"containment","program":")") + kPi +
          R"(","query":"Q(x,y) :- e(x,y), e(y,z), e(z,x), e(x,x)."})",
  };
  for (int threads : {1, 8}) {
    Server server(ServerOptions{.threads = threads});
    for (const std::string& r : server.HandleBatch(first)) {
      EXPECT_NE(r.find("\"cache\":\"miss\""), std::string::npos) << r;
    }
    for (const std::string& r : server.HandleBatch(second)) {
      // Fresh Θ: a verdict miss, but the artifact is already resident.
      EXPECT_NE(r.find("\"cache\":\"miss\""), std::string::npos) << r;
    }
    const ProgramArtifactCacheStats astats =
        server.cache().artifacts().stats();
    EXPECT_EQ(astats.misses, 1u) << "threads=" << threads;
    EXPECT_EQ(astats.hits, 2u) << "threads=" << threads;
    EXPECT_EQ(astats.entries, 1u) << "threads=" << threads;
    EXPECT_GT(astats.bytes, 0u) << "threads=" << threads;
  }
}

TEST(ServerTest, ShrunkCacheStaysCorrectUnderEviction) {
  // Reference run: ample cache.
  ServerOptions reference_options;
  reference_options.threads = 2;
  Server reference(reference_options);
  std::vector<std::string> expected = reference.HandleBatch(MixedRequests());

  // Tiny cache: every kind holds one entry, so the replayed tail keeps
  // evicting. Verdicts must not change — only the cache markers may.
  ServerOptions options;
  options.threads = 2;
  options.cache.verdict_capacity = 1;
  options.cache.analysis_capacity = 1;
  options.cache.core_capacity = 1;
  options.cache.eval_capacity = 1;
  options.max_batch = 1;  // no coalescing: all pressure on the LRU
  Server server(options);

  for (int round = 0; round < 2; ++round) {
    std::vector<std::string> responses = server.HandleBatch(MixedRequests());
    ASSERT_EQ(responses.size(), expected.size());
    for (std::size_t i = 0; i < responses.size(); ++i) {
      // Compare the result payloads (everything after the cache marker).
      const std::string want =
          expected[i].substr(expected[i].find("\"result\""));
      const std::string got =
          responses[i].substr(responses[i].find("\"result\""));
      EXPECT_EQ(got, want) << "request " << i << " round " << round;
    }
  }
  EXPECT_GT(server.cache().stats().evictions, 0u);
}

TEST(ServerTest, DeadlineZeroExpiresDeterministically) {
  Server server(ServerOptions{});
  const std::string response = server.HandleLine(
      R"({"id":9,"op":"containment","deadline_ms":0,"program":"g(x) :- e(x,x). goal g.","query":"Q(x) :- e(x,x)."})");
  EXPECT_NE(response.find("\"status\":\"deadline_exceeded\""),
            std::string::npos)
      << response;
  EXPECT_EQ(server.stats().deadline_exceeded, 1u);
}

TEST(ServerTest, DefaultDeadlineAppliesWhenRequestHasNone) {
  ServerOptions options;
  options.default_deadline_ms = 0;  // 0 = no default deadline
  Server no_deadline(options);
  EXPECT_NE(no_deadline
                .HandleLine(R"({"op":"analyze","query":"Q(x) :- e(x,x)."})")
                .find("\"status\":\"ok\""),
            std::string::npos);

  // A request-level deadline overrides the (absent) default.
  EXPECT_NE(no_deadline
                .HandleLine(
                    R"({"op":"analyze","deadline_ms":0,"query":"Q(x) :- e(x,x)."})")
                .find("\"status\":\"deadline_exceeded\""),
            std::string::npos);
}

TEST(ServerTest, MalformedRequestsReportErrorsAndEchoIds) {
  Server server(ServerOptions{});
  struct Case {
    const char* line;
    const char* expect;  // substring of the response
  };
  const Case cases[] = {
      {"not json at all", "\"status\":\"error\""},
      {R"([1,2,3])", "request must be a JSON object"},
      {R"({"id":7})", "needs a string \\\"op\\\" field"},
      {R"({"id":8,"op":"frobnicate"})", "unknown op"},
      {R"({"id":8,"op":"frobnicate"})", "\"id\":8"},
      {R"({"id":"abc","op":"containment"})", "\"id\":\"abc\""},
      {R"({"op":"containment","query":"Q(x) :- e(x,x)."})",
       "needs a string \\\"program\\\" field"},
      {R"({"op":"containment","program":"goal g.","query":"syntax @@ error"})",
       "\"status\":\"error\""},
      {R"({"op":"eval","program":"g(x) :- e(x,x). goal g."})",
       "needs string \\\"program\\\" and \\\"database\\\" fields"},
      {R"({"op":"analyze","deadline_ms":"soon","query":"Q(x) :- e(x,x)."})",
       "must be a number"},
  };
  for (const Case& c : cases) {
    const std::string response = server.HandleLine(c.line);
    EXPECT_NE(response.find(c.expect), std::string::npos)
        << "request: " << c.line << "\nresponse: " << response;
    EXPECT_NE(response.find("\"schema_version\":1"), std::string::npos);
  }
  EXPECT_EQ(server.stats().ok, 0u);
  EXPECT_GT(server.stats().errors, 0u);
}

TEST(ServerTest, OversizedRequestIsRejectedAsOverloaded) {
  ServerOptions options;
  options.max_request_bytes = 64;
  Server server(options);
  std::string big = R"({"op":"analyze","query":")";
  big.append(200, 'x');
  big += "\"}";
  const std::string response = server.HandleLine(big);
  EXPECT_NE(response.find("\"status\":\"overloaded\""), std::string::npos)
      << response;
  EXPECT_EQ(server.stats().overloaded, 1u);
}

TEST(ServerTest, ServeStreamAnswersInRequestOrder) {
  ServerOptions options;
  options.threads = 4;
  Server server(options);
  std::string input;
  for (const std::string& line : MixedRequests()) input += line + "\n";
  std::istringstream in(input);
  std::ostringstream out;
  server.ServeStream(in, out);

  std::istringstream reread(out.str());
  std::string line;
  std::vector<std::string> ids;
  while (std::getline(reread, line)) {
    auto pos = line.find("\"id\":");
    ASSERT_NE(pos, std::string::npos);
    ids.push_back(line.substr(pos + 5, line.find(',', pos) - pos - 5));
  }
  EXPECT_EQ(ids, (std::vector<std::string>{"1", "2", "3", "4", "5", "10",
                                           "11", "12"}));
}

}  // namespace
}  // namespace server
}  // namespace qcont

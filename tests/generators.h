#ifndef QCONT_TESTS_GENERATORS_H_
#define QCONT_TESTS_GENERATORS_H_

// Seeded random-instance generators shared by the property-based tests.

#include <random>
#include <string>
#include <vector>

#include "cq/database.h"
#include "cq/query.h"
#include "datalog/program.h"

namespace qcont {
namespace testgen {

struct SchemaSpec {
  std::vector<std::pair<std::string, int>> relations;  // (name, arity)
};

inline SchemaSpec SmallSchema() {
  return SchemaSpec{{{"a", 2}, {"b", 2}, {"u", 1}}};
}

inline SchemaSpec BinarySchema() { return SchemaSpec{{{"a", 2}, {"b", 2}}}; }

/// A random database over `schema` with values v0..v{domain-1}. To build a
/// flat/legacy pair with identical contents (and identical pool interning
/// sequences), copy the generator and call this twice with the same copy:
/// `std::mt19937 rng2 = *rng;` before the first call.
inline Database RandomDatabase(std::mt19937* rng, const SchemaSpec& schema,
                               int domain, int facts,
                               DatabaseLayout layout = DatabaseLayout::kFlat) {
  Database db(layout);
  for (int i = 0; i < facts; ++i) {
    const auto& [name, arity] = schema.relations[(*rng)() % schema.relations.size()];
    Tuple t;
    for (int j = 0; j < arity; ++j) {
      t.push_back("v" + std::to_string((*rng)() % domain));
    }
    db.AddFact(name, std::move(t));
  }
  return db;
}

/// A random CQ over `schema` with `num_atoms` atoms over `num_vars`
/// variables and `arity` free variables (safety is ensured by drawing the
/// head from variables that occur in the body).
inline ConjunctiveQuery RandomCq(std::mt19937* rng, const SchemaSpec& schema,
                                 int num_atoms, int num_vars, int arity) {
  std::vector<Atom> atoms;
  std::vector<std::string> used;
  for (int i = 0; i < num_atoms; ++i) {
    const auto& [name, rel_arity] =
        schema.relations[(*rng)() % schema.relations.size()];
    std::vector<Term> terms;
    for (int j = 0; j < rel_arity; ++j) {
      std::string var = "x" + std::to_string((*rng)() % num_vars);
      used.push_back(var);
      terms.push_back(Term::Variable(var));
    }
    atoms.emplace_back(name, std::move(terms));
  }
  std::vector<Term> head;
  for (int i = 0; i < arity && !used.empty(); ++i) {
    head.push_back(Term::Variable(used[(*rng)() % used.size()]));
  }
  return ConjunctiveQuery(std::move(head), std::move(atoms));
}

/// A random *acyclic* CQ built by an ear construction: atom i > 0 shares a
/// subset of one earlier atom's variables and otherwise uses fresh
/// variables, which guarantees a join tree by construction.
inline ConjunctiveQuery RandomAcyclicCq(std::mt19937* rng,
                                        const SchemaSpec& schema,
                                        int num_atoms, int arity) {
  std::vector<Atom> atoms;
  std::vector<std::vector<std::string>> atom_vars;
  int fresh = 0;
  std::vector<std::string> used;
  for (int i = 0; i < num_atoms; ++i) {
    const auto& [name, rel_arity] =
        schema.relations[(*rng)() % schema.relations.size()];
    std::vector<std::string> pool;
    if (i > 0) {
      // Borrow from one earlier atom only (its bag in the join tree).
      pool = atom_vars[(*rng)() % atom_vars.size()];
    }
    std::vector<Term> terms;
    std::vector<std::string> vars;
    for (int j = 0; j < rel_arity; ++j) {
      std::string var;
      if (!pool.empty() && (*rng)() % 2 == 0) {
        var = pool[(*rng)() % pool.size()];
      } else {
        var = "y" + std::to_string(fresh++);
      }
      vars.push_back(var);
      used.push_back(var);
      terms.push_back(Term::Variable(var));
    }
    atom_vars.push_back(vars);
    atoms.emplace_back(name, std::move(terms));
  }
  std::vector<Term> head;
  for (int i = 0; i < arity && !used.empty(); ++i) {
    head.push_back(Term::Variable(used[(*rng)() % used.size()]));
  }
  return ConjunctiveQuery(std::move(head), std::move(atoms));
}

/// A random acyclic UCQ.
inline UnionQuery RandomAcyclicUcq(std::mt19937* rng, const SchemaSpec& schema,
                                   int disjuncts, int atoms_per_disjunct,
                                   int arity) {
  std::vector<ConjunctiveQuery> cqs;
  for (int i = 0; i < disjuncts; ++i) {
    cqs.push_back(RandomAcyclicCq(rng, schema, 1 + static_cast<int>((*rng)() %
                                                   atoms_per_disjunct),
                                  arity));
  }
  return UnionQuery(std::move(cqs));
}

/// A small random Datalog program over `schema` with one recursive
/// intensional predicate p (the goal). Shapes are constrained so that the
/// containment engines stay small: 1 base rule + 1-2 recursive rules with a
/// single intensional atom each.
inline DatalogProgram RandomLinearProgram(std::mt19937* rng,
                                          const SchemaSpec& schema,
                                          int goal_arity) {
  auto random_edb_atom = [&](const std::vector<std::string>& vars) {
    const auto& [name, rel_arity] =
        schema.relations[(*rng)() % schema.relations.size()];
    std::vector<Term> terms;
    for (int j = 0; j < rel_arity; ++j) {
      terms.push_back(Term::Variable(vars[(*rng)() % vars.size()]));
    }
    return Atom(name, std::move(terms));
  };
  std::vector<std::string> vars = {"x", "y", "z", "w"};
  auto head_of = [&](const std::vector<Term>& body_choice) {
    std::vector<Term> head;
    for (int i = 0; i < goal_arity; ++i) {
      head.push_back(body_choice[(*rng)() % body_choice.size()]);
    }
    return head;
  };
  std::vector<Rule> rules;
  // Base rule: p(head) <- 1-2 EDB atoms.
  {
    std::vector<Atom> body;
    int n = 1 + static_cast<int>((*rng)() % 2);
    for (int i = 0; i < n; ++i) body.push_back(random_edb_atom(vars));
    std::vector<Term> body_vars;
    for (const Atom& a : body) {
      for (const Term& t : a.terms()) body_vars.push_back(t);
    }
    rules.push_back(Rule{Atom("p", head_of(body_vars)), std::move(body)});
  }
  // 1-2 recursive rules: p(head) <- EDB atom(s), p(vars).
  int recs = 1 + static_cast<int>((*rng)() % 2);
  for (int r = 0; r < recs; ++r) {
    std::vector<Atom> body;
    int n = 1 + static_cast<int>((*rng)() % 2);
    for (int i = 0; i < n; ++i) body.push_back(random_edb_atom(vars));
    std::vector<Term> p_args;
    for (int i = 0; i < goal_arity; ++i) {
      p_args.push_back(Term::Variable(vars[(*rng)() % vars.size()]));
    }
    body.emplace_back("p", p_args);
    std::vector<Term> body_vars;
    for (const Atom& a : body) {
      for (const Term& t : a.terms()) body_vars.push_back(t);
    }
    rules.push_back(Rule{Atom("p", head_of(body_vars)), std::move(body)});
  }
  return DatalogProgram(std::move(rules), "p");
}

}  // namespace testgen
}  // namespace qcont

#endif  // QCONT_TESTS_GENERATORS_H_

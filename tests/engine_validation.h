#ifndef QCONT_TESTS_ENGINE_VALIDATION_H_
#define QCONT_TESTS_ENGINE_VALIDATION_H_

// Shared cross-validation helpers for the containment-engine tests.

#include <string>

#include "core/datalog_ucq.h"
#include "cq/containment.h"
#include "cq/database.h"
#include "datalog/eval.h"
#include "datalog/expansion.h"

namespace qcont {
namespace testval {

/// Validates a containment answer against ground truth obtainable without
/// the engine:
///  - contained: every expansion of Π within the depth bound must be
///    contained in Θ (a complete refutation check up to that depth);
///  - not contained: the witness must escape Θ and be derivable by Π on
///    its own canonical database (a full certificate).
/// Returns an empty string on success, a diagnostic otherwise.
inline std::string ValidateAnswer(const DatalogProgram& program,
                                  const UnionQuery& ucq,
                                  const ContainmentAnswer& answer,
                                  int depth = 4, std::size_t max_exp = 300) {
  if (answer.contained) {
    auto exps = EnumerateExpansions(program, depth, max_exp);
    if (!exps.ok()) return "expansion enumeration failed";
    for (const ConjunctiveQuery& e : *exps) {
      auto c = CqContainedInUcq(e, ucq);
      if (!c.ok()) return "containment check failed: " + c.status().ToString();
      if (!*c) return "claimed contained but expansion escapes: " + e.ToString();
    }
    return "";
  }
  if (!answer.witness.has_value()) return "missing witness";
  auto c = CqContainedInUcq(*answer.witness, ucq);
  if (!c.ok()) return "witness check failed: " + c.status().ToString();
  if (*c) return "witness is contained in the UCQ: " + answer.witness->ToString();
  Database canonical = CanonicalDatabase(*answer.witness);
  auto derived = EvaluateProgram(program, canonical);
  if (!derived.ok()) return "evaluation failed";
  if (!derived->HasFact(program.goal_predicate(),
                        CanonicalHead(*answer.witness))) {
    return "witness is not derivable by the program: " +
           answer.witness->ToString();
  }
  return "";
}

}  // namespace testval
}  // namespace qcont

#endif  // QCONT_TESTS_ENGINE_VALIDATION_H_

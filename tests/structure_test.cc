#include <gtest/gtest.h>

#include <random>

#include "parser/parser.h"
#include "structure/graph.h"
#include "structure/join_tree.h"
#include "structure/tree_decomposition.h"
#include "tests/generators.h"

namespace qcont {
namespace {

ConjunctiveQuery Cq(const std::string& text) {
  auto ucq = ParseUcq(text);
  EXPECT_TRUE(ucq.ok()) << ucq.status().ToString();
  return ucq->disjuncts().front();
}

UndirectedGraph Cycle(int n) {
  UndirectedGraph g(n);
  for (int i = 0; i < n; ++i) g.AddEdge(i, (i + 1) % n);
  return g;
}

UndirectedGraph Clique(int n) {
  UndirectedGraph g(n);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) g.AddEdge(i, j);
  }
  return g;
}

TEST(GraphTest, BasicOperations) {
  UndirectedGraph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(1, 1);  // self loop ignored
  EXPECT_EQ(g.NumEdges(), 2u);
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_FALSE(g.HasEdge(0, 2));
  EXPECT_TRUE(g.IsForest());
  EXPECT_EQ(g.ConnectedComponents().size(), 2u);  // {0,1,2} and {3}
}

TEST(GraphTest, CycleIsNotForest) {
  EXPECT_FALSE(Cycle(3).IsForest());
  EXPECT_FALSE(Cycle(5).IsForest());
}

TEST(GaifmanGraphTest, PathQuery) {
  ConjunctiveQuery cq = Cq("Q() :- E(x,y), E(y,z).");
  UndirectedGraph g = GaifmanGraph(cq);
  EXPECT_EQ(g.NumVertices(), 3u);
  EXPECT_EQ(g.NumEdges(), 2u);
  EXPECT_TRUE(g.IsForest());
}

TEST(GaifmanGraphTest, WideAtomFormsClique) {
  ConjunctiveQuery cq = Cq("Q() :- T(x,y,z).");
  UndirectedGraph g = GaifmanGraph(cq);
  EXPECT_EQ(g.NumEdges(), 3u);  // triangle
}

TEST(TreewidthTest, KnownValues) {
  EXPECT_EQ(*TreewidthExact(UndirectedGraph(0)), 0);
  EXPECT_EQ(*TreewidthExact(UndirectedGraph(1)), 0);
  EXPECT_EQ(*TreewidthExact(Cycle(3)), 2);
  EXPECT_EQ(*TreewidthExact(Cycle(6)), 2);
  EXPECT_EQ(*TreewidthExact(Clique(5)), 4);
  // Paths have treewidth 1.
  UndirectedGraph path(5);
  for (int i = 0; i < 4; ++i) path.AddEdge(i, i + 1);
  EXPECT_EQ(*TreewidthExact(path), 1);
  // 3x3 grid has treewidth 3.
  UndirectedGraph grid(9);
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 3; ++c) {
      if (c + 1 < 3) grid.AddEdge(r * 3 + c, r * 3 + c + 1);
      if (r + 1 < 3) grid.AddEdge(r * 3 + c, (r + 1) * 3 + c);
    }
  }
  EXPECT_EQ(*TreewidthExact(grid), 3);
}

TEST(TreewidthTest, RefusesLargeGraphs) {
  EXPECT_EQ(TreewidthExact(Clique(25)).status().code(),
            StatusCode::kResourceExhausted);
}

TEST(TreeDecompositionTest, FromOrderIsValid) {
  UndirectedGraph g = Cycle(5);
  TreeDecomposition td = DecompositionFromOrder(g, MinFillOrder(g));
  EXPECT_TRUE(td.Validate(g).ok());
  EXPECT_EQ(td.Width(), 2);
}

TEST(TreeDecompositionTest, ValidateRejectsBadDecompositions) {
  UndirectedGraph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  TreeDecomposition td;
  td.bags = {{0, 1}, {2}};  // edge (1,2) uncovered
  td.edges = {{0, 1}};
  EXPECT_FALSE(td.Validate(g).ok());
  td.bags = {{0, 1}, {1, 2}, {0, 1}};
  td.edges = {{0, 1}, {1, 2}};  // vertex 0's bags disconnected
  EXPECT_FALSE(td.Validate(g).ok());
}

// Property: on random graphs the min-fill upper bound is valid and never
// beats the exact treewidth.
TEST(TreewidthProperty, HeuristicBoundsExact) {
  std::mt19937 rng(42);
  for (int trial = 0; trial < 30; ++trial) {
    int n = 4 + static_cast<int>(rng() % 6);
    UndirectedGraph g(n);
    for (int i = 0; i < n; ++i) {
      for (int j = i + 1; j < n; ++j) {
        if (rng() % 3 == 0) g.AddEdge(i, j);
      }
    }
    TreeDecomposition td = DecompositionFromOrder(g, MinFillOrder(g));
    ASSERT_TRUE(td.Validate(g).ok());
    auto exact = TreewidthExact(g);
    ASSERT_TRUE(exact.ok());
    EXPECT_GE(td.Width(), *exact);
  }
}

TEST(JoinTreeTest, PaperSection3Examples) {
  // The path CQ is acyclic (Example 3 context).
  EXPECT_TRUE(IsAcyclic(Cq("Q() :- E(x1,x2), E(x2,x3), E(x3,x4).")));
  // Closing the path into a cycle destroys acyclicity.
  EXPECT_FALSE(IsAcyclic(Cq("Q() :- E(x1,x2), E(x2,x3), E(x3,x1).")));
  // Section 3's clique-plus-wide-atom family is acyclic: the wide atom is
  // the join-tree root covering all shared variables.
  EXPECT_TRUE(IsAcyclic(
      Cq("Q() :- E(x1,x2), E(x1,x3), E(x2,x3), T(x1,x2,x3).")));
  // Without the covering atom a triangle is cyclic.
  EXPECT_FALSE(IsAcyclic(Cq("Q() :- E(x1,x2), E(x1,x3), E(x2,x3).")));
}

TEST(JoinTreeTest, BuildAndValidate) {
  ConjunctiveQuery cq =
      Cq("Q() :- R(x,y), S(y,z), T(z,w), U(y,u).");
  auto jt = BuildJoinTree(cq);
  ASSERT_TRUE(jt.ok());
  EXPECT_TRUE(jt->Validate(cq).ok());
  EXPECT_EQ(BuildJoinTree(Cq("Q() :- E(x,y), E(y,z), E(z,x).")).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(JoinTreeTest, DisconnectedQueryYieldsForest) {
  ConjunctiveQuery cq = Cq("Q() :- R(x,y), S(u,v).");
  auto jt = BuildJoinTree(cq);
  ASSERT_TRUE(jt.ok());
  EXPECT_EQ(jt->Roots().size(), 2u);
  EXPECT_TRUE(jt->Validate(cq).ok());
}

// Property: the ear-construction generator produces acyclic queries and
// GYO accepts them with a valid join tree.
TEST(JoinTreeProperty, GeneratorAgreesWithGyo) {
  std::mt19937 rng(7);
  testgen::SchemaSpec schema{{{"R", 2}, {"S", 3}, {"T", 1}}};
  for (int trial = 0; trial < 50; ++trial) {
    ConjunctiveQuery cq = testgen::RandomAcyclicCq(&rng, schema, 5, 0);
    EXPECT_TRUE(IsAcyclic(cq)) << cq.ToString();
    auto jt = BuildJoinTree(cq);
    ASSERT_TRUE(jt.ok());
    EXPECT_TRUE(jt->Validate(cq).ok()) << cq.ToString();
  }
}

// Property: GYO acyclicity coincides with Gaifman treewidth 1 on binary
// schemas (AC = TW(1) over graphs, as used throughout Section 5).
TEST(JoinTreeProperty, BinaryAcyclicEqualsTreewidthOne) {
  std::mt19937 rng(11);
  testgen::SchemaSpec schema = testgen::BinarySchema();
  for (int trial = 0; trial < 50; ++trial) {
    ConjunctiveQuery cq = testgen::RandomCq(&rng, schema, 4, 4, 0);
    UndirectedGraph g = GaifmanGraph(cq);
    auto tw = TreewidthExact(g);
    ASSERT_TRUE(tw.ok());
    EXPECT_EQ(IsAcyclic(cq), *tw <= 1) << cq.ToString();
  }
}

}  // namespace
}  // namespace qcont

// Tests for the parallel execution substrate (base/thread_pool.h) and the
// determinism contract of the parallel engines: answers, derived databases,
// and machine-independent counters must be identical for every thread
// count, and must agree with the scan-engine reference. This binary is
// also the main target of the TSAN CI job.

#include <atomic>
#include <random>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "base/thread_pool.h"
#include "core/datalog_ucq.h"
#include "cq/containment.h"
#include "cq/database.h"
#include "cq/homomorphism.h"
#include "datalog/eval.h"
#include "obs/obs.h"
#include "tests/generators.h"

namespace qcont {
namespace {

constexpr int kThreadCounts[] = {1, 2, 8};

void ExpectEqualStats(const HomSearchStats& a, const HomSearchStats& b,
                      const std::string& what) {
  EXPECT_EQ(a.atom_attempts, b.atom_attempts) << what;
  EXPECT_EQ(a.backtracks, b.backtracks) << what;
  EXPECT_EQ(a.index_probes, b.index_probes) << what;
  EXPECT_EQ(a.index_candidates, b.index_candidates) << what;
  EXPECT_EQ(a.scan_candidates, b.scan_candidates) << what;
}

void ExpectEqualStats(const DatalogEvalStats& a, const DatalogEvalStats& b,
                      const std::string& what) {
  EXPECT_EQ(a.iterations, b.iterations) << what;
  EXPECT_EQ(a.rule_firings, b.rule_firings) << what;
  EXPECT_EQ(a.derived_facts, b.derived_facts) << what;
  ExpectEqualStats(a.hom, b.hom, what);
}

void ExpectEqualStats(const TypeEngineStats& a, const TypeEngineStats& b,
                      const std::string& what) {
  EXPECT_EQ(a.kinds, b.kinds) << what;
  EXPECT_EQ(a.types, b.types) << what;
  EXPECT_EQ(a.elements, b.elements) << what;
  EXPECT_EQ(a.combos, b.combos) << what;
  EXPECT_EQ(a.enumeration_steps, b.enumeration_steps) << what;
}

// ---------------------------------------------------------------------------
// Thread pool unit tests.
// ---------------------------------------------------------------------------

TEST(ThreadPoolTest, ParallelForExecutesEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 10'000;
  std::vector<std::atomic<int>> hits(kN);
  ExecStats stats;
  pool.ParallelFor(
      kN, [&](std::size_t i) { hits[i].fetch_add(1, std::memory_order_relaxed); },
      &stats);
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
  EXPECT_EQ(stats.tasks, kN);
  EXPECT_EQ(stats.parallel_regions, 1u);
}

TEST(ThreadPoolTest, ParallelForPropagatesTheFirstException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.ParallelFor(100,
                                [&](std::size_t i) {
                                  if (i == 37) {
                                    throw std::runtime_error("boom");
                                  }
                                }),
               std::runtime_error);
  // The pool must stay usable after a failed batch.
  std::atomic<int> count{0};
  pool.ParallelFor(64, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPoolTest, NestedParallelForDegradesToSerialWithoutDeadlock) {
  const ExecContext ctx{.threads = 4, .stats = nullptr};
  std::atomic<int> count{0};
  ParallelFor(ctx, 8, [&](std::size_t) {
    EXPECT_TRUE(ThreadPool::InWorker());
    // Nested region: must run serially on this worker, not re-enter the
    // pool (which would deadlock a fully busy pool).
    ParallelFor(ctx, 16, [&](std::size_t) {
      count.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(count.load(), 8 * 16);
}

TEST(ThreadPoolTest, ParallelMapWritesSlotsInIndexOrder) {
  const ExecContext ctx{.threads = 8, .stats = nullptr};
  std::vector<std::size_t> out = ParallelMap<std::size_t>(
      ctx, 500, [](std::size_t i) { return i * i; });
  ASSERT_EQ(out.size(), 500u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    ASSERT_EQ(out[i], i * i);
  }
}

TEST(ThreadPoolTest, SerialFallbackRunsInIndexOrderOnCallingThread) {
  const ExecContext ctx{.threads = 1, .stats = nullptr};
  std::vector<std::size_t> order;
  ParallelFor(ctx, 32, [&](std::size_t i) { order.push_back(i); });
  ASSERT_EQ(order.size(), 32u);
  for (std::size_t i = 0; i < order.size(); ++i) {
    EXPECT_EQ(order[i], i);
  }
}

TEST(ThreadPoolTest, SharedPoolIsReusedPerThreadCount) {
  auto a = ThreadPool::Shared(3);
  auto b = ThreadPool::Shared(3);
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(a->num_workers(), 3);
  EXPECT_NE(ThreadPool::Shared(2).get(), a.get());
}

// ---------------------------------------------------------------------------
// Database: concurrent const probing (the lazy index build race regression).
// ---------------------------------------------------------------------------

TEST(DatabaseConcurrencyTest, ConcurrentProbesBuildIndexesSafely) {
  std::mt19937 rng(8881);
  const testgen::SchemaSpec schema = testgen::SmallSchema();
  for (int trial = 0; trial < 8; ++trial) {
    Database db = testgen::RandomDatabase(&rng, schema, 5, 40);
    const ExecContext ctx{.threads = 8, .stats = nullptr};
    // All threads race to build the same lazy (relation, mask) indexes on
    // their first probes; under TSAN this is the regression test for the
    // memoization guard.
    std::atomic<std::uint64_t> total_rows{0};
    ParallelFor(ctx, 64, [&](std::size_t i) {
      const auto& [rel, arity] = schema.relations[i % schema.relations.size()];
      const std::vector<Tuple>& facts = db.Facts(rel);
      if (facts.empty()) return;
      const Tuple& probe_tuple = facts[i % facts.size()];
      ValueId id = db.ValueIdOf(probe_tuple[0]);
      ASSERT_NE(id, kNoValue);
      const std::span<const std::uint32_t> bucket = db.Probe(rel, 1u, {id});
      ASSERT_FALSE(bucket.empty());
      total_rows.fetch_add(bucket.size(), std::memory_order_relaxed);
      ASSERT_TRUE(db.HasFact(rel, probe_tuple));
      ASSERT_FALSE(db.Relations().empty());
    });
    EXPECT_GT(total_rows.load(), 0u) << "trial " << trial;
  }
}

// ---------------------------------------------------------------------------
// UCQ containment: parallel pair grid vs the serial walk.
// ---------------------------------------------------------------------------

TEST(ParallelDeterminismTest, UcqContainmentIsThreadCountInvariant) {
  std::mt19937 rng(20260807);
  const testgen::SchemaSpec schema = testgen::SmallSchema();
  int yes = 0, no = 0;
  for (int trial = 0; trial < 40; ++trial) {
    UnionQuery theta = testgen::RandomAcyclicUcq(&rng, schema, 3, 3, 1);
    UnionQuery theta_prime = testgen::RandomAcyclicUcq(&rng, schema, 3, 3, 1);
    if (trial % 3 == 0) {
      // Seed positive instances: Θ' ⊇ Θ's disjuncts makes Θ ⊆ Θ' hold.
      std::vector<ConjunctiveQuery> sup = theta_prime.disjuncts();
      for (const ConjunctiveQuery& d : theta.disjuncts()) sup.push_back(d);
      theta_prime = UnionQuery(std::move(sup));
    }
    if (!theta.Validate().ok() || !theta_prime.Validate().ok()) continue;

    HomSearchStats serial_stats;
    auto serial = UcqContained(theta, theta_prime, &serial_stats);
    ASSERT_TRUE(serial.ok()) << "trial " << trial;
    (*serial ? yes : no)++;
    for (int threads : kThreadCounts) {
      HomSearchOptions options;
      options.exec.threads = threads;
      HomSearchStats stats;
      auto parallel = UcqContained(theta, theta_prime, &stats, options);
      ASSERT_TRUE(parallel.ok()) << "trial " << trial;
      EXPECT_EQ(*parallel, *serial)
          << "trial " << trial << " threads " << threads;
      ExpectEqualStats(stats, serial_stats,
                       "trial " + std::to_string(trial) + " threads " +
                           std::to_string(threads));
    }
    // Scan-engine cross-check: same answer with indexes disabled and the
    // parallel grid active (counters legitimately differ between engines).
    HomSearchOptions scan;
    scan.use_index = false;
    scan.exec.threads = 8;
    auto scan_answer = UcqContained(theta, theta_prime, nullptr, scan);
    ASSERT_TRUE(scan_answer.ok()) << "trial " << trial;
    EXPECT_EQ(*scan_answer, *serial) << "trial " << trial;
  }
  // The generator must exercise both outcomes for the test to mean much.
  EXPECT_GT(yes, 0);
  EXPECT_GT(no, 0);
}

TEST(ParallelDeterminismTest, UcqContainmentArityErrorsMatchSerial) {
  auto cq = [](int arity) {
    std::vector<Term> head;
    for (int i = 0; i < arity; ++i) {
      head.push_back(Term::Variable("x" + std::to_string(i)));
    }
    std::vector<Atom> atoms;
    atoms.emplace_back(
        "a", std::vector<Term>{Term::Variable("x0"), Term::Variable("x0")});
    return ConjunctiveQuery(std::move(head), std::move(atoms));
  };
  UnionQuery theta({cq(1), cq(1)});
  UnionQuery theta_prime({cq(2), cq(2), cq(2)});
  auto serial = UcqContained(theta, theta_prime);
  ASSERT_FALSE(serial.ok());
  for (int threads : kThreadCounts) {
    HomSearchOptions options;
    options.exec.threads = threads;
    auto parallel = UcqContained(theta, theta_prime, nullptr, options);
    ASSERT_FALSE(parallel.ok()) << "threads " << threads;
    EXPECT_EQ(parallel.status().code(), serial.status().code());
    EXPECT_EQ(parallel.status().message(), serial.status().message());
  }
}

// ---------------------------------------------------------------------------
// Semi-naive Datalog evaluation: bit-identical derived databases.
// ---------------------------------------------------------------------------

TEST(ParallelDeterminismTest, SemiNaiveEvalIsBitIdenticalAcrossThreadCounts) {
  std::mt19937 rng(31415);
  const testgen::SchemaSpec schema = testgen::SmallSchema();
  for (int trial = 0; trial < 25; ++trial) {
    Database edb = testgen::RandomDatabase(&rng, schema, 4, 12);
    DatalogProgram program = testgen::RandomLinearProgram(&rng, schema, 2);
    if (!program.Validate().ok()) continue;

    DatalogEvalStats serial_stats;
    auto serial = EvaluateProgram(program, edb, EvalOptions(), &serial_stats);
    ASSERT_TRUE(serial.ok()) << "trial " << trial;
    const std::string serial_dump = serial->ToString();

    for (int threads : kThreadCounts) {
      EvalOptions options;
      options.exec.threads = threads;
      DatalogEvalStats stats;
      auto parallel = EvaluateProgram(program, edb, options, &stats);
      ASSERT_TRUE(parallel.ok()) << "trial " << trial;
      // Bit-identical: same facts in the same insertion order, so the
      // rendered database (which follows that order) matches exactly.
      EXPECT_EQ(parallel->ToString(), serial_dump)
          << "trial " << trial << " threads " << threads;
      ExpectEqualStats(stats, serial_stats,
                       "trial " + std::to_string(trial) + " threads " +
                           std::to_string(threads));
    }

    // Semantic cross-checks: the naive reference strategy and the scan
    // engine agree on the goal answers under parallel evaluation.
    EvalOptions naive_options;
    naive_options.strategy = EvalStrategy::kNaive;
    auto naive = EvaluateGoal(program, edb, naive_options);
    EvalOptions parallel_scan;
    parallel_scan.use_index = false;
    parallel_scan.exec.threads = 8;
    auto scan = EvaluateGoal(program, edb, parallel_scan);
    EvalOptions parallel_indexed;
    parallel_indexed.exec.threads = 8;
    auto indexed = EvaluateGoal(program, edb, parallel_indexed);
    ASSERT_TRUE(naive.ok() && scan.ok() && indexed.ok()) << "trial " << trial;
    EXPECT_EQ(*indexed, *naive) << "trial " << trial;
    EXPECT_EQ(*scan, *naive) << "trial " << trial;
  }
}

TEST(ParallelDeterminismTest, SemiNaiveEvalIsBitIdenticalAcrossShardCounts) {
  // The hash-sharded layout (DESIGN.md §17) is purely physical: for every
  // (threads, shards) cell — including non-power-of-two P — the derived
  // database renders byte-for-byte like the serial unsharded run, because
  // the round-barrier AddRowBatch commits survivors in candidate order no
  // matter which shard claimed them.
  std::mt19937 rng(27182);
  const testgen::SchemaSpec schema = testgen::SmallSchema();
  for (int trial = 0; trial < 10; ++trial) {
    Database edb = testgen::RandomDatabase(&rng, schema, 4, 12);
    DatalogProgram program = testgen::RandomLinearProgram(&rng, schema, 2);
    if (!program.Validate().ok()) continue;

    DatalogEvalStats serial_stats;
    auto serial = EvaluateProgram(program, edb, EvalOptions(), &serial_stats);
    ASSERT_TRUE(serial.ok()) << "trial " << trial;
    const std::string serial_dump = serial->ToString();

    for (int shards : {3, 4, 16}) {
      for (int threads : kThreadCounts) {
        EvalOptions options;
        options.exec.threads = threads;
        options.shards = shards;
        DatalogEvalStats stats;
        auto sharded = EvaluateProgram(program, edb, options, &stats);
        ASSERT_TRUE(sharded.ok()) << "trial " << trial;
        EXPECT_EQ(sharded->ToString(), serial_dump)
            << "trial " << trial << " threads " << threads << " shards "
            << shards;
        EXPECT_EQ(sharded->shard_count(), shards) << "trial " << trial;
        ExpectEqualStats(stats, serial_stats,
                         "trial " + std::to_string(trial) + " threads " +
                             std::to_string(threads) + " shards " +
                             std::to_string(shards));
      }
    }
  }
}

#ifndef QCONT_OBS_NOOP
TEST(ParallelDeterminismTest, MetricRegistryTotalsAreThreadCountInvariant) {
  // The registry mirrors inherit the determinism contract checked above:
  // per-shard splits are schedule-dependent, the summed snapshot is not.
  std::mt19937 rng(99);
  const testgen::SchemaSpec schema = testgen::SmallSchema();
  for (int trial = 0; trial < 5; ++trial) {
    Database edb = testgen::RandomDatabase(&rng, schema, 4, 12);
    DatalogProgram program = testgen::RandomLinearProgram(&rng, schema, 2);
    if (!program.Validate().ok()) continue;
    std::map<std::string, std::uint64_t> reference;
    for (int threads : kThreadCounts) {
      MetricRegistry registry;
      ObsContext obs{&registry, nullptr};
      EvalOptions options;
      options.exec.threads = threads;
      options.obs = &obs;
      ASSERT_TRUE(EvaluateProgram(program, edb, options).ok())
          << "trial " << trial;
      auto snapshot = registry.Snapshot();
      ASSERT_FALSE(snapshot.empty()) << "trial " << trial;
      if (reference.empty()) {
        reference = std::move(snapshot);
      } else {
        EXPECT_EQ(snapshot, reference)
            << "trial " << trial << " threads " << threads;
      }
    }
  }
}
#endif  // QCONT_OBS_NOOP

TEST(ParallelDeterminismTest, UcqInDatalogContainmentThreadCountInvariant) {
  std::mt19937 rng(2718);
  const testgen::SchemaSpec schema = testgen::BinarySchema();
  for (int trial = 0; trial < 10; ++trial) {
    DatalogProgram program = testgen::RandomLinearProgram(&rng, schema, 1);
    if (!program.Validate().ok()) continue;
    UnionQuery ucq = testgen::RandomAcyclicUcq(&rng, schema, 2, 2, 1);
    if (!ucq.Validate().ok()) continue;
    DatalogEvalStats serial_stats;
    auto serial = UcqContainedInDatalog(ucq, program, &serial_stats);
    ASSERT_TRUE(serial.ok()) << "trial " << trial;
    for (int threads : kThreadCounts) {
      EvalOptions options;
      options.exec.threads = threads;
      DatalogEvalStats stats;
      auto parallel = UcqContainedInDatalog(ucq, program, options, &stats);
      ASSERT_TRUE(parallel.ok()) << "trial " << trial;
      EXPECT_EQ(*parallel, *serial)
          << "trial " << trial << " threads " << threads;
      ExpectEqualStats(stats, serial_stats,
                       "trial " + std::to_string(trial) + " threads " +
                           std::to_string(threads));
    }
  }
}

// ---------------------------------------------------------------------------
// Type-automaton fixpoint: round-parallel vs serial.
// ---------------------------------------------------------------------------

TEST(ParallelDeterminismTest, TypeEngineIsThreadCountInvariant) {
  std::mt19937 rng(20140623);
  const testgen::SchemaSpec schema = testgen::SmallSchema();
  int yes = 0, no = 0;
  for (int trial = 0; trial < 15; ++trial) {
    DatalogProgram program = testgen::RandomLinearProgram(&rng, schema, 1);
    if (!program.Validate().ok()) continue;
    std::vector<ConjunctiveQuery> disjuncts;
    int nd = 1 + static_cast<int>(rng() % 2);
    for (int d = 0; d < nd; ++d) {
      ConjunctiveQuery cq = testgen::RandomCq(&rng, schema, 2, 2, 1);
      if (cq.Validate().ok()) disjuncts.push_back(cq);
    }
    if (disjuncts.empty()) continue;
    UnionQuery ucq(std::move(disjuncts));

    TypeEngineStats serial_stats;
    auto serial = DatalogContainedInUcq(program, ucq, &serial_stats);
    ASSERT_TRUE(serial.ok()) << program.ToString();
    (serial->contained ? yes : no)++;
    for (int threads : kThreadCounts) {
      TypeEngineOptions options;
      options.exec.threads = threads;
      TypeEngineStats stats;
      auto parallel = DatalogContainedInUcq(program, ucq, &stats, options);
      ASSERT_TRUE(parallel.ok()) << "trial " << trial;
      EXPECT_EQ(parallel->contained, serial->contained)
          << "trial " << trial << " threads " << threads;
      ASSERT_EQ(parallel->witness.has_value(), serial->witness.has_value())
          << "trial " << trial << " threads " << threads;
      if (parallel->witness.has_value()) {
        // The per-round task order is fixed, so even the witness expansion
        // is identical for every thread count.
        EXPECT_EQ(parallel->witness->ToString(), serial->witness->ToString())
            << "trial " << trial << " threads " << threads;
      }
      ExpectEqualStats(stats, serial_stats,
                       "trial " + std::to_string(trial) + " threads " +
                           std::to_string(threads));
    }
  }
  EXPECT_GT(yes, 0);
  EXPECT_GT(no, 0);
}

TEST(ParallelDeterminismTest, TypeEngineBudgetErrorsAreThreadCountInvariant) {
  // A recursive transitive-closure program blows the one-type budget the
  // same way at every thread count.
  std::vector<Rule> rules;
  rules.push_back(Rule{
      Atom("t", {Term::Variable("x"), Term::Variable("y")}),
      {Atom("e", {Term::Variable("x"), Term::Variable("y")})}});
  rules.push_back(Rule{
      Atom("t", {Term::Variable("x"), Term::Variable("y")}),
      {Atom("t", {Term::Variable("x"), Term::Variable("z")}),
       Atom("t", {Term::Variable("z"), Term::Variable("y")})}});
  DatalogProgram program(std::move(rules), "t");
  ConjunctiveQuery cq({Term::Variable("x"), Term::Variable("y")},
                      {Atom("e", {Term::Variable("x"), Term::Variable("y")})});
  UnionQuery ucq({cq});
  for (int threads : kThreadCounts) {
    TypeEngineOptions options;
    options.max_types = 1;
    options.exec.threads = threads;
    auto answer = DatalogContainedInUcq(program, ucq, nullptr, options);
    ASSERT_FALSE(answer.ok()) << "threads " << threads;
    EXPECT_EQ(answer.status().code(), StatusCode::kResourceExhausted)
        << "threads " << threads;
  }
}

}  // namespace
}  // namespace qcont

#include <gtest/gtest.h>

#include <random>

#include "graphdb/c2rpq.h"
#include "graphdb/graph_db.h"
#include "graphdb/rpq.h"
#include "parser/parser.h"

namespace qcont {
namespace {

GraphDatabase Chain(int n, const std::string& label) {
  GraphDatabase g;
  for (int i = 0; i < n; ++i) {
    g.AddEdge("n" + std::to_string(i), label, "n" + std::to_string(i + 1));
  }
  return g;
}

TEST(GraphDatabaseTest, EdgesAndInverses) {
  GraphDatabase g;
  g.AddEdge("a", "knows", "b");
  EXPECT_EQ(g.Nodes().size(), 2u);
  EXPECT_EQ(g.NumEdges(), 1u);
  EXPECT_EQ(g.Successors("a", "knows"), std::vector<std::string>{"b"});
  EXPECT_EQ(g.Successors("b", "knows-"), std::vector<std::string>{"a"});
  EXPECT_TRUE(g.Successors("b", "knows").empty());
  EXPECT_TRUE(g.HasEdge("a", "knows", "b"));
  EXPECT_FALSE(g.HasEdge("b", "knows", "a"));
}

TEST(GraphDatabaseTest, DatabaseRoundTrip) {
  GraphDatabase g;
  g.AddEdge("a", "e", "b");
  g.AddEdge("b", "f", "c");
  Database db = g.ToDatabase();
  EXPECT_TRUE(db.HasFact("e", {"a", "b"}));
  EXPECT_TRUE(db.HasFact("f", {"b", "c"}));
  EXPECT_EQ(db.NumFacts(), 2u);
  GraphDatabase g2 = GraphDatabase::FromDatabase(db);
  EXPECT_TRUE(g2.HasEdge("a", "e", "b"));
  EXPECT_EQ(g2.NumEdges(), 2u);
}

TEST(RpqTest, ReachabilityOnChain) {
  GraphDatabase g = Chain(4, "a");
  auto nfa = ParseRegex("a+");
  ASSERT_TRUE(nfa.ok());
  std::set<std::string> reach = RpqReachableFrom(*nfa, g, "n0");
  EXPECT_EQ(reach, (std::set<std::string>{"n1", "n2", "n3", "n4"}));
  auto exact2 = ParseRegex("a a");
  EXPECT_EQ(RpqReachableFrom(*exact2, g, "n1"),
            (std::set<std::string>{"n3"}));
}

TEST(RpqTest, InverseTraversal) {
  GraphDatabase g = Chain(2, "a");
  auto back = ParseRegex("a-");
  EXPECT_EQ(RpqReachableFrom(*back, g, "n1"), (std::set<std::string>{"n0"}));
  auto zigzag = ParseRegex("a a-");
  EXPECT_EQ(RpqReachableFrom(*zigzag, g, "n0"), (std::set<std::string>{"n0"}));
}

TEST(RpqTest, FullEvaluation) {
  GraphDatabase g = Chain(2, "a");
  auto nfa = ParseRegex("a");
  auto pairs = EvaluateRpq(*nfa, g);
  EXPECT_EQ(pairs.size(), 2u);
}

TEST(C2rpqTest, EvaluationJoinsAtoms) {
  GraphDatabase g;
  g.AddEdge("u", "a", "v");
  g.AddEdge("v", "b", "w");
  g.AddEdge("u", "b", "x");
  auto q = ParseUC2rpq("Q(x,z) :- [a](x,y), [b](y,z).");
  ASSERT_TRUE(q.ok());
  auto result = EvaluateUC2rpq(*q, g);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, (std::vector<Tuple>{{"u", "w"}}));
}

TEST(C2rpqTest, AcyclicEvaluationAgrees) {
  GraphDatabase g;
  g.AddEdge("1", "a", "2");
  g.AddEdge("2", "a", "3");
  g.AddEdge("2", "b", "4");
  auto q = ParseUC2rpq("Q(x) :- [a+](x,y), [b](y,z).");
  ASSERT_TRUE(q.ok());
  auto generic = EvaluateC2rpq(q->disjuncts().front(), g);
  auto acyclic = EvaluateAcyclicC2rpq(q->disjuncts().front(), g);
  ASSERT_TRUE(generic.ok() && acyclic.ok());
  EXPECT_EQ(*generic, *acyclic);
  EXPECT_EQ(*generic, (std::vector<Tuple>{{"1"}}));
}

TEST(C2rpqTest, ClassificationExamples5And6) {
  // Example 5: L1(x,x) ∧ L2(x,y) ∧ L3(y,x) is acyclic;
  // L1(x,y) ∧ L2(y,z) ∧ L3(z,x) is not.
  auto acyclic = ParseUC2rpq("Q() :- [a](x,x), [b](x,y), [c](y,x).");
  ASSERT_TRUE(acyclic.ok());
  EXPECT_TRUE(*IsAcyclicUC2rpq(*acyclic));
  // Example 6: that query is in ACR2.
  EXPECT_EQ(*AcrkLevel(*acyclic), 2);

  auto cyclic = ParseUC2rpq("Q() :- [a](x,y), [b](y,z), [c](z,x).");
  ASSERT_TRUE(cyclic.ok());
  EXPECT_FALSE(*IsAcyclicUC2rpq(*cyclic));
  EXPECT_EQ(AcrkLevel(*cyclic).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(C2rpqTest, StronglyAcyclicIsAcr1) {
  auto q = ParseUC2rpq("Q(x,y) :- [a+](x,z), [b](z,y).");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(*AcrkLevel(*q), 1);
}

TEST(UcqInUC2rpqTest, CanonicalDatabaseTest) {
  // Every a-edge pair x->y->z is matched by [a a](x,z).
  auto theta = ParseUcq("Q(x,z) :- a(x,y), a(y,z).");
  auto gamma = ParseUC2rpq("Q(x,z) :- [a a](x,z).");
  ASSERT_TRUE(theta.ok() && gamma.ok());
  EXPECT_TRUE(*UcqContainedInUC2rpq(*theta, *gamma));
  auto gamma2 = ParseUC2rpq("Q(x,z) :- [a a a](x,z).");
  ASSERT_TRUE(gamma2.ok());
  EXPECT_FALSE(*UcqContainedInUC2rpq(*theta, *gamma2));
  // Inverse variant: x->y edge matches [a-](y,x)... as (x,y) query order.
  auto theta2 = ParseUcq("Q(x,y) :- a(y,x).");
  auto gamma3 = ParseUC2rpq("Q(x,y) :- [a-](x,y).");
  ASSERT_TRUE(theta2.ok() && gamma3.ok());
  EXPECT_TRUE(*UcqContainedInUC2rpq(*theta2, *gamma3));
}

TEST(C2rpqTest, ValidateRejectsBadQueries) {
  auto unsafe = ParseUC2rpq("Q(w) :- [a](x,y).");
  EXPECT_FALSE(unsafe.ok());
  auto triple = ParseUC2rpq("Q() :- [a](x,y,z).");
  EXPECT_FALSE(triple.ok());
}

}  // namespace
}  // namespace qcont

#include <gtest/gtest.h>

#include <random>

#include "cq/containment.h"
#include "cq/database.h"
#include "cq/homomorphism.h"
#include "parser/parser.h"
#include "tests/generators.h"

namespace qcont {
namespace {

ConjunctiveQuery Cq(const std::string& text) {
  auto ucq = ParseUcq(text);
  EXPECT_TRUE(ucq.ok()) << ucq.status().ToString();
  return ucq->disjuncts().front();
}

TEST(CqContainmentTest, PathInShorterPath) {
  // A 2-path (as a Boolean query) is contained in "there is an edge".
  ConjunctiveQuery two = Cq("Q() :- E(x,y), E(y,z).");
  ConjunctiveQuery one = Cq("Q() :- E(u,v).");
  EXPECT_TRUE(*CqContained(two, one));
  EXPECT_FALSE(*CqContained(one, two));
}

TEST(CqContainmentTest, FreeVariablesMustBePreserved) {
  ConjunctiveQuery q1 = Cq("Q(x,y) :- E(x,y).");
  ConjunctiveQuery q2 = Cq("Q(x,y) :- E(y,x).");
  EXPECT_FALSE(*CqContained(q1, q2));
  EXPECT_TRUE(*CqContained(q1, q1));
}

TEST(CqContainmentTest, SelfLoopContainedInEverything) {
  ConjunctiveQuery loop = Cq("Q() :- E(x,x).");
  ConjunctiveQuery cycle3 = Cq("Q() :- E(x,y), E(y,z), E(z,x).");
  EXPECT_TRUE(*CqContained(loop, cycle3));   // cycle maps onto the loop
  EXPECT_FALSE(*CqContained(cycle3, loop));  // no loop in a 3-cycle
}

TEST(CqContainmentTest, RepeatedHeadVariable) {
  ConjunctiveQuery diag = Cq("Q(x,x) :- E(x,x).");
  ConjunctiveQuery pair = Cq("Q(x,y) :- E(x,y).");
  EXPECT_TRUE(*CqContained(diag, pair));
  EXPECT_FALSE(*CqContained(pair, diag));
}

TEST(CqContainmentTest, ArityMismatchRejected) {
  ConjunctiveQuery q1 = Cq("Q(x) :- E(x,y).");
  ConjunctiveQuery q2 = Cq("Q(x,y) :- E(x,y).");
  EXPECT_FALSE(CqContained(q1, q2).ok());
}

TEST(UcqContainmentTest, SagivYannakakis) {
  auto lhs = ParseUcq("Q(x,y) :- a(x,y). Q(x,y) :- b(x,y).");
  auto rhs = ParseUcq("Q(x,y) :- a(x,y). Q(x,y) :- b(x,z), b(z,y). Q(x,y) :- b(x,y).");
  ASSERT_TRUE(lhs.ok() && rhs.ok());
  EXPECT_TRUE(*UcqContained(*lhs, *rhs));
  EXPECT_FALSE(*UcqContained(*rhs, *lhs));  // the b-2-path disjunct escapes
}

TEST(UcqContainmentTest, EquivalenceOfReorderedUnion) {
  auto a = ParseUcq("Q(x) :- a(x,y). Q(x) :- b(x,y).");
  auto b = ParseUcq("Q(x) :- b(x,y). Q(x) :- a(x,y).");
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_TRUE(*UcqEquivalent(*a, *b));
}

// Property (soundness of the Chandra-Merlin test against evaluation): if
// theta ⊆ theta' then theta(D) ⊆ theta'(D) on random databases, and the
// canonical database of theta must witness non-containment otherwise.
TEST(CqContainmentProperty, ConsistentWithEvaluation) {
  std::mt19937 rng(20140622);
  testgen::SchemaSpec schema = testgen::SmallSchema();
  int contained_count = 0;
  for (int trial = 0; trial < 60; ++trial) {
    ConjunctiveQuery q1 = testgen::RandomCq(&rng, schema, 3, 3, 1);
    ConjunctiveQuery q2 = testgen::RandomCq(&rng, schema, 2, 3, 1);
    if (!q1.Validate().ok() || !q2.Validate().ok()) continue;
    auto contained = CqContained(q1, q2);
    ASSERT_TRUE(contained.ok());
    if (*contained) ++contained_count;
    for (int d = 0; d < 3; ++d) {
      Database db = testgen::RandomDatabase(&rng, schema, 3, 8);
      std::vector<Tuple> r1 = EvaluateCq(q1, db);
      std::vector<Tuple> r2 = EvaluateCq(q2, db);
      if (*contained) {
        for (const Tuple& t : r1) {
          EXPECT_TRUE(std::find(r2.begin(), r2.end(), t) != r2.end())
              << q1.ToString() << " vs " << q2.ToString();
        }
      }
    }
    if (!*contained) {
      // The canonical database separates the queries.
      Database canonical = CanonicalDatabase(q1);
      std::vector<Tuple> r2 = EvaluateCq(q2, canonical);
      EXPECT_TRUE(std::find(r2.begin(), r2.end(), CanonicalHead(q1)) ==
                  r2.end());
    }
  }
  // Sanity: the generator should produce a mix of outcomes.
  EXPECT_GT(contained_count, 0);
}

}  // namespace
}  // namespace qcont

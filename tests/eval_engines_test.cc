#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "cq/containment.h"
#include "cq/homomorphism.h"
#include "parser/parser.h"
#include "structure/acyclic_eval.h"
#include "structure/classify.h"
#include "structure/decomp_eval.h"
#include "tests/generators.h"

namespace qcont {
namespace {

ConjunctiveQuery Cq(const std::string& text) {
  auto ucq = ParseUcq(text);
  EXPECT_TRUE(ucq.ok()) << ucq.status().ToString();
  return ucq->disjuncts().front();
}

TEST(YannakakisTest, SatisfiabilityMatchesBacktracking) {
  Database db;
  db.AddFact("R", {"1", "2"});
  db.AddFact("S", {"2", "3"});
  ConjunctiveQuery cq = Cq("Q() :- R(x,y), S(y,z).");
  EXPECT_TRUE(*AcyclicSatisfiable(cq, db));
  Database db2;
  db2.AddFact("R", {"1", "2"});
  db2.AddFact("S", {"3", "4"});
  EXPECT_FALSE(*AcyclicSatisfiable(cq, db2));
}

TEST(YannakakisTest, RejectsCyclicQueries) {
  Database db;
  ConjunctiveQuery tri = Cq("Q() :- E(x,y), E(y,z), E(z,x).");
  EXPECT_EQ(AcyclicSatisfiable(tri, db).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(YannakakisTest, FixedBindingRespected) {
  Database db;
  db.AddFact("R", {"1", "2"});
  db.AddFact("R", {"3", "4"});
  ConjunctiveQuery cq = Cq("Q(x) :- R(x,y).");
  EXPECT_TRUE(*AcyclicSatisfiable(cq, db, {{"x", "3"}}));
  EXPECT_FALSE(*AcyclicSatisfiable(cq, db, {{"x", "2"}}));
}

TEST(YannakakisTest, FullEvaluationMatchesGeneric) {
  Database db;
  db.AddFact("E", {"1", "2"});
  db.AddFact("E", {"2", "3"});
  db.AddFact("E", {"2", "4"});
  ConjunctiveQuery cq = Cq("Q(x,z) :- E(x,y), E(y,z).");
  auto fast = EvaluateAcyclicCq(cq, db);
  ASSERT_TRUE(fast.ok());
  EXPECT_EQ(*fast, EvaluateCq(cq, db));
}

// Property: Yannakakis and bounded-width DP agree with the generic
// backtracking evaluator on random instances.
TEST(EvalEnginesProperty, AllEnginesAgree) {
  std::mt19937 rng(314159);
  testgen::SchemaSpec schema = testgen::SmallSchema();
  int sat = 0, unsat = 0;
  for (int trial = 0; trial < 60; ++trial) {
    ConjunctiveQuery cq = testgen::RandomAcyclicCq(&rng, schema, 4, 0);
    if (!cq.Validate().ok()) continue;
    Database db = testgen::RandomDatabase(&rng, schema, 3, 7);
    bool generic = FindHomomorphism(cq, db).has_value();
    auto fast = AcyclicSatisfiable(cq, db);
    ASSERT_TRUE(fast.ok());
    EXPECT_EQ(generic, *fast) << cq.ToString() << "\n" << db.ToString();
    auto dp = BoundedWidthSatisfiable(cq, db);
    ASSERT_TRUE(dp.ok());
    EXPECT_EQ(generic, *dp) << cq.ToString() << "\n" << db.ToString();
    (generic ? sat : unsat)++;
  }
  EXPECT_GT(sat, 0);
  EXPECT_GT(unsat, 0);
}

// Property: on cyclic queries the bounded-width DP still agrees with the
// generic evaluator (it works for every CQ; only its cost depends on width).
TEST(EvalEnginesProperty, DecompHandlesCyclicQueries) {
  std::mt19937 rng(2718);
  testgen::SchemaSpec schema = testgen::BinarySchema();
  for (int trial = 0; trial < 40; ++trial) {
    ConjunctiveQuery cq = testgen::RandomCq(&rng, schema, 4, 4, 0);
    if (!cq.Validate().ok()) continue;
    Database db = testgen::RandomDatabase(&rng, schema, 3, 6);
    bool generic = FindHomomorphism(cq, db).has_value();
    auto dp = BoundedWidthSatisfiable(cq, db);
    ASSERT_TRUE(dp.ok());
    EXPECT_EQ(generic, *dp) << cq.ToString() << "\n" << db.ToString();
  }
}

// Property: the PTIME containment tests (Theorems 3/4 of the paper) agree
// with the NP baseline when the right-hand side is acyclic / bounded width.
TEST(TractableContainmentProperty, MatchesGenericContainment) {
  std::mt19937 rng(161803);
  testgen::SchemaSpec schema = testgen::SmallSchema();
  for (int trial = 0; trial < 50; ++trial) {
    ConjunctiveQuery lhs = testgen::RandomCq(&rng, schema, 3, 3, 1);
    ConjunctiveQuery rhs = testgen::RandomAcyclicCq(&rng, schema, 3, 1);
    if (!lhs.Validate().ok() || !rhs.Validate().ok()) continue;
    auto generic = CqContained(lhs, rhs);
    auto acyclic = CqContainedAcyclicRhs(lhs, rhs);
    auto bounded = CqContainedBoundedTwRhs(lhs, rhs);
    ASSERT_TRUE(generic.ok() && acyclic.ok() && bounded.ok());
    EXPECT_EQ(*generic, *acyclic) << lhs.ToString() << " vs " << rhs.ToString();
    EXPECT_EQ(*generic, *bounded) << lhs.ToString() << " vs " << rhs.ToString();
  }
}

TEST(ClassifyTest, PaperExamples) {
  // Example 3: the path is TW(1); closing it raises treewidth to 2; the
  // full clique on n variables has treewidth n-1.
  auto path = ClassifyCq(Cq("Q() :- E(x1,x2), E(x2,x3), E(x3,x4)."));
  ASSERT_TRUE(path.ok());
  EXPECT_TRUE(path->acyclic);
  EXPECT_EQ(path->treewidth, 1);
  EXPECT_EQ(path->max_shared_vars, 1);  // AC1 (Example 4)

  auto closed = ClassifyCq(
      Cq("Q() :- E(x1,x2), E(x2,x3), E(x3,x4), E(x1,x4)."));
  ASSERT_TRUE(closed.ok());
  EXPECT_FALSE(closed->acyclic);
  EXPECT_EQ(closed->treewidth, 2);

  auto clique4 = ClassifyCq(Cq(
      "Q() :- E(x1,x2), E(x1,x3), E(x1,x4), E(x2,x3), E(x2,x4), E(x3,x4)."));
  ASSERT_TRUE(clique4.ok());
  EXPECT_EQ(clique4->treewidth, 3);

  // Example 4: clique plus covering atom is acyclic and in AC2.
  auto covered = ClassifyCq(
      Cq("Q() :- E(x1,x2), E(x1,x3), E(x2,x3), T(x1,x2,x3)."));
  ASSERT_TRUE(covered.ok());
  EXPECT_TRUE(covered->acyclic);
  EXPECT_EQ(covered->max_shared_vars, 2);
}

TEST(ClassifyTest, AckLevel) {
  auto ac1 = ParseUcq("Q() :- E(x,y), E(y,z).");
  ASSERT_TRUE(ac1.ok());
  EXPECT_EQ(*AckLevel(*ac1), 1);
  auto ac2 = ParseUcq("Q() :- E(x1,x2), E(x1,x3), E(x2,x3), T(x1,x2,x3).");
  ASSERT_TRUE(ac2.ok());
  EXPECT_EQ(*AckLevel(*ac2), 2);
  auto cyclic = ParseUcq("Q() :- E(x,y), E(y,z), E(z,x).");
  ASSERT_TRUE(cyclic.ok());
  EXPECT_EQ(AckLevel(*cyclic).status().code(), StatusCode::kFailedPrecondition);
}

// The containment-relevant fact behind Corollary 1: TW(1) UCQs are in AC2.
TEST(ClassifyProperty, TreewidthOneImpliesAc2) {
  std::mt19937 rng(5);
  testgen::SchemaSpec schema = testgen::SmallSchema();
  for (int trial = 0; trial < 60; ++trial) {
    ConjunctiveQuery cq = testgen::RandomCq(&rng, schema, 4, 4, 0);
    auto c = ClassifyCq(cq);
    ASSERT_TRUE(c.ok());
    if (c->treewidth <= 1) {
      EXPECT_TRUE(c->acyclic) << cq.ToString();
      EXPECT_LE(c->max_shared_vars, 2) << cq.ToString();
    }
  }
}

}  // namespace
}  // namespace qcont

// Tests for the program-keyed kind-space memoization (DESIGN.md §18):
// the frozen ProgramArtifact, the LRU ProgramArtifactCache (eviction,
// epochs, schedule-independent hit counting), the cold-vs-warm differential
// contract (identical verdicts, witnesses, and engine counters with and
// without reuse), and the TypeEngineStats snapshot-vs-accumulate semantics.

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "bench/workloads.h"
#include "core/datalog_ucq.h"
#include "core/program_artifact_cache.h"
#include "parser/parser.h"
#include "tests/engine_validation.h"

namespace qcont {
namespace {

struct Pair {
  const char* name;
  const char* program;
  const char* ucq;
};

// A cross-section of the general-engine cases (datalog_ucq_engine_test.cc):
// contained and not, linear and nonlinear recursion, boolean and binary
// goals, single- and multi-disjunct UCQs.
const Pair kPairs[] = {
    {"consumers_yes",
     "buys(x,y) :- likes(x,y). buys(x,y) :- trendy(x), buys(z,y). goal buys.",
     "Q(x,y) :- likes(x,y). Q(x,y) :- trendy(x), likes(z,y)."},
    {"tc_not_in_two_steps",
     "t(x,y) :- e(x,y). t(x,y) :- e(x,z), t(z,y). goal t.",
     "Q(x,y) :- e(x,y). Q(x,y) :- e(x,z), e(z,y)."},
    {"cyclic_rhs_no", "p() :- e(x,y), e(y,x). goal p.",
     "Q() :- e(x,y), e(y,z), e(z,x)."},
    {"nonlinear", "t(x,y) :- e(x,y). t(x,y) :- t(x,z), t(z,y). goal t.",
     "Q(x,y) :- e(x,y)."},
    {"mutual_recursion",
     "p(x) :- b(x). p(x) :- a(x,y), q(y). q(x) :- a(x,y), p(y). goal p.",
     "Q(x) :- b(x). Q(x) :- a(x,y), b(y)."},
};

std::string WitnessString(const ContainmentAnswer& a) {
  return a.witness.has_value() ? a.witness->ToString() : "<none>";
}

void ExpectEqualStats(const TypeEngineStats& a, const TypeEngineStats& b,
                      const std::string& what) {
  EXPECT_EQ(a.kinds, b.kinds) << what;
  EXPECT_EQ(a.types, b.types) << what;
  EXPECT_EQ(a.elements, b.elements) << what;
  EXPECT_EQ(a.combos, b.combos) << what;
  EXPECT_EQ(a.enumeration_steps, b.enumeration_steps) << what;
}

// The freeze contract's observable half: a cold run (private artifact), a
// cache-mediated warm run, and a pre-built-artifact run must agree on the
// verdict, the witness expansion, and every engine counter — at 1 and at 8
// engine threads.
TEST(ProgramArtifactDifferentialTest, ColdAndWarmRunsAreBitIdentical) {
  for (const Pair& pair : kPairs) {
    auto program = ParseProgram(pair.program);
    ASSERT_TRUE(program.ok()) << program.status().ToString();
    auto ucq = ParseUcq(pair.ucq);
    ASSERT_TRUE(ucq.ok()) << ucq.status().ToString();
    for (int threads : {1, 8}) {
      const std::string what =
          std::string(pair.name) + " threads=" + std::to_string(threads);

      TypeEngineOptions cold;
      cold.exec.threads = threads;
      TypeEngineStats cold_stats;
      auto cold_answer =
          DatalogContainedInUcq(*program, *ucq, &cold_stats, cold);
      ASSERT_TRUE(cold_answer.ok()) << what;
      EXPECT_EQ(testval::ValidateAnswer(*program, *ucq, *cold_answer), "")
          << what;

      ProgramArtifactCache cache;
      TypeEngineOptions warm = cold;
      warm.artifact_cache = &cache;
      // Prime, then measure the warm (artifact-hit) run.
      ASSERT_TRUE(DatalogContainedInUcq(*program, *ucq, nullptr, warm).ok())
          << what;
      TypeEngineStats warm_stats;
      auto warm_answer =
          DatalogContainedInUcq(*program, *ucq, &warm_stats, warm);
      ASSERT_TRUE(warm_answer.ok()) << what;
      EXPECT_EQ(cache.stats().hits, 1u) << what;

      EXPECT_EQ(warm_answer->contained, cold_answer->contained) << what;
      EXPECT_EQ(WitnessString(*warm_answer), WitnessString(*cold_answer))
          << what;
      ExpectEqualStats(warm_stats, cold_stats, what + " (cache warm)");

      // Explicit pre-built artifact, bypassing the cache.
      TypeEngineOptions pinned = cold;
      pinned.artifact = ProgramArtifact::Build(*program);
      TypeEngineStats pinned_stats;
      auto pinned_answer =
          DatalogContainedInUcq(*program, *ucq, &pinned_stats, pinned);
      ASSERT_TRUE(pinned_answer.ok()) << what;
      EXPECT_EQ(pinned_answer->contained, cold_answer->contained) << what;
      EXPECT_EQ(WitnessString(*pinned_answer), WitnessString(*cold_answer))
          << what;
      ExpectEqualStats(pinned_stats, cold_stats, what + " (pinned)");
    }
  }
}

// Alpha-renamed resubmissions share one artifact: the cache key is the
// canonical program hash, and the frozen InstRules are expressed in
// variable *indices*, so the renamed program's engine run is exact.
TEST(ProgramArtifactCacheTest, AlphaRenamedProgramsShareOneArtifact) {
  auto a = ParseProgram(
      "t(x,y) :- e(x,y). t(x,y) :- e(x,z), t(z,y). goal t.");
  auto b = ParseProgram(
      "t(u,v) :- e(u,v). t(u,v) :- e(u,w), t(w,v). goal t.");
  ASSERT_TRUE(a.ok() && b.ok());
  ProgramArtifactCache cache;
  auto first = cache.GetOrBuild(*a);
  auto second = cache.GetOrBuild(*b);
  EXPECT_EQ(first.get(), second.get());
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);

  auto ucq = ParseUcq("Q(x,y) :- e(x,y). Q(x,y) :- e(x,z), e(z,y).");
  ASSERT_TRUE(ucq.ok());
  TypeEngineOptions options;
  options.artifact = second;  // built from `a`, reused for `b`
  auto answer = DatalogContainedInUcq(*b, *ucq, nullptr, options);
  ASSERT_TRUE(answer.ok());
  EXPECT_FALSE(answer->contained);
  EXPECT_EQ(testval::ValidateAnswer(*b, *ucq, *answer), "");
}

TEST(ProgramArtifactCacheTest, EvictionAtCapacityOne) {
  auto a = ParseProgram("p(x) :- e(x,y), p(y). p(x) :- b(x). goal p.");
  auto b = ParseProgram("q(x) :- f(x,y), q(y). q(x) :- c(x). goal q.");
  ASSERT_TRUE(a.ok() && b.ok());
  ProgramArtifactCacheConfig config;
  config.capacity = 1;
  ProgramArtifactCache cache(config);

  EXPECT_NE(cache.GetOrBuild(*a), nullptr);  // miss, resident
  EXPECT_NE(cache.GetOrBuild(*a), nullptr);  // hit
  EXPECT_NE(cache.GetOrBuild(*b), nullptr);  // miss, evicts a
  EXPECT_NE(cache.GetOrBuild(*a), nullptr);  // miss again, evicts b

  ProgramArtifactCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 3u);
  EXPECT_EQ(stats.insertions, 3u);
  EXPECT_EQ(stats.evictions, 2u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_GT(stats.bytes, 0u);
}

TEST(ProgramArtifactCacheTest, ZeroCapacityDisablesCaching) {
  auto a = ParseProgram("p(x) :- e(x,y), p(y). p(x) :- b(x). goal p.");
  ASSERT_TRUE(a.ok());
  ProgramArtifactCacheConfig config;
  config.capacity = 0;
  ProgramArtifactCache cache(config);
  bool stable = true;
  auto first = cache.GetOrBuild(*a, &stable);
  EXPECT_FALSE(stable);
  auto second = cache.GetOrBuild(*a);
  ASSERT_NE(first, nullptr);
  ASSERT_NE(second, nullptr);
  EXPECT_NE(first.get(), second.get());  // private builds, nothing resident
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().bytes, 0u);
}

// Mirrors PlanCacheTest.StableFlagsEntriesFromEarlierEpochsOnly: an entry
// is "stable" only once it predates the current epoch, so batch-level
// markers derived from it cannot depend on within-batch scheduling.
TEST(ProgramArtifactCacheTest, StableFlagsEntriesFromEarlierEpochsOnly) {
  auto a = ParseProgram("p(x) :- e(x,y), p(y). p(x) :- b(x). goal p.");
  ASSERT_TRUE(a.ok());
  ProgramArtifactCache cache;
  cache.BeginEpoch();

  bool stable = true;
  EXPECT_NE(cache.GetOrBuild(*a, &stable), nullptr);  // insert this epoch
  EXPECT_FALSE(stable);
  stable = true;
  EXPECT_NE(cache.GetOrBuild(*a, &stable), nullptr);  // same-epoch hit
  EXPECT_FALSE(stable);

  cache.BeginEpoch();
  stable = false;
  EXPECT_NE(cache.GetOrBuild(*a, &stable), nullptr);  // prior-epoch hit
  EXPECT_TRUE(stable);
}

// Concurrent requests for one program must coalesce on the in-flight build:
// exactly one miss no matter how the threads interleave, and every caller
// gets the same frozen artifact.
TEST(ProgramArtifactCacheTest, ConcurrentRequestsShareOneBuild) {
  const DatalogProgram program = bench::HotProgram(6, 16);
  ProgramArtifactCache cache;
  constexpr int kThreads = 8;
  std::vector<std::shared_ptr<const ProgramArtifact>> results(kThreads);
  {
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back(
          [&, t] { results[t] = cache.GetOrBuild(program); });
    }
    for (std::thread& w : workers) w.join();
  }
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(results[t].get(), results[0].get());
  }
  ProgramArtifactCacheStats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, static_cast<std::uint64_t>(kThreads - 1));
  EXPECT_EQ(stats.entries, 1u);
}

// Regression test for the TypeEngineStats snapshot-vs-accumulate contract:
// Merge assigns the per-run snapshot fields and sums the accumulating ones
// (it used to sum all five, silently doubling kinds/types/elements for any
// caller that reused one stats instance across calls).
TEST(TypeEngineStatsTest, MergeKeepsSnapshotFieldsAndSumsAccumulators) {
  TypeEngineStats acc;
  acc.kinds = 7;
  acc.types = 11;
  acc.elements = 13;
  acc.combos = 100;
  acc.enumeration_steps = 1000;
  TypeEngineStats run;
  run.kinds = 2;
  run.types = 3;
  run.elements = 5;
  run.combos = 40;
  run.enumeration_steps = 400;
  acc.Merge(run);
  EXPECT_EQ(acc.kinds, 2u);
  EXPECT_EQ(acc.types, 3u);
  EXPECT_EQ(acc.elements, 5u);
  EXPECT_EQ(acc.combos, 140u);
  EXPECT_EQ(acc.enumeration_steps, 1400u);
}

TEST(TypeEngineStatsTest, ReusedStatsSnapshotLastRunAndAccumulateWork) {
  // `big` reaches three kinds — (p,[0]), (t,[0,0]) via the t(x,x) subgoal,
  // and (t,[0,1]) via t's recursive rule — so its snapshot differs from
  // `small`'s single-kind run.
  auto big = ParseProgram(
      "p(x) :- t(x,x). t(x,y) :- e(x,y). t(x,y) :- e(x,z), t(z,y). goal p.");
  auto small = ParseProgram("p(x) :- b(x). goal p.");
  auto ucq_big = ParseUcq("Q(x) :- e(x,x).");
  auto ucq_small = ParseUcq("Q(x) :- b(x).");
  ASSERT_TRUE(big.ok() && small.ok() && ucq_big.ok() && ucq_small.ok());

  TypeEngineStats first_only;
  ASSERT_TRUE(DatalogContainedInUcq(*big, *ucq_big, &first_only).ok());
  TypeEngineStats second_only;
  ASSERT_TRUE(DatalogContainedInUcq(*small, *ucq_small, &second_only).ok());
  ASSERT_NE(first_only.kinds, second_only.kinds);

  TypeEngineStats reused;
  ASSERT_TRUE(DatalogContainedInUcq(*big, *ucq_big, &reused).ok());
  ASSERT_TRUE(DatalogContainedInUcq(*small, *ucq_small, &reused).ok());
  // Snapshots mirror the last run; work counters sum over both.
  EXPECT_EQ(reused.kinds, second_only.kinds);
  EXPECT_EQ(reused.types, second_only.types);
  EXPECT_EQ(reused.elements, second_only.elements);
  EXPECT_EQ(reused.combos, first_only.combos + second_only.combos);
  EXPECT_EQ(reused.enumeration_steps,
            first_only.enumeration_steps + second_only.enumeration_steps);
}

}  // namespace
}  // namespace qcont

#include <gtest/gtest.h>

#include <random>

#include "cq/containment.h"
#include "cq/core.h"
#include "parser/parser.h"
#include "tests/generators.h"

namespace qcont {
namespace {

ConjunctiveQuery Cq(const std::string& text) {
  auto ucq = ParseUcq(text);
  EXPECT_TRUE(ucq.ok()) << ucq.status().ToString();
  return ucq->disjuncts().front();
}

TEST(CoreTest, FoldsRedundantPath) {
  // E(x,y) ∧ E(x,z): z folds onto y; the core is a single edge.
  ConjunctiveQuery cq = Cq("Q(x) :- E(x,y), E(x,z).");
  auto core = CoreOf(cq);
  ASSERT_TRUE(core.ok());
  EXPECT_EQ(core->atoms().size(), 1u);
  EXPECT_TRUE(*UcqEquivalent(UnionQuery({cq}), UnionQuery({*core})));
}

TEST(CoreTest, TriangleIsACore) {
  ConjunctiveQuery cq = Cq("Q() :- E(x,y), E(y,z), E(z,x).");
  auto is_core = IsCore(cq);
  ASSERT_TRUE(is_core.ok());
  EXPECT_TRUE(*is_core);
}

TEST(CoreTest, DirectedCycleIsACore) {
  // The directed 4-cycle has no 2-cycle substructure, so (unlike in the
  // undirected world) it does not retract: it is its own core.
  ConjunctiveQuery cq = Cq("Q() :- E(a,b), E(b,c), E(c,d), E(d,a).");
  auto core = CoreOf(cq);
  ASSERT_TRUE(core.ok());
  EXPECT_EQ(core->atoms().size(), 4u);
  EXPECT_TRUE(*IsCore(cq));
}

TEST(CoreTest, CycleWithChordlessLoopFolds) {
  // Adding a self-loop lets the whole cycle fold onto it.
  ConjunctiveQuery cq = Cq("Q() :- E(a,b), E(b,c), E(c,d), E(d,a), E(e,e).");
  auto core = CoreOf(cq);
  ASSERT_TRUE(core.ok());
  EXPECT_EQ(core->atoms().size(), 1u);
  EXPECT_TRUE(*UcqEquivalent(UnionQuery({cq}), UnionQuery({*core})));
}

TEST(CoreTest, FreeVariablesAreNeverFolded) {
  // Both endpoints free: nothing can fold.
  ConjunctiveQuery cq = Cq("Q(x,y,z) :- E(x,y), E(x,z).");
  auto core = CoreOf(cq);
  ASSERT_TRUE(core.ok());
  EXPECT_EQ(core->atoms().size(), 2u);
}

TEST(CoreTest, DuplicateAtomsAreRemoved) {
  ConjunctiveQuery cq({}, {Atom("E", {Term::Variable("x"), Term::Variable("y")}),
                           Atom("E", {Term::Variable("x"), Term::Variable("y")})});
  auto core = CoreOf(cq);
  ASSERT_TRUE(core.ok());
  EXPECT_EQ(core->atoms().size(), 1u);
}

// Properties: the core is equivalent to the original, is itself a core,
// and re-coring is idempotent.
TEST(CoreProperty, EquivalentIdempotentMinimal) {
  std::mt19937 rng(1978);
  testgen::SchemaSpec schema = testgen::SmallSchema();
  for (int trial = 0; trial < 40; ++trial) {
    ConjunctiveQuery cq = testgen::RandomCq(&rng, schema, 4, 3, 1);
    if (!cq.Validate().ok()) continue;
    auto core = CoreOf(cq);
    ASSERT_TRUE(core.ok());
    EXPECT_TRUE(*UcqEquivalent(UnionQuery({cq}), UnionQuery({*core})))
        << cq.ToString() << " vs core " << core->ToString();
    auto is_core = IsCore(*core);
    ASSERT_TRUE(is_core.ok());
    EXPECT_TRUE(*is_core) << core->ToString();
    auto again = CoreOf(*core);
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(again->atoms().size(), core->atoms().size());
  }
}

}  // namespace
}  // namespace qcont

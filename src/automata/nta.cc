#include "automata/nta.h"

#include <map>
#include <queue>

#include "base/check.h"
#include "base/hash.h"

namespace qcont {

void TreeAutomaton::AddTransition(int state, int symbol,
                                  std::vector<int> children) {
  QCONT_CHECK(state >= 0 && state < num_states_);
  for (int c : children) QCONT_CHECK(c >= 0 && c < num_states_);
  transitions_.push_back(Transition{state, symbol, std::move(children)});
}

std::set<int> TreeAutomaton::AcceptingStatesAt(const RankedTree& tree,
                                               int node) const {
  std::vector<std::set<int>> child_states;
  for (int c : tree.Children(node)) {
    child_states.push_back(AcceptingStatesAt(tree, c));
  }
  std::set<int> out;
  for (const Transition& t : transitions_) {
    if (t.symbol != tree.Symbol(node)) continue;
    if (t.children.size() != child_states.size()) continue;
    if (out.count(t.state)) continue;
    bool ok = true;
    for (std::size_t i = 0; i < t.children.size(); ++i) {
      if (!child_states[i].count(t.children[i])) {
        ok = false;
        break;
      }
    }
    if (ok) out.insert(t.state);
  }
  return out;
}

bool TreeAutomaton::Accepts(const RankedTree& tree) const {
  std::set<int> root_states = AcceptingStatesAt(tree, tree.root());
  for (int q : initial_) {
    if (root_states.count(q)) return true;
  }
  return false;
}

bool TreeAutomaton::IsEmpty(std::optional<RankedTree>* witness) const {
  // Productive states: q is productive if some transition from q has all
  // children productive. Track one witness transition per state for
  // reconstruction.
  std::vector<int> witness_transition(num_states_, -1);
  std::vector<bool> productive(num_states_, false);
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < transitions_.size(); ++i) {
      const Transition& t = transitions_[i];
      if (productive[t.state]) continue;
      bool ok = true;
      for (int c : t.children) {
        if (!productive[c]) {
          ok = false;
          break;
        }
      }
      if (ok) {
        productive[t.state] = true;
        witness_transition[t.state] = static_cast<int>(i);
        changed = true;
      }
    }
  }
  int initial_productive = -1;
  for (int q : initial_) {
    if (productive[q]) {
      initial_productive = q;
      break;
    }
  }
  if (initial_productive < 0) return true;
  if (witness != nullptr) {
    const Transition& root_t = transitions_[witness_transition[initial_productive]];
    RankedTree tree(root_t.symbol);
    // BFS expansion following witness transitions.
    std::queue<std::pair<int, int>> frontier;  // (tree node, state)
    for (int c : root_t.children) frontier.emplace(tree.root(), c);
    while (!frontier.empty()) {
      auto [parent_node, state] = frontier.front();
      frontier.pop();
      const Transition& t = transitions_[witness_transition[state]];
      int node = tree.AddChild(parent_node, t.symbol);
      for (int c : t.children) frontier.emplace(node, c);
    }
    *witness = std::move(tree);
  }
  return false;
}

TreeAutomaton TreeAutomaton::Intersection(const TreeAutomaton& a,
                                          const TreeAutomaton& b) {
  TreeAutomaton out;
  auto encode = [&](int qa, int qb) { return qa * b.num_states() + qb; };
  for (int i = 0; i < a.num_states() * b.num_states(); ++i) out.AddState();
  for (int qa : a.initial()) {
    for (int qb : b.initial()) out.AddInitial(encode(qa, qb));
  }
  for (const Transition& ta : a.transitions()) {
    for (const Transition& tb : b.transitions()) {
      if (ta.symbol != tb.symbol || ta.children.size() != tb.children.size()) {
        continue;
      }
      std::vector<int> children;
      children.reserve(ta.children.size());
      for (std::size_t i = 0; i < ta.children.size(); ++i) {
        children.push_back(encode(ta.children[i], tb.children[i]));
      }
      out.AddTransition(encode(ta.state, tb.state), ta.symbol,
                        std::move(children));
    }
  }
  return out;
}

TreeAutomaton TreeAutomaton::Complement(
    const TreeAutomaton& a, const std::vector<std::pair<int, int>>& alphabet) {
  // Bottom-up subset construction over *reachable* subsets. A subtree
  // evaluates (deterministically) to the set of states accepting it; the
  // complement flips which root subsets are accepting.
  std::map<std::set<int>, int> subset_id;
  std::vector<std::set<int>> subsets;
  auto id_of = [&](const std::set<int>& s) {
    auto [it, inserted] = subset_id.emplace(s, static_cast<int>(subsets.size()));
    if (inserted) subsets.push_back(s);
    return it->second;
  };
  struct DetTransition {
    int symbol;
    std::vector<int> children;  // subset ids
    int result;                 // subset id
  };
  std::vector<DetTransition> det;
  std::set<std::string> recorded;
  bool changed = true;
  while (changed) {
    changed = false;
    for (auto [symbol, arity] : alphabet) {
      // All combinations of currently known subsets as children.
      std::vector<int> combo(arity, 0);
      const int known = static_cast<int>(subsets.size());
      if (arity > 0 && known == 0) continue;
      while (true) {
        std::string key = std::to_string(symbol);
        for (int c : combo) key += "," + std::to_string(c);
        if (recorded.insert(key).second) {
          std::set<int> result;
          for (const Transition& t : a.transitions_) {
            if (t.symbol != symbol ||
                t.children.size() != static_cast<std::size_t>(arity)) {
              continue;
            }
            bool ok = true;
            for (int i = 0; i < arity; ++i) {
              if (!subsets[combo[i]].count(t.children[i])) {
                ok = false;
                break;
              }
            }
            if (ok) result.insert(t.state);
          }
          int result_id = id_of(result);
          if (result_id >= known) changed = true;
          det.push_back(DetTransition{symbol, combo, result_id});
          changed = changed || result_id >= known;
        }
        int pos = 0;
        while (pos < arity) {
          if (++combo[pos] < known) break;
          combo[pos] = 0;
          ++pos;
        }
        if (pos == arity) break;
      }
    }
  }
  TreeAutomaton out;
  for (std::size_t i = 0; i < subsets.size(); ++i) out.AddState();
  for (const DetTransition& t : det) {
    out.AddTransition(t.result, t.symbol, t.children);
  }
  for (std::size_t i = 0; i < subsets.size(); ++i) {
    bool accepts_original = false;
    for (int q : a.initial_) accepts_original = accepts_original || subsets[i].count(q);
    if (!accepts_original) out.AddInitial(static_cast<int>(i));
  }
  return out;
}

bool TreeAutomaton::Contains(const TreeAutomaton& a, const TreeAutomaton& b,
                             const std::vector<std::pair<int, int>>& alphabet,
                             std::optional<RankedTree>* witness) {
  TreeAutomaton not_b = Complement(b, alphabet);
  return Intersection(a, not_b).IsEmpty(witness);
}

TreeAutomaton TreeAutomaton::Union(const TreeAutomaton& a,
                                   const TreeAutomaton& b) {
  TreeAutomaton out;
  for (int i = 0; i < a.num_states() + b.num_states(); ++i) out.AddState();
  const int offset = a.num_states();
  for (int q : a.initial()) out.AddInitial(q);
  for (int q : b.initial()) out.AddInitial(q + offset);
  for (const Transition& t : a.transitions()) {
    out.AddTransition(t.state, t.symbol, t.children);
  }
  for (const Transition& t : b.transitions()) {
    std::vector<int> children;
    children.reserve(t.children.size());
    for (int c : t.children) children.push_back(c + offset);
    out.AddTransition(t.state + offset, t.symbol, std::move(children));
  }
  return out;
}

}  // namespace qcont

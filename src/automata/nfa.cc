#include "automata/nfa.h"

#include <cctype>

#include "base/check.h"

namespace qcont {

int Nfa::AddState() {
  transitions_.emplace_back();
  epsilons_.emplace_back();
  return num_states() - 1;
}

void Nfa::AddTransition(int from, const std::string& symbol, int to) {
  QCONT_CHECK(from >= 0 && from < num_states() && to >= 0 && to < num_states());
  transitions_[from].emplace_back(symbol, to);
}

void Nfa::AddEpsilon(int from, int to) {
  QCONT_CHECK(from >= 0 && from < num_states() && to >= 0 && to < num_states());
  epsilons_[from].push_back(to);
}

std::set<std::string> Nfa::Alphabet() const {
  std::set<std::string> out;
  for (const auto& from : transitions_) {
    for (const auto& [symbol, to] : from) out.insert(symbol);
  }
  return out;
}

std::set<int> Nfa::EpsilonClosure(const std::set<int>& states) const {
  std::set<int> closure = states;
  std::vector<int> stack(states.begin(), states.end());
  while (!stack.empty()) {
    int s = stack.back();
    stack.pop_back();
    for (int t : epsilons_[s]) {
      if (closure.insert(t).second) stack.push_back(t);
    }
  }
  return closure;
}

std::set<int> Nfa::Step(const std::set<int>& states,
                        const std::string& symbol) const {
  std::set<int> next;
  for (int s : states) {
    for (const auto& [sym, to] : transitions_[s]) {
      if (sym == symbol) next.insert(to);
    }
  }
  return EpsilonClosure(next);
}

bool Nfa::AcceptsWord(const std::vector<std::string>& word) const {
  if (num_states() == 0) return false;
  std::set<int> current = EpsilonClosure({initial_});
  for (const std::string& symbol : word) {
    current = Step(current, symbol);
    if (current.empty()) return false;
  }
  for (int s : current) {
    if (IsAccepting(s)) return true;
  }
  return false;
}

bool Nfa::IsLanguageNonempty() const {
  if (num_states() == 0) return false;
  std::set<int> reachable = EpsilonClosure({initial_});
  std::vector<int> stack(reachable.begin(), reachable.end());
  while (!stack.empty()) {
    int s = stack.back();
    stack.pop_back();
    if (IsAccepting(s)) return true;
    for (const auto& [symbol, to] : transitions_[s]) {
      if (reachable.insert(to).second) stack.push_back(to);
    }
    for (int to : epsilons_[s]) {
      if (reachable.insert(to).second) stack.push_back(to);
    }
  }
  for (int s : reachable) {
    if (IsAccepting(s)) return true;
  }
  return false;
}

Nfa Nfa::ReversedInverse() const {
  QCONT_CHECK_MSG(accepting_.size() == 1,
                  "ReversedInverse requires a single accepting state");
  Nfa out;
  for (int i = 0; i < num_states(); ++i) out.AddState();
  auto invert = [](const std::string& symbol) {
    if (!symbol.empty() && symbol.back() == '-') {
      return symbol.substr(0, symbol.size() - 1);
    }
    return symbol + "-";
  };
  for (int s = 0; s < num_states(); ++s) {
    for (const auto& [symbol, t] : transitions_[s]) {
      out.AddTransition(t, invert(symbol), s);
    }
    for (int t : epsilons_[s]) out.AddEpsilon(t, s);
  }
  out.set_initial(*accepting_.begin());
  out.AddAccepting(initial_);
  return out;
}

std::vector<std::pair<std::string, int>> Nfa::ClosedSteps(int state) const {
  std::set<std::pair<std::string, int>> steps;
  for (int s : EpsilonClosure({state})) {
    for (const auto& [symbol, t] : transitions_[s]) {
      for (int t2 : EpsilonClosure({t})) steps.emplace(symbol, t2);
    }
  }
  return std::vector<std::pair<std::string, int>>(steps.begin(), steps.end());
}

bool Nfa::IsEffectivelyAccepting(int state) const {
  for (int s : EpsilonClosure({state})) {
    if (IsAccepting(s)) return true;
  }
  return false;
}

Nfa Nfa::WithInitial(int state) const {
  Nfa copy = *this;
  copy.set_initial(state);
  return copy;
}

Nfa Nfa::WithInitialAndFinal(int initial, int final_state) const {
  Nfa copy = *this;
  copy.set_initial(initial);
  copy.accepting_.clear();
  copy.accepting_.insert(final_state);
  return copy;
}

namespace {

// Thompson fragments: a sub-NFA with one entry and one exit state.
struct Fragment {
  int entry;
  int exit;
};

class RegexParser {
 public:
  explicit RegexParser(const std::string& pattern) : input_(pattern) {}

  Result<Nfa> Parse() {
    Result<Fragment> frag = ParseAlt();
    if (!frag.ok()) return frag.status();
    SkipSpace();
    if (pos_ != input_.size()) {
      return InvalidArgumentError("unexpected character '" +
                                  std::string(1, input_[pos_]) +
                                  "' at position " + std::to_string(pos_) +
                                  " in regex: " + input_);
    }
    nfa_.set_initial(frag->entry);
    nfa_.AddAccepting(frag->exit);
    return std::move(nfa_);
  }

 private:
  void SkipSpace() {
    while (pos_ < input_.size() && std::isspace(static_cast<unsigned char>(
                                       input_[pos_]))) {
      ++pos_;
    }
  }

  bool AtAtomStart() {
    SkipSpace();
    if (pos_ >= input_.size()) return false;
    char c = input_[pos_];
    return c == '(' || c == '_' ||
           std::isalpha(static_cast<unsigned char>(c));
  }

  Result<Fragment> ParseAlt() {
    Result<Fragment> left = ParseCat();
    if (!left.ok()) return left.status();
    Fragment result = *left;
    SkipSpace();
    while (pos_ < input_.size() && input_[pos_] == '|') {
      ++pos_;
      Result<Fragment> right = ParseCat();
      if (!right.ok()) return right.status();
      int entry = nfa_.AddState();
      int exit = nfa_.AddState();
      nfa_.AddEpsilon(entry, result.entry);
      nfa_.AddEpsilon(entry, right->entry);
      nfa_.AddEpsilon(result.exit, exit);
      nfa_.AddEpsilon(right->exit, exit);
      result = {entry, exit};
      SkipSpace();
    }
    return result;
  }

  Result<Fragment> ParseCat() {
    Result<Fragment> first = ParseRep();
    if (!first.ok()) return first.status();
    Fragment result = *first;
    while (AtAtomStart()) {
      Result<Fragment> next = ParseRep();
      if (!next.ok()) return next.status();
      nfa_.AddEpsilon(result.exit, next->entry);
      result.exit = next->exit;
    }
    return result;
  }

  Result<Fragment> ParseRep() {
    Result<Fragment> atom = ParseAtom();
    if (!atom.ok()) return atom.status();
    Fragment result = *atom;
    SkipSpace();
    while (pos_ < input_.size() &&
           (input_[pos_] == '*' || input_[pos_] == '+' || input_[pos_] == '?')) {
      char op = input_[pos_++];
      int entry = nfa_.AddState();
      int exit = nfa_.AddState();
      nfa_.AddEpsilon(entry, result.entry);
      nfa_.AddEpsilon(result.exit, exit);
      if (op == '*' || op == '?') nfa_.AddEpsilon(entry, exit);
      if (op == '*' || op == '+') nfa_.AddEpsilon(result.exit, result.entry);
      result = {entry, exit};
      SkipSpace();
    }
    return result;
  }

  Result<Fragment> ParseAtom() {
    SkipSpace();
    if (pos_ >= input_.size()) {
      return InvalidArgumentError("unexpected end of regex: " + input_);
    }
    if (input_[pos_] == '(') {
      ++pos_;
      Result<Fragment> inner = ParseAlt();
      if (!inner.ok()) return inner.status();
      SkipSpace();
      if (pos_ >= input_.size() || input_[pos_] != ')') {
        return InvalidArgumentError("missing ')' in regex: " + input_);
      }
      ++pos_;
      return *inner;
    }
    char c = input_[pos_];
    if (!(c == '_' || std::isalpha(static_cast<unsigned char>(c)))) {
      return InvalidArgumentError("expected symbol at position " +
                                  std::to_string(pos_) + " in regex: " + input_);
    }
    std::string name;
    while (pos_ < input_.size() &&
           (input_[pos_] == '_' ||
            std::isalnum(static_cast<unsigned char>(input_[pos_])))) {
      name += input_[pos_++];
    }
    if (pos_ < input_.size() && input_[pos_] == '-') {
      name += input_[pos_++];  // inverse symbol "a-"
    }
    int entry = nfa_.AddState();
    int exit = nfa_.AddState();
    if (name == "eps") {
      nfa_.AddEpsilon(entry, exit);
    } else {
      nfa_.AddTransition(entry, name, exit);
    }
    return Fragment{entry, exit};
  }

  const std::string& input_;
  std::size_t pos_ = 0;
  Nfa nfa_;
};

}  // namespace

Result<Nfa> ParseRegex(const std::string& pattern) {
  RegexParser parser(pattern);
  return parser.Parse();
}

}  // namespace qcont

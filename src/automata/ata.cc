#include "automata/ata.h"

#include <map>
#include <utility>
#include <vector>

namespace qcont {

namespace {

using Position = std::pair<int, int>;  // (node, state)

}  // namespace

bool AlternatingTreeAutomaton::Accepts(const RankedTree& tree,
                                       AtaRunStats* stats,
                                       const ObsContext* obs) const {
  ObsSpan accepts_span(obs, "ata/accepts", "automata");
  AtaRunStats run;
  // Discover the reachable game arena from (root, initial).
  std::map<Position, AtaFormula> formulas;
  // Resolved target positions per (position, conjunct, literal):
  // -1 encodes an illegal move (false literal).
  std::map<Position, std::vector<std::vector<Position>>> targets;
  std::vector<Position> stack = {{tree.root(), InitialState()}};
  while (!stack.empty()) {
    Position pos = stack.back();
    stack.pop_back();
    if (formulas.count(pos)) continue;
    AtaFormula formula = Delta(pos.second, tree.Symbol(pos.first));
    std::vector<std::vector<Position>> pos_targets;
    for (const AtaConjunct& conjunct : formula) {
      std::vector<Position> conj_targets;
      for (const AtaMove& move : conjunct) {
        int target_node = -1;
        if (move.direction == 0) {
          target_node = pos.first;
        } else if (move.direction == -1) {
          target_node = tree.Parent(pos.first);
        } else {
          const std::vector<int>& children = tree.Children(pos.first);
          if (move.direction <= static_cast<int>(children.size())) {
            target_node = children[move.direction - 1];
          }
        }
        conj_targets.emplace_back(target_node, move.state);
        if (target_node >= 0) stack.emplace_back(target_node, move.state);
      }
      pos_targets.push_back(std::move(conj_targets));
    }
    targets.emplace(pos, std::move(pos_targets));
    formulas.emplace(pos, std::move(formula));
  }
  run.positions = formulas.size();

  // Least fixpoint of Eve's winning region: a position wins if some
  // conjunct has all its (legal) targets winning.
  std::map<Position, bool> winning;
  for (const auto& [pos, formula] : formulas) winning[pos] = false;
  bool changed = true;
  while (changed) {
    changed = false;
    ++run.iterations;
    for (const auto& [pos, pos_targets] : targets) {
      if (winning[pos]) continue;
      bool win = false;
      for (const std::vector<Position>& conj_targets : pos_targets) {
        bool all = true;
        for (const Position& target : conj_targets) {
          if (target.first < 0 || !winning[target]) {
            all = false;
            break;
          }
        }
        if (all) {
          win = true;
          break;
        }
      }
      if (win) {
        winning[pos] = true;
        changed = true;
      }
    }
  }
  // Flush: mirror the legacy sink's semantics (positions assigned,
  // iterations accumulated) and publish the same run-local values.
  if (stats != nullptr) {
    stats->positions = run.positions;
    stats->iterations += run.iterations;
  }
  if (MetricRegistry* metrics = ObsMetrics(obs)) {
    metrics->Add("ata.iterations", run.iterations);
    metrics->SetGauge("ata.positions", run.positions);
  }
  accepts_span.AddArg("positions", run.positions);
  accepts_span.AddArg("iterations", run.iterations);
  return winning[{tree.root(), InitialState()}];
}

}  // namespace qcont

#ifndef QCONT_AUTOMATA_NTA_H_
#define QCONT_AUTOMATA_NTA_H_

#include <cstddef>
#include <optional>
#include <set>
#include <vector>

#include "automata/tree.h"

namespace qcont {

/// A (one-way, top-down) nondeterministic tree automaton over integer
/// symbols: a transition (q, a) -> (q1,...,qk) allows a node labeled `a`
/// with k children to be processed in state q with child i processed in
/// state qi. A leaf is accepted in state q iff there is a transition
/// (q, a) -> () of rank 0.
///
/// On finite trees, top-down and bottom-up nondeterministic automata are
/// expressively equivalent; acceptance is decided bottom-up here.
class TreeAutomaton {
 public:
  struct Transition {
    int state;
    int symbol;
    std::vector<int> children;
  };

  int AddState() { return num_states_++; }
  int num_states() const { return num_states_; }

  void AddInitial(int state) { initial_.insert(state); }
  const std::set<int>& initial() const { return initial_; }

  void AddTransition(int state, int symbol, std::vector<int> children);
  const std::vector<Transition>& transitions() const { return transitions_; }

  /// Membership: does the automaton accept `tree` from some initial state?
  bool Accepts(const RankedTree& tree) const;

  /// Emptiness via the productive-states fixpoint. If nonempty and
  /// `witness` is non-null, a smallest-depth witness tree is produced.
  bool IsEmpty(std::optional<RankedTree>* witness = nullptr) const;

  /// Product automaton accepting the intersection of the two languages.
  static TreeAutomaton Intersection(const TreeAutomaton& a,
                                    const TreeAutomaton& b);

  /// Disjoint union accepting the union of the two languages.
  static TreeAutomaton Union(const TreeAutomaton& a, const TreeAutomaton& b);

  /// The complement with respect to the set of trees over `alphabet`
  /// (symbol, arity) pairs: bottom-up determinization (subset construction
  /// over the reachable subsets) followed by final-state flipping.
  /// Exponential in the worst case, as it must be [Seidl]. Only reachable
  /// subset states are materialized.
  static TreeAutomaton Complement(
      const TreeAutomaton& a,
      const std::vector<std::pair<int, int>>& alphabet);

  /// Language containment L(a) ⊆ L(b) over trees built from `alphabet`:
  /// emptiness of L(a) ∩ L(b)^c — the decision procedure the paper's
  /// Theorem 6 upper bound rests on. If not contained and `witness` is
  /// non-null, a separating tree is produced.
  static bool Contains(const TreeAutomaton& a, const TreeAutomaton& b,
                       const std::vector<std::pair<int, int>>& alphabet,
                       std::optional<RankedTree>* witness = nullptr);

 private:
  /// States from which the subtree rooted at `node` is accepted.
  std::set<int> AcceptingStatesAt(const RankedTree& tree, int node) const;

  int num_states_ = 0;
  std::set<int> initial_;
  std::vector<Transition> transitions_;
};

}  // namespace qcont

#endif  // QCONT_AUTOMATA_NTA_H_

#ifndef QCONT_AUTOMATA_NFA_H_
#define QCONT_AUTOMATA_NFA_H_

#include <cstddef>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "base/status.h"

namespace qcont {

/// A nondeterministic finite automaton over an alphabet of named symbols
/// (strings). 2RPQs use symbols "a" and their inverses "a-"; the NFA layer
/// is agnostic to that convention.
///
/// Epsilon transitions are supported (Thompson construction produces them);
/// `EpsilonClosure` and `Step` are the evaluation primitives that the graph
/// database product construction uses.
class Nfa {
 public:
  Nfa() = default;

  int AddState();
  int num_states() const { return static_cast<int>(transitions_.size()); }

  void AddTransition(int from, const std::string& symbol, int to);
  void AddEpsilon(int from, int to);

  void set_initial(int state) { initial_ = state; }
  int initial() const { return initial_; }

  void AddAccepting(int state) { accepting_.insert(state); }
  const std::set<int>& accepting() const { return accepting_; }
  bool IsAccepting(int state) const { return accepting_.count(state) > 0; }

  /// Symbol transitions leaving `state` (no epsilons).
  const std::vector<std::pair<std::string, int>>& TransitionsFrom(
      int state) const {
    return transitions_[state];
  }

  /// All alphabet symbols mentioned on transitions.
  std::set<std::string> Alphabet() const;

  /// States reachable from `states` by epsilon moves (including `states`).
  std::set<int> EpsilonClosure(const std::set<int>& states) const;

  /// One-symbol successor set (epsilon closure applied afterwards).
  std::set<int> Step(const std::set<int>& states,
                     const std::string& symbol) const;

  /// Word membership (evaluation primitive; used by tests and benches).
  bool AcceptsWord(const std::vector<std::string>& word) const;

  /// True iff the accepted language is nonempty.
  bool IsLanguageNonempty() const;

  /// The NFA of the "reverse traversal" language: reverses every
  /// transition, swaps initial and accepting (requires exactly one
  /// accepting state; Thompson NFAs have one), and replaces each symbol by
  /// its inverse ("a" <-> "a-"). A path from y to x labeled in L exists iff
  /// a path from x to y labeled in ReversedInverse(L) exists — this
  /// normalizes backward atoms L(y, x) so that every 2RPQ atom is walked
  /// from its first variable.
  Nfa ReversedInverse() const;

  /// Epsilon-closed symbol steps from `state`: all (symbol, target) pairs
  /// such that target is reachable by eps* symbol eps*. Deduplicated.
  std::vector<std::pair<std::string, int>> ClosedSteps(int state) const;

  /// True iff an accepting state is reachable from `state` by epsilons.
  bool IsEffectivelyAccepting(int state) const;

  /// A copy with the initial state replaced — the (L)_s construction from
  /// the proof of Theorem 9.
  Nfa WithInitial(int state) const;

  /// A copy accepting exactly at `state` — the (L)_{s,s'} construction.
  Nfa WithInitialAndFinal(int initial, int final_state) const;

 private:
  std::vector<std::vector<std::pair<std::string, int>>> transitions_;
  std::vector<std::vector<int>> epsilons_;
  std::set<int> accepting_;
  int initial_ = 0;
};

/// Parses a regular expression over identifiers into an NFA (Thompson).
///
/// Grammar:  alt  := cat ('|' cat)*
///           cat  := rep+
///           rep  := atom ('*' | '+' | '?')*
///           atom := IDENT ['-']  |  '(' alt ')'  |  'eps'
/// Identifiers are [A-Za-z_][A-Za-z0-9_]*; `a-` denotes the inverse symbol
/// of `a` (a distinct alphabet symbol named "a-"). The keyword `eps`
/// denotes the empty word.
Result<Nfa> ParseRegex(const std::string& pattern);

}  // namespace qcont

#endif  // QCONT_AUTOMATA_NFA_H_

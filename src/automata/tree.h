#ifndef QCONT_AUTOMATA_TREE_H_
#define QCONT_AUTOMATA_TREE_H_

#include <cstddef>
#include <string>
#include <vector>

#include "base/check.h"

namespace qcont {

/// A finite ordered tree with integer node labels (symbol ids are assigned
/// by the user of the class, typically via an Interner). Nodes are stored
/// in a flat vector with parent pointers so that two-way automata can move
/// in direction -1.
class RankedTree {
 public:
  struct Node {
    int symbol;
    int parent;  // -1 for the root
    std::vector<int> children;
  };

  /// Creates a tree with a single root node.
  explicit RankedTree(int root_symbol) {
    nodes_.push_back(Node{root_symbol, -1, {}});
  }

  /// Adds a new node under `parent`; returns its index.
  int AddChild(int parent, int symbol) {
    QCONT_CHECK(parent >= 0 && parent < static_cast<int>(nodes_.size()));
    int id = static_cast<int>(nodes_.size());
    nodes_.push_back(Node{symbol, parent, {}});
    nodes_[parent].children.push_back(id);
    return id;
  }

  int root() const { return 0; }
  std::size_t size() const { return nodes_.size(); }
  const Node& node(int id) const { return nodes_[id]; }

  int Symbol(int id) const { return nodes_[id].symbol; }
  int Parent(int id) const { return nodes_[id].parent; }
  const std::vector<int>& Children(int id) const { return nodes_[id].children; }

 private:
  std::vector<Node> nodes_;
};

}  // namespace qcont

#endif  // QCONT_AUTOMATA_TREE_H_

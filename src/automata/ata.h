#ifndef QCONT_AUTOMATA_ATA_H_
#define QCONT_AUTOMATA_ATA_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "automata/tree.h"
#include "obs/obs.h"

namespace qcont {

/// A move of a two-way alternating tree automaton: go in `direction`
/// (-1 = to the parent, 0 = stay, j >= 1 = to the j-th child) and continue
/// in `state`.
struct AtaMove {
  int direction;
  int state;
};

/// A conjunct of moves; the empty conjunct is `true`.
using AtaConjunct = std::vector<AtaMove>;

/// A positive DNF formula over moves; the empty formula is `false`.
using AtaFormula = std::vector<AtaConjunct>;

/// Statistics of the acceptance-game solver.
struct AtaRunStats {
  /// Distinct (node, state) pairs in the reachable game arena. Assigned
  /// (snapshot) per run; registry mirror: gauge `ata.positions`.
  std::uint64_t positions = 0;
  /// Fixpoint rounds until Eve's winning region stabilizes. Accumulates
  /// across runs; counter `ata.iterations`.
  std::uint64_t iterations = 0;
};

/// A two-way alternating tree automaton (2ATA) over integer-labeled trees
/// [Slutzki]. Subclasses provide the initial state and the transition
/// function; both may be computed lazily (the state space never needs to be
/// materialized), which is what the containment engines rely on — their
/// alphabets ΣΠ are exponential.
///
/// Semantics (finite trees, reachability acceptance): the acceptance game
/// on tree positions (node, state) is played by Eve, who resolves
/// disjunctions, against Adam, who resolves conjunctions. Eve wins a play
/// iff it reaches a `true` transition (empty conjunct) in finitely many
/// steps; infinite plays and `false` transitions are won by Adam. The tree
/// is accepted iff Eve wins from (root, initial state). This is the
/// least-fixpoint semantics used by the automata B^Θ_Π of Theorems 6 and 9
/// (accepting runs of those automata are finite).
class AlternatingTreeAutomaton {
 public:
  virtual ~AlternatingTreeAutomaton() = default;

  virtual int InitialState() const = 0;

  /// Transition function δ(state, symbol); moves in illegal directions
  /// (up from the root, to a missing child) make their conjunct false.
  virtual AtaFormula Delta(int state, int symbol) const = 0;

  /// Membership, decided by solving the reachability game (polynomial in
  /// |tree| × |reachable states|). `obs` (optional, borrowed) receives an
  /// `ata/accepts` span and the `ata.*` metrics.
  bool Accepts(const RankedTree& tree, AtaRunStats* stats = nullptr,
               const ObsContext* obs = nullptr) const;
};

}  // namespace qcont

#endif  // QCONT_AUTOMATA_ATA_H_

#ifndef QCONT_PARSER_PARSER_H_
#define QCONT_PARSER_PARSER_H_

#include <string>

#include "base/status.h"
#include "cq/database.h"
#include "cq/query.h"
#include "datalog/program.h"
#include "graphdb/c2rpq.h"

namespace qcont {

/// Parses a Datalog program in the textual syntax
///
///     buys(x, y) :- likes(x, y).
///     buys(x, y) :- trendy(x), buys(z, y).
///     goal buys.
///
/// Rules end with '.', comments run from '#' or '%' to end of line. The
/// `goal` directive names the distinguished predicate; if absent, the head
/// predicate of the first rule is used.
Result<DatalogProgram> ParseProgram(const std::string& text);

/// Parses a UCQ as a set of rules sharing one head predicate:
///
///     Q(x, y) :- likes(x, y).
///     Q(x, y) :- trendy(x), likes(z, y).
///
/// Every rule becomes a disjunct whose free variables are the head terms.
/// Constants are written in single quotes: R(x, 'c').
Result<UnionQuery> ParseUcq(const std::string& text);

/// Parses a UC2RPQ; regular expressions appear in brackets:
///
///     Q(x, y) :- [a (b|c)*](x, y), [d-](y, z).
///
/// See ParseRegex for the expression syntax ("a-" is the inverse of "a").
Result<UC2rpq> ParseUC2rpq(const std::string& text);

/// Parses a database as a list of facts:
///
///     likes('ann', 'beer'). trendy('ann').
Result<Database> ParseDatabase(const std::string& text);

}  // namespace qcont

#endif  // QCONT_PARSER_PARSER_H_

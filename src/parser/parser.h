#ifndef QCONT_PARSER_PARSER_H_
#define QCONT_PARSER_PARSER_H_

#include <string>
#include <vector>

#include "base/status.h"
#include "cq/database.h"
#include "cq/query.h"
#include "datalog/program.h"
#include "graphdb/c2rpq.h"

namespace qcont {

/// Source positions recorded while parsing: the 1-based line on which each
/// rule (or UCQ/UC2RPQ disjunct) starts, in rule order. The analyzer uses
/// this to attach line numbers to diagnostics; all parse errors already
/// carry "line N" in their message.
struct SourceLines {
  std::vector<int> rule_lines;

  /// Line of rule/disjunct `index`, or 0 when unknown.
  int LineOf(int index) const {
    return (index >= 0 && index < static_cast<int>(rule_lines.size()))
               ? rule_lines[index]
               : 0;
  }
};

/// Parses a Datalog program in the textual syntax
///
///     buys(x, y) :- likes(x, y).
///     buys(x, y) :- trendy(x), buys(z, y).
///     goal buys.
///
/// Rules end with '.', comments run from '#' or '%' to end of line. The
/// `goal` directive names the distinguished predicate; if absent, the head
/// predicate of the first rule is used. If `lines` is non-null it receives
/// the source line of each rule.
Result<DatalogProgram> ParseProgram(const std::string& text,
                                    SourceLines* lines = nullptr);

/// Parses a UCQ as a set of rules sharing one head predicate:
///
///     Q(x, y) :- likes(x, y).
///     Q(x, y) :- trendy(x), likes(z, y).
///
/// Every rule becomes a disjunct whose free variables are the head terms.
/// Constants are written in single quotes: R(x, 'c').
Result<UnionQuery> ParseUcq(const std::string& text,
                            SourceLines* lines = nullptr);

/// Parses a UC2RPQ; regular expressions appear in brackets:
///
///     Q(x, y) :- [a (b|c)*](x, y), [d-](y, z).
///
/// See ParseRegex for the expression syntax ("a-" is the inverse of "a").
Result<UC2rpq> ParseUC2rpq(const std::string& text,
                           SourceLines* lines = nullptr);

/// Parses a database as a list of facts:
///
///     likes('ann', 'beer'). trendy('ann').
Result<Database> ParseDatabase(const std::string& text);

/// Parse-only variants that skip semantic validation: syntax errors still
/// fail, but unsafe rules, arity clashes etc. come back as a constructed
/// object so the static analyzer (`qcont_cli lint`) can report *all*
/// problems with codes and line numbers instead of stopping at the first.
Result<DatalogProgram> ParseProgramUnvalidated(const std::string& text,
                                               SourceLines* lines = nullptr);
Result<UnionQuery> ParseUcqUnvalidated(const std::string& text,
                                       SourceLines* lines = nullptr);
Result<UC2rpq> ParseUC2rpqUnvalidated(const std::string& text,
                                      SourceLines* lines = nullptr);

}  // namespace qcont

#endif  // QCONT_PARSER_PARSER_H_

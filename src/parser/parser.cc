#include "parser/parser.h"

#include <cctype>
#include <optional>
#include <vector>

namespace qcont {

namespace {

// Token kinds of the little language shared by all four entry points.
enum class TokenKind {
  kIdent,     // bare identifier
  kConstant,  // 'quoted'
  kRegex,     // [bracketed regular expression]
  kLParen,
  kRParen,
  kComma,
  kPeriod,
  kImplies,  // :-
  kEnd,
};

struct Token {
  TokenKind kind;
  std::string text;
  int line;  // 1-based source line on which the token starts
};

class Lexer {
 public:
  explicit Lexer(const std::string& input) : input_(input) {}

  Result<std::vector<Token>> Tokenize() {
    std::vector<Token> out;
    while (true) {
      SkipSpaceAndComments();
      if (pos_ >= input_.size()) break;
      const int start_line = line_;
      char c = input_[pos_];
      if (c == '(') {
        out.push_back({TokenKind::kLParen, "(", start_line});
        Advance();
      } else if (c == ')') {
        out.push_back({TokenKind::kRParen, ")", start_line});
        Advance();
      } else if (c == ',') {
        out.push_back({TokenKind::kComma, ",", start_line});
        Advance();
      } else if (c == '.') {
        out.push_back({TokenKind::kPeriod, ".", start_line});
        Advance();
      } else if (c == ':' && pos_ + 1 < input_.size() &&
                 input_[pos_ + 1] == '-') {
        out.push_back({TokenKind::kImplies, ":-", start_line});
        Advance();
        Advance();
      } else if (c == '\'') {
        Advance();
        std::string text;
        while (pos_ < input_.size() && input_[pos_] != '\'') {
          text += input_[pos_];
          Advance();
        }
        if (pos_ >= input_.size()) {
          return InvalidArgumentError("unterminated constant at line " +
                                      std::to_string(start_line));
        }
        Advance();
        out.push_back({TokenKind::kConstant, std::move(text), start_line});
      } else if (c == '[') {
        Advance();
        std::string text;
        int depth = 1;
        while (pos_ < input_.size() && depth > 0) {
          if (input_[pos_] == '[') ++depth;
          if (input_[pos_] == ']') {
            --depth;
            if (depth == 0) break;
          }
          text += input_[pos_];
          Advance();
        }
        if (pos_ >= input_.size()) {
          return InvalidArgumentError("unterminated regex at line " +
                                      std::to_string(start_line));
        }
        Advance();  // consume ']'
        out.push_back({TokenKind::kRegex, std::move(text), start_line});
      } else if (c == '_' || std::isalpha(static_cast<unsigned char>(c))) {
        std::string text;
        while (pos_ < input_.size() &&
               (input_[pos_] == '_' ||
                std::isalnum(static_cast<unsigned char>(input_[pos_])))) {
          text += input_[pos_];
          Advance();
        }
        out.push_back({TokenKind::kIdent, std::move(text), start_line});
      } else {
        return InvalidArgumentError("unexpected character '" +
                                    std::string(1, c) + "' at line " +
                                    std::to_string(start_line));
      }
    }
    out.push_back({TokenKind::kEnd, "", line_});
    return out;
  }

 private:
  void Advance() {
    if (input_[pos_] == '\n') ++line_;
    ++pos_;
  }

  void SkipSpaceAndComments() {
    while (pos_ < input_.size()) {
      char c = input_[pos_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        Advance();
      } else if (c == '#' || c == '%') {
        while (pos_ < input_.size() && input_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
  }

  const std::string& input_;
  std::size_t pos_ = 0;
  int line_ = 1;
};

// A parsed rule head/body in the surface syntax; bodies may mix relational
// and regex atoms (the latter only for UC2RPQs).
struct SurfaceAtom {
  std::optional<std::string> regex;  // set for [..](x, y) atoms
  std::string predicate;             // set for relational atoms
  std::vector<Term> terms;
};

struct SurfaceRule {
  SurfaceAtom head;
  std::vector<SurfaceAtom> body;
  int line = 0;  // source line of the head atom
};

class RuleParser {
 public:
  explicit RuleParser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  // Parses "goal <name>." directives and rules until end of input.
  Result<bool> Parse() {
    while (Peek().kind != TokenKind::kEnd) {
      if (Peek().kind == TokenKind::kIdent && Peek().text == "goal" &&
          PeekAt(1).kind == TokenKind::kIdent) {
        ++pos_;
        goal_ = Next().text;
        QCONT_RETURN_IF_ERROR(Expect(TokenKind::kPeriod, "'.'"));
        continue;
      }
      QCONT_RETURN_IF_ERROR(ParseRule());
    }
    return true;
  }

  const std::vector<SurfaceRule>& rules() const { return rules_; }
  const std::optional<std::string>& goal() const { return goal_; }

  SourceLines Lines() const {
    SourceLines out;
    out.rule_lines.reserve(rules_.size());
    for (const SurfaceRule& r : rules_) out.rule_lines.push_back(r.line);
    return out;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  const Token& PeekAt(std::size_t delta) const {
    return tokens_[std::min(pos_ + delta, tokens_.size() - 1)];
  }
  const Token& Next() { return tokens_[pos_++]; }

  Status Expect(TokenKind kind, const std::string& what) {
    if (Peek().kind != kind) {
      return InvalidArgumentError("expected " + what + " at line " +
                                  std::to_string(Peek().line));
    }
    ++pos_;
    return Status::Ok();
  }

  Result<SurfaceAtom> ParseAtom() {
    SurfaceAtom atom;
    if (Peek().kind == TokenKind::kRegex) {
      atom.regex = Next().text;
    } else if (Peek().kind == TokenKind::kIdent) {
      atom.predicate = Next().text;
    } else {
      return InvalidArgumentError("expected atom at line " +
                                  std::to_string(Peek().line));
    }
    QCONT_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "'('"));
    if (Peek().kind != TokenKind::kRParen) {
      while (true) {
        if (Peek().kind == TokenKind::kIdent) {
          atom.terms.push_back(Term::Variable(Next().text));
        } else if (Peek().kind == TokenKind::kConstant) {
          atom.terms.push_back(Term::Constant(Next().text));
        } else {
          return InvalidArgumentError("expected term at line " +
                                      std::to_string(Peek().line));
        }
        if (Peek().kind == TokenKind::kComma) {
          ++pos_;
          continue;
        }
        break;
      }
    }
    QCONT_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
    return atom;
  }

  Status ParseRule() {
    SurfaceRule rule;
    rule.line = Peek().line;
    QCONT_ASSIGN_OR_RETURN(rule.head, ParseAtom());
    if (rule.head.regex.has_value()) {
      return InvalidArgumentError("a rule head cannot be a regex atom (line " +
                                  std::to_string(rule.line) + ")");
    }
    if (Peek().kind == TokenKind::kImplies) {
      ++pos_;
      while (true) {
        QCONT_ASSIGN_OR_RETURN(SurfaceAtom atom, ParseAtom());
        rule.body.push_back(std::move(atom));
        if (Peek().kind == TokenKind::kComma) {
          ++pos_;
          continue;
        }
        break;
      }
    }
    QCONT_RETURN_IF_ERROR(Expect(TokenKind::kPeriod, "'.'"));
    rules_.push_back(std::move(rule));
    return Status::Ok();
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  std::vector<SurfaceRule> rules_;
  std::optional<std::string> goal_;
};

Result<RuleParser> ParseRules(const std::string& text) {
  Lexer lexer(text);
  QCONT_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  RuleParser parser(std::move(tokens));
  QCONT_ASSIGN_OR_RETURN(bool ok, parser.Parse());
  (void)ok;
  return parser;
}

Result<Atom> ToRelationalAtom(const SurfaceAtom& atom, int line) {
  if (atom.regex.has_value()) {
    return InvalidArgumentError(
        "regex atoms are only allowed in UC2RPQs (line " +
        std::to_string(line) + ")");
  }
  return Atom(atom.predicate, atom.terms);
}

}  // namespace

Result<DatalogProgram> ParseProgramUnvalidated(const std::string& text,
                                               SourceLines* lines) {
  QCONT_ASSIGN_OR_RETURN(RuleParser parser, ParseRules(text));
  if (parser.rules().empty()) {
    return InvalidArgumentError("program has no rules");
  }
  std::vector<Rule> rules;
  for (const SurfaceRule& sr : parser.rules()) {
    QCONT_ASSIGN_OR_RETURN(Atom head, ToRelationalAtom(sr.head, sr.line));
    std::vector<Atom> body;
    for (const SurfaceAtom& sa : sr.body) {
      QCONT_ASSIGN_OR_RETURN(Atom atom, ToRelationalAtom(sa, sr.line));
      body.push_back(std::move(atom));
    }
    rules.push_back(Rule{std::move(head), std::move(body)});
  }
  std::string goal = parser.goal().has_value()
                         ? *parser.goal()
                         : rules.front().head.predicate();
  if (lines != nullptr) *lines = parser.Lines();
  return DatalogProgram(std::move(rules), std::move(goal));
}

Result<DatalogProgram> ParseProgram(const std::string& text,
                                    SourceLines* lines) {
  QCONT_ASSIGN_OR_RETURN(DatalogProgram program,
                         ParseProgramUnvalidated(text, lines));
  QCONT_RETURN_IF_ERROR(program.Validate());
  return program;
}

Result<UnionQuery> ParseUcqUnvalidated(const std::string& text,
                                       SourceLines* lines) {
  QCONT_ASSIGN_OR_RETURN(RuleParser parser, ParseRules(text));
  if (parser.rules().empty()) {
    return InvalidArgumentError("UCQ has no disjuncts");
  }
  std::vector<ConjunctiveQuery> disjuncts;
  const std::string& head_pred = parser.rules().front().head.predicate;
  for (const SurfaceRule& sr : parser.rules()) {
    if (sr.head.predicate != head_pred) {
      return InvalidArgumentError("all UCQ disjuncts must share one head "
                                  "predicate; got '" +
                                  sr.head.predicate + "' and '" + head_pred +
                                  "' (line " + std::to_string(sr.line) + ")");
    }
    std::vector<Atom> atoms;
    for (const SurfaceAtom& sa : sr.body) {
      QCONT_ASSIGN_OR_RETURN(Atom atom, ToRelationalAtom(sa, sr.line));
      atoms.push_back(std::move(atom));
    }
    disjuncts.emplace_back(sr.head.terms, std::move(atoms));
  }
  if (lines != nullptr) *lines = parser.Lines();
  return UnionQuery(std::move(disjuncts));
}

Result<UnionQuery> ParseUcq(const std::string& text, SourceLines* lines) {
  QCONT_ASSIGN_OR_RETURN(UnionQuery ucq, ParseUcqUnvalidated(text, lines));
  QCONT_RETURN_IF_ERROR(ucq.Validate());
  return ucq;
}

Result<UC2rpq> ParseUC2rpqUnvalidated(const std::string& text,
                                      SourceLines* lines) {
  QCONT_ASSIGN_OR_RETURN(RuleParser parser, ParseRules(text));
  if (parser.rules().empty()) {
    return InvalidArgumentError("UC2RPQ has no disjuncts");
  }
  std::vector<C2rpq> disjuncts;
  for (const SurfaceRule& sr : parser.rules()) {
    std::vector<RpqAtom> atoms;
    for (const SurfaceAtom& sa : sr.body) {
      if (!sa.regex.has_value()) {
        return InvalidArgumentError(
            "UC2RPQ atoms must be regex atoms [expr](x, y) (line " +
            std::to_string(sr.line) + ")");
      }
      if (sa.terms.size() != 2) {
        return InvalidArgumentError(
            "regex atoms take exactly two variables (line " +
            std::to_string(sr.line) + ")");
      }
      QCONT_ASSIGN_OR_RETURN(RpqAtom atom,
                             MakeRpqAtom(*sa.regex, sa.terms[0], sa.terms[1]));
      atoms.push_back(std::move(atom));
    }
    disjuncts.emplace_back(sr.head.terms, std::move(atoms));
  }
  if (lines != nullptr) *lines = parser.Lines();
  return UC2rpq(std::move(disjuncts));
}

Result<UC2rpq> ParseUC2rpq(const std::string& text, SourceLines* lines) {
  QCONT_ASSIGN_OR_RETURN(UC2rpq out, ParseUC2rpqUnvalidated(text, lines));
  QCONT_RETURN_IF_ERROR(out.Validate());
  return out;
}

Result<Database> ParseDatabase(const std::string& text) {
  QCONT_ASSIGN_OR_RETURN(RuleParser parser, ParseRules(text));
  Database db;
  for (const SurfaceRule& sr : parser.rules()) {
    if (!sr.body.empty()) {
      return InvalidArgumentError("database facts cannot have bodies (line " +
                                  std::to_string(sr.line) + ")");
    }
    QCONT_ASSIGN_OR_RETURN(Atom atom, ToRelationalAtom(sr.head, sr.line));
    Tuple t;
    for (const Term& term : atom.terms()) {
      t.push_back(term.name());
    }
    db.AddFact(atom.predicate(), std::move(t));
  }
  return db;
}

}  // namespace qcont

#include "parser/parser.h"

#include <cctype>
#include <optional>
#include <vector>

namespace qcont {

namespace {

// Token kinds of the little language shared by all four entry points.
enum class TokenKind {
  kIdent,     // bare identifier
  kConstant,  // 'quoted'
  kRegex,     // [bracketed regular expression]
  kLParen,
  kRParen,
  kComma,
  kPeriod,
  kImplies,  // :-
  kEnd,
};

struct Token {
  TokenKind kind;
  std::string text;
  std::size_t offset;
};

class Lexer {
 public:
  explicit Lexer(const std::string& input) : input_(input) {}

  Result<std::vector<Token>> Tokenize() {
    std::vector<Token> out;
    while (true) {
      SkipSpaceAndComments();
      if (pos_ >= input_.size()) break;
      std::size_t start = pos_;
      char c = input_[pos_];
      if (c == '(') {
        out.push_back({TokenKind::kLParen, "(", start});
        ++pos_;
      } else if (c == ')') {
        out.push_back({TokenKind::kRParen, ")", start});
        ++pos_;
      } else if (c == ',') {
        out.push_back({TokenKind::kComma, ",", start});
        ++pos_;
      } else if (c == '.') {
        out.push_back({TokenKind::kPeriod, ".", start});
        ++pos_;
      } else if (c == ':' && pos_ + 1 < input_.size() &&
                 input_[pos_ + 1] == '-') {
        out.push_back({TokenKind::kImplies, ":-", start});
        pos_ += 2;
      } else if (c == '\'') {
        ++pos_;
        std::string text;
        while (pos_ < input_.size() && input_[pos_] != '\'') {
          text += input_[pos_++];
        }
        if (pos_ >= input_.size()) {
          return InvalidArgumentError("unterminated constant at offset " +
                                      std::to_string(start));
        }
        ++pos_;
        out.push_back({TokenKind::kConstant, std::move(text), start});
      } else if (c == '[') {
        ++pos_;
        std::string text;
        int depth = 1;
        while (pos_ < input_.size() && depth > 0) {
          if (input_[pos_] == '[') ++depth;
          if (input_[pos_] == ']') {
            --depth;
            if (depth == 0) break;
          }
          text += input_[pos_++];
        }
        if (pos_ >= input_.size()) {
          return InvalidArgumentError("unterminated regex at offset " +
                                      std::to_string(start));
        }
        ++pos_;  // consume ']'
        out.push_back({TokenKind::kRegex, std::move(text), start});
      } else if (c == '_' || std::isalpha(static_cast<unsigned char>(c))) {
        std::string text;
        while (pos_ < input_.size() &&
               (input_[pos_] == '_' ||
                std::isalnum(static_cast<unsigned char>(input_[pos_])))) {
          text += input_[pos_++];
        }
        out.push_back({TokenKind::kIdent, std::move(text), start});
      } else {
        return InvalidArgumentError("unexpected character '" +
                                    std::string(1, c) + "' at offset " +
                                    std::to_string(start));
      }
    }
    out.push_back({TokenKind::kEnd, "", pos_});
    return out;
  }

 private:
  void SkipSpaceAndComments() {
    while (pos_ < input_.size()) {
      char c = input_[pos_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '#' || c == '%') {
        while (pos_ < input_.size() && input_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
  }

  const std::string& input_;
  std::size_t pos_ = 0;
};

// A parsed rule head/body in the surface syntax; bodies may mix relational
// and regex atoms (the latter only for UC2RPQs).
struct SurfaceAtom {
  std::optional<std::string> regex;  // set for [..](x, y) atoms
  std::string predicate;             // set for relational atoms
  std::vector<Term> terms;
};

struct SurfaceRule {
  SurfaceAtom head;
  std::vector<SurfaceAtom> body;
};

class RuleParser {
 public:
  explicit RuleParser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  // Parses "goal <name>." directives and rules until end of input.
  Result<bool> Parse() {
    while (Peek().kind != TokenKind::kEnd) {
      if (Peek().kind == TokenKind::kIdent && Peek().text == "goal" &&
          PeekAt(1).kind == TokenKind::kIdent) {
        ++pos_;
        goal_ = Next().text;
        QCONT_RETURN_IF_ERROR(Expect(TokenKind::kPeriod, "'.'"));
        continue;
      }
      QCONT_RETURN_IF_ERROR(ParseRule());
    }
    return true;
  }

  const std::vector<SurfaceRule>& rules() const { return rules_; }
  const std::optional<std::string>& goal() const { return goal_; }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  const Token& PeekAt(std::size_t delta) const {
    return tokens_[std::min(pos_ + delta, tokens_.size() - 1)];
  }
  const Token& Next() { return tokens_[pos_++]; }

  Status Expect(TokenKind kind, const std::string& what) {
    if (Peek().kind != kind) {
      return InvalidArgumentError("expected " + what + " at offset " +
                                  std::to_string(Peek().offset));
    }
    ++pos_;
    return Status::Ok();
  }

  Result<SurfaceAtom> ParseAtom() {
    SurfaceAtom atom;
    if (Peek().kind == TokenKind::kRegex) {
      atom.regex = Next().text;
    } else if (Peek().kind == TokenKind::kIdent) {
      atom.predicate = Next().text;
    } else {
      return InvalidArgumentError("expected atom at offset " +
                                  std::to_string(Peek().offset));
    }
    QCONT_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "'('"));
    if (Peek().kind != TokenKind::kRParen) {
      while (true) {
        if (Peek().kind == TokenKind::kIdent) {
          atom.terms.push_back(Term::Variable(Next().text));
        } else if (Peek().kind == TokenKind::kConstant) {
          atom.terms.push_back(Term::Constant(Next().text));
        } else {
          return InvalidArgumentError("expected term at offset " +
                                      std::to_string(Peek().offset));
        }
        if (Peek().kind == TokenKind::kComma) {
          ++pos_;
          continue;
        }
        break;
      }
    }
    QCONT_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
    return atom;
  }

  Status ParseRule() {
    SurfaceRule rule;
    QCONT_ASSIGN_OR_RETURN(rule.head, ParseAtom());
    if (rule.head.regex.has_value()) {
      return InvalidArgumentError("a rule head cannot be a regex atom");
    }
    if (Peek().kind == TokenKind::kImplies) {
      ++pos_;
      while (true) {
        QCONT_ASSIGN_OR_RETURN(SurfaceAtom atom, ParseAtom());
        rule.body.push_back(std::move(atom));
        if (Peek().kind == TokenKind::kComma) {
          ++pos_;
          continue;
        }
        break;
      }
    }
    QCONT_RETURN_IF_ERROR(Expect(TokenKind::kPeriod, "'.'"));
    rules_.push_back(std::move(rule));
    return Status::Ok();
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  std::vector<SurfaceRule> rules_;
  std::optional<std::string> goal_;
};

Result<RuleParser> ParseRules(const std::string& text) {
  Lexer lexer(text);
  QCONT_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  RuleParser parser(std::move(tokens));
  QCONT_ASSIGN_OR_RETURN(bool ok, parser.Parse());
  (void)ok;
  return parser;
}

Result<Atom> ToRelationalAtom(const SurfaceAtom& atom) {
  if (atom.regex.has_value()) {
    return InvalidArgumentError("regex atoms are only allowed in UC2RPQs");
  }
  return Atom(atom.predicate, atom.terms);
}

}  // namespace

Result<DatalogProgram> ParseProgram(const std::string& text) {
  QCONT_ASSIGN_OR_RETURN(RuleParser parser, ParseRules(text));
  if (parser.rules().empty()) {
    return InvalidArgumentError("program has no rules");
  }
  std::vector<Rule> rules;
  for (const SurfaceRule& sr : parser.rules()) {
    QCONT_ASSIGN_OR_RETURN(Atom head, ToRelationalAtom(sr.head));
    std::vector<Atom> body;
    for (const SurfaceAtom& sa : sr.body) {
      QCONT_ASSIGN_OR_RETURN(Atom atom, ToRelationalAtom(sa));
      body.push_back(std::move(atom));
    }
    rules.push_back(Rule{std::move(head), std::move(body)});
  }
  std::string goal = parser.goal().has_value()
                         ? *parser.goal()
                         : rules.front().head.predicate();
  DatalogProgram program(std::move(rules), std::move(goal));
  QCONT_RETURN_IF_ERROR(program.Validate());
  return program;
}

Result<UnionQuery> ParseUcq(const std::string& text) {
  QCONT_ASSIGN_OR_RETURN(RuleParser parser, ParseRules(text));
  if (parser.rules().empty()) {
    return InvalidArgumentError("UCQ has no disjuncts");
  }
  std::vector<ConjunctiveQuery> disjuncts;
  const std::string& head_pred = parser.rules().front().head.predicate;
  for (const SurfaceRule& sr : parser.rules()) {
    if (sr.head.predicate != head_pred) {
      return InvalidArgumentError("all UCQ disjuncts must share one head "
                                  "predicate; got '" +
                                  sr.head.predicate + "' and '" + head_pred +
                                  "'");
    }
    std::vector<Atom> atoms;
    for (const SurfaceAtom& sa : sr.body) {
      QCONT_ASSIGN_OR_RETURN(Atom atom, ToRelationalAtom(sa));
      atoms.push_back(std::move(atom));
    }
    disjuncts.emplace_back(sr.head.terms, std::move(atoms));
  }
  UnionQuery ucq(std::move(disjuncts));
  QCONT_RETURN_IF_ERROR(ucq.Validate());
  return ucq;
}

Result<UC2rpq> ParseUC2rpq(const std::string& text) {
  QCONT_ASSIGN_OR_RETURN(RuleParser parser, ParseRules(text));
  if (parser.rules().empty()) {
    return InvalidArgumentError("UC2RPQ has no disjuncts");
  }
  std::vector<C2rpq> disjuncts;
  for (const SurfaceRule& sr : parser.rules()) {
    std::vector<RpqAtom> atoms;
    for (const SurfaceAtom& sa : sr.body) {
      if (!sa.regex.has_value()) {
        return InvalidArgumentError(
            "UC2RPQ atoms must be regex atoms [expr](x, y)");
      }
      if (sa.terms.size() != 2) {
        return InvalidArgumentError("regex atoms take exactly two variables");
      }
      QCONT_ASSIGN_OR_RETURN(RpqAtom atom,
                             MakeRpqAtom(*sa.regex, sa.terms[0], sa.terms[1]));
      atoms.push_back(std::move(atom));
    }
    disjuncts.emplace_back(sr.head.terms, std::move(atoms));
  }
  UC2rpq out(std::move(disjuncts));
  QCONT_RETURN_IF_ERROR(out.Validate());
  return out;
}

Result<Database> ParseDatabase(const std::string& text) {
  QCONT_ASSIGN_OR_RETURN(RuleParser parser, ParseRules(text));
  Database db;
  for (const SurfaceRule& sr : parser.rules()) {
    if (!sr.body.empty()) {
      return InvalidArgumentError("database facts cannot have bodies");
    }
    QCONT_ASSIGN_OR_RETURN(Atom atom, ToRelationalAtom(sr.head));
    Tuple t;
    for (const Term& term : atom.terms()) {
      t.push_back(term.name());
    }
    db.AddFact(atom.predicate(), std::move(t));
  }
  return db;
}

}  // namespace qcont

#ifndef QCONT_STRUCTURE_CLASSIFY_H_
#define QCONT_STRUCTURE_CLASSIFY_H_

#include <string>

#include "base/status.h"
#include "cq/query.h"

namespace qcont {

/// Structural facts about a CQ, used to route containment problems to the
/// correct engine (see Section 4 of the paper).
struct CqClassification {
  bool acyclic = false;     // HW(1) = AC membership, via GYO
  int treewidth = -1;       // treewidth of the Gaifman graph
  bool treewidth_exact = false;
  int max_shared_vars = 0;  // max #variables shared by two distinct atoms
};

/// Classifies a single CQ. Treewidth is exact for queries with at most 20
/// variables and a min-fill upper bound beyond that.
Result<CqClassification> ClassifyCq(const ConjunctiveQuery& cq);

/// A UCQ is in TW(k) iff every disjunct is; the treewidth of a UCQ is the
/// max over disjuncts.
Result<CqClassification> ClassifyUcq(const UnionQuery& ucq);

/// Θ ∈ TW(k)?
Result<bool> InTreewidthClass(const UnionQuery& ucq, int k);

/// Θ ∈ AC (= HW(1))?
Result<bool> IsAcyclicUcq(const UnionQuery& ucq);

/// Θ ∈ ACk: acyclic and no two distinct atoms of a disjunct share more
/// than k variables. Returns the least such k, or kFailedPrecondition if
/// the UCQ is not acyclic. (Definition from Section 4.2.)
Result<int> AckLevel(const UnionQuery& ucq);

/// Maximum number of variables shared by two distinct atoms of the CQ.
int MaxSharedVariables(const ConjunctiveQuery& cq);

/// Human-readable summary, e.g. "AC2, TW(1)".
std::string DescribeClassification(const CqClassification& c);

}  // namespace qcont

#endif  // QCONT_STRUCTURE_CLASSIFY_H_

#include "structure/classify.h"

#include <algorithm>
#include <set>
#include <vector>

#include "structure/decomposition.h"
#include "structure/graph.h"
#include "structure/join_tree.h"
#include "structure/tree_decomposition.h"

namespace qcont {

int MaxSharedVariables(const ConjunctiveQuery& cq) {
  std::vector<std::set<std::string>> var_sets;
  var_sets.reserve(cq.atoms().size());
  for (const Atom& a : cq.atoms()) {
    std::set<std::string> vars;
    for (const Term& t : a.Variables()) vars.insert(t.name());
    var_sets.push_back(std::move(vars));
  }
  int best = 0;
  for (std::size_t i = 0; i < var_sets.size(); ++i) {
    for (std::size_t j = i + 1; j < var_sets.size(); ++j) {
      std::vector<std::string> shared;
      std::set_intersection(var_sets[i].begin(), var_sets[i].end(),
                            var_sets[j].begin(), var_sets[j].end(),
                            std::back_inserter(shared));
      best = std::max(best, static_cast<int>(shared.size()));
    }
  }
  return best;
}

Result<CqClassification> ClassifyCq(const ConjunctiveQuery& cq) {
  QCONT_RETURN_IF_ERROR(cq.Validate());
  CqClassification out;
  out.acyclic = IsAcyclic(cq);
  UndirectedGraph g = GaifmanGraph(cq);
  // Route through the certified decomposition builder: the reported width is
  // the (verified) width of an actual decomposition, never a bare number.
  DecompositionCertificate cert = DecomposeGraph(g);
  out.treewidth = std::max(0, cert.claimed_width);
  out.treewidth_exact = cert.exact;
  out.max_shared_vars = MaxSharedVariables(cq);
  return out;
}

Result<CqClassification> ClassifyUcq(const UnionQuery& ucq) {
  QCONT_RETURN_IF_ERROR(ucq.Validate());
  CqClassification out;
  out.acyclic = true;
  out.treewidth = 0;
  out.treewidth_exact = true;
  for (const ConjunctiveQuery& cq : ucq.disjuncts()) {
    QCONT_ASSIGN_OR_RETURN(CqClassification c, ClassifyCq(cq));
    out.acyclic = out.acyclic && c.acyclic;
    out.treewidth = std::max(out.treewidth, c.treewidth);
    out.treewidth_exact = out.treewidth_exact && c.treewidth_exact;
    out.max_shared_vars = std::max(out.max_shared_vars, c.max_shared_vars);
  }
  return out;
}

Result<bool> InTreewidthClass(const UnionQuery& ucq, int k) {
  QCONT_ASSIGN_OR_RETURN(CqClassification c, ClassifyUcq(ucq));
  if (c.treewidth <= k) return true;
  if (!c.treewidth_exact) {
    // The bound is only an upper bound; for large queries membership could
    // still hold. Report honestly.
    return FailedPreconditionError(
        "treewidth upper bound " + std::to_string(c.treewidth) +
        " exceeds k and the query is too large for the exact algorithm");
  }
  return false;
}

Result<bool> IsAcyclicUcq(const UnionQuery& ucq) {
  QCONT_RETURN_IF_ERROR(ucq.Validate());
  for (const ConjunctiveQuery& cq : ucq.disjuncts()) {
    if (!IsAcyclic(cq)) return false;
  }
  return true;
}

Result<int> AckLevel(const UnionQuery& ucq) {
  QCONT_ASSIGN_OR_RETURN(bool acyclic, IsAcyclicUcq(ucq));
  if (!acyclic) {
    return FailedPreconditionError("UCQ is not acyclic; ACk is undefined");
  }
  int k = 1;  // by convention AC1 is the lowest level of the hierarchy
  for (const ConjunctiveQuery& cq : ucq.disjuncts()) {
    k = std::max(k, MaxSharedVariables(cq));
  }
  return k;
}

std::string DescribeClassification(const CqClassification& c) {
  std::string out;
  out += c.acyclic ? "acyclic (AC" + std::to_string(std::max(1, c.max_shared_vars)) + ")"
                   : "cyclic";
  out += ", treewidth ";
  out += c.treewidth_exact ? "" : "<= ";
  out += std::to_string(c.treewidth);
  return out;
}

}  // namespace qcont

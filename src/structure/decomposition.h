#ifndef QCONT_STRUCTURE_DECOMPOSITION_H_
#define QCONT_STRUCTURE_DECOMPOSITION_H_

#include <string>
#include <utility>
#include <vector>

#include "base/status.h"
#include "cq/query.h"
#include "obs/obs.h"
#include "structure/graph.h"
#include "structure/join_tree.h"
#include "structure/tree_decomposition.h"

namespace qcont {

/// A hypergraph over vertices 0..num_vertices-1. For a CQ the vertices are
/// its variables and the hyperedges are the atoms' variable sets, so
/// generalized hypertree width 1 coincides with acyclicity (GYO).
struct Hypergraph {
  int num_vertices = 0;
  /// Sorted, deduplicated vertex lists (one per hyperedge).
  std::vector<std::vector<int>> edges;

  /// The primal (Gaifman) graph: vertices adjacent iff they share an edge.
  UndirectedGraph PrimalGraph() const;
};

/// The hypergraph of a CQ body. `variables` (optional) receives the vertex
/// order used (first occurrence over the atoms), matching GaifmanGraph.
Hypergraph CqHypergraph(const ConjunctiveQuery& cq,
                        std::vector<Term>* variables = nullptr);

/// What kind of width a certificate claims.
enum class DecompositionKind {
  kTree,                  // bags of variables; width = max |bag| - 1
  kGeneralizedHypertree,  // bags + hyperedge covers; width = max |cover|
};

/// Which builder produced a certificate (diagnostic surface only; the
/// verifier never trusts it).
enum class DecompositionMethod {
  kMinFill,
  kMinDegree,
  kExactBranchAndBound,
  kSetCover,
  kJoinTree,
};

const char* DecompositionKindName(DecompositionKind kind);
const char* DecompositionMethodName(DecompositionMethod method);

/// A checkable decomposition: the bags and tree edges, plus (for
/// generalized hypertree decompositions) the per-bag hyperedge covers and
/// the width the producer claims. Everything a polytime verifier needs is
/// inside the struct — see Gottlob-Leone-Scarcello: decompositions are not
/// only computable but *checkable*, so downstream consumers (the DP
/// evaluator, the advisor, the engine router) never have to trust the
/// heuristic that produced one.
struct DecompositionCertificate {
  DecompositionKind kind = DecompositionKind::kTree;
  DecompositionMethod method = DecompositionMethod::kMinFill;
  int num_vertices = 0;
  /// Sorted vertex lists.
  std::vector<std::vector<int>> bags;
  /// Decomposition tree edges (bag index pairs).
  std::vector<std::pair<int, int>> edges;
  /// kGeneralizedHypertree only: hyperedge indices covering each bag,
  /// parallel to `bags`. Empty for kTree certificates.
  std::vector<std::vector<int>> covers;
  /// The width the producer claims; VerifyCertificate recomputes and
  /// rejects any disagreement (an understated claim is exactly the bug a
  /// certificate exists to catch).
  int claimed_width = -1;
  /// True when the width is known optimal (exact branch-and-bound, or a
  /// join tree, which witnesses GHW = 1).
  bool exact = false;

  /// The width recomputed from the structure (never the claim): max
  /// |bag| - 1 for kTree, max |cover| for kGeneralizedHypertree.
  int Width() const;

  /// View as the legacy TreeDecomposition (bags + edges only).
  TreeDecomposition ToTreeDecomposition() const;
};

/// Independent polytime checker for tree certificates: the decomposition
/// tree is a forest over the bags, every vertex of `graph` occurs in some
/// bag, every edge of `graph` is contained in some bag, each vertex's bags
/// form a connected subtree, and the claimed width equals the recomputed
/// one. Shares no code with the builders.
Status VerifyCertificate(const DecompositionCertificate& certificate,
                         const UndirectedGraph& graph);

/// Independent checker for generalized hypertree certificates: forest +
/// connectedness as above, every *hyperedge* of `hypergraph` is contained
/// in some bag, every bag is contained in the union of its cover's
/// hyperedges, and the claimed width equals the largest cover. Vertices
/// occurring in no hyperedge are exempt from bag coverage.
Status VerifyCertificate(const DecompositionCertificate& certificate,
                         const Hypergraph& hypergraph);

/// Min-degree heuristic elimination order (cheaper than min-fill, often
/// comparable width; the builder takes the better of the two).
std::vector<int> MinDegreeOrder(const UndirectedGraph& g);

/// Exact minimum-width elimination order by iterative-deepening
/// branch-and-bound over elimination prefixes (memoized on the eliminated
/// set, pruned by a degeneracy lower bound and the best heuristic order).
/// kResourceExhausted beyond `max_vertices` vertices.
Result<std::vector<int>> ExactEliminationOrder(const UndirectedGraph& g,
                                               int max_vertices = 20);

/// Degeneracy of the graph: max over the min-degree elimination of the
/// minimum degree encountered. A lower bound on treewidth.
int DegeneracyLowerBound(const UndirectedGraph& g);

struct DecomposeOptions {
  /// Largest graph the exact branch-and-bound is attempted on; bigger
  /// graphs take the better of the min-fill / min-degree heuristics.
  int exact_max_vertices = 20;
  /// Observability sink (optional, borrowed): `decomp/build` spans and
  /// `analysis.decompositions` / `analysis.certificates_verified` counters.
  const ObsContext* obs = nullptr;
};

/// Builds a *verified* tree-decomposition certificate of `g`: the exact
/// branch-and-bound for small graphs, otherwise the better of the min-fill
/// and min-degree heuristic orders. The returned certificate has passed
/// VerifyCertificate (a verification failure here is a builder bug and
/// aborts via QCONT_CHECK).
DecompositionCertificate DecomposeGraph(const UndirectedGraph& g,
                                        const DecomposeOptions& options = {});

/// Builds a *verified* generalized-hypertree certificate of `h`: a tree
/// decomposition of the primal graph whose bags are covered by greedy set
/// cover over the hyperedges. The claimed width is an upper bound on
/// ghw(h); it is exact (=1) iff the hypergraph is acyclic.
DecompositionCertificate DecomposeHypergraph(const Hypergraph& h,
                                             const DecomposeOptions& options = {});

/// Certificate view of a join tree of an acyclic CQ: bags are the atoms'
/// variable sets, each covered by its own atom — a width-1 generalized
/// hypertree decomposition. Returns the certificate *after* verifying it
/// against CqHypergraph(cq); kInternal if the join tree is not valid for
/// the query. This is how the ACk/ACRk engines route their join trees
/// through the certified checker.
Result<DecompositionCertificate> CertificateFromJoinTree(
    const ConjunctiveQuery& cq, const JoinTree& join_tree);

}  // namespace qcont

#endif  // QCONT_STRUCTURE_DECOMPOSITION_H_

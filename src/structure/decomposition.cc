#include "structure/decomposition.h"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <map>
#include <set>
#include <unordered_set>

#include "base/check.h"

namespace qcont {

UndirectedGraph Hypergraph::PrimalGraph() const {
  UndirectedGraph g(static_cast<std::size_t>(num_vertices));
  for (const std::vector<int>& edge : edges) {
    for (std::size_t i = 0; i < edge.size(); ++i) {
      for (std::size_t j = i + 1; j < edge.size(); ++j) {
        g.AddEdge(edge[i], edge[j]);
      }
    }
  }
  return g;
}

Hypergraph CqHypergraph(const ConjunctiveQuery& cq,
                        std::vector<Term>* variables) {
  Hypergraph h;
  std::map<std::string, int> index;
  std::vector<Term> order;
  for (const Atom& atom : cq.atoms()) {
    std::vector<int> edge;
    for (const Term& t : atom.Variables()) {
      auto [it, inserted] = index.emplace(t.name(), static_cast<int>(order.size()));
      if (inserted) order.push_back(t);
      edge.push_back(it->second);
    }
    std::sort(edge.begin(), edge.end());
    edge.erase(std::unique(edge.begin(), edge.end()), edge.end());
    h.edges.push_back(std::move(edge));
  }
  h.num_vertices = static_cast<int>(order.size());
  if (variables != nullptr) *variables = std::move(order);
  return h;
}

const char* DecompositionKindName(DecompositionKind kind) {
  switch (kind) {
    case DecompositionKind::kTree: return "tree";
    case DecompositionKind::kGeneralizedHypertree: return "generalized-hypertree";
  }
  return "unknown";
}

const char* DecompositionMethodName(DecompositionMethod method) {
  switch (method) {
    case DecompositionMethod::kMinFill: return "min-fill";
    case DecompositionMethod::kMinDegree: return "min-degree";
    case DecompositionMethod::kExactBranchAndBound: return "exact-bnb";
    case DecompositionMethod::kSetCover: return "set-cover";
    case DecompositionMethod::kJoinTree: return "join-tree";
  }
  return "unknown";
}

int DecompositionCertificate::Width() const {
  if (kind == DecompositionKind::kTree) {
    int width = -1;
    for (const auto& bag : bags) {
      width = std::max(width, static_cast<int>(bag.size()) - 1);
    }
    return width;
  }
  int width = 0;
  for (const auto& cover : covers) {
    width = std::max(width, static_cast<int>(cover.size()));
  }
  return width;
}

TreeDecomposition DecompositionCertificate::ToTreeDecomposition() const {
  TreeDecomposition td;
  td.bags = bags;
  td.edges = edges;
  return td;
}

namespace {

// The structural conditions shared by both certificate kinds: well-formed
// sorted bags, a forest over the bags, and per-vertex connectedness.
// Written against the certificate alone, independent of any builder state.
Status VerifyTreeShape(const DecompositionCertificate& c,
                       std::vector<std::vector<int>>* bags_of_vertex) {
  const int n_bags = static_cast<int>(c.bags.size());
  for (const std::vector<int>& bag : c.bags) {
    for (std::size_t i = 0; i < bag.size(); ++i) {
      if (bag[i] < 0 || bag[i] >= c.num_vertices) {
        return InvalidArgumentError("certificate: bag vertex out of range");
      }
      if (i > 0 && bag[i - 1] >= bag[i]) {
        return InvalidArgumentError(
            "certificate: bag not sorted/deduplicated");
      }
    }
  }
  std::vector<std::vector<int>> tree(n_bags);
  for (auto [a, b] : c.edges) {
    if (a < 0 || b < 0 || a >= n_bags || b >= n_bags || a == b) {
      return InvalidArgumentError("certificate: tree edge out of range");
    }
    tree[a].push_back(b);
    tree[b].push_back(a);
  }
  {
    // Forest check by union-find.
    std::vector<int> parent(n_bags);
    for (int i = 0; i < n_bags; ++i) parent[i] = i;
    auto find = [&](int x) {
      while (parent[x] != x) x = parent[x] = parent[parent[x]];
      return x;
    };
    for (auto [a, b] : c.edges) {
      int ra = find(a), rb = find(b);
      if (ra == rb) {
        return InvalidArgumentError("certificate: decomposition tree has a cycle");
      }
      parent[ra] = rb;
    }
  }
  bags_of_vertex->assign(static_cast<std::size_t>(c.num_vertices), {});
  for (int t = 0; t < n_bags; ++t) {
    for (int v : c.bags[t]) (*bags_of_vertex)[v].push_back(t);
  }
  // Connectedness: the bags of each vertex must induce a connected subtree.
  for (int v = 0; v < c.num_vertices; ++v) {
    const std::vector<int>& mine = (*bags_of_vertex)[v];
    if (mine.empty()) continue;  // coverage is the caller's (kind-specific) job
    std::set<int> mine_set(mine.begin(), mine.end());
    std::set<int> reached = {mine.front()};
    std::vector<int> stack = {mine.front()};
    while (!stack.empty()) {
      int t = stack.back();
      stack.pop_back();
      for (int s : tree[t]) {
        if (mine_set.count(s) && !reached.count(s)) {
          reached.insert(s);
          stack.push_back(s);
        }
      }
    }
    if (reached.size() != mine_set.size()) {
      return InvalidArgumentError("certificate: bags of vertex " +
                                  std::to_string(v) +
                                  " are not connected in the tree");
    }
  }
  return Status::Ok();
}

bool BagContains(const std::vector<int>& bag, int v) {
  return std::binary_search(bag.begin(), bag.end(), v);
}

}  // namespace

Status VerifyCertificate(const DecompositionCertificate& c,
                         const UndirectedGraph& graph) {
  if (c.kind != DecompositionKind::kTree) {
    return InvalidArgumentError(
        "certificate: tree verification on a non-tree certificate");
  }
  if (c.num_vertices != static_cast<int>(graph.NumVertices())) {
    return InvalidArgumentError("certificate: vertex count mismatch");
  }
  std::vector<std::vector<int>> bags_of;
  QCONT_RETURN_IF_ERROR(VerifyTreeShape(c, &bags_of));
  // Vertex coverage: every graph vertex occurs in some bag.
  for (int v = 0; v < c.num_vertices; ++v) {
    if (bags_of[v].empty()) {
      return InvalidArgumentError("certificate: vertex " + std::to_string(v) +
                                  " appears in no bag");
    }
  }
  // Edge coverage: both endpoints of every graph edge share a bag.
  for (std::size_t v = 0; v < graph.NumVertices(); ++v) {
    for (int u : graph.Neighbors(static_cast<int>(v))) {
      if (u < static_cast<int>(v)) continue;
      bool covered = false;
      for (int t : bags_of[v]) {
        if (BagContains(c.bags[t], u)) {
          covered = true;
          break;
        }
      }
      if (!covered) {
        return InvalidArgumentError("certificate: edge (" + std::to_string(v) +
                                    "," + std::to_string(u) +
                                    ") contained in no bag");
      }
    }
  }
  if (c.claimed_width != c.Width()) {
    return InvalidArgumentError(
        "certificate: claimed width " + std::to_string(c.claimed_width) +
        " does not match actual width " + std::to_string(c.Width()));
  }
  return Status::Ok();
}

Status VerifyCertificate(const DecompositionCertificate& c,
                         const Hypergraph& hypergraph) {
  if (c.kind != DecompositionKind::kGeneralizedHypertree) {
    return InvalidArgumentError(
        "certificate: hypertree verification on a non-hypertree certificate");
  }
  if (c.num_vertices != hypergraph.num_vertices) {
    return InvalidArgumentError("certificate: vertex count mismatch");
  }
  if (c.covers.size() != c.bags.size()) {
    return InvalidArgumentError("certificate: covers not parallel to bags");
  }
  std::vector<std::vector<int>> bags_of;
  QCONT_RETURN_IF_ERROR(VerifyTreeShape(c, &bags_of));
  // Every vertex that occurs in some hyperedge must occur in some bag.
  std::vector<bool> in_some_edge(static_cast<std::size_t>(c.num_vertices),
                                 false);
  for (const std::vector<int>& edge : hypergraph.edges) {
    for (int v : edge) {
      if (v < 0 || v >= c.num_vertices) {
        return InvalidArgumentError("certificate: hyperedge vertex out of range");
      }
      in_some_edge[v] = true;
    }
  }
  for (int v = 0; v < c.num_vertices; ++v) {
    if (in_some_edge[v] && bags_of[v].empty()) {
      return InvalidArgumentError("certificate: vertex " + std::to_string(v) +
                                  " appears in no bag");
    }
  }
  // Hyperedge coverage: each hyperedge is contained in some bag.
  for (std::size_t e = 0; e < hypergraph.edges.size(); ++e) {
    const std::vector<int>& edge = hypergraph.edges[e];
    bool covered = edge.empty();
    if (!covered) {
      for (int t : bags_of[edge.front()]) {
        if (std::includes(c.bags[t].begin(), c.bags[t].end(), edge.begin(),
                          edge.end())) {
          covered = true;
          break;
        }
      }
    }
    if (!covered) {
      return InvalidArgumentError("certificate: hyperedge " +
                                  std::to_string(e) + " contained in no bag");
    }
  }
  // Cover condition: each bag lies inside the union of its cover edges.
  for (std::size_t t = 0; t < c.bags.size(); ++t) {
    std::set<int> covered;
    for (int e : c.covers[t]) {
      if (e < 0 || e >= static_cast<int>(hypergraph.edges.size())) {
        return InvalidArgumentError("certificate: cover edge index out of range");
      }
      covered.insert(hypergraph.edges[e].begin(), hypergraph.edges[e].end());
    }
    for (int v : c.bags[t]) {
      if (!in_some_edge[v]) continue;  // isolated vertices need no cover
      if (!covered.count(v)) {
        return InvalidArgumentError(
            "certificate: bag " + std::to_string(t) + " vertex " +
            std::to_string(v) + " not covered by its hyperedges");
      }
    }
  }
  if (c.claimed_width != c.Width()) {
    return InvalidArgumentError(
        "certificate: claimed width " + std::to_string(c.claimed_width) +
        " does not match actual width " + std::to_string(c.Width()));
  }
  return Status::Ok();
}

namespace {

std::vector<std::set<int>> CopyAdjacency(const UndirectedGraph& g) {
  std::vector<std::set<int>> adj(g.NumVertices());
  for (std::size_t v = 0; v < g.NumVertices(); ++v) {
    adj[v] = g.Neighbors(static_cast<int>(v));
  }
  return adj;
}

void EliminateWithFill(std::vector<std::set<int>>* adj, int v) {
  std::vector<int> nbrs((*adj)[v].begin(), (*adj)[v].end());
  for (std::size_t i = 0; i < nbrs.size(); ++i) {
    for (std::size_t j = i + 1; j < nbrs.size(); ++j) {
      (*adj)[nbrs[i]].insert(nbrs[j]);
      (*adj)[nbrs[j]].insert(nbrs[i]);
    }
  }
  for (int u : nbrs) (*adj)[u].erase(v);
  (*adj)[v].clear();
}

// |N(v)| in the fill graph once the vertices of `eliminated_mask` are gone:
// vertices outside the mask reachable from v via paths whose internal
// vertices all lie inside the mask.
int FillNeighborhoodSize(const UndirectedGraph& g, int v,
                         std::uint32_t eliminated_mask) {
  std::uint32_t visited = 1u << v;
  std::uint32_t reached = 0;
  std::vector<int> stack = {v};
  while (!stack.empty()) {
    int x = stack.back();
    stack.pop_back();
    for (int u : g.Neighbors(x)) {
      std::uint32_t bit = 1u << u;
      if (visited & bit) continue;
      visited |= bit;
      if (eliminated_mask & bit) {
        stack.push_back(u);
      } else {
        reached |= bit;
      }
    }
  }
  return __builtin_popcount(reached);
}

}  // namespace

std::vector<int> MinDegreeOrder(const UndirectedGraph& g) {
  std::vector<std::set<int>> adj = CopyAdjacency(g);
  std::vector<bool> eliminated(g.NumVertices(), false);
  std::vector<int> order;
  order.reserve(g.NumVertices());
  for (std::size_t round = 0; round < g.NumVertices(); ++round) {
    int best = -1;
    std::size_t best_degree = std::numeric_limits<std::size_t>::max();
    for (std::size_t v = 0; v < g.NumVertices(); ++v) {
      if (eliminated[v]) continue;
      if (adj[v].size() < best_degree) {
        best_degree = adj[v].size();
        best = static_cast<int>(v);
      }
    }
    eliminated[best] = true;
    order.push_back(best);
    EliminateWithFill(&adj, best);
  }
  return order;
}

int DegeneracyLowerBound(const UndirectedGraph& g) {
  // Min-degree elimination *without* fill; the largest minimum degree seen
  // is the degeneracy, a treewidth lower bound.
  std::vector<std::set<int>> adj = CopyAdjacency(g);
  std::vector<bool> removed(g.NumVertices(), false);
  int bound = 0;
  for (std::size_t round = 0; round < g.NumVertices(); ++round) {
    int best = -1;
    std::size_t best_degree = std::numeric_limits<std::size_t>::max();
    for (std::size_t v = 0; v < g.NumVertices(); ++v) {
      if (removed[v]) continue;
      if (adj[v].size() < best_degree) {
        best_degree = adj[v].size();
        best = static_cast<int>(v);
      }
    }
    bound = std::max(bound, static_cast<int>(best_degree));
    removed[best] = true;
    for (int u : adj[best]) adj[u].erase(best);
    adj[best].clear();
  }
  return bound;
}

namespace {

// Depth-first branch-and-bound: find an elimination order whose bags all
// have at most `k + 1` vertices. `failed` memoizes eliminated-sets from
// which no completion exists at this k.
bool OrderWithinWidth(const UndirectedGraph& g, int k, std::uint32_t mask,
                      int remaining, std::unordered_set<std::uint32_t>* failed,
                      std::vector<int>* order) {
  const int n = static_cast<int>(g.NumVertices());
  if (remaining == 0) return true;
  if (remaining <= k + 1) {
    // Any order of the rest produces bags of at most `remaining` vertices.
    for (int v = 0; v < n; ++v) {
      if (!(mask & (1u << v))) order->push_back(v);
    }
    return true;
  }
  if (failed->count(mask)) return false;
  for (int v = 0; v < n; ++v) {
    const std::uint32_t bit = 1u << v;
    if (mask & bit) continue;
    if (FillNeighborhoodSize(g, v, mask) > k) continue;
    order->push_back(v);
    if (OrderWithinWidth(g, k, mask | bit, remaining - 1, failed, order)) {
      return true;
    }
    order->pop_back();
  }
  failed->insert(mask);
  return false;
}

}  // namespace

Result<std::vector<int>> ExactEliminationOrder(const UndirectedGraph& g,
                                               int max_vertices) {
  const int n = static_cast<int>(g.NumVertices());
  if (n > max_vertices || n > 30) {
    return ResourceExhaustedError(
        "exact elimination order limited to " + std::to_string(max_vertices) +
        " vertices, got " + std::to_string(n));
  }
  if (n == 0) return std::vector<int>{};
  // Upper bound: the better heuristic order.
  std::vector<int> best_order = MinFillOrder(g);
  int ub = DecompositionFromOrder(g, best_order).Width();
  {
    std::vector<int> md = MinDegreeOrder(g);
    int w = DecompositionFromOrder(g, md).Width();
    if (w < ub) {
      ub = w;
      best_order = std::move(md);
    }
  }
  // Iterative deepening from the degeneracy lower bound: the first k that
  // admits an order is the treewidth.
  for (int k = DegeneracyLowerBound(g); k < ub; ++k) {
    std::unordered_set<std::uint32_t> failed;
    std::vector<int> order;
    order.reserve(g.NumVertices());
    if (OrderWithinWidth(g, k, 0, n, &failed, &order)) return order;
  }
  return best_order;  // no k < ub succeeded, so the heuristic was optimal
}

namespace {

DecompositionCertificate CertificateFromTreeDecomposition(
    const TreeDecomposition& td, DecompositionMethod method, int num_vertices,
    bool exact) {
  DecompositionCertificate c;
  c.kind = DecompositionKind::kTree;
  c.method = method;
  c.num_vertices = num_vertices;
  c.bags = td.bags;
  c.edges = td.edges;
  c.claimed_width = c.Width();
  c.exact = exact;
  return c;
}

}  // namespace

DecompositionCertificate DecomposeGraph(const UndirectedGraph& g,
                                        const DecomposeOptions& options) {
  ObsSpan span(options.obs, "decomp/build", "structure");
  DecompositionCertificate out;
  const int n = static_cast<int>(g.NumVertices());
  if (n <= options.exact_max_vertices) {
    Result<std::vector<int>> order = ExactEliminationOrder(
        g, options.exact_max_vertices);
    QCONT_CHECK(order.ok());
    out = CertificateFromTreeDecomposition(
        DecompositionFromOrder(g, *order),
        DecompositionMethod::kExactBranchAndBound, n, /*exact=*/true);
  } else {
    TreeDecomposition fill = DecompositionFromOrder(g, MinFillOrder(g));
    TreeDecomposition degree = DecompositionFromOrder(g, MinDegreeOrder(g));
    if (degree.Width() < fill.Width()) {
      out = CertificateFromTreeDecomposition(
          degree, DecompositionMethod::kMinDegree, n, /*exact=*/false);
    } else {
      out = CertificateFromTreeDecomposition(
          fill, DecompositionMethod::kMinFill, n, /*exact=*/false);
    }
  }
  // A certificate that fails its own verifier is a builder bug, never an
  // input property: fail fast.
  Status verified = VerifyCertificate(out, g);
  QCONT_CHECK(verified.ok());
  ObsCount(options.obs, "analysis.decompositions", 1);
  ObsCount(options.obs, "analysis.certificates_verified", 1);
  span.AddArg("vertices", static_cast<std::uint64_t>(n));
  span.AddArg("width", static_cast<std::uint64_t>(
                           std::max(0, out.claimed_width)));
  span.AddArg("exact", out.exact ? 1 : 0);
  return out;
}

DecompositionCertificate DecomposeHypergraph(const Hypergraph& h,
                                             const DecomposeOptions& options) {
  ObsSpan span(options.obs, "decomp/build_hypertree", "structure");
  DecompositionCertificate tree = DecomposeGraph(h.PrimalGraph(), options);
  DecompositionCertificate out;
  out.kind = DecompositionKind::kGeneralizedHypertree;
  out.method = DecompositionMethod::kSetCover;
  out.num_vertices = h.num_vertices;
  out.bags = std::move(tree.bags);
  out.edges = std::move(tree.edges);
  out.covers.resize(out.bags.size());
  std::vector<bool> in_some_edge(static_cast<std::size_t>(h.num_vertices),
                                 false);
  for (const std::vector<int>& edge : h.edges) {
    for (int v : edge) in_some_edge[v] = true;
  }
  for (std::size_t t = 0; t < out.bags.size(); ++t) {
    // Greedy set cover of the bag by hyperedges: repeatedly take the edge
    // covering the most still-uncovered bag vertices (lowest index on ties,
    // for determinism).
    std::set<int> uncovered;
    for (int v : out.bags[t]) {
      if (in_some_edge[v]) uncovered.insert(v);
    }
    while (!uncovered.empty()) {
      int best_edge = -1;
      int best_gain = 0;
      for (std::size_t e = 0; e < h.edges.size(); ++e) {
        int gain = 0;
        for (int v : h.edges[e]) gain += uncovered.count(v) ? 1 : 0;
        if (gain > best_gain) {
          best_gain = gain;
          best_edge = static_cast<int>(e);
        }
      }
      QCONT_CHECK(best_edge >= 0);  // every vertex here is in some edge
      out.covers[t].push_back(best_edge);
      for (int v : h.edges[best_edge]) uncovered.erase(v);
    }
  }
  out.claimed_width = out.Width();
  // ghw >= 1 whenever some hyperedge is nonempty, so a width-1 cover (which
  // certifies acyclicity) is already optimal; wider covers are heuristic.
  out.exact = out.claimed_width <= 1;
  Status verified = VerifyCertificate(out, h);
  QCONT_CHECK(verified.ok());
  ObsCount(options.obs, "analysis.decompositions", 1);
  ObsCount(options.obs, "analysis.certificates_verified", 1);
  span.AddArg("hyperedges", h.edges.size());
  span.AddArg("ghw", static_cast<std::uint64_t>(out.claimed_width));
  return out;
}

Result<DecompositionCertificate> CertificateFromJoinTree(
    const ConjunctiveQuery& cq, const JoinTree& join_tree) {
  Hypergraph h = CqHypergraph(cq);
  if (join_tree.parent.size() != h.edges.size()) {
    return InternalError("join tree size does not match the query");
  }
  DecompositionCertificate c;
  c.kind = DecompositionKind::kGeneralizedHypertree;
  c.method = DecompositionMethod::kJoinTree;
  c.num_vertices = h.num_vertices;
  c.bags = h.edges;  // bag i = variables of atom i, already sorted
  c.covers.resize(c.bags.size());
  for (std::size_t i = 0; i < c.bags.size(); ++i) {
    c.covers[i] = {static_cast<int>(i)};
  }
  for (std::size_t i = 0; i < join_tree.parent.size(); ++i) {
    if (join_tree.parent[i] >= 0) {
      c.edges.emplace_back(static_cast<int>(i), join_tree.parent[i]);
    }
  }
  c.claimed_width = c.Width();
  c.exact = true;  // width 1 = acyclicity, which the join tree witnesses
  QCONT_RETURN_IF_ERROR(VerifyCertificate(c, h));
  return c;
}

}  // namespace qcont

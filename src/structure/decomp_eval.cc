#include "structure/decomp_eval.h"

#include <algorithm>
#include <functional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "base/hash.h"
#include "obs/obs.h"
#include "structure/decomposition.h"
#include "structure/graph.h"

namespace qcont {

namespace {

using ValueSet = std::unordered_set<std::vector<ValueId>, VectorHash<ValueId>>;

struct RootedForest {
  std::vector<std::vector<int>> children;
  std::vector<int> parent;
  std::vector<int> post_order;
};

RootedForest Root(std::size_t n, const std::vector<std::pair<int, int>>& edges) {
  RootedForest f;
  f.children.resize(n);
  f.parent.assign(n, -1);
  std::vector<std::vector<int>> adj(n);
  for (auto [a, b] : edges) {
    adj[a].push_back(b);
    adj[b].push_back(a);
  }
  std::vector<bool> seen(n, false);
  std::vector<int> pre;
  for (std::size_t r = 0; r < n; ++r) {
    if (seen[r]) continue;
    seen[r] = true;
    std::vector<int> stack = {static_cast<int>(r)};
    while (!stack.empty()) {
      int v = stack.back();
      stack.pop_back();
      pre.push_back(v);
      for (int u : adj[v]) {
        if (!seen[u]) {
          seen[u] = true;
          f.parent[u] = v;
          f.children[v].push_back(u);
          stack.push_back(u);
        }
      }
    }
  }
  f.post_order.assign(pre.rbegin(), pre.rend());
  return f;
}

}  // namespace

namespace {

Result<bool> BoundedWidthSatisfiableImpl(const ConjunctiveQuery& cq,
                                         const Database& db,
                                         const Assignment& fixed,
                                         DecompEvalStats* stats,
                                         const ObsContext* obs) {
  QCONT_RETURN_IF_ERROR(cq.Validate());
  if (cq.atoms().empty()) return true;

  std::vector<Term> vars;
  UndirectedGraph gaifman = GaifmanGraph(cq, &vars);
  DecomposeOptions decompose_options;
  decompose_options.obs = obs;
  // Heuristic orders only: this runs per evaluation call, so it keeps the
  // old per-call cost profile (best of min-fill/min-degree, now verified).
  // The exact branch-and-bound is reserved for the cached analysis report,
  // which is built once per query.
  decompose_options.exact_max_vertices = 0;
  DecompositionCertificate cert = DecomposeGraph(gaifman, decompose_options);
  TreeDecomposition td = cert.ToTreeDecomposition();
  if (stats != nullptr) stats->width_used = td.Width();
  ObsSpan dp_span(obs, "decomp/dp", "structure");
  dp_span.AddArg("bags", td.bags.size());
  dp_span.AddArg("width", static_cast<std::uint64_t>(td.Width()));
  RootedForest forest = Root(td.bags.size(), td.edges);

  // Assign every atom to a bag containing all of its variables; the
  // variables of an atom form a clique of the Gaifman graph, so such a bag
  // exists in any valid decomposition.
  std::unordered_map<std::string, int> var_index;
  for (std::size_t i = 0; i < vars.size(); ++i) {
    var_index.emplace(vars[i].name(), static_cast<int>(i));
  }
  std::vector<std::vector<int>> atoms_of_bag(td.bags.size());
  for (std::size_t a = 0; a < cq.atoms().size(); ++a) {
    std::vector<int> atom_vars;
    for (const Term& t : cq.atoms()[a].Variables()) {
      atom_vars.push_back(var_index.at(t.name()));
    }
    std::sort(atom_vars.begin(), atom_vars.end());
    bool placed = false;
    for (std::size_t b = 0; b < td.bags.size() && !placed; ++b) {
      if (std::includes(td.bags[b].begin(), td.bags[b].end(), atom_vars.begin(),
                        atom_vars.end())) {
        atoms_of_bag[b].push_back(static_cast<int>(a));
        placed = true;
      }
    }
    if (!placed) {
      return InternalError("atom clique not covered by any bag");
    }
  }

  const std::vector<ValueId>& domain = db.ActiveDomainIds();

  // Compile atoms once: relation ids, constant ids and variable indices are
  // resolved up front so the hot bag loop only touches ValueIds. A constant
  // (or relation) that was never interned can match no row; `HasRow` on the
  // kNoValue/kNoRelation sentinels returns false, which reproduces the
  // string path's behaviour without a special case.
  struct CompiledAtom {
    RelationId rel = kNoRelation;
    std::vector<ValueId> const_ids;  // per term: id, or kNoValue for a var
    std::vector<int> var_of;         // per term: var index, or -1
  };
  std::vector<CompiledAtom> compiled(cq.atoms().size());
  for (std::size_t a = 0; a < cq.atoms().size(); ++a) {
    const Atom& atom = cq.atoms()[a];
    CompiledAtom& ca = compiled[a];
    ca.rel = db.RelationIdOf(atom.predicate());
    ca.const_ids.reserve(atom.arity());
    ca.var_of.reserve(atom.arity());
    for (const Term& term : atom.terms()) {
      if (term.is_constant()) {
        ca.const_ids.push_back(db.ValueIdOf(term.name()));
        ca.var_of.push_back(-1);
      } else {
        ca.const_ids.push_back(kNoValue);
        ca.var_of.push_back(var_index.at(term.name()));
      }
    }
  }

  // survivors[b] = projections of b's surviving assignments onto the
  // variables shared with b's parent bag (whole bag for roots: we only need
  // non-emptiness there, so project onto the empty tuple instead).
  std::vector<ValueSet> survivors(td.bags.size());

  for (int b : forest.post_order) {
    const std::vector<int>& bag = td.bags[b];
    // Shared positions with parent / children.
    std::vector<int> parent_shared;  // indices into `bag`
    if (forest.parent[b] >= 0) {
      const std::vector<int>& pbag = td.bags[forest.parent[b]];
      for (std::size_t i = 0; i < bag.size(); ++i) {
        if (std::binary_search(pbag.begin(), pbag.end(), bag[i])) {
          parent_shared.push_back(static_cast<int>(i));
        }
      }
    }
    struct ChildLink {
      int child;
      std::vector<int> positions;  // indices into `bag`, aligned with the
                                   // child's parent_shared projection order
    };
    std::vector<ChildLink> links;
    for (int c : forest.children[b]) {
      ChildLink link;
      link.child = c;
      const std::vector<int>& cbag = td.bags[c];
      for (std::size_t i = 0; i < cbag.size(); ++i) {
        if (std::binary_search(bag.begin(), bag.end(), cbag[i])) {
          // Position of cbag[i] inside `bag`.
          auto it = std::lower_bound(bag.begin(), bag.end(), cbag[i]);
          link.positions.push_back(static_cast<int>(it - bag.begin()));
        }
      }
      links.push_back(std::move(link));
    }

    // Bind this bag's atoms to bag positions once, so each enumerated
    // assignment fills a row buffer with plain index lookups.
    struct BagAtom {
      RelationId rel;
      const std::vector<ValueId>* const_ids;
      std::vector<int> pos;  // per term: index into `bag`, or -1 (constant)
    };
    std::vector<BagAtom> bag_atoms;
    bag_atoms.reserve(atoms_of_bag[b].size());
    for (int a : atoms_of_bag[b]) {
      const CompiledAtom& ca = compiled[a];
      BagAtom ba{ca.rel, &ca.const_ids, {}};
      ba.pos.reserve(ca.var_of.size());
      for (int v : ca.var_of) {
        if (v < 0) {
          ba.pos.push_back(-1);
        } else {
          auto it = std::lower_bound(bag.begin(), bag.end(), v);
          ba.pos.push_back(static_cast<int>(it - bag.begin()));
        }
      }
      bag_atoms.push_back(std::move(ba));
    }
    // Resolve fixed variables to ids once per bag. A fixed value that was
    // never interned keeps the kNoValue sentinel: atoms over it fail
    // HasRow, and projections carry the sentinel consistently.
    std::vector<ValueId> fixed_ids(bag.size(), kNoValue);
    std::vector<bool> is_fixed(bag.size(), false);
    for (std::size_t i = 0; i < bag.size(); ++i) {
      auto it = fixed.find(gaifman.Label(bag[i]));
      if (it != fixed.end()) {
        is_fixed[i] = true;
        fixed_ids[i] = db.ValueIdOf(it->second);
      }
    }

    // Enumerate assignments to the bag variables.
    std::vector<ValueId> assignment(bag.size());
    std::vector<ValueId> row;
    bool any = false;
    std::function<void(std::size_t)> enumerate = [&](std::size_t i) {
      if (i == bag.size()) {
        if (stats != nullptr) ++stats->bag_assignments;
        // Check atoms assigned to this bag.
        for (const BagAtom& ba : bag_atoms) {
          row.clear();
          for (std::size_t j = 0; j < ba.pos.size(); ++j) {
            row.push_back(ba.pos[j] < 0 ? (*ba.const_ids)[j]
                                        : assignment[ba.pos[j]]);
          }
          if (!db.HasRow(ba.rel, row)) return;
        }
        // Check children support.
        for (const ChildLink& link : links) {
          std::vector<ValueId> key;
          key.reserve(link.positions.size());
          for (int p : link.positions) key.push_back(assignment[p]);
          if (!survivors[link.child].count(key)) return;
        }
        any = true;
        std::vector<ValueId> key;
        key.reserve(parent_shared.size());
        for (int p : parent_shared) key.push_back(assignment[p]);
        survivors[b].insert(std::move(key));
        return;
      }
      if (is_fixed[i]) {
        assignment[i] = fixed_ids[i];
        enumerate(i + 1);
        return;
      }
      for (ValueId v : domain) {
        assignment[i] = v;
        enumerate(i + 1);
      }
    };
    enumerate(0);
    if (forest.parent[b] < 0 && !any) return false;
    if (survivors[b].empty() && forest.parent[b] >= 0) {
      // Early exit: this whole component is unsatisfiable.
      return false;
    }
  }
  return true;
}

}  // namespace

// Publish funnel: `bag_assignments` is bumped per enumerated bag tuple (far
// too hot for inline registry writes), so gather the run's deltas locally
// and publish once at the end — the same deltas the legacy sink receives.
Result<bool> BoundedWidthSatisfiable(const ConjunctiveQuery& cq,
                                     const Database& db,
                                     const Assignment& fixed,
                                     DecompEvalStats* stats,
                                     const ObsContext* obs) {
  MetricRegistry* metrics = ObsMetrics(obs);
  if (metrics == nullptr) {
    return BoundedWidthSatisfiableImpl(cq, db, fixed, stats, obs);
  }
  DecompEvalStats run;
  Result<bool> result = BoundedWidthSatisfiableImpl(cq, db, fixed, &run, obs);
  metrics->Add("decomp.bag_assignments", run.bag_assignments);
  if (run.width_used >= 0) {
    metrics->SetGauge("decomp.width_used",
                      static_cast<std::uint64_t>(run.width_used));
  }
  if (stats != nullptr) {
    stats->bag_assignments += run.bag_assignments;
    if (run.width_used >= 0) stats->width_used = run.width_used;
  }
  return result;
}

Result<bool> CqContainedBoundedTwRhs(const ConjunctiveQuery& theta,
                                     const ConjunctiveQuery& theta_prime,
                                     DecompEvalStats* stats,
                                     const ObsContext* obs) {
  QCONT_RETURN_IF_ERROR(theta.Validate());
  QCONT_RETURN_IF_ERROR(theta_prime.Validate());
  if (theta.arity() != theta_prime.arity()) {
    return InvalidArgumentError("arity mismatch in containment test");
  }
  Database canonical = CanonicalDatabase(theta);
  Tuple frozen = CanonicalHead(theta);
  Assignment fixed;
  for (std::size_t i = 0; i < theta_prime.head().size(); ++i) {
    const std::string& var = theta_prime.head()[i].name();
    auto it = fixed.find(var);
    if (it != fixed.end()) {
      if (it->second != frozen[i]) return false;
    } else {
      fixed.emplace(var, frozen[i]);
    }
  }
  return BoundedWidthSatisfiable(theta_prime, canonical, fixed, stats, obs);
}

}  // namespace qcont

#ifndef QCONT_STRUCTURE_JOIN_TREE_H_
#define QCONT_STRUCTURE_JOIN_TREE_H_

#include <string>
#include <vector>

#include "base/status.h"
#include "cq/query.h"

namespace qcont {

/// A join tree of a CQ [Beeri-Fagin-Maier-Mendelzon-Ullman-Yannakakis]:
/// nodes are the atoms of the query (by index into cq.atoms()); for each
/// variable, the atoms mentioning it form a connected subtree. A CQ has a
/// join tree iff it is acyclic, i.e. in HW(1) = AC.
///
/// `parent[i]` is the parent atom index of atom i, or -1 for roots (the
/// structure is a forest when the query's atoms are disconnected; the tree
/// property per variable still holds).
struct JoinTree {
  std::vector<int> parent;

  /// Children lists derived from `parent`.
  std::vector<std::vector<int>> Children() const;

  /// Root indices (atoms with parent -1).
  std::vector<int> Roots() const;

  /// Verifies the connectedness condition against `cq`.
  Status Validate(const ConjunctiveQuery& cq) const;
};

/// Decides acyclicity by GYO reduction (repeatedly delete vertices that
/// occur in at most one hyperedge and hyperedges contained in others).
bool IsAcyclic(const ConjunctiveQuery& cq);

/// Builds a join tree of `cq`, or kFailedPrecondition if `cq` is cyclic.
Result<JoinTree> BuildJoinTree(const ConjunctiveQuery& cq);

}  // namespace qcont

#endif  // QCONT_STRUCTURE_JOIN_TREE_H_

#ifndef QCONT_STRUCTURE_ACYCLIC_EVAL_H_
#define QCONT_STRUCTURE_ACYCLIC_EVAL_H_

#include <cstdint>
#include <vector>

#include "base/status.h"
#include "cq/database.h"
#include "cq/homomorphism.h"
#include "cq/query.h"

namespace qcont {

/// Counters for the semijoin passes (benchmark signal).
struct YannakakisStats {
  std::uint64_t semijoins = 0;
  std::uint64_t tuples_scanned = 0;
  std::uint64_t index_probes = 0;  // candidate lists served by a hash index
};

/// Decides whether the (acyclic) CQ has a homomorphism into `db` extending
/// `fixed`, by Yannakakis' algorithm: per-atom candidate lists filtered by
/// an upward semijoin pass over a join tree. Polynomial time.
///
/// Returns kFailedPrecondition if `cq` is cyclic.
Result<bool> AcyclicSatisfiable(const ConjunctiveQuery& cq, const Database& db,
                                const Assignment& fixed = {},
                                YannakakisStats* stats = nullptr);

/// Full evaluation of an acyclic CQ: full reduction (upward + downward
/// semijoins) followed by join-tree enumeration. Returns the distinct head
/// tuples. Returns kFailedPrecondition if `cq` is cyclic.
Result<std::vector<Tuple>> EvaluateAcyclicCq(const ConjunctiveQuery& cq,
                                             const Database& db,
                                             YannakakisStats* stats = nullptr);

/// CQ containment test theta ⊆ theta' where theta' is acyclic: the
/// Chandra-Merlin test run with AcyclicSatisfiable — polynomial time, as in
/// Theorem 4 / Proposition 1 of the paper for the class AC = HW(1).
Result<bool> CqContainedAcyclicRhs(const ConjunctiveQuery& theta,
                                   const ConjunctiveQuery& theta_prime,
                                   YannakakisStats* stats = nullptr);

/// UCQ containment with acyclic right-hand side (Sagiv-Yannakakis over
/// CqContainedAcyclicRhs). Polynomial time.
Result<bool> UcqContainedAcyclicRhs(const UnionQuery& theta,
                                    const UnionQuery& theta_prime,
                                    YannakakisStats* stats = nullptr);

}  // namespace qcont

#endif  // QCONT_STRUCTURE_ACYCLIC_EVAL_H_

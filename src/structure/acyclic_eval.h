#ifndef QCONT_STRUCTURE_ACYCLIC_EVAL_H_
#define QCONT_STRUCTURE_ACYCLIC_EVAL_H_

#include <cstdint>
#include <vector>

#include "base/status.h"
#include "cq/database.h"
#include "cq/homomorphism.h"
#include "cq/query.h"
#include "obs/obs.h"

namespace qcont {

/// Counters for the semijoin passes (benchmark signal). The registry
/// mirror (`yannakakis.*` counters) is written at the same bump sites as
/// these fields — the sites fire at join-tree-edge/atom frequency, far
/// below metric-overhead relevance — so the two views always agree.
struct YannakakisStats {
  /// Semijoin passes executed (one per join-tree edge per reduction pass).
  /// Accumulates across runs; counter `yannakakis.semijoins`.
  std::uint64_t semijoins = 0;
  /// Tuples inspected by semijoins (target + source sizes summed per pass).
  /// Accumulates across runs; counter `yannakakis.tuples_scanned`.
  std::uint64_t tuples_scanned = 0;
  /// Candidate lists served by a database hash index instead of a full
  /// relation scan. Accumulates; counter `yannakakis.index_probes`.
  std::uint64_t index_probes = 0;
};

/// Decides whether the (acyclic) CQ has a homomorphism into `db` extending
/// `fixed`, by Yannakakis' algorithm: per-atom candidate lists filtered by
/// an upward semijoin pass over a join tree. Polynomial time.
///
/// Returns kFailedPrecondition if `cq` is cyclic. `obs` (optional,
/// borrowed) receives `yannakakis/upward_reduce` spans and the
/// `yannakakis.*` counters.
Result<bool> AcyclicSatisfiable(const ConjunctiveQuery& cq, const Database& db,
                                const Assignment& fixed = {},
                                YannakakisStats* stats = nullptr,
                                const ObsContext* obs = nullptr);

/// Full evaluation of an acyclic CQ: full reduction (upward + downward
/// semijoins) followed by join-tree enumeration. Returns the distinct head
/// tuples. Returns kFailedPrecondition if `cq` is cyclic.
Result<std::vector<Tuple>> EvaluateAcyclicCq(const ConjunctiveQuery& cq,
                                             const Database& db,
                                             YannakakisStats* stats = nullptr,
                                             const ObsContext* obs = nullptr);

/// CQ containment test theta ⊆ theta' where theta' is acyclic: the
/// Chandra-Merlin test run with AcyclicSatisfiable — polynomial time, as in
/// Theorem 4 / Proposition 1 of the paper for the class AC = HW(1).
Result<bool> CqContainedAcyclicRhs(const ConjunctiveQuery& theta,
                                   const ConjunctiveQuery& theta_prime,
                                   YannakakisStats* stats = nullptr,
                                   const ObsContext* obs = nullptr);

/// UCQ containment with acyclic right-hand side (Sagiv-Yannakakis over
/// CqContainedAcyclicRhs). Polynomial time.
Result<bool> UcqContainedAcyclicRhs(const UnionQuery& theta,
                                    const UnionQuery& theta_prime,
                                    YannakakisStats* stats = nullptr,
                                    const ObsContext* obs = nullptr);

}  // namespace qcont

#endif  // QCONT_STRUCTURE_ACYCLIC_EVAL_H_

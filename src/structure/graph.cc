#include "structure/graph.h"

#include <unordered_map>

#include "base/check.h"

namespace qcont {

std::size_t UndirectedGraph::NumEdges() const {
  std::size_t twice = 0;
  for (const auto& nbrs : adjacency_) twice += nbrs.size();
  return twice / 2;
}

void UndirectedGraph::AddEdge(int u, int v) {
  QCONT_CHECK(u >= 0 && v >= 0);
  QCONT_CHECK(static_cast<std::size_t>(u) < adjacency_.size() &&
              static_cast<std::size_t>(v) < adjacency_.size());
  if (u == v) return;
  adjacency_[u].insert(v);
  adjacency_[v].insert(u);
}

bool UndirectedGraph::HasEdge(int u, int v) const {
  if (u < 0 || static_cast<std::size_t>(u) >= adjacency_.size()) return false;
  return adjacency_[u].count(v) > 0;
}

bool UndirectedGraph::IsForest() const {
  // A graph is a forest iff every component with k vertices has k-1 edges.
  std::vector<int> component(NumVertices(), -1);
  int comp = 0;
  for (std::size_t start = 0; start < NumVertices(); ++start) {
    if (component[start] != -1) continue;
    std::vector<int> stack = {static_cast<int>(start)};
    component[start] = comp;
    std::size_t vertices = 0, edge_ends = 0;
    while (!stack.empty()) {
      int v = stack.back();
      stack.pop_back();
      ++vertices;
      edge_ends += adjacency_[v].size();
      for (int u : adjacency_[v]) {
        if (component[u] == -1) {
          component[u] = comp;
          stack.push_back(u);
        }
      }
    }
    if (edge_ends / 2 + 1 != vertices) return false;
    ++comp;
  }
  return true;
}

std::vector<std::vector<int>> UndirectedGraph::ConnectedComponents() const {
  std::vector<std::vector<int>> out;
  std::vector<bool> seen(NumVertices(), false);
  for (std::size_t start = 0; start < NumVertices(); ++start) {
    if (seen[start]) continue;
    out.emplace_back();
    std::vector<int> stack = {static_cast<int>(start)};
    seen[start] = true;
    while (!stack.empty()) {
      int v = stack.back();
      stack.pop_back();
      out.back().push_back(v);
      for (int u : adjacency_[v]) {
        if (!seen[u]) {
          seen[u] = true;
          stack.push_back(u);
        }
      }
    }
  }
  return out;
}

UndirectedGraph GaifmanGraph(const ConjunctiveQuery& cq,
                             std::vector<Term>* variables) {
  std::vector<Term> vars = cq.Variables();
  std::unordered_map<std::string, int> index;
  for (std::size_t i = 0; i < vars.size(); ++i) {
    index.emplace(vars[i].name(), static_cast<int>(i));
  }
  UndirectedGraph g(vars.size());
  for (std::size_t i = 0; i < vars.size(); ++i) g.SetLabel(i, vars[i].name());
  for (const Atom& a : cq.atoms()) {
    std::vector<Term> atom_vars = a.Variables();
    for (std::size_t i = 0; i < atom_vars.size(); ++i) {
      for (std::size_t j = i + 1; j < atom_vars.size(); ++j) {
        g.AddEdge(index.at(atom_vars[i].name()), index.at(atom_vars[j].name()));
      }
    }
  }
  if (variables != nullptr) *variables = std::move(vars);
  return g;
}

}  // namespace qcont

#ifndef QCONT_STRUCTURE_GRAPH_H_
#define QCONT_STRUCTURE_GRAPH_H_

#include <cstddef>
#include <set>
#include <string>
#include <vector>

#include "cq/query.h"

namespace qcont {

/// A simple undirected graph over vertices 0..n-1 with optional vertex
/// labels. Used for Gaifman graphs and treewidth computations.
class UndirectedGraph {
 public:
  explicit UndirectedGraph(std::size_t num_vertices)
      : adjacency_(num_vertices), labels_(num_vertices) {}

  std::size_t NumVertices() const { return adjacency_.size(); }
  std::size_t NumEdges() const;

  /// Adds an undirected edge (self loops are ignored; duplicates collapse).
  void AddEdge(int u, int v);
  bool HasEdge(int u, int v) const;

  const std::set<int>& Neighbors(int v) const { return adjacency_[v]; }

  void SetLabel(int v, std::string label) { labels_[v] = std::move(label); }
  const std::string& Label(int v) const { return labels_[v]; }

  /// True iff the graph has no cycle (checked per connected component).
  bool IsForest() const;

  /// Connected components as vertex lists.
  std::vector<std::vector<int>> ConnectedComponents() const;

 private:
  std::vector<std::set<int>> adjacency_;
  std::vector<std::string> labels_;
};

/// The Gaifman graph of a CQ: vertices are the distinct variables of the
/// body (labels carry the names); two variables are adjacent iff they
/// co-occur in some atom. `variables` receives the vertex order used.
UndirectedGraph GaifmanGraph(const ConjunctiveQuery& cq,
                             std::vector<Term>* variables = nullptr);

}  // namespace qcont

#endif  // QCONT_STRUCTURE_GRAPH_H_

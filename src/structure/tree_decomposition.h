#ifndef QCONT_STRUCTURE_TREE_DECOMPOSITION_H_
#define QCONT_STRUCTURE_TREE_DECOMPOSITION_H_

#include <utility>
#include <vector>

#include "base/status.h"
#include "structure/graph.h"

namespace qcont {

/// A tree decomposition (T, λ) of an undirected graph: `bags[t]` is λ(t)
/// (sorted vertex lists) and `edges` are the tree edges of T.
struct TreeDecomposition {
  std::vector<std::vector<int>> bags;
  std::vector<std::pair<int, int>> edges;

  /// max |bag| - 1, or -1 for an empty decomposition.
  int Width() const;

  /// Checks the three tree-decomposition conditions against `g`:
  /// T is a tree (or forest covering all bags), every edge of g is inside
  /// some bag, and each vertex's bags form a connected subtree.
  Status Validate(const UndirectedGraph& g) const;
};

/// Builds the decomposition induced by an elimination order: bag(v) =
/// {v} ∪ (neighbors of v at its elimination time in the fill-in graph).
/// Its width is the width of the elimination order.
TreeDecomposition DecompositionFromOrder(const UndirectedGraph& g,
                                         const std::vector<int>& order);

/// Min-fill heuristic elimination order; returns the order. An upper bound
/// on treewidth is DecompositionFromOrder(g, order).Width().
std::vector<int> MinFillOrder(const UndirectedGraph& g);

/// Exact treewidth by dynamic programming over vertex subsets
/// (O(2^n poly n)); refuses graphs with more than `max_vertices` vertices
/// with kResourceExhausted. The empty graph has treewidth 0 by convention
/// here (a single empty bag); a single vertex also has treewidth 0.
Result<int> TreewidthExact(const UndirectedGraph& g, int max_vertices = 20);

/// Exact treewidth for small graphs, min-fill upper bound otherwise.
/// `exact` (optional) reports which one was returned.
int TreewidthBound(const UndirectedGraph& g, bool* exact = nullptr);

}  // namespace qcont

#endif  // QCONT_STRUCTURE_TREE_DECOMPOSITION_H_

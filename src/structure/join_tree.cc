#include "structure/join_tree.h"

#include <algorithm>
#include <set>
#include <unordered_map>

namespace qcont {

std::vector<std::vector<int>> JoinTree::Children() const {
  std::vector<std::vector<int>> children(parent.size());
  for (std::size_t i = 0; i < parent.size(); ++i) {
    if (parent[i] >= 0) children[parent[i]].push_back(static_cast<int>(i));
  }
  return children;
}

std::vector<int> JoinTree::Roots() const {
  std::vector<int> roots;
  for (std::size_t i = 0; i < parent.size(); ++i) {
    if (parent[i] < 0) roots.push_back(static_cast<int>(i));
  }
  return roots;
}

Status JoinTree::Validate(const ConjunctiveQuery& cq) const {
  if (parent.size() != cq.atoms().size()) {
    return InvalidArgumentError("join tree size does not match atom count");
  }
  // Acyclicity of the parent structure.
  for (std::size_t i = 0; i < parent.size(); ++i) {
    int hops = 0;
    for (int j = static_cast<int>(i); j >= 0; j = parent[j]) {
      if (++hops > static_cast<int>(parent.size())) {
        return InvalidArgumentError("parent pointers contain a cycle");
      }
    }
  }
  // Connectedness: for every variable, the atoms mentioning it induce a
  // connected subforest. Check: among atoms mentioning x, each non-unique
  // one must reach another one via parent steps through atoms mentioning x.
  std::unordered_map<std::string, std::vector<int>> atoms_of;
  for (std::size_t i = 0; i < cq.atoms().size(); ++i) {
    for (const Term& t : cq.atoms()[i].Variables()) {
      atoms_of[t.name()].push_back(static_cast<int>(i));
    }
  }
  for (const auto& [var, atoms] : atoms_of) {
    if (atoms.size() <= 1) continue;
    std::set<int> members(atoms.begin(), atoms.end());
    // Union-find style: walk up from each member while staying in members.
    // The subtree is connected iff exactly one member has a parent outside
    // the member set (the subtree root) within each tree... we instead count
    // connected pieces: a member whose parent is not a member starts a piece.
    int pieces = 0;
    for (int a : atoms) {
      if (parent[a] < 0 || !members.count(parent[a])) ++pieces;
    }
    if (pieces != 1) {
      return InvalidArgumentError("atoms containing variable '" + var +
                                  "' are not connected in the join tree");
    }
  }
  return Status::Ok();
}

namespace {

struct GyoState {
  std::vector<std::set<std::string>> edge_vars;  // per atom
  std::vector<bool> alive;
  std::vector<int> parent;

  explicit GyoState(const ConjunctiveQuery& cq)
      : alive(cq.atoms().size(), true), parent(cq.atoms().size(), -1) {
    edge_vars.reserve(cq.atoms().size());
    for (const Atom& a : cq.atoms()) {
      std::set<std::string> vars;
      for (const Term& t : a.Variables()) vars.insert(t.name());
      edge_vars.push_back(std::move(vars));
    }
  }

  // Number of alive edges containing `var`.
  int Occurrences(const std::string& var) const {
    int count = 0;
    for (std::size_t i = 0; i < edge_vars.size(); ++i) {
      if (alive[i] && edge_vars[i].count(var)) ++count;
    }
    return count;
  }

  // Runs GYO to fixpoint; returns true iff every edge was removed (acyclic).
  bool Reduce() {
    std::size_t remaining = 0;
    for (bool a : alive) remaining += a ? 1 : 0;
    bool progress = true;
    while (progress && remaining > 0) {
      progress = false;
      for (std::size_t e = 0; e < edge_vars.size() && !progress; ++e) {
        if (!alive[e]) continue;
        // Variables of e that occur in another alive edge.
        std::set<std::string> shared;
        for (const std::string& v : edge_vars[e]) {
          if (Occurrences(v) > 1) shared.insert(v);
        }
        if (shared.empty()) {
          // Isolated ear: remove as a root.
          alive[e] = false;
          --remaining;
          progress = true;
          break;
        }
        // e is an ear with witness f if shared ⊆ vars(f).
        for (std::size_t f = 0; f < edge_vars.size(); ++f) {
          if (f == e || !alive[f]) continue;
          bool subset = std::includes(edge_vars[f].begin(), edge_vars[f].end(),
                                      shared.begin(), shared.end());
          if (subset) {
            alive[e] = false;
            parent[e] = static_cast<int>(f);
            --remaining;
            progress = true;
            break;
          }
        }
      }
    }
    return remaining == 0;
  }
};

}  // namespace

bool IsAcyclic(const ConjunctiveQuery& cq) {
  GyoState state(cq);
  return state.Reduce();
}

Result<JoinTree> BuildJoinTree(const ConjunctiveQuery& cq) {
  GyoState state(cq);
  if (!state.Reduce()) {
    return FailedPreconditionError("query is cyclic: no join tree exists");
  }
  JoinTree jt;
  jt.parent = std::move(state.parent);
  return jt;
}

}  // namespace qcont

#include "structure/acyclic_eval.h"

#include <algorithm>
#include <cstdint>
#include <functional>
#include <set>
#include <span>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "base/flat_set.h"
#include "base/hash.h"
#include "structure/decomposition.h"
#include "structure/join_tree.h"

namespace qcont {

namespace {

// Fixed assignment resolved to pool ids. A value of kNoValue means the
// string was never interned, so any atom containing the variable matches
// nothing (same outcome the string path produced per atom).
using FixedIds = std::unordered_map<std::string, ValueId>;

// One atom of the query, compiled against a database: relation id, constant
// requirements and variable-position structure resolved once, so the
// per-candidate satisfiability passes of full evaluation never touch
// strings. Compiled per (query, database) pair.
struct CompiledAtom {
  RelationId rel = kNoRelation;
  std::size_t arity = 0;                // of the query atom
  std::vector<std::string> vars;        // distinct, first-occurrence order
  std::vector<ValueId> const_required;  // per position: const id or kNoValue
  std::vector<int> pos_var;             // per position: index in vars, or -1
  std::vector<int> var_pos;             // per var: first position holding it
  // (p1, p2) pairs a repeated variable must agree on.
  std::vector<std::pair<int, int>> repeat_checks;
  bool impossible = false;  // a constant was never interned: matches nothing
};

struct CompiledAcyclic {
  JoinTree jt;
  std::vector<CompiledAtom> atoms;
  std::vector<int> post_order;
  // Shared variable positions for the join-tree edge child v -> parent:
  // edges[v] lists (var index in parent, var index in child).
  std::vector<std::vector<std::pair<int, int>>> edges;
};

// Candidate matches of one atom at runtime: surviving row indices over the
// relation's arena (never materialized projections).
struct AtomState {
  const CompiledAtom* ca = nullptr;
  const Database* db = nullptr;
  std::span<const ValueId> arena;  // flat layout; empty otherwise
  std::vector<std::uint32_t> rows;

  ValueId At(std::uint32_t r, int pos) const {
    if (!arena.empty()) {
      return arena[static_cast<std::size_t>(r) * ca->arity + pos];
    }
    return db->Row(ca->rel, r)[pos];
  }
};

CompiledAtom CompileAtom(const Atom& atom, const Database& db) {
  CompiledAtom ca;
  ca.rel = db.RelationIdOf(atom.predicate());
  ca.arity = atom.arity();
  ca.const_required.assign(ca.arity, kNoValue);
  ca.pos_var.assign(ca.arity, -1);
  for (std::size_t i = 0; i < ca.arity; ++i) {
    const Term& t = atom.terms()[i];
    if (t.is_constant()) {
      ca.const_required[i] = db.ValueIdOf(t.name());
      if (ca.const_required[i] == kNoValue) ca.impossible = true;
      continue;
    }
    int v = -1;
    for (std::size_t k = 0; k < ca.vars.size(); ++k) {
      if (ca.vars[k] == t.name()) v = static_cast<int>(k);
    }
    if (v < 0) {
      v = static_cast<int>(ca.vars.size());
      ca.vars.push_back(t.name());
      ca.var_pos.push_back(static_cast<int>(i));
    } else {
      ca.repeat_checks.emplace_back(ca.var_pos[v], static_cast<int>(i));
    }
    ca.pos_var[i] = v;
  }
  return ca;
}

// Post-order over the join forest (children before parents).
std::vector<int> PostOrder(const JoinTree& jt) {
  std::vector<std::vector<int>> children = jt.Children();
  std::vector<int> order;
  std::vector<int> stack;
  for (int r : jt.Roots()) stack.push_back(r);
  // Iterative post-order: push, then reverse a pre-order.
  std::vector<int> pre;
  while (!stack.empty()) {
    int v = stack.back();
    stack.pop_back();
    pre.push_back(v);
    for (int c : children[v]) stack.push_back(c);
  }
  order.assign(pre.rbegin(), pre.rend());
  return order;
}

Result<CompiledAcyclic> Compile(const ConjunctiveQuery& cq,
                                const Database& db) {
  QCONT_RETURN_IF_ERROR(cq.Validate());
  CompiledAcyclic out;
  QCONT_ASSIGN_OR_RETURN(out.jt, BuildJoinTree(cq));
#ifndef NDEBUG
  // Route the join tree through the certified checker: a width-1 GHW
  // certificate whose verification failure means BuildJoinTree is buggy.
  // Compile runs per engine call, so optimized builds trust the join tree
  // (the debug/sanitizer CI jobs and the decomposition property suite
  // certify it); the routed analysis path certifies once per query.
  QCONT_RETURN_IF_ERROR(CertificateFromJoinTree(cq, out.jt).status());
#endif
  out.atoms.reserve(cq.atoms().size());
  for (const Atom& a : cq.atoms()) out.atoms.push_back(CompileAtom(a, db));
  out.post_order = PostOrder(out.jt);
  out.edges.resize(out.atoms.size());
  for (std::size_t v = 0; v < out.atoms.size(); ++v) {
    const int p = out.jt.parent[v];
    if (p < 0) continue;
    const CompiledAtom& child = out.atoms[v];
    const CompiledAtom& parent = out.atoms[p];
    for (std::size_t i = 0; i < parent.vars.size(); ++i) {
      for (std::size_t j = 0; j < child.vars.size(); ++j) {
        if (parent.vars[i] == child.vars[j]) {
          out.edges[v].emplace_back(static_cast<int>(i), static_cast<int>(j));
        }
      }
    }
  }
  return out;
}

// Builds the per-atom candidate state: indices of the database rows
// unifying with the atom under `fixed` (constants and repeated variables
// checked here). The positions bound by constants or fixed variables are
// served through the relation's probe table instead of a full scan.
AtomState BuildAtomState(const CompiledAtom& ca, const Database& db,
                         const FixedIds& fixed, YannakakisStats* stats,
                         const ObsContext* obs) {
  AtomState st;
  st.ca = &ca;
  st.db = &db;
  if (ca.impossible) return st;
  const std::size_t n = db.NumRows(ca.rel);
  if (n == 0) return st;
  st.arena = db.Arena(ca.rel);
  const bool flat = !st.arena.empty() || ca.arity == 0;
  if (flat && db.Arity(ca.rel) != ca.arity) return st;  // uniform arity
  // Per position: the required id (constant / fixed variable, kNoValue if
  // free).
  ValueId required_buf[64];
  std::span<ValueId> required(
      required_buf, ca.arity <= 64 ? ca.arity : 0);
  std::vector<ValueId> required_heap;
  if (ca.arity > 64) {
    required_heap.assign(ca.arity, kNoValue);
    required = required_heap;
  }
  std::copy(ca.const_required.begin(), ca.const_required.end(),
            required.begin());
  for (std::size_t k = 0; k < ca.vars.size(); ++k) {
    auto it = fixed.find(ca.vars[k]);
    if (it == fixed.end()) continue;
    if (it->second == kNoValue) return st;  // value never interned
    for (std::size_t i = 0; i < ca.arity; ++i) {
      if (ca.pos_var[i] == static_cast<int>(k)) required[i] = it->second;
    }
  }
  std::uint32_t mask = 0;
  ValueId key_buf[32];
  std::size_t key_len = 0;
  for (std::size_t i = 0; i < ca.arity && i < 32; ++i) {
    if (required[i] == kNoValue) continue;
    mask |= 1u << i;
    key_buf[key_len++] = required[i];
  }
  std::span<const std::uint32_t> bucket;
  bool indexed = false;
  if (mask != 0) {
    bucket = db.Probe(ca.rel, mask, std::span<const ValueId>(key_buf, key_len));
    indexed = true;
    if (stats != nullptr) ++stats->index_probes;
    ObsCount(obs, "yannakakis.index_probes", 1);
  }
  auto try_row = [&](std::uint32_t r) {
    std::span<const ValueId> row =
        flat ? st.arena.subspan(static_cast<std::size_t>(r) * ca.arity,
                                ca.arity)
             : db.Row(ca.rel, r);
    if (row.size() != ca.arity) return;
    for (std::size_t i = 0; i < ca.arity; ++i) {
      if (required[i] != kNoValue && row[i] != required[i]) return;
    }
    for (const auto& [p1, p2] : ca.repeat_checks) {
      if (row[p1] != row[p2]) return;  // repeated variable bound inconsistently
    }
    st.rows.push_back(r);
  };
  if (indexed) {
    for (std::uint32_t r : bucket) try_row(r);
  } else {
    for (std::uint32_t r = 0; r < n; ++r) try_row(r);
  }
  return st;
}

// target := target ⋉ source (keep target rows whose shared-variable
// projection appears in source). `shared` lists (target var, source var)
// pairs; keys of width ≤ 2 are packed into one 64-bit word, wider keys
// fall back to vector keys.
void Semijoin(AtomState* target, const AtomState& source,
              const std::vector<std::pair<int, int>>& shared,
              YannakakisStats* stats, const ObsContext* obs) {
  if (stats != nullptr) {
    ++stats->semijoins;
    stats->tuples_scanned += target->rows.size() + source.rows.size();
  }
  ObsCount(obs, "yannakakis.semijoins", 1);
  ObsCount(obs, "yannakakis.tuples_scanned",
           target->rows.size() + source.rows.size());
  if (shared.empty()) {
    // No shared variables: the semijoin only empties target if source is
    // empty (no supporting tuple at all).
    if (source.rows.empty()) target->rows.clear();
    return;
  }
  const std::size_t w = shared.size();
  const CompiledAtom& tca = *target->ca;
  const CompiledAtom& sca = *source.ca;
  if (w <= 2) {
    const int t0 = tca.var_pos[shared[0].first];
    const int s0 = sca.var_pos[shared[0].second];
    const int t1 = w == 2 ? tca.var_pos[shared[1].first] : -1;
    const int s1 = w == 2 ? sca.var_pos[shared[1].second] : -1;
    auto pack = [](ValueId a, ValueId b) {
      return ((static_cast<std::uint64_t>(a) + 1) << 32) |
             (static_cast<std::uint64_t>(b) + 1);
    };
    // Tag-filtered flat set (the probe-kernel layout of base/flat_set.h):
    // the build and probe loops touch one tag byte per miss instead of a
    // node allocation per key.
    FlatU64Set keys(source.rows.size());
    for (std::uint32_t r : source.rows) {
      keys.Insert(pack(source.At(r, s0), w == 2 ? source.At(r, s1) : 0));
    }
    std::erase_if(target->rows, [&](std::uint32_t r) {
      return !keys.Contains(pack(target->At(r, t0),
                                 w == 2 ? target->At(r, t1) : 0));
    });
    return;
  }
  std::unordered_set<std::vector<ValueId>, VectorHash<ValueId>> keys;
  keys.reserve(source.rows.size());
  std::vector<ValueId> key(w);
  for (std::uint32_t r : source.rows) {
    for (std::size_t i = 0; i < w; ++i) {
      key[i] = source.At(r, sca.var_pos[shared[i].second]);
    }
    keys.insert(key);
  }
  std::erase_if(target->rows, [&](std::uint32_t r) {
    for (std::size_t i = 0; i < w; ++i) {
      key[i] = target->At(r, tca.var_pos[shared[i].first]);
    }
    return keys.count(key) == 0;
  });
}

// Upward semijoin reduction over the compiled query: true iff no connected
// component emptied out, i.e. the query is satisfiable under `fixed`.
bool SatisfiableCompiled(const CompiledAcyclic& c, const Database& db,
                         const FixedIds& fixed, YannakakisStats* stats,
                         const ObsContext* obs) {
  ObsSpan reduce_span(obs, "yannakakis/upward_reduce", "structure");
  reduce_span.AddArg("atoms", c.atoms.size());
  std::vector<AtomState> states;
  states.reserve(c.atoms.size());
  for (const CompiledAtom& ca : c.atoms) {
    states.push_back(BuildAtomState(ca, db, fixed, stats, obs));
  }
  for (int v : c.post_order) {
    const int p = c.jt.parent[v];
    if (p >= 0) {
      Semijoin(&states[p], states[v], c.edges[v], stats, obs);
    } else if (states[v].rows.empty()) {
      return false;
    }
  }
  return true;
}

}  // namespace

Result<bool> AcyclicSatisfiable(const ConjunctiveQuery& cq, const Database& db,
                                const Assignment& fixed, YannakakisStats* stats,
                                const ObsContext* obs) {
  if (cq.atoms().empty()) return true;
  QCONT_ASSIGN_OR_RETURN(CompiledAcyclic compiled, Compile(cq, db));
  FixedIds fixed_ids;
  fixed_ids.reserve(fixed.size());
  for (const auto& [var, value] : fixed) {
    fixed_ids.emplace(var, db.ValueIdOf(value));
  }
  return SatisfiableCompiled(compiled, db, fixed_ids, stats, obs);
}

Result<std::vector<Tuple>> EvaluateAcyclicCq(const ConjunctiveQuery& cq,
                                             const Database& db,
                                             YannakakisStats* stats,
                                             const ObsContext* obs) {
  if (cq.atoms().empty()) {
    return std::vector<Tuple>{Tuple{}};
  }
  if (cq.IsBoolean()) {
    QCONT_ASSIGN_OR_RETURN(bool sat,
                           AcyclicSatisfiable(cq, db, {}, stats, obs));
    return sat ? std::vector<Tuple>{Tuple{}} : std::vector<Tuple>{};
  }
  QCONT_ASSIGN_OR_RETURN(CompiledAcyclic compiled, Compile(cq, db));
  ObsSpan enum_span(obs, "yannakakis/enumerate", "structure");
  // Candidate values per head variable: the intersection, over the atoms
  // containing it, of the values the atom's candidate tuples allow. The
  // answer set is then computed with one Yannakakis satisfiability check
  // per candidate head assignment — polynomial for fixed arity, and free of
  // the duplicate blow-up of full match enumeration. The compiled query is
  // reused across every candidate check (no join-tree or name-resolution
  // work per candidate).
  std::vector<std::string> head_vars;
  for (const Term& t : cq.head()) {
    if (std::find(head_vars.begin(), head_vars.end(), t.name()) ==
        head_vars.end()) {
      head_vars.push_back(t.name());
    }
  }
  std::unordered_map<std::string, std::set<ValueId>> candidates;
  const FixedIds no_fixed;
  for (const CompiledAtom& ca : compiled.atoms) {
    AtomState st = BuildAtomState(ca, db, no_fixed, stats, obs);
    for (std::size_t i = 0; i < ca.vars.size(); ++i) {
      if (std::find(head_vars.begin(), head_vars.end(), ca.vars[i]) ==
          head_vars.end()) {
        continue;
      }
      std::set<ValueId> values;
      for (std::uint32_t r : st.rows) values.insert(st.At(r, ca.var_pos[i]));
      auto [it, inserted] = candidates.emplace(ca.vars[i], values);
      if (!inserted) {
        std::set<ValueId> merged;
        std::set_intersection(it->second.begin(), it->second.end(),
                              values.begin(), values.end(),
                              std::inserter(merged, merged.begin()));
        it->second = std::move(merged);
      }
    }
  }
  std::set<Tuple> results;
  FixedIds fixed;
  std::function<Status(std::size_t)> try_assign =
      [&](std::size_t i) -> Status {
    if (i == head_vars.size()) {
      if (SatisfiableCompiled(compiled, db, fixed, stats, obs)) {
        Tuple head;
        head.reserve(cq.head().size());
        for (const Term& t : cq.head()) {
          head.push_back(db.ValueName(fixed.at(t.name())));
        }
        results.insert(std::move(head));
      }
      return Status::Ok();
    }
    for (ValueId v : candidates[head_vars[i]]) {
      fixed[head_vars[i]] = v;
      QCONT_RETURN_IF_ERROR(try_assign(i + 1));
    }
    fixed.erase(head_vars[i]);
    return Status::Ok();
  };
  QCONT_RETURN_IF_ERROR(try_assign(0));
  return std::vector<Tuple>(results.begin(), results.end());
}

Result<bool> CqContainedAcyclicRhs(const ConjunctiveQuery& theta,
                                   const ConjunctiveQuery& theta_prime,
                                   YannakakisStats* stats,
                                   const ObsContext* obs) {
  QCONT_RETURN_IF_ERROR(theta.Validate());
  QCONT_RETURN_IF_ERROR(theta_prime.Validate());
  if (theta.arity() != theta_prime.arity()) {
    return InvalidArgumentError("arity mismatch in containment test");
  }
  Database canonical = CanonicalDatabase(theta);
  canonical.set_obs(obs);
  Tuple frozen = CanonicalHead(theta);
  Assignment fixed;
  for (std::size_t i = 0; i < theta_prime.head().size(); ++i) {
    const std::string& var = theta_prime.head()[i].name();
    auto it = fixed.find(var);
    if (it != fixed.end()) {
      if (it->second != frozen[i]) return false;
    } else {
      fixed.emplace(var, frozen[i]);
    }
  }
  return AcyclicSatisfiable(theta_prime, canonical, fixed, stats, obs);
}

Result<bool> UcqContainedAcyclicRhs(const UnionQuery& theta,
                                    const UnionQuery& theta_prime,
                                    YannakakisStats* stats,
                                    const ObsContext* obs) {
  QCONT_RETURN_IF_ERROR(theta.Validate());
  QCONT_RETURN_IF_ERROR(theta_prime.Validate());
  for (const ConjunctiveQuery& disjunct : theta.disjuncts()) {
    bool contained = false;
    for (const ConjunctiveQuery& rhs : theta_prime.disjuncts()) {
      QCONT_ASSIGN_OR_RETURN(
          bool c, CqContainedAcyclicRhs(disjunct, rhs, stats, obs));
      if (c) {
        contained = true;
        break;
      }
    }
    if (!contained) return false;
  }
  return true;
}

}  // namespace qcont

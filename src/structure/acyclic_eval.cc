#include "structure/acyclic_eval.h"

#include <algorithm>
#include <functional>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "base/hash.h"
#include "structure/join_tree.h"

namespace qcont {

namespace {

// Candidate matches of one atom: variable list + rows of interned value ids
// aligned to the variables.
struct AtomRelation {
  std::vector<std::string> vars;
  std::vector<std::vector<ValueId>> rows;
};

// Builds the per-atom candidate relation: database tuples unifying with the
// atom under `fixed` (constants and repeated variables checked here). The
// positions bound by constants or fixed variables are served through the
// database's position-mask hash index instead of a full relation scan.
AtomRelation BuildAtomRelation(const Atom& atom, const Database& db,
                               const Assignment& fixed, YannakakisStats* stats,
                               const ObsContext* obs) {
  AtomRelation rel;
  for (const Term& t : atom.Variables()) rel.vars.push_back(t.name());
  const std::size_t arity = atom.arity();
  // Per position: the required id (constant / fixed variable, kNoValue if
  // free) and the index of the position's variable in rel.vars (-1 if
  // constant).
  std::vector<ValueId> required(arity, kNoValue);
  std::vector<int> pos_var(arity, -1);
  std::uint32_t mask = 0;
  std::vector<ValueId> probe_key;
  for (std::size_t i = 0; i < arity; ++i) {
    const Term& t = atom.terms()[i];
    if (t.is_constant()) {
      required[i] = db.ValueIdOf(t.name());
      if (required[i] == kNoValue) return rel;  // matches no fact
    } else {
      for (std::size_t v = 0; v < rel.vars.size(); ++v) {
        if (rel.vars[v] == t.name()) pos_var[i] = static_cast<int>(v);
      }
      auto fixed_it = fixed.find(t.name());
      if (fixed_it != fixed.end()) {
        required[i] = db.ValueIdOf(fixed_it->second);
        if (required[i] == kNoValue) return rel;
      }
    }
    if (required[i] != kNoValue && i < 32) {
      mask |= 1u << i;
      probe_key.push_back(required[i]);
    }
  }
  const auto& rows = db.Rows(atom.predicate());
  const std::vector<std::uint32_t>* bucket = nullptr;
  if (mask != 0) {
    bucket = &db.Probe(atom.predicate(), mask, probe_key);
    if (stats != nullptr) ++stats->index_probes;
    ObsCount(obs, "yannakakis.index_probes", 1);
  }
  auto try_row = [&](const std::vector<ValueId>& row) {
    if (row.size() != arity) return;
    std::vector<ValueId> out(rel.vars.size(), kNoValue);
    for (std::size_t i = 0; i < arity; ++i) {
      if (required[i] != kNoValue && row[i] != required[i]) return;
      const int v = pos_var[i];
      if (v < 0) continue;
      if (out[v] == kNoValue) {
        out[v] = row[i];
      } else if (out[v] != row[i]) {
        return;  // repeated variable bound inconsistently
      }
    }
    rel.rows.push_back(std::move(out));
  };
  if (bucket != nullptr) {
    for (std::uint32_t r : *bucket) try_row(rows[r]);
  } else {
    for (const auto& row : rows) try_row(row);
  }
  return rel;
}

// Positions of the variables shared between two atom relations.
void SharedPositions(const AtomRelation& a, const AtomRelation& b,
                     std::vector<int>* pos_a, std::vector<int>* pos_b) {
  for (std::size_t i = 0; i < a.vars.size(); ++i) {
    for (std::size_t j = 0; j < b.vars.size(); ++j) {
      if (a.vars[i] == b.vars[j]) {
        pos_a->push_back(static_cast<int>(i));
        pos_b->push_back(static_cast<int>(j));
      }
    }
  }
}

// target := target ⋉ source (keep target rows whose shared-variable
// projection appears in source).
void Semijoin(AtomRelation* target, const AtomRelation& source,
              YannakakisStats* stats, const ObsContext* obs) {
  std::vector<int> pos_t, pos_s;
  SharedPositions(*target, source, &pos_t, &pos_s);
  if (stats != nullptr) {
    ++stats->semijoins;
    stats->tuples_scanned += target->rows.size() + source.rows.size();
  }
  ObsCount(obs, "yannakakis.semijoins", 1);
  ObsCount(obs, "yannakakis.tuples_scanned",
           target->rows.size() + source.rows.size());
  if (pos_t.empty()) {
    // No shared variables: the semijoin only empties target if source is
    // empty (no supporting tuple at all).
    if (source.rows.empty()) target->rows.clear();
    return;
  }
  std::unordered_set<std::vector<ValueId>, VectorHash<ValueId>> keys;
  for (const auto& row : source.rows) {
    std::vector<ValueId> key;
    key.reserve(pos_s.size());
    for (int p : pos_s) key.push_back(row[p]);
    keys.insert(std::move(key));
  }
  std::vector<std::vector<ValueId>> kept;
  for (auto& row : target->rows) {
    std::vector<ValueId> key;
    key.reserve(pos_t.size());
    for (int p : pos_t) key.push_back(row[p]);
    if (keys.count(key)) kept.push_back(std::move(row));
  }
  target->rows = std::move(kept);
}

// Post-order over the join forest (children before parents).
std::vector<int> PostOrder(const JoinTree& jt) {
  std::vector<std::vector<int>> children = jt.Children();
  std::vector<int> order;
  std::vector<int> stack;
  for (int r : jt.Roots()) stack.push_back(r);
  // Iterative post-order: push, then reverse a pre-order.
  std::vector<int> pre;
  while (!stack.empty()) {
    int v = stack.back();
    stack.pop_back();
    pre.push_back(v);
    for (int c : children[v]) stack.push_back(c);
  }
  order.assign(pre.rbegin(), pre.rend());
  return order;
}

struct ReducedQuery {
  JoinTree jt;
  std::vector<AtomRelation> relations;
  bool empty_component = false;  // some root emptied out
};

Result<ReducedQuery> UpwardReduce(const ConjunctiveQuery& cq,
                                  const Database& db, const Assignment& fixed,
                                  YannakakisStats* stats,
                                  const ObsContext* obs) {
  QCONT_RETURN_IF_ERROR(cq.Validate());
  QCONT_ASSIGN_OR_RETURN(JoinTree jt, BuildJoinTree(cq));
  ObsSpan reduce_span(obs, "yannakakis/upward_reduce", "structure");
  reduce_span.AddArg("atoms", cq.atoms().size());
  ReducedQuery out;
  out.jt = std::move(jt);
  out.relations.reserve(cq.atoms().size());
  for (const Atom& a : cq.atoms()) {
    out.relations.push_back(BuildAtomRelation(a, db, fixed, stats, obs));
  }
  for (int v : PostOrder(out.jt)) {
    int p = out.jt.parent[v];
    if (p >= 0) {
      Semijoin(&out.relations[p], out.relations[v], stats, obs);
    } else if (out.relations[v].rows.empty()) {
      out.empty_component = true;
    }
  }
  return out;
}

}  // namespace

Result<bool> AcyclicSatisfiable(const ConjunctiveQuery& cq, const Database& db,
                                const Assignment& fixed, YannakakisStats* stats,
                                const ObsContext* obs) {
  if (cq.atoms().empty()) return true;
  QCONT_ASSIGN_OR_RETURN(ReducedQuery reduced,
                         UpwardReduce(cq, db, fixed, stats, obs));
  return !reduced.empty_component;
}

Result<std::vector<Tuple>> EvaluateAcyclicCq(const ConjunctiveQuery& cq,
                                             const Database& db,
                                             YannakakisStats* stats,
                                             const ObsContext* obs) {
  if (cq.atoms().empty()) {
    return std::vector<Tuple>{Tuple{}};
  }
  if (cq.IsBoolean()) {
    QCONT_ASSIGN_OR_RETURN(bool sat,
                           AcyclicSatisfiable(cq, db, {}, stats, obs));
    return sat ? std::vector<Tuple>{Tuple{}} : std::vector<Tuple>{};
  }
  QCONT_RETURN_IF_ERROR(cq.Validate());
  ObsSpan enum_span(obs, "yannakakis/enumerate", "structure");
  // Candidate values per head variable: the intersection, over the atoms
  // containing it, of the values the atom's candidate tuples allow. The
  // answer set is then computed with one Yannakakis satisfiability check
  // per candidate head assignment — polynomial for fixed arity, and free of
  // the duplicate blow-up of full match enumeration.
  std::vector<std::string> head_vars;
  for (const Term& t : cq.head()) {
    if (std::find(head_vars.begin(), head_vars.end(), t.name()) ==
        head_vars.end()) {
      head_vars.push_back(t.name());
    }
  }
  std::unordered_map<std::string, std::set<ValueId>> candidates;
  for (const Atom& atom : cq.atoms()) {
    AtomRelation rel = BuildAtomRelation(atom, db, /*fixed=*/{}, stats, obs);
    for (std::size_t i = 0; i < rel.vars.size(); ++i) {
      if (std::find(head_vars.begin(), head_vars.end(), rel.vars[i]) ==
          head_vars.end()) {
        continue;
      }
      std::set<ValueId> values;
      for (const auto& row : rel.rows) values.insert(row[i]);
      auto [it, inserted] = candidates.emplace(rel.vars[i], values);
      if (!inserted) {
        std::set<ValueId> merged;
        std::set_intersection(it->second.begin(), it->second.end(),
                              values.begin(), values.end(),
                              std::inserter(merged, merged.begin()));
        it->second = std::move(merged);
      }
    }
  }
  std::set<Tuple> results;
  Assignment fixed;
  std::function<Status(std::size_t)> try_assign =
      [&](std::size_t i) -> Status {
    if (i == head_vars.size()) {
      QCONT_ASSIGN_OR_RETURN(bool sat,
                             AcyclicSatisfiable(cq, db, fixed, stats, obs));
      if (sat) {
        Tuple head;
        head.reserve(cq.head().size());
        for (const Term& t : cq.head()) head.push_back(fixed.at(t.name()));
        results.insert(std::move(head));
      }
      return Status::Ok();
    }
    for (ValueId v : candidates[head_vars[i]]) {
      fixed[head_vars[i]] = db.ValueName(v);
      QCONT_RETURN_IF_ERROR(try_assign(i + 1));
    }
    fixed.erase(head_vars[i]);
    return Status::Ok();
  };
  QCONT_RETURN_IF_ERROR(try_assign(0));
  return std::vector<Tuple>(results.begin(), results.end());
}

Result<bool> CqContainedAcyclicRhs(const ConjunctiveQuery& theta,
                                   const ConjunctiveQuery& theta_prime,
                                   YannakakisStats* stats,
                                   const ObsContext* obs) {
  QCONT_RETURN_IF_ERROR(theta.Validate());
  QCONT_RETURN_IF_ERROR(theta_prime.Validate());
  if (theta.arity() != theta_prime.arity()) {
    return InvalidArgumentError("arity mismatch in containment test");
  }
  Database canonical = CanonicalDatabase(theta);
  canonical.set_obs(obs);
  Tuple frozen = CanonicalHead(theta);
  Assignment fixed;
  for (std::size_t i = 0; i < theta_prime.head().size(); ++i) {
    const std::string& var = theta_prime.head()[i].name();
    auto it = fixed.find(var);
    if (it != fixed.end()) {
      if (it->second != frozen[i]) return false;
    } else {
      fixed.emplace(var, frozen[i]);
    }
  }
  return AcyclicSatisfiable(theta_prime, canonical, fixed, stats, obs);
}

Result<bool> UcqContainedAcyclicRhs(const UnionQuery& theta,
                                    const UnionQuery& theta_prime,
                                    YannakakisStats* stats,
                                    const ObsContext* obs) {
  QCONT_RETURN_IF_ERROR(theta.Validate());
  QCONT_RETURN_IF_ERROR(theta_prime.Validate());
  for (const ConjunctiveQuery& disjunct : theta.disjuncts()) {
    bool contained = false;
    for (const ConjunctiveQuery& rhs : theta_prime.disjuncts()) {
      QCONT_ASSIGN_OR_RETURN(
          bool c, CqContainedAcyclicRhs(disjunct, rhs, stats, obs));
      if (c) {
        contained = true;
        break;
      }
    }
    if (!contained) return false;
  }
  return true;
}

}  // namespace qcont

#include "structure/tree_decomposition.h"

#include <algorithm>
#include <cstdint>
#include <functional>
#include <limits>
#include <queue>
#include <set>

#include "base/check.h"

namespace qcont {

int TreeDecomposition::Width() const {
  int width = -1;
  for (const auto& bag : bags) {
    width = std::max(width, static_cast<int>(bag.size()) - 1);
  }
  return width;
}

Status TreeDecomposition::Validate(const UndirectedGraph& g) const {
  const int n_bags = static_cast<int>(bags.size());
  // T must be a forest (then per-vertex connectedness below is meaningful;
  // a decomposition of a connected graph will come out connected anyway).
  std::vector<std::set<int>> tree(n_bags);
  for (auto [a, b] : edges) {
    if (a < 0 || b < 0 || a >= n_bags || b >= n_bags) {
      return InvalidArgumentError("tree edge out of range");
    }
    tree[a].insert(b);
    tree[b].insert(a);
  }
  {
    // Cycle check by union-find.
    std::vector<int> parent(n_bags);
    for (int i = 0; i < n_bags; ++i) parent[i] = i;
    std::function<int(int)> find = [&](int x) {
      while (parent[x] != x) x = parent[x] = parent[parent[x]];
      return x;
    };
    for (auto [a, b] : edges) {
      int ra = find(a), rb = find(b);
      if (ra == rb) return InvalidArgumentError("decomposition tree has a cycle");
      parent[ra] = rb;
    }
  }
  // Every graph edge must be inside some bag, and every vertex in some bag.
  std::vector<std::vector<int>> bags_of(g.NumVertices());
  for (int t = 0; t < n_bags; ++t) {
    for (int v : bags[t]) {
      if (v < 0 || static_cast<std::size_t>(v) >= g.NumVertices()) {
        return InvalidArgumentError("bag vertex out of range");
      }
      bags_of[v].push_back(t);
    }
  }
  for (std::size_t v = 0; v < g.NumVertices(); ++v) {
    if (bags_of[v].empty()) {
      return InvalidArgumentError("vertex " + std::to_string(v) +
                                  " appears in no bag");
    }
    for (int u : g.Neighbors(static_cast<int>(v))) {
      if (u < static_cast<int>(v)) continue;
      bool covered = false;
      for (int t : bags_of[v]) {
        if (std::find(bags[t].begin(), bags[t].end(), u) != bags[t].end()) {
          covered = true;
          break;
        }
      }
      if (!covered) {
        return InvalidArgumentError("edge (" + std::to_string(v) + "," +
                                    std::to_string(u) + ") in no bag");
      }
    }
  }
  // Connectedness of each vertex's bag set within T.
  for (std::size_t v = 0; v < g.NumVertices(); ++v) {
    const std::vector<int>& mine = bags_of[v];
    std::set<int> mine_set(mine.begin(), mine.end());
    std::set<int> reached;
    std::vector<int> stack = {mine.front()};
    reached.insert(mine.front());
    while (!stack.empty()) {
      int t = stack.back();
      stack.pop_back();
      for (int s : tree[t]) {
        if (mine_set.count(s) && !reached.count(s)) {
          reached.insert(s);
          stack.push_back(s);
        }
      }
    }
    if (reached.size() != mine_set.size()) {
      return InvalidArgumentError("bags of vertex " + std::to_string(v) +
                                  " are not connected in T");
    }
  }
  return Status::Ok();
}

namespace {

// Adjacency copy that supports elimination with fill-in.
std::vector<std::set<int>> CopyAdjacency(const UndirectedGraph& g) {
  std::vector<std::set<int>> adj(g.NumVertices());
  for (std::size_t v = 0; v < g.NumVertices(); ++v) {
    adj[v] = g.Neighbors(static_cast<int>(v));
  }
  return adj;
}

void Eliminate(std::vector<std::set<int>>* adj, int v) {
  std::vector<int> nbrs((*adj)[v].begin(), (*adj)[v].end());
  for (std::size_t i = 0; i < nbrs.size(); ++i) {
    for (std::size_t j = i + 1; j < nbrs.size(); ++j) {
      (*adj)[nbrs[i]].insert(nbrs[j]);
      (*adj)[nbrs[j]].insert(nbrs[i]);
    }
  }
  for (int u : nbrs) (*adj)[u].erase(v);
  (*adj)[v].clear();
}

}  // namespace

TreeDecomposition DecompositionFromOrder(const UndirectedGraph& g,
                                         const std::vector<int>& order) {
  QCONT_CHECK(order.size() == g.NumVertices());
  TreeDecomposition td;
  if (g.NumVertices() == 0) {
    td.bags.push_back({});
    return td;
  }
  std::vector<std::set<int>> adj = CopyAdjacency(g);
  std::vector<int> position(g.NumVertices());
  for (std::size_t i = 0; i < order.size(); ++i) position[order[i]] = i;
  std::vector<int> bag_of(g.NumVertices());
  for (std::size_t i = 0; i < order.size(); ++i) {
    int v = order[i];
    std::vector<int> bag = {v};
    int next_neighbor = -1;  // earliest-later-eliminated current neighbor
    for (int u : adj[v]) {
      bag.push_back(u);
      if (next_neighbor == -1 || position[u] < position[next_neighbor]) {
        next_neighbor = u;
      }
    }
    std::sort(bag.begin(), bag.end());
    bag_of[v] = static_cast<int>(td.bags.size());
    td.bags.push_back(std::move(bag));
    if (next_neighbor != -1) {
      // The neighbor's bag does not exist yet; record a pending edge by
      // storing against the neighbor's eventual bag index: we connect after
      // all bags exist, so remember (v, next_neighbor).
      td.edges.emplace_back(bag_of[v], ~next_neighbor);  // patched below
    }
    Eliminate(&adj, v);
  }
  for (auto& [a, b] : td.edges) {
    if (b < 0) b = bag_of[~b];
  }
  return td;
}

std::vector<int> MinFillOrder(const UndirectedGraph& g) {
  std::vector<std::set<int>> adj = CopyAdjacency(g);
  std::vector<bool> eliminated(g.NumVertices(), false);
  std::vector<int> order;
  order.reserve(g.NumVertices());
  for (std::size_t round = 0; round < g.NumVertices(); ++round) {
    int best = -1;
    long best_fill = std::numeric_limits<long>::max();
    for (std::size_t v = 0; v < g.NumVertices(); ++v) {
      if (eliminated[v]) continue;
      long fill = 0;
      std::vector<int> nbrs(adj[v].begin(), adj[v].end());
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        for (std::size_t j = i + 1; j < nbrs.size(); ++j) {
          if (!adj[nbrs[i]].count(nbrs[j])) ++fill;
        }
      }
      if (fill < best_fill) {
        best_fill = fill;
        best = static_cast<int>(v);
      }
    }
    eliminated[best] = true;
    order.push_back(best);
    Eliminate(&adj, best);
  }
  return order;
}

namespace {

// |R(v, T)|: vertices outside T ∪ {v} reachable from v via paths whose
// internal vertices all lie in T. This is v's neighborhood once T has been
// eliminated.
int ReachCount(const UndirectedGraph& g, int v, std::uint32_t t_mask) {
  std::uint32_t visited = 1u << v;
  std::uint32_t reached = 0;
  std::vector<int> stack = {v};
  while (!stack.empty()) {
    int x = stack.back();
    stack.pop_back();
    for (int u : g.Neighbors(x)) {
      std::uint32_t bit = 1u << u;
      if (visited & bit) continue;
      visited |= bit;
      if (t_mask & bit) {
        stack.push_back(u);  // pass through eliminated vertex
      } else {
        reached |= bit;
      }
    }
  }
  return __builtin_popcount(reached);
}

}  // namespace

Result<int> TreewidthExact(const UndirectedGraph& g, int max_vertices) {
  const int n = static_cast<int>(g.NumVertices());
  if (n > max_vertices || n > 30) {
    return ResourceExhaustedError(
        "exact treewidth limited to " + std::to_string(max_vertices) +
        " vertices, got " + std::to_string(n));
  }
  if (n == 0) return 0;
  const std::uint32_t full = (n == 32) ? ~0u : ((1u << n) - 1);
  // f[S] = minimum over elimination orders of S (eliminated first) of the
  // max neighborhood size encountered. Treewidth = f[full].
  std::vector<std::int8_t> f(static_cast<std::size_t>(full) + 1, 0);
  for (std::uint32_t s = 1; s <= full; ++s) {
    int best = std::numeric_limits<int>::max();
    for (int v = 0; v < n; ++v) {
      std::uint32_t bit = 1u << v;
      if (!(s & bit)) continue;
      std::uint32_t rest = s ^ bit;
      int cost = std::max(static_cast<int>(f[rest]), ReachCount(g, v, rest));
      best = std::min(best, cost);
    }
    f[s] = static_cast<std::int8_t>(best);
  }
  return static_cast<int>(f[full]);
}

int TreewidthBound(const UndirectedGraph& g, bool* exact) {
  Result<int> tw = TreewidthExact(g);
  if (tw.ok()) {
    if (exact != nullptr) *exact = true;
    return *tw;
  }
  if (exact != nullptr) *exact = false;
  return DecompositionFromOrder(g, MinFillOrder(g)).Width();
}

}  // namespace qcont

#ifndef QCONT_STRUCTURE_DECOMP_EVAL_H_
#define QCONT_STRUCTURE_DECOMP_EVAL_H_

#include <cstdint>

#include "base/status.h"
#include "cq/database.h"
#include "cq/homomorphism.h"
#include "cq/query.h"
#include "obs/obs.h"
#include "structure/tree_decomposition.h"

namespace qcont {

/// Counters for the bounded-treewidth dynamic program.
struct DecompEvalStats {
  /// Candidate bag tuples enumerated by the DP (hot: one per full bag
  /// assignment tried). Accumulates across runs; registry mirror: counter
  /// `decomp.bag_assignments`, published once per run at the end.
  std::uint64_t bag_assignments = 0;
  /// Width of the decomposition the last run used (-1 before any run).
  /// Assigned per run; gauge `decomp.width_used`.
  int width_used = -1;
};

/// Decides whether `cq` has a homomorphism into `db` extending `fixed`,
/// using dynamic programming over a tree decomposition of the Gaifman
/// graph of `cq` [Chekuri-Rajaraman; Dalmau-Kolaitis-Vardi]. Runs in time
/// |db|^{w+1} · poly where w is the width of the decomposition used, so it
/// is polynomial for queries from a class TW(k).
///
/// A decomposition is computed internally (exact for small queries,
/// min-fill otherwise).
Result<bool> BoundedWidthSatisfiable(const ConjunctiveQuery& cq,
                                     const Database& db,
                                     const Assignment& fixed = {},
                                     DecompEvalStats* stats = nullptr,
                                     const ObsContext* obs = nullptr);

/// CQ containment theta ⊆ theta' where theta' has bounded treewidth:
/// Chandra-Merlin via BoundedWidthSatisfiable (Theorem 3 of the paper).
Result<bool> CqContainedBoundedTwRhs(const ConjunctiveQuery& theta,
                                     const ConjunctiveQuery& theta_prime,
                                     DecompEvalStats* stats = nullptr,
                                     const ObsContext* obs = nullptr);

}  // namespace qcont

#endif  // QCONT_STRUCTURE_DECOMP_EVAL_H_

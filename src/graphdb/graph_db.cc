#include "graphdb/graph_db.h"

#include "base/check.h"

namespace qcont {

void GraphDatabase::AddNode(const std::string& node) { nodes_.insert(node); }

void GraphDatabase::AddEdge(const std::string& from, const std::string& label,
                            const std::string& to) {
  QCONT_CHECK_MSG(label.empty() || label.back() != '-',
                  "edge labels must not end in '-' (reserved for inverses)");
  nodes_.insert(from);
  nodes_.insert(to);
  labels_.insert(label);
  adjacency_[from][label].push_back(to);
  adjacency_[to][label + "-"].push_back(from);
  ++num_edges_;
}

std::set<std::string> GraphDatabase::Alphabet() const { return labels_; }

std::vector<std::string> GraphDatabase::Successors(
    const std::string& node, const std::string& symbol) const {
  auto node_it = adjacency_.find(node);
  if (node_it == adjacency_.end()) return {};
  auto sym_it = node_it->second.find(symbol);
  if (sym_it == node_it->second.end()) return {};
  return sym_it->second;
}

bool GraphDatabase::HasEdge(const std::string& from, const std::string& label,
                            const std::string& to) const {
  for (const std::string& succ : Successors(from, label)) {
    if (succ == to) return true;
  }
  return false;
}

Database GraphDatabase::ToDatabase() const {
  Database db;
  for (const auto& [from, by_symbol] : adjacency_) {
    for (const auto& [symbol, succs] : by_symbol) {
      if (!symbol.empty() && symbol.back() == '-') continue;  // skip inverses
      for (const std::string& to : succs) {
        db.AddFact(symbol, {from, to});
      }
    }
  }
  return db;
}

GraphDatabase GraphDatabase::FromDatabase(const Database& db) {
  GraphDatabase g;
  for (const std::string& rel : db.Relations()) {
    for (const Tuple& t : db.Facts(rel)) {
      QCONT_CHECK_MSG(t.size() == 2,
                      "graph databases require binary relations only");
      g.AddEdge(t[0], rel, t[1]);
    }
  }
  return g;
}

}  // namespace qcont

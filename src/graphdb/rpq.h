#ifndef QCONT_GRAPHDB_RPQ_H_
#define QCONT_GRAPHDB_RPQ_H_

#include <cstdint>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "automata/nfa.h"
#include "graphdb/graph_db.h"
#include "obs/obs.h"

namespace qcont {

/// Counters for the product-BFS evaluation.
struct RpqEvalStats {
  /// (node, nfa-state) product pairs visited (hot: one per BFS pop).
  /// Accumulates across runs; registry mirror: counter
  /// `rpq.product_states`, published once per BFS at the end.
  std::uint64_t product_states = 0;
};

/// Nodes reachable from `source` by a path of G± whose label is accepted by
/// `nfa` (the single-source 2RPQ evaluation primitive): BFS over the
/// product of the graph completion and the NFA.
std::set<std::string> RpqReachableFrom(const Nfa& nfa, const GraphDatabase& g,
                                       const std::string& source,
                                       RpqEvalStats* stats = nullptr,
                                       const ObsContext* obs = nullptr);

/// Full 2RPQ evaluation L(G): all node pairs (v, v') connected by an
/// accepted path. Quadratic-ish: one product BFS per source node.
std::vector<std::pair<std::string, std::string>> EvaluateRpq(
    const Nfa& nfa, const GraphDatabase& g, RpqEvalStats* stats = nullptr,
    const ObsContext* obs = nullptr);

}  // namespace qcont

#endif  // QCONT_GRAPHDB_RPQ_H_

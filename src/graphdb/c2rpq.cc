#include "graphdb/c2rpq.h"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_set>

#include "cq/homomorphism.h"
#include "structure/acyclic_eval.h"
#include "structure/join_tree.h"

namespace qcont {

Result<RpqAtom> MakeRpqAtom(const std::string& pattern, const Term& x,
                            const Term& y) {
  QCONT_ASSIGN_OR_RETURN(Nfa nfa, ParseRegex(pattern));
  return RpqAtom{pattern, std::move(nfa), x, y};
}

Status C2rpq::Validate() const {
  if (atoms_.empty()) {
    return InvalidArgumentError("a C2RPQ must have at least one atom");
  }
  std::set<std::string> vars;
  for (const RpqAtom& a : atoms_) {
    if (!a.x.is_variable() || !a.y.is_variable()) {
      return InvalidArgumentError("C2RPQ endpoints must be variables");
    }
    vars.insert(a.x.name());
    vars.insert(a.y.name());
  }
  for (const Term& t : head_) {
    if (!t.is_variable() || !vars.count(t.name())) {
      return InvalidArgumentError("free variable " + t.ToString() +
                                  " does not occur in any atom");
    }
  }
  return Status::Ok();
}

ConjunctiveQuery C2rpq::UnderlyingCq() const {
  std::vector<Atom> atoms;
  atoms.reserve(atoms_.size());
  for (std::size_t i = 0; i < atoms_.size(); ++i) {
    atoms.emplace_back("_T" + std::to_string(i),
                       std::vector<Term>{atoms_[i].x, atoms_[i].y});
  }
  return ConjunctiveQuery(head_, std::move(atoms));
}

std::string C2rpq::ToString() const {
  std::string out = "(";
  for (std::size_t i = 0; i < head_.size(); ++i) {
    if (i > 0) out += ",";
    out += head_[i].ToString();
  }
  out += ") <- ";
  for (std::size_t i = 0; i < atoms_.size(); ++i) {
    if (i > 0) out += ", ";
    out += "[" + atoms_[i].pattern + "](" + atoms_[i].x.ToString() + "," +
           atoms_[i].y.ToString() + ")";
  }
  return out;
}

Status UC2rpq::Validate() const {
  if (disjuncts_.empty()) {
    return InvalidArgumentError("a UC2RPQ must have at least one disjunct");
  }
  for (const C2rpq& q : disjuncts_) {
    QCONT_RETURN_IF_ERROR(q.Validate());
    if (q.arity() != disjuncts_.front().arity()) {
      return InvalidArgumentError("UC2RPQ disjuncts have different arities");
    }
  }
  return Status::Ok();
}

std::string UC2rpq::ToString() const {
  std::string out;
  for (std::size_t i = 0; i < disjuncts_.size(); ++i) {
    if (i > 0) out += "  UNION  ";
    out += disjuncts_[i].ToString();
  }
  return out;
}

namespace {

// Materializes each atom's 2RPQ relation as a database over the fresh
// predicates of the underlying CQ.
Database MaterializeAtoms(const C2rpq& query, const GraphDatabase& g,
                          RpqEvalStats* stats) {
  Database db;
  for (std::size_t i = 0; i < query.atoms().size(); ++i) {
    const std::string rel = "_T" + std::to_string(i);
    for (auto& [from, to] : EvaluateRpq(query.atoms()[i].nfa, g, stats)) {
      db.AddFact(rel, {from, to});
    }
  }
  return db;
}

}  // namespace

Result<std::vector<Tuple>> EvaluateC2rpq(const C2rpq& query,
                                         const GraphDatabase& g,
                                         RpqEvalStats* stats) {
  QCONT_RETURN_IF_ERROR(query.Validate());
  Database db = MaterializeAtoms(query, g, stats);
  return EvaluateCq(query.UnderlyingCq(), db);
}

Result<std::vector<Tuple>> EvaluateAcyclicC2rpq(const C2rpq& query,
                                                const GraphDatabase& g,
                                                RpqEvalStats* stats) {
  QCONT_RETURN_IF_ERROR(query.Validate());
  Database db = MaterializeAtoms(query, g, stats);
  return EvaluateAcyclicCq(query.UnderlyingCq(), db);
}

Result<std::vector<Tuple>> EvaluateUC2rpq(const UC2rpq& query,
                                          const GraphDatabase& g,
                                          RpqEvalStats* stats) {
  QCONT_RETURN_IF_ERROR(query.Validate());
  std::set<Tuple> out;
  for (const C2rpq& q : query.disjuncts()) {
    QCONT_ASSIGN_OR_RETURN(std::vector<Tuple> tuples, EvaluateC2rpq(q, g, stats));
    for (Tuple& t : tuples) out.insert(std::move(t));
  }
  return std::vector<Tuple>(out.begin(), out.end());
}

bool IsAcyclicC2rpq(const C2rpq& query) {
  return IsAcyclic(query.UnderlyingCq());
}

Result<bool> IsAcyclicUC2rpq(const UC2rpq& query) {
  QCONT_RETURN_IF_ERROR(query.Validate());
  for (const C2rpq& q : query.disjuncts()) {
    if (!IsAcyclicC2rpq(q)) return false;
  }
  return true;
}

Result<int> AcrkLevel(const UC2rpq& query) {
  QCONT_ASSIGN_OR_RETURN(bool acyclic, IsAcyclicUC2rpq(query));
  if (!acyclic) {
    return FailedPreconditionError("UC2RPQ is not acyclic; ACRk is undefined");
  }
  int k = 1;
  for (const C2rpq& q : query.disjuncts()) {
    std::map<std::pair<std::string, std::string>, int> count;
    for (const RpqAtom& a : q.atoms()) {
      if (a.x.name() == a.y.name()) continue;  // loops belong to no pair
      std::string lo = std::min(a.x.name(), a.y.name());
      std::string hi = std::max(a.x.name(), a.y.name());
      k = std::max(k, ++count[{lo, hi}]);
    }
  }
  return k;
}

Result<bool> UcqContainedInUC2rpq(const UnionQuery& theta, const UC2rpq& gamma,
                                  RpqEvalStats* stats) {
  QCONT_RETURN_IF_ERROR(theta.Validate());
  QCONT_RETURN_IF_ERROR(gamma.Validate());
  if (theta.arity() != gamma.arity()) {
    return InvalidArgumentError("arity mismatch in containment test");
  }
  for (const ConjunctiveQuery& disjunct : theta.disjuncts()) {
    for (const Atom& a : disjunct.atoms()) {
      if (a.arity() != 2) {
        return InvalidArgumentError(
            "UCQ-in-UC2RPQ containment requires a binary schema");
      }
    }
    GraphDatabase g = GraphDatabase::FromDatabase(CanonicalDatabase(disjunct));
    Tuple frozen = CanonicalHead(disjunct);
    QCONT_ASSIGN_OR_RETURN(std::vector<Tuple> result,
                           EvaluateUC2rpq(gamma, g, stats));
    if (std::find(result.begin(), result.end(), frozen) == result.end()) {
      return false;
    }
  }
  return true;
}

}  // namespace qcont

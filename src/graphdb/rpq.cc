#include "graphdb/rpq.h"

#include <queue>

namespace qcont {

std::set<std::string> RpqReachableFrom(const Nfa& nfa, const GraphDatabase& g,
                                       const std::string& source,
                                       RpqEvalStats* stats,
                                       const ObsContext* obs) {
  std::set<std::string> result;
  if (nfa.num_states() == 0) return result;
  std::uint64_t run_product_states = 0;
  std::set<std::pair<std::string, int>> visited;
  std::queue<std::pair<std::string, int>> frontier;
  for (int s : nfa.EpsilonClosure({nfa.initial()})) {
    if (visited.insert({source, s}).second) frontier.emplace(source, s);
  }
  while (!frontier.empty()) {
    auto [node, state] = frontier.front();
    frontier.pop();
    ++run_product_states;
    if (nfa.IsAccepting(state)) result.insert(node);
    for (const auto& [symbol, next_state] : nfa.TransitionsFrom(state)) {
      for (const std::string& next_node : g.Successors(node, symbol)) {
        for (int closed : nfa.EpsilonClosure({next_state})) {
          if (visited.insert({next_node, closed}).second) {
            frontier.emplace(next_node, closed);
          }
        }
      }
    }
  }
  // product_states is bumped per BFS pop (hot), so the registry gets one
  // publish per BFS — the same delta the legacy sink receives.
  if (stats != nullptr) stats->product_states += run_product_states;
  ObsCount(obs, "rpq.product_states", run_product_states);
  return result;
}

std::vector<std::pair<std::string, std::string>> EvaluateRpq(
    const Nfa& nfa, const GraphDatabase& g, RpqEvalStats* stats,
    const ObsContext* obs) {
  ObsSpan eval_span(obs, "rpq/eval", "graphdb");
  std::vector<std::pair<std::string, std::string>> out;
  for (const std::string& source : g.Nodes()) {
    for (const std::string& target :
         RpqReachableFrom(nfa, g, source, stats, obs)) {
      out.emplace_back(source, target);
    }
  }
  eval_span.AddArg("pairs", out.size());
  return out;
}

}  // namespace qcont

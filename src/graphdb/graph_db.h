#ifndef QCONT_GRAPHDB_GRAPH_DB_H_
#define QCONT_GRAPHDB_GRAPH_DB_H_

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "cq/database.h"

namespace qcont {

/// A graph database over a finite alphabet Σ: a set of nodes and a set of
/// labeled edges (v, a, v') [Section 5.1]. Inverse symbols "a-" are not
/// stored; the completion G± is realized by the navigation primitives,
/// which traverse "a-" edges backwards.
class GraphDatabase {
 public:
  GraphDatabase() = default;

  /// Adds a node (idempotent).
  void AddNode(const std::string& node);

  /// Adds an edge and its endpoints. `label` must not use the reserved
  /// inverse suffix "-".
  void AddEdge(const std::string& from, const std::string& label,
               const std::string& to);

  const std::set<std::string>& Nodes() const { return nodes_; }
  std::size_t NumEdges() const { return num_edges_; }

  /// Alphabet Σ of edge labels present in the graph.
  std::set<std::string> Alphabet() const;

  /// Successors of `node` under `symbol` in the completion G±: forward
  /// edges for "a", backward edges for "a-".
  std::vector<std::string> Successors(const std::string& node,
                                      const std::string& symbol) const;

  bool HasEdge(const std::string& from, const std::string& label,
               const std::string& to) const;

  /// The relational view used when a Datalog program runs over the graph:
  /// one binary relation per label, named after the label.
  Database ToDatabase() const;

  /// Builds a graph database from the binary relations of `db`; relations
  /// of other arities are rejected upstream by callers (checked here with
  /// QCONT_CHECK).
  static GraphDatabase FromDatabase(const Database& db);

 private:
  std::set<std::string> nodes_;
  // adjacency[node][symbol or symbol + "-"] = successors.
  std::map<std::string, std::map<std::string, std::vector<std::string>>>
      adjacency_;
  std::set<std::string> labels_;
  std::size_t num_edges_ = 0;
};

}  // namespace qcont

#endif  // QCONT_GRAPHDB_GRAPH_DB_H_

#ifndef QCONT_GRAPHDB_C2RPQ_H_
#define QCONT_GRAPHDB_C2RPQ_H_

#include <string>
#include <vector>

#include "automata/nfa.h"
#include "base/status.h"
#include "cq/database.h"
#include "cq/query.h"
#include "graphdb/graph_db.h"
#include "graphdb/rpq.h"

namespace qcont {

/// One atom L(x, y) of a C2RPQ: a 2RPQ (regular expression over Σ ∪ Σ⁻,
/// compiled to an NFA) between two variables.
struct RpqAtom {
  std::string pattern;  // the source regular expression, for printing
  Nfa nfa;
  Term x;
  Term y;
};

/// Builds an atom by parsing `pattern` (see ParseRegex for the syntax).
Result<RpqAtom> MakeRpqAtom(const std::string& pattern, const Term& x,
                            const Term& y);

/// A conjunctive two-way regular path query over Σ [Calvanese et al.]:
/// ∃z̄ (L1(x1,y1) ∧ ... ∧ Lm(xm,ym)) with free variables `head`.
class C2rpq {
 public:
  C2rpq(std::vector<Term> head, std::vector<RpqAtom> atoms)
      : head_(std::move(head)), atoms_(std::move(atoms)) {}

  const std::vector<Term>& head() const { return head_; }
  const std::vector<RpqAtom>& atoms() const { return atoms_; }
  std::size_t arity() const { return head_.size(); }

  Status Validate() const;

  /// The underlying CQ (Section 5.2): each atom Li(xi, yi) becomes
  /// Ti(xi, yi) for a fresh binary predicate Ti. Structural notions
  /// (acyclicity, ACRk) are defined on this query.
  ConjunctiveQuery UnderlyingCq() const;

  std::string ToString() const;

 private:
  std::vector<Term> head_;
  std::vector<RpqAtom> atoms_;
};

/// A union of C2RPQs with equal arities.
class UC2rpq {
 public:
  explicit UC2rpq(std::vector<C2rpq> disjuncts)
      : disjuncts_(std::move(disjuncts)) {}

  const std::vector<C2rpq>& disjuncts() const { return disjuncts_; }
  std::size_t arity() const {
    return disjuncts_.empty() ? 0 : disjuncts_.front().arity();
  }
  Status Validate() const;
  std::string ToString() const;

 private:
  std::vector<C2rpq> disjuncts_;
};

/// Evaluates a C2RPQ over a graph database: each atom's 2RPQ relation is
/// materialized by product BFS, then the conjunction is evaluated as a CQ
/// over those relations. NP-complete in combined complexity in general.
Result<std::vector<Tuple>> EvaluateC2rpq(const C2rpq& query,
                                         const GraphDatabase& g,
                                         RpqEvalStats* stats = nullptr);

/// Same, via Yannakakis on the materialized atom relations; requires the
/// query to be acyclic (class ACR) and then runs in polynomial time [3].
Result<std::vector<Tuple>> EvaluateAcyclicC2rpq(const C2rpq& query,
                                                const GraphDatabase& g,
                                                RpqEvalStats* stats = nullptr);

/// Evaluates a UC2RPQ (union of the disjunct evaluations, deduplicated).
Result<std::vector<Tuple>> EvaluateUC2rpq(const UC2rpq& query,
                                          const GraphDatabase& g,
                                          RpqEvalStats* stats = nullptr);

/// Classification (Section 5.2 / 5.3).
bool IsAcyclicC2rpq(const C2rpq& query);
Result<bool> IsAcyclicUC2rpq(const UC2rpq& query);

/// The least k with Γ ∈ ACRk: the maximum number of atoms connecting a
/// pair of *distinct* variables (loop atoms L(x,x) are not counted).
/// Requires Γ acyclic (kFailedPrecondition otherwise). ACR1 queries are
/// the strongly acyclic UC2RPQs.
Result<int> AcrkLevel(const UC2rpq& query);

/// Containment of a UCQ over binary relations in a UC2RPQ: Θ ⊆ Γ iff the
/// frozen head of each disjunct θ is in Γ(D_θ) viewed as a graph database
/// (UC2RPQs are preserved under homomorphisms, so the canonical-database
/// test is sound and complete).
Result<bool> UcqContainedInUC2rpq(const UnionQuery& theta, const UC2rpq& gamma,
                                  RpqEvalStats* stats = nullptr);

}  // namespace qcont

#endif  // QCONT_GRAPHDB_C2RPQ_H_

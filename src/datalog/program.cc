#include "datalog/program.h"

#include <map>
#include <unordered_set>

#include "datalog/predicate_graph.h"

namespace qcont {

std::string Rule::ToString() const {
  std::string out = head.ToString() + " <- ";
  for (std::size_t i = 0; i < body.size(); ++i) {
    if (i > 0) out += ", ";
    out += body[i].ToString();
  }
  return out;
}

std::vector<std::string> Rule::Variables() const {
  std::vector<std::string> out;
  std::unordered_set<std::string> seen;
  auto add = [&](const Atom& a) {
    for (const Term& t : a.terms()) {
      if (t.is_variable() && seen.insert(t.name()).second) {
        out.push_back(t.name());
      }
    }
  };
  add(head);
  for (const Atom& a : body) add(a);
  return out;
}

void DatalogProgram::BuildIndexes() {
  std::map<std::string, std::vector<int>> by_head;
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    idb_.insert(rules_[i].head.predicate());
    by_head[rules_[i].head.predicate()].push_back(static_cast<int>(i));
  }
  for (const Rule& r : rules_) {
    for (const Atom& a : r.body) {
      if (!idb_.count(a.predicate())) edb_.insert(a.predicate());
    }
  }
  rules_for_.assign(by_head.begin(), by_head.end());
}

const std::vector<int>& DatalogProgram::RulesFor(
    const std::string& predicate) const {
  static const std::vector<int>* const kEmpty = new std::vector<int>();
  for (const auto& [name, indices] : rules_for_) {
    if (name == predicate) return indices;
  }
  return *kEmpty;
}

int DatalogProgram::ArityOf(const std::string& predicate) const {
  for (const Rule& r : rules_) {
    if (r.head.predicate() == predicate) {
      return static_cast<int>(r.head.arity());
    }
    for (const Atom& a : r.body) {
      if (a.predicate() == predicate) return static_cast<int>(a.arity());
    }
  }
  return kMissingArity;
}

bool DatalogProgram::IsRecursive() const {
  // Extensional predicates have no outgoing edges, so a cycle in the full
  // dependency graph is a cycle among intensional predicates.
  return PredicateGraph(*this).HasCycle();
}

bool DatalogProgram::IsLinear() const {
  for (const Rule& r : rules_) {
    int intensional = 0;
    for (const Atom& a : r.body) {
      if (idb_.count(a.predicate())) ++intensional;
    }
    if (intensional > 1) return false;
  }
  return true;
}

bool DatalogProgram::IsMonadic() const {
  for (const std::string& p : idb_) {
    if (ArityOf(p) > 1) return false;
  }
  return true;
}

int DatalogProgram::MaxRuleVariables() const {
  int best = 0;
  for (const Rule& r : rules_) {
    best = std::max(best, static_cast<int>(r.Variables().size()));
  }
  return best;
}

int DatalogProgram::MaxIntensionalAtoms() const {
  int best = 0;
  for (const Rule& r : rules_) {
    int count = 0;
    for (const Atom& a : r.body) {
      if (idb_.count(a.predicate())) ++count;
    }
    best = std::max(best, count);
  }
  return best;
}

std::string DatalogProgram::ToString() const {
  std::string out;
  for (const Rule& r : rules_) {
    out += r.ToString() + ".\n";
  }
  out += "goal: " + goal_ + "\n";
  return out;
}

}  // namespace qcont

#include "datalog/program.h"

#include <functional>
#include <map>
#include <unordered_map>
#include <unordered_set>

namespace qcont {

std::string Rule::ToString() const {
  std::string out = head.ToString() + " <- ";
  for (std::size_t i = 0; i < body.size(); ++i) {
    if (i > 0) out += ", ";
    out += body[i].ToString();
  }
  return out;
}

std::vector<std::string> Rule::Variables() const {
  std::vector<std::string> out;
  std::unordered_set<std::string> seen;
  auto add = [&](const Atom& a) {
    for (const Term& t : a.terms()) {
      if (t.is_variable() && seen.insert(t.name()).second) {
        out.push_back(t.name());
      }
    }
  };
  add(head);
  for (const Atom& a : body) add(a);
  return out;
}

void DatalogProgram::BuildIndexes() {
  std::map<std::string, std::vector<int>> by_head;
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    idb_.insert(rules_[i].head.predicate());
    by_head[rules_[i].head.predicate()].push_back(static_cast<int>(i));
  }
  for (const Rule& r : rules_) {
    for (const Atom& a : r.body) {
      if (!idb_.count(a.predicate())) edb_.insert(a.predicate());
    }
  }
  rules_for_.assign(by_head.begin(), by_head.end());
}

const std::vector<int>& DatalogProgram::RulesFor(
    const std::string& predicate) const {
  static const std::vector<int>* const kEmpty = new std::vector<int>();
  for (const auto& [name, indices] : rules_for_) {
    if (name == predicate) return indices;
  }
  return *kEmpty;
}

int DatalogProgram::ArityOf(const std::string& predicate) const {
  for (const Rule& r : rules_) {
    if (r.head.predicate() == predicate) {
      return static_cast<int>(r.head.arity());
    }
    for (const Atom& a : r.body) {
      if (a.predicate() == predicate) return static_cast<int>(a.arity());
    }
  }
  return kMissingArity;
}

Status DatalogProgram::Validate() const {
  if (rules_.empty()) return InvalidArgumentError("program has no rules");
  if (!idb_.count(goal_)) {
    return InvalidArgumentError("goal predicate '" + goal_ +
                                "' is not intensional");
  }
  std::unordered_map<std::string, std::size_t> arities;
  for (const Rule& r : rules_) {
    std::unordered_set<std::string> body_vars;
    for (const Atom& a : r.body) {
      for (const Term& t : a.terms()) {
        if (!t.is_variable()) {
          return InvalidArgumentError("constants are not supported in rules: " +
                                      r.ToString());
        }
        body_vars.insert(t.name());
      }
    }
    for (const Term& t : r.head.terms()) {
      if (!t.is_variable()) {
        return InvalidArgumentError("constants are not supported in rules: " +
                                    r.ToString());
      }
      if (!body_vars.count(t.name())) {
        return InvalidArgumentError("unsafe rule (head variable '" + t.name() +
                                    "' not in body): " + r.ToString());
      }
    }
    auto check_arity = [&](const Atom& a) -> Status {
      auto [it, inserted] = arities.emplace(a.predicate(), a.arity());
      if (!inserted && it->second != a.arity()) {
        return InvalidArgumentError("predicate '" + a.predicate() +
                                    "' used with inconsistent arities");
      }
      return Status::Ok();
    };
    QCONT_RETURN_IF_ERROR(check_arity(r.head));
    for (const Atom& a : r.body) QCONT_RETURN_IF_ERROR(check_arity(a));
  }
  return Status::Ok();
}

bool DatalogProgram::IsRecursive() const {
  // DFS over the predicate dependency graph looking for a cycle among
  // intensional predicates.
  std::map<std::string, std::vector<std::string>> deps;
  for (const Rule& r : rules_) {
    for (const Atom& a : r.body) {
      if (idb_.count(a.predicate())) {
        deps[r.head.predicate()].push_back(a.predicate());
      }
    }
  }
  std::unordered_map<std::string, int> state;  // 0 new, 1 active, 2 done
  std::function<bool(const std::string&)> has_cycle =
      [&](const std::string& p) -> bool {
    int& s = state[p];
    if (s == 1) return true;
    if (s == 2) return false;
    s = 1;
    for (const std::string& q : deps[p]) {
      if (has_cycle(q)) return true;
    }
    s = 2;
    return false;
  };
  for (const std::string& p : idb_) {
    if (has_cycle(p)) return true;
  }
  return false;
}

bool DatalogProgram::IsLinear() const {
  for (const Rule& r : rules_) {
    int intensional = 0;
    for (const Atom& a : r.body) {
      if (idb_.count(a.predicate())) ++intensional;
    }
    if (intensional > 1) return false;
  }
  return true;
}

bool DatalogProgram::IsMonadic() const {
  for (const std::string& p : idb_) {
    if (ArityOf(p) > 1) return false;
  }
  return true;
}

int DatalogProgram::MaxRuleVariables() const {
  int best = 0;
  for (const Rule& r : rules_) {
    best = std::max(best, static_cast<int>(r.Variables().size()));
  }
  return best;
}

int DatalogProgram::MaxIntensionalAtoms() const {
  int best = 0;
  for (const Rule& r : rules_) {
    int count = 0;
    for (const Atom& a : r.body) {
      if (idb_.count(a.predicate())) ++count;
    }
    best = std::max(best, count);
  }
  return best;
}

std::string DatalogProgram::ToString() const {
  std::string out;
  for (const Rule& r : rules_) {
    out += r.ToString() + ".\n";
  }
  out += "goal: " + goal_ + "\n";
  return out;
}

}  // namespace qcont

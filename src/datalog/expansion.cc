#include "datalog/expansion.h"

#include <algorithm>
#include <set>
#include <string>
#include <unordered_map>

#include "base/check.h"

namespace qcont {

namespace {

// State of a partial expansion (SLD-style): a list of pending intensional
// atom instances to unfold, the extensional atoms collected so far, and a
// union-find over instantiated variable names (head unification can merge
// variables when a rule head repeats a variable).
struct ExpansionState {
  struct Pending {
    std::string predicate;
    std::vector<std::string> args;  // instantiated variable names
    int depth;
  };
  std::vector<Pending> pending;
  std::vector<std::pair<std::string, std::vector<std::string>>> atoms;
  std::unordered_map<std::string, std::string> parent;  // union-find
  int fresh_counter = 0;

  std::string Find(const std::string& x) {
    auto it = parent.find(x);
    if (it == parent.end()) return x;
    std::string root = Find(it->second);
    parent[x] = root;
    return root;
  }

  void Union(const std::string& a, const std::string& b) {
    std::string ra = Find(a), rb = Find(b);
    if (ra != rb) parent[ra] = rb;
  }

  std::string Fresh() { return "_v" + std::to_string(fresh_counter++); }
};

class Expander {
 public:
  Expander(const DatalogProgram& program, int max_depth, std::size_t max_count)
      : program_(program), max_depth_(max_depth), max_count_(max_count) {}

  std::vector<ConjunctiveQuery> Enumerate() {
    results_.clear();
    Recurse(InitialState());
    return std::move(results_);
  }

  std::optional<ConjunctiveQuery> Sample(std::mt19937* rng) {
    ExpansionState state = InitialState();
    while (!state.pending.empty()) {
      ExpansionState::Pending goal = state.pending.back();
      state.pending.pop_back();
      const std::vector<int>& candidates = program_.RulesFor(goal.predicate);
      // Near the depth bound, only rules without intensional atoms keep the
      // tree closable; filter accordingly.
      std::vector<int> usable;
      for (int r : candidates) {
        if (goal.depth < max_depth_ || !HasIntensionalAtom(r)) usable.push_back(r);
      }
      if (usable.empty()) return std::nullopt;
      int pick = usable[(*rng)() % usable.size()];
      ApplyRule(program_.rules()[pick], goal, &state);
    }
    return Emit(state);
  }

 private:
  ExpansionState InitialState() {
    head_vars_.clear();
    int arity = program_.GoalArity();
    for (int i = 0; i < arity; ++i) {
      head_vars_.push_back("_x" + std::to_string(i));
    }
    ExpansionState state;
    state.pending.push_back({program_.goal_predicate(), head_vars_, 0});
    return state;
  }

  bool HasIntensionalAtom(int rule_index) const {
    for (const Atom& a : program_.rules()[rule_index].body) {
      if (program_.IsIntensional(a.predicate())) return true;
    }
    return false;
  }

  void Recurse(ExpansionState state) {
    if (results_.size() >= max_count_) return;
    if (state.pending.empty()) {
      results_.push_back(Emit(state));
      return;
    }
    ExpansionState::Pending goal = state.pending.back();
    state.pending.pop_back();
    if (goal.depth > max_depth_) return;
    for (int rule_index : program_.RulesFor(goal.predicate)) {
      ExpansionState next = state;
      ApplyRule(program_.rules()[rule_index], goal, &next);
      Recurse(std::move(next));
      if (results_.size() >= max_count_) return;
    }
  }

  // Unfolds `goal` with `rule`: unifies the rule head with the goal's
  // arguments (merging goal variables when the head repeats one),
  // instantiates body-only variables freshly, records extensional atoms and
  // queues intensional ones at depth+1.
  void ApplyRule(const Rule& rule, const ExpansionState::Pending& goal,
                 ExpansionState* state) const {
    std::unordered_map<std::string, std::string> rename;
    QCONT_CHECK(rule.head.arity() == goal.args.size());
    for (std::size_t i = 0; i < goal.args.size(); ++i) {
      const std::string& head_var = rule.head.terms()[i].name();
      auto [it, inserted] = rename.emplace(head_var, goal.args[i]);
      if (!inserted) state->Union(it->second, goal.args[i]);
    }
    auto name_of = [&](const Term& t) -> std::string {
      auto [it, inserted] = rename.emplace(t.name(), "");
      if (inserted) it->second = state->Fresh();
      return it->second;
    };
    for (const Atom& a : rule.body) {
      std::vector<std::string> args;
      args.reserve(a.arity());
      for (const Term& t : a.terms()) args.push_back(name_of(t));
      if (program_.IsIntensional(a.predicate())) {
        state->pending.push_back(
            {a.predicate(), std::move(args), goal.depth + 1});
      } else {
        state->atoms.emplace_back(a.predicate(), std::move(args));
      }
    }
  }

  ConjunctiveQuery Emit(ExpansionState& state) const {
    std::vector<Term> head;
    head.reserve(head_vars_.size());
    for (const std::string& v : head_vars_) {
      head.push_back(Term::Variable(state.Find(v)));
    }
    std::vector<Atom> atoms;
    std::set<std::string> dedup;
    for (const auto& [pred, args] : state.atoms) {
      std::vector<Term> terms;
      terms.reserve(args.size());
      for (const std::string& a : args) {
        terms.push_back(Term::Variable(state.Find(a)));
      }
      Atom atom(pred, std::move(terms));
      if (dedup.insert(atom.ToString()).second) atoms.push_back(std::move(atom));
    }
    return ConjunctiveQuery(std::move(head), std::move(atoms));
  }

  const DatalogProgram& program_;
  int max_depth_;
  std::size_t max_count_;
  std::vector<std::string> head_vars_;
  std::vector<ConjunctiveQuery> results_;
};

}  // namespace

Result<std::vector<ConjunctiveQuery>> EnumerateExpansions(
    const DatalogProgram& program, int max_depth, std::size_t max_count) {
  QCONT_RETURN_IF_ERROR(program.Validate());
  Expander expander(program, max_depth, max_count);
  return expander.Enumerate();
}

std::optional<ConjunctiveQuery> SampleExpansion(const DatalogProgram& program,
                                                std::mt19937* rng,
                                                int max_depth) {
  if (!program.Validate().ok()) return std::nullopt;
  Expander expander(program, max_depth, /*max_count=*/1);
  return expander.Sample(rng);
}

}  // namespace qcont

#include "datalog/block_join.h"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <string>
#include <unordered_map>

#include "base/check.h"

namespace qcont {

namespace {

// Bound-position mask of `atom` given the variables already bound (by slot
// map membership). Constants count as bound. Positions >= 32 never arise
// here — Compile rejects wider atoms first.
std::uint32_t BoundMask(const Atom& atom,
                        const std::unordered_map<std::string, int>& slots) {
  std::uint32_t mask = 0;
  for (std::size_t p = 0; p < atom.arity(); ++p) {
    const Term& t = atom.terms()[p];
    if (t.is_constant() || slots.count(t.name()) > 0) {
      mask |= 1u << p;
    }
  }
  return mask;
}

}  // namespace

BlockJoinPlan BlockJoinPlan::Compile(const Rule& rule,
                                     std::span<const RelationId> body_rels,
                                     int delta_position,
                                     const Interner& pool) {
  BlockJoinPlan plan;
  const std::size_t num_atoms = rule.body.size();
  QCONT_CHECK(delta_position >= 0 &&
              static_cast<std::size_t>(delta_position) < num_atoms);
  for (const Atom& atom : rule.body) {
    if (atom.arity() > 32) return plan;  // probe masks are 32-bit
  }
  // A propositional delta atom has no rows to block over; leave it to the
  // recursive engine.
  if (rule.body[delta_position].arity() == 0) return plan;
  for (const Term& t : rule.head.terms()) {
    if (!t.is_variable()) return plan;  // head constants: recursive engine
  }

  std::unordered_map<std::string, int> slots;
  auto slot_of = [&](const std::string& name) {
    auto [it, added] = slots.try_emplace(name, static_cast<int>(slots.size()));
    return it->second;
  };
  auto find_const = [&](const std::string& name, bool* dead) {
    const ValueId id = pool.Find(name);
    if (id == Interner::kMissing) *dead = true;
    return id;
  };

  // Delta atom first: every position is a scan-side action (no probe).
  {
    const Atom& atom = rule.body[delta_position];
    plan.delta_rel_ = body_rels[delta_position];
    plan.delta_arity_ = static_cast<std::uint32_t>(atom.arity());
    for (std::size_t p = 0; p < atom.arity(); ++p) {
      const Term& t = atom.terms()[p];
      if (t.is_constant()) {
        plan.delta_const_checks_.emplace_back(
            static_cast<std::uint32_t>(p),
            find_const(t.name(), &plan.never_matches_));
        continue;
      }
      PositionAction a;
      a.pos = static_cast<std::uint32_t>(p);
      const bool fresh = slots.count(t.name()) == 0;
      a.var_slot = slot_of(t.name());
      a.bind = fresh;
      plan.delta_actions_.push_back(a);
    }
  }

  // Remaining atoms in greedy most-bound-first order (ties by body index),
  // decided once here — the recursive engine re-decides per search node.
  std::vector<std::size_t> remaining;
  for (std::size_t i = 0; i < num_atoms; ++i) {
    if (static_cast<int>(i) != delta_position) remaining.push_back(i);
  }
  while (!remaining.empty()) {
    std::size_t best = 0;
    int best_bound = -1;
    for (std::size_t r = 0; r < remaining.size(); ++r) {
      const int bound = std::popcount(BoundMask(rule.body[remaining[r]], slots));
      if (bound > best_bound) {
        best_bound = bound;
        best = r;
      }
    }
    const std::size_t ai = remaining[best];
    remaining.erase(remaining.begin() + best);
    const Atom& atom = rule.body[ai];
    AtomStep step;
    step.rel = body_rels[ai];
    step.arity = static_cast<std::uint32_t>(atom.arity());
    step.mask = BoundMask(atom, slots);
    step.key_width = static_cast<std::uint32_t>(std::popcount(step.mask));
    for (std::size_t p = 0; p < atom.arity(); ++p) {
      const Term& t = atom.terms()[p];
      if ((step.mask >> p & 1u) != 0) {
        KeySource src;
        if (t.is_constant()) {
          src.is_constant = true;
          src.constant = find_const(t.name(), &plan.never_matches_);
        } else {
          src.var_slot = slots.at(t.name());
        }
        step.key_sources.push_back(src);
      } else {
        // Unbound variable: bind on first occurrence in this atom, check
        // on a repeat (e.g. R(x, y, y) with y fresh).
        PositionAction a;
        a.pos = static_cast<std::uint32_t>(p);
        const bool fresh = slots.count(t.name()) == 0;
        a.var_slot = slot_of(t.name());
        a.bind = fresh;
        step.actions.push_back(a);
      }
    }
    plan.steps_.push_back(std::move(step));
  }

  plan.head_slots_.reserve(rule.head.arity());
  for (const Term& t : rule.head.terms()) {
    auto it = slots.find(t.name());
    if (it == slots.end()) return plan;  // head var unbound in body
    plan.head_slots_.push_back(it->second);
  }
  plan.num_vars_ = slots.size();
  plan.valid_ = true;
  return plan;
}

void BlockJoinPlan::Execute(const Database& all, const Database& delta,
                            std::size_t block_rows,
                            std::vector<ValueId>* out_rows,
                            std::size_t* num_rows,
                            HomSearchStats* stats) const {
  QCONT_CHECK(valid_);
  const std::size_t dn = delta.NumRows(delta_rel_);
  if (dn == 0) return;
  if (delta.Arity(delta_rel_) != delta_arity_) return;
  const std::span<const ValueId> arena = delta.Arena(delta_rel_);
  if (!arena.empty()) {
    Execute(all, arena, delta_arity_, block_rows, out_rows, num_rows, stats);
    return;
  }
  // Legacy layout keeps one vector per row; flatten a temporary copy so
  // the core loop has one shape.
  std::vector<ValueId> flat;
  flat.reserve(dn * delta_arity_);
  for (std::size_t r = 0; r < dn; ++r) {
    const std::span<const ValueId> row = delta.Row(delta_rel_, r);
    flat.insert(flat.end(), row.begin(), row.end());
  }
  Execute(all, flat, delta_arity_, block_rows, out_rows, num_rows, stats);
}

void BlockJoinPlan::Execute(const Database& all,
                            std::span<const ValueId> delta_rows,
                            std::uint32_t delta_arity, std::size_t block_rows,
                            std::vector<ValueId>* out_rows,
                            std::size_t* num_rows,
                            HomSearchStats* stats) const {
  QCONT_CHECK(valid_);
  if (never_matches_) return;
  if (delta_arity != delta_arity_) return;
  const std::size_t dn =
      delta_arity == 0 ? 0 : delta_rows.size() / delta_arity;
  if (dn == 0) return;
  for (const AtomStep& step : steps_) {
    if (all.NumRows(step.rel) > 0 && all.Arity(step.rel) != step.arity) {
      return;
    }
  }
  if (block_rows == 0) block_rows = 1;

  const std::size_t nv = std::max<std::size_t>(num_vars_, 1);
  std::vector<ValueId> frontier;
  std::vector<ValueId> next;
  std::vector<ValueId> keys;
  std::vector<std::span<const std::uint32_t>> hits;

  for (std::size_t base = 0; base < dn; base += block_rows) {
    const std::size_t bn = std::min(block_rows, dn - base);
    // Stage 0: scan the delta block into the initial frontier.
    frontier.clear();
    for (std::size_t r = base; r < base + bn; ++r) {
      const ValueId* row = delta_rows.data() + r * delta_arity;
      ++stats->atom_attempts;
      ++stats->scan_candidates;
      bool ok = true;
      for (const auto& [pos, id] : delta_const_checks_) {
        if (row[pos] != id) {
          ok = false;
          break;
        }
      }
      if (!ok) continue;
      const std::size_t at = frontier.size();
      frontier.resize(at + nv, 0);
      for (const PositionAction& a : delta_actions_) {
        if (a.bind) {
          frontier[at + a.var_slot] = row[a.pos];
        } else if (frontier[at + a.var_slot] != row[a.pos]) {
          ok = false;
          break;
        }
      }
      if (!ok) frontier.resize(at);
    }

    // One ProbeMany per atom per block: gather every frontier row's key,
    // resolve the whole batch through the staged probe pipeline, then
    // extend the frontier from the postings.
    for (const AtomStep& step : steps_) {
      const std::size_t fcount = frontier.size() / nv;
      if (fcount == 0) break;
      const std::uint32_t w = step.key_width;
      keys.resize(fcount * w);
      for (std::size_t i = 0; i < fcount; ++i) {
        const ValueId* binding = frontier.data() + i * nv;
        for (std::uint32_t k = 0; k < w; ++k) {
          const KeySource& src = step.key_sources[k];
          keys[i * w + k] =
              src.is_constant ? src.constant : binding[src.var_slot];
        }
      }
      hits.assign(fcount, {});
      all.ProbeMany(step.rel, step.mask, keys,
                    std::span<std::span<const std::uint32_t>>(hits));
      stats->index_probes += fcount;
      const Database::RowView rows_view = all.Rows(step.rel);
      next.clear();
      for (std::size_t i = 0; i < fcount; ++i) {
        const ValueId* binding = frontier.data() + i * nv;
        for (const std::uint32_t row_idx : hits[i]) {
          ++stats->index_candidates;
          ++stats->atom_attempts;
          const ValueId* row = rows_view[row_idx];
          const std::size_t at = next.size();
          next.insert(next.end(), binding, binding + nv);
          bool ok = true;
          for (const PositionAction& a : step.actions) {
            if (a.bind) {
              next[at + a.var_slot] = row[a.pos];
            } else if (next[at + a.var_slot] != row[a.pos]) {
              ok = false;
              break;
            }
          }
          if (!ok) next.resize(at);
        }
      }
      frontier.swap(next);
    }

    // Project the surviving full bindings onto the head.
    const std::size_t fcount = frontier.size() / nv;
    for (std::size_t i = 0; i < fcount; ++i) {
      const ValueId* binding = frontier.data() + i * nv;
      for (const int slot : head_slots_) {
        out_rows->push_back(binding[slot]);
      }
      ++*num_rows;
    }
  }
}

}  // namespace qcont

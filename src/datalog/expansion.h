#ifndef QCONT_DATALOG_EXPANSION_H_
#define QCONT_DATALOG_EXPANSION_H_

#include <cstddef>
#include <optional>
#include <random>
#include <vector>

#include "base/status.h"
#include "cq/query.h"
#include "datalog/program.h"

namespace qcont {

/// Enumerates expansions of `program` (Section 4: the CQs θ_τ obtained from
/// expansion trees τ by conjoining all extensional atoms), breadth-bounded:
/// only expansion trees of depth at most `max_depth` are produced, and at
/// most `max_count` expansions are returned.
///
/// The enumeration is exhaustive within the depth bound, so it yields a
/// *sound refutation procedure* for Π ⊆ Θ: if some returned expansion is
/// not contained in Θ then Π ⊄ Θ; the converse needs unbounded depth.
Result<std::vector<ConjunctiveQuery>> EnumerateExpansions(
    const DatalogProgram& program, int max_depth, std::size_t max_count);

/// Samples one random expansion with tree depth at most `max_depth`, or
/// nullopt if no expansion tree closes within the bound along the sampled
/// choices. Used by the property-based tests.
std::optional<ConjunctiveQuery> SampleExpansion(const DatalogProgram& program,
                                                std::mt19937* rng,
                                                int max_depth);

}  // namespace qcont

#endif  // QCONT_DATALOG_EXPANSION_H_

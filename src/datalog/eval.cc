#include "datalog/eval.h"

#include <algorithm>
#include <string>
#include <vector>

#include "base/thread_pool.h"
#include "cq/homomorphism.h"
#include "cq/query.h"

namespace qcont {

namespace {

// One rule firing: the derived head tuples plus this firing's counters.
// Stats are task-local by construction — no pointer is shared between
// concurrent firings; callers fold `stats` in with Merge at the join.
struct FiredRule {
  std::vector<Tuple> tuples;
  DatalogEvalStats stats;
};

// Derives the head tuples produced by `rule` over `db`. If `delta_position`
// is >= 0, the body atom at that index is matched against `delta` instead
// of `db` (the semi-naive restriction "at least one new fact"), realized by
// pointing that atom's search at the delta database — no copies, no
// renaming; delta and db share a value pool so the indexed join applies
// (index the delta, probe the full relation, and vice versa: the searcher
// orders atoms by candidate count, so whichever side is smaller drives).
FiredRule FireRule(const Rule& rule, const Database& db, const Database* delta,
                   int delta_position, const HomSearchOptions& options) {
  std::vector<const Database*> dbs(rule.body.size(), &db);
  if (delta_position >= 0) dbs[delta_position] = delta;
  FiredRule out;
  EnumerateHomomorphismsOver(
      rule.body, dbs, /*fixed=*/{},
      [&](const Assignment& h) {
        Tuple t;
        t.reserve(rule.head.arity());
        for (const Term& v : rule.head.terms()) {
          t.push_back(h.at(v.name()));
        }
        out.tuples.push_back(std::move(t));
        ++out.stats.rule_firings;
        return true;
      },
      &out.stats.hom, options);
  return out;
}

Result<Database> EvaluateProgramImpl(const DatalogProgram& program,
                                     const Database& edb,
                                     const EvalOptions& options,
                                     DatalogEvalStats* stats) {
  QCONT_RETURN_IF_ERROR(program.Validate());
  ObsSpan eval_span(options.obs, "datalog/eval", "datalog");
  eval_span.AddArg("rules", program.rules().size());
  Database all = edb;
  all.set_obs(options.obs);
  HomSearchOptions hom_options;
  hom_options.use_index = options.use_index;
  std::uint64_t round = 0;

  if (options.strategy == EvalStrategy::kNaive) {
    // The naive reference strategy is deliberately serial: each rule in a
    // round sees the facts added by the rules before it, so firings are
    // order-dependent by definition.
    bool changed = true;
    while (changed) {
      changed = false;
      ObsSpan round_span(options.obs, "datalog/round", "datalog");
      round_span.AddArg("round", round++);
      if (stats != nullptr) ++stats->iterations;
      for (const Rule& rule : program.rules()) {
        FiredRule fired = FireRule(rule, all, nullptr, -1, hom_options);
        if (stats != nullptr) stats->Merge(fired.stats);
        for (Tuple& t : fired.tuples) {
          if (all.AddFact(rule.head.predicate(), std::move(t))) {
            changed = true;
            if (stats != nullptr) ++stats->derived_facts;
          }
        }
      }
    }
    return all;
  }

  // Semi-naive: round 0 fires all rules on the EDB; later rounds require at
  // least one body atom to match the previous round's delta. The deltas
  // share `all`'s value pool so the indexed join spans both databases.
  // Round 0 stays serial: like the naive rounds, each rule sees the facts
  // added by the rules before it.
  Database delta(all.pool());
  delta.set_obs(options.obs);
  {
    ObsSpan round_span(options.obs, "datalog/round", "datalog");
    round_span.AddArg("round", round++);
    if (stats != nullptr) ++stats->iterations;
    for (const Rule& rule : program.rules()) {
      FiredRule fired = FireRule(rule, all, nullptr, -1, hom_options);
      if (stats != nullptr) stats->Merge(fired.stats);
      for (Tuple& t : fired.tuples) {
        if (all.AddFact(rule.head.predicate(), t)) {
          delta.AddFact(rule.head.predicate(), std::move(t));
          if (stats != nullptr) ++stats->derived_facts;
        }
      }
    }
    round_span.AddArg("delta_facts", delta.NumFacts());
  }
  while (delta.NumFacts() > 0) {
    ObsSpan round_span(options.obs, "datalog/round", "datalog");
    round_span.AddArg("round", round++);
    if (stats != nullptr) ++stats->iterations;
    Database next_delta(all.pool());
    next_delta.set_obs(options.obs);
    // The (rule, delta position) joins of a round are independent: they
    // only read `all` and `delta`, which are frozen until the barrier. Each
    // runs as its own pool task into a private FiredRule; the buffers are
    // merged below in task order, so the result is bit-identical to the
    // serial loop for every thread count (including insertion order, which
    // fixes the interning order of new values).
    struct DeltaJoin {
      const Rule* rule;
      int position;
    };
    std::vector<DeltaJoin> joins;
    for (const Rule& rule : program.rules()) {
      for (std::size_t i = 0; i < rule.body.size(); ++i) {
        if (!program.IsIntensional(rule.body[i].predicate())) continue;
        if (delta.Facts(rule.body[i].predicate()).empty()) continue;
        joins.push_back(DeltaJoin{&rule, static_cast<int>(i)});
      }
    }
    round_span.AddArg("joins", joins.size());
    std::vector<FiredRule> fired = ParallelMap<FiredRule>(
        options.exec, joins.size(), [&](std::size_t t) {
          ObsSpan join_span(options.obs, "datalog/delta_join", "datalog");
          join_span.AddArg("task", t);
          return FireRule(*joins[t].rule, all, &delta, joins[t].position,
                          hom_options);
        });
    for (std::size_t t = 0; t < joins.size(); ++t) {
      if (stats != nullptr) stats->Merge(fired[t].stats);
      const std::string& head = joins[t].rule->head.predicate();
      for (Tuple& tuple : fired[t].tuples) {
        if (!all.HasFact(head, tuple)) {
          next_delta.AddFact(head, std::move(tuple));
        }
      }
    }
    for (const std::string& rel : next_delta.Relations()) {
      for (const Tuple& t : next_delta.Facts(rel)) {
        if (all.AddFact(rel, t) && stats != nullptr) ++stats->derived_facts;
      }
    }
    round_span.AddArg("delta_facts", next_delta.NumFacts());
    delta = std::move(next_delta);
  }
  return all;
}

}  // namespace

// Publish funnel: with a metric sink attached, gather the run's counters
// into a run-local struct, publish once at the end (the same deltas that
// merge into the caller's legacy sink), and mirror the working database's
// index counters as `db.*` gauges.
Result<Database> EvaluateProgram(const DatalogProgram& program,
                                 const Database& edb,
                                 const EvalOptions& options,
                                 DatalogEvalStats* stats) {
  MetricRegistry* metrics = ObsMetrics(options.obs);
  if (metrics == nullptr) {
    return EvaluateProgramImpl(program, edb, options, stats);
  }
  DatalogEvalStats run;
  Result<Database> result = EvaluateProgramImpl(program, edb, options, &run);
  run.PublishTo(metrics, "datalog.eval");
  if (result.ok()) {
    const DatabaseIndexStats idx = (*result).index_stats();
    metrics->SetGauge("db.indexes_built", idx.indexes_built);
    metrics->SetGauge("db.probes", idx.probes);
    metrics->SetGauge("db.rows_indexed", idx.rows_indexed);
  }
  if (stats != nullptr) stats->Merge(run);
  return result;
}

Result<Database> EvaluateProgram(const DatalogProgram& program,
                                 const Database& edb, EvalStrategy strategy,
                                 DatalogEvalStats* stats) {
  EvalOptions options;
  options.strategy = strategy;
  return EvaluateProgram(program, edb, options, stats);
}

Result<std::vector<Tuple>> EvaluateGoal(const DatalogProgram& program,
                                        const Database& edb,
                                        const EvalOptions& options,
                                        DatalogEvalStats* stats) {
  QCONT_ASSIGN_OR_RETURN(Database all,
                         EvaluateProgram(program, edb, options, stats));
  std::vector<Tuple> out = all.Facts(program.goal_predicate());
  std::sort(out.begin(), out.end());
  return out;
}

Result<std::vector<Tuple>> EvaluateGoal(const DatalogProgram& program,
                                        const Database& edb,
                                        EvalStrategy strategy,
                                        DatalogEvalStats* stats) {
  EvalOptions options;
  options.strategy = strategy;
  return EvaluateGoal(program, edb, options, stats);
}

Result<bool> UcqContainedInDatalog(const UnionQuery& theta,
                                   const DatalogProgram& program,
                                   const EvalOptions& options,
                                   DatalogEvalStats* stats) {
  QCONT_RETURN_IF_ERROR(theta.Validate());
  QCONT_RETURN_IF_ERROR(program.Validate());
  if (static_cast<int>(theta.arity()) != program.GoalArity()) {
    return InvalidArgumentError("UCQ arity differs from goal arity");
  }
  for (const ConjunctiveQuery& disjunct : theta.disjuncts()) {
    Database canonical = CanonicalDatabase(disjunct);
    QCONT_ASSIGN_OR_RETURN(Database derived,
                           EvaluateProgram(program, canonical, options, stats));
    if (!derived.HasFact(program.goal_predicate(), CanonicalHead(disjunct))) {
      return false;
    }
  }
  return true;
}

Result<bool> UcqContainedInDatalog(const UnionQuery& theta,
                                   const DatalogProgram& program,
                                   DatalogEvalStats* stats) {
  return UcqContainedInDatalog(theta, program, EvalOptions(), stats);
}

}  // namespace qcont

#include "datalog/eval.h"

#include <algorithm>
#include <string>
#include <vector>

#include "cq/homomorphism.h"
#include "cq/query.h"

namespace qcont {

namespace {

// Derives the head tuples produced by `rule` over `db`. If `delta_position`
// is >= 0, the body atom at that index is matched against `delta` instead
// of `db` (the semi-naive restriction "at least one new fact"), realized by
// pointing that atom's search at the delta database — no copies, no
// renaming; delta and db share a value pool so the indexed join applies
// (index the delta, probe the full relation, and vice versa: the searcher
// orders atoms by candidate count, so whichever side is smaller drives).
std::vector<Tuple> FireRule(const Rule& rule, const Database& db,
                            const Database* delta, int delta_position,
                            const HomSearchOptions& options,
                            DatalogEvalStats* stats) {
  std::vector<const Database*> dbs(rule.body.size(), &db);
  if (delta_position >= 0) dbs[delta_position] = delta;
  std::vector<Tuple> out;
  EnumerateHomomorphismsOver(
      rule.body, dbs, /*fixed=*/{},
      [&](const Assignment& h) {
        Tuple t;
        t.reserve(rule.head.arity());
        for (const Term& v : rule.head.terms()) {
          t.push_back(h.at(v.name()));
        }
        out.push_back(std::move(t));
        if (stats != nullptr) ++stats->rule_firings;
        return true;
      },
      stats != nullptr ? &stats->hom : nullptr, options);
  return out;
}

}  // namespace

Result<Database> EvaluateProgram(const DatalogProgram& program,
                                 const Database& edb,
                                 const EvalOptions& options,
                                 DatalogEvalStats* stats) {
  QCONT_RETURN_IF_ERROR(program.Validate());
  Database all = edb;
  const HomSearchOptions hom_options{.use_index = options.use_index};

  if (options.strategy == EvalStrategy::kNaive) {
    bool changed = true;
    while (changed) {
      changed = false;
      if (stats != nullptr) ++stats->iterations;
      for (const Rule& rule : program.rules()) {
        for (Tuple& t : FireRule(rule, all, nullptr, -1, hom_options, stats)) {
          if (all.AddFact(rule.head.predicate(), std::move(t))) {
            changed = true;
            if (stats != nullptr) ++stats->derived_facts;
          }
        }
      }
    }
    return all;
  }

  // Semi-naive: round 0 fires all rules on the EDB; later rounds require at
  // least one body atom to match the previous round's delta. The deltas
  // share `all`'s value pool so the indexed join spans both databases.
  Database delta(all.pool());
  if (stats != nullptr) ++stats->iterations;
  for (const Rule& rule : program.rules()) {
    for (Tuple& t : FireRule(rule, all, nullptr, -1, hom_options, stats)) {
      if (all.AddFact(rule.head.predicate(), t)) {
        delta.AddFact(rule.head.predicate(), std::move(t));
        if (stats != nullptr) ++stats->derived_facts;
      }
    }
  }
  while (delta.NumFacts() > 0) {
    if (stats != nullptr) ++stats->iterations;
    Database next_delta(all.pool());
    for (const Rule& rule : program.rules()) {
      for (std::size_t i = 0; i < rule.body.size(); ++i) {
        if (!program.IsIntensional(rule.body[i].predicate())) continue;
        if (delta.Facts(rule.body[i].predicate()).empty()) continue;
        for (Tuple& t : FireRule(rule, all, &delta, static_cast<int>(i),
                                 hom_options, stats)) {
          if (!all.HasFact(rule.head.predicate(), t)) {
            next_delta.AddFact(rule.head.predicate(), t);
          }
        }
      }
    }
    for (const std::string& rel : next_delta.Relations()) {
      for (const Tuple& t : next_delta.Facts(rel)) {
        if (all.AddFact(rel, t) && stats != nullptr) ++stats->derived_facts;
      }
    }
    delta = std::move(next_delta);
  }
  return all;
}

Result<Database> EvaluateProgram(const DatalogProgram& program,
                                 const Database& edb, EvalStrategy strategy,
                                 DatalogEvalStats* stats) {
  return EvaluateProgram(program, edb, EvalOptions{.strategy = strategy},
                         stats);
}

Result<std::vector<Tuple>> EvaluateGoal(const DatalogProgram& program,
                                        const Database& edb,
                                        const EvalOptions& options,
                                        DatalogEvalStats* stats) {
  QCONT_ASSIGN_OR_RETURN(Database all,
                         EvaluateProgram(program, edb, options, stats));
  std::vector<Tuple> out = all.Facts(program.goal_predicate());
  std::sort(out.begin(), out.end());
  return out;
}

Result<std::vector<Tuple>> EvaluateGoal(const DatalogProgram& program,
                                        const Database& edb,
                                        EvalStrategy strategy,
                                        DatalogEvalStats* stats) {
  return EvaluateGoal(program, edb, EvalOptions{.strategy = strategy}, stats);
}

Result<bool> UcqContainedInDatalog(const UnionQuery& theta,
                                   const DatalogProgram& program,
                                   DatalogEvalStats* stats) {
  QCONT_RETURN_IF_ERROR(theta.Validate());
  QCONT_RETURN_IF_ERROR(program.Validate());
  if (static_cast<int>(theta.arity()) != program.GoalArity()) {
    return InvalidArgumentError("UCQ arity differs from goal arity");
  }
  for (const ConjunctiveQuery& disjunct : theta.disjuncts()) {
    Database canonical = CanonicalDatabase(disjunct);
    QCONT_ASSIGN_OR_RETURN(
        Database derived,
        EvaluateProgram(program, canonical, EvalStrategy::kSemiNaive, stats));
    if (!derived.HasFact(program.goal_predicate(), CanonicalHead(disjunct))) {
      return false;
    }
  }
  return true;
}

}  // namespace qcont

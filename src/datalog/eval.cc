#include "datalog/eval.h"

#include <algorithm>
#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "base/check.h"
#include "base/thread_pool.h"
#include "cq/homomorphism.h"
#include "cq/query.h"

namespace qcont {

namespace {

// A rule with its relation ids resolved once, before the fixpoint starts:
// the head and every body predicate are interned into the working
// database's pool up front (interning is idempotent and the compile pass is
// serial, so the pool contents are deterministic), and every later firing
// reuses the ids instead of re-resolving names per round. A body predicate
// with no facts yet simply has no rows behind its id until a round derives
// some.
struct CompiledRule {
  const Rule* rule = nullptr;
  RelationId head_rel = kNoRelation;
  std::size_t head_arity = 0;
  std::vector<RelationId> body_rels;
};

std::vector<CompiledRule> CompileRules(const DatalogProgram& program,
                                       Database& db) {
  std::vector<CompiledRule> compiled;
  compiled.reserve(program.rules().size());
  for (const Rule& rule : program.rules()) {
    CompiledRule cr;
    cr.rule = &rule;
    cr.head_rel = db.pool()->Intern(rule.head.predicate());
    cr.head_arity = rule.head.arity();
    cr.body_rels.reserve(rule.body.size());
    for (const Atom& atom : rule.body) {
      cr.body_rels.push_back(db.pool()->Intern(atom.predicate()));
    }
    compiled.push_back(std::move(cr));
  }
  return compiled;
}

// One rule firing: the derived head tuples plus this firing's counters.
// Stats are task-local by construction — no pointer is shared between
// concurrent firings; callers fold `stats` in with Merge at the join.
//
// The indexed engine fires through the interned-row face (`rows` holds the
// head tuples flattened with stride head_arity, `num_rows` counts them so
// arity-0 heads stay countable); the scan engine falls back to string
// tuples in `tuples`. Exactly one of the two shapes is filled, flagged by
// `id_path`.
struct FiredRule {
  std::vector<Tuple> tuples;
  std::vector<ValueId> rows;
  std::size_t num_rows = 0;
  bool id_path = false;
  DatalogEvalStats stats;
};

// Derives the head tuples produced by `cr` over `db`. If `delta_position`
// is >= 0, the body atom at that index is matched against `delta` instead
// of `db` (the semi-naive restriction "at least one new fact"), realized by
// pointing that atom's search at the delta database — no copies, no
// renaming; delta and db share a value pool so the indexed join applies
// (index the delta, probe the full relation, and vice versa: the searcher
// orders atoms by candidate count, so whichever side is smaller drives).
FiredRule FireRule(const CompiledRule& cr, const Database& db,
                   const Database* delta, int delta_position,
                   const HomSearchOptions& options) {
  const Rule& rule = *cr.rule;
  std::vector<const Database*> dbs(rule.body.size(), &db);
  if (delta_position >= 0) dbs[delta_position] = delta;
  FiredRule out;
  RowEnumerator rows(rule.body, dbs, cr.body_rels, /*fixed=*/{},
                     &out.stats.hom, options);
  if (rows.valid()) {
    out.id_path = true;
    std::vector<int> head_slots;
    head_slots.reserve(cr.head_arity);
    for (const Term& v : rule.head.terms()) {
      int slot = rows.VarSlot(v.name());
      QCONT_CHECK_MSG(slot >= 0, "head variable not bound in rule body");
      head_slots.push_back(slot);
    }
    rows.Enumerate([&](std::span<const ValueId> h) {
      for (int slot : head_slots) out.rows.push_back(h[slot]);
      ++out.num_rows;
      ++out.stats.rule_firings;
      return true;
    });
    return out;
  }
  EnumerateHomomorphismsOver(
      rule.body, dbs, cr.body_rels, /*fixed=*/{},
      [&](const Assignment& h) {
        Tuple t;
        t.reserve(rule.head.arity());
        for (const Term& v : rule.head.terms()) {
          t.push_back(h.at(v.name()));
        }
        out.tuples.push_back(std::move(t));
        ++out.stats.rule_firings;
        return true;
      },
      &out.stats.hom, options);
  return out;
}

// Serial merge used by the naive rounds and semi-naive round 0: insert the
// firing's tuples into `all` (and `delta`, if given) immediately, so later
// rules of the same round see them.
void MergeSerial(const CompiledRule& cr, FiredRule& fired, Database& all,
                 Database* delta, bool* changed, DatalogEvalStats* stats) {
  if (fired.id_path) {
    for (std::size_t i = 0; i < fired.num_rows; ++i) {
      std::span<const ValueId> row(fired.rows.data() + i * cr.head_arity,
                                   cr.head_arity);
      if (all.AddRow(cr.head_rel, row)) {
        if (delta != nullptr) delta->AddRow(cr.head_rel, row);
        if (changed != nullptr) *changed = true;
        if (stats != nullptr) ++stats->derived_facts;
      }
    }
    return;
  }
  const std::string& head = cr.rule->head.predicate();
  for (Tuple& t : fired.tuples) {
    bool added;
    if (delta != nullptr) {
      added = all.AddFact(head, t);
      if (added) delta->AddFact(head, std::move(t));
    } else {
      added = all.AddFact(head, std::move(t));
    }
    if (added) {
      if (changed != nullptr) *changed = true;
      if (stats != nullptr) ++stats->derived_facts;
    }
  }
}

Result<Database> EvaluateProgramImpl(const DatalogProgram& program,
                                     const Database& edb,
                                     const EvalOptions& options,
                                     DatalogEvalStats* stats) {
  QCONT_RETURN_IF_ERROR(program.Validate());
  ObsSpan eval_span(options.obs, "datalog/eval", "datalog");
  eval_span.AddArg("rules", program.rules().size());
  Database all = edb;
  all.set_obs(options.obs);
  const std::vector<CompiledRule> compiled = CompileRules(program, all);
  HomSearchOptions hom_options;
  hom_options.use_index = options.use_index;
  std::uint64_t round = 0;

  if (options.strategy == EvalStrategy::kNaive) {
    // The naive reference strategy is deliberately serial: each rule in a
    // round sees the facts added by the rules before it, so firings are
    // order-dependent by definition.
    bool changed = true;
    while (changed) {
      changed = false;
      ObsSpan round_span(options.obs, "datalog/round", "datalog");
      round_span.AddArg("round", round++);
      if (stats != nullptr) ++stats->iterations;
      for (const CompiledRule& cr : compiled) {
        FiredRule fired = FireRule(cr, all, nullptr, -1, hom_options);
        if (stats != nullptr) stats->Merge(fired.stats);
        MergeSerial(cr, fired, all, nullptr, &changed, stats);
      }
    }
    return all;
  }

  // Semi-naive: round 0 fires all rules on the EDB; later rounds require at
  // least one body atom to match the previous round's delta. The deltas
  // share `all`'s value pool (and layout, so differential runs exercise one
  // layout end to end), so the indexed join spans both databases. Round 0
  // stays serial: like the naive rounds, each rule sees the facts added by
  // the rules before it.
  Database delta(all.pool(), all.layout());
  delta.set_obs(options.obs);
  {
    ObsSpan round_span(options.obs, "datalog/round", "datalog");
    round_span.AddArg("round", round++);
    if (stats != nullptr) ++stats->iterations;
    for (const CompiledRule& cr : compiled) {
      FiredRule fired = FireRule(cr, all, nullptr, -1, hom_options);
      if (stats != nullptr) stats->Merge(fired.stats);
      MergeSerial(cr, fired, all, &delta, nullptr, stats);
    }
    round_span.AddArg("delta_facts", delta.NumFacts());
  }
  while (delta.NumFacts() > 0) {
    ObsSpan round_span(options.obs, "datalog/round", "datalog");
    round_span.AddArg("round", round++);
    if (stats != nullptr) ++stats->iterations;
    Database next_delta(all.pool(), all.layout());
    next_delta.set_obs(options.obs);
    // The (rule, delta position) joins of a round are independent: they
    // only read `all` and `delta`, which are frozen until the barrier. Each
    // runs as its own pool task into a private FiredRule; the buffers are
    // merged below in task order, so the result is bit-identical to the
    // serial loop for every thread count (including insertion order, which
    // fixes the interning order of new values).
    struct DeltaJoin {
      const CompiledRule* rule;
      int position;
    };
    std::vector<DeltaJoin> joins;
    for (const CompiledRule& cr : compiled) {
      for (std::size_t i = 0; i < cr.rule->body.size(); ++i) {
        if (!program.IsIntensional(cr.rule->body[i].predicate())) continue;
        if (delta.NumRows(cr.body_rels[i]) == 0) continue;
        joins.push_back(DeltaJoin{&cr, static_cast<int>(i)});
      }
    }
    round_span.AddArg("joins", joins.size());
    std::vector<FiredRule> fired = ParallelMap<FiredRule>(
        options.exec, joins.size(), [&](std::size_t t) {
          ObsSpan join_span(options.obs, "datalog/delta_join", "datalog");
          join_span.AddArg("task", t);
          return FireRule(*joins[t].rule, all, &delta, joins[t].position,
                          hom_options);
        });
    std::vector<std::span<const std::uint32_t>> hits;
    for (std::size_t t = 0; t < joins.size(); ++t) {
      if (stats != nullptr) stats->Merge(fired[t].stats);
      const CompiledRule& cr = *joins[t].rule;
      if (fired[t].id_path) {
        const std::size_t arity = cr.head_arity;
        if (fired[t].num_rows > 0 && arity >= 1 && arity <= 32) {
          // Batched dedup against `all`: one ProbeMany over the head
          // relation's primary table resolves every candidate row of this
          // firing in bucket order.
          const std::uint32_t mask =
              arity == 32 ? ~0u : ((1u << arity) - 1u);
          hits.assign(fired[t].num_rows, {});
          all.ProbeMany(cr.head_rel, mask, std::span<const ValueId>(fired[t].rows),
                        std::span<std::span<const std::uint32_t>>(hits));
          for (std::size_t i = 0; i < fired[t].num_rows; ++i) {
            if (hits[i].empty()) {
              next_delta.AddRow(
                  cr.head_rel,
                  std::span<const ValueId>(fired[t].rows.data() + i * arity,
                                           arity));
            }
          }
        } else {
          for (std::size_t i = 0; i < fired[t].num_rows; ++i) {
            std::span<const ValueId> row(fired[t].rows.data() + i * arity,
                                         arity);
            if (!all.HasRow(cr.head_rel, row)) {
              next_delta.AddRow(cr.head_rel, row);
            }
          }
        }
      } else {
        const std::string& head = cr.rule->head.predicate();
        for (Tuple& tuple : fired[t].tuples) {
          if (!all.HasFact(head, tuple)) {
            next_delta.AddFact(head, std::move(tuple));
          }
        }
      }
    }
    for (RelationId rel : next_delta.RelationIds()) {
      const std::size_t n = next_delta.NumRows(rel);
      for (std::size_t i = 0; i < n; ++i) {
        if (all.AddRow(rel, next_delta.Row(rel, i)) && stats != nullptr) {
          ++stats->derived_facts;
        }
      }
    }
    round_span.AddArg("delta_facts", next_delta.NumFacts());
    delta = std::move(next_delta);
  }
  return all;
}

}  // namespace

// Publish funnel: with a metric sink attached, gather the run's counters
// into a run-local struct, publish once at the end (the same deltas that
// merge into the caller's legacy sink), and mirror the working database's
// index counters as `db.*` gauges (including the open-addressing probe
// table's collision and resize counters).
Result<Database> EvaluateProgram(const DatalogProgram& program,
                                 const Database& edb,
                                 const EvalOptions& options,
                                 DatalogEvalStats* stats) {
  MetricRegistry* metrics = ObsMetrics(options.obs);
  if (metrics == nullptr) {
    return EvaluateProgramImpl(program, edb, options, stats);
  }
  DatalogEvalStats run;
  Result<Database> result = EvaluateProgramImpl(program, edb, options, &run);
  run.PublishTo(metrics, "datalog.eval");
  if (result.ok()) {
    const DatabaseIndexStats idx = (*result).index_stats();
    metrics->SetGauge("db.indexes_built", idx.indexes_built);
    metrics->SetGauge("db.probes", idx.probes);
    metrics->SetGauge("db.rows_indexed", idx.rows_indexed);
    metrics->SetGauge("db.probe_table.probes", idx.probes);
    metrics->SetGauge("db.probe_table.collisions", idx.probe_collisions);
    metrics->SetGauge("db.probe_table.resizes", idx.probe_resizes);
  }
  if (stats != nullptr) stats->Merge(run);
  return result;
}

Result<Database> EvaluateProgram(const DatalogProgram& program,
                                 const Database& edb, EvalStrategy strategy,
                                 DatalogEvalStats* stats) {
  EvalOptions options;
  options.strategy = strategy;
  return EvaluateProgram(program, edb, options, stats);
}

Result<std::vector<Tuple>> EvaluateGoal(const DatalogProgram& program,
                                        const Database& edb,
                                        const EvalOptions& options,
                                        DatalogEvalStats* stats) {
  QCONT_ASSIGN_OR_RETURN(Database all,
                         EvaluateProgram(program, edb, options, stats));
  std::vector<Tuple> out = all.Facts(program.goal_predicate());
  std::sort(out.begin(), out.end());
  return out;
}

Result<std::vector<Tuple>> EvaluateGoal(const DatalogProgram& program,
                                        const Database& edb,
                                        EvalStrategy strategy,
                                        DatalogEvalStats* stats) {
  EvalOptions options;
  options.strategy = strategy;
  return EvaluateGoal(program, edb, options, stats);
}

Result<bool> UcqContainedInDatalog(const UnionQuery& theta,
                                   const DatalogProgram& program,
                                   const EvalOptions& options,
                                   DatalogEvalStats* stats) {
  QCONT_RETURN_IF_ERROR(theta.Validate());
  QCONT_RETURN_IF_ERROR(program.Validate());
  if (static_cast<int>(theta.arity()) != program.GoalArity()) {
    return InvalidArgumentError("UCQ arity differs from goal arity");
  }
  for (const ConjunctiveQuery& disjunct : theta.disjuncts()) {
    Database canonical = CanonicalDatabase(disjunct);
    QCONT_ASSIGN_OR_RETURN(Database derived,
                           EvaluateProgram(program, canonical, options, stats));
    if (!derived.HasFact(program.goal_predicate(), CanonicalHead(disjunct))) {
      return false;
    }
  }
  return true;
}

Result<bool> UcqContainedInDatalog(const UnionQuery& theta,
                                   const DatalogProgram& program,
                                   DatalogEvalStats* stats) {
  return UcqContainedInDatalog(theta, program, EvalOptions(), stats);
}

}  // namespace qcont

#include "datalog/eval.h"

#include <algorithm>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "base/check.h"
#include "base/shard.h"
#include "base/thread_pool.h"
#include "cq/homomorphism.h"
#include "cq/query.h"
#include "datalog/block_join.h"

namespace qcont {

namespace {

// A rule with its relation ids resolved once, before the fixpoint starts:
// the head and every body predicate are interned into the working
// database's pool up front (interning is idempotent and the compile pass is
// serial, so the pool contents are deterministic), and every later firing
// reuses the ids instead of re-resolving names per round. A body predicate
// with no facts yet simply has no rows behind its id until a round derives
// some.
struct CompiledRule {
  const Rule* rule = nullptr;
  RelationId head_rel = kNoRelation;
  std::size_t head_arity = 0;
  std::vector<RelationId> body_rels;
};

std::vector<CompiledRule> CompileRules(const DatalogProgram& program,
                                       Database& db) {
  std::vector<CompiledRule> compiled;
  compiled.reserve(program.rules().size());
  for (const Rule& rule : program.rules()) {
    CompiledRule cr;
    cr.rule = &rule;
    cr.head_rel = db.pool()->Intern(rule.head.predicate());
    cr.head_arity = rule.head.arity();
    cr.body_rels.reserve(rule.body.size());
    for (const Atom& atom : rule.body) {
      cr.body_rels.push_back(db.pool()->Intern(atom.predicate()));
    }
    compiled.push_back(std::move(cr));
  }
  return compiled;
}

// One rule firing: the derived head tuples plus this firing's counters.
// Stats are task-local by construction — no pointer is shared between
// concurrent firings; callers fold `stats` in with Merge at the join.
//
// The indexed engine fires through the interned-row face (`rows` holds the
// head tuples flattened with stride head_arity, `num_rows` counts them so
// arity-0 heads stay countable); the scan engine falls back to string
// tuples in `tuples`. Exactly one of the two shapes is filled, flagged by
// `id_path`.
struct FiredRule {
  std::vector<Tuple> tuples;
  std::vector<ValueId> rows;
  std::size_t num_rows = 0;
  bool id_path = false;
  DatalogEvalStats stats;
};

// Derives the head tuples produced by `cr` over `db`. If `delta_position`
// is >= 0, the body atom at that index is matched against `delta` instead
// of `db` (the semi-naive restriction "at least one new fact"), realized by
// pointing that atom's search at the delta database — no copies, no
// renaming; delta and db share a value pool so the indexed join applies
// (index the delta, probe the full relation, and vice versa: the searcher
// orders atoms by candidate count, so whichever side is smaller drives).
FiredRule FireRule(const CompiledRule& cr, const Database& db,
                   const Database* delta, int delta_position,
                   const HomSearchOptions& options) {
  const Rule& rule = *cr.rule;
  std::vector<const Database*> dbs(rule.body.size(), &db);
  if (delta_position >= 0) dbs[delta_position] = delta;
  FiredRule out;
  RowEnumerator rows(rule.body, dbs, cr.body_rels, /*fixed=*/{},
                     &out.stats.hom, options);
  if (rows.valid()) {
    out.id_path = true;
    std::vector<int> head_slots;
    head_slots.reserve(cr.head_arity);
    for (const Term& v : rule.head.terms()) {
      int slot = rows.VarSlot(v.name());
      QCONT_CHECK_MSG(slot >= 0, "head variable not bound in rule body");
      head_slots.push_back(slot);
    }
    rows.Enumerate([&](std::span<const ValueId> h) {
      for (int slot : head_slots) out.rows.push_back(h[slot]);
      ++out.num_rows;
      ++out.stats.rule_firings;
      return true;
    });
    return out;
  }
  EnumerateHomomorphismsOver(
      rule.body, dbs, cr.body_rels, /*fixed=*/{},
      [&](const Assignment& h) {
        Tuple t;
        t.reserve(rule.head.arity());
        for (const Term& v : rule.head.terms()) {
          t.push_back(h.at(v.name()));
        }
        out.tuples.push_back(std::move(t));
        ++out.stats.rule_firings;
        return true;
      },
      &out.stats.hom, options);
  return out;
}

// Serial merge used by the naive rounds and semi-naive round 0: insert the
// firing's tuples into `all` (and `delta`, if given) immediately, so later
// rules of the same round see them.
void MergeSerial(const CompiledRule& cr, FiredRule& fired, Database& all,
                 Database* delta, bool* changed, DatalogEvalStats* stats) {
  if (fired.id_path) {
    for (std::size_t i = 0; i < fired.num_rows; ++i) {
      std::span<const ValueId> row(fired.rows.data() + i * cr.head_arity,
                                   cr.head_arity);
      if (all.AddRow(cr.head_rel, row)) {
        if (delta != nullptr) delta->AddRow(cr.head_rel, row);
        if (changed != nullptr) *changed = true;
        if (stats != nullptr) ++stats->derived_facts;
      }
    }
    return;
  }
  const std::string& head = cr.rule->head.predicate();
  for (Tuple& t : fired.tuples) {
    bool added;
    if (delta != nullptr) {
      added = all.AddFact(head, t);
      if (added) delta->AddFact(head, std::move(t));
    } else {
      added = all.AddFact(head, std::move(t));
    }
    if (added) {
      if (changed != nullptr) *changed = true;
      if (stats != nullptr) ++stats->derived_facts;
    }
  }
}

// One relation's slice of a round delta in the buffered fast path: rows
// flattened with stride `arity`, kept in first-touch order. Carries no
// dedup structure of its own — the round-barrier `Database::AddRowBatch`
// deduplicates candidates against the database and within the round in one
// shard-parallel pass (DESIGN.md §17), so between rounds the buffer holds
// candidates, and after the barrier it holds the committed survivors.
struct DeltaRows {
  RelationId rel = kNoRelation;
  std::uint32_t arity = 0;
  std::vector<ValueId> rows;

  std::size_t count() const { return arity == 0 ? 0 : rows.size() / arity; }
};

// Semi-naive rounds 1..n over flat per-relation delta buffers instead of a
// per-round Database. Only reachable when every (rule, intensional
// position) join compiled to a valid block plan and every head arity fits
// a probe mask. Each round: split every (plan, non-empty delta buffer)
// join into block-sized pool tasks (so one wide delta still fans out
// across workers), block-join them in parallel against the frozen `all`,
// then commit each head relation's concatenated candidates with one
// shard-parallel AddRowBatch at the barrier. This skips the per-round
// Database entirely — no string-tuple materialization on the round path,
// no second hash insert per derived row — and at P shards the commit
// claims rows into P independent tables with no shared locks. The derived
// database (row order, interning order) and all engine counters are
// bit-identical to the serial AddRow loop for every thread and shard
// count: tasks are merged in (join, block) order, which is the serial
// block order, and AddRowBatch commits survivors in candidate order.
void EvaluateRoundsBuffered(const std::vector<CompiledRule>& compiled,
                            const std::vector<std::vector<BlockJoinPlan>>& plans,
                            const EvalOptions& options, const Database& delta0,
                            Database& all, std::uint64_t* round,
                            DatalogEvalStats* stats) {
  // Round 0's delta arrives as a Database (its rules fire serially and need
  // incremental visibility); flatten it into buffers once.
  std::vector<DeltaRows> delta;
  std::unordered_map<RelationId, std::size_t> slot_of;
  auto buffer_for = [&](std::vector<DeltaRows>& bufs, RelationId rel,
                        std::uint32_t arity) -> DeltaRows& {
    auto [it, added] = slot_of.try_emplace(rel, bufs.size());
    if (added) {
      bufs.emplace_back();
      bufs.back().rel = rel;
      bufs.back().arity = arity;
    }
    return bufs[it->second];
  };
  for (const RelationId rel : delta0.RelationIds()) {
    const std::size_t n = delta0.NumRows(rel);
    if (n == 0) continue;
    DeltaRows& buf = buffer_for(
        delta, rel, static_cast<std::uint32_t>(delta0.Arity(rel)));
    const Database::RowView rows = delta0.Rows(rel);
    buf.rows.reserve(n * buf.arity);
    for (std::size_t i = 0; i < n; ++i) {
      const ValueId* row = rows[static_cast<std::uint32_t>(i)];
      buf.rows.insert(buf.rows.end(), row, row + buf.arity);
    }
  }

  // A (rule, delta position) join restricted to one block of delta rows.
  // Tasks are enumerated join-major, block-minor, and their outputs are
  // concatenated in task order — exactly the order one Execute call over
  // the whole buffer produces, since Execute chunks from row 0 in
  // `block` steps.
  struct DeltaTask {
    const CompiledRule* rule;
    const BlockJoinPlan* plan;
    const DeltaRows* buf;
    std::size_t begin = 0;  // first delta row of the block
    std::size_t end = 0;    // one past the last
  };
  const std::size_t block = std::max<std::size_t>(options.delta_block_rows, 1);
  std::vector<DeltaTask> tasks;
  std::vector<std::uint32_t> added;
  std::vector<ValueId> committed;  // scratch, reused across rounds
  std::size_t total = 0;
  for (const DeltaRows& buf : delta) total += buf.count();
  while (total > 0) {
    ObsSpan round_span(options.obs, "datalog/round", "datalog");
    round_span.AddArg("round", (*round)++);
    if (stats != nullptr) ++stats->iterations;
    tasks.clear();
    for (std::size_t r = 0; r < compiled.size(); ++r) {
      const CompiledRule& cr = compiled[r];
      for (std::size_t i = 0; i < cr.rule->body.size(); ++i) {
        if (!plans[r][i].valid()) continue;  // extensional position
        auto it = slot_of.find(cr.body_rels[i]);
        if (it == slot_of.end() || delta[it->second].count() == 0) continue;
        const DeltaRows& buf = delta[it->second];
        const std::size_t n = buf.count();
        for (std::size_t b = 0; b < n; b += block) {
          tasks.push_back(DeltaTask{&cr, &plans[r][i], &buf, b,
                                    std::min(n, b + block)});
        }
      }
    }
    round_span.AddArg("tasks", tasks.size());
    std::vector<FiredRule> fired = ParallelMap<FiredRule>(
        options.exec, tasks.size(), [&](std::size_t t) {
          ObsSpan join_span(options.obs, "datalog/delta_join", "datalog");
          join_span.AddArg("task", t);
          const DeltaTask& task = tasks[t];
          FiredRule out;
          out.id_path = true;
          task.plan->Execute(
              all,
              std::span<const ValueId>(task.buf->rows)
                  .subspan(task.begin * task.buf->arity,
                           (task.end - task.begin) * task.buf->arity),
              task.buf->arity, block, &out.rows, &out.num_rows,
              &out.stats.hom);
          out.stats.rule_firings = out.num_rows;
          return out;
        });
    // Round barrier. Gather each head relation's candidate rows in task
    // order (relations keyed by the first producing task, exactly the
    // first-touch order of the per-task merge this replaces), then commit
    // each relation with one shard-parallel AddRowBatch: it deduplicates
    // against the database and within the batch, assigns global row
    // numbers in candidate order, and reports the committed survivors —
    // which are precisely the next round's delta.
    ObsSpan merge_span(options.obs, "datalog/shard_merge", "datalog");
    std::vector<DeltaRows> next;
    slot_of.clear();
    std::size_t candidates = 0;
    for (std::size_t t = 0; t < tasks.size(); ++t) {
      if (stats != nullptr) stats->Merge(fired[t].stats);
      if (fired[t].num_rows == 0) continue;
      const CompiledRule& cr = *tasks[t].rule;
      DeltaRows& buf = buffer_for(
          next, cr.head_rel, static_cast<std::uint32_t>(cr.head_arity));
      buf.rows.insert(buf.rows.end(), fired[t].rows.begin(),
                      fired[t].rows.end());
      candidates += fired[t].num_rows;
    }
    merge_span.AddArg("candidates", candidates);
    merge_span.AddArg("relations", next.size());
    total = 0;
    for (DeltaRows& buf : next) {
      added.clear();
      const std::size_t got =
          all.AddRowBatch(buf.rel, buf.arity, buf.rows, options.exec, &added);
      if (stats != nullptr) stats->derived_facts += got;
      // Replace the candidates with the committed survivors (in commit
      // order) — the relation's slice of the next delta.
      const Database::RowView view = all.Rows(buf.rel);
      committed.clear();
      committed.reserve(added.size() * buf.arity);
      for (const std::uint32_t g : added) {
        const ValueId* row = view[g];
        committed.insert(committed.end(), row, row + buf.arity);
      }
      buf.rows.assign(committed.begin(), committed.end());
      total += got;
    }
    round_span.AddArg("delta_facts", total);
    delta = std::move(next);
  }
}

Result<Database> EvaluateProgramImpl(const DatalogProgram& program,
                                     const Database& edb,
                                     const EvalOptions& options,
                                     DatalogEvalStats* stats) {
  QCONT_RETURN_IF_ERROR(program.Validate());
  ObsSpan eval_span(options.obs, "datalog/eval", "datalog");
  eval_span.AddArg("rules", program.rules().size());
  Database all = edb;
  all.set_obs(options.obs);
  all.set_probe_options(options.probe);
  // Physical-only layout change: partition every relation into
  // options.shards hash-shards so the round-barrier merge can claim rows
  // shard-parallel. Answers and engine counters do not depend on it.
  if (options.shards > 1 && all.layout() == DatabaseLayout::kFlat) {
    all.Reshard(std::min(options.shards, kMaxShards));
  }
  const std::vector<CompiledRule> compiled = CompileRules(program, all);
  HomSearchOptions hom_options;
  hom_options.use_index = options.use_index;
  std::uint64_t round = 0;

  if (options.strategy == EvalStrategy::kNaive) {
    // The naive reference strategy is deliberately serial: each rule in a
    // round sees the facts added by the rules before it, so firings are
    // order-dependent by definition.
    bool changed = true;
    while (changed) {
      changed = false;
      ObsSpan round_span(options.obs, "datalog/round", "datalog");
      round_span.AddArg("round", round++);
      if (stats != nullptr) ++stats->iterations;
      for (const CompiledRule& cr : compiled) {
        FiredRule fired = FireRule(cr, all, nullptr, -1, hom_options);
        if (stats != nullptr) stats->Merge(fired.stats);
        MergeSerial(cr, fired, all, nullptr, &changed, stats);
      }
    }
    return all;
  }

  // Semi-naive: round 0 fires all rules on the EDB; later rounds require at
  // least one body atom to match the previous round's delta. The deltas
  // share `all`'s value pool (and layout, so differential runs exercise one
  // layout end to end), so the indexed join spans both databases. Round 0
  // stays serial: like the naive rounds, each rule sees the facts added by
  // the rules before it.
  Database delta(all.pool(), all.layout());
  delta.set_obs(options.obs);
  delta.set_probe_options(options.probe);
  {
    ObsSpan round_span(options.obs, "datalog/round", "datalog");
    round_span.AddArg("round", round++);
    if (stats != nullptr) ++stats->iterations;
    for (const CompiledRule& cr : compiled) {
      FiredRule fired = FireRule(cr, all, nullptr, -1, hom_options);
      if (stats != nullptr) stats->Merge(fired.stats);
      MergeSerial(cr, fired, all, &delta, nullptr, stats);
    }
    round_span.AddArg("delta_facts", delta.NumFacts());
  }
  // Block-join plans are compiled once per (rule, intensional position),
  // after round 0 so body constants resolve against the settled pool. When
  // EVERY join of the program has a valid plan and every head fits a probe
  // mask, the loop runs in buffered-delta mode: each round's delta lives
  // in flat per-relation row buffers instead of a full Database (no string
  // tuples, no domain tracking, no second hash insert per derived row).
  const bool use_block_joins = options.block_delta_joins && options.use_index;
  bool buffered = use_block_joins;
  std::vector<std::vector<BlockJoinPlan>> plans(compiled.size());
  if (use_block_joins) {
    for (std::size_t r = 0; r < compiled.size(); ++r) {
      const CompiledRule& cr = compiled[r];
      if (cr.head_arity < 1 || cr.head_arity > 32) buffered = false;
      plans[r].resize(cr.rule->body.size());
      for (std::size_t i = 0; i < cr.rule->body.size(); ++i) {
        if (!program.IsIntensional(cr.rule->body[i].predicate())) continue;
        plans[r][i] = BlockJoinPlan::Compile(*cr.rule, cr.body_rels,
                                             static_cast<int>(i), *all.pool());
        if (!plans[r][i].valid()) buffered = false;
      }
    }
  }

  if (buffered) {
    EvaluateRoundsBuffered(compiled, plans, options, delta, all, &round,
                           stats);
    return all;
  }
  while (delta.NumFacts() > 0) {
    ObsSpan round_span(options.obs, "datalog/round", "datalog");
    round_span.AddArg("round", round++);
    if (stats != nullptr) ++stats->iterations;
    Database next_delta(all.pool(), all.layout());
    next_delta.set_obs(options.obs);
    next_delta.set_probe_options(options.probe);
    // The (rule, delta position) joins of a round are independent: they
    // only read `all` and `delta`, which are frozen until the barrier. Each
    // runs as its own pool task into a private FiredRule; the buffers are
    // merged below in task order, so the result is bit-identical to the
    // serial loop for every thread count (including insertion order, which
    // fixes the interning order of new values).
    struct DeltaJoin {
      const CompiledRule* rule;
      int position;
      const BlockJoinPlan* plan;  // null: recursive engine
    };
    std::vector<DeltaJoin> joins;
    for (std::size_t r = 0; r < compiled.size(); ++r) {
      const CompiledRule& cr = compiled[r];
      for (std::size_t i = 0; i < cr.rule->body.size(); ++i) {
        if (!program.IsIntensional(cr.rule->body[i].predicate())) continue;
        if (delta.NumRows(cr.body_rels[i]) == 0) continue;
        const BlockJoinPlan* plan =
            use_block_joins && plans[r][i].valid() ? &plans[r][i] : nullptr;
        joins.push_back(DeltaJoin{&cr, static_cast<int>(i), plan});
      }
    }
    round_span.AddArg("joins", joins.size());
    std::vector<FiredRule> fired = ParallelMap<FiredRule>(
        options.exec, joins.size(), [&](std::size_t t) {
          ObsSpan join_span(options.obs, "datalog/delta_join", "datalog");
          join_span.AddArg("task", t);
          if (joins[t].plan != nullptr) {
            FiredRule out;
            out.id_path = true;
            joins[t].plan->Execute(all, delta, options.delta_block_rows,
                                   &out.rows, &out.num_rows, &out.stats.hom);
            out.stats.rule_firings = out.num_rows;
            return out;
          }
          return FireRule(*joins[t].rule, all, &delta, joins[t].position,
                          hom_options);
        });
    std::vector<std::span<const std::uint32_t>> hits;
    for (std::size_t t = 0; t < joins.size(); ++t) {
      if (stats != nullptr) stats->Merge(fired[t].stats);
      const CompiledRule& cr = *joins[t].rule;
      if (fired[t].id_path) {
        const std::size_t arity = cr.head_arity;
        if (fired[t].num_rows > 0 && arity >= 1 && arity <= 32) {
          // Batched dedup against `all`: one ProbeMany over the head
          // relation's primary table resolves every candidate row of this
          // firing in bucket order.
          const std::uint32_t mask =
              arity == 32 ? ~0u : ((1u << arity) - 1u);
          hits.assign(fired[t].num_rows, {});
          all.ProbeMany(cr.head_rel, mask, std::span<const ValueId>(fired[t].rows),
                        std::span<std::span<const std::uint32_t>>(hits));
          for (std::size_t i = 0; i < fired[t].num_rows; ++i) {
            if (hits[i].empty()) {
              next_delta.AddRow(
                  cr.head_rel,
                  std::span<const ValueId>(fired[t].rows.data() + i * arity,
                                           arity));
            }
          }
        } else {
          for (std::size_t i = 0; i < fired[t].num_rows; ++i) {
            std::span<const ValueId> row(fired[t].rows.data() + i * arity,
                                         arity);
            if (!all.HasRow(cr.head_rel, row)) {
              next_delta.AddRow(cr.head_rel, row);
            }
          }
        }
      } else {
        const std::string& head = cr.rule->head.predicate();
        for (Tuple& tuple : fired[t].tuples) {
          if (!all.HasFact(head, tuple)) {
            next_delta.AddFact(head, std::move(tuple));
          }
        }
      }
    }
    for (RelationId rel : next_delta.RelationIds()) {
      const std::size_t n = next_delta.NumRows(rel);
      for (std::size_t i = 0; i < n; ++i) {
        if (all.AddRow(rel, next_delta.Row(rel, i)) && stats != nullptr) {
          ++stats->derived_facts;
        }
      }
    }
    round_span.AddArg("delta_facts", next_delta.NumFacts());
    delta = std::move(next_delta);
  }
  return all;
}

}  // namespace

// Publish funnel: with a metric sink attached, gather the run's counters
// into a run-local struct, publish once at the end (the same deltas that
// merge into the caller's legacy sink), and mirror the working database's
// index counters as `db.*` gauges (including the open-addressing probe
// table's collision and resize counters).
Result<Database> EvaluateProgram(const DatalogProgram& program,
                                 const Database& edb,
                                 const EvalOptions& options,
                                 DatalogEvalStats* stats) {
  MetricRegistry* metrics = ObsMetrics(options.obs);
  if (metrics == nullptr) {
    return EvaluateProgramImpl(program, edb, options, stats);
  }
  DatalogEvalStats run;
  Result<Database> result = EvaluateProgramImpl(program, edb, options, &run);
  run.PublishTo(metrics, "datalog.eval");
  if (result.ok()) {
    const DatabaseIndexStats idx = (*result).index_stats();
    metrics->SetGauge("db.indexes_built", idx.indexes_built);
    metrics->SetGauge("db.probes", idx.probes);
    metrics->SetGauge("db.rows_indexed", idx.rows_indexed);
    metrics->SetGauge("db.probe_table.probes", idx.probes);
    metrics->SetGauge("db.probe_table.collisions", idx.probe_collisions);
    metrics->SetGauge("db.probe_table.resizes", idx.probe_resizes);
    metrics->SetGauge("db.probe.tag_hits", idx.tag_hits);
    metrics->SetGauge("db.probe.tag_skips", idx.tag_skips);
    metrics->SetGauge("db.probe.filter_skips", idx.filter_skips);
    metrics->SetGauge("db.probe.prefetch_batches", idx.prefetch_batches);
    const DatabaseShardStats sh = (*result).shard_stats();
    metrics->SetGauge("db.shard.count", static_cast<std::uint64_t>(sh.shards));
    metrics->SetGauge("db.shard.rows_total", sh.rows_total);
    metrics->SetGauge("db.shard.rows_max", sh.rows_max_shard);
    metrics->SetGauge("db.shard.rows_min", sh.rows_min_shard);
    metrics->SetGauge("db.shard.imbalance_pct",
                      static_cast<std::uint64_t>(sh.imbalance_pct));
    metrics->SetGauge("db.shard.occupancy_pct",
                      static_cast<std::uint64_t>(sh.max_occupancy_pct));
  }
  if (stats != nullptr) stats->Merge(run);
  return result;
}

Result<Database> EvaluateProgram(const DatalogProgram& program,
                                 const Database& edb, EvalStrategy strategy,
                                 DatalogEvalStats* stats) {
  EvalOptions options;
  options.strategy = strategy;
  return EvaluateProgram(program, edb, options, stats);
}

Result<std::vector<Tuple>> EvaluateGoal(const DatalogProgram& program,
                                        const Database& edb,
                                        const EvalOptions& options,
                                        DatalogEvalStats* stats) {
  QCONT_ASSIGN_OR_RETURN(Database all,
                         EvaluateProgram(program, edb, options, stats));
  const std::vector<Tuple>& facts = all.Facts(program.goal_predicate());
  const std::size_t n = facts.size();
  const RelationId goal = all.RelationIdOf(program.goal_predicate());
  const std::size_t arity = goal == kNoRelation ? 0 : all.Arity(goal);
  if (n <= 1 || arity == 0) return facts;
  // Sorting the string tuples directly costs a string compare per
  // comparison; instead rank the distinct values by name once and sort the
  // interned rows under that rank — element-wise it is the same order, so
  // the output is byte-identical to std::sort over the tuples.
  std::unordered_map<ValueId, std::uint32_t> rank;
  for (std::size_t r = 0; r < n; ++r) {
    for (const ValueId v : all.Row(goal, r)) rank.emplace(v, 0);
  }
  std::vector<std::pair<std::string_view, ValueId>> named;
  named.reserve(rank.size());
  for (const auto& kv : rank) {
    named.emplace_back(all.pool()->NameOf(kv.first), kv.first);
  }
  std::sort(named.begin(), named.end());
  for (std::size_t i = 0; i < named.size(); ++i) {
    rank[named[i].second] = static_cast<std::uint32_t>(i);
  }
  std::vector<std::uint32_t> keys(n * arity);
  for (std::size_t r = 0; r < n; ++r) {
    const std::span<const ValueId> row = all.Row(goal, r);
    for (std::size_t j = 0; j < arity; ++j) keys[r * arity + j] = rank[row[j]];
  }
  std::vector<std::uint32_t> order(n);
  for (std::size_t r = 0; r < n; ++r) order[r] = static_cast<std::uint32_t>(r);
  std::sort(order.begin(), order.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              const std::uint32_t* ka = keys.data() + a * arity;
              const std::uint32_t* kb = keys.data() + b * arity;
              return std::lexicographical_compare(ka, ka + arity, kb,
                                                  kb + arity);
            });
  std::vector<Tuple> out;
  out.reserve(n);
  for (const std::uint32_t r : order) out.push_back(facts[r]);
  return out;
}

Result<std::vector<Tuple>> EvaluateGoal(const DatalogProgram& program,
                                        const Database& edb,
                                        EvalStrategy strategy,
                                        DatalogEvalStats* stats) {
  EvalOptions options;
  options.strategy = strategy;
  return EvaluateGoal(program, edb, options, stats);
}

Result<bool> UcqContainedInDatalog(const UnionQuery& theta,
                                   const DatalogProgram& program,
                                   const EvalOptions& options,
                                   DatalogEvalStats* stats) {
  QCONT_RETURN_IF_ERROR(theta.Validate());
  QCONT_RETURN_IF_ERROR(program.Validate());
  if (static_cast<int>(theta.arity()) != program.GoalArity()) {
    return InvalidArgumentError("UCQ arity differs from goal arity");
  }
  for (const ConjunctiveQuery& disjunct : theta.disjuncts()) {
    Database canonical = CanonicalDatabase(disjunct);
    QCONT_ASSIGN_OR_RETURN(Database derived,
                           EvaluateProgram(program, canonical, options, stats));
    if (!derived.HasFact(program.goal_predicate(), CanonicalHead(disjunct))) {
      return false;
    }
  }
  return true;
}

Result<bool> UcqContainedInDatalog(const UnionQuery& theta,
                                   const DatalogProgram& program,
                                   DatalogEvalStats* stats) {
  return UcqContainedInDatalog(theta, program, EvalOptions(), stats);
}

}  // namespace qcont

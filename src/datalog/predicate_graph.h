#ifndef QCONT_DATALOG_PREDICATE_GRAPH_H_
#define QCONT_DATALOG_PREDICATE_GRAPH_H_

#include <map>
#include <string>
#include <vector>

namespace qcont {

class DatalogProgram;

/// The predicate dependency graph of a Datalog program: one node per
/// predicate (intensional and extensional), an edge P -> Q whenever Q
/// occurs in the body of a rule with head P. The structural facts every
/// client needs — recursion, stratification-style ordering, reachability
/// from the goal — are all functions of the SCC condensation computed once
/// here; `DatalogProgram::IsRecursive` and the analyzer's dead-rule pass
/// share this code.
class PredicateGraph {
 public:
  explicit PredicateGraph(const DatalogProgram& program);

  int num_predicates() const { return static_cast<int>(names_.size()); }
  const std::vector<std::string>& predicate_names() const { return names_; }

  /// Index of `predicate`, or -1 if it does not occur in the program.
  int IndexOf(const std::string& predicate) const;

  /// Body-predicate successors of node `p` (deduplicated).
  const std::vector<int>& SuccessorsOf(int p) const { return edges_[p]; }

  /// SCC id of node `p`. Ids are a reverse topological order of the
  /// condensation: every edge leaves a node for one with a *smaller* SCC
  /// id, so iterating ids ascending visits callees before callers (the
  /// usual stratification-style evaluation order).
  int SccOf(int p) const { return scc_of_[p]; }
  int num_sccs() const { return num_sccs_; }

  /// True iff `p` lies on a cycle: its SCC has more than one node, or it
  /// has a self-loop.
  bool IsRecursivePredicate(int p) const { return recursive_scc_[scc_of_[p]]; }

  /// True iff some predicate lies on a cycle.
  bool HasCycle() const;

  /// Nodes reachable from the goal predicate (including the goal itself).
  /// Empty vector-of-false when the goal does not occur in the program.
  std::vector<bool> ReachableFromGoal() const;

 private:
  std::vector<std::string> names_;
  std::map<std::string, int> index_;
  std::vector<std::vector<int>> edges_;
  std::vector<int> scc_of_;
  std::vector<bool> recursive_scc_;  // indexed by SCC id
  int num_sccs_ = 0;
  int goal_ = -1;
};

}  // namespace qcont

#endif  // QCONT_DATALOG_PREDICATE_GRAPH_H_

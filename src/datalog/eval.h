#ifndef QCONT_DATALOG_EVAL_H_
#define QCONT_DATALOG_EVAL_H_

#include <cstdint>
#include <vector>

#include "base/status.h"
#include "cq/database.h"
#include "cq/homomorphism.h"
#include "datalog/program.h"

namespace qcont {

/// Evaluation counters (benchmark signal for experiment E9). `hom`
/// aggregates the join-substrate counters over every rule firing, so index
/// effectiveness (index_candidates vs scan_candidates) is visible per run.
///
/// Value-type accumulator: every rule firing fills its own instance and
/// the totals are combined with `Merge` at the join point (the round
/// barrier under parallel evaluation), never through a pointer shared
/// across firings — totals are identical for every thread count.
struct DatalogEvalStats {
  /// Fixpoint rounds executed (naive sweeps, or semi-naive round 0 plus one
  /// per non-empty delta). Accumulates across runs.
  std::uint64_t iterations = 0;
  /// Rule body matches found (head tuples produced, before dedup against
  /// the database). Accumulates across runs.
  std::uint64_t rule_firings = 0;
  /// Facts actually added to the database over the run (after dedup).
  /// Accumulates across runs.
  std::uint64_t derived_facts = 0;
  /// Join-substrate counters aggregated over every rule firing, so index
  /// effectiveness (index_candidates vs scan_candidates) is visible per
  /// run. Accumulates across runs.
  HomSearchStats hom;

  void Merge(const DatalogEvalStats& other) {
    iterations += other.iterations;
    rule_firings += other.rule_firings;
    derived_facts += other.derived_facts;
    hom.Merge(other.hom);
  }

  /// Publishes every field as a counter `<prefix>.<field>` (hom counters
  /// under `<prefix>.hom.*`). Call once per run with run-local deltas so
  /// registry totals stay equal to the legacy stats totals.
  void PublishTo(MetricRegistry* metrics, const std::string& prefix) const {
    metrics->Add(prefix + ".iterations", iterations);
    metrics->Add(prefix + ".rule_firings", rule_firings);
    metrics->Add(prefix + ".derived_facts", derived_facts);
    hom.PublishTo(metrics, prefix + ".hom");
  }
};

enum class EvalStrategy {
  kNaive,      // re-derive everything each round
  kSemiNaive,  // delta-driven derivation
};

/// Full evaluation configuration. `use_index=false` selects the pre-index
/// scan join path (differential-testing reference). With
/// `exec.threads > 1`, the semi-naive strategy evaluates each rule's
/// delta join of a round on its own pool task against the frozen
/// database; per-task fact buffers and counters are merged in rule order
/// at the round barrier, so the derived database (including fact
/// insertion order) and all counters are bit-identical to the serial run.
/// The naive strategy is the reference implementation and always serial.
struct EvalOptions {
  EvalStrategy strategy = EvalStrategy::kSemiNaive;
  bool use_index = true;
  ExecContext exec;
  /// Semi-naive delta rounds join block-at-a-time: each (rule, delta
  /// position) task compiles a static-order BlockJoinPlan and resolves
  /// whole blocks of delta rows with one ProbeMany per body atom per
  /// block, instead of one recursive search per delta row. Falls back to
  /// the recursive engine per rule when the shape is unsupported (atom
  /// wider than 32 positions, non-variable head term) and entirely when
  /// `use_index` is off. The derived database is the same fact set either
  /// way; per-engine search counters differ.
  bool block_delta_joins = true;
  /// Delta rows per block (bounds frontier memory; must be > 0). Also the
  /// granularity of delta-join task splitting: each (rule, delta position)
  /// join is submitted to the pool one block at a time, so a round with
  /// one wide delta still fans out across workers.
  std::size_t delta_block_rows = 1024;
  /// Hash-shard count P of the working database (base/shard.h, DESIGN.md
  /// §17). The EDB copy is resharded to P before round 0, so the
  /// round-barrier merge (`Database::AddRowBatch`) claims each round's
  /// candidate rows into P independent per-shard probe tables and arenas —
  /// one pool task per shard, no shared locks. P=1 (the default) keeps the
  /// unsharded layout bit-identical to previous releases. Sharding is
  /// purely physical: answers, derived databases, and every
  /// machine-independent engine counter are identical for every P (only
  /// the probe micro-counters move, see DatabaseIndexStats). Deliberately
  /// an explicit knob — never derived from `exec.threads` — so the
  /// determinism suites can sweep threads and shards independently.
  /// Clamped to [1, kMaxShards]; ignored by the legacy layout.
  int shards = 1;
  /// Probe-kernel knobs applied to the working databases (the EDB copy,
  /// and each round's delta) before evaluation: table load factor, probe
  /// group width, Bloom-filter gating, prefetch distance.
  ProbeOptions probe;
  /// Optional observability sinks, borrowed from the caller. Each
  /// EvaluateProgram run emits `datalog/eval`, `datalog/round`,
  /// `datalog/delta_join` and `datalog/shard_merge` spans plus
  /// `db/index_build` spans from the working database, publishes its stats
  /// under `datalog.eval.*`, and snapshots the working database's index
  /// and shard-layout counters into `db.*` / `db.shard.*` gauges.
  const ObsContext* obs = nullptr;
};

/// Computes F^∞(D): the database `edb` extended with all derived
/// intensional facts, by bottom-up fixpoint. The semi-naive strategy joins
/// each rule's delta atom against the delta relation and the remaining
/// atoms against the full database through the shared per-relation hash
/// indexes, which are maintained incrementally across rounds.
Result<Database> EvaluateProgram(const DatalogProgram& program,
                                 const Database& edb, const EvalOptions& options,
                                 DatalogEvalStats* stats = nullptr);
Result<Database> EvaluateProgram(const DatalogProgram& program,
                                 const Database& edb,
                                 EvalStrategy strategy = EvalStrategy::kSemiNaive,
                                 DatalogEvalStats* stats = nullptr);

/// Π(D): the goal-predicate tuples derived over `edb`, sorted.
Result<std::vector<Tuple>> EvaluateGoal(
    const DatalogProgram& program, const Database& edb,
    const EvalOptions& options, DatalogEvalStats* stats = nullptr);
Result<std::vector<Tuple>> EvaluateGoal(
    const DatalogProgram& program, const Database& edb,
    EvalStrategy strategy = EvalStrategy::kSemiNaive,
    DatalogEvalStats* stats = nullptr);

/// Containment of a UCQ in a Datalog program (Cosmadakis-Kanellakis [16],
/// used by the paper for Corollary 2): Θ ⊆ Π iff for every disjunct θ the
/// frozen head of θ belongs to Π(D_θ). Single-exponential worst case in
/// the program arity; polynomial data complexity. The per-disjunct
/// evaluations run with `options` (so `options.exec` parallelizes each
/// fixpoint's delta rounds).
Result<bool> UcqContainedInDatalog(const UnionQuery& theta,
                                   const DatalogProgram& program,
                                   const EvalOptions& options,
                                   DatalogEvalStats* stats = nullptr);
Result<bool> UcqContainedInDatalog(const UnionQuery& theta,
                                   const DatalogProgram& program,
                                   DatalogEvalStats* stats = nullptr);

}  // namespace qcont

#endif  // QCONT_DATALOG_EVAL_H_

#ifndef QCONT_DATALOG_EVAL_H_
#define QCONT_DATALOG_EVAL_H_

#include <cstdint>
#include <vector>

#include "base/status.h"
#include "cq/database.h"
#include "datalog/program.h"

namespace qcont {

/// Evaluation counters (benchmark signal for experiment E9).
struct DatalogEvalStats {
  std::uint64_t iterations = 0;
  std::uint64_t rule_firings = 0;      // rule body matches found
  std::uint64_t derived_facts = 0;     // new facts added over the run
};

enum class EvalStrategy {
  kNaive,      // re-derive everything each round
  kSemiNaive,  // delta-driven derivation
};

/// Computes F^∞(D): the database `edb` extended with all derived
/// intensional facts, by bottom-up fixpoint.
Result<Database> EvaluateProgram(const DatalogProgram& program,
                                 const Database& edb,
                                 EvalStrategy strategy = EvalStrategy::kSemiNaive,
                                 DatalogEvalStats* stats = nullptr);

/// Π(D): the goal-predicate tuples derived over `edb`, sorted.
Result<std::vector<Tuple>> EvaluateGoal(
    const DatalogProgram& program, const Database& edb,
    EvalStrategy strategy = EvalStrategy::kSemiNaive,
    DatalogEvalStats* stats = nullptr);

/// Containment of a UCQ in a Datalog program (Cosmadakis-Kanellakis [16],
/// used by the paper for Corollary 2): Θ ⊆ Π iff for every disjunct θ the
/// frozen head of θ belongs to Π(D_θ). Single-exponential worst case in
/// the program arity; polynomial data complexity.
Result<bool> UcqContainedInDatalog(const UnionQuery& theta,
                                   const DatalogProgram& program,
                                   DatalogEvalStats* stats = nullptr);

}  // namespace qcont

#endif  // QCONT_DATALOG_EVAL_H_

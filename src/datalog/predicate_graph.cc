#include "datalog/predicate_graph.h"

#include <algorithm>
#include <set>

#include "datalog/program.h"

namespace qcont {

namespace {

// Iterative Tarjan SCC state for one node.
struct TarjanFrame {
  int node;
  std::size_t next_edge = 0;
};

}  // namespace

PredicateGraph::PredicateGraph(const DatalogProgram& program) {
  auto intern = [&](const std::string& name) {
    auto [it, inserted] = index_.emplace(name, names_.size());
    if (inserted) {
      names_.push_back(name);
      edges_.emplace_back();
    }
    return it->second;
  };
  // Deterministic node order: heads then body predicates in program order.
  for (const Rule& r : program.rules()) intern(r.head.predicate());
  for (const Rule& r : program.rules()) {
    const int head = intern(r.head.predicate());
    for (const Atom& a : r.body) {
      const int body = intern(a.predicate());
      if (std::find(edges_[head].begin(), edges_[head].end(), body) ==
          edges_[head].end()) {
        edges_[head].push_back(body);
      }
    }
  }
  goal_ = IndexOf(program.goal_predicate());

  // Tarjan's algorithm, iterative so deep rule chains cannot overflow the
  // stack. SCC ids come out in reverse topological order.
  const int n = num_predicates();
  scc_of_.assign(n, -1);
  std::vector<int> low(n, -1), disc(n, -1);
  std::vector<bool> on_stack(n, false);
  std::vector<int> stack;
  int time = 0;
  for (int root = 0; root < n; ++root) {
    if (disc[root] != -1) continue;
    std::vector<TarjanFrame> frames{{root}};
    disc[root] = low[root] = time++;
    stack.push_back(root);
    on_stack[root] = true;
    while (!frames.empty()) {
      TarjanFrame& f = frames.back();
      if (f.next_edge < edges_[f.node].size()) {
        const int to = edges_[f.node][f.next_edge++];
        if (disc[to] == -1) {
          disc[to] = low[to] = time++;
          stack.push_back(to);
          on_stack[to] = true;
          frames.push_back({to});
        } else if (on_stack[to]) {
          low[f.node] = std::min(low[f.node], disc[to]);
        }
      } else {
        if (low[f.node] == disc[f.node]) {
          while (true) {
            const int w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            scc_of_[w] = num_sccs_;
            if (w == f.node) break;
          }
          ++num_sccs_;
        }
        const int done = f.node;
        frames.pop_back();
        if (!frames.empty()) {
          low[frames.back().node] = std::min(low[frames.back().node],
                                             low[done]);
        }
      }
    }
  }

  recursive_scc_.assign(num_sccs_, false);
  std::vector<int> scc_size(num_sccs_, 0);
  for (int p = 0; p < n; ++p) ++scc_size[scc_of_[p]];
  for (int p = 0; p < n; ++p) {
    if (scc_size[scc_of_[p]] > 1) {
      recursive_scc_[scc_of_[p]] = true;
      continue;
    }
    for (int q : edges_[p]) {
      if (q == p) recursive_scc_[scc_of_[p]] = true;
    }
  }
}

int PredicateGraph::IndexOf(const std::string& predicate) const {
  auto it = index_.find(predicate);
  return it == index_.end() ? -1 : it->second;
}

bool PredicateGraph::HasCycle() const {
  for (bool r : recursive_scc_) {
    if (r) return true;
  }
  return false;
}

std::vector<bool> PredicateGraph::ReachableFromGoal() const {
  std::vector<bool> reachable(num_predicates(), false);
  if (goal_ < 0) return reachable;
  std::vector<int> worklist{goal_};
  reachable[goal_] = true;
  while (!worklist.empty()) {
    const int p = worklist.back();
    worklist.pop_back();
    for (int q : edges_[p]) {
      if (!reachable[q]) {
        reachable[q] = true;
        worklist.push_back(q);
      }
    }
  }
  return reachable;
}

}  // namespace qcont

#ifndef QCONT_DATALOG_PROGRAM_H_
#define QCONT_DATALOG_PROGRAM_H_

#include <cstddef>
#include <set>
#include <string>
#include <vector>

#include "base/status.h"
#include "cq/atom.h"
#include "cq/term.h"

namespace qcont {

/// A Datalog rule S(x̄) <- R1(x̄1), ..., Rm(x̄m).
struct Rule {
  Atom head;
  std::vector<Atom> body;

  std::string ToString() const;

  /// Distinct variables of the rule, head first then body, in
  /// first-occurrence order.
  std::vector<std::string> Variables() const;
};

/// A (positive, un-stratified) Datalog program over a schema σ with a
/// distinguished goal predicate, as in Section 2 of the paper. The schema
/// consists of the extensional symbols σ = Rels(Π) \ IRels(Π); intensional
/// symbols are those appearing in rule heads.
class DatalogProgram {
 public:
  DatalogProgram(std::vector<Rule> rules, std::string goal_predicate)
      : rules_(std::move(rules)), goal_(std::move(goal_predicate)) {
    BuildIndexes();
  }

  const std::vector<Rule>& rules() const { return rules_; }
  const std::string& goal_predicate() const { return goal_; }

  /// Intensional predicates (rule heads).
  const std::set<std::string>& IntensionalPredicates() const { return idb_; }
  /// Extensional predicates (the schema σ).
  const std::set<std::string>& ExtensionalPredicates() const { return edb_; }

  bool IsIntensional(const std::string& predicate) const {
    return idb_.count(predicate) > 0;
  }

  /// Indices of the rules whose head predicate is `predicate`.
  const std::vector<int>& RulesFor(const std::string& predicate) const;

  /// Arity of `predicate` as used in the program (kMissingArity if absent).
  static constexpr int kMissingArity = -1;
  int ArityOf(const std::string& predicate) const;

  /// Arity of the goal predicate.
  int GoalArity() const { return ArityOf(goal_); }

  /// Validation: rules are safe (head variables occur in bodies), arities
  /// are consistent, the goal predicate is intensional, and (as required by
  /// the containment algorithms) all rule terms are variables.
  ///
  /// Defined in analysis/validate.cc (library qcont_analysis): validation
  /// runs the analyzer's error passes so that Validate() and
  /// analysis::AnalyzeProgram can never disagree. Link qcont_analysis to
  /// use it.
  Status Validate() const;

  /// True iff some intensional predicate depends on itself (cycle in the
  /// predicate dependency graph).
  bool IsRecursive() const;

  /// True iff each rule body contains at most one intensional atom.
  bool IsLinear() const;

  /// True iff all intensional predicates except possibly the goal are
  /// monadic (arity <= 1).
  bool IsMonadic() const;

  /// Largest number of distinct variables in any rule (nv(Π)/2 in the
  /// paper's notation: vars(Π) has twice this size).
  int MaxRuleVariables() const;

  /// Largest number of intensional atoms in any rule body (the maximal
  /// branching degree of expansion trees).
  int MaxIntensionalAtoms() const;

  std::string ToString() const;

 private:
  void BuildIndexes();

  std::vector<Rule> rules_;
  std::string goal_;
  std::set<std::string> idb_;
  std::set<std::string> edb_;
  std::vector<std::pair<std::string, std::vector<int>>> rules_for_;
};

}  // namespace qcont

#endif  // QCONT_DATALOG_PROGRAM_H_

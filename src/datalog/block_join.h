#ifndef QCONT_DATALOG_BLOCK_JOIN_H_
#define QCONT_DATALOG_BLOCK_JOIN_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "cq/database.h"
#include "cq/homomorphism.h"
#include "datalog/program.h"

namespace qcont {

/// Compiled block-at-a-time delta join for one (rule, delta position) pair
/// (DESIGN.md §16). Where the recursive homomorphism engine extends one
/// partial binding at a time — re-selecting the most-constrained atom and
/// issuing one index probe per candidate — the block plan fixes the atom
/// order once at compile time (delta atom first, then greedily by bound
/// positions) and joins a whole block of delta rows per step: the frontier
/// of partial bindings is a flat ValueId array, each step gathers every
/// frontier row's probe key and resolves them with ONE ProbeMany call per
/// atom per block, so the staged probe pipeline (hash → Bloom filter →
/// prefetch → tag-filtered resolve) amortizes over the block instead of
/// running one cold probe per binding.
///
/// The plan enumerates exactly the homomorphisms the recursive engine
/// finds (same set, same multiplicity — emission order may differ, which
/// semi-naive rounds absorb because derived facts are deduplicated sets).
/// Execution is deterministic: output order depends only on delta row
/// order and postings order, never on thread count.
class BlockJoinPlan {
 public:
  /// Compiles a plan for `rule` with the atom at `delta_position` matched
  /// against the delta database. `body_rels` are the pre-interned relation
  /// ids of the body atoms; constants are resolved through `pool`. Returns
  /// an invalid plan (check valid()) when the rule shape is unsupported —
  /// an atom wider than 32 positions or a non-variable head term — in
  /// which case the caller falls back to the recursive engine.
  static BlockJoinPlan Compile(const Rule& rule,
                               std::span<const RelationId> body_rels,
                               int delta_position, const Interner& pool);

  BlockJoinPlan() = default;

  bool valid() const { return valid_; }

  /// Joins every delta row (in blocks of `block_rows`) through the plan,
  /// appending each match's head row to `out_rows` (stride = head arity)
  /// and bumping `*num_rows` per match. Probe traffic lands in `stats`
  /// (index_probes/index_candidates for the ProbeMany steps,
  /// scan_candidates for the delta scan, atom_attempts per candidate).
  void Execute(const Database& all, const Database& delta,
               std::size_t block_rows, std::vector<ValueId>* out_rows,
               std::size_t* num_rows, HomSearchStats* stats) const;

  /// Same join over a raw delta buffer: `delta_rows` holds the delta
  /// relation's rows flattened with stride `delta_arity`. This is the
  /// buffered-delta fast path of the semi-naive loop, which skips
  /// materializing a Database for each round's delta when every join of
  /// the program has a valid plan.
  void Execute(const Database& all, std::span<const ValueId> delta_rows,
               std::uint32_t delta_arity, std::size_t block_rows,
               std::vector<ValueId>* out_rows, std::size_t* num_rows,
               HomSearchStats* stats) const;

 private:
  // Per masked position of a step's probe key, ascending by position:
  // either a constant's interned id or the frontier slot the value comes
  // from.
  struct KeySource {
    bool is_constant = false;
    ValueId constant = 0;
    int var_slot = -1;
  };
  // Unbound position handled outside the probe key: first occurrence of a
  // variable binds its frontier slot, a repeat within the same atom checks
  // against the slot bound moments earlier.
  struct PositionAction {
    std::uint32_t pos = 0;
    int var_slot = -1;
    bool bind = false;  // false: equality check against var_slot
  };
  struct AtomStep {
    RelationId rel = kNoRelation;
    std::uint32_t arity = 0;
    std::uint32_t mask = 0;       // bound positions (constants + bound vars)
    std::uint32_t key_width = 0;  // popcount(mask)
    std::vector<KeySource> key_sources;
    std::vector<PositionAction> actions;
  };

  bool valid_ = false;
  // A body constant that was never interned cannot occur in any fact, so
  // the join is statically empty (still a valid plan).
  bool never_matches_ = false;
  std::size_t num_vars_ = 0;
  RelationId delta_rel_ = kNoRelation;
  std::uint32_t delta_arity_ = 0;
  std::vector<PositionAction> delta_actions_;  // binds + checks, incl. consts
  std::vector<std::pair<std::uint32_t, ValueId>> delta_const_checks_;
  std::vector<AtomStep> steps_;    // non-delta atoms in join order
  std::vector<int> head_slots_;    // frontier slot per head position
};

}  // namespace qcont

#endif  // QCONT_DATALOG_BLOCK_JOIN_H_

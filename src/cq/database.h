#ifndef QCONT_CQ_DATABASE_H_
#define QCONT_CQ_DATABASE_H_

#include <cstddef>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "cq/query.h"

namespace qcont {

/// A database value. Canonical databases use variable names as values
/// ("frozen" variables), so values are plain strings.
using Value = std::string;
using Tuple = std::vector<Value>;

/// A finite relational database: a set of facts R(v1,...,vn).
class Database {
 public:
  Database() = default;

  /// Adds a fact; duplicate facts are ignored. Returns true if new.
  bool AddFact(const std::string& relation, Tuple tuple);

  bool HasFact(const std::string& relation, const Tuple& tuple) const;

  /// Tuples of `relation` (empty if the relation has no facts).
  const std::vector<Tuple>& Facts(const std::string& relation) const;

  /// Relation names that have at least one fact.
  std::vector<std::string> Relations() const;

  /// All values occurring in any fact (the active domain).
  std::vector<Value> ActiveDomain() const;

  std::size_t NumFacts() const { return num_facts_; }

  /// Merges all facts of `other` into this database.
  void UnionWith(const Database& other);

  std::string ToString() const;

 private:
  struct TupleHash {
    std::size_t operator()(const Tuple& t) const;
  };
  struct RelationData {
    std::vector<Tuple> tuples;
    std::unordered_set<Tuple, TupleHash> set;
  };
  std::unordered_map<std::string, RelationData> relations_;
  std::size_t num_facts_ = 0;
};

/// The canonical database D_theta of a CQ: one fact per atom, with each
/// variable frozen to a value named after it. Constants keep their name.
Database CanonicalDatabase(const ConjunctiveQuery& cq);

/// The tuple of frozen head variables of `cq` (the tuple to look for in the
/// Chandra-Merlin containment test).
Tuple CanonicalHead(const ConjunctiveQuery& cq);

}  // namespace qcont

#endif  // QCONT_CQ_DATABASE_H_

#ifndef QCONT_CQ_DATABASE_H_
#define QCONT_CQ_DATABASE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "base/hash.h"
#include "base/interner.h"
#include "cq/query.h"

namespace qcont {

struct ObsContext;

/// A database value. Canonical databases use variable names as values
/// ("frozen" variables), so values are plain strings.
using Value = std::string;
using Tuple = std::vector<Value>;

/// Interned value id, dense per value pool. `kNoValue` means "not interned".
using ValueId = SymbolId;
inline constexpr ValueId kNoValue = Interner::kMissing;

/// Counters for the per-relation hash indexes (benchmark signal). Obtained
/// as a snapshot via `Database::index_stats()`; the registry mirror
/// (`db.*` gauges) is published from such snapshots by the engines/CLI,
/// never inline per probe.
struct DatabaseIndexStats {
  /// Distinct (relation, mask) indexes built so far. Monotonic per database.
  std::uint64_t indexes_built = 0;
  /// `Probe()` calls issued (hot: bumped on every index lookup). Monotonic.
  std::uint64_t probes = 0;
  /// Rows folded into some index (a row indexed under k masks counts k
  /// times). Monotonic per database.
  std::uint64_t rows_indexed = 0;
};

/// A finite relational database: a set of facts R(v1,...,vn).
///
/// Values are interned into a shared `Interner` pool, so the join substrate
/// works on dense integer ids instead of strings. Databases created with the
/// default constructor own a fresh pool; databases meant to be joined
/// against each other (e.g. a semi-naive delta against the full database)
/// should share one pool via the `Database(pool)` constructor so that value
/// ids are comparable across them.
///
/// Per relation, hash indexes keyed on subsets of bound positions (a
/// position bitmask) are built lazily on first probe, memoized per
/// (relation, mask), and maintained incrementally as facts are added —
/// `AddFact` never invalidates an index.
///
/// Thread safety: all const probing entry points (`Probe`, `Facts`,
/// `Rows`, `HasFact`, `Relations`, `ValueIdOf`, ...) may be called
/// concurrently from multiple threads *as long as no thread mutates the
/// database* (`AddFact`, `UnionWith`) at the same time — the memoized lazy
/// index builds behind `Probe` are guarded by an internal shared mutex
/// (shared lock on the probe hot path, exclusive lock only while a missing
/// or stale index is built) and the index statistics are atomic, so probes
/// of an already-built index never serialize against each other. This is
/// the contract the parallel engines rely on: databases are frozen for the
/// duration of a parallel region and merged at the barrier on one thread.
class Database {
 public:
  Database() : pool_(std::make_shared<Interner>()) {}
  explicit Database(std::shared_ptr<Interner> pool) : pool_(std::move(pool)) {}

  /// The value pool; share it across databases that will be joined together.
  const std::shared_ptr<Interner>& pool() const { return pool_; }

  /// Adds a fact; duplicate facts are ignored. Returns true if new.
  bool AddFact(const std::string& relation, Tuple tuple);

  bool HasFact(const std::string& relation, const Tuple& tuple) const;

  /// Tuples of `relation` (empty if the relation has no facts).
  const std::vector<Tuple>& Facts(const std::string& relation) const;

  /// Interned rows of `relation`, parallel to `Facts(relation)`.
  const std::vector<std::vector<ValueId>>& Rows(
      const std::string& relation) const;

  /// Pool id of `v`, or `kNoValue` if `v` was never interned in the pool.
  /// (A value interned by another database sharing the pool resolves too;
  /// such an id simply matches no row here.)
  ValueId ValueIdOf(std::string_view v) const { return pool_->Find(v); }

  /// Value string for a pool id.
  const Value& ValueName(ValueId id) const { return pool_->NameOf(id); }

  /// Indices into `Rows(relation)` of the rows whose values at the
  /// positions set in `mask` equal `key` (key values listed in ascending
  /// position order). Builds and memoizes the (relation, mask) index on
  /// first use; later `AddFact`s are folded in incrementally on the next
  /// probe. Only the first 32 positions of a relation are indexable.
  /// `mask` must be nonzero. Safe for concurrent const callers (see class
  /// comment); the returned reference stays valid until the next AddFact.
  const std::vector<std::uint32_t>& Probe(const std::string& relation,
                                          std::uint32_t mask,
                                          const std::vector<ValueId>& key) const;

  /// Snapshot of the index counters. (Stored atomically so concurrent
  /// probes can bump them without locking; hence a by-value snapshot.)
  DatabaseIndexStats index_stats() const {
    DatabaseIndexStats s;
    s.indexes_built = index_stats_.indexes_built.load(std::memory_order_relaxed);
    s.probes = index_stats_.probes.load(std::memory_order_relaxed);
    s.rows_indexed = index_stats_.rows_indexed.load(std::memory_order_relaxed);
    return s;
  }

  /// Attaches observability sinks: each lazily built (relation, mask) index
  /// then emits a `db/index_build` span (args: mask, rows). Borrowed
  /// pointer, copied along with the database; set it before a parallel
  /// region probes this database (AddFact-vs-probe rules apply to it too).
  /// Null (the default) disables tracing. Index *counters* are not routed
  /// through here — snapshot `index_stats()` instead.
  void set_obs(const ObsContext* obs) { obs_ = obs; }
  const ObsContext* obs() const { return obs_; }

  /// Relation names that have at least one fact, sorted. Cached: the vector
  /// is only rebuilt when a fact of a new relation arrives, and the
  /// returned reference stays valid until then.
  const std::vector<std::string>& Relations() const;

  /// All values occurring in any fact (the active domain), in first-
  /// occurrence order. Maintained incrementally by AddFact; never rebuilt.
  const std::vector<Value>& ActiveDomain() const { return domain_; }

  std::size_t NumFacts() const { return num_facts_; }

  /// Merges all facts of `other` into this database.
  void UnionWith(const Database& other);

  std::string ToString() const;

 private:
  // One lazily built hash index: rows keyed by their values at the masked
  // positions. `rows_indexed` tracks how many of the relation's rows have
  // been folded in, so Probe can catch up incrementally after AddFact.
  struct RelIndex {
    std::unordered_map<std::vector<ValueId>, std::vector<std::uint32_t>,
                       VectorHash<ValueId>>
        buckets;
    std::size_t rows_indexed = 0;
  };
  struct RelationData {
    std::vector<Tuple> tuples;
    std::vector<std::vector<ValueId>> rows;  // parallel to `tuples`
    // Duplicate detection over interned rows: one string hash per value at
    // interning time instead of re-hashing whole string tuples.
    std::unordered_set<std::vector<ValueId>, VectorHash<ValueId>> set;
    mutable std::unordered_map<std::uint32_t, RelIndex> indexes;
  };

  // Guards the mutable memoized state reachable from const methods (lazy
  // index builds, the relations cache). Probes of already-built indexes
  // take the lock shared; building or extending an index takes it
  // exclusive. Copying a Database copies the data but not the mutex.
  struct UncopiedMutex {
    std::shared_mutex mu;
    UncopiedMutex() = default;
    UncopiedMutex(const UncopiedMutex&) {}
    UncopiedMutex& operator=(const UncopiedMutex&) { return *this; }
  };

  // Index counters, updated by concurrent shared-lock probes. Copying a
  // Database snapshots the values.
  struct AtomicIndexStats {
    std::atomic<std::uint64_t> indexes_built{0};
    std::atomic<std::uint64_t> probes{0};
    std::atomic<std::uint64_t> rows_indexed{0};
    AtomicIndexStats() = default;
    AtomicIndexStats(const AtomicIndexStats& o)
        : indexes_built(o.indexes_built.load(std::memory_order_relaxed)),
          probes(o.probes.load(std::memory_order_relaxed)),
          rows_indexed(o.rows_indexed.load(std::memory_order_relaxed)) {}
    AtomicIndexStats& operator=(const AtomicIndexStats& o) {
      indexes_built.store(o.indexes_built.load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
      probes.store(o.probes.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
      rows_indexed.store(o.rows_indexed.load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
      return *this;
    }
  };

  std::shared_ptr<Interner> pool_;
  std::unordered_map<std::string, RelationData> relations_;
  std::vector<Value> domain_;               // first-occurrence order
  std::unordered_set<ValueId> domain_ids_;  // membership for domain_
  mutable std::vector<std::string> relations_cache_;
  mutable bool relations_dirty_ = true;
  mutable AtomicIndexStats index_stats_;
  mutable UncopiedMutex memo_mu_;
  const ObsContext* obs_ = nullptr;  // borrowed; see set_obs
  std::size_t num_facts_ = 0;
};

/// The canonical database D_theta of a CQ: one fact per atom, with each
/// variable frozen to a value named after it. Constants keep their name.
Database CanonicalDatabase(const ConjunctiveQuery& cq);

/// The tuple of frozen head variables of `cq` (the tuple to look for in the
/// Chandra-Merlin containment test).
Tuple CanonicalHead(const ConjunctiveQuery& cq);

}  // namespace qcont

#endif  // QCONT_CQ_DATABASE_H_

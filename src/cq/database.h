#ifndef QCONT_CQ_DATABASE_H_
#define QCONT_CQ_DATABASE_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <shared_mutex>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "base/hash.h"
#include "base/interner.h"
#include "cq/query.h"

namespace qcont {

struct ObsContext;
struct ExecContext;

/// A database value. Canonical databases use variable names as values
/// ("frozen" variables), so values are plain strings.
using Value = std::string;
using Tuple = std::vector<Value>;

/// Interned value id, dense per value pool. `kNoValue` means "not interned".
using ValueId = SymbolId;
inline constexpr ValueId kNoValue = Interner::kMissing;

/// Interned relation id. Relation names are interned into the same shared
/// pool as values, so relation ids — like value ids — are comparable across
/// databases that share a pool (the semi-naive deltas rely on this).
/// `kNoRelation` means "name never interned in the pool".
using RelationId = SymbolId;
inline constexpr RelationId kNoRelation = Interner::kMissing;

/// Storage layout of a Database. `kFlat` (the default) stores each
/// relation's rows in hash-sharded contiguous ValueId arenas with arity
/// stride and probes through open-addressing tables; `kLegacy` is the
/// original nested-vector + unordered_map layout, kept reachable as a
/// differential reference (mirroring the `use_index=false` pattern of the
/// search engine).
enum class DatabaseLayout { kFlat, kLegacy };

/// Tuning knobs of the flat probe tables (DESIGN.md §16). Set per database
/// via `Database::set_probe_options` before the first probe; the benches
/// sweep them (`bench_probe_kernel`, E2/E9 knob rows). Every setting is a
/// pure performance knob: probe *results* are bit-identical across the
/// whole grid (and across the SIMD/scalar kernel builds).
struct ProbeOptions {
  /// Probe-table growth threshold: grow when occupied slots exceed this
  /// percentage of capacity. Clamped to [40, 90]. With shards, the bound
  /// applies per shard table.
  int max_load_percent = 75;
  /// Tag probe-group width in slots: 16 (one SSE2/NEON vector compare per
  /// group) or 8 (one 64-bit SWAR compare). Values other than 8 become 16.
  int group_width = 16;
  /// Consult the per-(relation, mask) Bloom filters on lookups: a probe
  /// whose key hash misses the filter is answered "empty" without touching
  /// the slot array (the semi-naive delta joins' guaranteed-miss skip).
  bool use_filters = true;
  /// ProbeMany lookahead: while key i resolves, the tag group and slot of
  /// key i+distance are software-prefetched. 0 disables the prefetch stage.
  int prefetch_distance = 8;
};

/// Counters for the per-relation hash indexes (benchmark signal). Obtained
/// as a snapshot via `Database::index_stats()`; the registry mirror
/// (`db.*` gauges) is published from such snapshots by the engines/CLI,
/// never inline per probe.
///
/// Counter contract (pinned by tests/probe_kernel_test.cc): `probes` is
/// bumped exactly once per key looked up — `Probe()` adds 1, a `ProbeMany`
/// of k keys adds exactly k, an `AddRowBatch` of k candidate rows adds
/// exactly k for its dedup pass — regardless of how many slots, tag groups
/// or filter words the lookup touched. Work done *inside* a lookup is
/// accounted separately (`tag_hits`/`tag_skips`/`probe_collisions`), and
/// lookups short-circuited by the Bloom filter still count as probes, with
/// the skip recorded in `filter_skips`. All counters are deterministic for
/// a given (database, probe sequence, ProbeOptions, shard count) and
/// identical between the SIMD and scalar kernel builds and for every
/// thread count. (Shard count is part of the key: resharding redistributes
/// rows over per-shard tables and Bloom filters, so the micro-counters —
/// tag_hits/tag_skips/filter_skips/probe_resizes — may differ between P=1
/// and P>1 runs of the same probe sequence. The per-key `probes` total
/// never does.)
struct DatabaseIndexStats {
  /// Distinct (relation, mask) indexes built so far. Monotonic per database.
  std::uint64_t indexes_built = 0;
  /// Keys looked up (hot: one per `Probe`, k per k-key `ProbeMany`).
  /// Monotonic.
  std::uint64_t probes = 0;
  /// Rows folded into some index (a row indexed under k masks counts k
  /// times). Monotonic per database.
  std::uint64_t rows_indexed = 0;
  /// Full key compares that failed during lookups — tag false positives
  /// plus genuine probe-chain walks (flat layout only; legacy indexes
  /// report 0). Monotonic.
  std::uint64_t probe_collisions = 0;
  /// Probe-table capacity rehashes (flat layout only). Monotonic.
  std::uint64_t probe_resizes = 0;
  /// Slots whose tag matched the key's tag and were full-key compared
  /// during lookups (flat layout only). Monotonic.
  std::uint64_t tag_hits = 0;
  /// Occupied slots the tag filter rejected without a full key compare
  /// during lookups — the compares the PR 5 kernel would have run (flat
  /// layout only). Monotonic.
  std::uint64_t tag_skips = 0;
  /// Lookups answered "empty" by the per-(relation, mask) Bloom filter
  /// without touching the slot array (flat layout, filters enabled).
  /// Monotonic.
  std::uint64_t filter_skips = 0;
  /// ProbeMany key blocks resolved through the staged pipeline (hash all →
  /// prefetch → resolve in order). Monotonic.
  std::uint64_t prefetch_batches = 0;
};

/// Snapshot of the hash-shard layout (`Database::shard_stats()`), the
/// source of the `db.shard.*` gauges. Row counts aggregate over relations:
/// shard s's load is the total number of rows routed to shard s across
/// every relation. All fields are deterministic for a given database.
struct DatabaseShardStats {
  /// Configured shard count P (1 = unsharded layout).
  int shards = 1;
  /// Total rows over all relations (== sum over shards of their loads).
  std::uint64_t rows_total = 0;
  /// Rows routed to the most / least loaded shard.
  std::uint64_t rows_max_shard = 0;
  std::uint64_t rows_min_shard = 0;
  /// Skew of the heaviest shard over the ideal rows_total/P split, in
  /// percent: 0 = perfectly balanced, 100 = the heaviest shard holds twice
  /// its fair share. 0 when the database is empty or P == 1.
  double imbalance_pct = 0.0;
  /// Highest occupancy (used/capacity, percent) over every per-shard
  /// primary probe table — how close the fullest table is to its next
  /// growth rebuild (ProbeOptions::max_load_percent).
  double max_occupancy_pct = 0.0;
};

/// A finite relational database: a set of facts R(v1,...,vn).
///
/// Values are interned into a shared `Interner` pool, so the join substrate
/// works on dense integer ids instead of strings. Relation names are
/// interned into the same pool (`RelationIdOf`). Databases created with the
/// default constructor own a fresh pool; databases meant to be joined
/// against each other (e.g. a semi-naive delta against the full database)
/// should share one pool via the `Database(pool)` constructor so that value
/// and relation ids are comparable across them.
///
/// ## Flat layout
///
/// A relation's rows live in contiguous ValueId arenas with arity stride,
/// and every row of a relation has the same arity (checked). The arenas —
/// and the eagerly maintained full-row "primary" probe table that serves
/// duplicate detection, `HasRow`, and fully-bound probes — are partitioned
/// into `shard_count()` hash-shards: a row belongs to the shard selected
/// by `ShardOf(h, P)` (base/shard.h) where `h` is the row-key hash the
/// probe tables already use. Rows keep *global* indices in insertion
/// order regardless of the shard they land in (`row_dir_` maps global →
/// (shard, local)), so row identity, `Facts` order, and posting contents
/// are independent of P. At the default P=1 the layout is bit-identical
/// to the unsharded one. Sharding exists so parallel writers
/// (`AddRowBatch`) can deduplicate and append shard-locally with no
/// shared locks; see ARCHITECTURE.md for the full concurrency model and
/// DESIGN.md §17 for the shard internals.
///
/// Per relation, hash indexes keyed on subsets of bound positions (a
/// position bitmask) are built lazily on first probe, memoized per
/// (relation, mask), and maintained incrementally as facts are added —
/// `AddFact` never invalidates an index. These secondary indexes stay
/// relation-global (their postings hold global row indices), so they are
/// untouched by resharding. Flat indexes are open-addressing tables
/// (linear probing, power-of-two capacity, packed inline keys for masks
/// covering ≤2 positions) whose buckets are slices of a shared postings
/// arena, with a Swiss-table-style 1-byte tag array filtered by one SIMD
/// group compare per 16 slots and a per-table Bloom filter answering
/// guaranteed misses before the slots are touched — a probe is hash →
/// filter word → tag group → postings slice with no allocation (see
/// ProbeOptions and DESIGN.md §16).
///
/// ## Thread safety
///
/// All const probing entry points (`Probe`, `ProbeMany`, `Facts`, `Row`,
/// `HasFact`, `HasRow`, `Relations`, `ValueIdOf`, ...) may be called
/// concurrently from multiple threads *as long as no thread mutates the
/// database* (`AddFact`, `AddRow`, `AddRowBatch`, `UnionWith`, `Reshard`)
/// at the same time — the memoized lazy index builds behind `Probe` are
/// guarded by an internal shared mutex (shared lock on the probe hot
/// path, exclusive lock only while a missing or stale index is built;
/// `memo_exclusive_locks()` counts the exclusive acquisitions so tests
/// can pin "probe-only workloads take none") and the index statistics are
/// striped atomics, so probes of an already-built index never serialize
/// against each other. This is the contract the parallel engines rely on:
/// databases are frozen for the duration of a parallel region and merged
/// at the barrier (`mutation_epoch()` bumps on every mutation, and debug
/// builds verify the freeze with `EpochReadGuard`). `AddRowBatch` is the
/// one internally parallel mutator: it owns the database for the duration
/// of the call and fans its shard-local work out itself.
class Database {
 public:
  explicit Database(DatabaseLayout layout = DatabaseLayout::kFlat)
      : pool_(std::make_shared<Interner>()), layout_(layout) {}
  explicit Database(std::shared_ptr<Interner> pool,
                    DatabaseLayout layout = DatabaseLayout::kFlat)
      : pool_(std::move(pool)), layout_(layout) {}

  /// The value pool; share it across databases that will be joined together.
  const std::shared_ptr<Interner>& pool() const { return pool_; }

  DatabaseLayout layout() const { return layout_; }

  /// Adds a fact; duplicate facts are ignored. Returns true if new. In the
  /// flat layout every fact of a relation must have the same arity.
  bool AddFact(const std::string& relation, Tuple tuple);

  /// Adds a fact given as pool ids: `rel` must be the pool id of the
  /// relation name and every value of `row` a valid pool id. Returns true
  /// if new. This is the allocation-free twin of AddFact used by the
  /// semi-naive merge (the string tuple is materialized internally so
  /// `Facts` stays consistent).
  bool AddRow(RelationId rel, std::span<const ValueId> row);

  /// Batched, shard-parallel AddRow: deduplicates `rows` (candidate rows
  /// laid out consecutively with stride `arity`) against this relation
  /// *and* against earlier candidates of the same batch (first occurrence
  /// wins), then commits the survivors in first-occurrence order — the
  /// exact database state a serial `AddRow` loop over the batch would
  /// produce, for every shard count and thread count. Appends the global
  /// row index of each newly added row to `*added` (in commit order) when
  /// non-null, and returns the number added.
  ///
  /// This is the semi-naive round barrier's merge primitive: with
  /// `exec.threads > 1` and `shard_count() > 1` the dedup/claim pass runs
  /// one task per shard (each shard's candidates are claimed into that
  /// shard's private probe table and arena, no shared locks), global row
  /// numbering is assigned in one cheap serial pass, and posting/tuple
  /// materialization fans back out per shard. Counts `rows.size()/arity`
  /// probes (one dedup lookup per candidate, mirroring the per-key
  /// ProbeMany contract). Exclusive: the caller must not probe or mutate
  /// the database concurrently with this call.
  std::size_t AddRowBatch(RelationId rel, std::size_t arity,
                          std::span<const ValueId> rows,
                          const ExecContext& exec,
                          std::vector<std::uint32_t>* added = nullptr);

  bool HasFact(const std::string& relation, const Tuple& tuple) const;

  /// Row-level membership: true iff `row` is a fact of `rel`. Served by
  /// the owning shard's eagerly maintained full-row table in the flat
  /// layout (no lock, no allocation).
  bool HasRow(RelationId rel, std::span<const ValueId> row) const;

  /// Tuples of `relation` (empty if the relation has no facts).
  const std::vector<Tuple>& Facts(const std::string& relation) const;

  /// Pool id of `v`, or `kNoValue` if `v` was never interned in the pool.
  /// (A value interned by another database sharing the pool resolves too;
  /// such an id simply matches no row here.)
  ValueId ValueIdOf(std::string_view v) const { return pool_->Find(v); }

  /// Value string for a pool id.
  const Value& ValueName(ValueId id) const { return pool_->NameOf(id); }

  /// Pool id of `relation`, or `kNoRelation`. Resolve once at query compile
  /// time and probe by id — never per evaluation round.
  RelationId RelationIdOf(std::string_view relation) const {
    return pool_->Find(relation);
  }

  /// Number of rows of `rel` (0 if absent or never given a fact here).
  std::size_t NumRows(RelationId rel) const;

  /// Arity of `rel` (0 if absent). In the legacy layout: arity of the first
  /// row.
  std::size_t Arity(RelationId rel) const;

  /// Row `r` of `rel` as a ValueId slice into its shard's arena.
  /// `r < NumRows(rel)`.
  std::span<const ValueId> Row(RelationId rel, std::size_t r) const;

  /// The whole row arena of `rel` when it is one contiguous block — flat
  /// layout with `shard_count() == 1` — so hot loops can slice rows
  /// without a per-row relation lookup: row i is the slice [i*Arity(rel),
  /// (i+1)*Arity(rel)). Empty in the legacy layout and for sharded
  /// relations (P > 1 splits the rows over per-shard arenas — use `Rows()`
  /// for a view that resolves either shape). Stays valid until the next
  /// AddFact.
  std::span<const ValueId> Arena(RelationId rel) const;

  /// Resolved row accessor for hot loops: one relation lookup up front,
  /// then O(1) row pointers for any layout — contiguous arena (P == 1),
  /// per-shard arenas via the global→(shard, local) directory (P > 1), or
  /// the legacy nested vectors. Valid until the next mutation.
  class RowView {
   public:
    RowView() = default;
    /// Pointer to row r's `Arity(rel)` consecutive values. The P == 1 case
    /// is pure pointer arithmetic off a base captured at view construction,
    /// so hot join loops pay no per-row indirection.
    const ValueId* operator[](std::uint32_t r) const;

   private:
    friend class Database;
    const ValueId* base_ = nullptr;  // mode 1: arena base of shard 0
    const void* data_ = nullptr;     // modes 2/3: RelationData
    std::size_t arity_ = 0;          // row stride (modes 1/2)
    int mode_ = 0;  // 0 empty, 1 contiguous, 2 sharded, 3 legacy
  };
  RowView Rows(RelationId rel) const;

  /// Indices of the rows of `rel` whose values at the positions set in
  /// `mask` equal `key` (key values listed in ascending position order,
  /// `popcount(mask)` of them). Builds and memoizes the (relation, mask)
  /// index on first use; later `AddFact`s are folded in incrementally on
  /// the next probe. Only the first 32 positions of a relation are
  /// indexable. `mask` must be nonzero. Safe for concurrent const callers
  /// (see class comment); the returned span stays valid until the next
  /// AddFact. Returned indices are global row indices at any shard count.
  std::span<const std::uint32_t> Probe(RelationId rel, std::uint32_t mask,
                                       std::span<const ValueId> key) const;

  /// Name-level Probe; prefer the RelationId overload on hot paths.
  std::span<const std::uint32_t> Probe(const std::string& relation,
                                       std::uint32_t mask,
                                       std::span<const ValueId> key) const;
  std::span<const std::uint32_t> Probe(const std::string& relation,
                                       std::uint32_t mask,
                                       const std::vector<ValueId>& key) const {
    return Probe(relation, mask, std::span<const ValueId>(key));
  }

  /// Batched probe: `out.size()` keys laid out consecutively in `keys`
  /// (`popcount(mask)` values each); `out[i]` receives the bucket of key i,
  /// exactly as `Probe(rel, mask, key_i)` would return it. In the flat
  /// layout the block runs as a staged pipeline: hash every key (answering
  /// Bloom-filter misses immediately), then resolve in key order with the
  /// tag group and slot of the key `prefetch_distance` ahead
  /// software-prefetched, so slot cache lines are in flight before the
  /// resolving pass needs them. Fully-bound probes of a sharded relation
  /// route each key to its owning shard's table inside the same pipeline
  /// (the key's hash both picks the shard and probes its table, so
  /// sharding adds no extra hashing).
  void ProbeMany(RelationId rel, std::uint32_t mask,
                 std::span<const ValueId> keys,
                 std::span<std::span<const std::uint32_t>> out) const;

  /// Installs probe-table tuning knobs (load factor, tag group width,
  /// Bloom filters, prefetch distance). Call before probing: the load
  /// factor applies to tables built or grown afterwards, the rest apply
  /// per lookup. Not synchronized — set it while no other thread probes,
  /// like `set_obs`. Copied along with the database.
  void set_probe_options(const ProbeOptions& options);
  const ProbeOptions& probe_options() const { return probe_options_; }

  /// Repartitions every relation's arena and primary probe table into
  /// `shards` hash-shards (flat layout; the legacy layout has no shards
  /// and stays at 1). Global row indices, `Facts` order, the active
  /// domain, the lazy secondary indexes (global postings), and every
  /// counter are unchanged — only the physical placement of rows moves,
  /// so answers are bit-identical before and after. O(total rows). The
  /// usual mutation rules apply (no concurrent probes). `1 <= shards <=
  /// kMaxShards`; P=1 restores the exact unsharded layout.
  void Reshard(int shards);

  /// Configured shard count P (1 unless `Reshard` raised it).
  int shard_count() const { return shard_count_; }

  /// Deterministic snapshot of the shard layout (row balance, table
  /// occupancy) — the source of the `db.shard.*` gauges.
  DatabaseShardStats shard_stats() const;

  /// Monotonic mutation counter: bumped once per mutating entry point
  /// (`AddFact`, `AddRow`, `AddRowBatch`, `Reshard`, `UnionWith`). The
  /// lock-free probe paths are valid only while this is stable — debug
  /// builds enforce that with `EpochReadGuard` (base/shard.h); release
  /// callers may snapshot it around a parallel region as a cheap sanity
  /// check.
  std::uint64_t mutation_epoch() const {
    return mutation_epoch_.v.load(std::memory_order_relaxed);
  }

  /// Number of exclusive acquisitions of the internal memo lock so far
  /// (lazy index builds and catch-ups, relations-cache rebuilds). Probing
  /// already-built indexes never takes it: tests pin that a probe-only
  /// workload leaves this counter unchanged. Diagnostic, deterministic
  /// only for serial runs (under parallelism, racing builders may both
  /// take the lock).
  std::uint64_t memo_exclusive_locks() const {
    return memo_exclusive_locks_.v.load(std::memory_order_relaxed);
  }

  /// Snapshot of the index counters, summed over the internal stripes.
  /// (Counters are striped per worker thread — `kStatStripes` cache-line-
  /// aligned atomic blocks selected by pool worker id — so concurrent
  /// probes on different shards never contend on one counter cache line;
  /// hence a by-value snapshot.) See the DatabaseIndexStats comment for
  /// the per-key `probes` contract.
  DatabaseIndexStats index_stats() const {
    DatabaseIndexStats s;
    for (const AtomicIndexStats& st : index_stats_) {
      s.indexes_built += st.indexes_built.load(std::memory_order_relaxed);
      s.probes += st.probes.load(std::memory_order_relaxed);
      s.rows_indexed += st.rows_indexed.load(std::memory_order_relaxed);
      s.probe_collisions +=
          st.probe_collisions.load(std::memory_order_relaxed);
      s.probe_resizes += st.probe_resizes.load(std::memory_order_relaxed);
      s.tag_hits += st.tag_hits.load(std::memory_order_relaxed);
      s.tag_skips += st.tag_skips.load(std::memory_order_relaxed);
      s.filter_skips += st.filter_skips.load(std::memory_order_relaxed);
      s.prefetch_batches +=
          st.prefetch_batches.load(std::memory_order_relaxed);
    }
    return s;
  }

  /// Attaches observability sinks: each lazily built (relation, mask) index
  /// then emits a `db/index_build` span (args: mask, rows). Borrowed
  /// pointer, copied along with the database; set it before a parallel
  /// region probes this database (AddFact-vs-probe rules apply to it too).
  /// Null (the default) disables tracing. Index *counters* are not routed
  /// through here — snapshot `index_stats()` instead.
  void set_obs(const ObsContext* obs) { obs_ = obs; }
  const ObsContext* obs() const { return obs_; }

  /// Relation names that have at least one fact, sorted. Cached: the vector
  /// is only rebuilt when a fact of a new relation arrives, and the
  /// returned reference stays valid until then.
  const std::vector<std::string>& Relations() const;

  /// Relation ids in first-fact order (the deterministic iteration order
  /// the engines use when merging deltas). Stays valid until the next
  /// AddFact of a new relation.
  const std::vector<RelationId>& RelationIds() const { return rel_ids_; }

  /// All values occurring in any fact (the active domain), in first-
  /// occurrence order. Maintained incrementally by AddFact; never rebuilt.
  const std::vector<Value>& ActiveDomain() const { return domain_; }

  /// Pool ids of `ActiveDomain()`, parallel to it.
  const std::vector<ValueId>& ActiveDomainIds() const { return domain_ids_list_; }

  std::size_t NumFacts() const { return num_facts_; }

  /// Merges all facts of `other` into this database.
  void UnionWith(const Database& other);

  std::string ToString() const;

 private:
  // One open-addressing probe table (flat layout). Slots hold a nonzero
  // 64-bit key — the +1-packed values for key widths ≤ 2, or 1 + an index
  // into `wide_keys` otherwise — plus a (start, len) slice of the shared
  // `postings` arena listing the matching global row indices in row order.
  // key == 0 marks an empty slot; packed keys are nonzero by construction
  // because kNoValue never occurs in a row, so v+1 ≥ 1 for every value.
  //
  // Swiss-table-style metadata rides alongside the slots (DESIGN.md §16):
  // `tags` holds one byte per slot — 0 for empty, else the top 7 hash bits
  // with the high bit set — sized capacity + 16 with the first group
  // mirrored past the end, so a 16-byte group load starting at any slot
  // index stays in bounds. One vector compare filters a probe group before
  // any full key compare. `bloom` is a blocked Bloom filter over the key
  // hashes (8 bits per slot, 2 probe bits per key) consulted before the
  // slot array; both are rebuilt alongside the slots on growth.
  //
  // The same struct serves two roles: each shard's eagerly maintained
  // full-row primary table (every key has exactly one posting), and the
  // relation-global lazily built secondary tables keyed on position
  // subsets.
  struct FlatIndex {
    struct Slot {
      std::uint64_t key = 0;
      std::uint32_t start = 0;
      std::uint32_t len = 0;
    };
    std::vector<Slot> slots;              // power-of-two capacity, or empty
    std::vector<std::uint8_t> tags;       // capacity + 16, mirrored head
    std::vector<std::uint64_t> bloom;     // capacity/8 words (pow2)
    std::vector<ValueId> wide_keys;       // key_width values per wide key
    std::vector<std::uint32_t> postings;  // shared bucket arena (global ids)
    std::uint32_t key_width = 0;
    std::size_t used = 0;          // occupied slots
    std::size_t rows_indexed = 0;  // rows folded in (catch-up watermark;
                                   // shard-local count for primaries)
  };

  // One hash-shard of a relation (flat layout): the shard's slice of the
  // row arena plus its full-row primary table. A row's shard is
  // ShardOf(HashKey(row), shard_count_) — see base/shard.h for the
  // routing contract. Shard membership is a physical property only:
  // postings and the row directory keep global row indices, so the
  // logical relation is shard-count-invariant.
  struct RelShard {
    std::vector<ValueId> arena;  // this shard's rows, stride = arity
    FlatIndex primary;           // full-mask dedup/probe table of the shard
  };

  // Global row index -> physical location, maintained only when
  // shard_count_ > 1 (P = 1 keeps global == local in shards[0]).
  struct RowRef {
    std::uint32_t shard = 0;
    std::uint32_t local = 0;
  };

  // One lazily built hash index of the legacy layout: rows keyed by their
  // values at the masked positions.
  struct RelIndex {
    std::unordered_map<std::vector<ValueId>, std::vector<std::uint32_t>,
                       VectorHash<ValueId>>
        buckets;
    std::size_t rows_indexed = 0;
  };

  struct RelationData {
    std::string name;
    RelationId id = kNoRelation;
    std::size_t arity = 0;
    std::size_t num_rows = 0;
    std::vector<Tuple> tuples;
    // Flat layout: the hash-sharded arenas + primary tables (size =
    // shard_count_ once the first row arrives), the global→(shard, local)
    // row directory (P > 1 only), and the relation-global lazy per-mask
    // probe tables.
    std::vector<RelShard> shards;
    std::vector<RowRef> row_dir;
    mutable std::unordered_map<std::uint32_t, FlatIndex> flat_indexes;
    // Legacy layout: nested rows + hash-set dedup + unordered_map indexes.
    std::vector<std::vector<ValueId>> rows;  // parallel to `tuples`
    std::unordered_set<std::vector<ValueId>, VectorHash<ValueId>> set;
    mutable std::unordered_map<std::uint32_t, RelIndex> indexes;
  };

  // Guards the mutable memoized state reachable from const methods (lazy
  // index builds, the relations cache). Probes of already-built indexes
  // take the lock shared; building or extending an index takes it
  // exclusive (counted in memo_exclusive_locks_). Copying a Database
  // copies the data but not the mutex.
  struct UncopiedMutex {
    std::shared_mutex mu;
    UncopiedMutex() = default;
    UncopiedMutex(const UncopiedMutex&) {}
    UncopiedMutex& operator=(const UncopiedMutex&) { return *this; }
  };

  // One stripe of index counters, updated by concurrent shared-lock
  // probes. Cache-line aligned so stripes never false-share. Copying a
  // Database snapshots the values.
  struct alignas(64) AtomicIndexStats {
    std::atomic<std::uint64_t> indexes_built{0};
    std::atomic<std::uint64_t> probes{0};
    std::atomic<std::uint64_t> rows_indexed{0};
    std::atomic<std::uint64_t> probe_collisions{0};
    std::atomic<std::uint64_t> probe_resizes{0};
    std::atomic<std::uint64_t> tag_hits{0};
    std::atomic<std::uint64_t> tag_skips{0};
    std::atomic<std::uint64_t> filter_skips{0};
    std::atomic<std::uint64_t> prefetch_batches{0};
    AtomicIndexStats() = default;
    AtomicIndexStats(const AtomicIndexStats& o) { *this = o; }
    AtomicIndexStats& operator=(const AtomicIndexStats& o) {
      indexes_built.store(o.indexes_built.load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
      probes.store(o.probes.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
      rows_indexed.store(o.rows_indexed.load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
      probe_collisions.store(
          o.probe_collisions.load(std::memory_order_relaxed),
          std::memory_order_relaxed);
      probe_resizes.store(o.probe_resizes.load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
      tag_hits.store(o.tag_hits.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
      tag_skips.store(o.tag_skips.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
      filter_skips.store(o.filter_skips.load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
      prefetch_batches.store(
          o.prefetch_batches.load(std::memory_order_relaxed),
          std::memory_order_relaxed);
      return *this;
    }
  };

  // Counter stripes: probes select one by pool worker id (stripe 0 serves
  // non-pool threads), so a parallel probe storm bumps disjoint cache
  // lines. index_stats() sums them; totals are schedule-independent
  // because the counted events are.
  static constexpr std::size_t kStatStripes = 16;

  // A relaxed counter that copies by value (a copied database starts from
  // the source's snapshot).
  struct CopyableAtomicU64 {
    std::atomic<std::uint64_t> v{0};
    CopyableAtomicU64() = default;
    CopyableAtomicU64(const CopyableAtomicU64& o) { *this = o; }
    CopyableAtomicU64& operator=(const CopyableAtomicU64& o) {
      v.store(o.v.load(std::memory_order_relaxed), std::memory_order_relaxed);
      return *this;
    }
  };

  // Per-lookup counter deltas, accumulated branch-free on the stack and
  // flushed into the stripe once per Probe/ProbeMany call.
  struct LocalProbeCounters {
    std::uint64_t tag_hits = 0;
    std::uint64_t tag_skips = 0;
    std::uint64_t collisions = 0;  // failed full compares (tag false hits)
    std::uint64_t filter_skips = 0;
  };

  // Relation lookup / creation by pool id. Returns nullptr if `rel` names
  // no relation of this database.
  const RelationData* FindRelation(RelationId rel) const;
  RelationData& EnsureRelation(RelationId rel);

  // Shared AddFact/AddRow core; `tuple` (optional) donates the string
  // tuple, otherwise it is materialized from the pool.
  bool AddRowInternal(RelationData& data, std::span<const ValueId> row,
                      Tuple* tuple);

  // The calling thread's counter stripe (by pool worker id).
  AtomicIndexStats& stats_stripe() const;

  // Advance the mutation epoch. Mutators run on one logical thread of
  // control (the freeze contract), so a plain load+store suffices — no
  // read-modify-write bus lock on the AddRow hot path. Concurrent readers
  // only ever load the value (EpochReadGuard).
  void BumpEpoch() {
    mutation_epoch_.v.store(
        mutation_epoch_.v.load(std::memory_order_relaxed) + 1,
        std::memory_order_relaxed);
  }

  // Flat probe-table machinery (definitions in database.cc).
  std::uint64_t HashKey(const FlatIndex& idx, std::span<const ValueId> key,
                        std::uint64_t packed) const;
  std::size_t FindSlot(const FlatIndex& idx, std::span<const ValueId> key,
                       std::uint64_t packed, std::uint64_t h,
                       LocalProbeCounters* c) const;
  void FlushProbeCounters(const LocalProbeCounters& c) const;
  void EnsureFlatCapacity(FlatIndex* idx, std::size_t keys) const;
  std::size_t InsertSlot(FlatIndex* idx, std::span<const ValueId> key,
                         std::uint64_t packed) const;
  void CatchUpFlat(const RelationData& data, std::uint32_t mask,
                   FlatIndex* idx) const;
  const FlatIndex* EnsureFlatIndex(const RelationData& data,
                                   std::uint32_t mask) const;
  // Lookup with the key hash already computed (`h = HashKey(idx, key,
  // packed)`); the sharded paths hash once to both route and probe.
  std::span<const std::uint32_t> LookupFlatHashed(const FlatIndex& idx,
                                                  std::span<const ValueId> key,
                                                  std::uint64_t packed,
                                                  std::uint64_t h) const;
  std::span<const std::uint32_t> LookupFlat(const FlatIndex& idx,
                                            std::span<const ValueId> key) const;
  // True iff `mask` covers every position of the relation — the probes the
  // sharded primaries serve.
  static bool IsFullMask(const RelationData& data, std::uint32_t mask) {
    return data.arity > 0 && data.arity <= 32 &&
           mask == (data.arity == 32 ? ~0u : (1u << data.arity) - 1u);
  }
  // Sharded full-mask ProbeMany pipeline (P > 1).
  void ProbeManySharded(const RelationData& data,
                        std::span<const ValueId> keys, std::uint32_t w,
                        std::span<std::span<const std::uint32_t>> out) const;

  // Legacy probe path (the original unordered_map implementation).
  std::span<const std::uint32_t> ProbeLegacy(const RelationData& data,
                                             std::uint32_t mask,
                                             std::span<const ValueId> key) const;

  std::shared_ptr<Interner> pool_;
  DatabaseLayout layout_;
  int shard_count_ = 1;                    // P; see Reshard / base/shard.h
  std::deque<RelationData> rels_;          // stable refs; first-fact order
  std::vector<std::int32_t> rel_slot_;     // pool id -> index in rels_, or -1
  std::vector<RelationId> rel_ids_;        // parallel to rels_
  std::vector<Value> domain_;              // first-occurrence order
  std::vector<ValueId> domain_ids_list_;   // parallel to domain_
  std::unordered_set<ValueId> domain_ids_; // membership for domain_
  mutable std::vector<std::string> relations_cache_;
  mutable bool relations_dirty_ = true;
  mutable std::array<AtomicIndexStats, kStatStripes> index_stats_;
  mutable CopyableAtomicU64 memo_exclusive_locks_;
  CopyableAtomicU64 mutation_epoch_;
  mutable UncopiedMutex memo_mu_;
  ProbeOptions probe_options_;  // validated by set_probe_options
  const ObsContext* obs_ = nullptr;  // borrowed; see set_obs
  std::size_t num_facts_ = 0;
};

inline const ValueId* Database::RowView::operator[](std::uint32_t r) const {
  switch (mode_) {
    case 1:  // flat, one contiguous arena (P == 1)
      return base_ + static_cast<std::size_t>(r) * arity_;
    case 2: {  // flat, sharded: global -> (shard, local) via the directory
      const auto* data = static_cast<const Database::RelationData*>(data_);
      const RowRef ref = data->row_dir[r];
      return data->shards[ref.shard].arena.data() +
             static_cast<std::size_t>(ref.local) * arity_;
    }
    case 3:  // legacy nested vectors
      return static_cast<const Database::RelationData*>(data_)->rows[r].data();
    default:  // empty relation: no row to point at
      return nullptr;
  }
}

/// The canonical database D_theta of a CQ: one fact per atom, with each
/// variable frozen to a value named after it. Constants keep their name.
Database CanonicalDatabase(const ConjunctiveQuery& cq,
                           DatabaseLayout layout = DatabaseLayout::kFlat);

/// The tuple of frozen head variables of `cq` (the tuple to look for in the
/// Chandra-Merlin containment test).
Tuple CanonicalHead(const ConjunctiveQuery& cq);

}  // namespace qcont

#endif  // QCONT_CQ_DATABASE_H_

#ifndef QCONT_CQ_CONTAINMENT_H_
#define QCONT_CQ_CONTAINMENT_H_

#include "base/status.h"
#include "cq/homomorphism.h"
#include "cq/query.h"

namespace qcont {

/// Decides theta ⊆ theta' (containment of CQs of the same arity) by the
/// Chandra-Merlin test: theta ⊆ theta' iff the frozen head of theta is in
/// theta'(D_theta). NP in general; `stats` reports search effort.
Result<bool> CqContained(const ConjunctiveQuery& theta,
                         const ConjunctiveQuery& theta_prime,
                         HomSearchStats* stats = nullptr);

/// Decides Theta ⊆ Theta' for UCQs by the Sagiv-Yannakakis criterion:
/// every disjunct of Theta is contained in some disjunct of Theta'.
Result<bool> UcqContained(const UnionQuery& theta, const UnionQuery& theta_prime,
                          HomSearchStats* stats = nullptr);

/// Decides whether theta is contained in the UCQ Theta'. Note that for a
/// single CQ on the left this is equivalent to the per-disjunct test.
Result<bool> CqContainedInUcq(const ConjunctiveQuery& theta,
                              const UnionQuery& theta_prime,
                              HomSearchStats* stats = nullptr);

/// Equivalence of UCQs: containment both ways.
Result<bool> UcqEquivalent(const UnionQuery& a, const UnionQuery& b,
                           HomSearchStats* stats = nullptr);

}  // namespace qcont

#endif  // QCONT_CQ_CONTAINMENT_H_

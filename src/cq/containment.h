#ifndef QCONT_CQ_CONTAINMENT_H_
#define QCONT_CQ_CONTAINMENT_H_

#include "base/status.h"
#include "cq/homomorphism.h"
#include "cq/query.h"

namespace qcont {

/// Decides theta ⊆ theta' (containment of CQs of the same arity) by the
/// Chandra-Merlin test: theta ⊆ theta' iff the frozen head of theta is in
/// theta'(D_theta). NP in general; `stats` reports search effort.
Result<bool> CqContained(const ConjunctiveQuery& theta,
                         const ConjunctiveQuery& theta_prime,
                         HomSearchStats* stats = nullptr,
                         const HomSearchOptions& options = {});

/// Decides Theta ⊆ Theta' for UCQs by the Sagiv-Yannakakis criterion:
/// every disjunct of Theta is contained in some disjunct of Theta'.
///
/// With `options.exec.threads > 1` the disjunct×disjunct Chandra-Merlin
/// checks fan out over the work-stealing pool. The result, any error, and
/// the `stats` totals are guaranteed identical to the serial walk for
/// every thread count: speculative pairs the serial left-to-right walk
/// would never reach are cancelled best-effort via an atomic frontier and
/// their counters are discarded at the join (DESIGN.md §11).
Result<bool> UcqContained(const UnionQuery& theta, const UnionQuery& theta_prime,
                          HomSearchStats* stats = nullptr,
                          const HomSearchOptions& options = {});

/// Decides whether theta is contained in the UCQ Theta'. Note that for a
/// single CQ on the left this is equivalent to the per-disjunct test.
/// Parallelizes across the disjuncts of Theta' like UcqContained.
Result<bool> CqContainedInUcq(const ConjunctiveQuery& theta,
                              const UnionQuery& theta_prime,
                              HomSearchStats* stats = nullptr,
                              const HomSearchOptions& options = {});

/// Equivalence of UCQs: containment both ways.
Result<bool> UcqEquivalent(const UnionQuery& a, const UnionQuery& b,
                           HomSearchStats* stats = nullptr,
                           const HomSearchOptions& options = {});

}  // namespace qcont

#endif  // QCONT_CQ_CONTAINMENT_H_

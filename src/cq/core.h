#ifndef QCONT_CQ_CORE_H_
#define QCONT_CQ_CORE_H_

#include "base/status.h"
#include "cq/query.h"

namespace qcont {

/// Computes the core of a CQ: a minimal equivalent subquery, unique up to
/// isomorphism [Hell-Nešetřil]. The core is obtained by repeatedly folding
/// away an existential variable via a retraction (an endomorphism of the
/// canonical database that is the identity on the free variables and whose
/// image avoids the variable).
///
/// Worst-case exponential (the problem is NP-hard), which matches the
/// NP-completeness of H(ACk) membership (Proposition 4 of the paper).
Result<ConjunctiveQuery> CoreOf(const ConjunctiveQuery& cq);

/// True iff `cq` equals its own core (up to the atom set; head unchanged).
Result<bool> IsCore(const ConjunctiveQuery& cq);

}  // namespace qcont

#endif  // QCONT_CQ_CORE_H_

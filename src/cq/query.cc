#include "cq/query.h"

#include <unordered_map>
#include <unordered_set>

namespace qcont {

namespace {

void AddDistinct(const Term& t, std::vector<Term>* out,
                 std::unordered_set<std::string>* seen) {
  if (!t.is_variable()) return;
  if (seen->insert(t.name()).second) out->push_back(t);
}

}  // namespace

std::vector<Term> ConjunctiveQuery::Variables() const {
  std::vector<Term> out;
  std::unordered_set<std::string> seen;
  for (const Atom& a : atoms_) {
    for (const Term& t : a.terms()) AddDistinct(t, &out, &seen);
  }
  return out;
}

std::vector<Term> ConjunctiveQuery::ExistentialVariables() const {
  std::unordered_set<std::string> free;
  for (const Term& t : head_) free.insert(t.name());
  std::vector<Term> out;
  std::unordered_set<std::string> seen = free;  // skip free variables
  for (const Atom& a : atoms_) {
    for (const Term& t : a.terms()) AddDistinct(t, &out, &seen);
  }
  return out;
}

Status ConjunctiveQuery::Validate() const {
  std::unordered_set<std::string> body_vars;
  std::unordered_map<std::string, std::size_t> arities;
  for (const Atom& a : atoms_) {
    auto [it, inserted] = arities.emplace(a.predicate(), a.arity());
    if (!inserted && it->second != a.arity()) {
      return InvalidArgumentError("predicate '" + a.predicate() +
                                  "' used with inconsistent arities");
    }
    for (const Term& t : a.terms()) {
      if (t.is_variable()) body_vars.insert(t.name());
    }
  }
  for (const Term& t : head_) {
    if (!t.is_variable()) {
      return InvalidArgumentError("head term " + t.ToString() +
                                  " is not a variable");
    }
    if (!body_vars.count(t.name())) {
      return InvalidArgumentError("free variable " + t.name() +
                                  " does not occur in the body");
    }
  }
  return Status::Ok();
}

std::string ConjunctiveQuery::ToString() const {
  std::string out = "(";
  for (std::size_t i = 0; i < head_.size(); ++i) {
    if (i > 0) out += ",";
    out += head_[i].ToString();
  }
  out += ") <- ";
  for (std::size_t i = 0; i < atoms_.size(); ++i) {
    if (i > 0) out += ", ";
    out += atoms_[i].ToString();
  }
  return out;
}

Status UnionQuery::Validate() const {
  if (disjuncts_.empty()) {
    return InvalidArgumentError("a UCQ must have at least one disjunct");
  }
  std::unordered_map<std::string, std::size_t> arities;
  for (const ConjunctiveQuery& cq : disjuncts_) {
    QCONT_RETURN_IF_ERROR(cq.Validate());
    if (cq.arity() != disjuncts_.front().arity()) {
      return InvalidArgumentError("UCQ disjuncts have different arities");
    }
    for (const Atom& a : cq.atoms()) {
      auto [it, inserted] = arities.emplace(a.predicate(), a.arity());
      if (!inserted && it->second != a.arity()) {
        return InvalidArgumentError("predicate '" + a.predicate() +
                                    "' used with inconsistent arities");
      }
    }
  }
  return Status::Ok();
}

std::string UnionQuery::ToString() const {
  std::string out;
  for (std::size_t i = 0; i < disjuncts_.size(); ++i) {
    if (i > 0) out += "  UNION  ";
    out += disjuncts_[i].ToString();
  }
  return out;
}

}  // namespace qcont

#include "cq/database.h"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <shared_mutex>

#include "obs/obs.h"

namespace qcont {

namespace {

// Highest position a mask constrains (mask must be nonzero).
inline std::uint32_t HighestBit(std::uint32_t mask) {
  std::uint32_t top = 0;
  while (mask >>= 1) ++top;
  return top;
}

// Key of `row` under `mask`: values at masked positions, ascending. Returns
// false if the row is too short to be constrained by every masked position.
inline bool KeyOf(const std::vector<ValueId>& row, std::uint32_t mask,
                  std::vector<ValueId>* key) {
  key->clear();
  for (std::uint32_t p = 0; mask >> p != 0; ++p) {
    if ((mask >> p & 1u) == 0) continue;
    if (p >= row.size()) return false;
    key->push_back(row[p]);
  }
  return true;
}

}  // namespace

bool Database::AddFact(const std::string& relation, Tuple tuple) {
  auto [rel_it, new_relation] = relations_.try_emplace(relation);
  if (new_relation) relations_dirty_ = true;
  RelationData& data = rel_it->second;
  std::vector<ValueId> row;
  row.reserve(tuple.size());
  for (const Value& v : tuple) row.push_back(pool_->Intern(v));
  if (!data.set.insert(row).second) return false;
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (domain_ids_.insert(row[i]).second) domain_.push_back(tuple[i]);
  }
  data.rows.push_back(std::move(row));
  data.tuples.push_back(std::move(tuple));
  ++num_facts_;
  return true;
}

bool Database::HasFact(const std::string& relation, const Tuple& tuple) const {
  auto it = relations_.find(relation);
  if (it == relations_.end()) return false;
  std::vector<ValueId> row;
  row.reserve(tuple.size());
  for (const Value& v : tuple) {
    ValueId id = pool_->Find(v);
    if (id == kNoValue) return false;  // value never interned: no such fact
    row.push_back(id);
  }
  return it->second.set.count(row) > 0;
}

const std::vector<Tuple>& Database::Facts(const std::string& relation) const {
  static const std::vector<Tuple>* const kEmpty = new std::vector<Tuple>();
  auto it = relations_.find(relation);
  return it == relations_.end() ? *kEmpty : it->second.tuples;
}

const std::vector<std::vector<ValueId>>& Database::Rows(
    const std::string& relation) const {
  static const std::vector<std::vector<ValueId>>* const kEmpty =
      new std::vector<std::vector<ValueId>>();
  auto it = relations_.find(relation);
  return it == relations_.end() ? *kEmpty : it->second.rows;
}

const std::vector<std::uint32_t>& Database::Probe(
    const std::string& relation, std::uint32_t mask,
    const std::vector<ValueId>& key) const {
  static const std::vector<std::uint32_t>* const kEmptyBucket =
      new std::vector<std::uint32_t>();
  index_stats_.probes.fetch_add(1, std::memory_order_relaxed);
  // `relations_` (and each relation's `rows`) is only mutated by AddFact /
  // UnionWith, which the thread-safety contract forbids concurrently with
  // probes, so it is read without the memo lock. Only the `indexes` memo
  // is mutated under concurrent const probes and needs guarding.
  auto it = relations_.find(relation);
  if (it == relations_.end()) return *kEmptyBucket;
  const RelationData& data = it->second;
  {
    // Fast path: the (relation, mask) index exists and is up to date.
    // Shared lock only, so parallel hom searches probing the same frozen
    // database never serialize on the join hot path.
    std::shared_lock<std::shared_mutex> lock(memo_mu_.mu);
    auto idx_it = data.indexes.find(mask);
    if (idx_it != data.indexes.end() &&
        idx_it->second.rows_indexed == data.rows.size()) {
      const RelIndex& index = idx_it->second;
      auto bucket = index.buckets.find(key);
      return bucket == index.buckets.end() ? *kEmptyBucket : bucket->second;
    }
  }
  // Slow path: build the index (or fold in rows added since the last
  // probe) under the exclusive lock. Re-check the build state after
  // acquiring it — another thread may have finished the build in between.
  std::unique_lock<std::shared_mutex> lock(memo_mu_.mu);
  auto [idx_it, built] = data.indexes.try_emplace(mask);
  RelIndex& index = idx_it->second;
  if (built) index_stats_.indexes_built.fetch_add(1, std::memory_order_relaxed);
  if (index.rows_indexed < data.rows.size()) {
    ObsSpan build_span(obs_, "db/index_build", "db");
    build_span.AddArg("mask", mask);
    build_span.AddArg("rows", data.rows.size() - index.rows_indexed);
    // Lazy build and incremental maintenance are the same loop: fold in
    // every row added since the last probe of this (relation, mask).
    const std::uint32_t top = HighestBit(mask);
    std::vector<ValueId> row_key;
    row_key.reserve(static_cast<std::size_t>(top) + 1);
    for (std::size_t r = index.rows_indexed; r < data.rows.size(); ++r) {
      if (!KeyOf(data.rows[r], mask, &row_key)) continue;
      index.buckets[row_key].push_back(static_cast<std::uint32_t>(r));
      index_stats_.rows_indexed.fetch_add(1, std::memory_order_relaxed);
    }
    index.rows_indexed = data.rows.size();
  }
  auto bucket = index.buckets.find(key);
  return bucket == index.buckets.end() ? *kEmptyBucket : bucket->second;
}

const std::vector<std::string>& Database::Relations() const {
  {
    std::shared_lock<std::shared_mutex> lock(memo_mu_.mu);
    if (!relations_dirty_) return relations_cache_;
  }
  std::unique_lock<std::shared_mutex> lock(memo_mu_.mu);
  if (relations_dirty_) {
    relations_cache_.clear();
    relations_cache_.reserve(relations_.size());
    for (const auto& [name, data] : relations_) {
      if (!data.tuples.empty()) relations_cache_.push_back(name);
    }
    std::sort(relations_cache_.begin(), relations_cache_.end());
    relations_dirty_ = false;
  }
  return relations_cache_;
}

void Database::UnionWith(const Database& other) {
  for (const auto& [name, data] : other.relations_) {
    for (const Tuple& t : data.tuples) AddFact(name, t);
  }
}

std::string Database::ToString() const {
  std::string out;
  for (const std::string& rel : Relations()) {
    for (const Tuple& t : Facts(rel)) {
      out += rel + "(";
      for (std::size_t i = 0; i < t.size(); ++i) {
        if (i > 0) out += ",";
        out += t[i];
      }
      out += ")\n";
    }
  }
  return out;
}

Database CanonicalDatabase(const ConjunctiveQuery& cq) {
  Database db;
  for (const Atom& a : cq.atoms()) {
    Tuple t;
    t.reserve(a.arity());
    for (const Term& term : a.terms()) t.push_back(term.name());
    db.AddFact(a.predicate(), std::move(t));
  }
  return db;
}

Tuple CanonicalHead(const ConjunctiveQuery& cq) {
  Tuple t;
  t.reserve(cq.head().size());
  for (const Term& term : cq.head()) t.push_back(term.name());
  return t;
}

}  // namespace qcont

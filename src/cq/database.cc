#include "cq/database.h"

#include <algorithm>

namespace qcont {

namespace {

// Highest position a mask constrains (mask must be nonzero).
inline std::uint32_t HighestBit(std::uint32_t mask) {
  std::uint32_t top = 0;
  while (mask >>= 1) ++top;
  return top;
}

// Key of `row` under `mask`: values at masked positions, ascending. Returns
// false if the row is too short to be constrained by every masked position.
inline bool KeyOf(const std::vector<ValueId>& row, std::uint32_t mask,
                  std::vector<ValueId>* key) {
  key->clear();
  for (std::uint32_t p = 0; mask >> p != 0; ++p) {
    if ((mask >> p & 1u) == 0) continue;
    if (p >= row.size()) return false;
    key->push_back(row[p]);
  }
  return true;
}

}  // namespace

bool Database::AddFact(const std::string& relation, Tuple tuple) {
  auto [rel_it, new_relation] = relations_.try_emplace(relation);
  if (new_relation) relations_dirty_ = true;
  RelationData& data = rel_it->second;
  std::vector<ValueId> row;
  row.reserve(tuple.size());
  for (const Value& v : tuple) row.push_back(pool_->Intern(v));
  if (!data.set.insert(row).second) return false;
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (domain_ids_.insert(row[i]).second) domain_.push_back(tuple[i]);
  }
  data.rows.push_back(std::move(row));
  data.tuples.push_back(std::move(tuple));
  ++num_facts_;
  return true;
}

bool Database::HasFact(const std::string& relation, const Tuple& tuple) const {
  auto it = relations_.find(relation);
  if (it == relations_.end()) return false;
  std::vector<ValueId> row;
  row.reserve(tuple.size());
  for (const Value& v : tuple) {
    ValueId id = pool_->Find(v);
    if (id == kNoValue) return false;  // value never interned: no such fact
    row.push_back(id);
  }
  return it->second.set.count(row) > 0;
}

const std::vector<Tuple>& Database::Facts(const std::string& relation) const {
  static const std::vector<Tuple>* const kEmpty = new std::vector<Tuple>();
  auto it = relations_.find(relation);
  return it == relations_.end() ? *kEmpty : it->second.tuples;
}

const std::vector<std::vector<ValueId>>& Database::Rows(
    const std::string& relation) const {
  static const std::vector<std::vector<ValueId>>* const kEmpty =
      new std::vector<std::vector<ValueId>>();
  auto it = relations_.find(relation);
  return it == relations_.end() ? *kEmpty : it->second.rows;
}

const std::vector<std::uint32_t>& Database::Probe(
    const std::string& relation, std::uint32_t mask,
    const std::vector<ValueId>& key) const {
  static const std::vector<std::uint32_t>* const kEmptyBucket =
      new std::vector<std::uint32_t>();
  // Serializes lazy index construction (and the stats counters) so that
  // concurrent const probes are safe; see the class comment. Probes of an
  // already-built index still take the lock, but the build check below is
  // a racy read without it, and the uncontended acquisition is cheap
  // relative to a hash-bucket lookup.
  std::lock_guard<std::mutex> lock(memo_mu_.mu);
  ++index_stats_.probes;
  auto it = relations_.find(relation);
  if (it == relations_.end()) return *kEmptyBucket;
  const RelationData& data = it->second;
  auto [idx_it, built] = data.indexes.try_emplace(mask);
  RelIndex& index = idx_it->second;
  if (built) ++index_stats_.indexes_built;
  if (index.rows_indexed < data.rows.size()) {
    // Lazy build and incremental maintenance are the same loop: fold in
    // every row added since the last probe of this (relation, mask).
    const std::uint32_t top = HighestBit(mask);
    std::vector<ValueId> row_key;
    row_key.reserve(static_cast<std::size_t>(top) + 1);
    for (std::size_t r = index.rows_indexed; r < data.rows.size(); ++r) {
      if (!KeyOf(data.rows[r], mask, &row_key)) continue;
      index.buckets[row_key].push_back(static_cast<std::uint32_t>(r));
      ++index_stats_.rows_indexed;
    }
    index.rows_indexed = data.rows.size();
  }
  auto bucket = index.buckets.find(key);
  return bucket == index.buckets.end() ? *kEmptyBucket : bucket->second;
}

const std::vector<std::string>& Database::Relations() const {
  std::lock_guard<std::mutex> lock(memo_mu_.mu);
  if (relations_dirty_) {
    relations_cache_.clear();
    relations_cache_.reserve(relations_.size());
    for (const auto& [name, data] : relations_) {
      if (!data.tuples.empty()) relations_cache_.push_back(name);
    }
    std::sort(relations_cache_.begin(), relations_cache_.end());
    relations_dirty_ = false;
  }
  return relations_cache_;
}

void Database::UnionWith(const Database& other) {
  for (const auto& [name, data] : other.relations_) {
    for (const Tuple& t : data.tuples) AddFact(name, t);
  }
}

std::string Database::ToString() const {
  std::string out;
  for (const std::string& rel : Relations()) {
    for (const Tuple& t : Facts(rel)) {
      out += rel + "(";
      for (std::size_t i = 0; i < t.size(); ++i) {
        if (i > 0) out += ",";
        out += t[i];
      }
      out += ")\n";
    }
  }
  return out;
}

Database CanonicalDatabase(const ConjunctiveQuery& cq) {
  Database db;
  for (const Atom& a : cq.atoms()) {
    Tuple t;
    t.reserve(a.arity());
    for (const Term& term : a.terms()) t.push_back(term.name());
    db.AddFact(a.predicate(), std::move(t));
  }
  return db;
}

Tuple CanonicalHead(const ConjunctiveQuery& cq) {
  Tuple t;
  t.reserve(cq.head().size());
  for (const Term& term : cq.head()) t.push_back(term.name());
  return t;
}

}  // namespace qcont

#include "cq/database.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <mutex>
#include <shared_mutex>
#include <utility>

#include "base/check.h"
#include "base/shard.h"
#include "base/simd.h"
#include "base/thread_pool.h"
#include "obs/obs.h"

namespace qcont {

namespace {

// Overhang of the tag array past the slot capacity: the first group is
// mirrored there so a group load starting at any slot index stays in
// bounds. Sized for the widest probe group (ProbeOptions::group_width).
constexpr std::size_t kTagMirror = 16;

// Slot tag: the top 7 hash bits with the high bit set, so an occupied
// slot's tag is never 0 (the empty-slot tag) and never matches a
// zero-needle group compare. The low hash bits pick the home slot, so tag
// and slot index are nearly independent.
inline std::uint8_t TagOf(std::uint64_t h) {
  return static_cast<std::uint8_t>(h >> 56) | 0x80u;
}

inline void SetTagAt(std::vector<std::uint8_t>& tags, std::size_t cap,
                     std::size_t slot, std::uint8_t tag) {
  tags[slot] = tag;
  if (slot < kTagMirror) tags[cap + slot] = tag;
}

// Blocked Bloom filter over key hashes: 2 probe bits per key drawn from
// hash bits disjoint from the slot-index (low) and tag (top 8) bits. The
// word vector is power-of-two sized, so masking replaces modulo.
inline void BloomAdd(std::vector<std::uint64_t>& bloom, std::uint64_t h) {
  const std::size_t bit_mask = bloom.size() * 64 - 1;
  const std::size_t b1 = (h >> 16) & bit_mask;
  const std::size_t b2 = (h >> 36) & bit_mask;
  bloom[b1 >> 6] |= 1ULL << (b1 & 63);
  bloom[b2 >> 6] |= 1ULL << (b2 & 63);
}

inline bool BloomMayContain(const std::vector<std::uint64_t>& bloom,
                            std::uint64_t h) {
  const std::size_t bit_mask = bloom.size() * 64 - 1;
  const std::size_t b1 = (h >> 16) & bit_mask;
  const std::size_t b2 = (h >> 36) & bit_mask;
  return (bloom[b1 >> 6] >> (b1 & 63) & 1) != 0 &&
         (bloom[b2 >> 6] >> (b2 & 63) & 1) != 0;
}

// Highest position a mask constrains (mask must be nonzero).
inline std::uint32_t HighestBit(std::uint32_t mask) {
  std::uint32_t top = 0;
  while (mask >>= 1) ++top;
  return top;
}

// Key of `row` under `mask`: values at masked positions, ascending. Returns
// false if the row is too short to be constrained by every masked position
// (legacy layout only; flat relations have uniform arity).
inline bool KeyOf(const std::vector<ValueId>& row, std::uint32_t mask,
                  std::vector<ValueId>* key) {
  key->clear();
  for (std::uint32_t p = 0; mask >> p != 0; ++p) {
    if ((mask >> p & 1u) == 0) continue;
    if (p >= row.size()) return false;
    key->push_back(row[p]);
  }
  return true;
}

// Inline slot key for key widths <= 2: each value shifted up by one so the
// result is always nonzero (0 is the empty-slot sentinel; kNoValue never
// occurs in a row, so v+1 never wraps). Returns 0 for wide keys, which are
// stored out of line.
inline std::uint64_t PackedKey(std::uint32_t width,
                               std::span<const ValueId> key) {
  if (width == 1) return (static_cast<std::uint64_t>(key[0]) + 1) << 32;
  if (width == 2) {
    return ((static_cast<std::uint64_t>(key[0]) + 1) << 32) |
           (static_cast<std::uint64_t>(key[1]) + 1);
  }
  if (width == 0) return 1;  // the single possible (empty) key
  return 0;
}

}  // namespace

Database::AtomicIndexStats& Database::stats_stripe() const {
  // Worker id -1 (non-pool threads, including the main thread) lands on
  // stripe 0; pool workers spread over the remaining stripes. Totals are
  // stripe-placement independent, so this is purely contention relief.
  const int wid = ThreadPool::CurrentWorkerId();
  return index_stats_[static_cast<std::size_t>(wid + 1) & (kStatStripes - 1)];
}

// ---------------------------------------------------------------------------
// Flat probe tables (open addressing, linear probing, pow2 capacity).
// ---------------------------------------------------------------------------

namespace {

// HashKey without the table at hand: the key width is all the hash depends
// on, so callers that know it (full-row keys have width == arity) can skip
// the FlatIndex dereference on hot insert paths.
inline std::uint64_t HashRowKey(std::uint32_t width,
                                std::span<const ValueId> key,
                                std::uint64_t packed) {
  if (width <= 2) return Mix64(packed);
  std::uint64_t h = 0x9e3779b97f4a7c15ULL * (width + 1);
  for (ValueId v : key) h = Mix64(h ^ (static_cast<std::uint64_t>(v) + 1));
  return h;
}

}  // namespace

std::uint64_t Database::HashKey(const FlatIndex& idx,
                                std::span<const ValueId> key,
                                std::uint64_t packed) const {
  return HashRowKey(idx.key_width, key, packed);
}

// Tag-filtered probe scan for `key`: returns the slot holding it, or the
// empty slot where it would be inserted. Scans probe groups of
// `group_width` slots from the home slot: one byte-wise group compare
// against the key's tag selects the candidate slots (counted in
// `tag_hits`, with the occupied non-candidates in `tag_skips`), each
// candidate is full-key compared in scan order (failures counted in
// `collisions`), and the first empty tag terminates the probe sequence —
// exactly the slot-by-slot linear-probing order, so tables are laid out
// identically to the pre-tag kernel. The group compare is SSE2/NEON or the
// scalar SWAR fallback (base/simd.h); the returned slot and every counter
// are bit-identical across kernels by the MatchBytes contract. Requires
// nonempty `slots` and `h == HashKey(idx, key, packed)`.
std::size_t Database::FindSlot(const FlatIndex& idx,
                               std::span<const ValueId> key,
                               std::uint64_t packed, std::uint64_t h,
                               LocalProbeCounters* c) const {
  const std::size_t cap_mask = idx.slots.size() - 1;
  const auto width = static_cast<std::uint32_t>(probe_options_.group_width);
  const std::uint8_t tag = TagOf(h);
  std::size_t i = h & cap_mask;
  while (true) {
    const std::uint8_t* group = idx.tags.data() + i;
    std::uint32_t match = MatchBytes(group, tag, width);
    const std::uint32_t empty = MatchBytes(group, 0, width);
    const std::uint32_t stop =
        empty != 0 ? static_cast<std::uint32_t>(std::countr_zero(empty))
                   : width;
    match &= (1u << stop) - 1u;  // stop <= 16 < 32: no shift UB
    c->tag_skips += stop - static_cast<std::uint32_t>(std::popcount(match));
    while (match != 0) {
      const auto b = static_cast<std::uint32_t>(std::countr_zero(match));
      match &= match - 1;
      const std::size_t s = (i + b) & cap_mask;
      ++c->tag_hits;
      const std::uint64_t stored = idx.slots[s].key;
      if (idx.key_width <= 2) {
        if (stored == packed) return s;
      } else {
        const ValueId* wide =
            idx.wide_keys.data() + (stored - 1) * idx.key_width;
        if (std::equal(key.begin(), key.end(), wide)) return s;
      }
      ++c->collisions;
    }
    if (empty != 0) return (i + stop) & cap_mask;
    i = (i + width) & cap_mask;
  }
}

void Database::FlushProbeCounters(const LocalProbeCounters& c) const {
  if ((c.tag_hits | c.tag_skips | c.collisions | c.filter_skips) == 0) return;
  AtomicIndexStats& st = stats_stripe();
  if (c.tag_hits != 0) {
    st.tag_hits.fetch_add(c.tag_hits, std::memory_order_relaxed);
  }
  if (c.tag_skips != 0) {
    st.tag_skips.fetch_add(c.tag_skips, std::memory_order_relaxed);
  }
  if (c.collisions != 0) {
    st.probe_collisions.fetch_add(c.collisions, std::memory_order_relaxed);
  }
  if (c.filter_skips != 0) {
    st.filter_skips.fetch_add(c.filter_skips, std::memory_order_relaxed);
  }
}

// Grows `idx` so that `keys` occupied slots stay at or under the
// configured load factor (ProbeOptions::max_load_percent, default 75).
// Growing rehashes the slots and rebuilds the tag array and Bloom filter —
// the postings arena and wide-key storage are untouched. Safe to call
// concurrently on *distinct* indexes (the shard-parallel AddRowBatch path):
// it touches only `idx` and the caller's counter stripe.
void Database::EnsureFlatCapacity(FlatIndex* idx, std::size_t keys) const {
  const std::size_t cap = idx->slots.size();
  const auto load = static_cast<std::size_t>(probe_options_.max_load_percent);
  if (cap != 0 && keys * 100 <= cap * load) return;
  // Start at 32 slots: small relations (canonical databases are a few dozen
  // rows) reach steady state with at most one growth rebuild, which now
  // rebuilds tag and filter metadata alongside the slots. ~0.8 KB per
  // index at rest.
  std::size_t new_cap = cap == 0 ? 32 : cap;
  while (keys * 100 > new_cap * load) new_cap <<= 1;
  std::vector<FlatIndex::Slot> old = std::move(idx->slots);
  idx->slots.assign(new_cap, FlatIndex::Slot{});
  idx->tags.assign(new_cap + kTagMirror, 0);
  idx->bloom.assign(std::max<std::size_t>(new_cap / 8, 2), 0);
  const std::size_t cap_mask = new_cap - 1;
  for (const FlatIndex::Slot& s : old) {
    if (s.key == 0) continue;
    std::uint64_t h;
    if (idx->key_width <= 2) {
      h = Mix64(s.key);
    } else {
      const ValueId* stored =
          idx->wide_keys.data() + (s.key - 1) * idx->key_width;
      h = HashKey(*idx, std::span<const ValueId>(stored, idx->key_width), 0);
    }
    std::size_t i = h & cap_mask;
    while (idx->slots[i].key != 0) i = (i + 1) & cap_mask;
    idx->slots[i] = s;
    SetTagAt(idx->tags, new_cap, i, TagOf(h));
    BloomAdd(idx->bloom, h);
  }
  if (cap != 0) {
    stats_stripe().probe_resizes.fetch_add(1, std::memory_order_relaxed);
  }
}

// Finds `key`'s slot, claiming an empty one for it (tag + Bloom metadata
// included) if absent. The caller must have ensured capacity for the
// insert (no growth happens here, so slot indices handed out earlier in a
// batch stay valid).
std::size_t Database::InsertSlot(FlatIndex* idx, std::span<const ValueId> key,
                                 std::uint64_t packed) const {
  const std::uint64_t h = HashKey(*idx, key, packed);
  LocalProbeCounters ignored;  // insert-path scans are not probe signal
  const std::size_t i = FindSlot(*idx, key, packed, h, &ignored);
  FlatIndex::Slot& s = idx->slots[i];
  if (s.key == 0) {
    if (idx->key_width <= 2) {
      s.key = packed;
    } else {
      const std::uint64_t off = idx->wide_keys.size() / idx->key_width;
      idx->wide_keys.insert(idx->wide_keys.end(), key.begin(), key.end());
      s.key = off + 1;
    }
    SetTagAt(idx->tags, idx->slots.size(), i, TagOf(h));
    BloomAdd(idx->bloom, h);
    ++idx->used;
  }
  return i;
}

std::span<const std::uint32_t> Database::LookupFlatHashed(
    const FlatIndex& idx, std::span<const ValueId> key, std::uint64_t packed,
    std::uint64_t h) const {
  if (idx.slots.empty()) return {};
  if (probe_options_.use_filters && !BloomMayContain(idx.bloom, h)) {
    stats_stripe().filter_skips.fetch_add(1, std::memory_order_relaxed);
    return {};
  }
  LocalProbeCounters c;
  const std::size_t i = FindSlot(idx, key, packed, h, &c);
  FlushProbeCounters(c);
  const FlatIndex::Slot& s = idx.slots[i];
  if (s.key == 0 || s.len == 0) return {};
  return {idx.postings.data() + s.start, s.len};
}

std::span<const std::uint32_t> Database::LookupFlat(
    const FlatIndex& idx, std::span<const ValueId> key) const {
  if (idx.slots.empty()) return {};
  const std::uint64_t packed = PackedKey(idx.key_width, key);
  return LookupFlatHashed(idx, key, packed, HashKey(idx, key, packed));
}

// Folds every row added since the last probe of (relation, mask) into the
// table. Runs under the exclusive memo lock. Batch shape: assign each new
// row its slot first (capacity pre-grown, so slot indices are stable),
// sort the (slot, row) pairs, then rebuild the postings arena in one walk
// that keeps each bucket's rows in row order — amortized O(capacity + new
// rows) regardless of how the batch scatters over buckets. Rows are read
// through the global row directory when the relation is sharded, so the
// secondary tables stay relation-global (postings hold global indices).
void Database::CatchUpFlat(const RelationData& data, std::uint32_t mask,
                           FlatIndex* idx) const {
  const std::size_t total = data.num_rows;
  if (idx->rows_indexed >= total) return;
  ObsSpan build_span(obs_, "db/index_build", "db");
  build_span.AddArg("mask", mask);
  build_span.AddArg("rows", total - idx->rows_indexed);
  const std::uint32_t top = HighestBit(mask);
  if (data.arity == 0 || top >= data.arity) {
    // No row is long enough to be constrained by every masked position
    // (flat relations have uniform arity), so the table stays empty.
    idx->rows_indexed = total;
    return;
  }
  const std::uint32_t w = idx->key_width;
  const std::size_t new_rows = total - idx->rows_indexed;
  EnsureFlatCapacity(idx, idx->used + new_rows);
  const bool sharded = !data.row_dir.empty();
  std::vector<std::pair<std::uint32_t, std::uint32_t>> adds;  // (slot, row)
  adds.reserve(new_rows);
  ValueId key_buf[32];
  for (std::size_t r = idx->rows_indexed; r < total; ++r) {
    const ValueId* row;
    if (!sharded) {
      row = data.shards[0].arena.data() + r * data.arity;
    } else {
      const RowRef ref = data.row_dir[r];
      row = data.shards[ref.shard].arena.data() +
            static_cast<std::size_t>(ref.local) * data.arity;
    }
    std::uint32_t k = 0;
    for (std::uint32_t p = 0; mask >> p != 0; ++p) {
      if (mask >> p & 1u) key_buf[k++] = row[p];
    }
    const std::span<const ValueId> key(key_buf, w);
    adds.emplace_back(
        static_cast<std::uint32_t>(InsertSlot(idx, key, PackedKey(w, key))),
        static_cast<std::uint32_t>(r));
  }
  std::sort(adds.begin(), adds.end());
  std::vector<std::uint32_t> merged;
  merged.reserve(idx->postings.size() + adds.size());
  std::size_t ai = 0;
  for (std::size_t s = 0; s < idx->slots.size(); ++s) {
    FlatIndex::Slot& slot = idx->slots[s];
    if (slot.key == 0) continue;
    const auto start = static_cast<std::uint32_t>(merged.size());
    merged.insert(merged.end(), idx->postings.begin() + slot.start,
                  idx->postings.begin() + slot.start + slot.len);
    while (ai < adds.size() && adds[ai].first == s) {
      merged.push_back(adds[ai].second);
      ++ai;
    }
    slot.start = start;
    slot.len = static_cast<std::uint32_t>(merged.size()) - start;
  }
  idx->postings = std::move(merged);
  idx->rows_indexed = total;
  stats_stripe().rows_indexed.fetch_add(adds.size(),
                                        std::memory_order_relaxed);
}

const Database::FlatIndex* Database::EnsureFlatIndex(const RelationData& data,
                                                     std::uint32_t mask) const {
  {
    // Fast path: the (relation, mask) table exists and is up to date.
    // Shared lock only, so parallel hom searches probing the same frozen
    // database never serialize on the join hot path.
    std::shared_lock<std::shared_mutex> lock(memo_mu_.mu);
    auto it = data.flat_indexes.find(mask);
    if (it != data.flat_indexes.end() &&
        it->second.rows_indexed == data.num_rows) {
      return &it->second;
    }
  }
  // Slow path: build the table (or fold in rows added since the last
  // probe) under the exclusive lock. Re-check the build state after
  // acquiring it — another thread may have finished the build in between.
  std::unique_lock<std::shared_mutex> lock(memo_mu_.mu);
  memo_exclusive_locks_.v.fetch_add(1, std::memory_order_relaxed);
  auto [it, built] = data.flat_indexes.try_emplace(mask);
  if (built) {
    it->second.key_width =
        static_cast<std::uint32_t>(std::popcount(mask));
    stats_stripe().indexes_built.fetch_add(1, std::memory_order_relaxed);
  }
  CatchUpFlat(data, mask, &it->second);
  return &it->second;
}

// ---------------------------------------------------------------------------
// Legacy probe path (the original unordered_map implementation, kept as a
// differential reference behind DatabaseLayout::kLegacy).
// ---------------------------------------------------------------------------

std::span<const std::uint32_t> Database::ProbeLegacy(
    const RelationData& data, std::uint32_t mask,
    std::span<const ValueId> key) const {
  const std::vector<ValueId> key_v(key.begin(), key.end());
  {
    std::shared_lock<std::shared_mutex> lock(memo_mu_.mu);
    auto idx_it = data.indexes.find(mask);
    if (idx_it != data.indexes.end() &&
        idx_it->second.rows_indexed == data.rows.size()) {
      const RelIndex& index = idx_it->second;
      auto bucket = index.buckets.find(key_v);
      if (bucket == index.buckets.end()) return {};
      return {bucket->second.data(), bucket->second.size()};
    }
  }
  std::unique_lock<std::shared_mutex> lock(memo_mu_.mu);
  memo_exclusive_locks_.v.fetch_add(1, std::memory_order_relaxed);
  auto [idx_it, built] = data.indexes.try_emplace(mask);
  RelIndex& index = idx_it->second;
  if (built) {
    stats_stripe().indexes_built.fetch_add(1, std::memory_order_relaxed);
  }
  if (index.rows_indexed < data.rows.size()) {
    ObsSpan build_span(obs_, "db/index_build", "db");
    build_span.AddArg("mask", mask);
    build_span.AddArg("rows", data.rows.size() - index.rows_indexed);
    const std::uint32_t top = HighestBit(mask);
    std::vector<ValueId> row_key;
    row_key.reserve(static_cast<std::size_t>(top) + 1);
    for (std::size_t r = index.rows_indexed; r < data.rows.size(); ++r) {
      if (!KeyOf(data.rows[r], mask, &row_key)) continue;
      index.buckets[row_key].push_back(static_cast<std::uint32_t>(r));
      stats_stripe().rows_indexed.fetch_add(1, std::memory_order_relaxed);
    }
    index.rows_indexed = data.rows.size();
  }
  auto bucket = index.buckets.find(key_v);
  if (bucket == index.buckets.end()) return {};
  return {bucket->second.data(), bucket->second.size()};
}

// ---------------------------------------------------------------------------
// Storage.
// ---------------------------------------------------------------------------

const Database::RelationData* Database::FindRelation(RelationId rel) const {
  if (rel >= rel_slot_.size()) return nullptr;
  const std::int32_t slot = rel_slot_[rel];
  return slot < 0 ? nullptr : &rels_[slot];
}

Database::RelationData& Database::EnsureRelation(RelationId rel) {
  if (rel >= rel_slot_.size()) rel_slot_.resize(rel + 1, -1);
  std::int32_t slot = rel_slot_[rel];
  if (slot < 0) {
    slot = static_cast<std::int32_t>(rels_.size());
    rel_slot_[rel] = slot;
    rels_.emplace_back();
    rels_.back().name = pool_->NameOf(rel);
    rels_.back().id = rel;
    if (layout_ == DatabaseLayout::kFlat) {
      rels_.back().shards.resize(static_cast<std::size_t>(shard_count_));
    }
    rel_ids_.push_back(rel);
    relations_dirty_ = true;
  }
  return rels_[slot];
}

bool Database::AddRowInternal(RelationData& data, std::span<const ValueId> row,
                              Tuple* tuple) {
  RelShard* sh = nullptr;
  std::uint32_t shard_idx = 0;
  if (layout_ == DatabaseLayout::kFlat) {
    if (data.num_rows == 0) {
      data.arity = row.size();
      for (RelShard& s : data.shards) {
        s.primary.key_width = static_cast<std::uint32_t>(row.size());
      }
    } else {
      QCONT_CHECK_MSG(row.size() == data.arity,
                      "flat relations have uniform arity");
    }
    // Duplicate detection through the owning shard's eager full-row table;
    // a hit means the fact exists and nothing below runs — in particular
    // the mutation epoch only bumps once the row is actually claimed, so
    // the (hot) duplicate path touches no atomics. The row-key hash both
    // routes to the shard (base/shard.h) and probes its table.
    const std::uint64_t packed =
        PackedKey(static_cast<std::uint32_t>(data.arity), row);
    const std::uint64_t h =
        HashRowKey(static_cast<std::uint32_t>(data.arity), row, packed);
    shard_idx = shard_count_ > 1
                    ? ShardOf(h, static_cast<std::uint32_t>(shard_count_))
                    : 0;
    sh = &data.shards[shard_idx];
    FlatIndex& idx = sh->primary;
    EnsureFlatCapacity(&idx, idx.used + 1);
    LocalProbeCounters ignored;  // insert-path scans are not probe signal
    const std::size_t i = FindSlot(idx, row, packed, h, &ignored);
    FlatIndex::Slot& s = idx.slots[i];
    if (s.key != 0) return false;
    BumpEpoch();
    if (idx.key_width <= 2) {
      s.key = packed;
    } else {
      const std::uint64_t off = idx.wide_keys.size() / idx.key_width;
      idx.wide_keys.insert(idx.wide_keys.end(), row.begin(), row.end());
      s.key = off + 1;
    }
    SetTagAt(idx.tags, idx.slots.size(), i, TagOf(h));
    BloomAdd(idx.bloom, h);
    ++idx.used;
    s.start = static_cast<std::uint32_t>(idx.postings.size());
    s.len = 1;
    idx.postings.push_back(static_cast<std::uint32_t>(data.num_rows));
  } else {
    if (data.num_rows == 0) data.arity = row.size();
    std::vector<ValueId> row_v(row.begin(), row.end());
    if (!data.set.insert(row_v).second) return false;
    BumpEpoch();
    data.rows.push_back(std::move(row_v));
  }
  Tuple out;
  if (tuple != nullptr) {
    out = std::move(*tuple);
  } else {
    out.reserve(row.size());
    for (ValueId id : row) out.push_back(pool_->NameOf(id));
  }
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (domain_ids_.insert(row[i]).second) {
      domain_.push_back(out[i]);
      domain_ids_list_.push_back(row[i]);
    }
  }
  if (layout_ == DatabaseLayout::kFlat) {
    sh->arena.insert(sh->arena.end(), row.begin(), row.end());
    sh->primary.rows_indexed = sh->primary.postings.size();
    if (shard_count_ > 1) {
      data.row_dir.push_back(
          {shard_idx,
           static_cast<std::uint32_t>(sh->primary.postings.size() - 1)});
    }
  }
  data.tuples.push_back(std::move(out));
  ++data.num_rows;
  ++num_facts_;
  return true;
}

bool Database::AddFact(const std::string& relation, Tuple tuple) {
  RelationData& data = EnsureRelation(pool_->Intern(relation));
  std::vector<ValueId> row;
  row.reserve(tuple.size());
  for (const Value& v : tuple) row.push_back(pool_->Intern(v));
  return AddRowInternal(data, row, &tuple);
}

bool Database::AddRow(RelationId rel, std::span<const ValueId> row) {
  return AddRowInternal(EnsureRelation(rel), row, nullptr);
}

std::size_t Database::AddRowBatch(RelationId rel, std::size_t arity,
                                  std::span<const ValueId> rows,
                                  const ExecContext& exec,
                                  std::vector<std::uint32_t>* added) {
  QCONT_CHECK_MSG(arity >= 1 && rows.size() % arity == 0,
                  "AddRowBatch: rows must be dense with stride arity >= 1");
  const std::size_t n = rows.size() / arity;
  if (n == 0) return 0;
  BumpEpoch();
  // Per-candidate dedup lookups are probe signal (the per-key ProbeMany
  // contract): one `probes` tick per candidate, on every layout.
  stats_stripe().probes.fetch_add(n, std::memory_order_relaxed);
  RelationData& data = EnsureRelation(rel);
  if (layout_ == DatabaseLayout::kLegacy) {
    std::size_t added_count = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (AddRowInternal(data, rows.subspan(i * arity, arity), nullptr)) {
        ++added_count;
        if (added != nullptr) {
          added->push_back(static_cast<std::uint32_t>(data.num_rows - 1));
        }
      }
    }
    return added_count;
  }
  if (data.num_rows == 0) {
    data.arity = arity;
    for (RelShard& s : data.shards) {
      s.primary.key_width = static_cast<std::uint32_t>(arity);
    }
  } else {
    QCONT_CHECK_MSG(arity == data.arity,
                    "flat relations have uniform arity");
  }
  const auto P = static_cast<std::uint32_t>(shard_count_);
  const auto w = static_cast<std::uint32_t>(arity);
  const bool filter = probe_options_.use_filters;

  // Small unsharded batches (the common delta-round case: tens of rows)
  // take a serial fast path: the same per-candidate sequence as the staged
  // pipeline below — capacity, Bloom gate, counted dedup FindSlot, claim —
  // fused into one loop with no staging vectors, so a tiny round-barrier
  // commit costs no allocations. Row order and every counter are identical
  // to the staged path by construction (at P = 1 the staged path visits
  // candidates in this exact order).
  constexpr std::size_t kSerialBatchMax = 1024;
  if (shard_count_ == 1 && n <= kSerialBatchMax) {
    RelShard& sh = data.shards[0];
    FlatIndex& idx = sh.primary;
    LocalProbeCounters c;
    std::size_t added_count = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const std::span<const ValueId> key = rows.subspan(i * arity, arity);
      const std::uint64_t packed = PackedKey(w, key);
      const std::uint64_t h = HashKey(idx, key, packed);
      EnsureFlatCapacity(&idx, idx.used + 1);
      bool have_slot = false;
      std::size_t slot_i = 0;
      if (filter && !BloomMayContain(idx.bloom, h)) {
        ++c.filter_skips;
      } else {
        slot_i = FindSlot(idx, key, packed, h, &c);
        if (idx.slots[slot_i].key != 0) continue;  // duplicate
        have_slot = true;
      }
      if (!have_slot) {
        LocalProbeCounters ignored;  // insert scan, not probe signal
        slot_i = FindSlot(idx, key, packed, h, &ignored);
      }
      FlatIndex::Slot& slot = idx.slots[slot_i];
      if (idx.key_width <= 2) {
        slot.key = packed;
      } else {
        const std::uint64_t off = idx.wide_keys.size() / idx.key_width;
        idx.wide_keys.insert(idx.wide_keys.end(), key.begin(), key.end());
        slot.key = off + 1;
      }
      SetTagAt(idx.tags, idx.slots.size(), slot_i, TagOf(h));
      BloomAdd(idx.bloom, h);
      ++idx.used;
      const auto g = static_cast<std::uint32_t>(data.num_rows);
      slot.start = static_cast<std::uint32_t>(idx.postings.size());
      slot.len = 1;
      idx.postings.push_back(g);
      sh.arena.insert(sh.arena.end(), key.begin(), key.end());
      Tuple t;
      t.reserve(arity);
      for (ValueId v : key) t.push_back(pool_->NameOf(v));
      for (std::size_t k = 0; k < arity; ++k) {
        if (domain_ids_.insert(key[k]).second) {
          domain_.push_back(t[k]);
          domain_ids_list_.push_back(key[k]);
        }
      }
      data.tuples.push_back(std::move(t));
      if (added != nullptr) added->push_back(g);
      ++data.num_rows;
      ++num_facts_;
      ++added_count;
    }
    idx.rows_indexed = idx.postings.size();
    FlushProbeCounters(c);
    return added_count;
  }
  const FlatIndex& proto = data.shards[0].primary;  // key_width carrier

  // Stage 1 (parallel): hash and shard-route every candidate. The row-key
  // hash computed here is reused verbatim for the shard's table probe.
  std::vector<std::uint64_t> hashes(n);
  std::vector<std::uint64_t> packs(n);
  std::vector<std::uint32_t> shard_of(n);
  constexpr std::size_t kChunk = 4096;
  ParallelFor(exec, (n + kChunk - 1) / kChunk, [&](std::size_t chunk) {
    const std::size_t lo = chunk * kChunk;
    const std::size_t hi = std::min(n, lo + kChunk);
    for (std::size_t i = lo; i < hi; ++i) {
      const std::span<const ValueId> key = rows.subspan(i * arity, arity);
      packs[i] = PackedKey(w, key);
      hashes[i] = HashKey(proto, key, packs[i]);
      shard_of[i] = P > 1 ? ShardOf(hashes[i], P) : 0;
    }
  });

  // Bucket candidate indices by shard, preserving candidate order within
  // each shard (stable counting sort), so each shard task scans only its
  // own candidates.
  std::vector<std::uint32_t> shard_start(P + 1, 0);
  for (std::size_t i = 0; i < n; ++i) ++shard_start[shard_of[i] + 1];
  for (std::uint32_t s = 0; s < P; ++s) shard_start[s + 1] += shard_start[s];
  std::vector<std::uint32_t> order(n);
  {
    std::vector<std::uint32_t> fill(shard_start.begin(),
                                    shard_start.begin() + P);
    for (std::size_t i = 0; i < n; ++i) {
      order[fill[shard_of[i]]++] = static_cast<std::uint32_t>(i);
    }
  }

  // Stage 2 (parallel, one task per shard): dedup against the shard's
  // table *and* against earlier candidates of the batch (a claimed row is
  // immediately visible to later lookups of the same shard task), claiming
  // survivors into the shard's private table and arena. Per shard this is
  // byte-for-byte the serial AddRow sequence — capacity ensured before
  // every candidate, dups included — so a P=1 batch leaves the exact table
  // a serial loop would. Shard tasks touch disjoint shards, disjoint
  // survivor bytes, and per-thread counter stripes: no shared locks.
  const auto post_base = [&] {
    std::vector<std::size_t> base(P);
    for (std::uint32_t s = 0; s < P; ++s) {
      base[s] = data.shards[s].primary.postings.size();
    }
    return base;
  }();
  std::vector<std::uint8_t> survivor(n, 0);
  ParallelFor(exec, P, [&](std::size_t s) {
    RelShard& sh = data.shards[s];
    FlatIndex& idx = sh.primary;
    LocalProbeCounters c;
    const std::uint32_t* begin = order.data() + shard_start[s];
    const std::uint32_t* end = order.data() + shard_start[s + 1];
    for (const std::uint32_t* p = begin; p != end; ++p) {
      const std::size_t i = *p;
      const std::span<const ValueId> key = rows.subspan(i * arity, arity);
      EnsureFlatCapacity(&idx, idx.used + 1);
      // Dedup lookup, Bloom-gated like ProbeMany. A filter miss proves the
      // row absent even against earlier batch claims (claims BloomAdd).
      bool have_slot = false;
      std::size_t slot_i = 0;
      if (filter && !BloomMayContain(idx.bloom, hashes[i])) {
        ++c.filter_skips;
      } else {
        slot_i = FindSlot(idx, key, packs[i], hashes[i], &c);
        if (idx.slots[slot_i].key != 0) continue;  // duplicate
        have_slot = true;
      }
      if (!have_slot) {
        LocalProbeCounters ignored;  // insert scan, not probe signal
        slot_i = FindSlot(idx, key, packs[i], hashes[i], &ignored);
      }
      FlatIndex::Slot& slot = idx.slots[slot_i];
      if (idx.key_width <= 2) {
        slot.key = packs[i];
      } else {
        const std::uint64_t off = idx.wide_keys.size() / idx.key_width;
        idx.wide_keys.insert(idx.wide_keys.end(), key.begin(), key.end());
        slot.key = off + 1;
      }
      SetTagAt(idx.tags, idx.slots.size(), slot_i, TagOf(hashes[i]));
      BloomAdd(idx.bloom, hashes[i]);
      ++idx.used;
      slot.start = static_cast<std::uint32_t>(idx.postings.size());
      slot.len = 1;
      idx.postings.push_back(0);  // placeholder; patched with the global id
      sh.arena.insert(sh.arena.end(), key.begin(), key.end());
      survivor[i] = 1;
    }
    idx.rows_indexed = idx.postings.size();
    FlushProbeCounters(c);
  });

  // Stage 3 (serial): assign global row numbers to the survivors in
  // candidate order — identical numbering to a serial AddRow loop — patch
  // the placeholder postings, extend the row directory, and fold new
  // values into the active domain in first-occurrence order.
  std::vector<std::uint32_t> surv;  // candidate index per committed row
  surv.reserve(n);
  std::vector<std::uint32_t> shard_seen(P, 0);
  for (std::size_t i = 0; i < n; ++i) {
    if (survivor[i] == 0) continue;
    const std::uint32_t s = shard_of[i];
    const auto local =
        static_cast<std::uint32_t>(post_base[s] + shard_seen[s]);
    ++shard_seen[s];
    const auto g = static_cast<std::uint32_t>(data.num_rows);
    data.shards[s].primary.postings[local] = g;
    if (shard_count_ > 1) data.row_dir.push_back({s, local});
    const std::span<const ValueId> key = rows.subspan(i * arity, arity);
    for (ValueId v : key) {
      if (domain_ids_.insert(v).second) {
        domain_.push_back(pool_->NameOf(v));
        domain_ids_list_.push_back(v);
      }
    }
    surv.push_back(static_cast<std::uint32_t>(i));
    if (added != nullptr) added->push_back(g);
    ++data.num_rows;
    ++num_facts_;
  }

  // Stage 4 (parallel): materialize the string tuples of the committed
  // rows, chunked so a small commit costs no pool dispatch (delta rounds
  // are frequently tens of rows). Interner::NameOf is shared-lock
  // thread-safe; slot j is written by exactly one task.
  const std::size_t tuple_base = data.tuples.size();
  data.tuples.resize(tuple_base + surv.size());
  constexpr std::size_t kTupleChunk = 1024;
  ParallelFor(exec, (surv.size() + kTupleChunk - 1) / kTupleChunk,
              [&](std::size_t chunk) {
                const std::size_t lo = chunk * kTupleChunk;
                const std::size_t hi =
                    std::min(surv.size(), lo + kTupleChunk);
                for (std::size_t j = lo; j < hi; ++j) {
                  const std::span<const ValueId> key = rows.subspan(
                      static_cast<std::size_t>(surv[j]) * arity, arity);
                  Tuple t;
                  t.reserve(arity);
                  for (ValueId v : key) t.push_back(pool_->NameOf(v));
                  data.tuples[tuple_base + j] = std::move(t);
                }
              });
  return surv.size();
}

bool Database::HasRow(RelationId rel, std::span<const ValueId> row) const {
  const RelationData* data = FindRelation(rel);
  if (data == nullptr) return false;
  if (layout_ == DatabaseLayout::kFlat) {
    if (row.size() != data->arity) return false;
    EpochReadGuard guard(mutation_epoch_.v);
    if (shard_count_ == 1) {
      return !LookupFlat(data->shards[0].primary, row).empty();
    }
    const FlatIndex& proto = data->shards[0].primary;
    const std::uint64_t packed = PackedKey(proto.key_width, row);
    const std::uint64_t h = HashKey(proto, row, packed);
    const FlatIndex& idx =
        data->shards[ShardOf(h, static_cast<std::uint32_t>(shard_count_))]
            .primary;
    return !LookupFlatHashed(idx, row, packed, h).empty();
  }
  return data->set.count(std::vector<ValueId>(row.begin(), row.end())) > 0;
}

bool Database::HasFact(const std::string& relation, const Tuple& tuple) const {
  const RelationId rel = pool_->Find(relation);
  if (rel == kNoRelation) return false;
  std::vector<ValueId> row;
  row.reserve(tuple.size());
  for (const Value& v : tuple) {
    const ValueId id = pool_->Find(v);
    if (id == kNoValue) return false;  // value never interned: no such fact
    row.push_back(id);
  }
  return HasRow(rel, row);
}

const std::vector<Tuple>& Database::Facts(const std::string& relation) const {
  static const std::vector<Tuple>* const kEmpty = new std::vector<Tuple>();
  const RelationData* data = FindRelation(pool_->Find(relation));
  return data == nullptr ? *kEmpty : data->tuples;
}

std::size_t Database::NumRows(RelationId rel) const {
  const RelationData* data = FindRelation(rel);
  return data == nullptr ? 0 : data->num_rows;
}

std::size_t Database::Arity(RelationId rel) const {
  const RelationData* data = FindRelation(rel);
  return data == nullptr ? 0 : data->arity;
}

std::span<const ValueId> Database::Row(RelationId rel, std::size_t r) const {
  const RelationData* data = FindRelation(rel);
  QCONT_CHECK(data != nullptr && r < data->num_rows);
  if (layout_ == DatabaseLayout::kFlat) {
    if (data->row_dir.empty()) {
      return {data->shards[0].arena.data() + r * data->arity, data->arity};
    }
    const RowRef ref = data->row_dir[r];
    return {data->shards[ref.shard].arena.data() +
                static_cast<std::size_t>(ref.local) * data->arity,
            data->arity};
  }
  return {data->rows[r].data(), data->rows[r].size()};
}

std::span<const ValueId> Database::Arena(RelationId rel) const {
  const RelationData* data = FindRelation(rel);
  if (data == nullptr || layout_ != DatabaseLayout::kFlat) return {};
  if (!data->row_dir.empty()) return {};  // sharded: no contiguous block
  return {data->shards[0].arena.data(), data->shards[0].arena.size()};
}

Database::RowView Database::Rows(RelationId rel) const {
  RowView v;
  const RelationData* data = FindRelation(rel);
  if (data == nullptr || data->num_rows == 0) return v;
  v.data_ = data;
  v.arity_ = data->arity;
  if (layout_ == DatabaseLayout::kLegacy) {
    v.mode_ = 3;
  } else if (data->row_dir.empty()) {
    v.mode_ = 1;
    v.base_ = data->shards[0].arena.data();
  } else {
    v.mode_ = 2;
  }
  return v;
}

std::span<const std::uint32_t> Database::Probe(
    RelationId rel, std::uint32_t mask, std::span<const ValueId> key) const {
  stats_stripe().probes.fetch_add(1, std::memory_order_relaxed);
  const RelationData* data = FindRelation(rel);
  if (data == nullptr) return {};
  if (layout_ == DatabaseLayout::kLegacy) return ProbeLegacy(*data, mask, key);
  EpochReadGuard guard(mutation_epoch_.v);
  // Fully-bound probes are served by the eagerly maintained full-row
  // primary table of the key's own shard: no lazy build, no lock, and the
  // routing hash doubles as the probe hash.
  if (IsFullMask(*data, mask)) {
    if (shard_count_ == 1) return LookupFlat(data->shards[0].primary, key);
    const FlatIndex& proto = data->shards[0].primary;
    const std::uint64_t packed = PackedKey(proto.key_width, key);
    const std::uint64_t h = HashKey(proto, key, packed);
    const FlatIndex& idx =
        data->shards[ShardOf(h, static_cast<std::uint32_t>(shard_count_))]
            .primary;
    return LookupFlatHashed(idx, key, packed, h);
  }
  return LookupFlat(*EnsureFlatIndex(*data, mask), key);
}

std::span<const std::uint32_t> Database::Probe(
    const std::string& relation, std::uint32_t mask,
    std::span<const ValueId> key) const {
  return Probe(pool_->Find(relation), mask, key);
}

void Database::ProbeMany(RelationId rel, std::uint32_t mask,
                         std::span<const ValueId> keys,
                         std::span<std::span<const std::uint32_t>> out) const {
  const std::size_t n = out.size();
  if (n == 0) return;
  stats_stripe().probes.fetch_add(n, std::memory_order_relaxed);
  const auto w = static_cast<std::uint32_t>(std::popcount(mask));
  const RelationData* data = FindRelation(rel);
  if (data == nullptr) {
    std::fill(out.begin(), out.end(), std::span<const std::uint32_t>());
    return;
  }
  if (layout_ == DatabaseLayout::kLegacy) {
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = ProbeLegacy(*data, mask, keys.subspan(i * w, w));
    }
    return;
  }
  EpochReadGuard guard(mutation_epoch_.v);
  const FlatIndex* idx;
  if (IsFullMask(*data, mask)) {
    if (shard_count_ > 1) {
      ProbeManySharded(*data, keys, w, out);
      return;
    }
    idx = &data->shards[0].primary;
  } else {
    idx = EnsureFlatIndex(*data, mask);
  }
  if (idx->slots.empty()) {
    std::fill(out.begin(), out.end(), std::span<const std::uint32_t>());
    return;
  }
  // Staged pipeline over the block: (1) hash every key once and answer
  // Bloom-filter misses immediately, (2) software-prefetch the surviving
  // keys' home tag groups and slots a fixed distance ahead of (3) the
  // in-order resolving pass, so the resolve never stalls on a cold line.
  const std::size_t cap_mask = idx->slots.size() - 1;
  std::vector<std::uint64_t> hashes(n);
  std::vector<std::uint64_t> packs(n);
  LocalProbeCounters c;
  for (std::size_t i = 0; i < n; ++i) {
    const std::span<const ValueId> key = keys.subspan(i * w, w);
    packs[i] = PackedKey(w, key);
    hashes[i] = HashKey(*idx, key, packs[i]);
  }
  const bool filter = probe_options_.use_filters;
  const std::size_t dist =
      std::min<std::size_t>(probe_options_.prefetch_distance, n);
  if (dist > 0) {
    stats_stripe().prefetch_batches.fetch_add((n + dist - 1) / dist,
                                              std::memory_order_relaxed);
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (i + dist < n && (!filter || BloomMayContain(idx->bloom,
                                                    hashes[i + dist]))) {
      const std::size_t home = hashes[i + dist] & cap_mask;
      PrefetchRead(idx->tags.data() + home);
      PrefetchRead(idx->slots.data() + home);
    }
    if (filter && !BloomMayContain(idx->bloom, hashes[i])) {
      ++c.filter_skips;
      out[i] = {};
      continue;
    }
    const std::span<const ValueId> key = keys.subspan(i * w, w);
    const std::size_t s = FindSlot(*idx, key, packs[i], hashes[i], &c);
    const FlatIndex::Slot& slot = idx->slots[s];
    out[i] = (slot.key == 0 || slot.len == 0)
                 ? std::span<const std::uint32_t>()
                 : std::span<const std::uint32_t>(
                       idx->postings.data() + slot.start, slot.len);
  }
  FlushProbeCounters(c);
}

// Fully-bound ProbeMany over a sharded relation (P > 1): the same staged
// pipeline as the unsharded path, with each key routed to its owning
// shard's table by the hash that then probes it. Prefetches cross shard
// boundaries freely — the lookahead key's shard is known as soon as its
// hash is.
void Database::ProbeManySharded(
    const RelationData& data, std::span<const ValueId> keys, std::uint32_t w,
    std::span<std::span<const std::uint32_t>> out) const {
  const std::size_t n = out.size();
  const auto P = static_cast<std::uint32_t>(shard_count_);
  const FlatIndex& proto = data.shards[0].primary;  // key_width carrier
  std::vector<std::uint64_t> hashes(n);
  std::vector<std::uint64_t> packs(n);
  std::vector<std::uint32_t> shard_of(n);
  LocalProbeCounters c;
  for (std::size_t i = 0; i < n; ++i) {
    const std::span<const ValueId> key = keys.subspan(i * w, w);
    packs[i] = PackedKey(w, key);
    hashes[i] = HashKey(proto, key, packs[i]);
    shard_of[i] = ShardOf(hashes[i], P);
  }
  const bool filter = probe_options_.use_filters;
  const std::size_t dist =
      std::min<std::size_t>(probe_options_.prefetch_distance, n);
  if (dist > 0) {
    stats_stripe().prefetch_batches.fetch_add((n + dist - 1) / dist,
                                              std::memory_order_relaxed);
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (i + dist < n) {
      const FlatIndex& ahead = data.shards[shard_of[i + dist]].primary;
      if (!ahead.slots.empty() &&
          (!filter || BloomMayContain(ahead.bloom, hashes[i + dist]))) {
        const std::size_t home = hashes[i + dist] & (ahead.slots.size() - 1);
        PrefetchRead(ahead.tags.data() + home);
        PrefetchRead(ahead.slots.data() + home);
      }
    }
    const FlatIndex& idx = data.shards[shard_of[i]].primary;
    if (idx.slots.empty()) {
      out[i] = {};
      continue;
    }
    if (filter && !BloomMayContain(idx.bloom, hashes[i])) {
      ++c.filter_skips;
      out[i] = {};
      continue;
    }
    const std::span<const ValueId> key = keys.subspan(i * w, w);
    const std::size_t s = FindSlot(idx, key, packs[i], hashes[i], &c);
    const FlatIndex::Slot& slot = idx.slots[s];
    out[i] = (slot.key == 0 || slot.len == 0)
                 ? std::span<const std::uint32_t>()
                 : std::span<const std::uint32_t>(
                       idx.postings.data() + slot.start, slot.len);
  }
  FlushProbeCounters(c);
}

void Database::Reshard(int shards) {
  QCONT_CHECK_MSG(shards >= 1 && shards <= kMaxShards,
                  "Reshard: shard count out of range");
  if (layout_ != DatabaseLayout::kFlat || shards == shard_count_) return;
  BumpEpoch();
  const auto P = static_cast<std::uint32_t>(shards);
  for (RelationData& data : rels_) {
    const std::size_t nrows = data.num_rows;
    std::vector<RelShard> fresh(P);
    for (RelShard& sh : fresh) {
      sh.primary.key_width = static_cast<std::uint32_t>(data.arity);
    }
    if (nrows == 0) {
      data.shards = std::move(fresh);
      data.row_dir.clear();
      continue;
    }
    const auto row_at = [&](std::size_t r) -> const ValueId* {
      if (data.row_dir.empty()) {
        return data.shards[0].arena.data() + r * data.arity;
      }
      const RowRef ref = data.row_dir[r];
      return data.shards[ref.shard].arena.data() +
             static_cast<std::size_t>(ref.local) * data.arity;
    };
    // Pass 1: hash + route every row, count per-shard loads, and size each
    // shard's table once from empty — a single build per shard, so
    // resharding never counts as a probe resize.
    std::vector<std::uint64_t> hashes(nrows);
    std::vector<std::uint64_t> packs(nrows);
    std::vector<std::uint32_t> route(nrows);
    std::vector<std::size_t> counts(P, 0);
    const auto w = static_cast<std::uint32_t>(data.arity);
    for (std::size_t r = 0; r < nrows; ++r) {
      const std::span<const ValueId> key(row_at(r), data.arity);
      packs[r] = PackedKey(w, key);
      hashes[r] = HashKey(fresh[0].primary, key, packs[r]);
      route[r] = P > 1 ? ShardOf(hashes[r], P) : 0;
      ++counts[route[r]];
    }
    for (std::uint32_t s = 0; s < P; ++s) {
      if (counts[s] == 0) continue;
      EnsureFlatCapacity(&fresh[s].primary, counts[s]);
      fresh[s].arena.reserve(counts[s] * data.arity);
    }
    // Pass 2: move rows in global order, keeping their global indices in
    // the postings (secondary indexes and engine row ids never notice).
    std::vector<RowRef> new_dir;
    if (P > 1) new_dir.reserve(nrows);
    for (std::size_t r = 0; r < nrows; ++r) {
      const ValueId* row = row_at(r);
      const std::span<const ValueId> key(row, data.arity);
      FlatIndex& idx = fresh[route[r]].primary;
      LocalProbeCounters ignored;  // rebuild scans are not probe signal
      const std::size_t slot_i =
          FindSlot(idx, key, packs[r], hashes[r], &ignored);
      FlatIndex::Slot& slot = idx.slots[slot_i];
      QCONT_CHECK(slot.key == 0);  // rows are unique by construction
      if (idx.key_width <= 2) {
        slot.key = packs[r];
      } else {
        const std::uint64_t off = idx.wide_keys.size() / idx.key_width;
        idx.wide_keys.insert(idx.wide_keys.end(), key.begin(), key.end());
        slot.key = off + 1;
      }
      SetTagAt(idx.tags, idx.slots.size(), slot_i, TagOf(hashes[r]));
      BloomAdd(idx.bloom, hashes[r]);
      ++idx.used;
      slot.start = static_cast<std::uint32_t>(idx.postings.size());
      slot.len = 1;
      idx.postings.push_back(static_cast<std::uint32_t>(r));
      if (P > 1) {
        new_dir.push_back(
            {route[r], static_cast<std::uint32_t>(idx.postings.size() - 1)});
      }
      fresh[route[r]].arena.insert(fresh[route[r]].arena.end(), row,
                                   row + data.arity);
    }
    for (RelShard& sh : fresh) {
      sh.primary.rows_indexed = sh.primary.postings.size();
    }
    data.shards = std::move(fresh);
    data.row_dir = std::move(new_dir);
  }
  shard_count_ = shards;
}

DatabaseShardStats Database::shard_stats() const {
  DatabaseShardStats s;
  s.shards = shard_count_;
  const auto P = static_cast<std::size_t>(shard_count_);
  std::vector<std::uint64_t> loads(P, 0);
  double max_occ = 0.0;
  for (const RelationData& data : rels_) {
    if (layout_ != DatabaseLayout::kFlat) {
      loads[0] += data.num_rows;
      continue;
    }
    for (std::size_t i = 0; i < data.shards.size() && i < P; ++i) {
      const FlatIndex& idx = data.shards[i].primary;
      loads[i] += idx.postings.size();
      if (!idx.slots.empty()) {
        max_occ = std::max(max_occ, 100.0 * static_cast<double>(idx.used) /
                                        static_cast<double>(idx.slots.size()));
      }
    }
  }
  for (std::uint64_t load : loads) s.rows_total += load;
  s.rows_max_shard = *std::max_element(loads.begin(), loads.end());
  s.rows_min_shard = *std::min_element(loads.begin(), loads.end());
  if (shard_count_ > 1 && s.rows_total > 0) {
    const double ideal =
        static_cast<double>(s.rows_total) / static_cast<double>(P);
    s.imbalance_pct =
        100.0 * (static_cast<double>(s.rows_max_shard) / ideal - 1.0);
  }
  s.max_occupancy_pct = max_occ;
  return s;
}

void Database::set_probe_options(const ProbeOptions& options) {
  ProbeOptions clamped = options;
  clamped.max_load_percent = std::clamp(clamped.max_load_percent, 40, 90);
  clamped.group_width = clamped.group_width <= 8 ? 8 : 16;
  probe_options_ = clamped;
}

const std::vector<std::string>& Database::Relations() const {
  {
    std::shared_lock<std::shared_mutex> lock(memo_mu_.mu);
    if (!relations_dirty_) return relations_cache_;
  }
  std::unique_lock<std::shared_mutex> lock(memo_mu_.mu);
  memo_exclusive_locks_.v.fetch_add(1, std::memory_order_relaxed);
  if (relations_dirty_) {
    relations_cache_.clear();
    relations_cache_.reserve(rels_.size());
    for (const RelationData& data : rels_) {
      if (data.num_rows > 0) relations_cache_.push_back(data.name);
    }
    std::sort(relations_cache_.begin(), relations_cache_.end());
    relations_dirty_ = false;
  }
  return relations_cache_;
}

void Database::UnionWith(const Database& other) {
  for (const RelationData& data : other.rels_) {
    for (const Tuple& t : data.tuples) AddFact(data.name, t);
  }
}

std::string Database::ToString() const {
  std::string out;
  for (const std::string& rel : Relations()) {
    for (const Tuple& t : Facts(rel)) {
      out += rel + "(";
      for (std::size_t i = 0; i < t.size(); ++i) {
        if (i > 0) out += ",";
        out += t[i];
      }
      out += ")\n";
    }
  }
  return out;
}

Database CanonicalDatabase(const ConjunctiveQuery& cq, DatabaseLayout layout) {
  Database db(layout);
  for (const Atom& a : cq.atoms()) {
    Tuple t;
    t.reserve(a.arity());
    for (const Term& term : a.terms()) t.push_back(term.name());
    db.AddFact(a.predicate(), std::move(t));
  }
  return db;
}

Tuple CanonicalHead(const ConjunctiveQuery& cq) {
  Tuple t;
  t.reserve(cq.head().size());
  for (const Term& term : cq.head()) t.push_back(term.name());
  return t;
}

}  // namespace qcont

#include "cq/database.h"

#include <algorithm>

#include "base/hash.h"

namespace qcont {

std::size_t Database::TupleHash::operator()(const Tuple& t) const {
  std::size_t seed = t.size();
  for (const Value& v : t) HashCombine(&seed, std::hash<Value>()(v));
  return seed;
}

bool Database::AddFact(const std::string& relation, Tuple tuple) {
  RelationData& data = relations_[relation];
  if (!data.set.insert(tuple).second) return false;
  data.tuples.push_back(std::move(tuple));
  ++num_facts_;
  return true;
}

bool Database::HasFact(const std::string& relation, const Tuple& tuple) const {
  auto it = relations_.find(relation);
  return it != relations_.end() && it->second.set.count(tuple) > 0;
}

const std::vector<Tuple>& Database::Facts(const std::string& relation) const {
  static const std::vector<Tuple>* const kEmpty = new std::vector<Tuple>();
  auto it = relations_.find(relation);
  return it == relations_.end() ? *kEmpty : it->second.tuples;
}

std::vector<std::string> Database::Relations() const {
  std::vector<std::string> out;
  out.reserve(relations_.size());
  for (const auto& [name, data] : relations_) {
    if (!data.tuples.empty()) out.push_back(name);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<Value> Database::ActiveDomain() const {
  std::unordered_set<Value> seen;
  std::vector<Value> out;
  for (const auto& [name, data] : relations_) {
    for (const Tuple& t : data.tuples) {
      for (const Value& v : t) {
        if (seen.insert(v).second) out.push_back(v);
      }
    }
  }
  return out;
}

void Database::UnionWith(const Database& other) {
  for (const auto& [name, data] : other.relations_) {
    for (const Tuple& t : data.tuples) AddFact(name, t);
  }
}

std::string Database::ToString() const {
  std::string out;
  for (const std::string& rel : Relations()) {
    for (const Tuple& t : Facts(rel)) {
      out += rel + "(";
      for (std::size_t i = 0; i < t.size(); ++i) {
        if (i > 0) out += ",";
        out += t[i];
      }
      out += ")\n";
    }
  }
  return out;
}

Database CanonicalDatabase(const ConjunctiveQuery& cq) {
  Database db;
  for (const Atom& a : cq.atoms()) {
    Tuple t;
    t.reserve(a.arity());
    for (const Term& term : a.terms()) t.push_back(term.name());
    db.AddFact(a.predicate(), std::move(t));
  }
  return db;
}

Tuple CanonicalHead(const ConjunctiveQuery& cq) {
  Tuple t;
  t.reserve(cq.head().size());
  for (const Term& term : cq.head()) t.push_back(term.name());
  return t;
}

}  // namespace qcont

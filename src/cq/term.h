#ifndef QCONT_CQ_TERM_H_
#define QCONT_CQ_TERM_H_

#include <cstddef>
#include <functional>
#include <string>
#include <utility>

#include "base/hash.h"

namespace qcont {

/// A term of a query atom: either a variable or a constant. The paper's
/// queries are constant-free, but constants are supported so that canonical
/// databases and user databases share one representation.
class Term {
 public:
  enum class Kind { kVariable, kConstant };

  static Term Variable(std::string name) {
    return Term(Kind::kVariable, std::move(name));
  }
  static Term Constant(std::string name) {
    return Term(Kind::kConstant, std::move(name));
  }

  Kind kind() const { return kind_; }
  bool is_variable() const { return kind_ == Kind::kVariable; }
  bool is_constant() const { return kind_ == Kind::kConstant; }
  const std::string& name() const { return name_; }

  /// "x" for variables, "'c'" for constants.
  std::string ToString() const {
    return is_constant() ? "'" + name_ + "'" : name_;
  }

  friend bool operator==(const Term& a, const Term& b) {
    return a.kind_ == b.kind_ && a.name_ == b.name_;
  }
  friend bool operator!=(const Term& a, const Term& b) { return !(a == b); }
  friend bool operator<(const Term& a, const Term& b) {
    if (a.kind_ != b.kind_) return a.kind_ < b.kind_;
    return a.name_ < b.name_;
  }

 private:
  Term(Kind kind, std::string name) : kind_(kind), name_(std::move(name)) {}

  Kind kind_;
  std::string name_;
};

struct TermHash {
  std::size_t operator()(const Term& t) const {
    std::size_t seed = static_cast<std::size_t>(t.kind());
    HashCombine(&seed, std::hash<std::string>()(t.name()));
    return seed;
  }
};

}  // namespace qcont

#endif  // QCONT_CQ_TERM_H_

#ifndef QCONT_CQ_ATOM_H_
#define QCONT_CQ_ATOM_H_

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "base/hash.h"
#include "cq/term.h"

namespace qcont {

/// A relational atom R(t1, ..., tn).
class Atom {
 public:
  Atom(std::string predicate, std::vector<Term> terms)
      : predicate_(std::move(predicate)), terms_(std::move(terms)) {}

  const std::string& predicate() const { return predicate_; }
  const std::vector<Term>& terms() const { return terms_; }
  std::size_t arity() const { return terms_.size(); }

  /// Distinct variables occurring in this atom, in first-occurrence order.
  std::vector<Term> Variables() const {
    std::vector<Term> out;
    for (const Term& t : terms_) {
      if (!t.is_variable()) continue;
      bool seen = false;
      for (const Term& u : out) {
        if (u == t) {
          seen = true;
          break;
        }
      }
      if (!seen) out.push_back(t);
    }
    return out;
  }

  /// "R(x,y,'c')".
  std::string ToString() const {
    std::string out = predicate_ + "(";
    for (std::size_t i = 0; i < terms_.size(); ++i) {
      if (i > 0) out += ",";
      out += terms_[i].ToString();
    }
    out += ")";
    return out;
  }

  friend bool operator==(const Atom& a, const Atom& b) {
    return a.predicate_ == b.predicate_ && a.terms_ == b.terms_;
  }
  friend bool operator!=(const Atom& a, const Atom& b) { return !(a == b); }

 private:
  std::string predicate_;
  std::vector<Term> terms_;
};

struct AtomHash {
  std::size_t operator()(const Atom& a) const {
    std::size_t seed = std::hash<std::string>()(a.predicate());
    TermHash th;
    for (const Term& t : a.terms()) HashCombine(&seed, th(t));
    return seed;
  }
};

}  // namespace qcont

#endif  // QCONT_CQ_ATOM_H_

#include "cq/homomorphism.h"

#include <algorithm>
#include <set>

namespace qcont {

namespace {

// Search state shared across the recursion.
struct Searcher {
  const Database& db;
  std::vector<Atom> atoms;  // ordered at construction
  Assignment binding;
  HomSearchStats* stats;
  const std::function<bool(const Assignment&)>* visit;
  bool stopped = false;

  Searcher(const ConjunctiveQuery& cq, const Database& db_in,
           const Assignment& fixed, HomSearchStats* stats_in)
      : db(db_in), binding(fixed), stats(stats_in) {
    atoms = cq.atoms();
    OrderAtoms();
  }

  // Greedy static order: repeatedly pick the atom with the most variables
  // already covered by earlier atoms (or `fixed`), tie-broken by smaller
  // relation. Keeps the search close to a join order a planner would pick.
  void OrderAtoms() {
    std::vector<Atom> ordered;
    std::set<std::string> bound;
    for (const auto& [var, value] : binding) bound.insert(var);
    std::vector<bool> used(atoms.size(), false);
    for (std::size_t round = 0; round < atoms.size(); ++round) {
      int best = -1;
      long best_score = -1;
      for (std::size_t i = 0; i < atoms.size(); ++i) {
        if (used[i]) continue;
        long covered = 0;
        for (const Term& t : atoms[i].terms()) {
          if (t.is_constant() || bound.count(t.name())) ++covered;
        }
        // Prefer high coverage, then small relations.
        long score = covered * 1000000 -
                     static_cast<long>(db.Facts(atoms[i].predicate()).size());
        if (best < 0 || score > best_score) {
          best = static_cast<int>(i);
          best_score = score;
        }
      }
      used[best] = true;
      for (const Term& t : atoms[best].terms()) {
        if (t.is_variable()) bound.insert(t.name());
      }
      ordered.push_back(atoms[best]);
    }
    atoms = std::move(ordered);
  }

  void Recurse(std::size_t index) {
    if (stopped) return;
    if (index == atoms.size()) {
      if (!(*visit)(binding)) stopped = true;
      return;
    }
    const Atom& atom = atoms[index];
    for (const Tuple& fact : db.Facts(atom.predicate())) {
      if (fact.size() != atom.arity()) continue;
      if (stats != nullptr) ++stats->atom_attempts;
      // Try to unify atom terms with the fact.
      std::vector<std::string> newly_bound;
      bool ok = true;
      for (std::size_t i = 0; i < fact.size(); ++i) {
        const Term& t = atom.terms()[i];
        if (t.is_constant()) {
          if (t.name() != fact[i]) {
            ok = false;
            break;
          }
          continue;
        }
        auto it = binding.find(t.name());
        if (it != binding.end()) {
          if (it->second != fact[i]) {
            ok = false;
            break;
          }
        } else {
          binding.emplace(t.name(), fact[i]);
          newly_bound.push_back(t.name());
        }
      }
      if (ok) {
        Recurse(index + 1);
      } else if (stats != nullptr) {
        ++stats->backtracks;
      }
      for (const std::string& var : newly_bound) binding.erase(var);
      if (stopped) return;
    }
  }
};

}  // namespace

void EnumerateHomomorphisms(const ConjunctiveQuery& cq, const Database& db,
                            const Assignment& fixed,
                            const std::function<bool(const Assignment&)>& visit,
                            HomSearchStats* stats) {
  Searcher searcher(cq, db, fixed, stats);
  searcher.visit = &visit;
  searcher.Recurse(0);
}

std::optional<Assignment> FindHomomorphism(const ConjunctiveQuery& cq,
                                           const Database& db,
                                           const Assignment& fixed,
                                           HomSearchStats* stats) {
  std::optional<Assignment> found;
  EnumerateHomomorphisms(
      cq, db, fixed,
      [&found](const Assignment& h) {
        found = h;
        return false;  // stop at the first homomorphism
      },
      stats);
  return found;
}

std::vector<Tuple> EvaluateCq(const ConjunctiveQuery& cq, const Database& db,
                              HomSearchStats* stats) {
  std::set<Tuple> results;
  EnumerateHomomorphisms(
      cq, db, /*fixed=*/{},
      [&results, &cq](const Assignment& h) {
        Tuple out;
        out.reserve(cq.head().size());
        for (const Term& t : cq.head()) out.push_back(h.at(t.name()));
        results.insert(std::move(out));
        return true;
      },
      stats);
  return std::vector<Tuple>(results.begin(), results.end());
}

std::vector<Tuple> EvaluateUcq(const UnionQuery& ucq, const Database& db,
                               HomSearchStats* stats) {
  std::set<Tuple> results;
  for (const ConjunctiveQuery& cq : ucq.disjuncts()) {
    for (Tuple& t : EvaluateCq(cq, db, stats)) results.insert(std::move(t));
  }
  return std::vector<Tuple>(results.begin(), results.end());
}

}  // namespace qcont

#include "cq/homomorphism.h"

#include <algorithm>
#include <cstddef>
#include <limits>
#include <optional>
#include <set>
#include <span>
#include <string>

#include "base/check.h"

namespace qcont {

namespace {

// ---------------------------------------------------------------------------
// Scan engine: the pre-index reference implementation. Static greedy atom
// order, full relation scan per atom, string-keyed bindings. Kept verbatim
// (modulo per-atom databases) so the differential tests can pin the indexed
// engine against it.
// ---------------------------------------------------------------------------
struct ScanSearcher {
  std::vector<Atom> atoms;                // ordered at construction
  std::vector<const Database*> dbs;       // parallel to `atoms`
  Assignment binding;
  HomSearchStats* stats;
  const std::function<bool(const Assignment&)>* visit = nullptr;
  bool stopped = false;

  ScanSearcher(const std::vector<Atom>& atoms_in,
               const std::vector<const Database*>& dbs_in,
               const Assignment& fixed, HomSearchStats* stats_in)
      : atoms(atoms_in), dbs(dbs_in), binding(fixed), stats(stats_in) {
    OrderAtoms();
  }

  // Greedy static order: repeatedly pick the atom with the most variables
  // already covered by earlier atoms (or `fixed`), tie-broken by smaller
  // relation. Keeps the search close to a join order a planner would pick.
  void OrderAtoms() {
    std::vector<Atom> ordered;
    std::vector<const Database*> ordered_dbs;
    std::set<std::string> bound;
    for (const auto& [var, value] : binding) bound.insert(var);
    std::vector<bool> used(atoms.size(), false);
    for (std::size_t round = 0; round < atoms.size(); ++round) {
      int best = -1;
      long best_score = -1;
      for (std::size_t i = 0; i < atoms.size(); ++i) {
        if (used[i]) continue;
        long covered = 0;
        for (const Term& t : atoms[i].terms()) {
          if (t.is_constant() || bound.count(t.name())) ++covered;
        }
        // Prefer high coverage, then small relations.
        long score =
            covered * 1000000 -
            static_cast<long>(dbs[i]->Facts(atoms[i].predicate()).size());
        if (best < 0 || score > best_score) {
          best = static_cast<int>(i);
          best_score = score;
        }
      }
      used[best] = true;
      for (const Term& t : atoms[best].terms()) {
        if (t.is_variable()) bound.insert(t.name());
      }
      ordered.push_back(atoms[best]);
      ordered_dbs.push_back(dbs[best]);
    }
    atoms = std::move(ordered);
    dbs = std::move(ordered_dbs);
  }

  void Recurse(std::size_t index) {
    if (stopped) return;
    if (index == atoms.size()) {
      if (!(*visit)(binding)) stopped = true;
      return;
    }
    const Atom& atom = atoms[index];
    for (const Tuple& fact : dbs[index]->Facts(atom.predicate())) {
      if (fact.size() != atom.arity()) continue;
      if (stats != nullptr) {
        ++stats->atom_attempts;
        ++stats->scan_candidates;
      }
      // Try to unify atom terms with the fact.
      std::vector<std::string> newly_bound;
      bool ok = true;
      for (std::size_t i = 0; i < fact.size(); ++i) {
        const Term& t = atom.terms()[i];
        if (t.is_constant()) {
          if (t.name() != fact[i]) {
            ok = false;
            break;
          }
          continue;
        }
        auto it = binding.find(t.name());
        if (it != binding.end()) {
          if (it->second != fact[i]) {
            ok = false;
            break;
          }
        } else {
          binding.emplace(t.name(), fact[i]);
          newly_bound.push_back(t.name());
        }
      }
      if (ok) {
        Recurse(index + 1);
      } else if (stats != nullptr) {
        ++stats->backtracks;
      }
      for (const std::string& var : newly_bound) binding.erase(var);
      if (stopped) return;
    }
  }
};

// ---------------------------------------------------------------------------
// Indexed engine: interned value ids, per-relation probe tables on the
// bound-position subset, and dynamic atom selection by estimated candidate
// count. All databases must share one value pool. Candidate rows are read
// as slices of the relation's flat arena (per-row fallback for the legacy
// layout); probe keys live in a stack buffer, so an atom expansion does
// not allocate.
// ---------------------------------------------------------------------------
struct IndexedSearcher {
  // One atom position: either a pool-interned constant or a dense-local
  // variable slot.
  struct Slot {
    bool is_const;
    ValueId const_id;  // valid when is_const
    int var;           // valid when !is_const
  };
  struct AtomInfo {
    const Database* db;
    RelationId rel;  // pool id of the predicate; kNoRelation matches nothing
    std::size_t num_rows;               // frozen-region snapshot
    std::size_t arity;                  // of the stored relation (0 if absent)
    std::span<const ValueId> arena;     // flat layout only; empty otherwise
    std::vector<Slot> slots;
  };

  std::vector<AtomInfo> atoms;
  std::vector<bool> used;
  std::vector<ValueId> binding;        // var slot -> id, kNoValue if unbound
  std::vector<std::string> var_names;  // var slot -> name
  std::unordered_map<std::string, int> var_slots;
  const Interner* pool;
  const Assignment* fixed;
  HomSearchStats* stats;
  const std::function<bool(const Assignment&)>* visit = nullptr;
  const std::function<bool(std::span<const ValueId>)>* visit_ids = nullptr;
  bool stopped = false;
  bool impossible = false;  // a constant or fixed value matches no fact

  IndexedSearcher(const std::vector<Atom>& atoms_in,
                  const std::vector<const Database*>& dbs_in,
                  std::span<const RelationId> rel_ids,
                  const Assignment& fixed_in, HomSearchStats* stats_in)
      : fixed(&fixed_in), stats(stats_in) {
    pool = dbs_in.empty() ? nullptr : dbs_in[0]->pool().get();
    atoms.reserve(atoms_in.size());
    for (std::size_t i = 0; i < atoms_in.size(); ++i) {
      AtomInfo info;
      info.db = dbs_in[i];
      info.rel = rel_ids.empty() ? pool->Find(atoms_in[i].predicate())
                                 : rel_ids[i];
      info.num_rows = info.db->NumRows(info.rel);
      info.arity = info.db->Arity(info.rel);
      info.arena = info.db->Arena(info.rel);
      info.slots.reserve(atoms_in[i].arity());
      for (const Term& t : atoms_in[i].terms()) {
        Slot slot;
        if (t.is_constant()) {
          slot.is_const = true;
          slot.const_id = pool->Find(t.name());
          slot.var = -1;
          if (slot.const_id == kNoValue) impossible = true;
        } else {
          slot.is_const = false;
          slot.const_id = kNoValue;
          auto [it, inserted] =
              var_slots.emplace(t.name(), static_cast<int>(var_names.size()));
          if (inserted) {
            var_names.push_back(t.name());
            binding.push_back(kNoValue);
          }
          slot.var = it->second;
        }
        info.slots.push_back(slot);
      }
      atoms.push_back(std::move(info));
    }
    used.assign(atoms.size(), false);
    for (const auto& [var, value] : fixed_in) {
      auto it = var_slots.find(var);
      if (it == var_slots.end()) continue;  // rides along in the output only
      ValueId id = pool->Find(value);
      if (id == kNoValue) {
        impossible = true;  // the var occurs in an atom; no fact can match
        return;
      }
      binding[it->second] = id;
    }
  }

  void Emit() {
    if (visit_ids != nullptr) {
      if (!(*visit_ids)(std::span<const ValueId>(binding))) stopped = true;
      return;
    }
    Assignment out = *fixed;
    for (std::size_t v = 0; v < binding.size(); ++v) {
      if (binding[v] != kNoValue) out.emplace(var_names[v], pool->NameOf(binding[v]));
    }
    if (!(*visit)(out)) stopped = true;
  }

  // Bound-position mask of `atom` under the current binding, with the key
  // values written into `key_buf` (caller-provided, ≥32 entries). A
  // position is bound if it holds a constant or an already-bound variable;
  // only the first 32 positions are indexable.
  std::uint32_t BoundMask(const AtomInfo& atom, ValueId* key_buf) const {
    std::uint32_t mask = 0;
    std::size_t k = 0;
    const std::size_t limit = std::min<std::size_t>(atom.slots.size(), 32);
    for (std::size_t p = 0; p < limit; ++p) {
      const Slot& s = atom.slots[p];
      ValueId id = s.is_const ? s.const_id : binding[s.var];
      if (id == kNoValue) continue;
      mask |= 1u << p;
      key_buf[k++] = id;
    }
    return mask;
  }

  int BoundCount(const AtomInfo& atom) const {
    int c = 0;
    const std::size_t limit = std::min<std::size_t>(atom.slots.size(), 32);
    for (std::size_t p = 0; p < limit; ++p) {
      const Slot& s = atom.slots[p];
      if ((s.is_const ? s.const_id : binding[s.var]) != kNoValue) ++c;
    }
    return c;
  }

  // Row `r` of the atom's relation: an arena slice in the flat layout, the
  // per-row accessor otherwise.
  std::span<const ValueId> RowOf(const AtomInfo& atom, std::uint32_t r) const {
    if (!atom.arena.empty() || atom.arity == 0) {
      return atom.arena.subspan(static_cast<std::size_t>(r) * atom.arity,
                                atom.arity);
    }
    return atom.db->Row(atom.rel, r);
  }

  void Recurse(std::size_t depth) {
    if (stopped) return;
    if (depth == atoms.size()) {
      Emit();
      return;
    }
    // Pick the next atom dynamically: among the unused atoms with the most
    // bound positions (the most-constrained ones), the one with the fewest
    // candidates — bucket size under the bound-position index, or full
    // relation size when nothing is bound yet. Only the most-constrained
    // tier is probed, which keeps the per-node selection cost near-constant
    // instead of one probe per remaining atom.
    int max_bound = -1;
    for (std::size_t i = 0; i < atoms.size(); ++i) {
      if (used[i]) continue;
      max_bound = std::max(max_bound, BoundCount(atoms[i]));
    }
    int best = -1;
    std::size_t best_count = std::numeric_limits<std::size_t>::max();
    bool best_indexed = false;
    std::span<const std::uint32_t> best_bucket;
    ValueId key_buf[32];
    for (std::size_t i = 0; i < atoms.size(); ++i) {
      if (used[i]) continue;
      const AtomInfo& atom = atoms[i];
      if (BoundCount(atom) != max_bound) continue;
      std::span<const std::uint32_t> bucket;
      bool indexed = false;
      std::size_t count;
      if (max_bound > 0) {
        const std::uint32_t mask = BoundMask(atom, key_buf);
        if (stats != nullptr) ++stats->index_probes;
        bucket = atom.db->Probe(
            atom.rel, mask,
            std::span<const ValueId>(key_buf,
                                     static_cast<std::size_t>(max_bound)));
        count = bucket.size();
        indexed = true;
      } else {
        count = atom.num_rows;
      }
      if (count < best_count) {
        best = static_cast<int>(i);
        best_count = count;
        best_bucket = bucket;
        best_indexed = indexed;
        if (count == 0) break;
      }
    }
    if (best_count == 0) {
      if (stats != nullptr) ++stats->backtracks;
      return;
    }
    const AtomInfo& atom = atoms[best];
    used[best] = true;
    std::vector<int> newly_bound;
    auto try_row = [&](std::span<const ValueId> row) {
      if (row.size() != atom.slots.size()) return;
      if (stats != nullptr) {
        ++stats->atom_attempts;
        if (best_indexed) {
          ++stats->index_candidates;
        } else {
          ++stats->scan_candidates;
        }
      }
      newly_bound.clear();
      bool ok = true;
      for (std::size_t p = 0; p < row.size(); ++p) {
        const Slot& s = atom.slots[p];
        if (s.is_const) {
          if (s.const_id != row[p]) {
            ok = false;
            break;
          }
          continue;
        }
        ValueId& bound = binding[s.var];
        if (bound != kNoValue) {
          if (bound != row[p]) {
            ok = false;
            break;
          }
        } else {
          bound = row[p];
          newly_bound.push_back(s.var);
        }
      }
      if (ok) {
        Recurse(depth + 1);
      } else if (stats != nullptr) {
        ++stats->backtracks;
      }
      for (int v : newly_bound) binding[v] = kNoValue;
    };
    if (best_indexed) {
      for (std::uint32_t r : best_bucket) {
        try_row(RowOf(atom, r));
        if (stopped) break;
      }
    } else {
      for (std::uint32_t r = 0; r < atom.num_rows; ++r) {
        try_row(RowOf(atom, r));
        if (stopped) break;
      }
    }
    used[best] = false;
  }
};

bool SharePool(const std::vector<const Database*>& dbs) {
  for (std::size_t i = 1; i < dbs.size(); ++i) {
    if (dbs[i]->pool() != dbs[0]->pool()) return false;
  }
  return true;
}

}  // namespace

// Pimpl body of RowEnumerator: owns the fixed-assignment copy the searcher
// borrows from.
class RowEnumeratorImpl {
 public:
  Assignment fixed;
  std::optional<IndexedSearcher> searcher;
  bool valid = false;
  static const std::vector<std::string> kNoVars;
};
const std::vector<std::string> RowEnumeratorImpl::kNoVars;

RowEnumerator::RowEnumerator(const std::vector<Atom>& atoms,
                             const std::vector<const Database*>& dbs,
                             std::span<const RelationId> rel_ids,
                             const Assignment& fixed, HomSearchStats* stats,
                             const HomSearchOptions& options)
    : impl_(std::make_unique<RowEnumeratorImpl>()) {
  QCONT_CHECK(atoms.size() == dbs.size());
  impl_->valid = options.use_index && !dbs.empty() && SharePool(dbs);
  if (!impl_->valid) return;
  impl_->fixed = fixed;
  impl_->searcher.emplace(atoms, dbs, rel_ids, impl_->fixed, stats);
}

RowEnumerator::~RowEnumerator() = default;

bool RowEnumerator::valid() const { return impl_->valid; }

const std::vector<std::string>& RowEnumerator::var_names() const {
  return impl_->searcher ? impl_->searcher->var_names
                         : RowEnumeratorImpl::kNoVars;
}

int RowEnumerator::VarSlot(std::string_view name) const {
  if (!impl_->searcher) return -1;
  auto it = impl_->searcher->var_slots.find(std::string(name));
  return it == impl_->searcher->var_slots.end() ? -1 : it->second;
}

void RowEnumerator::Enumerate(
    const std::function<bool(std::span<const ValueId>)>& visit) {
  if (!impl_->valid || impl_->searcher->impossible) return;
  impl_->searcher->visit_ids = &visit;
  impl_->searcher->Recurse(0);
}

void EnumerateHomomorphismsOver(
    const std::vector<Atom>& atoms, const std::vector<const Database*>& dbs,
    std::span<const RelationId> rel_ids, const Assignment& fixed,
    const std::function<bool(const Assignment&)>& visit,
    HomSearchStats* stats, const HomSearchOptions& options) {
  QCONT_CHECK(atoms.size() == dbs.size());
  if (options.use_index && SharePool(dbs)) {
    IndexedSearcher searcher(atoms, dbs, rel_ids, fixed, stats);
    if (searcher.impossible) return;
    searcher.visit = &visit;
    searcher.Recurse(0);
    return;
  }
  ScanSearcher searcher(atoms, dbs, fixed, stats);
  searcher.visit = &visit;
  searcher.Recurse(0);
}

void EnumerateHomomorphismsOver(
    const std::vector<Atom>& atoms, const std::vector<const Database*>& dbs,
    const Assignment& fixed,
    const std::function<bool(const Assignment&)>& visit,
    HomSearchStats* stats, const HomSearchOptions& options) {
  EnumerateHomomorphismsOver(atoms, dbs, /*rel_ids=*/{}, fixed, visit, stats,
                             options);
}

void EnumerateHomomorphisms(const ConjunctiveQuery& cq, const Database& db,
                            const Assignment& fixed,
                            const std::function<bool(const Assignment&)>& visit,
                            HomSearchStats* stats,
                            const HomSearchOptions& options) {
  std::vector<const Database*> dbs(cq.atoms().size(), &db);
  EnumerateHomomorphismsOver(cq.atoms(), dbs, fixed, visit, stats, options);
}

std::optional<Assignment> FindHomomorphism(const ConjunctiveQuery& cq,
                                           const Database& db,
                                           const Assignment& fixed,
                                           HomSearchStats* stats,
                                           const HomSearchOptions& options) {
  std::optional<Assignment> found;
  EnumerateHomomorphisms(
      cq, db, fixed,
      [&found](const Assignment& h) {
        found = h;
        return false;  // stop at the first homomorphism
      },
      stats, options);
  return found;
}

std::vector<Tuple> EvaluateCq(const ConjunctiveQuery& cq, const Database& db,
                              HomSearchStats* stats,
                              const HomSearchOptions& options) {
  std::set<Tuple> results;
  EnumerateHomomorphisms(
      cq, db, /*fixed=*/{},
      [&results, &cq](const Assignment& h) {
        Tuple out;
        out.reserve(cq.head().size());
        for (const Term& t : cq.head()) out.push_back(h.at(t.name()));
        results.insert(std::move(out));
        return true;
      },
      stats, options);
  return std::vector<Tuple>(results.begin(), results.end());
}

std::vector<Tuple> EvaluateUcq(const UnionQuery& ucq, const Database& db,
                               HomSearchStats* stats,
                               const HomSearchOptions& options) {
  std::set<Tuple> results;
  for (const ConjunctiveQuery& cq : ucq.disjuncts()) {
    for (Tuple& t : EvaluateCq(cq, db, stats, options)) {
      results.insert(std::move(t));
    }
  }
  return std::vector<Tuple>(results.begin(), results.end());
}

}  // namespace qcont

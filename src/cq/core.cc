#include "cq/core.h"

#include <unordered_map>
#include <unordered_set>

#include "cq/database.h"
#include "cq/homomorphism.h"

namespace qcont {

namespace {

// Rebuilds a query from `cq` by applying the value-level homomorphism `h`
// to every atom. Values are mapped back to terms via `term_of_value`.
ConjunctiveQuery ApplyRetraction(
    const ConjunctiveQuery& cq, const Assignment& h,
    const std::unordered_map<std::string, Term>& term_of_value) {
  std::vector<Atom> new_atoms;
  std::unordered_set<std::string> seen;  // printed-atom dedup
  for (const Atom& a : cq.atoms()) {
    std::vector<Term> terms;
    terms.reserve(a.arity());
    for (const Term& t : a.terms()) {
      if (t.is_constant()) {
        terms.push_back(t);
      } else {
        terms.push_back(term_of_value.at(h.at(t.name())));
      }
    }
    Atom image(a.predicate(), std::move(terms));
    if (seen.insert(image.ToString()).second) new_atoms.push_back(image);
  }
  return ConjunctiveQuery(cq.head(), std::move(new_atoms));
}

}  // namespace

Result<ConjunctiveQuery> CoreOf(const ConjunctiveQuery& cq) {
  QCONT_RETURN_IF_ERROR(cq.Validate());
  // Duplicate atoms are semantically one; drop them before folding.
  std::vector<Atom> unique_atoms;
  std::unordered_set<std::string> atom_keys;
  for (const Atom& a : cq.atoms()) {
    if (atom_keys.insert(a.ToString()).second) unique_atoms.push_back(a);
  }
  ConjunctiveQuery current(cq.head(), std::move(unique_atoms));
  bool changed = true;
  while (changed) {
    changed = false;
    Database canonical = CanonicalDatabase(current);
    // The identity on free variables is forced.
    Assignment fixed;
    std::unordered_map<std::string, Term> term_of_value;
    for (const Term& t : current.head()) fixed.emplace(t.name(), t.name());
    for (const Atom& a : current.atoms()) {
      for (const Term& t : a.terms()) term_of_value.insert({t.name(), t});
    }
    for (const Term& v : current.ExistentialVariables()) {
      // A retraction eliminating v maps every atom onto a fact that does not
      // mention the frozen value of v.
      Database restricted;
      bool v_used = false;
      for (const std::string& rel : canonical.Relations()) {
        for (const Tuple& fact : canonical.Facts(rel)) {
          bool mentions_v = false;
          for (const Value& val : fact) {
            if (val == v.name()) {
              mentions_v = true;
              break;
            }
          }
          if (mentions_v) {
            v_used = true;
          } else {
            restricted.AddFact(rel, fact);
          }
        }
      }
      if (!v_used) continue;  // dead variable cannot happen for valid CQs
      std::optional<Assignment> h = FindHomomorphism(current, restricted, fixed);
      if (h.has_value()) {
        current = ApplyRetraction(current, *h, term_of_value);
        changed = true;
        break;  // recompute the canonical database for the smaller query
      }
    }
  }
  return current;
}

Result<bool> IsCore(const ConjunctiveQuery& cq) {
  QCONT_ASSIGN_OR_RETURN(ConjunctiveQuery core, CoreOf(cq));
  // The core's variable set is a subset of cq's; equality of variable
  // counts means no fold happened (duplicate atoms are also removed by the
  // fold-free dedup below).
  std::unordered_set<std::string> dedup;
  for (const Atom& a : cq.atoms()) dedup.insert(a.ToString());
  return core.atoms().size() == dedup.size() &&
         core.Variables().size() == cq.Variables().size();
}

}  // namespace qcont

#ifndef QCONT_CQ_QUERY_H_
#define QCONT_CQ_QUERY_H_

#include <cstddef>
#include <string>
#include <vector>

#include "base/status.h"
#include "cq/atom.h"
#include "cq/term.h"

namespace qcont {

/// A conjunctive query theta(x̄) = ∃ȳ (R1(x̄1) ∧ ... ∧ Rm(x̄m)).
///
/// `head` lists the free variables x̄ (possibly with repetitions, possibly
/// empty for a Boolean query); every other variable in the body is
/// implicitly existentially quantified.
class ConjunctiveQuery {
 public:
  ConjunctiveQuery(std::vector<Term> head, std::vector<Atom> atoms)
      : head_(std::move(head)), atoms_(std::move(atoms)) {}

  const std::vector<Term>& head() const { return head_; }
  const std::vector<Atom>& atoms() const { return atoms_; }
  std::size_t arity() const { return head_.size(); }
  bool IsBoolean() const { return head_.empty(); }

  /// All distinct variables of the body, in first-occurrence order.
  std::vector<Term> Variables() const;

  /// Distinct existential (non-free) variables.
  std::vector<Term> ExistentialVariables() const;

  /// Checks well-formedness: head terms are variables and each occurs in
  /// some body atom (safety), and predicate arities are used consistently
  /// within the query.
  Status Validate() const;

  /// "(x,y) <- R(x,z), S(z,y)".
  std::string ToString() const;

 private:
  std::vector<Term> head_;
  std::vector<Atom> atoms_;
};

/// A union of conjunctive queries: CQs over the same schema with heads of
/// equal arity.
class UnionQuery {
 public:
  explicit UnionQuery(std::vector<ConjunctiveQuery> disjuncts)
      : disjuncts_(std::move(disjuncts)) {}

  const std::vector<ConjunctiveQuery>& disjuncts() const { return disjuncts_; }
  std::size_t arity() const {
    return disjuncts_.empty() ? 0 : disjuncts_.front().arity();
  }

  /// Validates each disjunct and that all arities agree.
  Status Validate() const;

  std::string ToString() const;

 private:
  std::vector<ConjunctiveQuery> disjuncts_;
};

}  // namespace qcont

#endif  // QCONT_CQ_QUERY_H_

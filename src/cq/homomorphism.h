#ifndef QCONT_CQ_HOMOMORPHISM_H_
#define QCONT_CQ_HOMOMORPHISM_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/thread_pool.h"
#include "cq/database.h"
#include "cq/query.h"

namespace qcont {

/// A (partial) mapping from query variables to database values.
using Assignment = std::unordered_map<std::string, Value>;

/// Counters reported by the backtracking search; used by benchmarks as a
/// machine-independent cost signal. Stats are value-type accumulators:
/// every task of a parallel region fills its own instance, and the totals
/// are combined with `Merge` at the join, so no counter is ever shared
/// between threads and totals are identical for every thread count.
struct HomSearchStats {
  std::uint64_t atom_attempts = 0;     // candidate tuples tried
  std::uint64_t backtracks = 0;
  std::uint64_t index_probes = 0;      // hash-index lookups issued
  std::uint64_t index_candidates = 0;  // candidates enumerated via an index
  std::uint64_t scan_candidates = 0;   // candidates enumerated via full scan

  void Merge(const HomSearchStats& other) {
    atom_attempts += other.atom_attempts;
    backtracks += other.backtracks;
    index_probes += other.index_probes;
    index_candidates += other.index_candidates;
    scan_candidates += other.scan_candidates;
  }
};

/// Search configuration. The indexed path is the default; the scan path is
/// the pre-index reference implementation (static greedy atom order, full
/// relation scan per atom) kept for differential testing. `exec` controls
/// the fan-out of *independent* hom-checks in the UCQ containment loops
/// (UcqContained / CqContainedInUcq); a single FindHomomorphism search is
/// always serial.
struct HomSearchOptions {
  bool use_index = true;
  ExecContext exec;
};

/// Searches for a homomorphism from the body of `cq` into `db` that extends
/// the partial assignment `fixed`. This is the generic (NP) evaluation
/// procedure: backtracking over atoms. The indexed engine picks the next
/// atom dynamically by estimated candidate count and enumerates candidates
/// through per-relation hash indexes on the bound positions.
///
/// Returns the full assignment if one exists.
std::optional<Assignment> FindHomomorphism(
    const ConjunctiveQuery& cq, const Database& db,
    const Assignment& fixed = {}, HomSearchStats* stats = nullptr,
    const HomSearchOptions& options = {});

/// Enumerates homomorphisms, invoking `visit` for each; enumeration stops
/// early when `visit` returns false.
void EnumerateHomomorphisms(const ConjunctiveQuery& cq, const Database& db,
                            const Assignment& fixed,
                            const std::function<bool(const Assignment&)>& visit,
                            HomSearchStats* stats = nullptr,
                            const HomSearchOptions& options = {});

/// Generalization used by the semi-naive Datalog join: atom i is matched
/// against `*dbs[i]` (`atoms.size() == dbs.size()`), so a delta relation
/// can be joined against the full database without materializing their
/// union. The indexed engine requires all databases to share one value
/// pool (`Database::pool()`); if they do not, the call transparently falls
/// back to the scan engine, which is value-pool agnostic.
void EnumerateHomomorphismsOver(
    const std::vector<Atom>& atoms, const std::vector<const Database*>& dbs,
    const Assignment& fixed,
    const std::function<bool(const Assignment&)>& visit,
    HomSearchStats* stats = nullptr, const HomSearchOptions& options = {});

/// Evaluates cq(db): the set of distinct head tuples h(x̄) over all
/// homomorphisms h. For a Boolean query the result is {()} or {}.
std::vector<Tuple> EvaluateCq(const ConjunctiveQuery& cq, const Database& db,
                              HomSearchStats* stats = nullptr,
                              const HomSearchOptions& options = {});

/// Union of the disjunct evaluations, deduplicated and sorted.
std::vector<Tuple> EvaluateUcq(const UnionQuery& ucq, const Database& db,
                               HomSearchStats* stats = nullptr,
                               const HomSearchOptions& options = {});

}  // namespace qcont

#endif  // QCONT_CQ_HOMOMORPHISM_H_

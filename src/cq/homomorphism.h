#ifndef QCONT_CQ_HOMOMORPHISM_H_
#define QCONT_CQ_HOMOMORPHISM_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "base/thread_pool.h"
#include "cq/database.h"
#include "cq/query.h"
#include "obs/obs.h"

namespace qcont {

/// A (partial) mapping from query variables to database values.
using Assignment = std::unordered_map<std::string, Value>;

/// Counters reported by the backtracking search; used by benchmarks as a
/// machine-independent cost signal. Stats are value-type accumulators:
/// every task of a parallel region fills its own instance, and the totals
/// are combined with `Merge` at the join, so no counter is ever shared
/// between threads and totals are identical for every thread count.
struct HomSearchStats {
  /// Candidate tuples tried against an atom (one per extension attempt of
  /// the partial assignment, successful or not). Accumulates across runs.
  std::uint64_t atom_attempts = 0;
  /// Times the search retracted an atom binding after exhausting its
  /// candidates. Accumulates across runs.
  std::uint64_t backtracks = 0;
  /// Hash-index lookups issued by the indexed engine (one per atom
  /// expansion that went through an index). Accumulates across runs.
  std::uint64_t index_probes = 0;
  /// Candidates enumerated via an index (sum of probe result sizes).
  /// Accumulates across runs.
  std::uint64_t index_candidates = 0;
  /// Candidates enumerated via a full relation scan (the pre-index path,
  /// or atoms with no bound position). Accumulates across runs.
  std::uint64_t scan_candidates = 0;

  void Merge(const HomSearchStats& other) {
    atom_attempts += other.atom_attempts;
    backtracks += other.backtracks;
    index_probes += other.index_probes;
    index_candidates += other.index_candidates;
    scan_candidates += other.scan_candidates;
  }

  /// Publishes every field as a counter `<prefix>.<field>` (for example
  /// `cq.contain.hom.atom_attempts`). Call exactly once per run with the
  /// run-local deltas — never with an accumulating sink — so registry
  /// totals stay equal to the legacy stats totals.
  void PublishTo(MetricRegistry* metrics, const std::string& prefix) const {
    metrics->Add(prefix + ".atom_attempts", atom_attempts);
    metrics->Add(prefix + ".backtracks", backtracks);
    metrics->Add(prefix + ".index_probes", index_probes);
    metrics->Add(prefix + ".index_candidates", index_candidates);
    metrics->Add(prefix + ".scan_candidates", scan_candidates);
  }
};

/// Search configuration. The indexed path is the default; the scan path is
/// the pre-index reference implementation (static greedy atom order, full
/// relation scan per atom) kept for differential testing. `exec` controls
/// the fan-out of *independent* hom-checks in the UCQ containment loops
/// (UcqContained / CqContainedInUcq); a single FindHomomorphism search is
/// always serial.
struct HomSearchOptions {
  bool use_index = true;
  ExecContext exec;
  /// Optional observability sinks (spans + metrics), carried next to `exec`
  /// and borrowed from the caller. The UCQ containment entry points publish
  /// their run's stats under `cq.contain.hom.*` and emit `ucq/*` spans;
  /// plain evaluation entry points do not publish (their callers own the
  /// run boundary). See DESIGN.md §12.
  const ObsContext* obs = nullptr;
};

/// Searches for a homomorphism from the body of `cq` into `db` that extends
/// the partial assignment `fixed`. This is the generic (NP) evaluation
/// procedure: backtracking over atoms. The indexed engine picks the next
/// atom dynamically by estimated candidate count and enumerates candidates
/// through per-relation hash indexes on the bound positions.
///
/// Returns the full assignment if one exists.
std::optional<Assignment> FindHomomorphism(
    const ConjunctiveQuery& cq, const Database& db,
    const Assignment& fixed = {}, HomSearchStats* stats = nullptr,
    const HomSearchOptions& options = {});

/// Enumerates homomorphisms, invoking `visit` for each; enumeration stops
/// early when `visit` returns false.
void EnumerateHomomorphisms(const ConjunctiveQuery& cq, const Database& db,
                            const Assignment& fixed,
                            const std::function<bool(const Assignment&)>& visit,
                            HomSearchStats* stats = nullptr,
                            const HomSearchOptions& options = {});

/// Generalization used by the semi-naive Datalog join: atom i is matched
/// against `*dbs[i]` (`atoms.size() == dbs.size()`), so a delta relation
/// can be joined against the full database without materializing their
/// union. The indexed engine requires all databases to share one value
/// pool (`Database::pool()`); if they do not, the call transparently falls
/// back to the scan engine, which is value-pool agnostic.
void EnumerateHomomorphismsOver(
    const std::vector<Atom>& atoms, const std::vector<const Database*>& dbs,
    const Assignment& fixed,
    const std::function<bool(const Assignment&)>& visit,
    HomSearchStats* stats = nullptr, const HomSearchOptions& options = {});

/// As above, with the atoms' relation ids pre-resolved by the caller
/// (`rel_ids` parallel to `atoms`, `kNoRelation` for predicates without
/// facts). Lets compiled queries skip the per-call name resolution; an
/// empty `rel_ids` resolves the names through the pool as before.
void EnumerateHomomorphismsOver(
    const std::vector<Atom>& atoms, const std::vector<const Database*>& dbs,
    std::span<const RelationId> rel_ids, const Assignment& fixed,
    const std::function<bool(const Assignment&)>& visit,
    HomSearchStats* stats = nullptr, const HomSearchOptions& options = {});

/// Interned-row face of the indexed engine, for callers that consume
/// ValueIds directly (the semi-naive join): enumerates the homomorphisms of
/// `atoms` into `dbs` and hands each to `visit` as a var-slot → ValueId
/// vector aligned with `var_names()`, never materializing strings.
///
/// Only the indexed engine is wrapped: `valid()` is false when the
/// databases do not share a value pool or `options.use_index` is off, and
/// the caller must fall back to the string-level entry points (`Enumerate`
/// on an invalid enumerator is a no-op). `atoms`, `dbs` and `stats` are
/// borrowed and must outlive the enumerator; `fixed` is copied.
class RowEnumerator {
 public:
  /// `rel_ids` parallel to `atoms` (empty: resolve through the pool).
  RowEnumerator(const std::vector<Atom>& atoms,
                const std::vector<const Database*>& dbs,
                std::span<const RelationId> rel_ids, const Assignment& fixed,
                HomSearchStats* stats, const HomSearchOptions& options);
  ~RowEnumerator();
  RowEnumerator(const RowEnumerator&) = delete;
  RowEnumerator& operator=(const RowEnumerator&) = delete;

  bool valid() const;

  /// Variable names in slot order (deterministic first-occurrence order
  /// over the atoms as given). Available before Enumerate, so callers can
  /// map output positions (e.g. Datalog head terms) to slots up front.
  const std::vector<std::string>& var_names() const;

  /// Slot of `name` in the visit span, or -1 if the variable occurs in no
  /// atom.
  int VarSlot(std::string_view name) const;

  /// Runs the search; `visit` returns false to stop early. The span is
  /// only valid during the call. May be called at most once.
  void Enumerate(const std::function<bool(std::span<const ValueId>)>& visit);

 private:
  std::unique_ptr<class RowEnumeratorImpl> impl_;
};

/// Evaluates cq(db): the set of distinct head tuples h(x̄) over all
/// homomorphisms h. For a Boolean query the result is {()} or {}.
std::vector<Tuple> EvaluateCq(const ConjunctiveQuery& cq, const Database& db,
                              HomSearchStats* stats = nullptr,
                              const HomSearchOptions& options = {});

/// Union of the disjunct evaluations, deduplicated and sorted.
std::vector<Tuple> EvaluateUcq(const UnionQuery& ucq, const Database& db,
                               HomSearchStats* stats = nullptr,
                               const HomSearchOptions& options = {});

}  // namespace qcont

#endif  // QCONT_CQ_HOMOMORPHISM_H_

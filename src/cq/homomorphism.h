#ifndef QCONT_CQ_HOMOMORPHISM_H_
#define QCONT_CQ_HOMOMORPHISM_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "cq/database.h"
#include "cq/query.h"

namespace qcont {

/// A (partial) mapping from query variables to database values.
using Assignment = std::unordered_map<std::string, Value>;

/// Counters reported by the backtracking search; used by benchmarks as a
/// machine-independent cost signal.
struct HomSearchStats {
  std::uint64_t atom_attempts = 0;  // candidate tuples tried
  std::uint64_t backtracks = 0;
};

/// Searches for a homomorphism from the body of `cq` into `db` that extends
/// the partial assignment `fixed`. This is the generic (NP) evaluation
/// procedure: backtracking over atoms with a most-constrained-first order.
///
/// Returns the full assignment if one exists.
std::optional<Assignment> FindHomomorphism(const ConjunctiveQuery& cq,
                                           const Database& db,
                                           const Assignment& fixed = {},
                                           HomSearchStats* stats = nullptr);

/// Enumerates homomorphisms, invoking `visit` for each; enumeration stops
/// early when `visit` returns false.
void EnumerateHomomorphisms(const ConjunctiveQuery& cq, const Database& db,
                            const Assignment& fixed,
                            const std::function<bool(const Assignment&)>& visit,
                            HomSearchStats* stats = nullptr);

/// Evaluates cq(db): the set of distinct head tuples h(x̄) over all
/// homomorphisms h. For a Boolean query the result is {()} or {}.
std::vector<Tuple> EvaluateCq(const ConjunctiveQuery& cq, const Database& db,
                              HomSearchStats* stats = nullptr);

/// Union of the disjunct evaluations, deduplicated and sorted.
std::vector<Tuple> EvaluateUcq(const UnionQuery& ucq, const Database& db,
                               HomSearchStats* stats = nullptr);

}  // namespace qcont

#endif  // QCONT_CQ_HOMOMORPHISM_H_

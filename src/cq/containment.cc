#include "cq/containment.h"

#include "cq/database.h"

namespace qcont {

namespace {

// Chandra-Merlin check of theta_prime against the prebuilt canonical
// database / frozen head of theta (all inputs already validated).
Result<bool> ContainedInDisjunct(const ConjunctiveQuery& theta_prime,
                                 const Database& canonical,
                                 const Tuple& frozen_head,
                                 HomSearchStats* stats) {
  Assignment fixed;
  for (std::size_t i = 0; i < theta_prime.head().size(); ++i) {
    const std::string& var = theta_prime.head()[i].name();
    auto it = fixed.find(var);
    if (it != fixed.end()) {
      // Repeated head variable in theta': the corresponding positions of
      // theta's head must be frozen to the same value.
      if (it->second != frozen_head[i]) return false;
    } else {
      fixed.emplace(var, frozen_head[i]);
    }
  }
  return FindHomomorphism(theta_prime, canonical, fixed, stats).has_value();
}

// Sagiv-Yannakakis inner step: theta ⊆ some disjunct of theta_prime. The
// canonical database of theta is built once and shared across disjuncts.
Result<bool> CqInUcqPrevalidated(const ConjunctiveQuery& theta,
                                 const UnionQuery& theta_prime,
                                 HomSearchStats* stats) {
  Database canonical = CanonicalDatabase(theta);
  Tuple frozen_head = CanonicalHead(theta);
  for (const ConjunctiveQuery& disjunct : theta_prime.disjuncts()) {
    if (theta.arity() != disjunct.arity()) {
      return InvalidArgumentError("containment between queries of arities " +
                                  std::to_string(theta.arity()) + " and " +
                                  std::to_string(disjunct.arity()));
    }
    QCONT_ASSIGN_OR_RETURN(
        bool contained,
        ContainedInDisjunct(disjunct, canonical, frozen_head, stats));
    if (contained) return true;
  }
  return false;
}

}  // namespace

Result<bool> CqContained(const ConjunctiveQuery& theta,
                         const ConjunctiveQuery& theta_prime,
                         HomSearchStats* stats) {
  QCONT_RETURN_IF_ERROR(theta.Validate());
  QCONT_RETURN_IF_ERROR(theta_prime.Validate());
  if (theta.arity() != theta_prime.arity()) {
    return InvalidArgumentError("containment between queries of arities " +
                                std::to_string(theta.arity()) + " and " +
                                std::to_string(theta_prime.arity()));
  }
  Database canonical = CanonicalDatabase(theta);
  return ContainedInDisjunct(theta_prime, canonical, CanonicalHead(theta),
                             stats);
}

Result<bool> CqContainedInUcq(const ConjunctiveQuery& theta,
                              const UnionQuery& theta_prime,
                              HomSearchStats* stats) {
  QCONT_RETURN_IF_ERROR(theta.Validate());
  for (const ConjunctiveQuery& disjunct : theta_prime.disjuncts()) {
    QCONT_RETURN_IF_ERROR(disjunct.Validate());
  }
  return CqInUcqPrevalidated(theta, theta_prime, stats);
}

Result<bool> UcqContained(const UnionQuery& theta, const UnionQuery& theta_prime,
                          HomSearchStats* stats) {
  QCONT_RETURN_IF_ERROR(theta.Validate());
  QCONT_RETURN_IF_ERROR(theta_prime.Validate());
  for (const ConjunctiveQuery& disjunct : theta.disjuncts()) {
    QCONT_ASSIGN_OR_RETURN(bool contained,
                           CqInUcqPrevalidated(disjunct, theta_prime, stats));
    if (!contained) return false;
  }
  return true;
}

Result<bool> UcqEquivalent(const UnionQuery& a, const UnionQuery& b,
                           HomSearchStats* stats) {
  QCONT_ASSIGN_OR_RETURN(bool ab, UcqContained(a, b, stats));
  if (!ab) return false;
  return UcqContained(b, a, stats);
}

}  // namespace qcont

#include "cq/containment.h"

#include <atomic>
#include <cstddef>
#include <vector>

#include "base/check.h"
#include "base/thread_pool.h"
#include "cq/database.h"
#include "obs/obs.h"

namespace qcont {

namespace {

// Chandra-Merlin check of theta_prime against the prebuilt canonical
// database / frozen head of theta (all inputs already validated).
Result<bool> ContainedInDisjunct(const ConjunctiveQuery& theta_prime,
                                 const Database& canonical,
                                 const Tuple& frozen_head,
                                 HomSearchStats* stats,
                                 const HomSearchOptions& options) {
  Assignment fixed;
  for (std::size_t i = 0; i < theta_prime.head().size(); ++i) {
    const std::string& var = theta_prime.head()[i].name();
    auto it = fixed.find(var);
    if (it != fixed.end()) {
      // Repeated head variable in theta': the corresponding positions of
      // theta's head must be frozen to the same value.
      if (it->second != frozen_head[i]) return false;
    } else {
      fixed.emplace(var, frozen_head[i]);
    }
  }
  return FindHomomorphism(theta_prime, canonical, fixed, stats, options)
      .has_value();
}

// Sagiv-Yannakakis inner step: theta ⊆ some disjunct of theta_prime. The
// canonical database of theta is built once and shared across disjuncts.
Result<bool> CqInUcqPrevalidated(const ConjunctiveQuery& theta,
                                 const UnionQuery& theta_prime,
                                 HomSearchStats* stats,
                                 const HomSearchOptions& options) {
  Database canonical = CanonicalDatabase(theta);
  Tuple frozen_head = CanonicalHead(theta);
  for (const ConjunctiveQuery& disjunct : theta_prime.disjuncts()) {
    if (theta.arity() != disjunct.arity()) {
      return InvalidArgumentError("containment between queries of arities " +
                                  std::to_string(theta.arity()) + " and " +
                                  std::to_string(disjunct.arity()));
    }
    QCONT_ASSIGN_OR_RETURN(
        bool contained,
        ContainedInDisjunct(disjunct, canonical, frozen_head, stats, options));
    if (contained) return true;
  }
  return false;
}

inline void AtomicMin(std::atomic<std::size_t>* a, std::size_t v) {
  std::size_t cur = a->load(std::memory_order_relaxed);
  while (v < cur &&
         !a->compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

// ---------------------------------------------------------------------------
// Parallel Sagiv-Yannakakis: the disjunct×disjunct pair grid.
//
// The serial algorithm walks lefts in order until the first one refuted (or
// the first arity error), and for each left walks rights in order until the
// first one that folds in. The parallel version evaluates pairs
// speculatively across the pool, then *commits* outcomes by replaying that
// serial walk over the finished grid: only the pairs the serial walk would
// have executed contribute to `stats`, so answers, errors, and counter
// totals are bit-identical for every thread count. Speculative pairs that
// provably cannot be reached by the serial walk (they lie beyond a known
// fold-in/error on their row, or on a row below a known stopper row) are
// skipped via atomic frontiers — that is the cancellation path, and it only
// affects wall-clock time, never results.
// ---------------------------------------------------------------------------

struct PairOutcome {
  bool ran = false;
  bool contained = false;
  bool arity_error = false;
  HomSearchStats stats;
};

Result<bool> GridContained(const ConjunctiveQuery* lefts, std::size_t nl,
                           const UnionQuery& theta_prime, HomSearchStats* stats,
                           const HomSearchOptions& options) {
  const std::vector<ConjunctiveQuery>& rights = theta_prime.disjuncts();
  const std::size_t nr = rights.size();

  ObsSpan grid_span(options.obs, "ucq/grid");
  grid_span.AddArg("rows", nl);
  grid_span.AddArg("cols", nr);

  // Canonical databases are built up front: all pairs of one row share one
  // database (and its lazily built indexes — safe under concurrent const
  // probes, see Database).
  std::vector<Database> canonical;
  std::vector<Tuple> heads;
  canonical.reserve(nl);
  heads.reserve(nl);
  for (std::size_t i = 0; i < nl; ++i) {
    canonical.push_back(CanonicalDatabase(lefts[i]));
    heads.push_back(CanonicalHead(lefts[i]));
  }

  std::vector<PairOutcome> grid(nl * nr);
  // Cancellation frontiers. first_stop[i] = smallest j on row i known to
  // end the serial row walk (a fold-in or an arity error); stop_row = the
  // smallest row known to end the serial walk over rows (every pair ran,
  // and the first fold-in does not precede the first error — i.e. the row
  // is refuted or errors out). Only *observed* outcomes enter a frontier,
  // which is what guarantees that every pair on the serial path runs.
  std::vector<std::atomic<std::size_t>> first_hit(nl);
  std::vector<std::atomic<std::size_t>> first_err(nl);
  std::vector<std::atomic<std::size_t>> completed(nl);
  for (std::size_t i = 0; i < nl; ++i) {
    first_hit[i].store(nr, std::memory_order_relaxed);
    first_err[i].store(nr, std::memory_order_relaxed);
    completed[i].store(0, std::memory_order_relaxed);
  }
  std::atomic<std::size_t> stop_row{nl};

  ParallelFor(options.exec, nl * nr, [&](std::size_t idx) {
    const std::size_t i = idx / nr;
    const std::size_t j = idx % nr;
    if (i > stop_row.load(std::memory_order_relaxed)) return;
    const std::size_t hit = first_hit[i].load(std::memory_order_relaxed);
    const std::size_t err = first_err[i].load(std::memory_order_relaxed);
    if (j > hit || j > err) return;
    ObsSpan cell_span(options.obs, "ucq/grid_cell");
    cell_span.AddArg("row", i);
    cell_span.AddArg("col", j);
    PairOutcome& out = grid[idx];
    out.ran = true;
    if (lefts[i].arity() != rights[j].arity()) {
      out.arity_error = true;
      AtomicMin(&first_err[i], j);
    } else {
      Result<bool> pair = ContainedInDisjunct(rights[j], canonical[i],
                                              heads[i], &out.stats, options);
      // ContainedInDisjunct only fails on the arity precondition, which is
      // checked above; keep the invariant explicit.
      QCONT_CHECK(pair.ok());
      out.contained = *pair;
      if (out.contained) AtomicMin(&first_hit[i], j);
    }
    if (completed[i].fetch_add(1, std::memory_order_acq_rel) + 1 == nr) {
      // Row finished: it stops the serial walk unless the first fold-in
      // strictly precedes the first error.
      if (first_hit[i].load(std::memory_order_relaxed) >=
          first_err[i].load(std::memory_order_relaxed) ||
          first_hit[i].load(std::memory_order_relaxed) >= nr) {
        AtomicMin(&stop_row, i);
      }
    }
  });

  // Deterministic commit: replay the serial walk over the finished grid.
  for (std::size_t i = 0; i < nl; ++i) {
    bool found = false;
    for (std::size_t j = 0; j < nr; ++j) {
      const PairOutcome& out = grid[i * nr + j];
      QCONT_CHECK_MSG(out.ran, "speculative skip removed a serial-path pair");
      if (out.arity_error) {
        return InvalidArgumentError("containment between queries of arities " +
                                    std::to_string(lefts[i].arity()) + " and " +
                                    std::to_string(rights[j].arity()));
      }
      if (stats != nullptr) stats->Merge(out.stats);
      if (out.contained) {
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  return true;
}

// Dispatches between the serial walk and the pair grid. `lefts` spans the
// already-validated left-hand disjuncts.
Result<bool> ContainedPrevalidatedImpl(const ConjunctiveQuery* lefts,
                                       std::size_t nl,
                                       const UnionQuery& theta_prime,
                                       HomSearchStats* stats,
                                       const HomSearchOptions& options) {
  if (options.exec.threads <= 1 || nl * theta_prime.disjuncts().size() <= 1) {
    for (std::size_t i = 0; i < nl; ++i) {
      ObsSpan pair_span(options.obs, "ucq/pair");
      pair_span.AddArg("row", i);
      QCONT_ASSIGN_OR_RETURN(
          bool contained,
          CqInUcqPrevalidated(lefts[i], theta_prime, stats, options));
      if (!contained) return false;
    }
    return true;
  }
  return GridContained(lefts, nl, theta_prime, stats, options);
}

// Publish funnel for the UCQ entry points: when a metric sink is attached,
// the run's hom-search counters are gathered into a run-local struct and
// published once at the end — the same deltas that merge into the caller's
// legacy sink, which is what keeps the two views equal.
Result<bool> ContainedPrevalidated(const ConjunctiveQuery* lefts,
                                   std::size_t nl,
                                   const UnionQuery& theta_prime,
                                   HomSearchStats* stats,
                                   const HomSearchOptions& options) {
  MetricRegistry* metrics = ObsMetrics(options.obs);
  if (metrics == nullptr) {
    return ContainedPrevalidatedImpl(lefts, nl, theta_prime, stats, options);
  }
  HomSearchStats run;
  Result<bool> result =
      ContainedPrevalidatedImpl(lefts, nl, theta_prime, &run, options);
  run.PublishTo(metrics, "cq.contain.hom");
  if (stats != nullptr) stats->Merge(run);
  return result;
}

}  // namespace

Result<bool> CqContained(const ConjunctiveQuery& theta,
                         const ConjunctiveQuery& theta_prime,
                         HomSearchStats* stats,
                         const HomSearchOptions& options) {
  QCONT_RETURN_IF_ERROR(theta.Validate());
  QCONT_RETURN_IF_ERROR(theta_prime.Validate());
  if (theta.arity() != theta_prime.arity()) {
    return InvalidArgumentError("containment between queries of arities " +
                                std::to_string(theta.arity()) + " and " +
                                std::to_string(theta_prime.arity()));
  }
  Database canonical = CanonicalDatabase(theta);
  ObsSpan pair_span(options.obs, "ucq/pair");
  MetricRegistry* metrics = ObsMetrics(options.obs);
  if (metrics == nullptr) {
    return ContainedInDisjunct(theta_prime, canonical, CanonicalHead(theta),
                               stats, options);
  }
  HomSearchStats run;
  Result<bool> result = ContainedInDisjunct(
      theta_prime, canonical, CanonicalHead(theta), &run, options);
  run.PublishTo(metrics, "cq.contain.hom");
  if (stats != nullptr) stats->Merge(run);
  return result;
}

Result<bool> CqContainedInUcq(const ConjunctiveQuery& theta,
                              const UnionQuery& theta_prime,
                              HomSearchStats* stats,
                              const HomSearchOptions& options) {
  QCONT_RETURN_IF_ERROR(theta.Validate());
  for (const ConjunctiveQuery& disjunct : theta_prime.disjuncts()) {
    QCONT_RETURN_IF_ERROR(disjunct.Validate());
  }
  return ContainedPrevalidated(&theta, 1, theta_prime, stats, options);
}

Result<bool> UcqContained(const UnionQuery& theta, const UnionQuery& theta_prime,
                          HomSearchStats* stats,
                          const HomSearchOptions& options) {
  QCONT_RETURN_IF_ERROR(theta.Validate());
  QCONT_RETURN_IF_ERROR(theta_prime.Validate());
  return ContainedPrevalidated(theta.disjuncts().data(),
                               theta.disjuncts().size(), theta_prime, stats,
                               options);
}

Result<bool> UcqEquivalent(const UnionQuery& a, const UnionQuery& b,
                           HomSearchStats* stats,
                           const HomSearchOptions& options) {
  QCONT_ASSIGN_OR_RETURN(bool ab, UcqContained(a, b, stats, options));
  if (!ab) return false;
  return UcqContained(b, a, stats, options);
}

}  // namespace qcont

#ifndef QCONT_OBS_OBS_H_
#define QCONT_OBS_OBS_H_

#include <cstdint>
#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"

// QCONT_OBS_NOOP compiles the observability hooks out entirely: ObsSpan
// becomes an empty object and ObsCount/ObsGauge empty inline functions, so
// the engines carry zero instrumentation cost (not even the null-pointer
// branch). Configure with -DQCONT_OBS_NOOP=ON. Without it, an engine run
// with `obs == nullptr` (the default everywhere) pays one predictable
// branch per span/counter site — measured in DESIGN.md §12.

namespace qcont {

/// The observability context threaded through the engine option structs
/// (`HomSearchOptions`, `EvalOptions`, `TypeEngineOptions`, the ACk/ACRk
/// limits, ...), carried next to `ExecContext`. Both sinks are optional and
/// caller-owned; a null sink disables that half independently. The engines
/// never block on either: counters go through per-thread registry shards,
/// spans close at phase granularity.
struct ObsContext {
  MetricRegistry* metrics = nullptr;  // counter/gauge sink
  TraceSession* trace = nullptr;      // span sink
};

/// Adds `delta` to counter `name` if `obs` carries a metric sink.
inline void ObsCount(const ObsContext* obs, const std::string& name,
                     std::uint64_t delta) {
#ifndef QCONT_OBS_NOOP
  if (obs != nullptr && obs->metrics != nullptr) obs->metrics->Add(name, delta);
#else
  (void)obs;
  (void)name;
  (void)delta;
#endif
}

/// The metric sink of `obs`, or null if absent (always null under
/// QCONT_OBS_NOOP, so publication code guarded by this folds away). The
/// engines use this as the single gate for their run-local publish step.
inline MetricRegistry* ObsMetrics(const ObsContext* obs) {
#ifndef QCONT_OBS_NOOP
  return obs != nullptr ? obs->metrics : nullptr;
#else
  (void)obs;
  return nullptr;
#endif
}

/// Sets gauge `name` to `value` if `obs` carries a metric sink.
inline void ObsGauge(const ObsContext* obs, const std::string& name,
                     std::uint64_t value) {
#ifndef QCONT_OBS_NOOP
  if (obs != nullptr && obs->metrics != nullptr) {
    obs->metrics->SetGauge(name, value);
  }
#else
  (void)obs;
  (void)name;
  (void)value;
#endif
}

#ifndef QCONT_OBS_NOOP

/// RAII span: opens on construction, records a complete TraceEvent into the
/// context's TraceSession on destruction. A null `obs` (or null trace sink)
/// makes every member a cheap no-op, so spans can be placed unconditionally.
/// The event's `tid` is the pool worker id + 1 when constructed on a
/// `ThreadPool` worker, 0 otherwise — parallel phases render as one lane
/// per worker in Perfetto.
class ObsSpan {
 public:
  ObsSpan(const ObsContext* obs, const char* name, const char* cat = "qcont");
  ~ObsSpan();

  ObsSpan(const ObsSpan&) = delete;
  ObsSpan& operator=(const ObsSpan&) = delete;

  /// Attaches an integer argument (rendered by the trace viewers). Callable
  /// any time before destruction, so results computed inside the span can
  /// be attached on the way out.
  void AddArg(const char* key, std::uint64_t value);

 private:
  TraceSession* session_ = nullptr;
  TraceEvent event_;
};

#else  // QCONT_OBS_NOOP

class ObsSpan {
 public:
  ObsSpan(const ObsContext*, const char*, const char* = "qcont") {}
  ObsSpan(const ObsSpan&) = delete;
  ObsSpan& operator=(const ObsSpan&) = delete;
  void AddArg(const char*, std::uint64_t) {}
};

#endif  // QCONT_OBS_NOOP

}  // namespace qcont

#endif  // QCONT_OBS_OBS_H_

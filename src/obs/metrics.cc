#include "obs/metrics.h"

#include "base/check.h"

namespace qcont {

namespace {
// Registry serials validate the one-entry thread-local shard cache: a new
// registry constructed at a recycled address gets a fresh serial, so a
// stale cache entry can never alias it.
std::atomic<std::uint64_t> g_registry_serial{1};
}  // namespace

MetricRegistry::MetricRegistry()
    : serial_(g_registry_serial.fetch_add(1, std::memory_order_relaxed)) {}

MetricRegistry::~MetricRegistry() = default;

int MetricRegistry::Id(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  QCONT_CHECK_MSG(gauges_.find(name) == gauges_.end(),
                  "metric name already used as a gauge");
  auto it = ids_.find(name);
  if (it != ids_.end()) return it->second;
  QCONT_CHECK_MSG(names_.size() < static_cast<std::size_t>(kMaxMetrics),
                  "MetricRegistry counter name space exhausted");
  const int id = static_cast<int>(names_.size());
  names_.push_back(name);
  ids_.emplace(name, id);
  return id;
}

MetricRegistry::Shard* MetricRegistry::ShardForThisThread() {
  struct TlsCache {
    const MetricRegistry* reg = nullptr;
    std::uint64_t serial = 0;
    Shard* shard = nullptr;
  };
  static thread_local TlsCache cache;
  if (cache.reg == this && cache.serial == serial_) return cache.shard;
  std::lock_guard<std::mutex> lock(mu_);
  Shard*& slot = shard_of_[std::this_thread::get_id()];
  if (slot == nullptr) {
    shards_.push_back(std::make_unique<Shard>());
    slot = shards_.back().get();
  }
  cache = TlsCache{this, serial_, slot};
  return slot;
}

void MetricRegistry::Add(int id, std::uint64_t delta) {
  QCONT_CHECK_MSG(id >= 0 && id < kMaxMetrics, "metric id out of range");
  ShardForThisThread()->slots[id].fetch_add(delta, std::memory_order_relaxed);
}

void MetricRegistry::Add(const std::string& name, std::uint64_t delta) {
  Add(Id(name), delta);
}

void MetricRegistry::SetGauge(const std::string& name, std::uint64_t value) {
  std::lock_guard<std::mutex> lock(mu_);
  QCONT_CHECK_MSG(ids_.find(name) == ids_.end(),
                  "metric name already used as a counter");
  gauges_[name] = value;
}

std::map<std::string, std::uint64_t> MetricRegistry::Snapshot() const {
  std::map<std::string, std::uint64_t> out;
  std::lock_guard<std::mutex> lock(mu_);
  for (std::size_t i = 0; i < names_.size(); ++i) {
    std::uint64_t sum = 0;
    for (const auto& shard : shards_) {
      sum += shard->slots[i].load(std::memory_order_relaxed);
    }
    out[names_[i]] = sum;
  }
  for (const auto& [name, value] : gauges_) out[name] = value;
  return out;
}

std::uint64_t MetricRegistry::Value(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = ids_.find(name);
  if (it != ids_.end()) {
    std::uint64_t sum = 0;
    for (const auto& shard : shards_) {
      sum += shard->slots[it->second].load(std::memory_order_relaxed);
    }
    return sum;
  }
  auto gauge = gauges_.find(name);
  return gauge != gauges_.end() ? gauge->second : 0;
}

std::size_t MetricRegistry::num_shards() const {
  std::lock_guard<std::mutex> lock(mu_);
  return shards_.size();
}

}  // namespace qcont

#include "obs/obs.h"

#ifndef QCONT_OBS_NOOP

#include "base/thread_pool.h"

namespace qcont {

ObsSpan::ObsSpan(const ObsContext* obs, const char* name, const char* cat) {
  if (obs == nullptr || obs->trace == nullptr) return;
  session_ = obs->trace;
  event_.name = name;
  event_.cat = cat;
  event_.tid = ThreadPool::CurrentWorkerId() + 1;
  event_.ts_us = session_->NowUs();
}

ObsSpan::~ObsSpan() {
  if (session_ == nullptr) return;
  event_.dur_us = session_->NowUs() - event_.ts_us;
  session_->Record(std::move(event_));
}

void ObsSpan::AddArg(const char* key, std::uint64_t value) {
  if (session_ == nullptr) return;
  event_.args.emplace_back(key, value);
}

}  // namespace qcont

#endif  // QCONT_OBS_NOOP

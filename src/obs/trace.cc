#include "obs/trace.h"

#include <cstdio>
#include <fstream>

namespace qcont {

namespace {

// Escapes a string for a JSON string literal. Span names are code-chosen
// ([a-z0-9_/.] by convention), but arg keys and categories flow through
// here too, so stay correct for arbitrary input.
void AppendEscaped(std::string* out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      case '\r': *out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

void AppendNumber(std::string* out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  *out += buf;
}

}  // namespace

void TraceSession::Record(TraceEvent event) {
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(event));
}

std::size_t TraceSession::NumEvents() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::vector<TraceEvent> TraceSession::Events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

std::map<std::string, double> TraceSession::DurationTotalsUs() const {
  std::map<std::string, double> out;
  std::lock_guard<std::mutex> lock(mu_);
  for (const TraceEvent& e : events_) out[e.name] += e.dur_us;
  return out;
}

std::string TraceSession::ToJson() const {
  const std::vector<TraceEvent> events = Events();
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& e : events) {
    if (!first) out += ",";
    first = false;
    out += "\n{\"name\":\"";
    AppendEscaped(&out, e.name);
    out += "\",\"cat\":\"";
    AppendEscaped(&out, e.cat);
    out += "\",\"ph\":\"X\",\"ts\":";
    AppendNumber(&out, e.ts_us);
    out += ",\"dur\":";
    AppendNumber(&out, e.dur_us);
    out += ",\"pid\":1,\"tid\":" + std::to_string(e.tid);
    if (!e.args.empty()) {
      out += ",\"args\":{";
      bool first_arg = true;
      for (const auto& [key, value] : e.args) {
        if (!first_arg) out += ",";
        first_arg = false;
        out += "\"";
        AppendEscaped(&out, key);
        out += "\":" + std::to_string(value);
      }
      out += "}";
    }
    out += "}";
  }
  out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

Status TraceSession::WriteFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return InvalidArgumentError("cannot open trace file: " + path);
  out << ToJson();
  out.flush();
  if (!out) return InternalError("failed writing trace file: " + path);
  return Status::Ok();
}

}  // namespace qcont

#ifndef QCONT_OBS_METRICS_H_
#define QCONT_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

namespace qcont {

/// A registry of named metrics, designed so that the engine hot paths can
/// bump counters from pool workers without ever contending on a lock.
///
/// Two metric families, in disjoint name spaces (a name must not be used as
/// both — `SetGauge` on a counter name, or `Add` on a gauge name, trips a
/// check):
///
///  - **Counters** are monotonic accumulators. Each thread that calls
///    `Add` gets its own *shard* (a fixed array of relaxed atomics, created
///    once per thread under the registry mutex and cached thread-locally),
///    so concurrent `Add`s never share a cache line with a lock and never
///    wait on each other; `Snapshot`/`Value` sum the shards. Counter totals
///    inherit the engines' determinism contract: the per-thread split is
///    schedule-dependent, the sum is not.
///  - **Gauges** are last-write-wins snapshot values (`SetGauge`), for
///    quantities with assignment semantics such as `typeengine.kinds` or
///    `decomp.width_used`. Gauges are rare and mutex-guarded.
///
/// The canonical metric names emitted by the engines are catalogued in
/// DESIGN.md §12. The registry itself is name-agnostic.
///
/// Lifetime: shards are owned by the registry; a thread that exits simply
/// leaves its shard behind (counters are never lost). A thread id reused by
/// the OS after a thread exit may alias the old thread's shard, which is
/// harmless for monotonic sums. Destroying a registry while another thread
/// is still adding to it is a caller bug, as with any object.
class MetricRegistry {
 public:
  /// Capacity of a shard: at most this many distinct counter names per
  /// registry. The engines define ~50 canonical names; the rest is user
  /// headroom. Exceeding it is a programming error (checked).
  static constexpr int kMaxMetrics = 256;

  MetricRegistry();
  ~MetricRegistry();

  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  /// Interns `name` as a counter and returns its dense id (stable for the
  /// registry's lifetime). Idempotent; mutex-guarded — resolve once and
  /// reuse the id on genuinely hot paths.
  int Id(const std::string& name);

  /// Adds `delta` to the counter `id` via the calling thread's shard.
  /// Lock-free after the thread's first call into this registry.
  void Add(int id, std::uint64_t delta);

  /// Convenience: `Add(Id(name), delta)`. Pays the id-lookup mutex; meant
  /// for merge points and flush paths, not per-tuple loops.
  void Add(const std::string& name, std::uint64_t delta);

  /// Sets the gauge `name` to `value` (last write wins).
  void SetGauge(const std::string& name, std::uint64_t value);

  /// All metrics by name: counters summed over the shards, gauges at their
  /// last set value. Safe to call concurrently with `Add` (in-flight adds
  /// land in this snapshot or the next one, never nowhere).
  std::map<std::string, std::uint64_t> Snapshot() const;

  /// Value of one metric (counter sum or gauge); 0 if never touched.
  std::uint64_t Value(const std::string& name) const;

  /// Number of per-thread shards created so far (diagnostics/tests).
  std::size_t num_shards() const;

 private:
  struct Shard {
    std::array<std::atomic<std::uint64_t>, kMaxMetrics> slots{};
  };

  Shard* ShardForThisThread();

  const std::uint64_t serial_;  // process-unique; validates the TLS cache
  mutable std::mutex mu_;       // names, gauges, shard registration
  std::vector<std::string> names_;
  std::unordered_map<std::string, int> ids_;
  std::map<std::string, std::uint64_t> gauges_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::unordered_map<std::thread::id, Shard*> shard_of_;
};

}  // namespace qcont

#endif  // QCONT_OBS_METRICS_H_

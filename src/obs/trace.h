#ifndef QCONT_OBS_TRACE_H_
#define QCONT_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "base/status.h"

namespace qcont {

/// One completed span, Chrome trace_event flavoured: a "complete" event
/// (`"ph":"X"`) with a wall-clock interval and integer args. Timestamps are
/// microseconds since the owning session's construction (steady clock).
struct TraceEvent {
  std::string name;  // span name, `<engine>/<phase>` (DESIGN.md §12)
  std::string cat;   // coarse category, e.g. "qcont", "cli", "db"
  double ts_us = 0;  // start, µs since session start
  double dur_us = 0; // duration, µs
  int tid = 0;       // 0 = calling thread, w+1 = pool worker w
  std::vector<std::pair<std::string, std::uint64_t>> args;
};

/// Collects TraceEvents and serializes them as Chrome trace_event JSON
/// (the JSON-array-of-objects form under "traceEvents"), loadable in
/// Perfetto / chrome://tracing. Recording is mutex-guarded: spans close at
/// phase granularity (fixpoint rounds, grid cells, index builds), far below
/// any contention-relevant frequency.
///
/// Wall-clock times are machine- and schedule-dependent by nature; a trace
/// is a profile, never a benchmark-shape signal (counters are — see the
/// determinism contract in DESIGN.md §11/§12).
class TraceSession {
 public:
  TraceSession() : start_(std::chrono::steady_clock::now()) {}

  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  /// Microseconds elapsed since the session was constructed.
  double NowUs() const {
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

  /// Appends one completed event. Thread-safe.
  void Record(TraceEvent event);

  std::size_t NumEvents() const;

  /// Copy of all events recorded so far, in recording order.
  std::vector<TraceEvent> Events() const;

  /// Total recorded duration (µs) per span name — the per-phase wall-time
  /// aggregation used by the benchmark JSON columns. Nested spans are *not*
  /// de-overlapped: a parent's total includes time also attributed to its
  /// children (exactly as chrome://tracing renders it).
  std::map<std::string, double> DurationTotalsUs() const;

  /// The full trace as Chrome trace_event JSON:
  /// `{"traceEvents":[...], "displayTimeUnit":"ms"}`. Schema documented in
  /// DESIGN.md §12 and machine-checked by tools/check_trace.py.
  std::string ToJson() const;

  /// Writes ToJson() to `path`.
  Status WriteFile(const std::string& path) const;

 private:
  const std::chrono::steady_clock::time_point start_;
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
};

}  // namespace qcont

#endif  // QCONT_OBS_TRACE_H_

#include "base/interner.h"

namespace qcont {

SymbolId Interner::Intern(std::string_view name) {
  auto it = ids_.find(std::string(name));
  if (it != ids_.end()) return it->second;
  SymbolId id = static_cast<SymbolId>(names_.size());
  names_.emplace_back(name);
  ids_.emplace(names_.back(), id);
  return id;
}

SymbolId Interner::Find(std::string_view name) const {
  auto it = ids_.find(std::string(name));
  if (it == ids_.end()) return kMissing;
  return it->second;
}

}  // namespace qcont

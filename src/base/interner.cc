#include "base/interner.h"

#include <mutex>

namespace qcont {

SymbolId Interner::Intern(std::string_view name) {
  {
    std::shared_lock<std::shared_mutex> lock(*mu_);
    auto it = ids_.find(std::string(name));
    if (it != ids_.end()) return it->second;
  }
  std::unique_lock<std::shared_mutex> lock(*mu_);
  // Double-check: another thread may have interned between the locks.
  auto it = ids_.find(std::string(name));
  if (it != ids_.end()) return it->second;
  SymbolId id = static_cast<SymbolId>(names_.size());
  names_.emplace_back(name);
  ids_.emplace(names_.back(), id);
  return id;
}

SymbolId Interner::Find(std::string_view name) const {
  std::shared_lock<std::shared_mutex> lock(*mu_);
  auto it = ids_.find(std::string(name));
  if (it == ids_.end()) return kMissing;
  return it->second;
}

const std::string& Interner::NameOf(SymbolId id) const {
  std::shared_lock<std::shared_mutex> lock(*mu_);
  return names_[id];
}

std::size_t Interner::size() const {
  std::shared_lock<std::shared_mutex> lock(*mu_);
  return names_.size();
}

}  // namespace qcont

#ifndef QCONT_BASE_INTERNER_H_
#define QCONT_BASE_INTERNER_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>

namespace qcont {

/// Dense integer id handed out by an Interner. Ids are consecutive from 0 so
/// they can index vectors directly.
using SymbolId = std::uint32_t;

/// Maps strings to dense ids and back. Used for relation names, variable
/// names and alphabet symbols so the rest of the library works on integers.
///
/// Thread safety: all members may be called concurrently. `Intern` takes an
/// exclusive lock only when the name is new (double-checked under a shared
/// lock first), `Find`/`NameOf`/`size` take a shared lock. Names live in a
/// deque, so the reference returned by `NameOf` stays valid for the
/// interner's lifetime even while other threads intern new names. This is
/// what lets a long-running server share one value pool across concurrently
/// processed requests (DESIGN.md §15); id assignment then depends on
/// request interleaving, but each Database's own ids stay internally
/// consistent and all externally visible artifacts are strings.
///
/// Moving is allowed (engine-internal interners live in movable state
/// structs) but is NOT thread-safe: never move an interner other threads
/// may be touching. The moved-from interner is left valid and empty (it
/// keeps a live mutex), so accidental use degrades to an empty interner
/// instead of a null-mutex dereference.
class Interner {
 public:
  Interner() : mu_(std::make_unique<std::shared_mutex>()) {}
  Interner(Interner&& other)
      : mu_(std::make_unique<std::shared_mutex>()),
        ids_(std::move(other.ids_)),
        names_(std::move(other.names_)) {
    mu_.swap(other.mu_);  // take the old mutex, leave the fresh one behind
    other.ids_.clear();
    other.names_.clear();
  }
  Interner& operator=(Interner&& other) {
    if (this != &other) {
      mu_.swap(other.mu_);  // both stay non-null
      ids_ = std::move(other.ids_);
      names_ = std::move(other.names_);
      other.ids_.clear();
      other.names_.clear();
    }
    return *this;
  }

  /// Returns the id of `name`, creating one if it is new.
  SymbolId Intern(std::string_view name);

  /// Returns the id of `name`, or `kMissing` if never interned.
  static constexpr SymbolId kMissing = static_cast<SymbolId>(-1);
  SymbolId Find(std::string_view name) const;

  /// Name for an id handed out by this interner. The reference is stable
  /// for the interner's lifetime.
  const std::string& NameOf(SymbolId id) const;

  std::size_t size() const;

 private:
  // Behind a pointer so the interner itself stays movable.
  mutable std::unique_ptr<std::shared_mutex> mu_;
  std::unordered_map<std::string, SymbolId> ids_;
  std::deque<std::string> names_;  // deque: stable refs under growth
};

}  // namespace qcont

#endif  // QCONT_BASE_INTERNER_H_

#ifndef QCONT_BASE_INTERNER_H_
#define QCONT_BASE_INTERNER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace qcont {

/// Dense integer id handed out by an Interner. Ids are consecutive from 0 so
/// they can index vectors directly.
using SymbolId = std::uint32_t;

/// Maps strings to dense ids and back. Used for relation names, variable
/// names and alphabet symbols so the rest of the library works on integers.
class Interner {
 public:
  Interner() = default;

  /// Returns the id of `name`, creating one if it is new.
  SymbolId Intern(std::string_view name);

  /// Returns the id of `name`, or `kMissing` if never interned.
  static constexpr SymbolId kMissing = static_cast<SymbolId>(-1);
  SymbolId Find(std::string_view name) const;

  /// Name for an id handed out by this interner.
  const std::string& NameOf(SymbolId id) const { return names_[id]; }

  std::size_t size() const { return names_.size(); }

 private:
  std::unordered_map<std::string, SymbolId> ids_;
  std::vector<std::string> names_;
};

}  // namespace qcont

#endif  // QCONT_BASE_INTERNER_H_

#ifndef QCONT_BASE_THREAD_POOL_H_
#define QCONT_BASE_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace qcont {

/// Counters reported by the execution substrate. Unlike the engine counters
/// (`atom_attempts`, `combos`, ...), these are *schedule-dependent*: steal
/// counts and task placement vary run to run and with the thread count.
/// They are diagnostics for tuning, never benchmark shape signals.
struct ExecStats {
  std::uint64_t parallel_regions = 0;  // ParallelFor calls that fanned out
  std::uint64_t tasks = 0;             // loop bodies executed
  std::uint64_t steals = 0;            // tasks taken from another worker
  std::uint64_t splits = 0;            // range-splitting events

  void Merge(const ExecStats& other) {
    parallel_regions += other.parallel_regions;
    tasks += other.tasks;
    steals += other.steals;
    splits += other.splits;
  }
};

/// Execution context threaded through the engine option structs
/// (`HomSearchOptions`, `EvalOptions`, `TypeEngineOptions`). `threads <= 1`
/// means "run serially on the calling thread" and is the default: every
/// engine stays single-threaded unless a caller opts in.
///
/// Determinism contract: the engines guarantee that answers, derived
/// databases, and all machine-independent counters are identical for every
/// value of `threads` — parallelism only changes wall-clock time (and the
/// schedule-dependent `ExecStats`). See DESIGN.md §11.
struct ExecContext {
  int threads = 1;
  ExecStats* stats = nullptr;  // optional sink, owned by the caller
};

/// A fixed-size work-stealing thread pool.
///
/// Each worker owns a deque of tasks guarded by a small mutex: the owner
/// pushes and pops at the back (LIFO, cache-friendly), idle workers steal
/// from the front of a victim's deque (FIFO, oldest == largest ranges).
/// `ParallelFor` seeds one contiguous index chunk per worker; a worker
/// executing a range larger than one iteration repeatedly splits off the
/// upper half back onto its own deque (lazy binary splitting), which is
/// what thieves then pick up — load balance emerges without a central
/// queue.
///
/// Pools are usually not constructed directly: `qcont::ParallelFor` below
/// acquires a process-wide shared pool per thread count.
class ThreadPool {
 public:
  /// Spawns `num_workers` worker threads (at least 1).
  explicit ThreadPool(int num_workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_workers() const { return static_cast<int>(workers_.size()); }

  /// Runs `body(i)` for every i in [0, n), distributed over the workers,
  /// and blocks until all iterations have finished. The calling thread
  /// does not execute iterations itself. If a body throws, remaining
  /// iterations are skipped (best-effort) and the first exception is
  /// rethrown here. Nested calls from inside a worker run serially.
  void ParallelFor(std::size_t n, const std::function<void(std::size_t)>& body,
                   ExecStats* stats = nullptr);

  /// The process-wide shared pool with exactly `threads` workers, created
  /// on first use. Pools persist for the life of the process (workers park
  /// on a condition variable while idle).
  static std::shared_ptr<ThreadPool> Shared(int threads);

  /// True while the calling thread is a pool worker executing a task; used
  /// to degrade nested parallel regions to serial loops.
  static bool InWorker();

  /// The calling thread's worker index within its pool, or -1 when the
  /// caller is not a pool worker. Stable for the worker's lifetime; used by
  /// the observability layer to lane trace spans per worker (DESIGN.md §12)
  /// and by the database's striped probe counters, so it is inline — one
  /// thread-local read, no call, on counter hot paths.
  static int CurrentWorkerId();

 private:
  struct Batch;  // one ParallelFor call
  struct Task {  // a contiguous iteration range of one batch
    Batch* batch;
    std::size_t begin;
    std::size_t end;
  };
  struct Worker {
    std::mutex mu;
    std::deque<Task> deque;
  };

  void WorkerLoop(int self);
  void RunTask(Task task, int self);
  void PushLocal(int self, Task task);
  bool TryPop(int self, Task* task);
  bool TrySteal(int self, Task* task);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;
  std::mutex mu_;  // guards sleeping workers and stop_
  std::condition_variable work_cv_;
  std::atomic<std::size_t> pending_{0};  // queued (not yet executing) tasks
  bool stop_ = false;
};

namespace internal {
// Worker-identity thread-locals (written by WorkerLoop, read everywhere).
// Declared here so the accessors below inline to a single TLS load.
extern thread_local bool t_in_worker;
extern thread_local int t_worker_id;
}  // namespace internal

inline bool ThreadPool::InWorker() { return internal::t_in_worker; }

inline int ThreadPool::CurrentWorkerId() { return internal::t_worker_id; }

/// Runs `body(i)` for every i in [0, n). Serial (in index order, on the
/// calling thread) when `ctx.threads <= 1`, when n <= 1, or when already
/// inside a pool worker; otherwise fans out over the shared pool with
/// `ctx.threads` workers. Blocking; rethrows the first body exception.
void ParallelFor(const ExecContext& ctx, std::size_t n,
                 const std::function<void(std::size_t)>& body);

/// Maps i -> fn(i) into a vector of size n (slot i written by iteration i,
/// so the result order is deterministic regardless of schedule). T must be
/// default-constructible and movable.
template <typename T, typename Fn>
std::vector<T> ParallelMap(const ExecContext& ctx, std::size_t n, Fn&& fn) {
  std::vector<T> out(n);
  ParallelFor(ctx, n, [&](std::size_t i) { out[i] = fn(i); });
  return out;
}

}  // namespace qcont

#endif  // QCONT_BASE_THREAD_POOL_H_

#ifndef QCONT_BASE_FLAT_SET_H_
#define QCONT_BASE_FLAT_SET_H_

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "base/check.h"
#include "base/hash.h"
#include "base/simd.h"

namespace qcont {

/// Open-addressing set of nonzero 64-bit keys with a 1-byte tag array
/// filtered by the SIMD group compare of base/simd.h — the same kernel
/// shape as the Database probe tables, packaged for engine-local key sets
/// (e.g. the Yannakakis semijoin passes, which build one key set per join
/// edge and discard it). Keys must be nonzero: callers pack values with the
/// same +1 bias the probe tables use. Not thread-safe; single-writer
/// ephemeral use only.
class FlatU64Set {
 public:
  FlatU64Set() = default;
  explicit FlatU64Set(std::size_t expected_keys) { Reserve(expected_keys); }

  /// Grows so `n` keys stay under 7/8 load (growth rehashes every key).
  void Reserve(std::size_t n) {
    std::size_t cap = slots_.size();
    if (cap != 0 && n * 8 <= cap * 7) return;
    std::size_t new_cap = cap == 0 ? kGroupWidth : cap;
    while (n * 8 > new_cap * 7) new_cap <<= 1;
    Rehash(new_cap);
  }

  /// Inserts `key` (nonzero); returns true if newly added.
  bool Insert(std::uint64_t key) {
    QCONT_CHECK_MSG(key != 0, "FlatU64Set keys must be nonzero");
    Reserve(used_ + 1);
    const std::uint64_t h = Mix64(key);
    const std::size_t slot = FindSlot(key, h);
    if (slots_[slot] == key) return false;
    slots_[slot] = key;
    SetTag(slot, TagOf(h));
    ++used_;
    return true;
  }

  bool Contains(std::uint64_t key) const {
    if (slots_.empty()) return false;
    const std::uint64_t h = Mix64(key);
    return slots_[FindSlot(key, h)] == key;
  }

  std::size_t size() const { return used_; }
  bool empty() const { return used_ == 0; }

 private:
  static constexpr std::size_t kGroupWidth = 16;

  static std::uint8_t TagOf(std::uint64_t h) {
    return static_cast<std::uint8_t>(h >> 56) | 0x80u;
  }

  // Tag writes mirror the first group past the end so a group load starting
  // at any slot index stays in bounds.
  void SetTag(std::size_t slot, std::uint8_t tag) {
    tags_[slot] = tag;
    if (slot < kGroupWidth) tags_[slots_.size() + slot] = tag;
  }

  // Slot holding `key`, or the empty slot where it would go: scan 16-slot
  // groups from the home slot; tag matches select candidates for the full
  // compare, the first empty tag terminates the probe sequence.
  std::size_t FindSlot(std::uint64_t key, std::uint64_t h) const {
    const std::size_t cap_mask = slots_.size() - 1;
    const std::uint8_t tag = TagOf(h);
    std::size_t i = h & cap_mask;
    while (true) {
      const std::uint8_t* group = tags_.data() + i;
      std::uint32_t match = MatchBytes16(group, tag);
      const std::uint32_t empty = MatchBytes16(group, 0);
      const std::uint32_t stop =
          empty != 0 ? static_cast<std::uint32_t>(std::countr_zero(empty))
                     : static_cast<std::uint32_t>(kGroupWidth);
      match &= stop >= 32 ? ~0u : ((1u << stop) - 1u);
      while (match != 0) {
        const std::uint32_t b =
            static_cast<std::uint32_t>(std::countr_zero(match));
        match &= match - 1;
        const std::size_t s = (i + b) & cap_mask;
        if (slots_[s] == key) return s;
      }
      if (empty != 0) return (i + stop) & cap_mask;
      i = (i + kGroupWidth) & cap_mask;
    }
  }

  void Rehash(std::size_t new_cap) {
    std::vector<std::uint64_t> old = std::move(slots_);
    slots_.assign(new_cap, 0);
    tags_.assign(new_cap + kGroupWidth, 0);
    const std::size_t cap_mask = new_cap - 1;
    for (std::uint64_t key : old) {
      if (key == 0) continue;
      const std::uint64_t h = Mix64(key);
      std::size_t i = h & cap_mask;
      while (slots_[i] != 0) i = (i + 1) & cap_mask;
      slots_[i] = key;
      SetTag(i, TagOf(h));
    }
  }

  std::vector<std::uint64_t> slots_;  // power-of-two capacity; 0 = empty
  std::vector<std::uint8_t> tags_;    // capacity + 16, mirrored head
  std::size_t used_ = 0;
};

}  // namespace qcont

#endif  // QCONT_BASE_FLAT_SET_H_

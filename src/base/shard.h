#ifndef QCONT_BASE_SHARD_H_
#define QCONT_BASE_SHARD_H_

#include <atomic>
#include <cstdint>

#include "base/check.h"

namespace qcont {

/// Hash-shard routing for the sharded relation storage (DESIGN.md §17,
/// ARCHITECTURE.md). A relation's rows are partitioned into `shards`
/// disjoint (arena, probe-table) pairs by the row-key hash, so parallel
/// writers append and deduplicate shard-locally with no shared locks.
///
/// Routing contract — stable, documented for a future multi-node split:
/// a row with key hash `h` (the same splitmix64 `Mix64` finalizer the
/// FlatIndex probe tables use, see `Database::HashKey`) belongs to shard
///
///     ShardOf(h, P) = floor(high32(h) * P / 2^32)
///
/// i.e. the *top* 32 hash bits mapped onto [0, P) by fixed-point
/// multiplication (Lemire's fastrange). Properties the storage layer and
/// any future split rely on:
///  - works for any P >= 1, including non-power-of-two shard counts;
///  - ShardOf(h, 1) == 0 for every h, so P=1 routes all rows to shard 0
///    and the layout degenerates to the unsharded one bit for bit;
///  - disjoint from the bits that pick the slot *within* a shard's probe
///    table (the low `log2(capacity)` bits) and from the 7-bit Swiss tag
///    (bits 56..62), so sharding does not degrade either distribution.
inline std::uint32_t ShardOf(std::uint64_t h, std::uint32_t shards) {
  return static_cast<std::uint32_t>((h >> 32) * shards >> 32);
}

/// Upper bound on the shard count of one database. Purely a sanity bound:
/// shards cost ~1 KB each per relation at rest, and past the worker count
/// extra shards only add merge bookkeeping.
inline constexpr int kMaxShards = 256;

/// Debug-build validator for the freeze contract of the concurrency model
/// (ARCHITECTURE.md): a database handed to a parallel region is *frozen* —
/// concurrent probes are lock-free precisely because no mutation runs
/// until the barrier. Mutating entry points bump a relaxed epoch counter;
/// a guard constructed at the top of a lock-free read path re-checks the
/// epoch on destruction and aborts if a mutation raced the read. Compiled
/// out entirely in NDEBUG builds (the sanitizer CI legs build Debug, so
/// the contract stays exercised without taxing release probes).
class EpochReadGuard {
 public:
#ifndef NDEBUG
  explicit EpochReadGuard(const std::atomic<std::uint64_t>& epoch)
      : epoch_(&epoch), seen_(epoch.load(std::memory_order_relaxed)) {}
  ~EpochReadGuard() {
    QCONT_CHECK_MSG(epoch_->load(std::memory_order_relaxed) == seen_,
                    "database mutated during a lock-free read "
                    "(freeze-during-parallel-region contract violated)");
  }

 private:
  const std::atomic<std::uint64_t>* epoch_;
  std::uint64_t seen_;
#else
  explicit EpochReadGuard(const std::atomic<std::uint64_t>&) {}
#endif
  EpochReadGuard(const EpochReadGuard&) = delete;
  EpochReadGuard& operator=(const EpochReadGuard&) = delete;
};

}  // namespace qcont

#endif  // QCONT_BASE_SHARD_H_

#ifndef QCONT_BASE_SIMD_H_
#define QCONT_BASE_SIMD_H_

/// Portable byte-wise SIMD primitives for the tag-filtered probe kernels
/// (DESIGN.md §16). The probe tables keep a 1-byte tag per slot (7 hash
/// bits + a set high bit; 0 marks an empty slot), so a single vector
/// compare over a 16-slot probe group filters the group down to the slots
/// that can possibly hold a key before any full key compare runs.
///
/// Three implementations share one contract:
///   - SSE2 on x86-64 (always available there),
///   - NEON on AArch64,
///   - a scalar SWAR fallback, also selected by -DQCONT_NO_SIMD.
/// All three return *identical* bitmasks for identical inputs — bit i of a
/// mask corresponds to byte i of the group — so a scalar build produces
/// bit-identical probe results AND bit-identical probe counters to a
/// vector build (the counters are derived from these masks only). The
/// differential suite (tests/probe_kernel_test.cc) pins the SIMD paths
/// against `MatchBytes16Scalar` on random inputs; CI builds the scalar
/// fallback in a dedicated QCONT_NO_SIMD matrix leg.

#include <cstdint>
#include <cstring>

#if !defined(QCONT_NO_SIMD)
#if defined(__SSE2__) || (defined(_M_X64) && !defined(_M_ARM64EC))
#define QCONT_SIMD_SSE2 1
#include <emmintrin.h>
#elif defined(__ARM_NEON) || defined(__aarch64__)
#define QCONT_SIMD_NEON 1
#include <arm_neon.h>
#endif
#endif  // !QCONT_NO_SIMD

namespace qcont {

/// Which kernel this build selected; surfaced by benches and the CLI so a
/// JSON capture records what it measured.
inline const char* SimdKernelName() {
#if defined(QCONT_SIMD_SSE2)
  return "sse2";
#elif defined(QCONT_SIMD_NEON)
  return "neon";
#else
  return "scalar";
#endif
}

/// Best-effort read prefetch of the cache line holding `p` (no-op where
/// unsupported). `ProbeMany` issues these over a key block's home slots a
/// fixed distance ahead of the resolving pass.
inline void PrefetchRead(const void* p) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, /*rw=*/0, /*locality=*/1);
#else
  (void)p;
#endif
}

/// Scalar SWAR reference: bit i of the result is set iff tags[i] == needle,
/// for i in [0, 8). Zero-byte detection on the XOR-ed word must be exact
/// per byte, so it uses the carry-free form ~((lo7 + 0x7f..) | x | 0x7f..)
/// — the borrow-based (x - 0x01..) & ~x & 0x80.. trick falsely flags bytes
/// above a true zero and would desync the mask from the vector kernels.
inline std::uint32_t MatchBytes8Scalar(const std::uint8_t* tags,
                                       std::uint8_t needle) {
  std::uint64_t word;
  std::memcpy(&word, tags, 8);
  const std::uint64_t pat = 0x0101010101010101ULL * needle;
  const std::uint64_t x = word ^ pat;  // zero byte <=> match
  constexpr std::uint64_t k7f = 0x7f7f7f7f7f7f7f7fULL;
  const std::uint64_t zeros = ~(((x & k7f) + k7f) | x | k7f);
  // Compact the per-byte high bits into the low 8 result bits.
  std::uint32_t mask = 0;
  for (int i = 0; i < 8; ++i) {
    if ((zeros >> (8 * i + 7)) & 1u) mask |= 1u << i;
  }
  return mask;
}

/// Scalar reference for the 16-byte group compare (and the QCONT_NO_SIMD
/// implementation). Bit i of the result is set iff tags[i] == needle.
inline std::uint32_t MatchBytes16Scalar(const std::uint8_t* tags,
                                        std::uint8_t needle) {
  return MatchBytes8Scalar(tags, needle) |
         (MatchBytes8Scalar(tags + 8, needle) << 8);
}

/// Vectorized 16-byte group compare: bit i set iff tags[i] == needle.
/// Bit-identical to MatchBytes16Scalar by contract.
inline std::uint32_t MatchBytes16(const std::uint8_t* tags,
                                  std::uint8_t needle) {
#if defined(QCONT_SIMD_SSE2)
  const __m128i group =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(tags));
  const __m128i pat = _mm_set1_epi8(static_cast<char>(needle));
  return static_cast<std::uint32_t>(
      _mm_movemask_epi8(_mm_cmpeq_epi8(group, pat)));
#elif defined(QCONT_SIMD_NEON)
  const uint8x16_t group = vld1q_u8(tags);
  const uint8x16_t eq = vceqq_u8(group, vdupq_n_u8(needle));
  // Collapse each lane's 0xFF/0x00 into one bit: AND with a per-lane bit
  // weight, then pairwise-add across the vector.
  const uint8x16_t weights = {1, 2, 4, 8, 16, 32, 64, 128,
                              1, 2, 4, 8, 16, 32, 64, 128};
  const uint8x16_t masked = vandq_u8(eq, weights);
  const uint8x8_t lo = vget_low_u8(masked), hi = vget_high_u8(masked);
  return static_cast<std::uint32_t>(vaddv_u8(lo)) |
         (static_cast<std::uint32_t>(vaddv_u8(hi)) << 8);
#else
  return MatchBytes16Scalar(tags, needle);
#endif
}

/// Group compare over the first `width` bytes only (width 8 or 16 — the
/// probe-group-width knob). Bits >= width are always clear.
inline std::uint32_t MatchBytes(const std::uint8_t* tags, std::uint8_t needle,
                                std::uint32_t width) {
  if (width == 16) return MatchBytes16(tags, needle);
#if defined(QCONT_SIMD_SSE2) || defined(QCONT_SIMD_NEON)
  return MatchBytes16(tags, needle) & 0xffu;
#else
  return MatchBytes8Scalar(tags, needle);
#endif
}

}  // namespace qcont

#endif  // QCONT_BASE_SIMD_H_

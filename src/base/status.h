#ifndef QCONT_BASE_STATUS_H_
#define QCONT_BASE_STATUS_H_

#include <optional>
#include <string>
#include <utility>

namespace qcont {

/// Error codes used across the library. Library code never throws; fallible
/// operations return Status or Result<T>.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   // malformed query/program/expression
  kNotFound,          // lookup misses (relation, variable, file)
  kFailedPrecondition,// operation not applicable (e.g. join tree of a cyclic CQ)
  kResourceExhausted, // configured limit hit (state budget, depth bound)
  kInternal,          // invariant violation that is a bug in qcont itself
  kUnimplemented,
};

/// Returns a stable human-readable name such as "InvalidArgument".
const char* StatusCodeName(StatusCode code);

/// Success-or-error value. Cheap to copy on the success path.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status FailedPreconditionError(std::string message);
Status ResourceExhaustedError(std::string message);
Status InternalError(std::string message);
Status UnimplementedError(std::string message);

/// A value of type T or an error Status. Minimal StatusOr-style wrapper.
template <typename T>
class Result {
 public:
  /// Implicit on purpose: allows `return value;` and `return status;` from
  /// functions declared to return Result<T>.
  Result(T value) : value_(std::move(value)) {}
  Result(Status status) : status_(std::move(status)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Requires ok(). Checked in debug builds only.
  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return *std::move(value_); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace qcont

/// Propagates a non-OK Status out of the enclosing function.
#define QCONT_RETURN_IF_ERROR(expr)                  \
  do {                                               \
    ::qcont::Status qcont_status_ = (expr);          \
    if (!qcont_status_.ok()) return qcont_status_;   \
  } while (false)

/// Evaluates a Result<T> expression; on error returns its Status, otherwise
/// move-assigns the value into `lhs`.
#define QCONT_ASSIGN_OR_RETURN(lhs, expr)        \
  auto QCONT_CONCAT_(result_, __LINE__) = (expr);            \
  if (!QCONT_CONCAT_(result_, __LINE__).ok())                \
    return QCONT_CONCAT_(result_, __LINE__).status();        \
  lhs = std::move(QCONT_CONCAT_(result_, __LINE__)).value()

#define QCONT_CONCAT_INNER_(a, b) a##b
#define QCONT_CONCAT_(a, b) QCONT_CONCAT_INNER_(a, b)

#endif  // QCONT_BASE_STATUS_H_

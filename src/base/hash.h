#ifndef QCONT_BASE_HASH_H_
#define QCONT_BASE_HASH_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

namespace qcont {

/// Combines a hash value into a seed (boost::hash_combine recipe).
inline void HashCombine(std::size_t* seed, std::size_t value) {
  *seed ^= value + 0x9e3779b97f4a7c15ULL + (*seed << 6) + (*seed >> 2);
}

/// splitmix64 finalizer: a cheap, well-mixed 64-bit hash for integer keys.
/// Used by the open-addressing probe tables, where the table capacity is a
/// power of two and the low bits of the hash pick the bucket.
inline std::uint64_t Mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Hash for vectors of hashable elements, usable as an unordered_map hasher.
template <typename T>
struct VectorHash {
  std::size_t operator()(const std::vector<T>& v) const {
    std::size_t seed = v.size();
    std::hash<T> h;
    for (const T& x : v) HashCombine(&seed, h(x));
    return seed;
  }
};

/// Hash for pairs of hashable elements.
template <typename A, typename B>
struct PairHash {
  std::size_t operator()(const std::pair<A, B>& p) const {
    std::size_t seed = std::hash<A>()(p.first);
    HashCombine(&seed, std::hash<B>()(p.second));
    return seed;
  }
};

}  // namespace qcont

#endif  // QCONT_BASE_HASH_H_

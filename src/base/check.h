#ifndef QCONT_BASE_CHECK_H_
#define QCONT_BASE_CHECK_H_

#include <cstdio>
#include <cstdlib>

/// Internal invariant check. A failure is a bug in qcont, not a user error,
/// so it aborts; user-facing validation uses Status instead.
#define QCONT_CHECK(cond)                                                  \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "QCONT_CHECK failed at %s:%d: %s\n", __FILE__,  \
                   __LINE__, #cond);                                       \
      std::abort();                                                        \
    }                                                                      \
  } while (false)

#define QCONT_CHECK_MSG(cond, msg)                                           \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "QCONT_CHECK failed at %s:%d: %s (%s)\n",         \
                   __FILE__, __LINE__, #cond, msg);                          \
      std::abort();                                                          \
    }                                                                        \
  } while (false)

#endif  // QCONT_BASE_CHECK_H_

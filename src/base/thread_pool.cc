#include "base/thread_pool.h"

#include <algorithm>
#include <map>

#include "base/check.h"

namespace qcont {

namespace internal {
thread_local bool t_in_worker = false;
thread_local int t_worker_id = -1;
}  // namespace internal
using internal::t_in_worker;
using internal::t_worker_id;

// One ParallelFor call. `remaining` counts iterations not yet executed;
// the worker that takes it to zero wakes the caller. Workers accumulate
// schedule counters into the batch atomics; the caller folds them into the
// ExecStats sink after the join, so the sink itself is never shared.
struct ThreadPool::Batch {
  const std::function<void(std::size_t)>* body = nullptr;
  std::atomic<std::size_t> remaining{0};
  std::mutex mu;
  std::condition_variable done_cv;
  std::atomic<bool> failed{false};
  std::exception_ptr error;  // first failure, written under mu
  std::atomic<std::uint64_t> tasks{0};
  std::atomic<std::uint64_t> steals{0};
  std::atomic<std::uint64_t> splits{0};
};

ThreadPool::ThreadPool(int num_workers) {
  const int n = std::max(1, num_workers);
  workers_.reserve(n);
  for (int i = 0; i < n; ++i) workers_.push_back(std::make_unique<Worker>());
  threads_.reserve(n);
  for (int i = 0; i < n; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::PushLocal(int self, Task task) {
  {
    std::lock_guard<std::mutex> lock(workers_[self]->mu);
    workers_[self]->deque.push_back(task);
  }
  pending_.fetch_add(1, std::memory_order_release);
  { std::lock_guard<std::mutex> lock(mu_); }  // pair with the sleep check
  work_cv_.notify_one();
}

bool ThreadPool::TryPop(int self, Task* task) {
  Worker& w = *workers_[self];
  std::lock_guard<std::mutex> lock(w.mu);
  if (w.deque.empty()) return false;
  *task = w.deque.back();
  w.deque.pop_back();
  pending_.fetch_sub(1, std::memory_order_relaxed);
  return true;
}

bool ThreadPool::TrySteal(int self, Task* task) {
  const std::size_t n = workers_.size();
  for (std::size_t off = 1; off < n; ++off) {
    Worker& victim = *workers_[(self + off) % n];
    std::lock_guard<std::mutex> lock(victim.mu);
    if (victim.deque.empty()) continue;
    *task = victim.deque.front();
    victim.deque.pop_front();
    pending_.fetch_sub(1, std::memory_order_relaxed);
    task->batch->steals.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

void ThreadPool::RunTask(Task task, int self) {
  // Lazy binary splitting: keep the lower half, expose the upper half to
  // thieves. Engine loop bodies are coarse (a hom-check, a rule firing),
  // so the split grain is a single iteration.
  while (task.end - task.begin > 1) {
    const std::size_t mid = task.begin + (task.end - task.begin) / 2;
    PushLocal(self, Task{task.batch, mid, task.end});
    task.batch->splits.fetch_add(1, std::memory_order_relaxed);
    task.end = mid;
  }
  Batch* batch = task.batch;
  if (!batch->failed.load(std::memory_order_relaxed)) {
    try {
      (*batch->body)(task.begin);
    } catch (...) {
      bool expected = false;
      if (batch->failed.compare_exchange_strong(expected, true)) {
        std::lock_guard<std::mutex> lock(batch->mu);
        batch->error = std::current_exception();
      }
    }
  }
  batch->tasks.fetch_add(1, std::memory_order_relaxed);
  // The caller may destroy the stack-allocated Batch as soon as it observes
  // `remaining == 0`, and it checks that predicate under batch->mu. The
  // final decrement therefore has to happen while holding batch->mu too:
  // otherwise the caller could see zero (wait() checks the predicate on
  // entry), return, and destroy the Batch between our decrement and our
  // lock/notify. Holding the mutex across decrement + notify means the
  // caller cannot re-acquire it — and hence cannot return — until this
  // worker's last access to the Batch (the unlock) has completed.
  {
    std::lock_guard<std::mutex> lock(batch->mu);
    if (batch->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      batch->done_cv.notify_all();
    }
  }
}

void ThreadPool::WorkerLoop(int self) {
  t_in_worker = true;
  t_worker_id = self;
  for (;;) {
    Task task;
    if (TryPop(self, &task) || TrySteal(self, &task)) {
      RunTask(task, self);
      continue;
    }
    std::unique_lock<std::mutex> lock(mu_);
    if (stop_) return;
    work_cv_.wait(lock, [this] {
      return stop_ || pending_.load(std::memory_order_acquire) > 0;
    });
    if (stop_) return;
  }
}

void ThreadPool::ParallelFor(std::size_t n,
                             const std::function<void(std::size_t)>& body,
                             ExecStats* stats) {
  if (n == 0) return;
  if (n == 1 || workers_.empty() || InWorker()) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    if (stats != nullptr) stats->tasks += n;
    return;
  }
  Batch batch;
  batch.body = &body;
  batch.remaining.store(n, std::memory_order_relaxed);
  // Seed one contiguous chunk per worker; lazy splitting and stealing do
  // the rest of the balancing.
  const std::size_t chunks = std::min<std::size_t>(workers_.size(), n);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t begin = n * c / chunks;
    const std::size_t end = n * (c + 1) / chunks;
    std::lock_guard<std::mutex> lock(workers_[c]->mu);
    workers_[c]->deque.push_back(Task{&batch, begin, end});
  }
  pending_.fetch_add(chunks, std::memory_order_release);
  { std::lock_guard<std::mutex> lock(mu_); }  // pair with the sleep check
  work_cv_.notify_all();
  {
    std::unique_lock<std::mutex> lock(batch.mu);
    batch.done_cv.wait(lock, [&batch] {
      return batch.remaining.load(std::memory_order_acquire) == 0;
    });
  }
  if (stats != nullptr) {
    ++stats->parallel_regions;
    stats->tasks += batch.tasks.load(std::memory_order_relaxed);
    stats->steals += batch.steals.load(std::memory_order_relaxed);
    stats->splits += batch.splits.load(std::memory_order_relaxed);
  }
  if (batch.failed.load(std::memory_order_acquire)) {
    QCONT_CHECK(batch.error != nullptr);
    std::rethrow_exception(batch.error);
  }
}

std::shared_ptr<ThreadPool> ThreadPool::Shared(int threads) {
  static std::mutex mu;
  // Pools keyed by exact worker count; destroyed (workers joined) at
  // process exit. Idle pools only hold parked threads.
  static std::map<int, std::shared_ptr<ThreadPool>> pools;
  const int n = std::max(1, threads);
  std::lock_guard<std::mutex> lock(mu);
  std::shared_ptr<ThreadPool>& pool = pools[n];
  if (pool == nullptr) pool = std::make_shared<ThreadPool>(n);
  return pool;
}

void ParallelFor(const ExecContext& ctx, std::size_t n,
                 const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  if (ctx.threads <= 1 || n == 1 || ThreadPool::InWorker()) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    if (ctx.stats != nullptr) ctx.stats->tasks += n;
    return;
  }
  ThreadPool::Shared(ctx.threads)->ParallelFor(n, body, ctx.stats);
}

}  // namespace qcont

#include "core/router.h"

#include <string>

#include "analysis/report.h"

namespace qcont {

const char* RouteName(ContainmentRoute route) {
  switch (route) {
    case ContainmentRoute::kAckEngine:
      return "ACk engine (EXPTIME)";
    case ContainmentRoute::kGeneralEngine:
      return "general type engine (2EXPTIME)";
  }
  return "unknown";
}

Result<RoutedAnswer> DecideContainment(const DatalogProgram& program,
                                       const UnionQuery& ucq,
                                       const RouterOptions& options) {
  ObsSpan decide_span(options.obs, "router/decide", "core");
  // The default path goes through the verified analysis report: acyclicity,
  // width bounds, and the engine choice come from one cached static pass.
  ContainmentRoute route;
  int report_ack_level = 0;
  if (options.force == ForcedRoute::kAckEngine) {
    route = ContainmentRoute::kAckEngine;
  } else if (options.force == ForcedRoute::kGeneralEngine) {
    route = ContainmentRoute::kGeneralEngine;
  } else {
    analysis::RoutingOptions routing;
    routing.obs = options.obs;
    routing.use_cache = options.use_analysis_cache;
    const analysis::AnalysisReport report =
        options.report != nullptr
            ? *options.report
            : analysis::AnalyzeForRouting(program, ucq, routing);
    const analysis::EngineKind engine = analysis::ChooseEngine(
        report, analysis::RoutingGoal::kContainment, routing);
    route = engine == analysis::EngineKind::kAckEngine
                ? ContainmentRoute::kAckEngine
                : ContainmentRoute::kGeneralEngine;
    report_ack_level = report.ack_level;
    ObsCount(options.obs,
             std::string("analysis.route.") + analysis::EngineKindName(engine),
             1);
  }

  RoutedAnswer out;
  if (route == ContainmentRoute::kAckEngine) {
    AckEngineLimits limits = options.ack;
    if (limits.obs == nullptr) limits.obs = options.obs;
    AckEngineStats stats;
    QCONT_ASSIGN_OR_RETURN(
        out.answer, DatalogContainedInAcyclicUcq(program, ucq, &stats, limits));
    out.route = ContainmentRoute::kAckEngine;
    out.ack_level = stats.ack_level > 0 ? stats.ack_level : report_ack_level;
  } else {
    TypeEngineOptions general = options.general;
    if (general.obs == nullptr) general.obs = options.obs;
    if (general.artifact_cache == nullptr) {
      general.artifact_cache = options.artifact_cache;
    }
    QCONT_ASSIGN_OR_RETURN(
        out.answer, DatalogContainedInUcq(program, ucq, nullptr, general));
    out.route = ContainmentRoute::kGeneralEngine;
  }
  decide_span.AddArg("acyclic",
                     out.route == ContainmentRoute::kAckEngine ? 1 : 0);
  decide_span.AddArg("forced", options.force != ForcedRoute::kAuto ? 1 : 0);
  return out;
}

Result<RoutedAnswer> DecideContainment(const DatalogProgram& program,
                                       const UnionQuery& ucq) {
  return DecideContainment(program, ucq, RouterOptions());
}

}  // namespace qcont

#include "core/router.h"

#include "structure/classify.h"

namespace qcont {

const char* RouteName(ContainmentRoute route) {
  switch (route) {
    case ContainmentRoute::kAckEngine:
      return "ACk engine (EXPTIME)";
    case ContainmentRoute::kGeneralEngine:
      return "general type engine (2EXPTIME)";
  }
  return "unknown";
}

Result<RoutedAnswer> DecideContainment(const DatalogProgram& program,
                                       const UnionQuery& ucq,
                                       const RouterOptions& options) {
  ObsSpan decide_span(options.obs, "router/decide", "core");
  QCONT_ASSIGN_OR_RETURN(bool acyclic, IsAcyclicUcq(ucq));
  RoutedAnswer out;
  if (acyclic) {
    AckEngineLimits limits = options.ack;
    if (limits.obs == nullptr) limits.obs = options.obs;
    AckEngineStats stats;
    QCONT_ASSIGN_OR_RETURN(
        out.answer, DatalogContainedInAcyclicUcq(program, ucq, &stats, limits));
    out.route = ContainmentRoute::kAckEngine;
    out.ack_level = stats.ack_level;
  } else {
    TypeEngineOptions general = options.general;
    if (general.obs == nullptr) general.obs = options.obs;
    QCONT_ASSIGN_OR_RETURN(
        out.answer, DatalogContainedInUcq(program, ucq, nullptr, general));
    out.route = ContainmentRoute::kGeneralEngine;
  }
  decide_span.AddArg("acyclic", acyclic ? 1 : 0);
  return out;
}

Result<RoutedAnswer> DecideContainment(const DatalogProgram& program,
                                       const UnionQuery& ucq) {
  return DecideContainment(program, ucq, RouterOptions());
}

}  // namespace qcont

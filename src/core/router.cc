#include "core/router.h"

#include "structure/classify.h"

namespace qcont {

const char* RouteName(ContainmentRoute route) {
  switch (route) {
    case ContainmentRoute::kAckEngine:
      return "ACk engine (EXPTIME)";
    case ContainmentRoute::kGeneralEngine:
      return "general type engine (2EXPTIME)";
  }
  return "unknown";
}

Result<RoutedAnswer> DecideContainment(const DatalogProgram& program,
                                       const UnionQuery& ucq) {
  QCONT_ASSIGN_OR_RETURN(bool acyclic, IsAcyclicUcq(ucq));
  RoutedAnswer out;
  if (acyclic) {
    AckEngineStats stats;
    QCONT_ASSIGN_OR_RETURN(out.answer,
                           DatalogContainedInAcyclicUcq(program, ucq, &stats));
    out.route = ContainmentRoute::kAckEngine;
    out.ack_level = stats.ack_level;
  } else {
    QCONT_ASSIGN_OR_RETURN(out.answer, DatalogContainedInUcq(program, ucq));
    out.route = ContainmentRoute::kGeneralEngine;
  }
  return out;
}

}  // namespace qcont

#ifndef QCONT_CORE_ACK_CONTAINMENT_H_
#define QCONT_CORE_ACK_CONTAINMENT_H_

#include <cstdint>

#include "base/status.h"
#include "core/datalog_ucq.h"
#include "cq/query.h"
#include "datalog/program.h"

namespace qcont {

/// Cost counters of the ACk engine (experiments E4/E5). Mixed reuse
/// semantics across calls, kept for compatibility (and mirrored exactly by
/// the registry metrics):
struct AckEngineStats {
  /// (predicate, equality-pattern) pairs instantiated. Assigned (snapshot)
  /// by each successful run; untouched when the run errors out. Registry
  /// mirror: gauge `ack.kinds`.
  std::uint64_t kinds = 0;
  /// Distinct reachable subtree summaries. Accumulates across successful
  /// runs; counter `ack.summaries`.
  std::uint64_t summaries = 0;
  /// (rule, child-summary...) combinations processed. Accumulates across
  /// calls, including runs that trip a budget; counter `ack.combos`.
  std::uint64_t combos = 0;
  /// Local acceptance-game states expanded. Accumulates across calls;
  /// counter `ack.game_states`.
  std::uint64_t game_states = 0;
  /// Exit sets stored across all summary antichains. Accumulates across
  /// successful runs; counter `ack.antichain_sets`.
  std::uint64_t antichain_sets = 0;
  /// The k of the input (max variables a join-tree edge shares; at least 1
  /// by convention). Max-assigned across calls; gauge `ack.level`.
  int ack_level = 0;
};

struct AckEngineLimits {
  std::uint64_t max_summaries = 500'000;
  std::uint64_t max_combos = 5'000'000;
  /// Optional observability sinks, borrowed from the caller. Each run emits
  /// `ack/run` and `ack/round` spans and publishes the `ack.*` metrics
  /// listed on AckEngineStats.
  const ObsContext* obs = nullptr;
};

/// Decides CONT(Datalog, ACk): is Π ⊆ Θ for an *acyclic* UCQ Θ?
///
/// This is the algorithm of Theorem 6 of the paper. Conceptually:
///   1. proof trees of Π are the runs of the (implicit, exponential) 1NTA
///      AΠ — realized here by the kind/instantiated-rule machinery shared
///      with the general engine;
///   2. per CQ θ ∈ Θ, the polynomial-size 2ATA B^θ_Π walks the join tree of
///      θ over the proof tree, with atom states (A, M) — A a join-tree node,
///      M a partial map of the ≤ k variables shared with A's join parent —
///      and variable states (j, x) checking distinguished occurrences;
///   3. the containment AΠ ⊆ B^Θ_Π is decided by complementing the 2ATA.
///      The acceptance game of B on a finite proof tree is a reachability
///      game for Eve, so per-subtree behaviour is summarized exactly by the
///      map (entry state) -> antichain of minimal exit-state sets Eve can
///      enforce (an exit is an upward move out of the subtree; the
///      complement automaton's states are these summaries, singly
///      exponential in the polynomial state space of B). A least fixpoint
///      over (kind, summary) pairs finds all realizable summaries; Π ⊆ Θ
///      iff every realizable root summary lets Eve win outright.
///
/// Singly exponential overall — EXPTIME, as in Theorem 6 — against the
/// doubly exponential general engine. Fails with kFailedPrecondition when Θ
/// is not acyclic (use DatalogContainedInUcq then).
///
/// Corollary 1 routing is provided by ContainmentRouter (router.h): a UCQ
/// over an arity-c schema that is acyclic lies in ACc; a TW(1) UCQ lies in
/// AC2 — both are handled by this engine.
Result<ContainmentAnswer> DatalogContainedInAcyclicUcq(
    const DatalogProgram& program, const UnionQuery& ucq,
    AckEngineStats* stats = nullptr,
    const AckEngineLimits& limits = AckEngineLimits());

}  // namespace qcont

#endif  // QCONT_CORE_ACK_CONTAINMENT_H_

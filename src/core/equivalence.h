#ifndef QCONT_CORE_EQUIVALENCE_H_
#define QCONT_CORE_EQUIVALENCE_H_

#include <optional>

#include "base/status.h"
#include "core/router.h"
#include "cq/query.h"
#include "datalog/eval.h"
#include "datalog/program.h"

namespace qcont {

/// Result of an equivalence check between a recursive program and a UCQ.
struct EquivalenceAnswer {
  bool program_in_ucq = false;  // Π ⊆ Θ
  bool ucq_in_program = false;  // Θ ⊆ Π
  bool equivalent = false;
  /// Witness for the failing direction, when any: an expansion of Π not
  /// contained in Θ, or a disjunct of Θ whose canonical database defeats Π.
  std::optional<ConjunctiveQuery> witness;
  ContainmentRoute route = ContainmentRoute::kGeneralEngine;
};

/// Decides whether the Datalog program Π is equivalent to the UCQ Θ
/// (Corollary 2 of the paper): Π ⊆ Θ via the routed containment engines,
/// Θ ⊆ Π via Datalog evaluation on canonical databases
/// (Cosmadakis-Kanellakis [16]). EXPTIME when Θ ∈ ACk.
///
/// A positive answer means the recursive program is *bounded*: it can be
/// replaced by the non-recursive query Θ.
Result<EquivalenceAnswer> DatalogEquivalentToUcq(const DatalogProgram& program,
                                                 const UnionQuery& ucq);

/// As above, with explicit engine options: `router` governs the Π ⊆ Θ
/// direction (and carries the observability sink), `eval` governs the
/// per-disjunct Datalog evaluations of the Θ ⊆ Π direction. When
/// `eval.obs` is unset it inherits `router.obs`.
Result<EquivalenceAnswer> DatalogEquivalentToUcq(const DatalogProgram& program,
                                                 const UnionQuery& ucq,
                                                 const RouterOptions& router,
                                                 const EvalOptions& eval);

}  // namespace qcont

#endif  // QCONT_CORE_EQUIVALENCE_H_

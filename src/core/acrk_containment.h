#ifndef QCONT_CORE_ACRK_CONTAINMENT_H_
#define QCONT_CORE_ACRK_CONTAINMENT_H_

#include <cstdint>

#include "base/status.h"
#include "core/datalog_ucq.h"
#include "datalog/program.h"
#include "graphdb/c2rpq.h"

namespace qcont {

/// Cost counters of the ACRk engine (experiments E7/E8). Same reuse
/// semantics as `AckEngineStats`, and the same registry mirroring under the
/// `acrk.*` prefix:
struct AcrkEngineStats {
  /// (predicate, equality-pattern) pairs instantiated. Assigned (snapshot)
  /// by each successful run; gauge `acrk.kinds`.
  std::uint64_t kinds = 0;
  /// Distinct reachable subtree summaries. Accumulates across successful
  /// runs; counter `acrk.summaries`.
  std::uint64_t summaries = 0;
  /// (rule, child-summary...) combinations processed. Accumulates across
  /// calls, including runs that trip a budget; counter `acrk.combos`.
  std::uint64_t combos = 0;
  /// Local acceptance-game states expanded. Accumulates across calls;
  /// counter `acrk.game_states`.
  std::uint64_t game_states = 0;
  /// Exit sets stored across all summary antichains. Accumulates across
  /// successful runs; counter `acrk.antichain_sets`.
  std::uint64_t antichain_sets = 0;
  /// Max number of atoms connecting a pair of distinct variables (the k of
  /// ACRk). Assigned per run; gauge `acrk.level`.
  int acrk_level = 0;
};

struct AcrkEngineLimits {
  std::uint64_t max_summaries = 500'000;
  std::uint64_t max_combos = 5'000'000;
  /// Optional observability sinks, borrowed from the caller. Each run emits
  /// `acrk/run` and `acrk/round` spans and publishes the `acrk.*` metrics
  /// listed on AcrkEngineStats.
  const ObsContext* obs = nullptr;
};

/// Decides CONT(Datalog, ACRk): is Π ⊆ Γ for an *acyclic* UC2RPQ Γ over a
/// graph schema (all extensional predicates of Π binary)?
///
/// This implements Theorem 9 of the paper. The variable graph Gγ of each
/// disjunct is a forest (acyclicity); the 2ATA B^γ_Π walks it top-down over
/// the proof trees of Π:
///   - *seek states* find the image of each component root anywhere in the
///     proof tree;
///   - *multiedge states* γ_{x,y}(s1..sm; u1..um) process all m atoms
///     connecting x to y simultaneously (m ≤ k for Γ ∈ ACRk): each walk
///     advances its NFA over extensional edge atoms (inverse symbols walk
///     edges backwards, Lemma 4), and all walks must converge on connected
///     occurrences of one variable, the image of y. Backward atoms L(y,x)
///     are normalized with ReversedInverse. Loop atoms L(x,x) are walks
///     whose convergence target is the already-fixed image of x.
///   - *variable-check states* verify distinguished variables against the
///     root head, as in the ACk engine.
/// Containment is decided by the same summary/antichain complementation
/// fixpoint as the ACk engine — singly exponential (EXPTIME) overall.
///
/// Returns kFailedPrecondition when Γ is not acyclic, and kInvalidArgument
/// when Π's extensional schema is not binary.
Result<ContainmentAnswer> DatalogContainedInAcyclicUC2rpq(
    const DatalogProgram& program, const UC2rpq& gamma,
    AcrkEngineStats* stats = nullptr,
    const AcrkEngineLimits& limits = AcrkEngineLimits());

}  // namespace qcont

#endif  // QCONT_CORE_ACRK_CONTAINMENT_H_

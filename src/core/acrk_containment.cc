#include "core/acrk_containment.h"

#include <algorithm>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "analysis/analyzer.h"
#include "base/check.h"
#include "core/instantiate.h"
#include "structure/join_tree.h"

namespace qcont {

namespace {

using internal::InstIdbAtom;
using internal::InstRule;
using internal::KindSpace;

// ---------------------------------------------------------------------------
// Disjunct preprocessing: the variable forest Gγ with oriented multiedges.
// ---------------------------------------------------------------------------

struct GEdge {
  int x = -1;  // parent-side variable
  int y = -1;  // child-side variable (== x for loops)
  bool is_loop = false;
  std::vector<Nfa> nfas;  // normalized to walk from x to y
};

struct GammaInfo {
  int num_vars = 0;
  std::vector<GEdge> edges;
  std::vector<std::vector<int>> out_edges;  // per var: edges with x == var
  std::vector<int> roots;                   // one variable per component
  std::vector<std::pair<int, int>> free_occurrences;  // (head position, var)
};

Result<GammaInfo> BuildGammaInfo(const C2rpq& gamma) {
  GammaInfo info;
  std::unordered_map<std::string, int> var_index;
  auto var_id = [&](const std::string& name) {
    auto [it, inserted] = var_index.emplace(name, info.num_vars);
    if (inserted) ++info.num_vars;
    return it->second;
  };
  struct PairAtoms {
    std::vector<int> atom_ids;
  };
  std::map<std::pair<int, int>, PairAtoms> pairs;  // (min,max) var -> atoms
  std::vector<std::vector<int>> loops_of;          // var -> loop atom ids
  for (std::size_t i = 0; i < gamma.atoms().size(); ++i) {
    int x = var_id(gamma.atoms()[i].x.name());
    int y = var_id(gamma.atoms()[i].y.name());
    if (x == y) {
      if (loops_of.size() <= static_cast<std::size_t>(x)) {
        loops_of.resize(info.num_vars);
      }
      loops_of[x].push_back(static_cast<int>(i));
    } else {
      pairs[{std::min(x, y), std::max(x, y)}].atom_ids.push_back(
          static_cast<int>(i));
    }
  }
  loops_of.resize(info.num_vars);
  // Orient the variable forest by BFS from the smallest variable of each
  // component.
  std::vector<std::vector<std::pair<int, const PairAtoms*>>> adj(info.num_vars);
  for (const auto& [key, atoms] : pairs) {
    adj[key.first].emplace_back(key.second, &atoms);
    adj[key.second].emplace_back(key.first, &atoms);
  }
  info.out_edges.resize(info.num_vars);
  std::vector<int> seen(info.num_vars, 0);
  for (int r = 0; r < info.num_vars; ++r) {
    if (seen[r]) continue;
    info.roots.push_back(r);
    std::vector<int> stack = {r};
    seen[r] = 1;
    while (!stack.empty()) {
      int x = stack.back();
      stack.pop_back();
      // Loop atoms of x become loop edges attached to x.
      for (int atom_id : loops_of[x]) {
        GEdge e;
        e.x = x;
        e.y = x;
        e.is_loop = true;
        e.nfas.push_back(gamma.atoms()[atom_id].nfa);
        info.out_edges[x].push_back(static_cast<int>(info.edges.size()));
        info.edges.push_back(std::move(e));
      }
      for (const auto& [y, pair_atoms] : adj[x]) {
        if (seen[y]) continue;  // tree edge already oriented from elsewhere
        seen[y] = 1;
        GEdge e;
        e.x = x;
        e.y = y;
        for (int atom_id : pair_atoms->atom_ids) {
          const RpqAtom& atom = gamma.atoms()[atom_id];
          if (var_index.at(atom.x.name()) == x) {
            e.nfas.push_back(atom.nfa);
          } else {
            e.nfas.push_back(atom.nfa.ReversedInverse());
          }
        }
        info.out_edges[x].push_back(static_cast<int>(info.edges.size()));
        info.edges.push_back(std::move(e));
        stack.push_back(y);
      }
    }
  }
  for (std::size_t j = 0; j < gamma.head().size(); ++j) {
    info.free_occurrences.emplace_back(static_cast<int>(j),
                                       var_id(gamma.head()[j].name()));
  }
  return info;
}

// ---------------------------------------------------------------------------
// Game states (position form P and rule-variable form W).
// ---------------------------------------------------------------------------

enum StateTag : std::int8_t {
  kMultiedge = 0,  // id = edge; s = NFA states; m = per-walk bindings
                   // (+ the fixed convergence target for loop edges)
  kSeek = 1,       // id = component root variable; no bindings
  kVarCheck = 2,   // id = head position j; m = {binding}
  kVarNode = 3,    // id = query variable; m = {binding}; internal only
};

struct PState {
  std::int8_t tag = kMultiedge;
  std::int16_t g = 0;
  std::int16_t id = 0;
  std::vector<std::int16_t> s;
  std::vector<std::int8_t> m;

  friend bool operator<(const PState& a, const PState& b) {
    if (a.tag != b.tag) return a.tag < b.tag;
    if (a.g != b.g) return a.g < b.g;
    if (a.id != b.id) return a.id < b.id;
    if (a.s != b.s) return a.s < b.s;
    return a.m < b.m;
  }
  friend bool operator==(const PState& a, const PState& b) {
    return a.tag == b.tag && a.g == b.g && a.id == b.id && a.s == b.s &&
           a.m == b.m;
  }
};

using ExitSet = std::vector<PState>;
using Antichain = std::vector<ExitSet>;

bool IsSubsetOf(const ExitSet& a, const ExitSet& b) {
  return std::includes(b.begin(), b.end(), a.begin(), a.end());
}

bool AntichainInsert(Antichain* ac, ExitSet s) {
  for (const ExitSet& t : *ac) {
    if (IsSubsetOf(t, s)) return false;
  }
  ac->erase(std::remove_if(ac->begin(), ac->end(),
                           [&s](const ExitSet& t) { return IsSubsetOf(s, t); }),
            ac->end());
  ac->push_back(std::move(s));
  return true;
}

ExitSet UnionSets(const ExitSet& a, const ExitSet& b) {
  ExitSet out;
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

void CombineProduct(const std::vector<const Antichain*>& parts,
                    Antichain* out) {
  ExitSet acc;
  std::function<void(std::size_t)> rec = [&](std::size_t i) {
    if (i == parts.size()) {
      AntichainInsert(out, acc);
      return;
    }
    for (const ExitSet& s : *parts[i]) {
      ExitSet saved = acc;
      acc = UnionSets(acc, s);
      rec(i + 1);
      acc = std::move(saved);
    }
  };
  rec(0);
}

struct Summary {
  std::map<PState, Antichain> at;

  std::string Canonical() const {
    std::string out;
    auto put_state = [&out](const PState& st) {
      out += std::to_string(st.tag) + "." + std::to_string(st.g) + "." +
             std::to_string(st.id) + ".";
      for (std::int16_t x : st.s) out += std::to_string(x) + "_";
      for (std::int8_t x : st.m) out += static_cast<char>('A' + (x + 1));
    };
    for (const auto& [entry, ac] : at) {
      out += "|E";
      put_state(entry);
      out += "{";
      for (const ExitSet& s : ac) {
        out += "(";
        for (const PState& x : s) {
          put_state(x);
          out += ";";
        }
        out += ")";
      }
      out += "}";
    }
    return out;
  }
};

struct WState {
  std::int8_t tag = kMultiedge;
  std::int16_t g = 0;
  std::int16_t id = 0;
  std::vector<std::int16_t> s;
  std::vector<int> m;

  friend bool operator<(const WState& a, const WState& b) {
    if (a.tag != b.tag) return a.tag < b.tag;
    if (a.g != b.g) return a.g < b.g;
    if (a.id != b.id) return a.id < b.id;
    if (a.s != b.s) return a.s < b.s;
    return a.m < b.m;
  }
};

struct Provenance {
  int rule_pos = -1;
  std::vector<int> child_summaries;
};

struct KindState {
  std::vector<Summary> summaries;
  std::vector<Provenance> provenance;
  std::set<std::string> canon;
};

// ---------------------------------------------------------------------------
// The engine.
// ---------------------------------------------------------------------------

class AcrkEngine {
 public:
  AcrkEngine(const DatalogProgram& program, const UC2rpq& gamma,
             AcrkEngineStats* stats, const AcrkEngineLimits& limits)
      : program_(program),
        gamma_(gamma),
        stats_(stats),
        limits_(limits),
        kinds_(program) {}

  // Engine runs accumulate into the run-local `run_`; `Run` flushes it to
  // the caller's legacy sink and the registry in one place at the end.
  Result<ContainmentAnswer> Run() {
    Result<ContainmentAnswer> result = RunImpl();
    Flush();
    return result;
  }

 private:
  Result<ContainmentAnswer> RunImpl() {
    ObsSpan run_span(limits_.obs, "acrk/run", "core");
    QCONT_ASSIGN_OR_RETURN(bool acyclic, IsAcyclicUC2rpq(gamma_));
    if (!acyclic) {
      return FailedPreconditionError(
          "the ACRk engine requires an acyclic UC2RPQ");
    }
    // Matches the legacy behaviour of only computing the level when someone
    // will read it (AcrkLevel can itself fail).
    if (stats_ != nullptr || ObsMetrics(limits_.obs) != nullptr) {
      QCONT_ASSIGN_OR_RETURN(int level, AcrkLevel(gamma_));
      run_.acrk_level = level;
      level_set_ = true;
    }
    for (const C2rpq& g : gamma_.disjuncts()) {
      QCONT_ASSIGN_OR_RETURN(GammaInfo info, BuildGammaInfo(g));
      gammas_.push_back(std::move(info));
    }
    std::vector<int> root_kinds = kinds_.RootKinds();
    state_.resize(kinds_.NumKinds());
    QCONT_RETURN_IF_ERROR(Fixpoint());
    run_.kinds = kinds_.NumKinds();
    for (const KindState& k : state_) {
      run_.summaries += k.summaries.size();
      for (const Summary& s : k.summaries) {
        for (const auto& [entry, ac] : s.at) run_.antichain_sets += ac.size();
      }
    }
    summarized_ = true;
    for (int kind_id : root_kinds) {
      const std::vector<int>& pattern = kinds_.KeyOf(kind_id).pattern;
      const KindState& kind = state_[kind_id];
      for (std::size_t s = 0; s < kind.summaries.size(); ++s) {
        if (!RootAccepts(kind.summaries[s], pattern)) {
          ContainmentAnswer answer;
          answer.contained = false;
          answer.witness = internal::BuildWitnessCq(
              kinds_, kind_id, static_cast<long>(s),
              [this](int k, long token) {
                const Provenance& prov = state_[k].provenance[token];
                internal::WitnessNode node;
                node.rule = &kinds_.RulesOf(k)[prov.rule_pos];
                node.child_tokens.assign(prov.child_summaries.begin(),
                                         prov.child_summaries.end());
                return node;
              });
          return answer;
        }
      }
    }
    ContainmentAnswer answer;
    answer.contained = true;
    return answer;
  }

  // Reproduces the legacy sink's mixed semantics (see AcrkEngineStats) and
  // publishes the same run-local values to the registry.
  void Flush() {
    if (MetricRegistry* metrics = ObsMetrics(limits_.obs)) {
      metrics->Add("acrk.combos", run_.combos);
      metrics->Add("acrk.game_states", run_.game_states);
      if (level_set_) {
        metrics->SetGauge("acrk.level",
                          static_cast<std::uint64_t>(run_.acrk_level));
      }
      if (summarized_) {
        metrics->Add("acrk.summaries", run_.summaries);
        metrics->Add("acrk.antichain_sets", run_.antichain_sets);
        metrics->SetGauge("acrk.kinds", run_.kinds);
      }
    }
    if (stats_ == nullptr) return;
    stats_->combos += run_.combos;
    stats_->game_states += run_.game_states;
    if (level_set_) stats_->acrk_level = run_.acrk_level;
    if (summarized_) {
      stats_->kinds = run_.kinds;
      stats_->summaries += run_.summaries;
      stats_->antichain_sets += run_.antichain_sets;
    }
  }

  Status Fixpoint() {
    std::uint64_t total = 0;
    std::uint64_t round = 0;
    bool changed = true;
    while (changed) {
      changed = false;
      ObsSpan round_span(limits_.obs, "acrk/round", "core");
      round_span.AddArg("round", round++);
      for (std::size_t k = 0; k < kinds_.NumKinds(); ++k) {
        const std::vector<InstRule>& rules = kinds_.RulesOf(static_cast<int>(k));
        for (std::size_t rp = 0; rp < rules.size(); ++rp) {
          const InstRule& rule = rules[rp];
          const std::size_t num_children = rule.idb_atoms.size();
          bool viable = true;
          for (const InstIdbAtom& child : rule.idb_atoms) {
            if (state_[child.kind_id].summaries.empty()) {
              viable = false;
              break;
            }
          }
          if (!viable) continue;
          std::vector<int> combo(num_children, 0);
          while (true) {
            std::string combo_key =
                std::to_string(k) + "/" + std::to_string(rp);
            for (int c : combo) combo_key += "," + std::to_string(c);
            if (processed_.insert(combo_key).second) {
              ++run_.combos;
              if (processed_.size() > limits_.max_combos) {
                return ResourceExhaustedError(
                    "ACRk-engine combination budget exceeded");
              }
              Summary summary = ComputeSummary(rule, combo);
              std::string canon = summary.Canonical();
              if (state_[k].canon.insert(canon).second) {
                state_[k].summaries.push_back(std::move(summary));
                Provenance prov;
                prov.rule_pos = static_cast<int>(rp);
                prov.child_summaries = combo;
                state_[k].provenance.push_back(std::move(prov));
                if (++total > limits_.max_summaries) {
                  return ResourceExhaustedError(
                      "ACRk-engine summary budget exceeded");
                }
                changed = true;
              }
            }
            std::size_t pos = 0;
            while (pos < num_children) {
              int limit = static_cast<int>(
                  state_[rule.idb_atoms[pos].kind_id].summaries.size());
              if (++combo[pos] < limit) break;
              combo[pos] = 0;
              ++pos;
            }
            if (pos == num_children) break;
          }
        }
      }
    }
    return Status::Ok();
  }

  Summary ComputeSummary(const InstRule& rule, const std::vector<int>& combo) {
    std::map<WState, Antichain> table;
    std::vector<WState> order;
    auto discover = [&](const WState& s) {
      if (table.emplace(s, Antichain{}).second) {
        order.push_back(s);
        ++run_.game_states;
      }
    };
    std::vector<PState> entries = EntrySpace(rule);
    for (const PState& e : entries) discover(ToW(e, rule.head));
    bool changed = true;
    while (changed) {
      changed = false;
      for (std::size_t i = 0; i < order.size(); ++i) {
        WState s = order[i];
        Antichain fresh = EvalState(s, rule, combo, table, discover);
        std::sort(fresh.begin(), fresh.end());
        if (fresh != table.at(s)) {
          table[s] = std::move(fresh);
          changed = true;
        }
      }
    }
    Summary out;
    for (const PState& e : entries) out.at.emplace(e, table.at(ToW(e, rule.head)));
    return out;
  }

  // Entry states: seeks per component root, and multiedge states over every
  // per-walk NFA state and every binding of the walks to canonical head
  // positions.
  std::vector<PState> EntrySpace(const InstRule& rule) const {
    std::vector<PState> out;
    std::vector<std::int8_t> canonical;
    for (std::size_t p = 0; p < rule.head.size(); ++p) {
      bool first = true;
      for (std::size_t q = 0; q < p; ++q) {
        if (rule.head[q] == rule.head[p]) first = false;
      }
      if (first) canonical.push_back(static_cast<std::int8_t>(p));
    }
    for (std::size_t g = 0; g < gammas_.size(); ++g) {
      const GammaInfo& info = gammas_[g];
      for (int root : info.roots) {
        PState e;
        e.tag = kSeek;
        e.g = static_cast<std::int16_t>(g);
        e.id = static_cast<std::int16_t>(root);
        out.push_back(std::move(e));
      }
      for (std::size_t ei = 0; ei < info.edges.size(); ++ei) {
        const GEdge& edge = info.edges[ei];
        const std::size_t walks = edge.nfas.size();
        const std::size_t bindings = walks + (edge.is_loop ? 1 : 0);
        if (bindings > 0 && canonical.empty()) continue;
        std::vector<std::int16_t> s(walks, 0);
        std::vector<std::int8_t> m(bindings, 0);
        std::function<void(std::size_t)> rec_m = [&](std::size_t i) {
          if (i == bindings) {
            PState e;
            e.tag = kMultiedge;
            e.g = static_cast<std::int16_t>(g);
            e.id = static_cast<std::int16_t>(ei);
            e.s = s;
            e.m = m;
            out.push_back(std::move(e));
            return;
          }
          for (std::int8_t p : canonical) {
            m[i] = p;
            rec_m(i + 1);
          }
        };
        std::function<void(std::size_t)> rec_s = [&](std::size_t i) {
          if (i == walks) {
            rec_m(0);
            return;
          }
          for (int st = 0; st < edge.nfas[i].num_states(); ++st) {
            s[i] = static_cast<std::int16_t>(st);
            rec_s(i + 1);
          }
        };
        rec_s(0);
      }
    }
    return out;
  }

  WState ToW(const PState& p, const std::vector<int>& head) const {
    WState w;
    w.tag = p.tag;
    w.g = p.g;
    w.id = p.id;
    w.s = p.s;
    w.m.reserve(p.m.size());
    for (std::int8_t pos : p.m) w.m.push_back(head[pos]);
    return w;
  }

  static int HeadPosition(const std::vector<int>& head, int w) {
    for (std::size_t p = 0; p < head.size(); ++p) {
      if (head[p] == w) return static_cast<int>(p);
    }
    return -1;
  }

  // All rule-variable representatives occurring in the instance (targets
  // for seek states).
  static std::vector<int> RuleVars(const InstRule& rule) {
    std::set<int> vars(rule.head.begin(), rule.head.end());
    for (const auto& [pred, terms] : rule.edb_atoms) {
      vars.insert(terms.begin(), terms.end());
    }
    for (const InstIdbAtom& atom : rule.idb_atoms) {
      vars.insert(atom.terms.begin(), atom.terms.end());
    }
    return std::vector<int>(vars.begin(), vars.end());
  }

  Antichain EvalState(const WState& st, const InstRule& rule,
                      const std::vector<int>& combo,
                      std::map<WState, Antichain>& table,
                      const std::function<void(const WState&)>& discover) {
    Antichain result;
    const GammaInfo& info = gammas_[st.g];

    // Shared move options: exit upward / descend into a proof child.
    auto try_exit = [&]() {
      PState exit;
      exit.tag = st.tag;
      exit.g = st.g;
      exit.id = st.id;
      exit.s = st.s;
      for (int w : st.m) {
        int pos = HeadPosition(rule.head, w);
        if (pos < 0) return;
        exit.m.push_back(static_cast<std::int8_t>(pos));
      }
      AntichainInsert(&result, ExitSet{std::move(exit)});
    };
    auto try_descend = [&]() {
      for (std::size_t c = 0; c < rule.idb_atoms.size(); ++c) {
        const InstIdbAtom& child = rule.idb_atoms[c];
        PState entry;
        entry.tag = st.tag;
        entry.g = st.g;
        entry.id = st.id;
        entry.s = st.s;
        bool ok = true;
        for (int w : st.m) {
          int pos = -1;
          for (std::size_t p = 0; p < child.terms.size(); ++p) {
            if (child.terms[p] == w) {
              pos = static_cast<int>(p);
              break;
            }
          }
          if (pos < 0) {
            ok = false;
            break;
          }
          entry.m.push_back(static_cast<std::int8_t>(pos));
        }
        if (!ok) continue;
        const Summary& child_summary =
            state_[child.kind_id].summaries[combo[c]];
        auto it = child_summary.at.find(entry);
        if (it == child_summary.at.end()) continue;
        for (const ExitSet& exits : it->second) {
          std::vector<WState> continuations;
          continuations.reserve(exits.size());
          for (const PState& x : exits) {
            continuations.push_back(ToW(x, child.terms));
          }
          std::vector<const Antichain*> parts;
          for (const WState& sp : continuations) discover(sp);
          for (const WState& sp : continuations) parts.push_back(&table.at(sp));
          CombineProduct(parts, &result);
        }
      }
    };

    switch (st.tag) {
      case kVarCheck: {
        int pos = HeadPosition(rule.head, st.m[0]);
        if (pos >= 0) {
          PState exit;
          exit.tag = kVarCheck;
          exit.g = st.g;
          exit.id = st.id;
          exit.m = {static_cast<std::int8_t>(pos)};
          AntichainInsert(&result, ExitSet{std::move(exit)});
        }
        return result;
      }
      case kVarNode: {
        // Conjunction of all outgoing edge bundles plus free-variable
        // checks; this state does not move.
        std::vector<WState> parts_states;
        int x = st.id;
        for (int ei : info.out_edges[x]) {
          const GEdge& edge = info.edges[ei];
          WState me;
          me.tag = kMultiedge;
          me.g = st.g;
          me.id = static_cast<std::int16_t>(ei);
          me.s.assign(edge.nfas.size(), 0);
          for (std::size_t i = 0; i < edge.nfas.size(); ++i) {
            me.s[i] = static_cast<std::int16_t>(edge.nfas[i].initial());
          }
          me.m.assign(edge.nfas.size() + (edge.is_loop ? 1 : 0), st.m[0]);
          parts_states.push_back(std::move(me));
        }
        for (auto [j, v] : info.free_occurrences) {
          if (v != x) continue;
          WState vc;
          vc.tag = kVarCheck;
          vc.g = st.g;
          vc.id = static_cast<std::int16_t>(j);
          vc.m = {st.m[0]};
          parts_states.push_back(std::move(vc));
        }
        std::vector<const Antichain*> parts;
        for (const WState& sp : parts_states) discover(sp);
        for (const WState& sp : parts_states) parts.push_back(&table.at(sp));
        CombineProduct(parts, &result);
        return result;
      }
      case kSeek: {
        // Guess the image of the component root among this instance's
        // variables, or keep looking elsewhere in the proof tree.
        for (int w : RuleVars(rule)) {
          WState vn;
          vn.tag = kVarNode;
          vn.g = st.g;
          vn.id = st.id;
          vn.m = {w};
          discover(vn);
          for (const ExitSet& s : table.at(vn)) {
            AntichainInsert(&result, s);
          }
        }
        try_exit();
        try_descend();
        return result;
      }
      case kMultiedge: {
        const GEdge& edge = info.edges[st.id];
        const std::size_t walks = edge.nfas.size();
        // Convergence: every walk effectively accepting on a common,
        // connected variable (for loops: the fixed target).
        bool converged = true;
        for (std::size_t i = 0; i < walks && converged; ++i) {
          if (!edge.nfas[i].IsEffectivelyAccepting(st.s[i])) converged = false;
          if (st.m[i] != st.m[0]) converged = false;
        }
        if (converged && edge.is_loop && st.m[0] != st.m[walks]) {
          converged = false;
        }
        if (converged) {
          if (edge.is_loop) {
            // The loop target was already processed; this bundle is done.
            AntichainInsert(&result, ExitSet{});
          } else {
            WState vn;
            vn.tag = kVarNode;
            vn.g = st.g;
            vn.id = static_cast<std::int16_t>(edge.y);
            vn.m = {st.m[0]};
            discover(vn);
            for (const ExitSet& s : table.at(vn)) AntichainInsert(&result, s);
          }
        }
        // Advance one walk over an extensional edge atom of this instance.
        for (std::size_t i = 0; i < walks; ++i) {
          for (const auto& [symbol, next] : edge.nfas[i].ClosedSteps(st.s[i])) {
            bool inverse = !symbol.empty() && symbol.back() == '-';
            std::string label =
                inverse ? symbol.substr(0, symbol.size() - 1) : symbol;
            for (const auto& [pred, terms] : rule.edb_atoms) {
              if (pred != label || terms.size() != 2) continue;
              int from = inverse ? terms[1] : terms[0];
              int to = inverse ? terms[0] : terms[1];
              if (st.m[i] != from) continue;
              WState ns = st;
              ns.s[i] = static_cast<std::int16_t>(next);
              ns.m[i] = to;
              discover(ns);
              for (const ExitSet& s : table.at(ns)) AntichainInsert(&result, s);
            }
          }
        }
        try_exit();
        try_descend();
        return result;
      }
    }
    return result;
  }

  bool RootAccepts(const Summary& summary,
                   const std::vector<int>& pattern) const {
    for (std::size_t g = 0; g < gammas_.size(); ++g) {
      const GammaInfo& info = gammas_[g];
      bool all_roots = true;
      for (int root : info.roots) {
        PState entry;
        entry.tag = kSeek;
        entry.g = static_cast<std::int16_t>(g);
        entry.id = static_cast<std::int16_t>(root);
        auto it = summary.at.find(entry);
        bool some_set = false;
        if (it != summary.at.end()) {
          for (const ExitSet& s : it->second) {
            bool good = true;
            for (const PState& x : s) {
              if (x.tag != kVarCheck || pattern[x.m[0]] != pattern[x.id]) {
                good = false;
                break;
              }
            }
            if (good) {
              some_set = true;
              break;
            }
          }
        }
        if (!some_set) {
          all_roots = false;
          break;
        }
      }
      if (all_roots) return true;
    }
    return false;
  }

  const DatalogProgram& program_;
  const UC2rpq& gamma_;
  AcrkEngineStats* stats_;
  AcrkEngineLimits limits_;
  AcrkEngineStats run_;      // this run's deltas; flushed once by Run
  bool summarized_ = false;  // post-fixpoint snapshot fields are valid
  bool level_set_ = false;   // run_.acrk_level was computed

  std::vector<GammaInfo> gammas_;
  KindSpace kinds_;
  std::vector<KindState> state_;
  std::set<std::string> processed_;
};

}  // namespace

Result<ContainmentAnswer> DatalogContainedInAcyclicUC2rpq(
    const DatalogProgram& program, const UC2rpq& gamma,
    AcrkEngineStats* stats, const AcrkEngineLimits& limits) {
  QCONT_RETURN_IF_ERROR(program.Validate());
  QCONT_RETURN_IF_ERROR(gamma.Validate());
  QCONT_RETURN_IF_ERROR(
      analysis::FirstError(analysis::CheckContainmentPair(program, gamma)));
  AcrkEngine engine(program, gamma, stats, limits);
  return engine.Run();
}

}  // namespace qcont

#ifndef QCONT_CORE_DATALOG_UC2RPQ_H_
#define QCONT_CORE_DATALOG_UC2RPQ_H_

#include <optional>

#include "base/status.h"
#include "core/acrk_containment.h"
#include "cq/query.h"
#include "datalog/program.h"
#include "graphdb/c2rpq.h"

namespace qcont {

/// Verdict of the general CONT(Datalog, UC2RPQ) front-end.
enum class Uc2rpqVerdict {
  kContained,
  kNotContained,
  kUnknown,  // cyclic Γ and the bounded refutation search was exhausted
};

struct Uc2rpqAnswer {
  Uc2rpqVerdict verdict = Uc2rpqVerdict::kUnknown;
  std::optional<ConjunctiveQuery> witness;  // for kNotContained
  bool used_exact_engine = false;           // Γ was acyclic
};

/// Options of the bounded refutation search used for cyclic Γ.
struct Uc2rpqSearchOptions {
  int max_depth = 5;
  std::size_t max_expansions = 5000;
  /// Observability sink (optional, borrowed). Forwarded into the ACRk
  /// engine's limits when Γ is acyclic.
  const ObsContext* obs = nullptr;
};

/// CONT(Datalog, UC2RPQ), Theorem 7's problem. Exact when Γ is acyclic
/// (routes to the ACRk engine — the paper's Theorem 9 algorithm, which is
/// correct for all of ACR and singly exponential when the multiedge bound k
/// is fixed). For cyclic Γ the full Calvanese-De Giacomo-Vardi 2EXPTIME
/// automaton is out of scope (see DESIGN.md §5); instead a sound bounded
/// refutation search runs: expansions of Π up to a depth bound are
/// evaluated against Γ (complete C2RPQ evaluation on the expansion's
/// canonical graph), so kNotContained answers carry a verified witness and
/// exhaustion reports kUnknown rather than guessing.
Result<Uc2rpqAnswer> DatalogContainedInUC2rpq(
    const DatalogProgram& program, const UC2rpq& gamma,
    const Uc2rpqSearchOptions& options = Uc2rpqSearchOptions());

}  // namespace qcont

#endif  // QCONT_CORE_DATALOG_UC2RPQ_H_

#include "core/ack_containment.h"

#include <algorithm>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "analysis/analyzer.h"
#include "base/check.h"
#include "core/instantiate.h"
#include "structure/classify.h"
#include "structure/decomposition.h"
#include "structure/join_tree.h"

namespace qcont {

namespace {

using internal::InstIdbAtom;
using internal::InstRule;
using internal::KindSpace;

// ---------------------------------------------------------------------------
// Disjunct preprocessing: join-tree view of each (acyclic) CQ of Θ.
// ---------------------------------------------------------------------------

struct AckDisjunct {
  int num_vars = 0;
  std::vector<std::string> preds;           // per atom
  std::vector<std::vector<int>> atom_vars;  // per atom: term variable ids
  std::vector<std::vector<int>> jt_children;
  std::vector<int> jt_roots;
  // Per atom: variables shared with the join-tree parent (sorted); this is
  // the domain of every map M carried by an atom state (A, M). Bounded by k
  // for Θ ∈ ACk.
  std::vector<std::vector<int>> entry_dom;
  std::vector<std::pair<int, int>> free_occurrences;  // (head position, var)
  std::vector<int> head;                              // var id per position
};

Result<AckDisjunct> BuildAckDisjunct(const ConjunctiveQuery& cq) {
  AckDisjunct d;
  std::unordered_map<std::string, int> var_index;
  auto var_id = [&](const std::string& name) {
    auto [it, inserted] = var_index.emplace(name, d.num_vars);
    if (inserted) ++d.num_vars;
    return it->second;
  };
  for (const Atom& atom : cq.atoms()) {
    d.preds.push_back(atom.predicate());
    std::vector<int> vars;
    for (const Term& t : atom.terms()) {
      if (!t.is_variable()) {
        return InvalidArgumentError(
            "the containment engines require constant-free queries");
      }
      vars.push_back(var_id(t.name()));
    }
    d.atom_vars.push_back(std::move(vars));
  }
  QCONT_ASSIGN_OR_RETURN(JoinTree jt, BuildJoinTree(cq));
  // Certify the join tree (width-1 GHW certificate) before trusting it.
  QCONT_RETURN_IF_ERROR(CertificateFromJoinTree(cq, jt).status());
  d.jt_children = jt.Children();
  d.jt_roots = jt.Roots();
  d.entry_dom.resize(cq.atoms().size());
  for (std::size_t a = 0; a < cq.atoms().size(); ++a) {
    if (jt.parent[a] < 0) continue;
    std::set<int> mine(d.atom_vars[a].begin(), d.atom_vars[a].end());
    std::set<int> parents(d.atom_vars[jt.parent[a]].begin(),
                          d.atom_vars[jt.parent[a]].end());
    for (int v : mine) {
      if (parents.count(v)) d.entry_dom[a].push_back(v);
    }
  }
  for (std::size_t j = 0; j < cq.head().size(); ++j) {
    int v = var_id(cq.head()[j].name());
    d.head.push_back(v);
    d.free_occurrences.emplace_back(static_cast<int>(j), v);
  }
  return d;
}

// ---------------------------------------------------------------------------
// States of the 2ATA B^Θ_Π in "position form" (interface-relative).
// ---------------------------------------------------------------------------

// An atom state (d, atom, m): m gives, for each variable of entry_dom[atom],
// the head position it is bound to. A variable state (d = -1 convention not
// used; var states set atom = -1): j is the free-variable position and m is
// the single head position the play carries.
struct PState {
  std::int16_t d = 0;
  std::int16_t atom = -1;  // -1: variable state
  std::int16_t j = -1;     // set for variable states
  std::vector<std::int8_t> m;

  friend bool operator<(const PState& a, const PState& b) {
    if (a.d != b.d) return a.d < b.d;
    if (a.atom != b.atom) return a.atom < b.atom;
    if (a.j != b.j) return a.j < b.j;
    return a.m < b.m;
  }
  friend bool operator==(const PState& a, const PState& b) {
    return a.d == b.d && a.atom == b.atom && a.j == b.j && a.m == b.m;
  }
};

using ExitSet = std::vector<PState>;  // sorted, unique
using Antichain = std::vector<ExitSet>;

bool IsSubsetOf(const ExitSet& a, const ExitSet& b) {
  return std::includes(b.begin(), b.end(), a.begin(), a.end());
}

// Inserts `s` keeping only minimal sets. Returns true if the antichain
// changed.
bool AntichainInsert(Antichain* ac, ExitSet s) {
  for (const ExitSet& t : *ac) {
    if (IsSubsetOf(t, s)) return false;
  }
  ac->erase(std::remove_if(ac->begin(), ac->end(),
                           [&s](const ExitSet& t) { return IsSubsetOf(s, t); }),
            ac->end());
  ac->push_back(std::move(s));
  return true;
}

ExitSet UnionSets(const ExitSet& a, const ExitSet& b) {
  ExitSet out;
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

void SortAntichain(Antichain* ac) { std::sort(ac->begin(), ac->end()); }

// Inserts into `out` every union of one pick per antichain in `parts`.
void CombineProduct(const std::vector<const Antichain*>& parts,
                    Antichain* out) {
  ExitSet acc;
  std::function<void(std::size_t)> rec = [&](std::size_t i) {
    if (i == parts.size()) {
      AntichainInsert(out, acc);
      return;
    }
    for (const ExitSet& s : *parts[i]) {
      ExitSet saved = acc;
      acc = UnionSets(acc, s);
      rec(i + 1);
      acc = std::move(saved);
    }
  };
  rec(0);
}

// The behaviour summary of a subtree: for each entry state, the antichain
// of minimal exit-state sets Eve can enforce (∅ present means Eve can win
// entirely inside the subtree).
struct Summary {
  std::map<PState, Antichain> at;

  std::string Canonical() const {
    std::string out;
    auto put_state = [&out](const PState& s) {
      out += std::to_string(s.d) + "." + std::to_string(s.atom) + "." +
             std::to_string(s.j) + ".";
      for (std::int8_t x : s.m) out += static_cast<char>('A' + (x + 1));
    };
    for (const auto& [entry, ac] : at) {
      out += "|E";
      put_state(entry);
      out += "{";
      for (const ExitSet& s : ac) {
        out += "(";
        for (const PState& x : s) {
          put_state(x);
          out += ";";
        }
        out += ")";
      }
      out += "}";
    }
    return out;
  }
};

// W-form states used inside one local game: bindings are rule-variable
// representatives instead of head positions.
struct WState {
  std::int16_t d = 0;
  std::int16_t atom = -1;
  std::int16_t j = -1;
  std::vector<int> m;

  friend bool operator<(const WState& a, const WState& b) {
    if (a.d != b.d) return a.d < b.d;
    if (a.atom != b.atom) return a.atom < b.atom;
    if (a.j != b.j) return a.j < b.j;
    return a.m < b.m;
  }
};

struct Provenance {
  int rule_pos = -1;
  std::vector<int> child_summaries;
};

struct KindState {
  std::vector<Summary> summaries;
  std::vector<Provenance> provenance;
  std::set<std::string> canon;
};

// ---------------------------------------------------------------------------
// The engine.
// ---------------------------------------------------------------------------

class AckEngine {
 public:
  AckEngine(const DatalogProgram& program, const UnionQuery& ucq,
            AckEngineStats* stats, const AckEngineLimits& limits)
      : program_(program),
        ucq_(ucq),
        stats_(stats),
        limits_(limits),
        kinds_(program) {}

  // Engine runs accumulate into the run-local `run_`; `Run` flushes it to
  // the caller's legacy sink and the registry in one place at the end.
  Result<ContainmentAnswer> Run() {
    Result<ContainmentAnswer> result = RunImpl();
    Flush();
    return result;
  }

 private:
  Result<ContainmentAnswer> RunImpl() {
    ObsSpan run_span(limits_.obs, "ack/run", "core");
    for (const ConjunctiveQuery& cq : ucq_.disjuncts()) {
      if (!IsAcyclic(cq)) {
        return FailedPreconditionError(
            "the ACk engine requires an acyclic UCQ; disjunct is cyclic: " +
            cq.ToString());
      }
      QCONT_ASSIGN_OR_RETURN(AckDisjunct d, BuildAckDisjunct(cq));
      disjuncts_.push_back(std::move(d));
      // AC1 is the lowest level of the hierarchy by convention.
      run_.ack_level = std::max({run_.ack_level, 1, MaxSharedVariables(cq)});
    }
    std::vector<int> root_kinds = kinds_.RootKinds();
    state_.resize(kinds_.NumKinds());
    QCONT_RETURN_IF_ERROR(Fixpoint());
    run_.kinds = kinds_.NumKinds();
    for (const KindState& k : state_) {
      run_.summaries += k.summaries.size();
      for (const Summary& s : k.summaries) {
        for (const auto& [entry, ac] : s.at) {
          run_.antichain_sets += ac.size();
        }
      }
    }
    summarized_ = true;
    for (int kind_id : root_kinds) {
      const std::vector<int>& pattern = kinds_.KeyOf(kind_id).pattern;
      const KindState& kind = state_[kind_id];
      for (std::size_t s = 0; s < kind.summaries.size(); ++s) {
        if (!RootAccepts(kind.summaries[s], pattern)) {
          ContainmentAnswer answer;
          answer.contained = false;
          answer.witness = internal::BuildWitnessCq(
              kinds_, kind_id, static_cast<long>(s),
              [this](int k, long token) {
                const Provenance& prov = state_[k].provenance[token];
                internal::WitnessNode node;
                node.rule = &kinds_.RulesOf(k)[prov.rule_pos];
                node.child_tokens.assign(prov.child_summaries.begin(),
                                         prov.child_summaries.end());
                return node;
              });
          return answer;
        }
      }
    }
    ContainmentAnswer answer;
    answer.contained = true;
    return answer;
  }

  // Reproduces the legacy sink's mixed semantics (see AckEngineStats) and
  // publishes the same run-local values to the registry: the per-event
  // counters flush unconditionally (they were bumped before any error), the
  // post-fixpoint snapshot fields only when the fixpoint completed.
  void Flush() {
    if (MetricRegistry* metrics = ObsMetrics(limits_.obs)) {
      metrics->Add("ack.combos", run_.combos);
      metrics->Add("ack.game_states", run_.game_states);
      metrics->SetGauge("ack.level", static_cast<std::uint64_t>(run_.ack_level));
      if (summarized_) {
        metrics->Add("ack.summaries", run_.summaries);
        metrics->Add("ack.antichain_sets", run_.antichain_sets);
        metrics->SetGauge("ack.kinds", run_.kinds);
      }
    }
    if (stats_ == nullptr) return;
    stats_->combos += run_.combos;
    stats_->game_states += run_.game_states;
    stats_->ack_level = std::max(stats_->ack_level, run_.ack_level);
    if (summarized_) {
      stats_->kinds = run_.kinds;
      stats_->summaries += run_.summaries;
      stats_->antichain_sets += run_.antichain_sets;
    }
  }

  // Same reachability fixpoint shape as the general engine, over summaries.
  Status Fixpoint() {
    std::uint64_t total = 0;
    std::uint64_t round = 0;
    bool changed = true;
    while (changed) {
      changed = false;
      ObsSpan round_span(limits_.obs, "ack/round", "core");
      round_span.AddArg("round", round++);
      for (std::size_t k = 0; k < kinds_.NumKinds(); ++k) {
        const std::vector<InstRule>& rules = kinds_.RulesOf(static_cast<int>(k));
        for (std::size_t rp = 0; rp < rules.size(); ++rp) {
          const InstRule& rule = rules[rp];
          const std::size_t num_children = rule.idb_atoms.size();
          bool viable = true;
          for (const InstIdbAtom& child : rule.idb_atoms) {
            if (state_[child.kind_id].summaries.empty()) {
              viable = false;
              break;
            }
          }
          if (!viable) continue;
          std::vector<int> combo(num_children, 0);
          while (true) {
            std::string combo_key =
                std::to_string(k) + "/" + std::to_string(rp);
            for (int c : combo) combo_key += "," + std::to_string(c);
            if (processed_.insert(combo_key).second) {
              ++run_.combos;
              if (processed_.size() > limits_.max_combos) {
                return ResourceExhaustedError(
                    "ACk-engine combination budget exceeded");
              }
              Summary summary =
                  ComputeSummary(static_cast<int>(k), rule, combo);
              std::string canon = summary.Canonical();
              if (state_[k].canon.insert(canon).second) {
                state_[k].summaries.push_back(std::move(summary));
                Provenance prov;
                prov.rule_pos = static_cast<int>(rp);
                prov.child_summaries = combo;
                state_[k].provenance.push_back(std::move(prov));
                if (++total > limits_.max_summaries) {
                  return ResourceExhaustedError(
                      "ACk-engine summary budget exceeded");
                }
                changed = true;
              }
            }
            std::size_t pos = 0;
            while (pos < num_children) {
              int limit = static_cast<int>(
                  state_[rule.idb_atoms[pos].kind_id].summaries.size());
              if (++combo[pos] < limit) break;
              combo[pos] = 0;
              ++pos;
            }
            if (pos == num_children) break;
          }
        }
      }
    }
    return Status::Ok();
  }

  // Solves the local acceptance game at a node labeled by `rule` whose j-th
  // intensional child has the chosen summary, producing this subtree's own
  // summary. The game table maps W-form states to antichains of minimal
  // exit sets (position form, relative to this kind's head).
  Summary ComputeSummary(int kind_id, const InstRule& rule,
                         const std::vector<int>& combo) {
    const std::vector<int>& pattern = kinds_.KeyOf(kind_id).pattern;
    (void)pattern;
    std::map<WState, Antichain> table;
    std::vector<WState> order;
    auto discover = [&](const WState& s) {
      if (table.emplace(s, Antichain{}).second) {
        order.push_back(s);
        ++run_.game_states;
      }
    };

    // Seed with all entry states of this kind (in W form).
    std::vector<PState> entries = EntrySpace(rule);
    for (const PState& e : entries) discover(ToW(e, rule.head));

    // Least fixpoint: re-evaluate discovered states until stable. States
    // discovered during evaluation join the sweep.
    bool changed = true;
    while (changed) {
      changed = false;
      for (std::size_t i = 0; i < order.size(); ++i) {
        WState s = order[i];
        Antichain fresh = EvalState(s, rule, combo, table, discover);
        SortAntichain(&fresh);
        if (fresh != table.at(s)) {
          table[s] = std::move(fresh);
          changed = true;
        }
      }
    }

    Summary out;
    for (const PState& e : entries) {
      out.at.emplace(e, table.at(ToW(e, rule.head)));
    }
    return out;
  }

  // All entry states of a subtree of this kind: per disjunct and join-tree
  // atom, every binding of the atom's entry domain to head positions
  // (canonical positions only), plus the unbound entry for join roots.
  std::vector<PState> EntrySpace(const InstRule& rule) const {
    std::vector<PState> out;
    const int arity = static_cast<int>(rule.head.size());
    // Canonical positions: first occurrence of each head representative.
    std::vector<std::int8_t> canonical;
    for (int p = 0; p < arity; ++p) {
      bool first = true;
      for (int q = 0; q < p; ++q) {
        if (rule.head[q] == rule.head[p]) first = false;
      }
      if (first) canonical.push_back(static_cast<std::int8_t>(p));
    }
    for (std::size_t d = 0; d < disjuncts_.size(); ++d) {
      const AckDisjunct& dj = disjuncts_[d];
      for (std::size_t a = 0; a < dj.preds.size(); ++a) {
        const std::size_t dom = dj.entry_dom[a].size();
        std::vector<std::int8_t> m(dom, 0);
        std::function<void(std::size_t)> rec = [&](std::size_t i) {
          if (i == dom) {
            PState e;
            e.d = static_cast<std::int16_t>(d);
            e.atom = static_cast<std::int16_t>(a);
            e.m = m;
            out.push_back(std::move(e));
            return;
          }
          for (std::int8_t p : canonical) {
            m[i] = p;
            rec(i + 1);
          }
        };
        if (dom == 0) {
          rec(0);
        } else if (!canonical.empty()) {
          rec(0);
        }
        // dom > 0 with arity 0 head: no entries (a bound variable cannot
        // cross a 0-ary interface).
      }
    }
    return out;
  }

  WState ToW(const PState& p, const std::vector<int>& head) const {
    WState w;
    w.d = p.d;
    w.atom = p.atom;
    w.j = p.j;
    w.m.reserve(p.m.size());
    for (std::int8_t pos : p.m) w.m.push_back(head[pos]);
    return w;
  }

  // Canonical head position of rule variable `w`, or -1 if not in the head.
  static int HeadPosition(const std::vector<int>& head, int w) {
    for (std::size_t p = 0; p < head.size(); ++p) {
      if (head[p] == w) return static_cast<int>(p);
    }
    return -1;
  }

  Antichain EvalState(const WState& s, const InstRule& rule,
                      const std::vector<int>& combo,
                      std::map<WState, Antichain>& table,
                      const std::function<void(const WState&)>& discover) {
    Antichain result;
    if (s.atom < 0) {
      // Variable state (j, w): its only option is to exit upward, checking
      // that w survives into the head.
      int pos = HeadPosition(rule.head, s.m[0]);
      if (pos >= 0) {
        PState exit;
        exit.d = s.d;
        exit.atom = -1;
        exit.j = s.j;
        exit.m = {static_cast<std::int8_t>(pos)};
        AntichainInsert(&result, ExitSet{std::move(exit)});
      }
      return result;
    }
    const AckDisjunct& dj = disjuncts_[s.d];
    const int a = s.atom;

    // Option (c): exit upward, if every binding survives into the head.
    {
      PState exit;
      exit.d = s.d;
      exit.atom = s.atom;
      bool ok = true;
      for (int w : s.m) {
        int pos = HeadPosition(rule.head, w);
        if (pos < 0) {
          ok = false;
          break;
        }
        exit.m.push_back(static_cast<std::int8_t>(pos));
      }
      if (ok) AntichainInsert(&result, ExitSet{std::move(exit)});
    }

    // Option (a): map atom `a` onto an extensional atom of this rule
    // instance, spawning plays for the join children and the distinguished
    // variables of `a`.
    for (const auto& [pred, terms] : rule.edb_atoms) {
      if (pred != dj.preds[a] || terms.size() != dj.atom_vars[a].size()) {
        continue;
      }
      // Unify, seeded with the entry bindings.
      std::map<int, int> g;  // disjunct variable -> W rep
      for (std::size_t i = 0; i < dj.entry_dom[a].size(); ++i) {
        g[dj.entry_dom[a][i]] = s.m[i];
      }
      bool ok = true;
      for (std::size_t i = 0; i < terms.size() && ok; ++i) {
        auto [it, inserted] = g.emplace(dj.atom_vars[a][i], terms[i]);
        if (!inserted && it->second != terms[i]) ok = false;
      }
      if (!ok) continue;
      std::vector<WState> spawned;
      for (int b : dj.jt_children[a]) {
        WState child;
        child.d = s.d;
        child.atom = static_cast<std::int16_t>(b);
        for (int v : dj.entry_dom[b]) child.m.push_back(g.at(v));
        spawned.push_back(std::move(child));
      }
      for (auto [j, v] : dj.free_occurrences) {
        if (g.count(v)) {
          // Only variables of atom `a` spawn here.
          bool in_atom = false;
          for (int u : dj.atom_vars[a]) in_atom = in_atom || u == v;
          if (!in_atom) continue;
          WState var;
          var.d = s.d;
          var.atom = -1;
          var.j = static_cast<std::int16_t>(j);
          var.m = {g.at(v)};
          spawned.push_back(std::move(var));
        }
      }
      std::vector<const Antichain*> parts;
      for (const WState& sp : spawned) discover(sp);
      for (const WState& sp : spawned) parts.push_back(&table.at(sp));
      CombineProduct(parts, &result);
    }

    // Option (b): move into a proof-tree child whose head carries all the
    // current bindings; consult the child's summary and continue every
    // returned exit play at this node.
    for (std::size_t c = 0; c < rule.idb_atoms.size(); ++c) {
      const InstIdbAtom& child = rule.idb_atoms[c];
      PState entry;
      entry.d = s.d;
      entry.atom = s.atom;
      bool ok = true;
      for (int w : s.m) {
        int pos = -1;
        for (std::size_t p = 0; p < child.terms.size(); ++p) {
          if (child.terms[p] == w) {
            pos = static_cast<int>(p);
            break;
          }
        }
        if (pos < 0) {
          ok = false;
          break;
        }
        entry.m.push_back(static_cast<std::int8_t>(pos));
      }
      if (!ok) continue;
      const Summary& child_summary =
          state_[child.kind_id].summaries[combo[c]];
      auto it = child_summary.at.find(entry);
      if (it == child_summary.at.end()) continue;
      for (const ExitSet& exits : it->second) {
        std::vector<WState> continuations;
        continuations.reserve(exits.size());
        for (const PState& x : exits) {
          WState w = ToW(x, child.terms);
          continuations.push_back(std::move(w));
        }
        std::vector<const Antichain*> parts;
        for (const WState& sp : continuations) discover(sp);
        for (const WState& sp : continuations) parts.push_back(&table.at(sp));
        CombineProduct(parts, &result);
      }
    }
    return result;
  }

  // The whole proof tree is accepted by B^Θ_Π iff for some disjunct θ every
  // join-forest root play, started unbound at the tree root, can be won by
  // Eve with all residual exits being variable checks that succeed at the
  // root (a variable exit (j, p) succeeds iff positions j and p of the root
  // head are equal; an atom exit at the root is a dead upward move).
  bool RootAccepts(const Summary& summary,
                   const std::vector<int>& pattern) const {
    for (std::size_t d = 0; d < disjuncts_.size(); ++d) {
      const AckDisjunct& dj = disjuncts_[d];
      bool all_roots = true;
      for (int root : dj.jt_roots) {
        PState entry;
        entry.d = static_cast<std::int16_t>(d);
        entry.atom = static_cast<std::int16_t>(root);
        auto it = summary.at.find(entry);
        bool some_set = false;
        if (it != summary.at.end()) {
          for (const ExitSet& s : it->second) {
            bool good = true;
            for (const PState& x : s) {
              if (x.atom >= 0) {
                good = false;  // atom play stuck at the root
                break;
              }
              if (pattern[x.m[0]] != pattern[x.j]) {
                good = false;  // distinguished variable at the wrong position
                break;
              }
            }
            if (good) {
              some_set = true;
              break;
            }
          }
        }
        if (!some_set) {
          all_roots = false;
          break;
        }
      }
      if (all_roots) return true;
    }
    return false;
  }

  const DatalogProgram& program_;
  const UnionQuery& ucq_;
  AckEngineStats* stats_;
  AckEngineLimits limits_;
  AckEngineStats run_;      // this run's deltas; flushed once by Run
  bool summarized_ = false; // post-fixpoint snapshot fields are valid

  std::vector<AckDisjunct> disjuncts_;
  KindSpace kinds_;
  std::vector<KindState> state_;
  std::set<std::string> processed_;
};

}  // namespace

Result<ContainmentAnswer> DatalogContainedInAcyclicUcq(
    const DatalogProgram& program, const UnionQuery& ucq,
    AckEngineStats* stats, const AckEngineLimits& limits) {
  QCONT_RETURN_IF_ERROR(program.Validate());
  QCONT_RETURN_IF_ERROR(ucq.Validate());
  QCONT_RETURN_IF_ERROR(
      analysis::FirstError(analysis::CheckContainmentPair(program, ucq)));
  AckEngine engine(program, ucq, stats, limits);
  return engine.Run();
}

}  // namespace qcont

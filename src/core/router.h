#ifndef QCONT_CORE_ROUTER_H_
#define QCONT_CORE_ROUTER_H_

#include <string>

#include "analysis/report.h"
#include "base/status.h"
#include "core/ack_containment.h"
#include "core/datalog_ucq.h"
#include "datalog/program.h"
#include "obs/obs.h"

namespace qcont {

/// Which engine decided a routed containment call.
enum class ContainmentRoute {
  kAckEngine,      // acyclic UCQ: EXPTIME engine (Theorem 6 / Corollary 1)
  kGeneralEngine,  // arbitrary UCQ: 2EXPTIME type engine (Theorem 2)
};

struct RoutedAnswer {
  ContainmentAnswer answer;
  ContainmentRoute route = ContainmentRoute::kGeneralEngine;
  int ack_level = 0;  // k such that Θ ∈ ACk, when routed to the ACk engine
};

const char* RouteName(ContainmentRoute route);

/// Route override for DecideContainment; kAuto defers to the analysis
/// layer's ChooseEngine over the cached AnalysisReport. Forcing the ACk
/// engine on a cyclic UCQ surfaces that engine's kFailedPrecondition.
enum class ForcedRoute {
  kAuto,
  kAckEngine,
  kGeneralEngine,
};

/// Options for a routed containment call. Engine sub-options ride along so
/// callers can tune either engine without knowing which one will run.
struct RouterOptions {
  /// Observability sink (optional, borrowed). Copied into `general.obs` /
  /// `ack.obs` when those are unset, so one pointer instruments whichever
  /// engine the router picks, plus the router's own `router/decide` span.
  const ObsContext* obs = nullptr;
  /// Options for the general 2EXPTIME type engine route.
  TypeEngineOptions general;
  /// Limits for the single-exponential ACk engine route.
  AckEngineLimits ack;
  /// Engine override (differential tests, debugging).
  ForcedRoute force = ForcedRoute::kAuto;
  /// Consult/populate the global analysis report cache.
  bool use_analysis_cache = true;
  /// Request-scoped routing: a report for this exact (program, ucq) pair
  /// that the caller already holds (e.g. fetched from the server's plan
  /// cache). When set, the router routes from it directly and never
  /// consults or populates the global analysis cache. Borrowed; must
  /// outlive the call.
  const analysis::AnalysisReport* report = nullptr;
  /// Program-keyed kind-space memoization for the general route (optional,
  /// borrowed; program_artifact_cache.h). Copied into
  /// `general.artifact_cache` when that is unset, mirroring `obs` — so one
  /// pointer serves whichever engine the router picks (the ACk route has no
  /// type-engine expansion and ignores it).
  ProgramArtifactCache* artifact_cache = nullptr;
};

/// Decides Π ⊆ Θ picking the best engine per the paper's classification
/// (Corollary 1): if Θ is acyclic — which covers every acyclic UCQ over an
/// arity-c schema (then Θ ∈ ACc) and every TW(1) UCQ (then Θ ∈ AC2) — use
/// the single-exponential ACk engine; otherwise fall back to the general
/// doubly-exponential engine.
Result<RoutedAnswer> DecideContainment(const DatalogProgram& program,
                                       const UnionQuery& ucq,
                                       const RouterOptions& options);
Result<RoutedAnswer> DecideContainment(const DatalogProgram& program,
                                       const UnionQuery& ucq);

}  // namespace qcont

#endif  // QCONT_CORE_ROUTER_H_

#ifndef QCONT_CORE_ROUTER_H_
#define QCONT_CORE_ROUTER_H_

#include <string>

#include "base/status.h"
#include "core/ack_containment.h"
#include "core/datalog_ucq.h"
#include "datalog/program.h"

namespace qcont {

/// Which engine decided a routed containment call.
enum class ContainmentRoute {
  kAckEngine,      // acyclic UCQ: EXPTIME engine (Theorem 6 / Corollary 1)
  kGeneralEngine,  // arbitrary UCQ: 2EXPTIME type engine (Theorem 2)
};

struct RoutedAnswer {
  ContainmentAnswer answer;
  ContainmentRoute route = ContainmentRoute::kGeneralEngine;
  int ack_level = 0;  // k such that Θ ∈ ACk, when routed to the ACk engine
};

const char* RouteName(ContainmentRoute route);

/// Decides Π ⊆ Θ picking the best engine per the paper's classification
/// (Corollary 1): if Θ is acyclic — which covers every acyclic UCQ over an
/// arity-c schema (then Θ ∈ ACc) and every TW(1) UCQ (then Θ ∈ AC2) — use
/// the single-exponential ACk engine; otherwise fall back to the general
/// doubly-exponential engine.
Result<RoutedAnswer> DecideContainment(const DatalogProgram& program,
                                       const UnionQuery& ucq);

}  // namespace qcont

#endif  // QCONT_CORE_ROUTER_H_

#include "core/hardness.h"

#include <string>
#include <vector>

namespace qcont {

namespace {

Term V(const std::string& name) { return Term::Variable(name); }

}  // namespace

Status AtmSpec::Validate() const {
  if (num_tape_symbols < 1) return InvalidArgumentError("need a blank symbol");
  if (num_states < 1) return InvalidArgumentError("need at least one state");
  if (initial_state < 0 || initial_state >= num_states) {
    return InvalidArgumentError("initial state out of range");
  }
  if (static_cast<int>(existential.size()) != num_states ||
      static_cast<int>(accepting.size()) != num_states) {
    return InvalidArgumentError("state attribute vectors sized wrong");
  }
  if (!existential[initial_state]) {
    return InvalidArgumentError(
        "the reduction assumes an existential initial state");
  }
  auto check_delta = [&](const std::vector<std::vector<Step>>& delta,
                         const char* name) -> Status {
    if (static_cast<int>(delta.size()) != num_states) {
      return InvalidArgumentError(std::string(name) + " not total in states");
    }
    for (const auto& row : delta) {
      if (static_cast<int>(row.size()) != num_tape_symbols) {
        return InvalidArgumentError(std::string(name) + " not total in symbols");
      }
      for (const Step& s : row) {
        if (s.write < 0 || s.write >= num_tape_symbols || s.move < -1 ||
            s.move > 1 || s.next_state < 0 || s.next_state >= num_states) {
          return InvalidArgumentError(std::string(name) + " step out of range");
        }
      }
    }
    return Status::Ok();
  };
  QCONT_RETURN_IF_ERROR(check_delta(delta_left, "delta_left"));
  return check_delta(delta_right, "delta_right");
}

AtmSpec AtmSpec::Tiny() {
  AtmSpec m;
  m.num_tape_symbols = 2;  // blank, mark
  m.num_states = 2;        // 0: existential initial, 1: universal accepting
  m.initial_state = 0;
  m.existential = {true, false};
  m.accepting = {false, true};
  // Both branches write the mark and hand over to the other state in place.
  AtmSpec::Step to1{1, 0, 1}, to0{1, 0, 0};
  m.delta_left = {{to1, to1}, {to0, to0}};
  m.delta_right = {{to1, to1}, {to0, to0}};
  return m;
}

namespace {

// The reduction's composite alphabet: plain tape symbols plus (state,
// symbol) pairs. Index layout: plain e -> e; composite (q, e) ->
// T + q*T + e.
struct SymbolTable {
  int tape;    // T
  int states;  // Q

  int NumSymbols() const { return tape + states * tape; }
  bool IsComposite(int s) const { return s >= tape; }
  int StateOf(int s) const { return (s - tape) / tape; }
  int TapeOf(int s) const { return IsComposite(s) ? (s - tape) % tape : s; }
  int Composite(int q, int e) const { return tape + q * tape + e; }

  std::string Name(int s) const {
    if (!IsComposite(s)) return "sym" + std::to_string(s);
    return "head" + std::to_string(StateOf(s)) + "_sym" +
           std::to_string(TapeOf(s));
  }
};

// The successor of the middle cell of a window (prev, cur, next) under a
// deterministic transition function, or -1 if the window is not locally
// consistent with any source configuration (e.g. two heads). Windows from
// valid configurations have exactly the successors this computes; garbage
// windows land in the complement, which only adds error detectors.
int WindowSuccessor(const SymbolTable& sym, const AtmSpec& m,
                    const std::vector<std::vector<AtmSpec::Step>>& delta,
                    int prev, int cur, int next) {
  int composites = (prev >= 0 && sym.IsComposite(prev)) +
                   sym.IsComposite(cur) +
                   (next >= 0 && sym.IsComposite(next));
  if (composites > 1) return -1;
  if (sym.IsComposite(cur)) {
    const AtmSpec::Step& step = delta[sym.StateOf(cur)][sym.TapeOf(cur)];
    if (step.move == 0) return sym.Composite(step.next_state, step.write);
    return step.write;
  }
  if (prev >= 0 && sym.IsComposite(prev)) {
    const AtmSpec::Step& step = delta[sym.StateOf(prev)][sym.TapeOf(prev)];
    if (step.move == +1) return sym.Composite(step.next_state, cur);
  }
  if (next >= 0 && sym.IsComposite(next)) {
    const AtmSpec::Step& step = delta[sym.StateOf(next)][sym.TapeOf(next)];
    if (step.move == -1) return sym.Composite(step.next_state, cur);
  }
  (void)m;
  return cur;
}

// Builds the n fresh address variables "prefix0..prefix{n-1}".
std::vector<Term> AddressVars(const std::string& prefix, int n) {
  std::vector<Term> out;
  out.reserve(n);
  for (int i = 0; i < n; ++i) out.push_back(V(prefix + std::to_string(i)));
  return out;
}

// A(x, y, z, z', a1..an, u, v, w, t).
Atom AtomA(const Term& x, const Term& y, const Term& z, const Term& zp,
           const std::vector<Term>& addr, const Term& u, const Term& v,
           const Term& w, const Term& t) {
  std::vector<Term> args = {x, y, z, zp};
  args.insert(args.end(), addr.begin(), addr.end());
  args.push_back(u);
  args.push_back(v);
  args.push_back(w);
  args.push_back(t);
  return Atom("cell", std::move(args));
}

// B(x, y, z, a1..an, u, v, w, t) — the intensional propagator.
Atom AtomB(const Term& x, const Term& y, const Term& z,
           const std::vector<Term>& addr, const Term& u, const Term& v,
           const Term& w, const Term& t) {
  std::vector<Term> args = {x, y, z};
  args.insert(args.end(), addr.begin(), addr.end());
  args.push_back(u);
  args.push_back(v);
  args.push_back(w);
  args.push_back(t);
  return Atom("prop", std::move(args));
}

}  // namespace

Result<HardnessInstance> BuildTheorem5Instance(const AtmSpec& machine, int n,
                                               const Theorem5Options& options) {
  QCONT_RETURN_IF_ERROR(machine.Validate());
  if (n < 1) return InvalidArgumentError("need at least one address bit");
  SymbolTable sym{machine.num_tape_symbols, machine.num_states};

  const Term x = V("x"), y = V("y"), z = V("z"), zp = V("zp");
  const Term u = V("u"), v = V("v"), w = V("w"), t = V("t");
  const Term u2 = V("u2"), v2 = V("v2"), w2 = V("w2");
  std::vector<Term> addr = AddressVars("a", n);

  std::vector<Rule> rules;

  // Address-bit modification rules: unfolding rewrites bit i to 0 (x) or 1
  // (y). The head bit does not occur in the body in the paper's phrasing;
  // the unary guard bitv(.) restores safety without affecting expansions.
  for (int i = 0; i < n; ++i) {
    for (const Term& bit : {x, y}) {
      std::vector<Term> body_addr = addr;
      body_addr[i] = bit;
      std::vector<Atom> body;
      if (options.domesticate_addresses) {
        body.push_back(Atom("bitv", {addr[i]}));
      }
      body.push_back(AtomB(x, y, z, body_addr, u, v, w, t));
      rules.push_back(Rule{AtomB(x, y, z, addr, u, v, w, t), std::move(body)});
    }
  }

  // Symbol rules: emit the cell atom and continue along the z-chain.
  for (int s = 0; s < sym.NumSymbols(); ++s) {
    rules.push_back(Rule{AtomB(x, y, z, addr, u, v, w, t),
                         {AtomA(x, y, z, zp, addr, u, v, w, t),
                          Atom("q_" + sym.Name(s), {z}),
                          AtomB(x, y, zp, addr, u, v, w, t)}});
  }

  // Transition rules. Existential configurations (flag x) choose a left
  // (u moves one slot) or right (u moves two slots) successor; universal
  // configurations (flag y) spawn both.
  for (int s = 0; s < sym.NumSymbols(); ++s) {
    const Atom q_s = Atom("q_" + sym.Name(s), {z});
    rules.push_back(Rule{AtomB(x, y, z, addr, u, v, w, x),
                         {AtomA(x, y, z, zp, addr, u, v, w, x), q_s,
                          AtomB(x, y, zp, addr, u2, u, w2, y)}});
    rules.push_back(Rule{AtomB(x, y, z, addr, u, v, w, x),
                         {AtomA(x, y, z, zp, addr, u, v, w, x), q_s,
                          AtomB(x, y, zp, addr, u2, v2, u, y)}});
    rules.push_back(Rule{AtomB(x, y, z, addr, u, v, w, y),
                         {AtomA(x, y, z, zp, addr, u, v, w, y), q_s,
                          AtomB(x, y, zp, addr, u2, u, w2, x),
                          AtomB(x, y, zp, addr, u2, v2, u, x)}});
  }

  // Accepting leaves: composite symbols with an accepting state close the
  // propagation.
  for (int q = 0; q < machine.num_states; ++q) {
    if (!machine.accepting[q]) continue;
    for (int e = 0; e < machine.num_tape_symbols; ++e) {
      const int s = sym.Composite(q, e);
      rules.push_back(Rule{AtomB(x, y, z, addr, u, v, w, t),
                           {Atom("q_" + sym.Name(s), {z}),
                            AtomA(x, y, z, zp, addr, u, v, w, t)}});
    }
  }

  // Start rule: the computation begins at address 0..0 in an existential
  // configuration.
  {
    std::vector<Term> zeros(n, x);
    rules.push_back(Rule{Atom("accept_all", {}),
                         {Atom("start", {z}),
                          AtomB(x, y, z, zeros, u, v, w, x)}});
  }

  DatalogProgram program(std::move(rules), "accept_all");

  // ---------------------------------------------------------------------
  // Θ: one acyclic Boolean disjunct per detectable error.
  // ---------------------------------------------------------------------
  std::vector<ConjunctiveQuery> disjuncts;
  const Term bx = V("bx"), by = V("by");

  // (a) First-address errors: some bit after `start` is 1.
  for (int i = 0; i < n; ++i) {
    std::vector<Term> a1 = AddressVars("fa", n);
    a1[i] = by;
    disjuncts.push_back(ConjunctiveQuery(
        {}, {Atom("start", {V("z1")}),
             AtomA(bx, by, V("z1"), V("z2"), a1, V("cu"), V("cv"), V("cw"),
                   V("ct"))}));
  }

  // (b) Address-counter errors between consecutive cells (bit n-1 is the
  // least significant). Two families:
  //  - a carry-suffix of ones below bit i, but bit i did not flip;
  //  - some lower bit j is zero (no carry into i), but bit i flipped.
  auto two_cells = [&](const std::vector<Term>& a1, const std::vector<Term>& b1) {
    return std::vector<Atom>{
        AtomA(bx, by, V("z1"), V("z2"), a1, V("cu"), V("cv"), V("cw"), V("t1")),
        AtomA(bx, by, V("z2"), V("z3"), b1, V("cu"), V("cv"), V("cw"), V("t2"))};
  };
  for (int i = 0; i < n; ++i) {
    {
      // All bits below i are 1, yet bit i repeats (no flip).
      std::vector<Term> a1 = AddressVars("ca", n);
      std::vector<Term> b1 = AddressVars("cb", n);
      for (int j = i + 1; j < n; ++j) a1[j] = by;
      b1[i] = a1[i];  // shared variable: "unchanged"
      disjuncts.push_back(ConjunctiveQuery({}, two_cells(a1, b1)));
    }
    for (int j = i + 1; j < n; ++j) {
      // Bit j below i is 0 (no carry reaches i), yet bit i flipped 0->1 or
      // 1->0.
      for (auto [from, to] : {std::pair{bx, by}, std::pair{by, bx}}) {
        std::vector<Term> a1 = AddressVars("da", n);
        std::vector<Term> b1 = AddressVars("db", n);
        a1[j] = bx;
        a1[i] = from;
        b1[i] = to;
        disjuncts.push_back(ConjunctiveQuery({}, two_cells(a1, b1)));
      }
    }
  }

  // Transition-error gadgets Φ(a,b,c,d) for windows whose successor is not
  // d — the paper's acyclic core idea: three consecutive cells of one
  // configuration plus the same-address cell of the successor
  // configuration; the shared address tuple ā2 is what pushes the query up
  // the ACk hierarchy.
  auto emit_phi = [&](int sa, int sb, int sc, int sd, bool left) {
    std::vector<Term> a1 = AddressVars("p1_", n);
    std::vector<Term> a2 = AddressVars("p2_", n);
    std::vector<Term> a3 = AddressVars("p3_", n);
    const Term su = left ? V("cu") : V("sv");
    std::vector<Atom> atoms = {
        AtomA(bx, by, V("z1"), V("z2"), a1, V("cu"), V("cv"), V("cw"), V("t1")),
        Atom("q_" + sym.Name(sa), {V("z1")}),
        AtomA(bx, by, V("z2"), V("z3"), a2, V("cu"), V("cv"), V("cw"), V("t2")),
        Atom("q_" + sym.Name(sb), {V("z2")}),
        AtomA(bx, by, V("z3"), V("z4"), a3, V("cu"), V("cv"), V("cw"), V("t3")),
        Atom("q_" + sym.Name(sc), {V("z3")}),
        // Successor configuration: "u', u, w'" (left) or "u', v', u" (right).
        left ? AtomA(bx, by, V("z5"), V("z6"), a2, V("su"), V("cu"), V("sw"),
                     V("t4"))
             : AtomA(bx, by, V("z5"), V("z6"), a2, V("su"), su, V("cu"),
                     V("t4")),
        Atom("q_" + sym.Name(sd), {V("z5")})};
    disjuncts.push_back(ConjunctiveQuery({}, std::move(atoms)));
  };
  const int kNumSymbols = sym.NumSymbols();
  for (int sa = 0; sa < kNumSymbols; ++sa) {
    for (int sb = 0; sb < kNumSymbols; ++sb) {
      for (int sc = 0; sc < kNumSymbols; ++sc) {
        int succ_l =
            WindowSuccessor(sym, machine, machine.delta_left, sa, sb, sc);
        int succ_r =
            WindowSuccessor(sym, machine, machine.delta_right, sa, sb, sc);
        for (int sd = 0; sd < kNumSymbols; ++sd) {
          if (sd != succ_l) emit_phi(sa, sb, sc, sd, /*left=*/true);
          if (sd != succ_r) emit_phi(sa, sb, sc, sd, /*left=*/false);
        }
      }
    }
  }

  HardnessInstance out{std::move(program), UnionQuery(std::move(disjuncts)),
                       n, {}};
  for (int s = 0; s < kNumSymbols; ++s) {
    out.tape_symbol_names.push_back(sym.Name(s));
  }
  return out;
}

}  // namespace qcont

#ifndef QCONT_CORE_HARDNESS_H_
#define QCONT_CORE_HARDNESS_H_

#include <string>
#include <vector>

#include "base/status.h"
#include "cq/query.h"
#include "datalog/program.h"

namespace qcont {

/// An alternating Turing machine in the normal form assumed by the
/// Theorem 5 reduction: the initial state is existential, the machine
/// strictly alternates between existential and universal states, and every
/// configuration has exactly two successors given by the deterministic
/// transition functions δℓ (left) and δr (right).
struct AtmSpec {
  /// Tape symbols are 0..num_tape_symbols-1; symbol 0 is the blank.
  int num_tape_symbols = 1;
  int num_states = 1;
  int initial_state = 0;
  std::vector<bool> existential;  // per state
  std::vector<bool> accepting;    // per state

  struct Step {
    int write;  // tape symbol written
    int move;   // -1 left, 0 stay, +1 right
    int next_state;
  };
  /// delta_left[state][read] and delta_right[state][read]; both total.
  std::vector<std::vector<Step>> delta_left;
  std::vector<std::vector<Step>> delta_right;

  Status Validate() const;

  /// A tiny two-state machine (existential initial, universal accepting
  /// partner) used by tests and benchmarks.
  static AtmSpec Tiny();
};

/// The CONT(Datalog, AC) 2EXPTIME-hardness instance of Theorem 5(1): a
/// Datalog program Π and an *acyclic* UCQ Θ, constructible in polynomial
/// time from (M, n), such that Π ⊆ Θ iff M does not accept the empty tape
/// in space 2^n. Expansion trees of Π encode configuration trees with
/// n-bit cell addresses; each disjunct of Θ detects one way an expansion
/// fails to be an accepting computation.
///
/// Faithfulness notes (see DESIGN.md): the paper's address-modification
/// rules are unsafe as written (the replaced address bit does not occur in
/// the body); we guard such variables with a unary extensional predicate
/// `bitv`, the standard domestication that preserves the reduction. The
/// error disjuncts implemented are the ones the proof sketch spells out:
/// address-counter errors, initial-configuration errors, and the
/// transition-error gadgets Φ(a,b,c,d) for tuples outside Bℓ/Br together
/// with their Iℓ/Ir and Fℓ/Fr variants; each is acyclic by the join-tree
/// argument in the text.
struct HardnessInstance {
  DatalogProgram program;
  UnionQuery ucq;
  int address_bits = 0;
  std::vector<std::string> tape_symbol_names;  // includes composite (q,e)
};

struct Theorem5Options {
  /// Guard the rewritten address bit of the §4.1 address-modification
  /// rules with the unary extensional predicate `bitv`. The paper's rules
  /// are unsafe as written (the replaced bit variable does not occur in
  /// the body); turning this off reproduces that literal, unsafe phrasing
  /// — the resulting program fails Validate() and exists so the static
  /// analyzer's safety pass can be exercised against the primary source.
  bool domesticate_addresses = true;
};

Result<HardnessInstance> BuildTheorem5Instance(
    const AtmSpec& machine, int n, const Theorem5Options& options = {});

}  // namespace qcont

#endif  // QCONT_CORE_HARDNESS_H_

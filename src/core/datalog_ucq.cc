#include "core/datalog_ucq.h"

#include <algorithm>
#include <functional>
#include <map>
#include <set>
#include <unordered_map>
#include <vector>

#include "analysis/analyzer.h"
#include "base/check.h"
#include "base/interner.h"
#include "base/thread_pool.h"
#include "core/instantiate.h"
#include "core/program_artifact_cache.h"

namespace qcont {

namespace {

using internal::InstIdbAtom;
using internal::InstRule;
using internal::InstRulePrecomp;
using internal::KindSpace;

// ---------------------------------------------------------------------------
// UCQ preprocessing: integer-encoded view of each disjunct.
// ---------------------------------------------------------------------------

struct DisjunctInfo {
  std::vector<std::string> preds;           // per atom
  std::vector<int> atom_pred_ids;           // per atom: artifact EDB pred id
  std::vector<std::vector<int>> atom_vars;  // per atom: variable ids per term
  std::vector<std::uint64_t> var_atoms;     // per var: atoms using it
  std::vector<bool> is_free;                // per var
  std::vector<int> head;                    // var id per head position
  int num_vars = 0;
  int num_atoms = 0;
  std::uint64_t full_mask = 0;
};

Result<DisjunctInfo> BuildDisjunctInfo(const ConjunctiveQuery& cq) {
  DisjunctInfo info;
  std::unordered_map<std::string, int> var_index;
  auto var_id = [&](const std::string& name) {
    auto [it, inserted] = var_index.emplace(name, info.num_vars);
    if (inserted) ++info.num_vars;
    return it->second;
  };
  info.num_atoms = static_cast<int>(cq.atoms().size());
  if (info.num_atoms > 64) {
    return InvalidArgumentError("UCQ disjuncts are limited to 64 atoms");
  }
  for (int a = 0; a < info.num_atoms; ++a) {
    const Atom& atom = cq.atoms()[a];
    info.preds.push_back(atom.predicate());
    std::vector<int> vars;
    for (const Term& t : atom.terms()) {
      if (!t.is_variable()) {
        return InvalidArgumentError(
            "the containment engines require constant-free queries");
      }
      vars.push_back(var_id(t.name()));
    }
    info.atom_vars.push_back(std::move(vars));
  }
  if (info.num_vars > 120) {
    return InvalidArgumentError("UCQ disjuncts are limited to 120 variables");
  }
  info.var_atoms.assign(info.num_vars, 0);
  for (int a = 0; a < info.num_atoms; ++a) {
    for (int v : info.atom_vars[a]) info.var_atoms[v] |= 1ULL << a;
  }
  info.is_free.assign(info.num_vars, false);
  for (const Term& t : cq.head()) {
    int v = var_id(t.name());
    info.head.push_back(v);
    info.is_free[v] = true;
  }
  info.full_mask =
      info.num_atoms == 64 ? ~0ULL : ((1ULL << info.num_atoms) - 1);
  return info;
}

// ---------------------------------------------------------------------------
// Partial-match elements and subtree types.
// ---------------------------------------------------------------------------

// An element (A, f): A = bitmask of matched atoms, f = per-variable interface
// position (index into the subtree root's head tuple) or -1.
struct Element {
  std::uint64_t atoms = 0;
  std::vector<std::int8_t> f;

  friend bool operator<(const Element& a, const Element& b) {
    if (a.atoms != b.atoms) return a.atoms < b.atoms;
    return a.f < b.f;
  }
};

using ElementSet = std::set<Element>;

// The exact set of realizable elements of a subtree, per disjunct.
struct SubtreeType {
  std::vector<ElementSet> per_disjunct;

  std::string Canonical() const {
    std::string out;
    for (std::size_t d = 0; d < per_disjunct.size(); ++d) {
      out += "#" + std::to_string(d) + ";";
      for (const Element& e : per_disjunct[d]) {
        out += std::to_string(e.atoms);
        out += ':';
        for (std::int8_t x : e.f) out += static_cast<char>('A' + (x + 1));
        out += ',';
      }
    }
    return out;
  }

  std::uint64_t NumElements() const {
    std::uint64_t n = 0;
    for (const ElementSet& s : per_disjunct) n += s.size();
    return n;
  }
};

struct Provenance {
  int rule_pos = -1;
  std::vector<int> child_types;  // type index per idb atom
};

// Per-kind engine state (parallel to KindSpace ids). Canonical forms are
// interned: membership plus id assignment in one hash probe, with the
// strings stored once in the interner's arena instead of node-per-string
// in a std::set.
struct KindState {
  std::vector<SubtreeType> types;
  std::vector<Provenance> provenance;
  Interner canon;
};

// ---------------------------------------------------------------------------
// The engine.
// ---------------------------------------------------------------------------

class TypeEngine {
 public:
  // The artifact carries the frozen Π-only state (fully expanded kind
  // space, root kinds, probe tables); the engine holds only the
  // Θ-dependent fixpoint state and never mutates the artifact, so one
  // artifact serves concurrent engines.
  TypeEngine(std::shared_ptr<const ProgramArtifact> artifact,
             const UnionQuery& ucq, TypeEngineStats* stats,
             const TypeEngineOptions& options)
      : artifact_(std::move(artifact)),
        ucq_(ucq),
        stats_(stats),
        options_(options),
        kinds_(artifact_->kinds()) {}

  Result<ContainmentAnswer> Run() {
    ObsSpan run_span(options_.obs, "typeengine/run", "core");
    for (const ConjunctiveQuery& cq : ucq_.disjuncts()) {
      QCONT_ASSIGN_OR_RETURN(DisjunctInfo info, BuildDisjunctInfo(cq));
      info.atom_pred_ids.reserve(info.preds.size());
      for (const std::string& pred : info.preds) {
        info.atom_pred_ids.push_back(artifact_->EdbPredId(pred));
      }
      disjuncts_.push_back(std::move(info));
    }
    const std::vector<int>& root_kinds = artifact_->root_kinds();
    state_.resize(kinds_.NumKinds());
    cursors_.resize(kinds_.NumKinds());
    for (std::size_t k = 0; k < kinds_.NumKinds(); ++k) {
      cursors_[k].resize(kinds_.RulesOf(static_cast<int>(k)).size());
    }
    Status fixpoint = Fixpoint();
    run_.kinds = kinds_.NumKinds();
    for (const KindState& k : state_) {
      run_.types += k.types.size();
      for (const SubtreeType& t : k.types) run_.elements += t.NumElements();
    }
    FlushStats();
    if (!fixpoint.ok()) return fixpoint;
    // Decision: every reachable root type must contain a complete element.
    for (int kind_id : root_kinds) {
      const KindState& kind = state_[kind_id];
      for (std::size_t t = 0; t < kind.types.size(); ++t) {
        if (!HasCompleteElement(kind.types[t],
                                kinds_.KeyOf(kind_id).pattern)) {
          ContainmentAnswer answer;
          answer.contained = false;
          answer.witness = internal::BuildWitnessCq(
              kinds_, kind_id, static_cast<long>(t),
              [this](int k, long token) {
                const Provenance& prov = state_[k].provenance[token];
                internal::WitnessNode node;
                node.rule = &kinds_.RulesOf(k)[prov.rule_pos];
                node.child_tokens.assign(prov.child_types.begin(),
                                         prov.child_types.end());
                return node;
              });
          return answer;
        }
      }
    }
    ContainmentAnswer answer;
    answer.contained = true;
    return answer;
  }

 private:
  // Publishes this run's counters to the caller's sink. kinds/types/
  // elements are per-run snapshots, so they overwrite whatever a reused
  // TypeEngineStats held from a previous call (the pre-pool assignment
  // semantics); combos/enumeration_steps keep accumulating across calls,
  // matching DatalogEvalStats.
  void FlushStats() {
    // Registry mirror of the same run-local deltas/snapshots: counters for
    // the accumulating fields, gauges for the per-run snapshot fields. Runs
    // on every exit path (Run flushes before returning fixpoint errors), so
    // legacy-vs-registry parity holds even when a budget trips.
    if (MetricRegistry* metrics = ObsMetrics(options_.obs)) {
      metrics->Add("typeengine.combos", run_.combos);
      metrics->Add("typeengine.enumeration_steps", run_.enumeration_steps);
      metrics->SetGauge("typeengine.kinds", run_.kinds);
      metrics->SetGauge("typeengine.types", run_.types);
      metrics->SetGauge("typeengine.elements", run_.elements);
    }
    if (stats_ == nullptr) return;
    stats_->Merge(run_);
  }

  // Per-(kind, rule) frontier of the combination space already enumerated:
  // every combo with all child indices below `prev` has been processed.
  struct RuleCursor {
    bool ran = false;        // base rules (no IDB child) run exactly once
    std::vector<int> prev;   // per-child type count at the last enumeration
  };

  // One fixpoint task: enumerate the combos of (kind, rule_pos) that are
  // new this round, i.e. product([0,cur)) \ product([0,prev)).
  struct ComboTask {
    int kind = -1;
    int rule_pos = -1;
    std::vector<int> prev;
    std::vector<int> cur;
  };

  struct ComboResult {
    std::vector<int> combo;
    SubtreeType type;
    std::string canon;
  };

  struct TaskOutput {
    std::vector<ComboResult> results;
    TypeEngineStats stats;
  };

  // Least fixpoint over reachable types, processed in rounds. Each round
  // snapshots the per-kind type counts, fans the per-rule enumerations of
  // *new* combinations out over the pool (they read only the frozen type
  // tables of the snapshot), and merges the per-task buffers serially in
  // task order at the barrier — so type order, provenance, budget errors,
  // and counters are identical for every thread count. Every combination
  // over the final type sets is enumerated exactly once (the new-combo
  // ranges of a rule partition its combination space across rounds), which
  // replaces the seen-combination string set of the previous implementation
  // and its per-combo key allocations.
  Status Fixpoint() {
    std::uint64_t total_types = 0;
    std::uint64_t round = 0;
    while (true) {
      ObsSpan round_span(options_.obs, "typeengine/round", "core");
      round_span.AddArg("round", round++);
      std::vector<ComboTask> tasks;
      for (std::size_t k = 0; k < kinds_.NumKinds(); ++k) {
        const std::vector<InstRule>& rules =
            kinds_.RulesOf(static_cast<int>(k));
        for (std::size_t rp = 0; rp < rules.size(); ++rp) {
          const InstRule& rule = rules[rp];
          RuleCursor& cursor = cursors_[k][rp];
          if (rule.idb_atoms.empty() && cursor.ran) continue;
          ComboTask task;
          task.kind = static_cast<int>(k);
          task.rule_pos = static_cast<int>(rp);
          bool viable = true;
          for (const InstIdbAtom& child : rule.idb_atoms) {
            int count = static_cast<int>(state_[child.kind_id].types.size());
            if (count == 0) {
              viable = false;
              break;
            }
            task.cur.push_back(count);
          }
          if (!viable) continue;
          task.prev = cursor.ran ? cursor.prev
                                 : std::vector<int>(rule.idb_atoms.size(), 0);
          if (!rule.idb_atoms.empty() && task.prev == task.cur) continue;
          tasks.push_back(std::move(task));
        }
      }
      if (tasks.empty()) break;

      // Budget handed to each task: a task that exceeds it stops early; the
      // barrier merge below then necessarily trips the combo budget before
      // committing that task's (truncated) buffer, so early termination is
      // invisible in results and deterministic for every thread count.
      const std::uint64_t combo_budget =
          options_.max_combos > run_.combos ? options_.max_combos - run_.combos
                                            : 0;
      round_span.AddArg("tasks", tasks.size());
      std::vector<TaskOutput> outputs = ParallelMap<TaskOutput>(
          options_.exec, tasks.size(), [&](std::size_t t) {
            ObsSpan batch_span(options_.obs, "typeengine/combo_batch", "core");
            batch_span.AddArg("task", t);
            return RunComboTask(tasks[t], combo_budget);
          });

      // Barrier merge, serial and in task order.
      for (std::size_t t = 0; t < tasks.size(); ++t) {
        const ComboTask& task = tasks[t];
        run_.combos += outputs[t].stats.combos;
        run_.enumeration_steps += outputs[t].stats.enumeration_steps;
        if (run_.combos > options_.max_combos) {
          return ResourceExhaustedError(
              "type-engine combination budget exceeded");
        }
        KindState& kind = state_[task.kind];
        for (ComboResult& r : outputs[t].results) {
          const std::size_t before = kind.canon.size();
          if (kind.canon.Intern(r.canon) != before) continue;  // seen before
          kind.types.push_back(std::move(r.type));
          Provenance prov;
          prov.rule_pos = task.rule_pos;
          prov.child_types = std::move(r.combo);
          kind.provenance.push_back(std::move(prov));
          ++total_types;
          if (total_types > options_.max_types) {
            return ResourceExhaustedError("type-engine type budget exceeded");
          }
        }
      }
      for (const ComboTask& task : tasks) {
        RuleCursor& cursor = cursors_[task.kind][task.rule_pos];
        cursor.ran = true;
        cursor.prev = task.cur;
      }
    }
    return Status::Ok();
  }

  // Enumerates the new combos of one task. The new region
  // product([0,cur)) \ product([0,prev)) is decomposed by pivot: the pivot
  // p is the first child whose index escapes the old box, so
  // c_j ∈ [0, prev_j) for j < p, c_p ∈ [prev_p, cur_p), c_j ∈ [0, cur_j)
  // for j > p — each new combo has exactly one pivot, hence is visited
  // exactly once, in a deterministic order.
  TaskOutput RunComboTask(const ComboTask& task, std::uint64_t budget) const {
    const InstRule& rule = kinds_.RulesOf(task.kind)[task.rule_pos];
    const InstRulePrecomp& pre = artifact_->precomp(task.kind, task.rule_pos);
    const std::size_t n = rule.idb_atoms.size();
    TaskOutput out;
    auto process = [&](const std::vector<int>& combo) {
      ++out.stats.combos;
      if (out.stats.combos > budget) return false;
      ComboResult r;
      r.combo = combo;
      r.type = ComputeType(rule, pre, combo, &out.stats);
      r.canon = r.type.Canonical();
      out.results.push_back(std::move(r));
      return true;
    };
    if (n == 0) {
      process({});
      return out;
    }
    std::vector<int> combo(n);
    for (std::size_t p = 0; p < n; ++p) {
      if (task.prev[p] == task.cur[p]) continue;
      bool empty = false;
      for (std::size_t j = 0; j < p; ++j) {
        if (task.prev[j] == 0) {
          empty = true;
          break;
        }
      }
      if (empty) continue;
      for (std::size_t j = 0; j < p; ++j) combo[j] = 0;
      combo[p] = task.prev[p];
      for (std::size_t j = p + 1; j < n; ++j) combo[j] = 0;
      while (true) {
        if (!process(combo)) return out;
        std::size_t pos = 0;
        while (pos < n) {
          int lo = pos == p ? task.prev[p] : 0;
          int hi = pos < p ? task.prev[pos] : task.cur[pos];
          if (++combo[pos] < hi) break;
          combo[pos] = lo;
          ++pos;
        }
        if (pos == n) break;
      }
    }
    return out;
  }

  SubtreeType ComputeType(const InstRule& rule, const InstRulePrecomp& pre,
                          const std::vector<int>& combo,
                          TypeEngineStats* stats) const {
    SubtreeType out;
    out.per_disjunct.resize(disjuncts_.size());
    for (std::size_t d = 0; d < disjuncts_.size(); ++d) {
      ComputeElements(rule, pre, combo, static_cast<int>(d), stats,
                      &out.per_disjunct[d]);
    }
    return out;
  }

  void ComputeElements(const InstRule& rule, const InstRulePrecomp& pre,
                       const std::vector<int>& combo, int d,
                       TypeEngineStats* stats, ElementSet* out) const {
    const DisjunctInfo& info = disjuncts_[d];
    std::vector<int> sigma(info.num_vars, -1);
    std::uint64_t base_atoms = 0;

    // Choose one element per child (sets always contain the empty element),
    // then extend with matches against this node's extensional atoms.
    std::function<void(std::size_t)> choose_child = [&](std::size_t j) {
      ++stats->enumeration_steps;
      if (j == rule.idb_atoms.size()) {
        MatchLevel(rule, pre, info, &sigma, base_atoms, 0, stats, out);
        return;
      }
      const InstIdbAtom& child = rule.idb_atoms[j];
      const ElementSet& options =
          state_[child.kind_id].types[combo[j]].per_disjunct[d];
      for (const Element& e : options) {
        std::vector<int> touched;
        bool ok = true;
        for (int v = 0; v < info.num_vars && ok; ++v) {
          if (e.f[v] < 0) continue;
          int w = child.terms[e.f[v]];
          if (sigma[v] == -1) {
            sigma[v] = w;
            touched.push_back(v);
          } else if (sigma[v] != w) {
            ok = false;
          }
        }
        if (ok) {
          std::uint64_t saved = base_atoms;
          base_atoms |= e.atoms;
          choose_child(j + 1);
          base_atoms = saved;
        }
        for (int v : touched) sigma[v] = -1;
      }
    };
    choose_child(0);
  }

  // DFS over the disjunct's atoms not yet covered: leave uncovered, or match
  // against one of this rule instance's extensional atoms. Candidate atoms
  // are screened by the artifact's dense predicate ids (same candidates,
  // same order as the string comparison they replace).
  void MatchLevel(const InstRule& rule, const InstRulePrecomp& pre,
                  const DisjunctInfo& info, std::vector<int>* sigma,
                  std::uint64_t atoms, int t, TypeEngineStats* stats,
                  ElementSet* out) const {
    ++stats->enumeration_steps;
    if (t == info.num_atoms) {
      EmitElement(pre, info, *sigma, atoms, out);
      return;
    }
    MatchLevel(rule, pre, info, sigma, atoms, t + 1, stats, out);
    if (atoms & (1ULL << t)) return;
    const int pred_id = info.atom_pred_ids[t];
    for (std::size_t a = 0; a < rule.edb_atoms.size(); ++a) {
      const std::vector<int>& terms = rule.edb_atoms[a].second;
      if (pre.edb_pred_ids[a] != pred_id ||
          terms.size() != info.atom_vars[t].size()) {
        continue;
      }
      std::vector<int> touched;
      bool ok = true;
      for (std::size_t i = 0; i < terms.size() && ok; ++i) {
        int v = info.atom_vars[t][i];
        if ((*sigma)[v] == -1) {
          (*sigma)[v] = terms[i];
          touched.push_back(v);
        } else if ((*sigma)[v] != terms[i]) {
          ok = false;
        }
      }
      if (ok) {
        MatchLevel(rule, pre, info, sigma, atoms | (1ULL << t), t + 1, stats,
                   out);
      }
      for (int v : touched) (*sigma)[v] = -1;
    }
  }

  void EmitElement(const InstRulePrecomp& pre, const DisjunctInfo& info,
                   const std::vector<int>& sigma, std::uint64_t atoms,
                   ElementSet* out) const {
    Element e;
    e.atoms = atoms;
    e.f.assign(info.num_vars, -1);
    for (int v = 0; v < info.num_vars; ++v) {
      std::uint64_t in_a = info.var_atoms[v] & atoms;
      if (!in_a) continue;
      bool live = info.is_free[v] || (info.var_atoms[v] & ~atoms) != 0;
      if (!live) continue;
      QCONT_CHECK_MSG(sigma[v] != -1, "live variable without binding");
      // head_pos is the precomputed first-occurrence scan of rule.head.
      const std::size_t w = static_cast<std::size_t>(sigma[v]);
      const std::int8_t pos = w < pre.head_pos.size() ? pre.head_pos[w] : -1;
      if (pos < 0) return;  // live variable buried below the interface
      e.f[v] = pos;
    }
    out->insert(std::move(e));
  }

  // A complete element: all atoms matched, free variables mapped to the
  // correct distinguished positions (up to the root head's equalities).
  bool HasCompleteElement(const SubtreeType& type,
                          const std::vector<int>& pattern) const {
    for (std::size_t d = 0; d < disjuncts_.size(); ++d) {
      const DisjunctInfo& info = disjuncts_[d];
      if (info.head.size() != pattern.size()) continue;
      for (const Element& e : type.per_disjunct[d]) {
        if (e.atoms != info.full_mask) continue;
        bool ok = true;
        for (std::size_t i = 0; i < info.head.size() && ok; ++i) {
          int v = info.head[i];
          std::int8_t p = e.f[v];
          if (p < 0 || pattern[p] != pattern[i]) ok = false;
        }
        if (ok) return true;
      }
    }
    return false;
  }

  std::shared_ptr<const ProgramArtifact> artifact_;
  const UnionQuery& ucq_;
  TypeEngineStats* stats_;
  TypeEngineOptions options_;
  TypeEngineStats run_;

  std::vector<DisjunctInfo> disjuncts_;
  const KindSpace& kinds_;  // the artifact's frozen, fully-expanded space
  std::vector<KindState> state_;
  std::vector<std::vector<RuleCursor>> cursors_;
};

}  // namespace

Result<ContainmentAnswer> DatalogContainedInUcq(
    const DatalogProgram& program, const UnionQuery& ucq,
    TypeEngineStats* stats, const TypeEngineOptions& options) {
  QCONT_RETURN_IF_ERROR(program.Validate());
  QCONT_RETURN_IF_ERROR(ucq.Validate());
  QCONT_RETURN_IF_ERROR(
      analysis::FirstError(analysis::CheckContainmentPair(program, ucq)));
  // Resolve the Π-only artifact: caller-provided, cache-fetched, or built
  // privately (the cold path). All three run the engine through the same
  // frozen-artifact code, so results and counters never depend on which
  // path was taken.
  std::shared_ptr<const ProgramArtifact> artifact = options.artifact;
  if (artifact == nullptr && options.artifact_cache != nullptr) {
    artifact = options.artifact_cache->GetOrBuild(program);
  }
  if (artifact == nullptr) {
    artifact = ProgramArtifact::Build(program, options.obs);
  }
  TypeEngine engine(std::move(artifact), ucq, stats, options);
  return engine.Run();
}

}  // namespace qcont

#include "core/datalog_ucq.h"

#include <algorithm>
#include <functional>
#include <map>
#include <set>
#include <unordered_map>
#include <vector>

#include "analysis/analyzer.h"
#include "base/check.h"
#include "core/instantiate.h"

namespace qcont {

namespace {

using internal::InstIdbAtom;
using internal::InstRule;
using internal::KindSpace;

// ---------------------------------------------------------------------------
// UCQ preprocessing: integer-encoded view of each disjunct.
// ---------------------------------------------------------------------------

struct DisjunctInfo {
  std::vector<std::string> preds;           // per atom
  std::vector<std::vector<int>> atom_vars;  // per atom: variable ids per term
  std::vector<std::uint64_t> var_atoms;     // per var: atoms using it
  std::vector<bool> is_free;                // per var
  std::vector<int> head;                    // var id per head position
  int num_vars = 0;
  int num_atoms = 0;
  std::uint64_t full_mask = 0;
};

Result<DisjunctInfo> BuildDisjunctInfo(const ConjunctiveQuery& cq) {
  DisjunctInfo info;
  std::unordered_map<std::string, int> var_index;
  auto var_id = [&](const std::string& name) {
    auto [it, inserted] = var_index.emplace(name, info.num_vars);
    if (inserted) ++info.num_vars;
    return it->second;
  };
  info.num_atoms = static_cast<int>(cq.atoms().size());
  if (info.num_atoms > 64) {
    return InvalidArgumentError("UCQ disjuncts are limited to 64 atoms");
  }
  for (int a = 0; a < info.num_atoms; ++a) {
    const Atom& atom = cq.atoms()[a];
    info.preds.push_back(atom.predicate());
    std::vector<int> vars;
    for (const Term& t : atom.terms()) {
      if (!t.is_variable()) {
        return InvalidArgumentError(
            "the containment engines require constant-free queries");
      }
      vars.push_back(var_id(t.name()));
    }
    info.atom_vars.push_back(std::move(vars));
  }
  if (info.num_vars > 120) {
    return InvalidArgumentError("UCQ disjuncts are limited to 120 variables");
  }
  info.var_atoms.assign(info.num_vars, 0);
  for (int a = 0; a < info.num_atoms; ++a) {
    for (int v : info.atom_vars[a]) info.var_atoms[v] |= 1ULL << a;
  }
  info.is_free.assign(info.num_vars, false);
  for (const Term& t : cq.head()) {
    int v = var_id(t.name());
    info.head.push_back(v);
    info.is_free[v] = true;
  }
  info.full_mask =
      info.num_atoms == 64 ? ~0ULL : ((1ULL << info.num_atoms) - 1);
  return info;
}

// ---------------------------------------------------------------------------
// Partial-match elements and subtree types.
// ---------------------------------------------------------------------------

// An element (A, f): A = bitmask of matched atoms, f = per-variable interface
// position (index into the subtree root's head tuple) or -1.
struct Element {
  std::uint64_t atoms = 0;
  std::vector<std::int8_t> f;

  friend bool operator<(const Element& a, const Element& b) {
    if (a.atoms != b.atoms) return a.atoms < b.atoms;
    return a.f < b.f;
  }
};

using ElementSet = std::set<Element>;

// The exact set of realizable elements of a subtree, per disjunct.
struct SubtreeType {
  std::vector<ElementSet> per_disjunct;

  std::string Canonical() const {
    std::string out;
    for (std::size_t d = 0; d < per_disjunct.size(); ++d) {
      out += "#" + std::to_string(d) + ";";
      for (const Element& e : per_disjunct[d]) {
        out += std::to_string(e.atoms);
        out += ':';
        for (std::int8_t x : e.f) out += static_cast<char>('A' + (x + 1));
        out += ',';
      }
    }
    return out;
  }

  std::uint64_t NumElements() const {
    std::uint64_t n = 0;
    for (const ElementSet& s : per_disjunct) n += s.size();
    return n;
  }
};

struct Provenance {
  int rule_pos = -1;
  std::vector<int> child_types;  // type index per idb atom
};

// Per-kind engine state (parallel to KindSpace ids).
struct KindState {
  std::vector<SubtreeType> types;
  std::vector<Provenance> provenance;
  std::set<std::string> canon;
};

// ---------------------------------------------------------------------------
// The engine.
// ---------------------------------------------------------------------------

class TypeEngine {
 public:
  TypeEngine(const DatalogProgram& program, const UnionQuery& ucq,
             TypeEngineStats* stats, const TypeEngineLimits& limits)
      : program_(program),
        ucq_(ucq),
        stats_(stats),
        limits_(limits),
        kinds_(program) {}

  Result<ContainmentAnswer> Run() {
    for (const ConjunctiveQuery& cq : ucq_.disjuncts()) {
      QCONT_ASSIGN_OR_RETURN(DisjunctInfo info, BuildDisjunctInfo(cq));
      disjuncts_.push_back(std::move(info));
    }
    std::vector<int> root_kinds = kinds_.RootKinds();
    state_.resize(kinds_.NumKinds());
    QCONT_RETURN_IF_ERROR(Fixpoint());
    if (stats_ != nullptr) {
      stats_->kinds = kinds_.NumKinds();
      for (const KindState& k : state_) {
        stats_->types += k.types.size();
        for (const SubtreeType& t : k.types) stats_->elements += t.NumElements();
      }
    }
    // Decision: every reachable root type must contain a complete element.
    for (int kind_id : root_kinds) {
      const KindState& kind = state_[kind_id];
      for (std::size_t t = 0; t < kind.types.size(); ++t) {
        if (!HasCompleteElement(kind.types[t],
                                kinds_.KeyOf(kind_id).pattern)) {
          ContainmentAnswer answer;
          answer.contained = false;
          answer.witness = internal::BuildWitnessCq(
              kinds_, kind_id, static_cast<long>(t),
              [this](int k, long token) {
                const Provenance& prov = state_[k].provenance[token];
                internal::WitnessNode node;
                node.rule = &kinds_.RulesOf(k)[prov.rule_pos];
                node.child_tokens.assign(prov.child_types.begin(),
                                         prov.child_types.end());
                return node;
              });
          return answer;
        }
      }
    }
    ContainmentAnswer answer;
    answer.contained = true;
    return answer;
  }

 private:
  // Least fixpoint over reachable types.
  Status Fixpoint() {
    std::uint64_t total_types = 0;
    bool changed = true;
    while (changed) {
      changed = false;
      for (std::size_t k = 0; k < kinds_.NumKinds(); ++k) {
        const std::vector<InstRule>& rules = kinds_.RulesOf(static_cast<int>(k));
        for (std::size_t rp = 0; rp < rules.size(); ++rp) {
          const InstRule& rule = rules[rp];
          const std::size_t num_children = rule.idb_atoms.size();
          bool viable = true;
          for (const InstIdbAtom& child : rule.idb_atoms) {
            if (state_[child.kind_id].types.empty()) {
              viable = false;
              break;
            }
          }
          if (!viable) continue;
          std::vector<int> combo(num_children, 0);
          while (true) {
            std::string combo_key =
                std::to_string(k) + "/" + std::to_string(rp);
            for (int c : combo) combo_key += "," + std::to_string(c);
            if (processed_.insert(combo_key).second) {
              if (stats_ != nullptr) ++stats_->combos;
              if (processed_.size() > limits_.max_combos) {
                return ResourceExhaustedError(
                    "type-engine combination budget exceeded");
              }
              SubtreeType type = ComputeType(rule, combo);
              std::string canon = type.Canonical();
              if (state_[k].canon.insert(canon).second) {
                state_[k].types.push_back(std::move(type));
                Provenance prov;
                prov.rule_pos = static_cast<int>(rp);
                prov.child_types = combo;
                state_[k].provenance.push_back(std::move(prov));
                ++total_types;
                if (total_types > limits_.max_types) {
                  return ResourceExhaustedError(
                      "type-engine type budget exceeded");
                }
                changed = true;
              }
            }
            std::size_t pos = 0;
            while (pos < num_children) {
              int limit = static_cast<int>(
                  state_[rule.idb_atoms[pos].kind_id].types.size());
              if (++combo[pos] < limit) break;
              combo[pos] = 0;
              ++pos;
            }
            if (pos == num_children) break;
          }
        }
      }
    }
    return Status::Ok();
  }

  SubtreeType ComputeType(const InstRule& rule, const std::vector<int>& combo) {
    SubtreeType out;
    out.per_disjunct.resize(disjuncts_.size());
    for (std::size_t d = 0; d < disjuncts_.size(); ++d) {
      ComputeElements(rule, combo, static_cast<int>(d), &out.per_disjunct[d]);
    }
    return out;
  }

  void ComputeElements(const InstRule& rule, const std::vector<int>& combo,
                       int d, ElementSet* out) {
    const DisjunctInfo& info = disjuncts_[d];
    std::vector<int> sigma(info.num_vars, -1);
    std::uint64_t base_atoms = 0;

    // Choose one element per child (sets always contain the empty element),
    // then extend with matches against this node's extensional atoms.
    std::function<void(std::size_t)> choose_child = [&](std::size_t j) {
      if (stats_ != nullptr) ++stats_->enumeration_steps;
      if (j == rule.idb_atoms.size()) {
        MatchLevel(rule, info, &sigma, base_atoms, 0, out);
        return;
      }
      const InstIdbAtom& child = rule.idb_atoms[j];
      const ElementSet& options =
          state_[child.kind_id].types[combo[j]].per_disjunct[d];
      for (const Element& e : options) {
        std::vector<int> touched;
        bool ok = true;
        for (int v = 0; v < info.num_vars && ok; ++v) {
          if (e.f[v] < 0) continue;
          int w = child.terms[e.f[v]];
          if (sigma[v] == -1) {
            sigma[v] = w;
            touched.push_back(v);
          } else if (sigma[v] != w) {
            ok = false;
          }
        }
        if (ok) {
          std::uint64_t saved = base_atoms;
          base_atoms |= e.atoms;
          choose_child(j + 1);
          base_atoms = saved;
        }
        for (int v : touched) sigma[v] = -1;
      }
    };
    choose_child(0);
  }

  // DFS over the disjunct's atoms not yet covered: leave uncovered, or match
  // against one of this rule instance's extensional atoms.
  void MatchLevel(const InstRule& rule, const DisjunctInfo& info,
                  std::vector<int>* sigma, std::uint64_t atoms, int t,
                  ElementSet* out) {
    if (stats_ != nullptr) ++stats_->enumeration_steps;
    if (t == info.num_atoms) {
      EmitElement(rule, info, *sigma, atoms, out);
      return;
    }
    MatchLevel(rule, info, sigma, atoms, t + 1, out);
    if (atoms & (1ULL << t)) return;
    for (const auto& [pred, terms] : rule.edb_atoms) {
      if (pred != info.preds[t] || terms.size() != info.atom_vars[t].size()) {
        continue;
      }
      std::vector<int> touched;
      bool ok = true;
      for (std::size_t i = 0; i < terms.size() && ok; ++i) {
        int v = info.atom_vars[t][i];
        if ((*sigma)[v] == -1) {
          (*sigma)[v] = terms[i];
          touched.push_back(v);
        } else if ((*sigma)[v] != terms[i]) {
          ok = false;
        }
      }
      if (ok) {
        MatchLevel(rule, info, sigma, atoms | (1ULL << t), t + 1, out);
      }
      for (int v : touched) (*sigma)[v] = -1;
    }
  }

  void EmitElement(const InstRule& rule, const DisjunctInfo& info,
                   const std::vector<int>& sigma, std::uint64_t atoms,
                   ElementSet* out) {
    Element e;
    e.atoms = atoms;
    e.f.assign(info.num_vars, -1);
    for (int v = 0; v < info.num_vars; ++v) {
      std::uint64_t in_a = info.var_atoms[v] & atoms;
      if (!in_a) continue;
      bool live = info.is_free[v] || (info.var_atoms[v] & ~atoms) != 0;
      if (!live) continue;
      QCONT_CHECK_MSG(sigma[v] != -1, "live variable without binding");
      std::int8_t pos = -1;
      for (std::size_t p = 0; p < rule.head.size(); ++p) {
        if (rule.head[p] == sigma[v]) {
          pos = static_cast<std::int8_t>(p);
          break;
        }
      }
      if (pos < 0) return;  // live variable buried below the interface
      e.f[v] = pos;
    }
    out->insert(std::move(e));
  }

  // A complete element: all atoms matched, free variables mapped to the
  // correct distinguished positions (up to the root head's equalities).
  bool HasCompleteElement(const SubtreeType& type,
                          const std::vector<int>& pattern) const {
    for (std::size_t d = 0; d < disjuncts_.size(); ++d) {
      const DisjunctInfo& info = disjuncts_[d];
      if (info.head.size() != pattern.size()) continue;
      for (const Element& e : type.per_disjunct[d]) {
        if (e.atoms != info.full_mask) continue;
        bool ok = true;
        for (std::size_t i = 0; i < info.head.size() && ok; ++i) {
          int v = info.head[i];
          std::int8_t p = e.f[v];
          if (p < 0 || pattern[p] != pattern[i]) ok = false;
        }
        if (ok) return true;
      }
    }
    return false;
  }

  const DatalogProgram& program_;
  const UnionQuery& ucq_;
  TypeEngineStats* stats_;
  TypeEngineLimits limits_;

  std::vector<DisjunctInfo> disjuncts_;
  KindSpace kinds_;
  std::vector<KindState> state_;
  std::set<std::string> processed_;
};

}  // namespace

Result<ContainmentAnswer> DatalogContainedInUcq(
    const DatalogProgram& program, const UnionQuery& ucq,
    TypeEngineStats* stats, const TypeEngineLimits& limits) {
  QCONT_RETURN_IF_ERROR(program.Validate());
  QCONT_RETURN_IF_ERROR(ucq.Validate());
  QCONT_RETURN_IF_ERROR(
      analysis::FirstError(analysis::CheckContainmentPair(program, ucq)));
  TypeEngine engine(program, ucq, stats, limits);
  return engine.Run();
}

}  // namespace qcont

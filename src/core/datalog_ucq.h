#ifndef QCONT_CORE_DATALOG_UCQ_H_
#define QCONT_CORE_DATALOG_UCQ_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "base/status.h"
#include "base/thread_pool.h"
#include "cq/query.h"
#include "datalog/program.h"
#include "obs/obs.h"

namespace qcont {

class ProgramArtifact;
class ProgramArtifactCache;

/// Outcome of a Datalog-in-UCQ containment check. When the answer is "not
/// contained", `witness` is an expansion θ_τ of Π with θ_τ ⊄ Θ; its
/// canonical database D is a concrete counterexample: the frozen head of
/// θ_τ is in Π(D) but not in Θ(D).
struct ContainmentAnswer {
  bool contained = false;
  std::optional<ConjunctiveQuery> witness;
};

/// Cost counters of the type-automaton fixpoint; the machine-independent
/// complexity signal reported by experiments E3/E4. Value-type
/// accumulator: each fixpoint task fills its own instance and the totals
/// are combined with `Merge` at the round barrier, so the counters are
/// identical for every thread count (the combination space of a least
/// fixpoint is schedule-independent: every (rule, child-types) combination
/// over the final type sets is processed exactly once).
///
/// Reuse across calls: when one instance is passed to several
/// `DatalogContainedInUcq` calls, `combos` and `enumeration_steps`
/// accumulate (matching `DatalogEvalStats`), while the snapshot fields
/// `kinds`/`types`/`elements` are overwritten with the last run's values.
struct TypeEngineStats {
  /// (predicate, equality-pattern) pairs instantiated. Per-run *snapshot*:
  /// overwritten (not accumulated) by each call. Registry mirror: gauge
  /// `typeengine.kinds`.
  std::uint64_t kinds = 0;
  /// Distinct reachable subtree types over all kinds. Per-run snapshot;
  /// gauge `typeengine.types`.
  std::uint64_t types = 0;
  /// Partial-match elements summed over all types. Per-run snapshot; gauge
  /// `typeengine.elements`.
  std::uint64_t elements = 0;
  /// (rule, child-type...) combinations enumerated. *Accumulates* across
  /// calls (matching `DatalogEvalStats`); counter `typeengine.combos`.
  std::uint64_t combos = 0;
  /// DFS steps in element enumeration. Accumulates across calls; counter
  /// `typeengine.enumeration_steps`.
  std::uint64_t enumeration_steps = 0;

  /// Folds one run's counters into this accumulator with the per-field
  /// semantics documented above: the snapshot fields (`kinds`, `types`,
  /// `elements`) take `other`'s values, the accumulating fields
  /// (`combos`, `enumeration_steps`) sum.
  void Merge(const TypeEngineStats& other) {
    kinds = other.kinds;
    types = other.types;
    elements = other.elements;
    combos += other.combos;
    enumeration_steps += other.enumeration_steps;
  }
};

/// Engine configuration: resource limits (the fixpoint aborts with
/// kResourceExhausted when a budget is hit) and the execution context.
/// With `exec.threads > 1` the per-round (rule, new-combination-range)
/// tasks fan out over the work-stealing pool against the frozen type
/// tables of the previous round; per-task type buffers and counters are
/// merged in task order at the round barrier, so answers, budgets, and
/// all counters are identical for every thread count.
struct TypeEngineOptions {
  std::uint64_t max_types = 2'000'000;
  std::uint64_t max_combos = 50'000'000;
  ExecContext exec;
  /// Optional observability sinks, borrowed from the caller. Each run emits
  /// `typeengine/run`, `typeengine/round` and `typeengine/combo_batch`
  /// spans and publishes `typeengine.{combos,enumeration_steps}` counters
  /// plus `typeengine.{kinds,types,elements}` gauges — on every exit path,
  /// including budget errors, mirroring the legacy stats flush.
  const ObsContext* obs = nullptr;
  /// Π-only expansion reuse (program_artifact_cache.h, DESIGN.md §18).
  /// Resolution order: when `artifact` is set it is used directly — it must
  /// have been built from a program canonically equal to the one passed
  /// (same `analysis::CanonicalProgramHash`), and the engine then skips
  /// kind-space expansion entirely. Otherwise, when `artifact_cache` is set
  /// (borrowed, caller-owned), the engine fetches-or-builds the artifact
  /// there, so a repeated Π with a new Θ goes straight to the query-side
  /// product construction. With neither, a private artifact is built per
  /// call — the cold path runs through the same build code, so verdicts,
  /// witnesses, and every engine counter are identical with and without
  /// reuse; only the expansion work is saved.
  std::shared_ptr<const ProgramArtifact> artifact;
  ProgramArtifactCache* artifact_cache = nullptr;
};

/// Backwards-compatible name from when the struct carried only budgets.
using TypeEngineLimits = TypeEngineOptions;

/// Decides CONT(Datalog, UCQ): is Π ⊆ Θ? This is the general
/// Chaudhuri-Vardi procedure [12] in its explicit deterministic form: the
/// reachable *types* of expansion subtrees are computed by a least
/// fixpoint, where the type of a subtree is the exact set of partial
/// containment-mapping elements (A ⊆ atoms(θ), interface map f) realizable
/// in it. Π ⊆ Θ iff every reachable root type contains a complete element.
///
/// Worst case doubly exponential in ‖Θ‖ + ‖Π‖ (Theorem 2 of the paper);
/// the specialized ACk engine (ack_containment.h) should be preferred when
/// Θ is acyclic with bounded variable sharing.
///
/// Requirements: Π and Θ are constant-free, Θ's arity equals the goal
/// arity, disjuncts have at most 64 atoms and 120 variables.
Result<ContainmentAnswer> DatalogContainedInUcq(
    const DatalogProgram& program, const UnionQuery& ucq,
    TypeEngineStats* stats = nullptr,
    const TypeEngineOptions& options = TypeEngineOptions());

}  // namespace qcont

#endif  // QCONT_CORE_DATALOG_UCQ_H_

#include "core/datalog_uc2rpq.h"

#include "datalog/expansion.h"

namespace qcont {

Result<Uc2rpqAnswer> DatalogContainedInUC2rpq(
    const DatalogProgram& program, const UC2rpq& gamma,
    const Uc2rpqSearchOptions& options) {
  QCONT_RETURN_IF_ERROR(program.Validate());
  QCONT_RETURN_IF_ERROR(gamma.Validate());
  Uc2rpqAnswer out;
  QCONT_ASSIGN_OR_RETURN(bool acyclic, IsAcyclicUC2rpq(gamma));
  if (acyclic) {
    AcrkEngineLimits limits;
    limits.obs = options.obs;
    QCONT_ASSIGN_OR_RETURN(
        ContainmentAnswer answer,
        DatalogContainedInAcyclicUC2rpq(program, gamma, nullptr, limits));
    out.used_exact_engine = true;
    out.verdict = answer.contained ? Uc2rpqVerdict::kContained
                                   : Uc2rpqVerdict::kNotContained;
    out.witness = answer.witness;
    return out;
  }
  // Cyclic Γ: sound refutation search over bounded-depth expansions.
  QCONT_ASSIGN_OR_RETURN(
      std::vector<ConjunctiveQuery> expansions,
      EnumerateExpansions(program, options.max_depth, options.max_expansions));
  for (const ConjunctiveQuery& expansion : expansions) {
    UnionQuery single({expansion});
    QCONT_ASSIGN_OR_RETURN(bool contained,
                           UcqContainedInUC2rpq(single, gamma));
    if (!contained) {
      out.verdict = Uc2rpqVerdict::kNotContained;
      out.witness = expansion;
      return out;
    }
  }
  out.verdict = Uc2rpqVerdict::kUnknown;
  return out;
}

}  // namespace qcont

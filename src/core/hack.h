#ifndef QCONT_CORE_HACK_H_
#define QCONT_CORE_HACK_H_

#include <optional>

#include "base/status.h"
#include "core/datalog_ucq.h"
#include "cq/query.h"
#include "datalog/program.h"

namespace qcont {

/// Outcome of normalizing a UCQ modulo equivalence into the ACk hierarchy
/// (Propositions 3 and 4 of the paper).
struct HAckNormalization {
  bool in_hack = false;        // Θ ∈ H(ACk) for some k
  int level = 0;               // the least such k when in_hack
  std::optional<UnionQuery> normalized;  // equivalent UCQ in ACk, ≤ original size
};

/// Tests membership of Θ in H(ACk) — the UCQs equivalent to one in ACk —
/// and produces the equivalent ACk query: drop disjuncts subsumed by
/// others, then replace every disjunct by its core. By the paper's
/// Proposition 3, Θ ∈ H(ACk) iff the resulting UCQ is in ACk (cores of
/// ACk queries are strong induced subqueries, and ACk is closed under
/// them). NP-hard (Proposition 4); exponential worst case here.
Result<HAckNormalization> NormalizeIntoAck(const UnionQuery& ucq);

/// CONT(Datalog, H(ACk)) (Proposition 3): normalize Θ into ACk and run the
/// single-exponential ACk engine on the result. kFailedPrecondition if
/// Θ ∉ H(ACk) for every k.
Result<ContainmentAnswer> DatalogContainedInHAck(const DatalogProgram& program,
                                                 const UnionQuery& ucq);

}  // namespace qcont

#endif  // QCONT_CORE_HACK_H_

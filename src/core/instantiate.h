#ifndef QCONT_CORE_INSTANTIATE_H_
#define QCONT_CORE_INSTANTIATE_H_

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "cq/query.h"
#include "datalog/program.h"

namespace qcont {
namespace internal {

/// Canonical equality pattern of a tuple: pattern[i] = first position
/// holding the same value as position i (e.g. (x,y,x) -> [0,1,0]).
template <typename T>
std::vector<int> PatternOf(const std::vector<T>& tuple) {
  std::vector<int> pattern(tuple.size());
  for (std::size_t i = 0; i < tuple.size(); ++i) {
    pattern[i] = static_cast<int>(i);
    for (std::size_t j = 0; j < i; ++j) {
      if (tuple[j] == tuple[i]) {
        pattern[i] = static_cast<int>(j);
        break;
      }
    }
  }
  return pattern;
}

/// A "kind" of expansion subtree: the head predicate together with the
/// equality pattern of the head tuple. By the freshness condition on
/// expansion trees, the kind determines everything the context can observe
/// about a subtree up to renaming, so engine state is keyed by kinds.
struct KindKey {
  std::string pred;
  std::vector<int> pattern;

  friend bool operator<(const KindKey& a, const KindKey& b) {
    if (a.pred != b.pred) return a.pred < b.pred;
    return a.pattern < b.pattern;
  }
};

struct InstIdbAtom {
  int kind_id;
  std::vector<int> terms;  // W representatives
};

/// A rule of Π specialized to a head equality pattern. "W representatives"
/// are rule-variable indices after merging per the pattern.
struct InstRule {
  int rule_index = -1;
  std::vector<int> head;  // W rep per head position
  std::vector<std::pair<std::string, std::vector<int>>> edb_atoms;
  std::vector<InstIdbAtom> idb_atoms;
};

/// The lazily-discovered space of kinds of a program, with each kind's
/// applicable specialized rules. Child kinds referenced by InstIdbAtom are
/// discovered transitively.
class KindSpace {
 public:
  explicit KindSpace(const DatalogProgram& program) : program_(program) {}

  /// Returns the id of `key`, discovering and instantiating it (and,
  /// transitively, every kind reachable from it) on first use.
  int GetKind(const KindKey& key);

  std::size_t NumKinds() const { return keys_.size(); }
  const KindKey& KeyOf(int kind_id) const { return keys_[kind_id]; }
  const std::vector<InstRule>& RulesOf(int kind_id) const {
    return rules_[kind_id];
  }

  /// Root kinds of the program: one per goal rule, keyed by that rule's own
  /// head pattern (checking these suffices; coarser root instances are
  /// substitution instances of these and preserve both directions of the
  /// containment test).
  std::vector<int> RootKinds();

 private:
  void InstantiatePending();
  std::optional<InstRule> Instantiate(int rule, const std::vector<int>& pattern);

  const DatalogProgram& program_;
  std::map<KindKey, int> ids_;
  std::vector<KindKey> keys_;
  std::vector<std::vector<InstRule>> rules_;
  std::vector<bool> instantiated_;
  std::vector<int> pending_;
};

/// Rebuilds the expansion CQ of a tree described by a per-node callback:
/// `expand(kind_id, node_token)` returns the InstRule used at the node and
/// the tokens of its children (one per idb atom). Used by the engines to
/// turn provenance chains into counterexample witnesses.
struct WitnessNode {
  const InstRule* rule;
  std::vector<long> child_tokens;
};

ConjunctiveQuery BuildWitnessCq(
    const KindSpace& kinds, int root_kind, long root_token,
    const std::function<WitnessNode(int kind_id, long token)>& expand);

}  // namespace internal
}  // namespace qcont

#endif  // QCONT_CORE_INSTANTIATE_H_

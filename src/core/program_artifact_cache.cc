#include "core/program_artifact_cache.h"

#include <algorithm>
#include <future>
#include <utility>

#include "analysis/report.h"

namespace qcont {

namespace {

std::size_t VecBytes(const std::vector<int>& v) {
  return v.capacity() * sizeof(int);
}

std::size_t RuleBytes(const internal::InstRule& rule) {
  std::size_t n = sizeof(rule) + VecBytes(rule.head);
  for (const auto& [pred, terms] : rule.edb_atoms) {
    n += pred.size() + VecBytes(terms) + sizeof(terms);
  }
  for (const internal::InstIdbAtom& atom : rule.idb_atoms) {
    n += sizeof(atom) + VecBytes(atom.terms);
  }
  return n;
}

}  // namespace

std::shared_ptr<const ProgramArtifact> ProgramArtifact::Build(
    const DatalogProgram& program, const ObsContext* obs) {
  ObsSpan span(obs, "typeengine/artifact_build", "core");
  // Cannot use std::make_shared: the constructor is private and the object
  // is published as a shared_ptr-to-const.
  std::shared_ptr<ProgramArtifact> artifact(new ProgramArtifact());
  artifact->program_ = std::make_unique<const DatalogProgram>(program);
  artifact->program_hash_ = analysis::CanonicalProgramHash(program);
  // The kind space must reference the artifact's own program copy so the
  // frozen InstRules stay valid after the caller's program is destroyed.
  artifact->kinds_ = std::make_unique<internal::KindSpace>(*artifact->program_);
  // RootKinds discovers, transitively, every kind reachable from the goal
  // rules — after this call the space is fully expanded and never mutated
  // again (the engine only reads it).
  artifact->root_kinds_ = artifact->kinds_->RootKinds();

  // Dense EDB predicate ids in first-seen rule order (deterministic for a
  // fixed program text; the ids are artifact-local, never compared across
  // artifacts).
  for (const Rule& rule : artifact->program_->rules()) {
    for (const Atom& atom : rule.body) {
      if (!artifact->program_->IsIntensional(atom.predicate())) {
        artifact->edb_pred_ids_.emplace(
            atom.predicate(),
            static_cast<int>(artifact->edb_pred_ids_.size()));
      }
    }
  }

  const internal::KindSpace& kinds = *artifact->kinds_;
  std::size_t bytes = sizeof(ProgramArtifact);
  std::size_t inst_rules = 0;
  artifact->precomp_.resize(kinds.NumKinds());
  for (std::size_t k = 0; k < kinds.NumKinds(); ++k) {
    const std::vector<internal::InstRule>& rules =
        kinds.RulesOf(static_cast<int>(k));
    inst_rules += rules.size();
    bytes += VecBytes(kinds.KeyOf(static_cast<int>(k)).pattern);
    std::vector<internal::InstRulePrecomp>& pre = artifact->precomp_[k];
    pre.resize(rules.size());
    for (std::size_t rp = 0; rp < rules.size(); ++rp) {
      const internal::InstRule& rule = rules[rp];
      pre[rp].edb_pred_ids.reserve(rule.edb_atoms.size());
      for (const auto& [pred, terms] : rule.edb_atoms) {
        pre[rp].edb_pred_ids.push_back(artifact->EdbPredId(pred));
      }
      int max_rep = -1;
      for (int w : rule.head) max_rep = std::max(max_rep, w);
      pre[rp].head_pos.assign(static_cast<std::size_t>(max_rep + 1), -1);
      for (std::size_t p = 0; p < rule.head.size(); ++p) {
        std::int8_t& pos = pre[rp].head_pos[rule.head[p]];
        if (pos < 0) pos = static_cast<std::int8_t>(p);
      }
      bytes += RuleBytes(rule) + VecBytes(pre[rp].edb_pred_ids) +
               pre[rp].head_pos.capacity();
    }
  }
  artifact->bytes_ = bytes;
  span.AddArg("kinds", kinds.NumKinds());
  span.AddArg("inst_rules", inst_rules);
  span.AddArg("bytes", bytes);
  return artifact;
}

int ProgramArtifact::EdbPredId(const std::string& pred) const {
  auto it = edb_pred_ids_.find(pred);
  return it != edb_pred_ids_.end() ? it->second : -1;
}

ProgramArtifactCache::ProgramArtifactCache(ProgramArtifactCacheConfig config)
    : config_(config) {}

std::shared_ptr<const ProgramArtifact> ProgramArtifactCache::GetOrBuild(
    const DatalogProgram& program, bool* stable) {
  const std::uint64_t key = analysis::CanonicalProgramHash(program);
  std::promise<std::shared_ptr<const ProgramArtifact>> promise;
  std::uint64_t build_id = 0;
  {
    std::unique_lock<std::mutex> lock(mu_);
    auto it = index_.find(key);
    if (it != index_.end()) {
      ++stats_.hits;
      ObsCount(config_.obs, "typeengine.artifact.hits", 1);
      if (stable != nullptr) *stable = it->second->epoch < epoch_;
      order_.splice(order_.begin(), order_, it->second);
      std::shared_future<std::shared_ptr<const ProgramArtifact>> future =
          it->second->artifact;
      lock.unlock();
      // get() outside the lock: the value may still be under construction
      // by the thread that inserted the entry.
      return future.get();
    }
    ++stats_.misses;
    ObsCount(config_.obs, "typeengine.artifact.misses", 1);
    if (stable != nullptr) *stable = false;
    if (config_.capacity > 0) {
      ++stats_.insertions;
      Entry entry;
      entry.key = key;
      entry.id = build_id = ++next_id_;
      entry.epoch = epoch_;
      entry.artifact = promise.get_future().share();
      order_.push_front(std::move(entry));
      index_[key] = order_.begin();
      if (order_.size() > config_.capacity) {
        const Entry& victim = order_.back();
        ++stats_.evictions;
        stats_.bytes -= victim.bytes;
        index_.erase(victim.key);
        // Waiters on an evicted in-flight build keep their shared_future;
        // the build completes for them, it just stops being resident.
        order_.pop_back();
      }
      stats_.entries = order_.size();
    }
  }
  std::shared_ptr<const ProgramArtifact> artifact =
      ProgramArtifact::Build(program, config_.obs);
  promise.set_value(artifact);
  if (config_.capacity > 0) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(key);
    // Account the bytes only if our entry is still resident (it may have
    // been evicted, or evicted and re-inserted by a later miss).
    if (it != index_.end() && it->second->id == build_id) {
      it->second->bytes = artifact->ApproxBytes();
      stats_.bytes += it->second->bytes;
      ObsGauge(config_.obs, "typeengine.artifact.bytes", stats_.bytes);
    }
  }
  return artifact;
}

void ProgramArtifactCache::BeginEpoch() {
  std::lock_guard<std::mutex> lock(mu_);
  ++epoch_;
}

ProgramArtifactCacheStats ProgramArtifactCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void ProgramArtifactCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  order_.clear();
  index_.clear();
  stats_.entries = 0;
  stats_.bytes = 0;
  ObsGauge(config_.obs, "typeengine.artifact.bytes", 0);
}

}  // namespace qcont

#ifndef QCONT_CORE_PROGRAM_ARTIFACT_CACHE_H_
#define QCONT_CORE_PROGRAM_ARTIFACT_CACHE_H_

#include <cstdint>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/instantiate.h"
#include "datalog/program.h"
#include "obs/obs.h"

namespace qcont {
namespace internal {

/// Per-(kind, rule) probe tables derived from an InstRule once at artifact
/// build time, so the per-combo inner loops of the type fixpoint compare
/// dense integers instead of predicate strings:
///
///  - `edb_pred_ids[a]` is the dense EDB-predicate id of `edb_atoms[a]`
///    (ids are assigned over the program's EDB predicates in first-seen
///    rule order, so they are deterministic for a fixed program text),
///  - `head_pos[w]` is the first head position whose W representative is
///    `w`, or -1; reps beyond the table (never in the head) are absent.
///
/// Both tables preserve the original iteration order of the uncached
/// implementation — they change how a candidate is compared, never which
/// candidates are visited — so engine counters are bit-identical with and
/// without the precomputation.
struct InstRulePrecomp {
  std::vector<int> edb_pred_ids;
  std::vector<std::int8_t> head_pos;
};

}  // namespace internal

/// The frozen Π-only half of the type engine (DESIGN.md §18): the fully
/// expanded kind space (every kind reachable from the root kinds, with each
/// kind's specialized rules), the root-kind list, the per-rule probe
/// tables, and the dense EDB predicate ids. None of this depends on the
/// UCQ Θ being tested, so one artifact serves every containment call
/// against the same program — the Θ-dependent least fixpoint layers on top
/// of it without mutating it.
///
/// Freeze contract: `Build` is the only mutation; the returned object is
/// immutable and safe to share across threads without synchronization
/// (same contract as the storage epochs of ARCHITECTURE.md §7 — publish
/// happens-before use via the shared_ptr / cache handoff). The artifact
/// owns a private copy of the program, so it may outlive the caller's.
class ProgramArtifact {
 public:
  /// Expands the kind space of `program` (assumed valid) to its transitive
  /// closure from the root kinds and derives the probe tables. Emits a
  /// `typeengine/artifact_build` span with kind/rule counts when `obs`
  /// carries a trace sink.
  static std::shared_ptr<const ProgramArtifact> Build(
      const DatalogProgram& program, const ObsContext* obs = nullptr);

  const internal::KindSpace& kinds() const { return *kinds_; }
  const std::vector<int>& root_kinds() const { return root_kinds_; }
  const internal::InstRulePrecomp& precomp(int kind_id, int rule_pos) const {
    return precomp_[kind_id][rule_pos];
  }

  /// Dense id of an EDB predicate, or -1 when no rule body mentions it
  /// extensionally (such a disjunct atom can never be matched).
  int EdbPredId(const std::string& pred) const;

  /// `analysis::CanonicalProgramHash` of the program the artifact was built
  /// from — the cache key, invariant under alpha-renaming.
  std::uint64_t program_hash() const { return program_hash_; }

  /// Rough resident size (vector payloads + program text), for the
  /// `typeengine.artifact.bytes` gauge.
  std::size_t ApproxBytes() const { return bytes_; }

 private:
  ProgramArtifact() = default;

  std::unique_ptr<const DatalogProgram> program_;
  std::unique_ptr<internal::KindSpace> kinds_;
  std::vector<int> root_kinds_;
  std::vector<std::vector<internal::InstRulePrecomp>> precomp_;
  std::unordered_map<std::string, int> edb_pred_ids_;
  std::uint64_t program_hash_ = 0;
  std::size_t bytes_ = 0;
};

/// Monotonic counters plus the current population of a ProgramArtifactCache.
/// `bytes` sums ApproxBytes over the *completed* resident artifacts (an
/// in-flight build contributes once it finishes).
struct ProgramArtifactCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  std::size_t entries = 0;
  std::size_t bytes = 0;
};

struct ProgramArtifactCacheConfig {
  /// Maximum resident artifacts; 0 disables caching (every call builds a
  /// private artifact and counts as a miss).
  std::size_t capacity = 64;
  /// Optional, borrowed. Publishes `typeengine.artifact.{hits,misses}`
  /// counters per lookup and the `typeengine.artifact.bytes` gauge after
  /// every build/eviction; builds emit `typeengine/artifact_build` spans.
  const ObsContext* obs = nullptr;
};

/// Program-keyed LRU of frozen ProgramArtifacts, keyed by
/// `analysis::CanonicalProgramHash` so alpha-renamed resubmissions of one
/// Π share a single expansion (hash collisions are accepted, the same
/// stance as the server plan cache).
///
/// Concurrency: the map itself is mutex-guarded, but entries hold
/// `shared_future`s — the first requester of a key inserts the future and
/// builds *outside* the lock; concurrent requesters of the same key find
/// the in-flight entry, count a hit, and block on the future instead of
/// duplicating the build. Hit/miss totals are therefore a function of the
/// request multiset alone, independent of scheduling, which keeps server
/// metrics reproducible across thread counts.
///
/// Epochs mirror PlanCache: each entry records the epoch of its first
/// insertion, `BeginEpoch` advances the counter (the server calls it at
/// batch start), and a lookup's `stable` out-param reports whether the
/// entry predates the current epoch — i.e. whether it would be present no
/// matter how the current batch is scheduled.
class ProgramArtifactCache {
 public:
  explicit ProgramArtifactCache(ProgramArtifactCacheConfig config = {});

  /// Returns the artifact for `program` (assumed valid), building it on
  /// first use. `stable`, when non-null, is set as documented above (always
  /// false when caching is disabled). Never returns null.
  std::shared_ptr<const ProgramArtifact> GetOrBuild(
      const DatalogProgram& program, bool* stable = nullptr);

  /// Starts a new epoch: entries inserted from now on report
  /// `*stable == false` until the next BeginEpoch call.
  void BeginEpoch();

  ProgramArtifactCacheStats stats() const;

  /// Drops every entry (counters keep accumulating; drops do not count as
  /// evictions). In-flight builds complete and are handed to their waiters
  /// but are not re-inserted.
  void Clear();

 private:
  struct Entry {
    std::uint64_t key = 0;
    std::uint64_t id = 0;  // build-instance id, for post-build accounting
    std::uint64_t epoch = 0;
    std::size_t bytes = 0;  // 0 until the build completes
    std::shared_future<std::shared_ptr<const ProgramArtifact>> artifact;
  };

  ProgramArtifactCacheConfig config_;
  mutable std::mutex mu_;
  std::uint64_t epoch_ = 0;
  std::uint64_t next_id_ = 0;
  std::list<Entry> order_;  // front = most recent
  std::unordered_map<std::uint64_t, std::list<Entry>::iterator> index_;
  ProgramArtifactCacheStats stats_;
};

}  // namespace qcont

#endif  // QCONT_CORE_PROGRAM_ARTIFACT_CACHE_H_

#include "core/hack.h"

#include <vector>

#include "core/ack_containment.h"
#include "cq/containment.h"
#include "cq/core.h"
#include "structure/classify.h"

namespace qcont {

Result<HAckNormalization> NormalizeIntoAck(const UnionQuery& ucq) {
  QCONT_RETURN_IF_ERROR(ucq.Validate());
  // Θ_min: drop disjuncts contained in another kept disjunct.
  std::vector<ConjunctiveQuery> kept;
  std::vector<bool> dropped(ucq.disjuncts().size(), false);
  for (std::size_t i = 0; i < ucq.disjuncts().size(); ++i) {
    bool subsumed = false;
    for (std::size_t j = 0; j < ucq.disjuncts().size() && !subsumed; ++j) {
      if (i == j || dropped[j]) continue;
      QCONT_ASSIGN_OR_RETURN(
          bool contained,
          CqContained(ucq.disjuncts()[i], ucq.disjuncts()[j]));
      if (contained) {
        // Break mutual-containment ties by keeping the earlier disjunct.
        QCONT_ASSIGN_OR_RETURN(
            bool back, CqContained(ucq.disjuncts()[j], ucq.disjuncts()[i]));
        if (!back || j < i) subsumed = true;
      }
    }
    dropped[i] = subsumed;
    if (!subsumed) kept.push_back(ucq.disjuncts()[i]);
  }
  // Replace every kept disjunct by its core.
  std::vector<ConjunctiveQuery> cores;
  cores.reserve(kept.size());
  for (const ConjunctiveQuery& cq : kept) {
    QCONT_ASSIGN_OR_RETURN(ConjunctiveQuery core, CoreOf(cq));
    cores.push_back(std::move(core));
  }
  UnionQuery normalized(std::move(cores));
  HAckNormalization out;
  Result<int> level = AckLevel(normalized);
  if (level.ok()) {
    out.in_hack = true;
    out.level = *level;
    out.normalized = std::move(normalized);
  } else if (level.status().code() != StatusCode::kFailedPrecondition) {
    return level.status();
  }
  return out;
}

Result<ContainmentAnswer> DatalogContainedInHAck(const DatalogProgram& program,
                                                 const UnionQuery& ucq) {
  QCONT_ASSIGN_OR_RETURN(HAckNormalization norm, NormalizeIntoAck(ucq));
  if (!norm.in_hack) {
    return FailedPreconditionError(
        "the UCQ is not equivalent to an acyclic UCQ (not in H(ACk))");
  }
  return DatalogContainedInAcyclicUcq(program, *norm.normalized);
}

}  // namespace qcont

#include "core/equivalence.h"

#include "cq/database.h"
#include "datalog/eval.h"

namespace qcont {

Result<EquivalenceAnswer> DatalogEquivalentToUcq(const DatalogProgram& program,
                                                 const UnionQuery& ucq) {
  return DatalogEquivalentToUcq(program, ucq, RouterOptions(), EvalOptions());
}

Result<EquivalenceAnswer> DatalogEquivalentToUcq(const DatalogProgram& program,
                                                 const UnionQuery& ucq,
                                                 const RouterOptions& router,
                                                 const EvalOptions& eval) {
  EquivalenceAnswer out;
  QCONT_ASSIGN_OR_RETURN(RoutedAnswer routed,
                         DecideContainment(program, ucq, router));
  out.route = routed.route;
  out.program_in_ucq = routed.answer.contained;
  if (!out.program_in_ucq) {
    out.witness = routed.answer.witness;
    // Still report the other direction; it is cheap by comparison.
  }
  out.ucq_in_program = true;
  EvalOptions eval_options = eval;
  if (eval_options.obs == nullptr) eval_options.obs = router.obs;
  for (const ConjunctiveQuery& disjunct : ucq.disjuncts()) {
    Database canonical = CanonicalDatabase(disjunct);
    QCONT_ASSIGN_OR_RETURN(Database derived,
                           EvaluateProgram(program, canonical, eval_options));
    if (!derived.HasFact(program.goal_predicate(), CanonicalHead(disjunct))) {
      out.ucq_in_program = false;
      if (!out.witness.has_value()) out.witness = disjunct;
      break;
    }
  }
  out.equivalent = out.program_in_ucq && out.ucq_in_program;
  return out;
}

}  // namespace qcont
